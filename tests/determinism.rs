//! Golden determinism tests: the simulation is a pure function of its
//! configuration. Running the same preset twice must produce
//! byte-identical results — the property the D1/D2/D4 lint rules
//! (`cargo run -p xtask -- lint`) exist to protect.

use duet_repro::experiments::{
    paper_scaled, run_experiment, run_experiment_traced, run_rsync_experiment, ExperimentResult,
    TaskKind,
};
use duet_repro::sim_core::trace::TraceHandle;
use duet_repro::workloads::{DistKind, Personality};

/// Serializes every observable field of a result, exactly. Floats are
/// rendered from their bit patterns so the comparison cannot be fooled
/// by display rounding.
fn golden_csv(r: &ExperimentResult) -> String {
    let mut out = String::new();
    out.push_str("field,value\n");
    out.push_str(&format!("duration,{:?}\n", r.duration));
    out.push_str(&format!(
        "achieved_util,{:016x}\n",
        r.achieved_util.to_bits()
    ));
    out.push_str(&format!("workload_ops,{}\n", r.workload_ops));
    out.push_str(&format!("maintenance_blocks,{}\n", r.maintenance_blocks));
    out.push_str(&format!("maintenance_busy,{:?}\n", r.maintenance_busy));
    out.push_str(&format!("foreground_blocks,{}\n", r.foreground_blocks));
    out.push_str(&format!(
        "workload_latency_ms,{:016x},{:016x}\n",
        r.workload_latency_ms.0.to_bits(),
        r.workload_latency_ms.1.to_bits()
    ));
    out.push_str(&format!("duet_peak_memory,{}\n", r.duet_peak_memory));
    if let Some(s) = &r.duet_stats {
        out.push_str(&format!(
            "duet_stats,{},{},{},{},{}\n",
            s.events_processed,
            s.events_dropped,
            s.fetch_calls,
            s.items_fetched,
            s.peak_descriptors
        ));
    }
    for t in &r.tasks {
        out.push_str(&format!(
            "task,{},{},{},{},{},{},{},{:?}\n",
            t.name,
            t.metrics.total_units,
            t.metrics.done_units,
            t.metrics.saved_units,
            t.metrics.blocks_read,
            t.metrics.blocks_written,
            t.completed,
            t.completion_time
        ));
    }
    out
}

/// The same preset, run twice, must emit a byte-identical golden CSV —
/// including float bit patterns, event counters and per-task I/O.
#[test]
fn experiment_preset_is_byte_identical_across_runs() {
    let cfg = || {
        let mut c = paper_scaled(
            512,
            Personality::WebServer,
            DistKind::MsTrace(0),
            1.0,
            0.4,
            vec![TaskKind::Scrub, TaskKind::Backup],
            true,
        );
        c.seed = 7;
        c
    };
    let first = golden_csv(&run_experiment(&cfg()).expect("first run"));
    let second = golden_csv(&run_experiment(&cfg()).expect("second run"));
    assert!(!first.is_empty() && first.lines().count() > 8);
    assert_eq!(first, second, "experiment run is not deterministic");
}

/// Baseline mode (no Duet session) must be deterministic too — the
/// virtual clock and seeded RNG are the only level the stack draws on.
#[test]
fn baseline_preset_is_byte_identical_across_runs() {
    let cfg = || {
        let mut c = paper_scaled(
            512,
            Personality::FileServer,
            DistKind::Uniform,
            1.0,
            0.6,
            vec![TaskKind::Scrub],
            false,
        );
        c.seed = 21;
        c
    };
    let first = golden_csv(&run_experiment(&cfg()).expect("first run"));
    let second = golden_csv(&run_experiment(&cfg()).expect("second run"));
    assert_eq!(first, second, "baseline run is not deterministic");
}

/// Tracing is pure observation: arming a handle must not perturb the
/// simulation (same golden CSV as an untraced run), and the trace
/// itself — the JSONL event stream and the aggregated counters — must
/// replay byte-identically across consecutive runs.
#[test]
fn traced_run_is_byte_identical_and_does_not_perturb_results() {
    let cfg = || {
        let mut c = paper_scaled(
            512,
            Personality::WebServer,
            DistKind::Uniform,
            1.0,
            0.4,
            vec![TaskKind::Scrub, TaskKind::Backup],
            true,
        );
        c.seed = 7;
        c
    };
    let plain = golden_csv(&run_experiment(&cfg()).expect("untraced run"));
    let traced = || {
        let t = TraceHandle::with_default_capacity();
        let r = run_experiment_traced(&cfg(), Some(&t)).expect("traced run");
        (
            golden_csv(&r),
            t.dump_jsonl(),
            format!("{:?}", t.counters()),
        )
    };
    let first = traced();
    let second = traced();
    assert_eq!(first, second, "traced run is not deterministic");
    assert_eq!(first.0, plain, "tracing perturbed the simulation");
    if TraceHandle::compiled_in() {
        assert!(
            !first.1.is_empty() && first.1.lines().count() > 16,
            "a traced window this busy must produce events"
        );
    } else {
        assert!(first.1.is_empty(), "compiled-out tracing must be silent");
    }
}

/// Rsync drives two filesystems plus the residency priority queue; its
/// completion time and I/O counters must also replay exactly.
#[test]
fn rsync_preset_is_byte_identical_across_runs() {
    let cfg = paper_scaled(
        512,
        Personality::WebServer,
        DistKind::Uniform,
        1.0,
        1.0,
        vec![],
        true,
    );
    let a = run_rsync_experiment(&cfg, true).expect("first run");
    let b = run_rsync_experiment(&cfg, true).expect("second run");
    let ser = |r: &duet_repro::experiments::RsyncResult| {
        format!(
            "{:?},{},{},{},{},{}",
            r.completion,
            r.metrics.total_units,
            r.metrics.done_units,
            r.metrics.saved_units,
            r.metrics.blocks_read,
            r.metrics.blocks_written
        )
    };
    assert_eq!(ser(&a), ser(&b), "rsync run is not deterministic");
}

// ---------------------------------------------------------------------
// Fixture-pinned golden passes: the tests above prove run-to-run
// determinism *within* a build; these pin the outputs against committed
// fixtures, so a change in behaviour — a container swapped under the
// hood, an iteration order leak — fails the build even if it is
// self-consistent. Regenerate deliberately with
// `cargo run --release -p bench --bin dump_golden` (DESIGN.md §12).
// ---------------------------------------------------------------------

/// The seed-7 experiment preset must match the committed fixture
/// byte for byte.
#[test]
fn experiment_preset_matches_committed_fixture() {
    let mut c = paper_scaled(
        512,
        Personality::WebServer,
        DistKind::MsTrace(0),
        1.0,
        0.4,
        vec![TaskKind::Scrub, TaskKind::Backup],
        true,
    );
    c.seed = 7;
    let got = duet_repro::experiments::golden::golden_csv(&run_experiment(&c).expect("run"));
    assert_eq!(
        got,
        include_str!("fixtures/golden_experiment_seed7.csv"),
        "seed-7 experiment diverged from the committed golden fixture"
    );
}

/// The seed-21 baseline preset must match its committed fixture.
#[test]
fn baseline_preset_matches_committed_fixture() {
    let mut c = paper_scaled(
        512,
        Personality::FileServer,
        DistKind::Uniform,
        1.0,
        0.6,
        vec![TaskKind::Scrub],
        false,
    );
    c.seed = 21;
    let got = duet_repro::experiments::golden::golden_csv(&run_experiment(&c).expect("run"));
    assert_eq!(
        got,
        include_str!("fixtures/golden_baseline_seed21.csv"),
        "seed-21 baseline diverged from the committed golden fixture"
    );
}

/// The rsync preset must match its committed one-line fixture.
#[test]
fn rsync_preset_matches_committed_fixture() {
    let cfg = paper_scaled(
        512,
        Personality::WebServer,
        DistKind::Uniform,
        1.0,
        1.0,
        vec![],
        true,
    );
    let r = run_rsync_experiment(&cfg, true).expect("run");
    let got = duet_repro::experiments::golden::golden_rsync_line(&r) + "\n";
    assert_eq!(
        got,
        include_str!("fixtures/golden_rsync.txt"),
        "rsync preset diverged from the committed golden fixture"
    );
}

/// The scripted page-cache op mix — every eviction, event and counter —
/// must replay the committed log exactly. This is the finest-grained
/// pin on the intrusive-LRU cache: 4000 ops of inserts, lookups,
/// writebacks, flushes, removals and protection windows.
#[test]
fn cache_event_log_matches_committed_fixture() {
    let got = duet_repro::experiments::golden::cache_event_log(0xCAFE, 4000);
    assert_eq!(
        got,
        include_str!("fixtures/golden_cache_events.txt"),
        "page-cache op-mix log diverged from the committed golden fixture"
    );
}

/// The scripted priority-queue op mix — with deliberate priority ties —
/// must replay the committed pop/peek log exactly, pinning the
/// documented tie-break (max priority, ties by largest key) across
/// container changes.
#[test]
fn prioqueue_pop_log_matches_committed_fixture() {
    let got = duet_repro::experiments::golden::prioqueue_pop_log(0x9A11, 4000);
    assert_eq!(
        got,
        include_str!("fixtures/golden_prioqueue_pops.txt"),
        "priority-queue op-mix log diverged from the committed golden fixture"
    );
}

/// The scripted extent-map op mix — overlapping COW mappings, unmaps,
/// FIBMAP translations and clears — must replay the committed log
/// exactly: every displaced block, extent count and in-order extent
/// list. This pins the `BTreeMap` → `DOrdMap` migration of the btrfs
/// extent map at the finest grain.
#[test]
fn extent_oplog_matches_committed_fixture() {
    let got = duet_repro::experiments::golden::extent_oplog(0xE47E, 4000);
    assert_eq!(
        got,
        include_str!("fixtures/golden_extent_oplog.txt"),
        "extent-map op-mix log diverged from the committed golden fixture"
    );
}

/// `DOrdMap` must be seed-independent by construction: its iteration
/// order is the key order, whatever hash or fault seed the process
/// carries. We pin that by replaying the extent op mix under several
/// `DUET_FAULT_SEED` values — the env var every seeded component in
/// the stack consults — and demanding byte-identical logs. (Edition
/// 2021: `set_var` is safe; the test reads the seed only through
/// constructors that run after each set.)
#[test]
fn extent_oplog_is_independent_of_fault_seed_env() {
    let baseline = duet_repro::experiments::golden::extent_oplog(0xE47E, 1000);
    for seed in ["1", "0xdeadbeef", "9999999"] {
        std::env::set_var("DUET_FAULT_SEED", seed);
        let got = duet_repro::experiments::golden::extent_oplog(0xE47E, 1000);
        std::env::remove_var("DUET_FAULT_SEED");
        assert_eq!(
            got, baseline,
            "extent-map log changed under DUET_FAULT_SEED={seed}"
        );
    }
}

/// The same seed-independence for `DOrdMap` directly: insertion order,
/// hash-seed environment and chunk geometry are all unobservable — the
/// sorted iteration, ranges and neighbour queries depend on the key
/// set alone.
#[test]
fn dordmap_iteration_is_seed_and_insertion_order_independent() {
    use duet_repro::sim_core::omap::DOrdMap;
    let keys: Vec<u64> = (0..257).map(|i| (i * 131) % 997).collect();
    let collect =
        |m: &DOrdMap<u64, u64>| -> Vec<(u64, u64)> { m.iter().map(|(&k, &v)| (k, v)).collect() };
    // Ascending insertion, no env seed.
    let mut a = DOrdMap::new();
    for &k in &keys {
        a.insert(k, k * 2);
    }
    // Reversed insertion under a hostile env seed, tiny chunks.
    std::env::set_var("DUET_FAULT_SEED", "0x5eed");
    let mut b = DOrdMap::with_chunk_max(2);
    for &k in keys.iter().rev() {
        b.insert(k, k * 2);
    }
    std::env::remove_var("DUET_FAULT_SEED");
    assert_eq!(collect(&a), collect(&b));
    let sorted: Vec<u64> = collect(&a).iter().map(|&(k, _)| k).collect();
    let mut expect = keys.clone();
    expect.sort_unstable();
    expect.dedup();
    assert_eq!(sorted, expect, "iteration is exactly the sorted key set");
}

/// The traced seed-7 run's digests (golden CSV, JSONL stream, counters)
/// must match the committed fixture. The fixture records whether it was
/// produced with tracing compiled in; a mismatched build skips rather
/// than producing a false failure.
#[test]
fn trace_digests_match_committed_fixture() {
    let fixture = include_str!("fixtures/golden_trace_seed7.txt");
    if !TraceHandle::compiled_in() || fixture.trim() == "trace_compiled_out" {
        return;
    }
    let mut c = paper_scaled(
        512,
        Personality::WebServer,
        DistKind::Uniform,
        1.0,
        0.4,
        vec![TaskKind::Scrub, TaskKind::Backup],
        true,
    );
    c.seed = 7;
    let t = TraceHandle::with_default_capacity();
    let r = run_experiment_traced(&c, Some(&t)).expect("traced run");
    let jsonl = t.dump_jsonl();
    let golden = duet_repro::experiments::golden::golden_csv(&r);
    let fnv = duet_repro::experiments::golden::fnv128_hex;
    let got = format!(
        "golden_csv_digest {}\njsonl_lines {}\njsonl_digest {}\ncounters_digest {}\n",
        fnv(golden.as_bytes()),
        jsonl.lines().count(),
        fnv(jsonl.as_bytes()),
        fnv(format!("{:?}", t.counters()).as_bytes())
    );
    assert_eq!(
        got, fixture,
        "traced seed-7 digests diverged from the committed golden fixture"
    );
}
