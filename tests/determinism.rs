//! Golden determinism tests: the simulation is a pure function of its
//! configuration. Running the same preset twice must produce
//! byte-identical results — the property the D1/D2/D4 lint rules
//! (`cargo run -p xtask -- lint`) exist to protect.

use duet_repro::experiments::{
    paper_scaled, run_experiment, run_experiment_traced, run_rsync_experiment, ExperimentResult,
    TaskKind,
};
use duet_repro::sim_core::trace::TraceHandle;
use duet_repro::workloads::{DistKind, Personality};

/// Serializes every observable field of a result, exactly. Floats are
/// rendered from their bit patterns so the comparison cannot be fooled
/// by display rounding.
fn golden_csv(r: &ExperimentResult) -> String {
    let mut out = String::new();
    out.push_str("field,value\n");
    out.push_str(&format!("duration,{:?}\n", r.duration));
    out.push_str(&format!(
        "achieved_util,{:016x}\n",
        r.achieved_util.to_bits()
    ));
    out.push_str(&format!("workload_ops,{}\n", r.workload_ops));
    out.push_str(&format!("maintenance_blocks,{}\n", r.maintenance_blocks));
    out.push_str(&format!("maintenance_busy,{:?}\n", r.maintenance_busy));
    out.push_str(&format!("foreground_blocks,{}\n", r.foreground_blocks));
    out.push_str(&format!(
        "workload_latency_ms,{:016x},{:016x}\n",
        r.workload_latency_ms.0.to_bits(),
        r.workload_latency_ms.1.to_bits()
    ));
    out.push_str(&format!("duet_peak_memory,{}\n", r.duet_peak_memory));
    if let Some(s) = &r.duet_stats {
        out.push_str(&format!(
            "duet_stats,{},{},{},{},{}\n",
            s.events_processed,
            s.events_dropped,
            s.fetch_calls,
            s.items_fetched,
            s.peak_descriptors
        ));
    }
    for t in &r.tasks {
        out.push_str(&format!(
            "task,{},{},{},{},{},{},{},{:?}\n",
            t.name,
            t.metrics.total_units,
            t.metrics.done_units,
            t.metrics.saved_units,
            t.metrics.blocks_read,
            t.metrics.blocks_written,
            t.completed,
            t.completion_time
        ));
    }
    out
}

/// The same preset, run twice, must emit a byte-identical golden CSV —
/// including float bit patterns, event counters and per-task I/O.
#[test]
fn experiment_preset_is_byte_identical_across_runs() {
    let cfg = || {
        let mut c = paper_scaled(
            512,
            Personality::WebServer,
            DistKind::MsTrace(0),
            1.0,
            0.4,
            vec![TaskKind::Scrub, TaskKind::Backup],
            true,
        );
        c.seed = 7;
        c
    };
    let first = golden_csv(&run_experiment(&cfg()).expect("first run"));
    let second = golden_csv(&run_experiment(&cfg()).expect("second run"));
    assert!(!first.is_empty() && first.lines().count() > 8);
    assert_eq!(first, second, "experiment run is not deterministic");
}

/// Baseline mode (no Duet session) must be deterministic too — the
/// virtual clock and seeded RNG are the only level the stack draws on.
#[test]
fn baseline_preset_is_byte_identical_across_runs() {
    let cfg = || {
        let mut c = paper_scaled(
            512,
            Personality::FileServer,
            DistKind::Uniform,
            1.0,
            0.6,
            vec![TaskKind::Scrub],
            false,
        );
        c.seed = 21;
        c
    };
    let first = golden_csv(&run_experiment(&cfg()).expect("first run"));
    let second = golden_csv(&run_experiment(&cfg()).expect("second run"));
    assert_eq!(first, second, "baseline run is not deterministic");
}

/// Tracing is pure observation: arming a handle must not perturb the
/// simulation (same golden CSV as an untraced run), and the trace
/// itself — the JSONL event stream and the aggregated counters — must
/// replay byte-identically across consecutive runs.
#[test]
fn traced_run_is_byte_identical_and_does_not_perturb_results() {
    let cfg = || {
        let mut c = paper_scaled(
            512,
            Personality::WebServer,
            DistKind::Uniform,
            1.0,
            0.4,
            vec![TaskKind::Scrub, TaskKind::Backup],
            true,
        );
        c.seed = 7;
        c
    };
    let plain = golden_csv(&run_experiment(&cfg()).expect("untraced run"));
    let traced = || {
        let t = TraceHandle::with_default_capacity();
        let r = run_experiment_traced(&cfg(), Some(&t)).expect("traced run");
        (
            golden_csv(&r),
            t.dump_jsonl(),
            format!("{:?}", t.counters()),
        )
    };
    let first = traced();
    let second = traced();
    assert_eq!(first, second, "traced run is not deterministic");
    assert_eq!(first.0, plain, "tracing perturbed the simulation");
    if TraceHandle::compiled_in() {
        assert!(
            !first.1.is_empty() && first.1.lines().count() > 16,
            "a traced window this busy must produce events"
        );
    } else {
        assert!(first.1.is_empty(), "compiled-out tracing must be silent");
    }
}

/// Rsync drives two filesystems plus the residency priority queue; its
/// completion time and I/O counters must also replay exactly.
#[test]
fn rsync_preset_is_byte_identical_across_runs() {
    let cfg = paper_scaled(
        512,
        Personality::WebServer,
        DistKind::Uniform,
        1.0,
        1.0,
        vec![],
        true,
    );
    let a = run_rsync_experiment(&cfg, true).expect("first run");
    let b = run_rsync_experiment(&cfg, true).expect("second run");
    let ser = |r: &duet_repro::experiments::RsyncResult| {
        format!(
            "{:?},{},{},{},{},{}",
            r.completion,
            r.metrics.total_units,
            r.metrics.done_units,
            r.metrics.saved_units,
            r.metrics.blocks_read,
            r.metrics.blocks_written
        )
    };
    assert_eq!(ser(&a), ser(&b), "rsync run is not deterministic");
}
