//! Property-style integration tests: randomized operation sequences
//! across the full stack must preserve the storage invariants the
//! maintenance tasks rely on.

use duet_repro::duet::{Duet, EventMask, TaskScope};
use duet_repro::duet_tasks::pump_btrfs;
use duet_repro::sim_btrfs::BtrfsSim;
use duet_repro::sim_core::{DeviceId, InodeNr, SimInstant, SimRng, PAGE_SIZE};
use duet_repro::sim_disk::{Disk, HddModel, IoClass};
use duet_repro::sim_f2fs::F2fsSim;

const T0: SimInstant = SimInstant::EPOCH;

/// Btrfs under random churn: allocation accounting, extent mapping and
/// checksum verification stay consistent, with Duet watching.
#[test]
fn btrfs_random_churn_preserves_invariants() {
    for seed in 0..5u64 {
        let mut rng = SimRng::new(seed);
        let disk = Disk::new(Box::new(HddModel::sas_10k(1 << 15)));
        let mut fs = BtrfsSim::new(DeviceId(0), disk, 256);
        let mut duet = Duet::with_defaults();
        let mut files: Vec<InodeNr> = (0..8)
            .map(|i| {
                fs.populate_file(fs.root(), &format!("f{i}"), 8 * PAGE_SIZE)
                    .unwrap()
            })
            .collect();
        duet.register(
            TaskScope::File {
                registered_dir: fs.root(),
            },
            EventMask::EXISTS | EventMask::MODIFIED,
            &fs,
        )
        .unwrap();
        let mut created = 8u64;
        for step in 0..300 {
            let op = rng.gen_range(0, 100);
            let idx = rng.gen_range(0, files.len() as u64) as usize;
            let ino = files[idx];
            match op {
                0..=39 => {
                    let size = fs.inodes().get(ino).map(|n| n.size_bytes).unwrap_or(0);
                    if size > 0 {
                        fs.read(ino, 0, size, IoClass::Normal, T0).unwrap();
                    }
                }
                40..=69 => {
                    let page = rng.gen_range(0, 8);
                    fs.write(ino, page * PAGE_SIZE, PAGE_SIZE, IoClass::Normal, T0)
                        .unwrap();
                }
                70..=79 => {
                    fs.append(ino, PAGE_SIZE, IoClass::Normal, T0).unwrap();
                }
                80..=89 => {
                    fs.delete_file(ino).unwrap();
                    created += 1;
                    files[idx] = fs
                        .populate_file(fs.root(), &format!("n{created}"), 4 * PAGE_SIZE)
                        .unwrap();
                }
                _ => {
                    fs.background_writeback(64, IoClass::Normal, T0).unwrap();
                }
            }
            pump_btrfs(&mut fs, &mut duet);
            fs.check_consistency().expect("fsck");
            // Invariant: allocated blocks == sum of mapped pages.
            let mapped: u64 = files
                .iter()
                .filter_map(|&f| fs.inodes().get(f).ok())
                .map(|n| n.extents.mapped_pages())
                .sum();
            assert_eq!(
                fs.allocated_blocks(),
                mapped,
                "seed {seed} step {step}: allocation leak"
            );
        }
        // Everything still readable with intact checksums.
        for &f in &files {
            let size = fs.inodes().get(f).unwrap().size_bytes;
            fs.read(f, 0, size, IoClass::Normal, T0).unwrap();
        }
    }
}

/// F2fs under random churn: every live page has exactly one valid
/// block, and cleaning any segment never loses data.
#[test]
fn f2fs_random_churn_and_cleaning_preserves_data() {
    for seed in 0..5u64 {
        let mut rng = SimRng::new(seed);
        let disk = Disk::new(Box::new(HddModel::sas_10k(32 * 64)));
        let mut fs = F2fsSim::new(DeviceId(1), disk, 128, 64);
        let files: Vec<InodeNr> = (0..6)
            .map(|i| fs.populate_file(&format!("f{i}"), 16 * PAGE_SIZE).unwrap())
            .collect();
        for _ in 0..200 {
            let op = rng.gen_range(0, 100);
            let ino = files[rng.gen_range(0, files.len() as u64) as usize];
            match op {
                0..=49 => {
                    let page = rng.gen_range(0, 16);
                    fs.write(ino, page * PAGE_SIZE, PAGE_SIZE, IoClass::Normal, T0)
                        .unwrap();
                }
                50..=69 => {
                    fs.read(ino, 0, 16 * PAGE_SIZE, IoClass::Normal, T0)
                        .unwrap();
                }
                70..=89 => {
                    fs.background_writeback(64, IoClass::Normal, T0).unwrap();
                }
                _ => {
                    // Clean the fullest cleanable segment, if any.
                    let victim = (0..fs.nsegs())
                        .map(sim_core_seg)
                        .filter(|&s| {
                            fs.segment(s).state == duet_repro::sim_f2fs::SegState::Full
                                && fs.segment(s).valid > 0
                        })
                        .min_by_key(|&s| fs.segment(s).valid);
                    if let Some(v) = victim {
                        fs.clean_segment(v, IoClass::Idle, T0).unwrap();
                    }
                }
            }
            fs.check_consistency().expect("f2fs fsck");
            // Invariant: total valid blocks == total flushed live pages.
            let valid_total: u32 = (0..fs.nsegs())
                .map(|s| fs.segment(sim_core_seg(s)).valid)
                .sum();
            let mapped_total: u64 = files
                .iter()
                .flat_map(|&f| (0..16).map(move |p| (f, p)))
                .filter(|&(f, p)| fs.mapping_of(f, sim_core::PageIndex(p)).is_some())
                .count() as u64;
            assert_eq!(valid_total as u64, mapped_total, "seed {seed}");
        }
        // Flush everything; all data must still be readable.
        while fs.dirty_pages() > 0 {
            fs.background_writeback(256, IoClass::Normal, T0).unwrap();
        }
        for &f in &files {
            let s = fs.read(f, 0, 16 * PAGE_SIZE, IoClass::Normal, T0).unwrap();
            assert_eq!(s.blocks_read + s.cache_hits, 16, "pages lost");
        }
    }
}

use duet_repro::sim_core;

fn sim_core_seg(s: u32) -> sim_core::SegmentNr {
    sim_core::SegmentNr(s)
}
