//! Cross-crate integration tests: full storage stack + Duet + tasks +
//! workload, exercising the paper's core claims end to end.

use duet_repro::duet::{Duet, EventMask, ItemFlags, TaskScope};
use duet_repro::duet_tasks::{pump_btrfs, Backup, BtrfsCtx, BtrfsTask, Defrag, Scrubber, TaskMode};
use duet_repro::experiments::{paper_scaled, run_experiment, run_rsync_experiment, TaskKind};
use duet_repro::sim_btrfs::BtrfsSim;
use duet_repro::sim_core::{DeviceId, SimInstant, PAGE_SIZE};
use duet_repro::sim_disk::{Disk, HddModel, IoClass};
use duet_repro::workloads::{DistKind, Personality};

const T0: SimInstant = SimInstant::EPOCH;

fn btrfs(cap: u64, cache: usize) -> BtrfsSim {
    BtrfsSim::new(
        DeviceId(0),
        Disk::new(Box::new(HddModel::sas_10k(cap))),
        cache,
    )
}

/// The paper's central safety claim: reordering maintenance work must
/// not change what gets done. A Duet scrubber must verify exactly the
/// blocks a baseline scrubber verifies (modulo blocks rewritten during
/// the run), and never *more* I/O.
#[test]
fn duet_scrubber_never_does_more_io_and_verifies_everything() {
    let mut fs = btrfs(1 << 16, 1024);
    for i in 0..16 {
        fs.populate_file(fs.root(), &format!("f{i}"), 64 * PAGE_SIZE)
            .unwrap();
    }
    let total_blocks = fs.allocated_blocks();
    let mut duet = Duet::with_defaults();
    let mut baseline = Scrubber::new(TaskMode::Baseline);
    // Baseline on an untouched twin.
    {
        let mut fs2 = btrfs(1 << 16, 1024);
        for i in 0..16 {
            fs2.populate_file(fs2.root(), &format!("f{i}"), 64 * PAGE_SIZE)
                .unwrap();
        }
        let mut d2 = Duet::with_defaults();
        baseline
            .start(BtrfsCtx {
                fs: &mut fs2,
                duet: &mut d2,
                now: T0,
            })
            .unwrap();
        loop {
            let r = baseline
                .step(BtrfsCtx {
                    fs: &mut fs2,
                    duet: &mut d2,
                    now: T0,
                })
                .unwrap();
            if r.complete {
                break;
            }
        }
    }
    // Duet run with a concurrent reader warming half the files.
    let mut task = Scrubber::new(TaskMode::Duet);
    task.start(BtrfsCtx {
        fs: &mut fs,
        duet: &mut duet,
        now: T0,
    })
    .unwrap();
    let files = fs.inodes().files_by_inode();
    for &f in &files[..8] {
        fs.read(f, 0, 64 * PAGE_SIZE, IoClass::Normal, T0).unwrap();
    }
    pump_btrfs(&mut fs, &mut duet);
    loop {
        let r = task
            .step(BtrfsCtx {
                fs: &mut fs,
                duet: &mut duet,
                now: T0,
            })
            .unwrap();
        pump_btrfs(&mut fs, &mut duet);
        if r.complete {
            break;
        }
    }
    let base_m = baseline.metrics();
    let duet_m = task.metrics();
    assert_eq!(base_m.done_units, total_blocks);
    assert_eq!(duet_m.done_units, total_blocks, "same guarantee");
    assert!(duet_m.blocks_read < base_m.blocks_read, "fewer reads");
    assert_eq!(
        duet_m.blocks_read + duet_m.saved_units,
        total_blocks,
        "every block either read by the scrubber or verified by the workload"
    );
}

/// Backup correctness under concurrent modification: the backup is of
/// the snapshot, so overwrites during the run must not leak new data
/// into it, and everything in the snapshot must be shipped.
#[test]
fn backup_ships_exactly_the_snapshot() {
    let mut fs = btrfs(1 << 16, 1024);
    for i in 0..8 {
        fs.populate_file(fs.root(), &format!("f{i}"), 32 * PAGE_SIZE)
            .unwrap();
    }
    let mut duet = Duet::with_defaults();
    let mut task = Backup::new(TaskMode::Duet);
    task.start(BtrfsCtx {
        fs: &mut fs,
        duet: &mut duet,
        now: T0,
    })
    .unwrap();
    let snap_pages = fs.snapshot(task.snapshot().unwrap()).unwrap().total_pages();
    // Concurrent churn: overwrite some files, read others.
    let files = fs.inodes().files_by_inode();
    fs.write(files[1], 0, 32 * PAGE_SIZE, IoClass::Normal, T0)
        .unwrap();
    fs.read(files[5], 0, 32 * PAGE_SIZE, IoClass::Normal, T0)
        .unwrap();
    pump_btrfs(&mut fs, &mut duet);
    loop {
        let r = task
            .step(BtrfsCtx {
                fs: &mut fs,
                duet: &mut duet,
                now: T0,
            })
            .unwrap();
        pump_btrfs(&mut fs, &mut duet);
        if r.complete {
            break;
        }
    }
    let m = task.metrics();
    assert_eq!(m.done_units, snap_pages, "whole snapshot shipped");
    assert_eq!(task.sent_bytes, snap_pages * PAGE_SIZE);
    // The warmed, still-shared file saved its reads.
    assert!(m.saved_units >= 32, "saved {}", m.saved_units);
}

/// Defragmentation must leave every file fully mapped and reduce total
/// fragmentation, regardless of processing order.
#[test]
fn defrag_preserves_data_layout_invariants() {
    let mut fs = btrfs(1 << 17, 2048);
    let mut inos = Vec::new();
    for i in 0..12 {
        let ino = fs
            .populate_file(fs.root(), &format!("f{i}"), 24 * PAGE_SIZE)
            .unwrap();
        fs.fragment_file(ino, 4).unwrap();
        inos.push(ino);
    }
    let before = fs.mean_extents_per_file();
    let mut duet = Duet::with_defaults();
    let mut task = Defrag::new(TaskMode::Duet);
    task.start(BtrfsCtx {
        fs: &mut fs,
        duet: &mut duet,
        now: T0,
    })
    .unwrap();
    // Warm a few files so the priority queue reorders work.
    for &f in &inos[6..9] {
        fs.read(f, 0, 24 * PAGE_SIZE, IoClass::Normal, T0).unwrap();
    }
    pump_btrfs(&mut fs, &mut duet);
    loop {
        let r = task
            .step(BtrfsCtx {
                fs: &mut fs,
                duet: &mut duet,
                now: T0,
            })
            .unwrap();
        pump_btrfs(&mut fs, &mut duet);
        if r.complete {
            break;
        }
    }
    assert!(fs.mean_extents_per_file() < before);
    for &ino in &inos {
        let node = fs.inodes().get(ino).unwrap();
        assert_eq!(node.extents.mapped_pages(), 24, "no pages lost");
        assert_eq!(node.extents.extent_count(), 1, "fully defragmented");
    }
    // Every block still readable (checksums intact after rewrite).
    for &ino in &inos {
        fs.read(ino, 0, 24 * PAGE_SIZE, IoClass::Idle, T0).unwrap();
    }
}

/// Framework-level invariant under a full experiment: Duet sessions on
/// the same data never increase a task's I/O relative to its baseline.
#[test]
fn duet_never_increases_maintenance_io() {
    for task in [TaskKind::Scrub, TaskKind::Backup] {
        let cfg = |duet: bool| {
            let mut c = paper_scaled(
                512,
                Personality::WebServer,
                DistKind::Uniform,
                1.0,
                0.4,
                vec![task],
                duet,
            );
            c.seed = 99;
            c
        };
        let base = run_experiment(&cfg(false)).unwrap();
        let duet = run_experiment(&cfg(true)).unwrap();
        // Same or more work done, with no more I/O.
        assert!(
            duet.work_completed() + 1e-9 >= base.work_completed(),
            "{task:?}: duet {:.3} vs base {:.3}",
            duet.work_completed(),
            base.work_completed()
        );
        if duet.work_completed() >= base.work_completed() {
            assert!(
                duet.maintenance_blocks <= base.maintenance_blocks,
                "{task:?}: duet {} blocks vs base {}",
                duet.maintenance_blocks,
                base.maintenance_blocks
            );
        }
    }
}

/// Rsync end-to-end: destination equals source (names and sizes) in
/// both modes, and Duet is at least as fast.
#[test]
fn rsync_mirrors_source_and_speeds_up() {
    let cfg = paper_scaled(
        512,
        Personality::WebServer,
        DistKind::Uniform,
        1.0,
        1.0,
        vec![],
        true,
    );
    let base = run_rsync_experiment(&cfg, false).unwrap();
    let duet = run_rsync_experiment(&cfg, true).unwrap();
    assert_eq!(base.metrics.done_units, base.metrics.total_units);
    assert_eq!(duet.metrics.done_units, duet.metrics.total_units);
    assert!(
        duet.completion <= base.completion,
        "duet {} vs base {}",
        duet.completion,
        base.completion
    );
}

/// Event-delivery sanity across the whole stack: every notification a
/// registered session receives refers to a page that was genuinely
/// touched, and sessions with disjoint masks see disjoint flag sets.
#[test]
fn notifications_reflect_real_activity() {
    let mut fs = btrfs(1 << 15, 512);
    let a = fs.populate_file(fs.root(), "a", 8 * PAGE_SIZE).unwrap();
    let b = fs.populate_file(fs.root(), "b", 8 * PAGE_SIZE).unwrap();
    let mut duet = Duet::with_defaults();
    let exists_sid = duet
        .register(
            TaskScope::File {
                registered_dir: fs.root(),
            },
            EventMask::EXISTS,
            &fs,
        )
        .unwrap();
    let dirty_sid = duet
        .register(
            TaskScope::File {
                registered_dir: fs.root(),
            },
            EventMask::DIRTIED,
            &fs,
        )
        .unwrap();
    fs.read(a, 0, 8 * PAGE_SIZE, IoClass::Normal, T0).unwrap();
    fs.write(b, 0, 4 * PAGE_SIZE, IoClass::Normal, T0).unwrap();
    pump_btrfs(&mut fs, &mut duet);
    let exists_items = duet.fetch(exists_sid, 64, &fs).unwrap();
    let dirty_items = duet.fetch(dirty_sid, 64, &fs).unwrap();
    // The EXISTS session sees both files' pages entering the cache.
    assert_eq!(exists_items.len(), 12);
    assert!(exists_items
        .iter()
        .all(|i| i.flags.contains(ItemFlags::EXISTS)));
    // The DIRTIED session sees only b's written pages.
    assert_eq!(dirty_items.len(), 4);
    assert!(dirty_items
        .iter()
        .all(|i| i.id.as_inode() == Some(b) && i.flags.contains(ItemFlags::DIRTIED)));
}
