//! Notification masks and item flags (Tables 1 and 2 of the paper).
//!
//! Tasks subscribe with an [`EventMask`] naming the notification types
//! they care about. Four are *event* notifications, "triggered when a
//! page is added, removed, modified, or flushed from the cache"; two are
//! *state* notifications, "emitted when the existence or modification
//! status of a page **changes**" — with revert cancellation: a page
//! removed and re-added between two fetches has not changed state, so no
//! notification is generated (§3.2).
//!
//! Fetched items carry [`ItemFlags`]. The kernel implementation packs
//! six bits; we widen the state axes into explicit set/clear bits
//! (`EXISTS`/`NOT_EXISTS`, `MODIFIED`/`NOT_MODIFIED`) so a returned flag
//! is never ambiguous. The information content is identical (Table 2
//! pairs `Removed` with `¬Exists` and `Flushed` with `¬Modified`).

use sim_cache::PageEvent;
use std::fmt;
use std::ops::{BitOr, BitOrAssign};

/// Subscription mask: which notifications a session receives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EventMask(u8);

impl EventMask {
    /// Event notification: page added to the cache.
    pub const ADDED: EventMask = EventMask(1 << 0);
    /// Event notification: page removed from the cache.
    pub const REMOVED: EventMask = EventMask(1 << 1);
    /// Event notification: dirty bit set.
    pub const DIRTIED: EventMask = EventMask(1 << 2);
    /// Event notification: dirty bit cleared (written back).
    pub const FLUSHED: EventMask = EventMask(1 << 3);
    /// State notification: existence status changed.
    pub const EXISTS: EventMask = EventMask(1 << 4);
    /// State notification: modification status changed.
    pub const MODIFIED: EventMask = EventMask(1 << 5);

    /// The empty mask.
    pub const fn empty() -> Self {
        EventMask(0)
    }

    /// Returns `true` if every bit of `other` is set in `self`.
    pub const fn contains(self, other: EventMask) -> bool {
        self.0 & other.0 == other.0
    }

    /// Returns `true` if any bit of `other` is set in `self`.
    pub const fn intersects(self, other: EventMask) -> bool {
        self.0 & other.0 != 0
    }

    /// Returns `true` if no notification type is selected.
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Returns `true` if the mask includes any state notification
    /// (`EXISTS` or `MODIFIED`). State sessions have bounded descriptor
    /// memory because opposing events cancel (§4.2).
    pub const fn has_state(self) -> bool {
        self.0 & (Self::EXISTS.0 | Self::MODIFIED.0) != 0
    }

    /// Returns `true` if the mask includes any of the four raw event
    /// notifications.
    pub const fn has_events(self) -> bool {
        self.0 & 0x0F != 0
    }

    /// Raw bits (for compact storage).
    pub const fn bits(self) -> u8 {
        self.0
    }
}

impl BitOr for EventMask {
    type Output = EventMask;
    fn bitor(self, rhs: EventMask) -> EventMask {
        EventMask(self.0 | rhs.0)
    }
}

impl BitOrAssign for EventMask {
    fn bitor_assign(&mut self, rhs: EventMask) {
        self.0 |= rhs.0;
    }
}

impl fmt::Display for EventMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names = [
            (Self::ADDED, "ADDED"),
            (Self::REMOVED, "REMOVED"),
            (Self::DIRTIED, "DIRTIED"),
            (Self::FLUSHED, "FLUSHED"),
            (Self::EXISTS, "EXISTS"),
            (Self::MODIFIED, "MODIFIED"),
        ];
        let mut first = true;
        for (bit, name) in names {
            if self.contains(bit) {
                if !first {
                    write!(f, "|")?;
                }
                write!(f, "{name}")?;
                first = false;
            }
        }
        if first {
            write!(f, "(none)")?;
        }
        Ok(())
    }
}

/// Flags on a fetched item: which notifications are pending for the
/// page, "identifying only the page events that have not yet been made
/// available to the task via fetch operations" (§3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ItemFlags(u8);

impl ItemFlags {
    /// Page was added.
    pub const ADDED: ItemFlags = ItemFlags(1 << 0);
    /// Page was removed.
    pub const REMOVED: ItemFlags = ItemFlags(1 << 1);
    /// Page was dirtied.
    pub const DIRTIED: ItemFlags = ItemFlags(1 << 2);
    /// Page was flushed.
    pub const FLUSHED: ItemFlags = ItemFlags(1 << 3);
    /// Existence state changed; the page now exists.
    pub const EXISTS: ItemFlags = ItemFlags(1 << 4);
    /// Existence state changed; the page no longer exists.
    pub const NOT_EXISTS: ItemFlags = ItemFlags(1 << 5);
    /// Modification state changed; the page is now modified.
    pub const MODIFIED: ItemFlags = ItemFlags(1 << 6);
    /// Modification state changed; the page is no longer modified.
    pub const NOT_MODIFIED: ItemFlags = ItemFlags(1 << 7);

    /// The empty flag set.
    pub const fn empty() -> Self {
        ItemFlags(0)
    }

    /// Returns `true` if every bit of `other` is set.
    pub const fn contains(self, other: ItemFlags) -> bool {
        self.0 & other.0 == other.0
    }

    /// Returns `true` if no flag is set.
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Raw bits.
    pub const fn bits(self) -> u8 {
        self.0
    }
}

impl BitOr for ItemFlags {
    type Output = ItemFlags;
    fn bitor(self, rhs: ItemFlags) -> ItemFlags {
        ItemFlags(self.0 | rhs.0)
    }
}

impl BitOrAssign for ItemFlags {
    fn bitor_assign(&mut self, rhs: ItemFlags) {
        self.0 |= rhs.0;
    }
}

/// Page state transition semantics of each cache event: the (exists,
/// modified) state before and after the event. Used to initialize a
/// session's last-reported state when a descriptor is first allocated,
/// and to advance the descriptor's current state.
pub(crate) fn transition(ev: PageEvent, meta_dirty: bool) -> ((bool, bool), (bool, bool)) {
    match ev {
        // A page that did not exist was not modified.
        PageEvent::Added => ((false, false), (true, meta_dirty)),
        PageEvent::Removed => ((true, meta_dirty), (false, false)),
        PageEvent::Dirtied => ((true, false), (true, true)),
        PageEvent::Flushed => ((true, true), (true, false)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mask_ops() {
        let m = EventMask::ADDED | EventMask::DIRTIED;
        assert!(m.contains(EventMask::ADDED));
        assert!(!m.contains(EventMask::FLUSHED));
        assert!(m.intersects(EventMask::DIRTIED | EventMask::EXISTS));
        assert!(!m.has_state());
        assert!(m.has_events());
        assert!((EventMask::EXISTS).has_state());
        assert!(!(EventMask::EXISTS).has_events());
        assert!(EventMask::empty().is_empty());
    }

    #[test]
    fn mask_display() {
        let m = EventMask::EXISTS | EventMask::FLUSHED;
        assert_eq!(m.to_string(), "FLUSHED|EXISTS");
        assert_eq!(EventMask::empty().to_string(), "(none)");
    }

    #[test]
    fn flags_ops() {
        let mut f = ItemFlags::EXISTS;
        f |= ItemFlags::MODIFIED;
        assert!(f.contains(ItemFlags::EXISTS));
        assert!(f.contains(ItemFlags::MODIFIED));
        assert!(!f.contains(ItemFlags::ADDED));
        assert!(ItemFlags::empty().is_empty());
    }

    #[test]
    fn transitions() {
        use sim_cache::PageEvent as E;
        assert_eq!(transition(E::Added, false), ((false, false), (true, false)));
        assert_eq!(transition(E::Added, true), ((false, false), (true, true)));
        assert_eq!(transition(E::Removed, true), ((true, true), (false, false)));
        assert_eq!(transition(E::Dirtied, true), ((true, false), (true, true)));
        assert_eq!(transition(E::Flushed, false), ((true, true), (true, false)));
    }
}
