//! Behavioural tests of the Duet framework against a mock filesystem.

use crate::events::{EventMask, ItemFlags};
use crate::framework::{Duet, DuetConfig};
use crate::session::{ItemId, TaskScope};
use sim_cache::FsIntrospect;
use sim_cache::{PageEvent, PageKey, PageMeta};
use sim_core::{BlockNr, DeviceId, InodeNr, PageIndex, SimError};
use std::collections::HashMap;

const DEV: DeviceId = DeviceId(0);
const ROOT: InodeNr = InodeNr(1);

/// A minimal filesystem stand-in: a parent tree, a page map and fibmap.
#[derive(Default)]
struct MockFs {
    parents: HashMap<InodeNr, InodeNr>,
    names: HashMap<InodeNr, String>,
    cache: HashMap<PageKey, PageMeta>,
    fibmap: HashMap<(InodeNr, PageIndex), BlockNr>,
}

impl MockFs {
    fn new() -> Self {
        let mut fs = MockFs::default();
        fs.parents.insert(ROOT, ROOT);
        fs.names.insert(ROOT, String::new());
        fs
    }

    fn add(&mut self, ino: u64, parent: InodeNr, name: &str) -> InodeNr {
        let ino = InodeNr(ino);
        self.parents.insert(ino, parent);
        self.names.insert(ino, name.to_string());
        ino
    }

    fn set_parent(&mut self, ino: InodeNr, parent: InodeNr) {
        self.parents.insert(ino, parent);
    }

    fn cache_page(&mut self, ino: InodeNr, idx: u64, block: Option<u64>, dirty: bool) -> PageMeta {
        let key = PageKey::new(ino, PageIndex(idx));
        let meta = PageMeta {
            key,
            block: block.map(BlockNr),
            dirty,
        };
        self.cache.insert(key, meta);
        if let Some(b) = block {
            self.fibmap.insert((ino, PageIndex(idx)), BlockNr(b));
        }
        meta
    }
}

impl FsIntrospect for MockFs {
    fn device(&self) -> DeviceId {
        DEV
    }

    fn is_under(&self, ino: InodeNr, dir: InodeNr) -> bool {
        let mut cur = ino;
        loop {
            if cur == dir {
                return true;
            }
            match self.parents.get(&cur) {
                Some(&p) if p != cur => cur = p,
                _ => return cur == dir,
            }
        }
    }

    fn path_of(&self, ino: InodeNr) -> Option<String> {
        if ino == ROOT {
            return Some("/".into());
        }
        let mut parts = Vec::new();
        let mut cur = ino;
        while cur != ROOT {
            parts.push(self.names.get(&cur)?.clone());
            cur = *self.parents.get(&cur)?;
        }
        let mut s = String::new();
        for p in parts.iter().rev() {
            s.push('/');
            s.push_str(p);
        }
        Some(s)
    }

    fn fibmap(&self, ino: InodeNr, index: PageIndex) -> Option<BlockNr> {
        self.fibmap.get(&(ino, index)).copied()
    }

    fn has_cached_pages(&self, ino: InodeNr) -> bool {
        self.cache.keys().any(|k| k.ino == ino)
    }

    fn cached_pages(&self) -> Vec<PageMeta> {
        self.cache.values().copied().collect()
    }

    fn cached_pages_of(&self, ino: InodeNr) -> Vec<PageMeta> {
        self.cache
            .values()
            .filter(|m| m.key.ino == ino)
            .copied()
            .collect()
    }
}

fn meta(ino: InodeNr, idx: u64, block: Option<u64>, dirty: bool) -> PageMeta {
    PageMeta {
        key: PageKey::new(ino, PageIndex(idx)),
        block: block.map(BlockNr),
        dirty,
    }
}

// ----- registration ---------------------------------------------------------

#[test]
fn register_rejects_empty_mask_and_overflow() {
    let fs = MockFs::new();
    let mut duet = Duet::new(DuetConfig {
        max_sessions: 2,
        descriptor_limit: 100,
    });
    assert!(matches!(
        duet.register(
            TaskScope::File {
                registered_dir: ROOT
            },
            EventMask::empty(),
            &fs
        ),
        Err(SimError::InvalidArgument(_))
    ));
    let s1 = duet
        .register(
            TaskScope::File {
                registered_dir: ROOT,
            },
            EventMask::EXISTS,
            &fs,
        )
        .unwrap();
    let _s2 = duet
        .register(
            TaskScope::File {
                registered_dir: ROOT,
            },
            EventMask::EXISTS,
            &fs,
        )
        .unwrap();
    assert_eq!(
        duet.register(
            TaskScope::File {
                registered_dir: ROOT
            },
            EventMask::EXISTS,
            &fs
        ),
        Err(SimError::TooManySessions)
    );
    duet.deregister(s1).unwrap();
    // Slot is reusable.
    duet.register(
        TaskScope::File {
            registered_dir: ROOT,
        },
        EventMask::EXISTS,
        &fs,
    )
    .unwrap();
    assert_eq!(duet.session_count(), 2);
}

#[test]
fn register_rejects_device_mismatch() {
    let fs = MockFs::new();
    let mut duet = Duet::with_defaults();
    assert!(matches!(
        duet.register(
            TaskScope::Block {
                device: DeviceId(9)
            },
            EventMask::ADDED,
            &fs
        ),
        Err(SimError::InvalidArgument(_))
    ));
}

#[test]
fn registration_scan_reports_cached_pages() {
    let mut fs = MockFs::new();
    let f = fs.add(10, ROOT, "f");
    fs.cache_page(f, 0, Some(100), false);
    fs.cache_page(f, 1, Some(101), true);
    let mut duet = Duet::with_defaults();
    let sid = duet
        .register(
            TaskScope::File {
                registered_dir: ROOT,
            },
            EventMask::EXISTS | EventMask::MODIFIED,
            &fs,
        )
        .unwrap();
    let mut items = duet.fetch(sid, 10, &fs).unwrap();
    items.sort_by_key(|i| i.offset);
    assert_eq!(items.len(), 2);
    assert!(items[0].flags.contains(ItemFlags::EXISTS));
    assert!(!items[0].flags.contains(ItemFlags::MODIFIED));
    assert!(items[1].flags.contains(ItemFlags::EXISTS));
    assert!(items[1].flags.contains(ItemFlags::MODIFIED), "dirty page");
    assert_eq!(items[0].id, ItemId::Inode(f));
    // Everything is up to date now.
    assert!(duet.fetch(sid, 10, &fs).unwrap().is_empty());
    assert_eq!(duet.descriptor_count(), 0, "descriptors freed after fetch");
}

// ----- event notifications ----------------------------------------------------

#[test]
fn event_session_receives_subscribed_events_only() {
    let mut fs = MockFs::new();
    let f = fs.add(10, ROOT, "f");
    let mut duet = Duet::with_defaults();
    let sid = duet
        .register(
            TaskScope::File {
                registered_dir: ROOT,
            },
            EventMask::ADDED | EventMask::DIRTIED,
            &fs,
        )
        .unwrap();
    duet.handle_page_event(meta(f, 0, Some(100), false), PageEvent::Added, &fs);
    duet.handle_page_event(meta(f, 0, Some(100), true), PageEvent::Dirtied, &fs);
    duet.handle_page_event(meta(f, 0, Some(100), false), PageEvent::Flushed, &fs);
    let items = duet.fetch(sid, 10, &fs).unwrap();
    assert_eq!(items.len(), 1, "merged into one item");
    assert!(items[0].flags.contains(ItemFlags::ADDED));
    assert!(items[0].flags.contains(ItemFlags::DIRTIED));
    assert!(
        !items[0].flags.contains(ItemFlags::FLUSHED),
        "not subscribed"
    );
}

#[test]
fn paper_example_add_fetch_remove() {
    // §3.2: "suppose a page is added, a fetch operation occurs, and then
    // the page is removed. The next fetch call will return an item for
    // the page with only the removed bit set."
    let mut fs = MockFs::new();
    let f = fs.add(10, ROOT, "f");
    let mut duet = Duet::with_defaults();
    let sid = duet
        .register(
            TaskScope::File {
                registered_dir: ROOT,
            },
            EventMask::ADDED | EventMask::REMOVED,
            &fs,
        )
        .unwrap();
    duet.handle_page_event(meta(f, 0, Some(100), false), PageEvent::Added, &fs);
    let first = duet.fetch(sid, 10, &fs).unwrap();
    assert_eq!(first.len(), 1);
    assert!(first[0].flags.contains(ItemFlags::ADDED));
    duet.handle_page_event(meta(f, 0, Some(100), false), PageEvent::Removed, &fs);
    let second = duet.fetch(sid, 10, &fs).unwrap();
    assert_eq!(second.len(), 1);
    assert_eq!(second[0].flags, ItemFlags::REMOVED, "only the removed bit");
}

// ----- state notifications ----------------------------------------------------

#[test]
fn state_cancellation_on_revert() {
    // §3.2: a page removed and re-added between fetches has reverted to
    // the same state — no event is generated. And the converse: added
    // then removed before any fetch yields nothing.
    let mut fs = MockFs::new();
    let f = fs.add(10, ROOT, "f");
    let mut duet = Duet::with_defaults();
    let sid = duet
        .register(
            TaskScope::File {
                registered_dir: ROOT,
            },
            EventMask::EXISTS,
            &fs,
        )
        .unwrap();
    duet.handle_page_event(meta(f, 0, Some(100), false), PageEvent::Added, &fs);
    duet.handle_page_event(meta(f, 0, Some(100), false), PageEvent::Removed, &fs);
    assert!(duet.fetch(sid, 10, &fs).unwrap().is_empty(), "cancelled");
    assert_eq!(
        duet.descriptor_count(),
        0,
        "descriptor freed by cancellation"
    );
    // Now: add, fetch (EXISTS reported), remove, re-add: reverted.
    duet.handle_page_event(meta(f, 0, Some(100), false), PageEvent::Added, &fs);
    let items = duet.fetch(sid, 10, &fs).unwrap();
    assert_eq!(items.len(), 1);
    assert!(items[0].flags.contains(ItemFlags::EXISTS));
    duet.handle_page_event(meta(f, 0, Some(100), false), PageEvent::Removed, &fs);
    duet.handle_page_event(meta(f, 0, Some(100), false), PageEvent::Added, &fs);
    assert!(
        duet.fetch(sid, 10, &fs).unwrap().is_empty(),
        "reverted to reported state"
    );
}

#[test]
fn state_change_reported_after_fetch() {
    let mut fs = MockFs::new();
    let f = fs.add(10, ROOT, "f");
    let mut duet = Duet::with_defaults();
    let sid = duet
        .register(
            TaskScope::File {
                registered_dir: ROOT,
            },
            EventMask::EXISTS,
            &fs,
        )
        .unwrap();
    duet.handle_page_event(meta(f, 0, Some(100), false), PageEvent::Added, &fs);
    let items = duet.fetch(sid, 10, &fs).unwrap();
    assert!(items[0].flags.contains(ItemFlags::EXISTS));
    duet.handle_page_event(meta(f, 0, Some(100), false), PageEvent::Removed, &fs);
    let items = duet.fetch(sid, 10, &fs).unwrap();
    assert_eq!(items.len(), 1);
    assert!(items[0].flags.contains(ItemFlags::NOT_EXISTS));
}

#[test]
fn modified_axis_tracks_dirty_and_flush() {
    let mut fs = MockFs::new();
    let f = fs.add(10, ROOT, "f");
    let mut duet = Duet::with_defaults();
    let sid = duet
        .register(
            TaskScope::File {
                registered_dir: ROOT,
            },
            EventMask::MODIFIED,
            &fs,
        )
        .unwrap();
    duet.handle_page_event(meta(f, 0, Some(100), false), PageEvent::Added, &fs);
    // Existence changes are not subscribed; nothing pending.
    assert!(duet.fetch(sid, 10, &fs).unwrap().is_empty());
    duet.handle_page_event(meta(f, 0, Some(100), true), PageEvent::Dirtied, &fs);
    let items = duet.fetch(sid, 10, &fs).unwrap();
    assert!(items[0].flags.contains(ItemFlags::MODIFIED));
    duet.handle_page_event(meta(f, 0, Some(100), false), PageEvent::Flushed, &fs);
    let items = duet.fetch(sid, 10, &fs).unwrap();
    assert!(items[0].flags.contains(ItemFlags::NOT_MODIFIED));
    // Dirty+flush between fetches cancels.
    duet.handle_page_event(meta(f, 0, Some(100), true), PageEvent::Dirtied, &fs);
    duet.handle_page_event(meta(f, 0, Some(100), false), PageEvent::Flushed, &fs);
    assert!(duet.fetch(sid, 10, &fs).unwrap().is_empty());
}

// ----- relevance ---------------------------------------------------------------

#[test]
fn file_task_filters_by_registered_directory() {
    let mut fs = MockFs::new();
    let dir = fs.add(2, ROOT, "watched");
    let inside = fs.add(10, dir, "in");
    let outside = fs.add(11, ROOT, "out");
    let mut duet = Duet::with_defaults();
    let sid = duet
        .register(
            TaskScope::File {
                registered_dir: dir,
            },
            EventMask::EXISTS,
            &fs,
        )
        .unwrap();
    duet.handle_page_event(meta(inside, 0, Some(1), false), PageEvent::Added, &fs);
    duet.handle_page_event(meta(outside, 0, Some(2), false), PageEvent::Added, &fs);
    let items = duet.fetch(sid, 10, &fs).unwrap();
    assert_eq!(items.len(), 1);
    assert_eq!(items[0].id, ItemId::Inode(inside));
    // The irrelevant file was marked done: no walk on later events.
    assert!(duet.check_done(sid, ItemId::Inode(outside)).unwrap());
    assert!(!duet.check_done(sid, ItemId::Inode(inside)).unwrap());
}

// ----- block tasks / fibmap bridging ---------------------------------------------

#[test]
fn block_task_receives_block_items() {
    let mut fs = MockFs::new();
    let f = fs.add(10, ROOT, "f");
    let mut duet = Duet::with_defaults();
    let sid = duet
        .register(TaskScope::Block { device: DEV }, EventMask::ADDED, &fs)
        .unwrap();
    duet.handle_page_event(meta(f, 3, Some(103), false), PageEvent::Added, &fs);
    let items = duet.fetch(sid, 10, &fs).unwrap();
    assert_eq!(items.len(), 1);
    assert_eq!(items[0].id, ItemId::Block(BlockNr(103)));
    assert_eq!(items[0].offset, 0);
}

#[test]
fn blockless_pages_deferred_for_block_tasks() {
    // §4.2: "In the event that a page does not correspond to a block yet
    // (e.g. due to delayed allocation), the page is left to be returned
    // by a later fetch operation."
    let mut fs = MockFs::new();
    let f = fs.add(10, ROOT, "f");
    let mut duet = Duet::with_defaults();
    let sid = duet
        .register(
            TaskScope::Block { device: DEV },
            EventMask::ADDED | EventMask::DIRTIED,
            &fs,
        )
        .unwrap();
    // Event with no block: filtered at intake (deferred).
    duet.handle_page_event(meta(f, 0, None, true), PageEvent::Dirtied, &fs);
    assert!(duet.fetch(sid, 10, &fs).unwrap().is_empty());
    // Once the block is allocated and a new event arrives, it flows.
    fs.fibmap.insert((f, PageIndex(0)), BlockNr(55));
    duet.handle_page_event(meta(f, 0, Some(55), true), PageEvent::Dirtied, &fs);
    let items = duet.fetch(sid, 10, &fs).unwrap();
    assert_eq!(items.len(), 1);
    assert_eq!(items[0].id, ItemId::Block(BlockNr(55)));
}

// ----- done tracking --------------------------------------------------------------

#[test]
fn set_done_file_clears_pending_and_filters_future() {
    let mut fs = MockFs::new();
    let f = fs.add(10, ROOT, "f");
    let mut duet = Duet::with_defaults();
    let sid = duet
        .register(
            TaskScope::File {
                registered_dir: ROOT,
            },
            EventMask::EXISTS,
            &fs,
        )
        .unwrap();
    duet.handle_page_event(meta(f, 0, Some(1), false), PageEvent::Added, &fs);
    duet.handle_page_event(meta(f, 1, Some(2), false), PageEvent::Added, &fs);
    duet.set_done(sid, ItemId::Inode(f)).unwrap();
    assert!(
        duet.fetch(sid, 10, &fs).unwrap().is_empty(),
        "marked up-to-date"
    );
    assert_eq!(duet.descriptor_count(), 0);
    // Future events on the file are ignored.
    duet.handle_page_event(meta(f, 2, Some(3), false), PageEvent::Added, &fs);
    assert!(duet.fetch(sid, 10, &fs).unwrap().is_empty());
    // unset_done re-enables tracking.
    duet.unset_done(sid, ItemId::Inode(f)).unwrap();
    duet.handle_page_event(meta(f, 3, Some(4), false), PageEvent::Added, &fs);
    assert_eq!(duet.fetch(sid, 10, &fs).unwrap().len(), 1);
}

#[test]
fn set_done_block_filters_lazily() {
    let mut fs = MockFs::new();
    let f = fs.add(10, ROOT, "f");
    let mut duet = Duet::with_defaults();
    let sid = duet
        .register(TaskScope::Block { device: DEV }, EventMask::ADDED, &fs)
        .unwrap();
    duet.handle_page_event(meta(f, 0, Some(7), false), PageEvent::Added, &fs);
    // Mark done after the event arrived but before fetching.
    duet.set_done(sid, ItemId::Block(BlockNr(7))).unwrap();
    assert!(duet.fetch(sid, 10, &fs).unwrap().is_empty());
    // Future events for the block are filtered at intake.
    duet.handle_page_event(meta(f, 0, Some(7), false), PageEvent::Added, &fs);
    assert!(duet.fetch(sid, 10, &fs).unwrap().is_empty());
    assert!(duet.check_done(sid, ItemId::Block(BlockNr(7))).unwrap());
}

// ----- get_path --------------------------------------------------------------------

#[test]
fn get_path_relative_and_truth_check() {
    let mut fs = MockFs::new();
    let dir = fs.add(2, ROOT, "watched");
    let sub = fs.add(3, dir, "sub");
    let f = fs.add(10, sub, "file.txt");
    let mut duet = Duet::with_defaults();
    let sid = duet
        .register(
            TaskScope::File {
                registered_dir: dir,
            },
            EventMask::EXISTS,
            &fs,
        )
        .unwrap();
    // No cached pages: the hint is stale — back out (§3.2).
    assert_eq!(
        duet.get_path(sid, f, &fs),
        Err(SimError::PathNotAvailable(f))
    );
    fs.cache_page(f, 0, Some(1), false);
    assert_eq!(duet.get_path(sid, f, &fs).unwrap(), "sub/file.txt");
    // Root-registered session gets the path without a leading slash.
    let sid2 = duet
        .register(
            TaskScope::File {
                registered_dir: ROOT,
            },
            EventMask::EXISTS,
            &fs,
        )
        .unwrap();
    assert_eq!(duet.get_path(sid2, f, &fs).unwrap(), "watched/sub/file.txt");
    // Block sessions cannot resolve paths.
    let sid3 = duet
        .register(TaskScope::Block { device: DEV }, EventMask::ADDED, &fs)
        .unwrap();
    assert!(matches!(
        duet.get_path(sid3, f, &fs),
        Err(SimError::Unsupported(_))
    ));
}

// ----- renames ----------------------------------------------------------------------

#[test]
fn file_moved_into_registered_directory() {
    let mut fs = MockFs::new();
    let dir = fs.add(2, ROOT, "watched");
    let f = fs.add(10, ROOT, "f");
    fs.cache_page(f, 0, Some(1), false);
    let mut duet = Duet::with_defaults();
    let sid = duet
        .register(
            TaskScope::File {
                registered_dir: dir,
            },
            EventMask::EXISTS,
            &fs,
        )
        .unwrap();
    // Outside: an event marks it done-as-irrelevant.
    duet.handle_page_event(meta(f, 0, Some(1), false), PageEvent::Added, &fs);
    assert!(duet.fetch(sid, 10, &fs).unwrap().is_empty());
    // Move it in: descriptors are seeded from its cached pages (§4.1).
    let old_parent = ROOT;
    fs.set_parent(f, dir);
    duet.handle_rename(f, old_parent, false, &fs);
    let items = duet.fetch(sid, 10, &fs).unwrap();
    assert_eq!(items.len(), 1);
    assert!(items[0].flags.contains(ItemFlags::EXISTS));
}

#[test]
fn file_moved_out_reports_removed_then_ignored() {
    let mut fs = MockFs::new();
    let dir = fs.add(2, ROOT, "watched");
    let f = fs.add(10, dir, "f");
    fs.cache_page(f, 0, Some(1), false);
    let mut duet = Duet::with_defaults();
    let sid = duet
        .register(
            TaskScope::File {
                registered_dir: dir,
            },
            EventMask::EXISTS | EventMask::REMOVED,
            &fs,
        )
        .unwrap();
    // Drain the registration scan.
    let _ = duet.fetch(sid, 10, &fs).unwrap();
    // Move out.
    fs.set_parent(f, ROOT);
    duet.handle_rename(f, dir, false, &fs);
    let items = duet.fetch(sid, 10, &fs).unwrap();
    assert_eq!(items.len(), 1);
    assert!(items[0].flags.contains(ItemFlags::REMOVED));
    assert!(items[0].flags.contains(ItemFlags::NOT_EXISTS));
    // The file is done: new events are ignored.
    duet.handle_page_event(meta(f, 1, Some(2), false), PageEvent::Added, &fs);
    assert!(duet.fetch(sid, 10, &fs).unwrap().is_empty());
}

#[test]
fn directory_rename_resets_relevance_except_processed() {
    let mut fs = MockFs::new();
    let dir = fs.add(2, ROOT, "watched");
    let sub = fs.add(3, dir, "sub");
    let f1 = fs.add(10, sub, "a");
    let f2 = fs.add(11, sub, "b");
    let mut duet = Duet::with_defaults();
    let sid = duet
        .register(
            TaskScope::File {
                registered_dir: dir,
            },
            EventMask::EXISTS,
            &fs,
        )
        .unwrap();
    duet.handle_page_event(meta(f1, 0, Some(1), false), PageEvent::Added, &fs);
    duet.handle_page_event(meta(f2, 0, Some(2), false), PageEvent::Added, &fs);
    let _ = duet.fetch(sid, 10, &fs).unwrap();
    // f1 fully processed: relevant + done.
    duet.set_done(sid, ItemId::Inode(f1)).unwrap();
    // Move `sub` out of the registered directory.
    fs.set_parent(sub, ROOT);
    duet.handle_rename(sub, dir, true, &fs);
    // f1 keeps both bits (won't generate unnecessary events); f2 was
    // reset and will be re-checked on next access — and found
    // irrelevant now.
    assert!(duet.check_done(sid, ItemId::Inode(f1)).unwrap());
    assert!(!duet.check_done(sid, ItemId::Inode(f2)).unwrap());
    duet.handle_page_event(meta(f2, 1, Some(3), false), PageEvent::Added, &fs);
    assert!(duet.fetch(sid, 10, &fs).unwrap().is_empty());
    assert!(
        duet.check_done(sid, ItemId::Inode(f2)).unwrap(),
        "re-marked irrelevant"
    );
}

// ----- bounds / bookkeeping -------------------------------------------------------

#[test]
fn event_only_sessions_drop_over_limit() {
    let mut fs = MockFs::new();
    let f = fs.add(10, ROOT, "f");
    let mut duet = Duet::new(DuetConfig {
        max_sessions: 2,
        descriptor_limit: 3,
    });
    let sid = duet
        .register(
            TaskScope::File {
                registered_dir: ROOT,
            },
            EventMask::ADDED,
            &fs,
        )
        .unwrap();
    for i in 0..10 {
        duet.handle_page_event(meta(f, i, Some(i), false), PageEvent::Added, &fs);
    }
    assert_eq!(duet.queue_len(sid).unwrap(), 3);
    assert_eq!(duet.dropped_events(sid).unwrap(), 7);
    assert_eq!(duet.stats().events_dropped, 7);
    // State sessions are never dropped.
    let sid2 = duet
        .register(
            TaskScope::File {
                registered_dir: ROOT,
            },
            EventMask::EXISTS,
            &fs,
        )
        .unwrap();
    for i in 10..20 {
        duet.handle_page_event(meta(f, i, Some(i), false), PageEvent::Added, &fs);
    }
    assert_eq!(duet.fetch(sid2, 100, &fs).unwrap().len(), 10);
    assert_eq!(duet.dropped_events(sid2).unwrap(), 0);
}

#[test]
fn fetch_respects_max() {
    let mut fs = MockFs::new();
    let f = fs.add(10, ROOT, "f");
    let mut duet = Duet::with_defaults();
    let sid = duet
        .register(
            TaskScope::File {
                registered_dir: ROOT,
            },
            EventMask::EXISTS,
            &fs,
        )
        .unwrap();
    for i in 0..10 {
        duet.handle_page_event(meta(f, i, Some(i), false), PageEvent::Added, &fs);
    }
    let a = duet.fetch(sid, 4, &fs).unwrap();
    assert_eq!(a.len(), 4);
    let b = duet.fetch(sid, 100, &fs).unwrap();
    assert_eq!(b.len(), 6);
}

#[test]
fn memory_accounting_tracks_descriptors_and_bitmaps() {
    let mut fs = MockFs::new();
    let f = fs.add(10, ROOT, "f");
    let mut duet = Duet::with_defaults();
    let sid = duet
        .register(
            TaskScope::File {
                registered_dir: ROOT,
            },
            EventMask::EXISTS,
            &fs,
        )
        .unwrap();
    let m0 = duet.memory_bytes();
    for i in 0..100 {
        duet.handle_page_event(meta(f, i, Some(i), false), PageEvent::Added, &fs);
    }
    assert_eq!(duet.descriptor_count(), 100);
    assert!(duet.memory_bytes() > m0);
    assert_eq!(duet.stats().peak_descriptors, 100);
    let _ = duet.fetch(sid, 1000, &fs).unwrap();
    assert_eq!(duet.descriptor_count(), 0);
    // Bitmap memory remains (relevant bit for the file).
    assert!(duet.memory_bytes() > 0);
}

#[test]
fn two_sessions_independent_views_on_merged_descriptor() {
    let mut fs = MockFs::new();
    let f = fs.add(10, ROOT, "f");
    let mut duet = Duet::with_defaults();
    let s1 = duet
        .register(
            TaskScope::File {
                registered_dir: ROOT,
            },
            EventMask::EXISTS,
            &fs,
        )
        .unwrap();
    let s2 = duet
        .register(
            TaskScope::File {
                registered_dir: ROOT,
            },
            EventMask::DIRTIED,
            &fs,
        )
        .unwrap();
    duet.handle_page_event(meta(f, 0, Some(1), false), PageEvent::Added, &fs);
    duet.handle_page_event(meta(f, 0, Some(1), true), PageEvent::Dirtied, &fs);
    // One merged descriptor serves both sessions.
    assert_eq!(duet.descriptor_count(), 1);
    let i1 = duet.fetch(s1, 10, &fs).unwrap();
    assert_eq!(i1.len(), 1);
    assert!(i1[0].flags.contains(ItemFlags::EXISTS));
    // Session 1 fetch must not consume session 2's pending bits.
    let i2 = duet.fetch(s2, 10, &fs).unwrap();
    assert_eq!(i2.len(), 1);
    assert!(i2[0].flags.contains(ItemFlags::DIRTIED));
    assert_eq!(duet.descriptor_count(), 0);
}

#[test]
fn deregister_releases_descriptors() {
    let mut fs = MockFs::new();
    let f = fs.add(10, ROOT, "f");
    let mut duet = Duet::with_defaults();
    let sid = duet
        .register(
            TaskScope::File {
                registered_dir: ROOT,
            },
            EventMask::EXISTS,
            &fs,
        )
        .unwrap();
    for i in 0..5 {
        duet.handle_page_event(meta(f, i, Some(i), false), PageEvent::Added, &fs);
    }
    assert_eq!(duet.descriptor_count(), 5);
    duet.deregister(sid).unwrap();
    assert_eq!(duet.descriptor_count(), 0);
    assert_eq!(duet.session_count(), 0);
    assert!(matches!(
        duet.fetch(sid, 1, &fs),
        Err(SimError::InvalidSession(_))
    ));
}

#[test]
fn status_reports_sessions_and_counters() {
    let mut fs = MockFs::new();
    let f = fs.add(10, ROOT, "f");
    let mut duet = Duet::with_defaults();
    duet.register(
        TaskScope::File {
            registered_dir: ROOT,
        },
        EventMask::EXISTS,
        &fs,
    )
    .unwrap();
    duet.register(TaskScope::Block { device: DEV }, EventMask::ADDED, &fs)
        .unwrap();
    duet.handle_page_event(meta(f, 0, Some(1), false), PageEvent::Added, &fs);
    let s = duet.status();
    assert!(s.contains("2 session(s)"), "{s}");
    assert!(s.contains("file task under"), "{s}");
    assert!(s.contains("block task on dev#0"), "{s}");
    assert!(s.contains("EXISTS"), "{s}");
    assert!(s.contains("1 events processed"), "{s}");
}

#[test]
fn pending_pages_reports_unconsumed_hints() {
    let mut fs = MockFs::new();
    let f = fs.add(10, ROOT, "f");
    let mut duet = Duet::with_defaults();
    let sid = duet
        .register(
            TaskScope::File {
                registered_dir: ROOT,
            },
            EventMask::EXISTS,
            &fs,
        )
        .unwrap();
    for i in 0..5 {
        duet.handle_page_event(meta(f, i, Some(i), false), PageEvent::Added, &fs);
    }
    assert_eq!(duet.pending_pages(100).len(), 5);
    assert_eq!(duet.pending_pages(3).len(), 3, "cap respected");
    let _ = duet.fetch(sid, 100, &fs).unwrap();
    assert!(
        duet.pending_pages(100).is_empty(),
        "consumed hints drop out"
    );
}

#[test]
fn delete_clears_bitmap_state() {
    let mut fs = MockFs::new();
    let f = fs.add(10, ROOT, "f");
    let mut duet = Duet::with_defaults();
    let sid = duet
        .register(
            TaskScope::File {
                registered_dir: ROOT,
            },
            EventMask::EXISTS,
            &fs,
        )
        .unwrap();
    duet.handle_page_event(meta(f, 0, Some(1), false), PageEvent::Added, &fs);
    duet.set_done(sid, ItemId::Inode(f)).unwrap();
    assert!(duet.check_done(sid, ItemId::Inode(f)).unwrap());
    duet.handle_delete(f);
    assert!(!duet.check_done(sid, ItemId::Inode(f)).unwrap());
}

// ----- fault injection -----------------------------------------------------

mod faults {
    use super::*;
    use sim_core::fault::{FaultHandle, FaultPlan, FaultSite};

    fn file_scope() -> TaskScope {
        TaskScope::File {
            registered_dir: ROOT,
        }
    }

    #[test]
    fn forced_session_exhaustion_despite_free_slots() {
        let fs = MockFs::new();
        let mut duet = Duet::with_defaults();
        let plan = FaultPlan::quiet().with_ppm(FaultSite::DuetSessionExhaustion, 1_000_000);
        let handle = FaultHandle::new(3, plan);
        duet.set_faults(Some(handle.clone()));
        let err = duet
            .register(file_scope(), EventMask::EXISTS, &fs)
            .unwrap_err();
        assert_eq!(err, SimError::TooManySessions);
        assert_eq!(handle.fired(FaultSite::DuetSessionExhaustion), 1);
        assert_eq!(duet.session_count(), 0);
        // Disarmed, the same register succeeds: the slot was never used.
        duet.set_faults(None);
        duet.register(file_scope(), EventMask::EXISTS, &fs).unwrap();
    }

    #[test]
    fn forced_path_unavailable_on_get_path() {
        let mut fs = MockFs::new();
        let f = fs.add(10, ROOT, "f");
        fs.cache_page(f, 0, Some(5), false);
        let mut duet = Duet::with_defaults();
        let sid = duet.register(file_scope(), EventMask::EXISTS, &fs).unwrap();
        let plan = FaultPlan::quiet().with_ppm(FaultSite::DuetPathUnavailable, 1_000_000);
        let handle = FaultHandle::new(4, plan);
        duet.set_faults(Some(handle.clone()));
        // The file is cached and in scope, yet the forced fault makes
        // get_path report it unavailable — the §3.2 back-out trigger.
        let err = duet.get_path(sid, f, &fs).unwrap_err();
        assert_eq!(err, SimError::PathNotAvailable(f));
        assert!(handle.fired(FaultSite::DuetPathUnavailable) >= 1);
        duet.set_faults(None);
        assert_eq!(duet.get_path(sid, f, &fs).unwrap(), "f");
    }

    #[test]
    fn churn_keeps_sid_valid_but_resets_framework_state() {
        let mut fs = MockFs::new();
        let f = fs.add(10, ROOT, "f");
        fs.cache_page(f, 0, Some(5), false);
        let mut duet = Duet::with_defaults();
        let sid = duet.register(file_scope(), EventMask::EXISTS, &fs).unwrap();
        // Drain the registration-scan item, then mark it done.
        let items = duet.fetch(sid, 16, &fs).unwrap();
        assert_eq!(items.len(), 1);
        duet.set_done(sid, ItemId::Inode(f)).unwrap();
        assert!(duet.check_done(sid, ItemId::Inode(f)).unwrap());
        // Churn: same sid, fresh session — done bitmap and queue are
        // gone, and the re-registration scan re-seeds the cached page.
        duet.churn_session(sid, &fs).unwrap();
        assert_eq!(duet.session_count(), 1);
        assert!(!duet.check_done(sid, ItemId::Inode(f)).unwrap());
        let items = duet.fetch(sid, 16, &fs).unwrap();
        assert_eq!(items.len(), 1, "rescan re-delivers the cached page");
        assert_eq!(items[0].id, ItemId::Inode(f));
    }

    #[test]
    fn churn_fault_fires_on_page_events() {
        let mut fs = MockFs::new();
        let f = fs.add(10, ROOT, "f");
        let mut duet = Duet::with_defaults();
        let sid = duet.register(file_scope(), EventMask::EXISTS, &fs).unwrap();
        let plan = FaultPlan::quiet().with_ppm(FaultSite::DuetSessionChurn, 1_000_000);
        let handle = FaultHandle::new(5, plan);
        duet.set_faults(Some(handle.clone()));
        duet.handle_page_event(meta(f, 0, Some(1), false), PageEvent::Added, &fs);
        assert_eq!(handle.fired(FaultSite::DuetSessionChurn), 1);
        // The session survived the churn and processed the event.
        let items = duet.fetch(sid, 16, &fs).unwrap();
        assert_eq!(items.len(), 1);
    }

    #[test]
    fn churn_of_invalid_session_is_an_error() {
        let fs = MockFs::new();
        let mut duet = Duet::with_defaults();
        let err = duet
            .churn_session(crate::session::SessionId(9), &fs)
            .unwrap_err();
        assert_eq!(err, SimError::InvalidSession(9));
    }
}
