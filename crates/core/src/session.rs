//! Duet sessions: per-task registration state.
//!
//! A session is created by `duet_register` and identified by a small
//! integer that indexes the per-session slot in every merged item
//! descriptor (§4.2). Block tasks register a device and keep one `done`
//! bitmap (a bit per device block); file tasks register a directory and
//! keep `done` + `relevant` bitmaps (a bit per inode each) (§4.1).

use crate::events::EventMask;
use sim_cache::PageKey;
use sim_core::{DeviceId, InodeNr, SparseBitmap};
use std::collections::VecDeque;

/// Identifier of a registered session (0 .. max_sessions-1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SessionId(pub u32);

impl std::fmt::Display for SessionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sid#{}", self.0)
    }
}

/// What a task registered: a device (block task) or a directory subtree
/// (file task) — the `path` argument of `duet_register` (§3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskScope {
    /// Block-layer task: receives events for the whole device.
    Block {
        /// The registered device.
        device: DeviceId,
    },
    /// File-layer task: receives events for files and directories under
    /// the registered directory.
    File {
        /// The registered directory.
        registered_dir: InodeNr,
    },
}

/// Per-session state inside the framework.
#[derive(Debug, Clone)]
pub(crate) struct Session {
    pub scope: TaskScope,
    pub mask: EventMask,
    /// Completed work: blocks (block tasks) or inodes (file tasks).
    pub done: SparseBitmap,
    /// Known-relevant inodes (file tasks only).
    pub relevant: SparseBitmap,
    /// Pages with newly-pending notifications, in arrival order.
    pub queue: VecDeque<PageKey>,
    /// Events dropped because the per-session descriptor limit was hit
    /// (event-only sessions; §4.2 denial-of-service bound).
    pub dropped: u64,
}

impl Session {
    pub(crate) fn new(scope: TaskScope, mask: EventMask) -> Self {
        Session {
            scope,
            mask,
            done: SparseBitmap::new(),
            relevant: SparseBitmap::new(),
            queue: VecDeque::new(),
            dropped: 0,
        }
    }

    /// Bitmap memory charged to this session (§6.4 accounting).
    pub(crate) fn bitmap_bytes(&self) -> u64 {
        self.done.memory_bytes() + self.relevant.memory_bytes()
    }

    /// Feeds the session's complete deterministic state into a
    /// fork-equivalence digest.
    pub(crate) fn digest_state(&self, d: &mut sim_core::snapshot::Digest) {
        match self.scope {
            TaskScope::Block { device } => {
                d.write_u32(0);
                d.write_u32(device.raw());
            }
            TaskScope::File { registered_dir } => {
                d.write_u32(1);
                d.write_u64(registered_dir.raw());
            }
        }
        d.write_u32(self.mask.bits() as u32);
        self.done.digest_state(d);
        self.relevant.digest_state(d);
        d.write_usize(self.queue.len());
        for k in &self.queue {
            d.write_u64(k.ino.raw());
            d.write_u64(k.index.raw());
        }
        d.write_u64(self.dropped);
    }
}

/// An item returned by `duet_fetch`: `(item_id, offset, flags)` (§3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Item {
    /// Block number (block tasks) or inode number (file tasks).
    pub id: ItemId,
    /// Byte offset within the file (file tasks; 0 for block tasks).
    pub offset: u64,
    /// Pending notifications for the page.
    pub flags: crate::events::ItemFlags,
    /// For block tasks, the block *currently* backing the page, when it
    /// differs from `id` — a log-structured flush migrates the page to a
    /// new block, and the F2fs garbage collector "adjusts the in-memory
    /// counters for both the old and new segments" (§5.4). The kernel
    /// implementation learns both locations from the writeback context;
    /// we surface the same information here. `None` for file tasks and
    /// when the block is unchanged.
    pub moved_to: Option<sim_core::BlockNr>,
}

/// Typed item identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ItemId {
    /// A device block (block tasks).
    Block(sim_core::BlockNr),
    /// A file or directory (file tasks).
    Inode(InodeNr),
}

impl ItemId {
    /// The inode, if this is a file item.
    pub fn as_inode(self) -> Option<InodeNr> {
        match self {
            ItemId::Inode(i) => Some(i),
            ItemId::Block(_) => None,
        }
    }

    /// The block, if this is a block item.
    pub fn as_block(self) -> Option<sim_core::BlockNr> {
        match self {
            ItemId::Block(b) => Some(b),
            ItemId::Inode(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn item_id_accessors() {
        let b = ItemId::Block(sim_core::BlockNr(7));
        let i = ItemId::Inode(InodeNr(3));
        assert_eq!(b.as_block(), Some(sim_core::BlockNr(7)));
        assert_eq!(b.as_inode(), None);
        assert_eq!(i.as_inode(), Some(InodeNr(3)));
        assert_eq!(i.as_block(), None);
    }

    #[test]
    fn session_display() {
        assert_eq!(SessionId(3).to_string(), "sid#3");
    }
}
