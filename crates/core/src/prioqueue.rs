//! The Duet task library's priority queue.
//!
//! "The Duet library is used by both in-kernel and user-level tasks. It
//! implements a priority queue for storing Duet events that are fetched
//! using the Duet API. ... Our current implementation uses a red-black
//! tree for the priority queue." (§4.2)
//!
//! Tasks enqueue items keyed by a task-specific priority — e.g. the
//! number of pages a file has in memory (rsync) or the fraction of its
//! pages resident (defragmentation) — and dequeue the highest-priority
//! item (Algorithm 1). Priorities are updatable: re-upserting a key
//! replaces its priority.
//!
//! The implementation is a binary max-heap over `(priority, key)` with
//! a [`DMap`] position index, so upsert, remove and pop are all
//! O(log n) with dense array storage instead of the old pair of
//! B-trees. Because keys are unique, `(priority, key)` is a strict
//! total order: the pop sequence is a pure function of the queue's
//! contents — same documented tie-break (max priority, ties by largest
//! key), independent of insertion history and of heap layout.

use sim_core::dmap::{DMap, DetHash};

/// An updatable max-priority queue over unique keys.
///
/// # Examples
///
/// ```
/// use duet::PrioQueue;
///
/// let mut q: PrioQueue<u64, u64> = PrioQueue::new();
/// q.upsert(10, 3);
/// q.upsert(20, 7);
/// q.upsert(10, 9); // update
/// assert_eq!(q.pop_max(), Some((10, 9)));
/// assert_eq!(q.pop_max(), Some((20, 7)));
/// assert_eq!(q.pop_max(), None);
/// ```
#[derive(Debug, Clone)]
pub struct PrioQueue<K: Ord + Copy, P: Ord + Copy> {
    /// Binary max-heap ordered by `(P, K)` tuple order — priority
    /// first, then key, which *is* the documented tie-break.
    heap: Vec<(P, K)>,
    /// Key → current index in `heap`, maintained across sifts so
    /// `upsert`/`remove` find their element in O(1).
    pos: DMap<K, u32>,
}

impl<K: Ord + Copy + DetHash, P: Ord + Copy> Default for PrioQueue<K, P> {
    fn default() -> Self {
        PrioQueue::new()
    }
}

impl<K: Ord + Copy + DetHash, P: Ord + Copy> PrioQueue<K, P> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        PrioQueue {
            heap: Vec::new(),
            pos: DMap::new(),
        }
    }

    /// Number of queued keys.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` if the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    #[inline]
    fn set_pos(&mut self, i: usize) {
        let k = self.heap[i].1;
        self.pos.insert(k, i as u32);
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.heap[i] <= self.heap[parent] {
                break;
            }
            self.heap.swap(i, parent);
            self.set_pos(i);
            i = parent;
        }
        self.set_pos(i);
    }

    fn sift_down(&mut self, mut i: usize) {
        loop {
            let left = 2 * i + 1;
            if left >= self.heap.len() {
                break;
            }
            let right = left + 1;
            let child = if right < self.heap.len() && self.heap[right] > self.heap[left] {
                right
            } else {
                left
            };
            if self.heap[child] <= self.heap[i] {
                break;
            }
            self.heap.swap(i, child);
            self.set_pos(i);
            i = child;
        }
        self.set_pos(i);
    }

    /// Restores the heap property at `i` after an arbitrary value
    /// change (the element may need to move either direction).
    fn fix(&mut self, i: usize) {
        if i > 0 && self.heap[i] > self.heap[(i - 1) / 2] {
            self.sift_up(i);
        } else {
            self.sift_down(i);
        }
    }

    /// Inserts a key or updates its priority. Returns the previous
    /// priority if the key was present.
    pub fn upsert(&mut self, key: K, prio: P) -> Option<P> {
        if let Some(&i) = self.pos.get(&key) {
            let i = i as usize;
            let old = self.heap[i].0;
            self.heap[i].0 = prio;
            self.fix(i);
            Some(old)
        } else {
            let i = self.heap.len();
            self.heap.push((prio, key));
            self.pos.insert(key, i as u32);
            self.sift_up(i);
            None
        }
    }

    /// The current priority of a key.
    pub fn priority_of(&self, key: K) -> Option<P> {
        self.pos.get(&key).map(|&i| self.heap[i as usize].0)
    }

    /// Removes a key. Returns its priority if present.
    pub fn remove(&mut self, key: K) -> Option<P> {
        let i = self.pos.remove(&key)? as usize;
        let (p, _) = self.heap[i];
        self.heap.swap_remove(i);
        if i < self.heap.len() {
            self.fix(i);
        }
        Some(p)
    }

    /// Removes and returns the highest-priority entry (ties broken by
    /// largest key).
    pub fn pop_max(&mut self) -> Option<(K, P)> {
        let &(p, k) = self.heap.first()?;
        self.pos.remove(&k);
        self.heap.swap_remove(0);
        if !self.heap.is_empty() {
            self.sift_down(0);
        }
        Some((k, p))
    }

    /// Returns the highest-priority entry without removing it.
    pub fn peek_max(&self) -> Option<(K, P)> {
        self.heap.first().map(|&(p, k)| (k, p))
    }

    /// Iterates entries in descending priority order. The heap is
    /// unsorted below its root, so this sorts a snapshot — O(n log n)
    /// on this diagnostic path, never on pop.
    pub fn iter_desc(&self) -> impl Iterator<Item = (K, P)> + '_ {
        let mut all = self.heap.clone();
        all.sort_unstable_by(|a, b| b.cmp(a));
        all.into_iter().map(|(p, k)| (k, p))
    }

    /// Removes all entries.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.pos.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn upsert_and_pop_order() {
        let mut q = PrioQueue::new();
        assert!(q.is_empty());
        q.upsert("a", 1);
        q.upsert("b", 5);
        q.upsert("c", 3);
        assert_eq!(q.len(), 3);
        assert_eq!(q.peek_max(), Some(("b", 5)));
        assert_eq!(q.pop_max(), Some(("b", 5)));
        assert_eq!(q.pop_max(), Some(("c", 3)));
        assert_eq!(q.pop_max(), Some(("a", 1)));
        assert_eq!(q.pop_max(), None);
    }

    #[test]
    fn update_moves_key() {
        let mut q = PrioQueue::new();
        q.upsert(1u64, 10u64);
        assert_eq!(q.upsert(1, 99), Some(10));
        assert_eq!(q.len(), 1);
        assert_eq!(q.priority_of(1), Some(99));
        assert_eq!(q.pop_max(), Some((1, 99)));
    }

    #[test]
    fn remove() {
        let mut q = PrioQueue::new();
        q.upsert(1u32, 1u32);
        q.upsert(2, 2);
        assert_eq!(q.remove(1), Some(1));
        assert_eq!(q.remove(1), None);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn iter_desc_order() {
        let mut q = PrioQueue::new();
        for (k, p) in [(1u8, 4u8), (2, 2), (3, 9)] {
            q.upsert(k, p);
        }
        let order: Vec<(u8, u8)> = q.iter_desc().collect();
        assert_eq!(order, vec![(3, 9), (1, 4), (2, 2)]);
    }

    /// Equal priorities must break ties by largest key — the documented
    /// contract that keeps task scheduling independent of insertion
    /// order (determinism policy, DESIGN.md).
    #[test]
    fn ties_break_by_largest_key() {
        let mut q = PrioQueue::new();
        for k in [3u64, 1, 4, 2] {
            q.upsert(k, 7u64);
        }
        assert_eq!(q.peek_max(), Some((4, 7)));
        assert_eq!(q.pop_max(), Some((4, 7)));
        assert_eq!(q.pop_max(), Some((3, 7)));
        assert_eq!(q.pop_max(), Some((2, 7)));
        assert_eq!(q.pop_max(), Some((1, 7)));
        assert_eq!(q.pop_max(), None);
    }

    /// Tie-break order is a function of the contents, not the history:
    /// any insertion order (including re-upserts) yields the same pops.
    #[test]
    fn tie_break_is_insertion_order_independent() {
        let keys = [10u64, 20, 30];
        let orders: [&[u64]; 3] = [&[10, 20, 30], &[30, 20, 10], &[20, 10, 30, 10]];
        let mut popped: Vec<Vec<(u64, u64)>> = Vec::new();
        for order in orders {
            let mut q = PrioQueue::new();
            for &k in order {
                q.upsert(k, 5u64);
            }
            assert_eq!(q.len(), keys.len());
            let mut seq = Vec::new();
            while let Some(e) = q.pop_max() {
                seq.push(e);
            }
            popped.push(seq);
        }
        assert_eq!(popped[0], popped[1]);
        assert_eq!(popped[0], popped[2]);
        assert_eq!(popped[0], vec![(30, 5), (20, 5), (10, 5)]);
    }

    /// `iter_desc` observes the same tie-break as `pop_max`.
    #[test]
    fn iter_desc_matches_pop_order_under_ties() {
        let mut q = PrioQueue::new();
        for (k, p) in [(1u64, 2u64), (2, 2), (3, 1), (4, 2)] {
            q.upsert(k, p);
        }
        let via_iter: Vec<(u64, u64)> = q.iter_desc().collect();
        let mut via_pop = Vec::new();
        while let Some(e) = q.pop_max() {
            via_pop.push(e);
        }
        assert_eq!(via_iter, via_pop);
        assert_eq!(via_pop, vec![(4, 2), (2, 2), (1, 2), (3, 1)]);
    }

    #[test]
    fn clear() {
        let mut q = PrioQueue::new();
        q.upsert(1u8, 1u8);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop_max(), None);
    }

    // Randomized reference test driven by the deterministic `SimRng`
    // (the workspace builds offline, with no proptest dep).
    mod properties {
        use super::*;
        use sim_core::SimRng;

        /// Queue behaviour matches a reference map under arbitrary
        /// upsert/remove/pop sequences.
        #[test]
        fn matches_reference() {
            for case in 0..64u64 {
                let mut rng = SimRng::new(0x9410 ^ case);
                let mut q = PrioQueue::new();
                let mut reference = std::collections::BTreeMap::new();
                for _ in 0..rng.gen_range(0, 200) {
                    let op = rng.gen_range(0, 3);
                    let k = rng.gen_range(0, 20);
                    let p = rng.gen_range(0, 100);
                    match op {
                        0 => {
                            q.upsert(k, p);
                            reference.insert(k, p);
                        }
                        1 => {
                            assert_eq!(q.remove(k), reference.remove(&k));
                        }
                        _ => {
                            let expected = reference.iter().map(|(&k, &p)| (p, k)).max();
                            let got = q.pop_max();
                            assert_eq!(got, expected.map(|(p, k)| (k, p)));
                            if let Some((_, k)) = expected {
                                reference.remove(&k);
                            }
                        }
                    }
                    assert_eq!(q.len(), reference.len());
                }
            }
        }
    }
}
