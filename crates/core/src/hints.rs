//! Residency tracking for file tasks — the reusable half of
//! Algorithm 1.
//!
//! The paper's user/kernel library gives tasks a priority queue over
//! fetched events; every file task then repeats the same bookkeeping:
//! count `Exists`/`¬Exists` notifications per inode and keep a priority
//! queue ordered by residency (rsync: resident pages; defragmentation:
//! resident fraction of the file size). [`ResidencyTracker`] implements
//! that loop once.

use crate::events::ItemFlags;
use crate::session::Item;
use crate::PrioQueue;
use sim_core::InodeNr;
use std::collections::BTreeMap;

/// How queued files are prioritized.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Priority {
    /// By number of resident pages (the rsync policy, Table 3).
    ResidentPages,
    /// By resident fraction of the file, in thousandths (the
    /// defragmentation policy, Table 3). Requires file sizes via
    /// [`ResidencyTracker::update_with_sizes`].
    ResidentFraction,
    /// Touched files all share one priority — file-granularity
    /// (inotify-style) hints with no residency information (§3.3).
    TouchedOnly,
}

/// Tracks per-file residency from fetched items and maintains the
/// priority queue of Algorithm 1.
#[derive(Debug)]
pub struct ResidencyTracker {
    policy: Priority,
    resident: BTreeMap<InodeNr, u64>,
    queue: PrioQueue<u64, u64>,
    /// Last priority each file was queued at, so a task that pops a
    /// file and then backs out (stale hint, §3.2) can re-enqueue it.
    last_prio: BTreeMap<InodeNr, u64>,
}

impl ResidencyTracker {
    /// Creates a tracker with the given prioritization policy.
    pub fn new(policy: Priority) -> Self {
        ResidencyTracker {
            policy,
            resident: BTreeMap::new(),
            queue: PrioQueue::new(),
            last_prio: BTreeMap::new(),
        }
    }

    /// Feeds fetched items, filtered by `eligible` (e.g. membership in
    /// the task's plan), using `size_pages` to resolve fractions (may
    /// return 0 for unknown/deleted files, which dequeues them).
    pub fn update_with_sizes<F, G>(&mut self, items: &[Item], mut eligible: F, mut size_pages: G)
    where
        F: FnMut(InodeNr) -> bool,
        G: FnMut(InodeNr) -> u64,
    {
        for item in items {
            let Some(ino) = item.id.as_inode() else {
                continue;
            };
            if !eligible(ino) {
                continue;
            }
            match self.policy {
                Priority::TouchedOnly => {
                    if item.flags.contains(ItemFlags::EXISTS) {
                        self.queue.upsert(ino.raw(), 1);
                        self.last_prio.insert(ino, 1);
                    }
                }
                Priority::ResidentPages | Priority::ResidentFraction => {
                    let count = self.resident.entry(ino).or_insert(0);
                    if item.flags.contains(ItemFlags::EXISTS) {
                        *count += 1;
                    } else if item.flags.contains(ItemFlags::NOT_EXISTS) {
                        *count = count.saturating_sub(1);
                    }
                    let count = *count;
                    let prio = match self.policy {
                        Priority::ResidentPages => count,
                        Priority::ResidentFraction => {
                            // Round-half-up permille; the count clamps
                            // to the file size so a fully-resident file
                            // reads exactly 1000‰, never 999‰.
                            let size = size_pages(ino);
                            (count.min(size) * 1000 + size / 2)
                                .checked_div(size)
                                .unwrap_or(0)
                        }
                        Priority::TouchedOnly => unreachable!(),
                    };
                    if prio == 0 {
                        self.queue.remove(ino.raw());
                        self.last_prio.remove(&ino);
                    } else {
                        self.queue.upsert(ino.raw(), prio);
                        self.last_prio.insert(ino, prio);
                    }
                }
            }
        }
    }

    /// [`ResidencyTracker::update_with_sizes`] without size resolution
    /// (for [`Priority::ResidentPages`] and [`Priority::TouchedOnly`]).
    pub fn update<F>(&mut self, items: &[Item], eligible: F)
    where
        F: FnMut(InodeNr) -> bool,
    {
        debug_assert!(
            self.policy != Priority::ResidentFraction,
            "fraction policy needs sizes"
        );
        self.update_with_sizes(items, eligible, |_| 1);
    }

    /// Pops the highest-priority file.
    pub fn pop_best(&mut self) -> Option<InodeNr> {
        self.queue.pop_max().map(|(ino, _)| InodeNr(ino))
    }

    /// Re-enqueues a previously popped file at the priority it was last
    /// queued with. This is the §3.2 back-out path: a task whose
    /// `duet_get_path` truth check failed puts the hint back so a later
    /// pick can retry it (the failure may be transient); if the pages
    /// are genuinely gone, later `¬Exists` notifications or normal-order
    /// processing retire it. No-op for files the tracker never queued.
    pub fn requeue(&mut self, ino: InodeNr) {
        if let Some(&prio) = self.last_prio.get(&ino) {
            self.queue.upsert(ino.raw(), prio);
        }
    }

    /// Drops a file from the tracker (processed or abandoned).
    pub fn forget(&mut self, ino: InodeNr) {
        self.queue.remove(ino.raw());
        self.resident.remove(&ino);
        self.last_prio.remove(&ino);
    }

    /// Queued files.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Returns `true` if no file is queued.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Current resident-page estimate for a file.
    pub fn resident_pages(&self, ino: InodeNr) -> u64 {
        self.resident.get(&ino).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::ItemId;
    use sim_core::BlockNr;

    fn item(ino: u64, offset: u64, flags: ItemFlags) -> Item {
        Item {
            id: ItemId::Inode(InodeNr(ino)),
            offset,
            flags,
            moved_to: None,
        }
    }

    fn block_item(b: u64) -> Item {
        Item {
            id: ItemId::Block(BlockNr(b)),
            offset: 0,
            flags: ItemFlags::EXISTS,
            moved_to: None,
        }
    }

    #[test]
    fn resident_pages_policy_orders_by_count() {
        let mut t = ResidencyTracker::new(Priority::ResidentPages);
        let items: Vec<Item> = (0..3)
            .map(|i| item(7, i * 4096, ItemFlags::EXISTS))
            .chain([item(8, 0, ItemFlags::EXISTS)])
            .collect();
        t.update(&items, |_| true);
        assert_eq!(t.len(), 2);
        assert_eq!(t.resident_pages(InodeNr(7)), 3);
        assert_eq!(t.pop_best(), Some(InodeNr(7)), "most resident first");
        assert_eq!(t.pop_best(), Some(InodeNr(8)));
        assert_eq!(t.pop_best(), None);
    }

    #[test]
    fn fraction_policy_prefers_small_fully_resident_files() {
        let mut t = ResidencyTracker::new(Priority::ResidentFraction);
        // File 1: 2 of 16 pages resident. File 2: 1 of 1.
        let items = vec![
            item(1, 0, ItemFlags::EXISTS),
            item(1, 4096, ItemFlags::EXISTS),
            item(2, 0, ItemFlags::EXISTS),
        ];
        t.update_with_sizes(&items, |_| true, |ino| if ino.raw() == 1 { 16 } else { 1 });
        assert_eq!(t.pop_best(), Some(InodeNr(2)), "100% beats 12.5%");
    }

    #[test]
    fn fraction_rounds_half_up_and_clamps_at_1000_permille() {
        // 1 of 3 pages resident: 333.3…‰ rounds to 333; 2 of 3: 666.6…‰
        // rounds up to 667 (truncation would give 666).
        let mut t = ResidencyTracker::new(Priority::ResidentFraction);
        t.update_with_sizes(&[item(1, 0, ItemFlags::EXISTS)], |_| true, |_| 3);
        t.update_with_sizes(
            &[
                item(2, 0, ItemFlags::EXISTS),
                item(2, 4096, ItemFlags::EXISTS),
            ],
            |_| true,
            |_| 3,
        );
        assert_eq!(t.last_prio.get(&InodeNr(1)), Some(&333));
        assert_eq!(t.last_prio.get(&InodeNr(2)), Some(&667));

        // A fully-processed file must read exactly 1000‰ even for sizes
        // that don't divide 1000 — and over-counted residency (stale
        // notifications after a truncate) clamps instead of exceeding it.
        for size in [1u64, 3, 7, 16, 999] {
            let mut t = ResidencyTracker::new(Priority::ResidentFraction);
            let items: Vec<Item> = (0..size + 2) // two stale extras
                .map(|i| item(9, i * 4096, ItemFlags::EXISTS))
                .collect();
            t.update_with_sizes(&items, |_| true, |_| size);
            assert_eq!(
                t.last_prio.get(&InodeNr(9)),
                Some(&1000),
                "size {size}: full residency must be exactly 1000‰"
            );
        }
    }

    #[test]
    fn eviction_dequeues_files() {
        let mut t = ResidencyTracker::new(Priority::ResidentPages);
        t.update(&[item(5, 0, ItemFlags::EXISTS)], |_| true);
        assert_eq!(t.len(), 1);
        t.update(&[item(5, 0, ItemFlags::NOT_EXISTS)], |_| true);
        assert!(t.is_empty(), "fully evicted file leaves the queue");
    }

    #[test]
    fn touched_only_has_flat_priorities() {
        let mut t = ResidencyTracker::new(Priority::TouchedOnly);
        let items: Vec<Item> = (0..4)
            .map(|i| item(9, i * 4096, ItemFlags::EXISTS))
            .chain([item(3, 0, ItemFlags::EXISTS)])
            .collect();
        t.update(&items, |_| true);
        // No residency info: ties broken by key, not by page count.
        assert_eq!(t.pop_best(), Some(InodeNr(9)));
        assert_eq!(t.pop_best(), Some(InodeNr(3)));
    }

    #[test]
    fn filters_ineligible_and_block_items() {
        let mut t = ResidencyTracker::new(Priority::ResidentPages);
        let items = vec![
            item(1, 0, ItemFlags::EXISTS),
            item(2, 0, ItemFlags::EXISTS),
            block_item(99),
        ];
        t.update(&items, |ino| ino.raw() == 1);
        assert_eq!(t.len(), 1);
        assert_eq!(t.pop_best(), Some(InodeNr(1)));
    }

    #[test]
    fn requeue_restores_popped_file_at_its_priority() {
        let mut t = ResidencyTracker::new(Priority::ResidentPages);
        let items: Vec<Item> = (0..3)
            .map(|i| item(7, i * 4096, ItemFlags::EXISTS))
            .chain([item(8, 0, ItemFlags::EXISTS)])
            .collect();
        t.update(&items, |_| true);
        let popped = t.pop_best().unwrap();
        assert_eq!(popped, InodeNr(7));
        // Back out: the file returns at its old priority, ahead of 8.
        t.requeue(popped);
        assert_eq!(t.pop_best(), Some(InodeNr(7)));
        // Requeue of a never-queued file is a no-op.
        t.requeue(InodeNr(99));
        assert_eq!(t.pop_best(), Some(InodeNr(8)));
        assert_eq!(t.pop_best(), None);
        // Forgotten files cannot be requeued.
        t.update(&[item(5, 0, ItemFlags::EXISTS)], |_| true);
        t.forget(InodeNr(5));
        t.requeue(InodeNr(5));
        assert!(t.is_empty());
    }

    #[test]
    fn forget_removes_state() {
        let mut t = ResidencyTracker::new(Priority::ResidentPages);
        t.update(&[item(5, 0, ItemFlags::EXISTS)], |_| true);
        t.forget(InodeNr(5));
        assert!(t.is_empty());
        assert_eq!(t.resident_pages(InodeNr(5)), 0);
    }
}
