//! Item descriptors: per-page pending-notification state.
//!
//! "While the item descriptors of different sessions are logically
//! independent, we reduce memory requirements by keeping a single item
//! descriptor per page for all sessions. The merged item descriptor
//! consists of the item_id, offset, and an N-byte array for storing the
//! flag fields for up to a maximum of N concurrent sessions." (§4.2)
//!
//! A descriptor is allocated when any session has pending notifications
//! on the page and deallocated when none has — including by
//! *cancellation*, when opposing events revert a page to its
//! last-reported state for every state session.

use crate::events::{EventMask, ItemFlags};
use sim_core::BlockNr;

/// Per-session flag byte within a merged descriptor.
///
/// Layout: bits 0–3 are pending event notifications (added, removed,
/// dirtied, flushed); bit 4–5 cache the session's last-*reported*
/// existence/modification state (valid once bit 6, `STATE_INIT`, is
/// set); bit 7 forces a `NOT_EXISTS` delivery, used when a file is
/// moved out of the session's registered directory (§4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub(crate) struct SessFlags(u8);

const EVT_MASK: u8 = 0x0F;
const REPORTED_EXISTS: u8 = 1 << 4;
const REPORTED_MODIFIED: u8 = 1 << 5;
const STATE_INIT: u8 = 1 << 6;
const FORCE_NOT_EXISTS: u8 = 1 << 7;

impl SessFlags {
    pub(crate) fn evt_bits(self) -> u8 {
        self.0 & EVT_MASK
    }

    pub(crate) fn set_evt(&mut self, flag: ItemFlags) {
        debug_assert!(flag.bits() & !EVT_MASK == 0, "not an event bit");
        self.0 |= flag.bits();
    }

    pub(crate) fn clear_evt(&mut self) {
        self.0 &= !EVT_MASK;
    }

    pub(crate) fn state_init(self) -> bool {
        self.0 & STATE_INIT != 0
    }

    pub(crate) fn reported_exists(self) -> bool {
        self.0 & REPORTED_EXISTS != 0
    }

    pub(crate) fn reported_modified(self) -> bool {
        self.0 & REPORTED_MODIFIED != 0
    }

    pub(crate) fn set_reported(&mut self, exists: bool, modified: bool) {
        self.0 |= STATE_INIT;
        if exists {
            self.0 |= REPORTED_EXISTS;
        } else {
            self.0 &= !REPORTED_EXISTS;
        }
        if modified {
            self.0 |= REPORTED_MODIFIED;
        } else {
            self.0 &= !REPORTED_MODIFIED;
        }
    }

    pub(crate) fn force_not_exists(self) -> bool {
        self.0 & FORCE_NOT_EXISTS != 0
    }

    pub(crate) fn set_force_not_exists(&mut self) {
        self.0 |= FORCE_NOT_EXISTS;
    }

    pub(crate) fn clear_force_not_exists(&mut self) {
        self.0 &= !FORCE_NOT_EXISTS;
    }

    pub(crate) fn clear_all(&mut self) {
        self.0 = 0;
    }

    // Used by unit tests to assert full resets.
    #[cfg_attr(not(test), expect(dead_code))]
    pub(crate) fn is_clear(self) -> bool {
        self.0 == 0
    }
}

/// A merged item descriptor for one page.
#[derive(Debug, Clone)]
pub(crate) struct Descriptor {
    /// Physical block backing the page as of the latest event (`None`
    /// under delayed allocation).
    pub block: Option<BlockNr>,
    /// Current existence state of the page.
    pub cur_exists: bool,
    /// Current modification (dirty) state of the page.
    pub cur_modified: bool,
    /// Per-session flag bytes (the paper's N-byte array).
    pub sess: Box<[SessFlags]>,
}

impl Descriptor {
    pub(crate) fn new(
        max_sessions: usize,
        exists: bool,
        modified: bool,
        block: Option<BlockNr>,
    ) -> Self {
        Descriptor {
            block,
            cur_exists: exists,
            cur_modified: modified,
            sess: vec![SessFlags::default(); max_sessions].into_boxed_slice(),
        }
    }

    /// Feeds the descriptor's complete state (including every
    /// per-session flag byte) into a fork-equivalence digest.
    pub(crate) fn digest_state(&self, d: &mut sim_core::snapshot::Digest) {
        d.write_bool(self.block.is_some());
        d.write_u64(self.block.map_or(0, |b| b.raw()));
        d.write_bool(self.cur_exists);
        d.write_bool(self.cur_modified);
        d.write_usize(self.sess.len());
        for f in self.sess.iter() {
            d.write_u32(f.0 as u32);
        }
    }

    /// Whether the given session has anything pending on this page.
    pub(crate) fn pending_for(&self, slot: usize, mask: EventMask) -> bool {
        let f = self.sess[slot];
        if f.evt_bits() != 0 || f.force_not_exists() {
            return true;
        }
        if f.state_init() {
            if mask.contains(EventMask::EXISTS) && f.reported_exists() != self.cur_exists {
                return true;
            }
            if mask.contains(EventMask::MODIFIED) && f.reported_modified() != self.cur_modified {
                return true;
            }
        }
        false
    }

    /// Whether any session in `masks` (indexed by slot, `None` for free
    /// slots) has pending notifications.
    pub(crate) fn pending_any(&self, masks: &[Option<EventMask>]) -> bool {
        masks
            .iter()
            .enumerate()
            .any(|(slot, m)| m.is_some_and(|mask| self.pending_for(slot, mask)))
    }

    /// Bytes of memory this descriptor accounts for in the §6.4 model:
    /// item id (8) + offset (8) + N-byte flag array + hash node (8).
    pub(crate) fn memory_bytes(max_sessions: usize) -> u64 {
        8 + 8 + max_sessions as u64 + 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sess_flags_roundtrip() {
        let mut f = SessFlags::default();
        assert!(f.is_clear());
        assert!(!f.state_init());
        f.set_evt(ItemFlags::ADDED);
        f.set_evt(ItemFlags::DIRTIED);
        assert_eq!(
            f.evt_bits(),
            ItemFlags::ADDED.bits() | ItemFlags::DIRTIED.bits()
        );
        f.set_reported(true, false);
        assert!(f.state_init());
        assert!(f.reported_exists());
        assert!(!f.reported_modified());
        f.clear_evt();
        assert_eq!(f.evt_bits(), 0);
        assert!(f.state_init(), "state survives event clear");
        f.set_reported(false, true);
        assert!(!f.reported_exists());
        assert!(f.reported_modified());
        f.set_force_not_exists();
        assert!(f.force_not_exists());
        f.clear_force_not_exists();
        assert!(!f.force_not_exists());
        f.clear_all();
        assert!(f.is_clear());
    }

    #[test]
    fn pending_logic() {
        let mut d = Descriptor::new(2, true, false, None);
        let mask = EventMask::EXISTS;
        assert!(!d.pending_for(0, mask), "untouched slot is idle");
        // Initialized at reported=not-exists while page exists: pending.
        d.sess[0].set_reported(false, false);
        assert!(d.pending_for(0, mask));
        // Reported catches up: idle.
        d.sess[0].set_reported(true, false);
        assert!(!d.pending_for(0, mask));
        // Modified axis ignored unless subscribed.
        d.cur_modified = true;
        assert!(!d.pending_for(0, mask));
        assert!(d.pending_for(0, EventMask::EXISTS | EventMask::MODIFIED));
        // Event bits always pending.
        d.sess[1].set_evt(ItemFlags::FLUSHED);
        assert!(d.pending_for(1, EventMask::FLUSHED));
        assert!(d.pending_any(&[Some(EventMask::EXISTS), Some(EventMask::FLUSHED)]));
        assert!(!d.pending_any(&[Some(EventMask::EXISTS), None]));
    }

    #[test]
    fn memory_model_matches_paper() {
        // §6.4: "For N = 16, an item descriptor requires 32 bytes
        // (inode number, offset, 16-byte flag array and hash node)."
        // The paper counts 32-bit id+offset; our 64-bit fields give 40.
        assert_eq!(Descriptor::memory_bytes(16), 40);
    }
}
