//! Property tests of the notification state machine.
//!
//! The reference model: a page carries an `(exists, modified)` state; a
//! state session is owed a notification whenever the current state
//! differs from the state it last fetched; an event session is owed the
//! exact multiset of subscribed events since its last fetch, merged
//! into flag bits. The framework must agree with this model for every
//! legal event interleaving, including the cancellation behaviour
//! ("reverted back to the same state ... an event is not generated",
//! §3.2).
//!
//! Cases are driven by the `sim_core::check` helper: each case gets a
//! deterministic per-case RNG, and a failing case reports the exact
//! seed that replays it.

use crate::events::{EventMask, ItemFlags};
use crate::framework::Duet;
use crate::session::TaskScope;
use sim_cache::FsIntrospect;
use sim_cache::{PageEvent, PageKey, PageMeta};
use sim_core::check::{forall, CheckConfig};
use sim_core::{BlockNr, DeviceId, InodeNr, PageIndex, SimRng};

/// Trivial filesystem: one file, everything relevant.
struct FlatFs;

impl FsIntrospect for FlatFs {
    fn device(&self) -> DeviceId {
        DeviceId(0)
    }
    fn is_under(&self, _: InodeNr, _: InodeNr) -> bool {
        true
    }
    fn path_of(&self, _: InodeNr) -> Option<String> {
        Some("/f".into())
    }
    fn fibmap(&self, _: InodeNr, index: PageIndex) -> Option<BlockNr> {
        Some(BlockNr(index.raw()))
    }
    fn has_cached_pages(&self, _: InodeNr) -> bool {
        true
    }
    fn cached_pages(&self) -> Vec<PageMeta> {
        Vec::new()
    }
    fn cached_pages_of(&self, _: InodeNr) -> Vec<PageMeta> {
        Vec::new()
    }
}

const FILE: InodeNr = InodeNr(7);
const ROOT: InodeNr = InodeNr(1);

#[derive(Debug, Clone, Copy)]
enum Action {
    /// Apply the next legal event to page `p` (cycled deterministically
    /// from this tag).
    Event { page: u64, tag: u8 },
    /// Fetch everything pending.
    Fetch,
}

/// Weighted action pick mirroring the original generator's 4:1
/// event-to-fetch mix. Randomized cases are driven by the deterministic
/// `SimRng` (the workspace builds offline, with no proptest dep).
fn action_pick(rng: &mut SimRng) -> Action {
    if rng.gen_range(0, 5) < 4 {
        Action::Event {
            page: rng.gen_range(0, 4),
            tag: rng.gen_range(0, 256) as u8,
        }
    } else {
        Action::Fetch
    }
}

/// Reference per-page state.
#[derive(Debug, Clone, Copy, Default)]
struct RefPage {
    exists: bool,
    modified: bool,
    reported_exists: bool,
    reported_modified: bool,
}

/// Picks a legal event for the current page state.
fn legal_event(p: &RefPage, tag: u8) -> PageEvent {
    if !p.exists {
        return PageEvent::Added;
    }
    match tag % 3 {
        0 => PageEvent::Removed,
        1 => {
            if p.modified {
                PageEvent::Flushed
            } else {
                PageEvent::Dirtied
            }
        }
        _ => {
            if p.modified {
                PageEvent::Flushed
            } else {
                PageEvent::Removed
            }
        }
    }
}

fn apply(p: &mut RefPage, ev: PageEvent) {
    match ev {
        PageEvent::Added => {
            p.exists = true;
            p.modified = false;
        }
        PageEvent::Removed => {
            p.exists = false;
            p.modified = false;
        }
        PageEvent::Dirtied => p.modified = true,
        PageEvent::Flushed => p.modified = false,
    }
}

/// State sessions: fetched notifications are exactly the state
/// diffs against the last report, for every interleaving.
#[test]
fn state_session_matches_reference() {
    let cfg = CheckConfig::new("state-session-matches-reference", 0x57A7E).cases(128);
    forall(&cfg, |_case, rng| {
        let actions: Vec<Action> = (0..rng.gen_range(1, 120))
            .map(|_| action_pick(rng))
            .collect();
        let fs = FlatFs;
        let mut duet = Duet::with_defaults();
        let sid = duet
            .register(
                TaskScope::File {
                    registered_dir: ROOT,
                },
                EventMask::EXISTS | EventMask::MODIFIED,
                &fs,
            )
            .expect("register");
        let mut reference = [RefPage::default(); 4];
        for action in actions {
            match action {
                Action::Event { page, tag } => {
                    let p = &mut reference[page as usize];
                    let ev = legal_event(p, tag);
                    // Meta reflects the page's dirty state as the cache
                    // would report it at event time.
                    let meta_dirty = match ev {
                        PageEvent::Added => false,
                        PageEvent::Removed => p.modified,
                        PageEvent::Dirtied => true,
                        PageEvent::Flushed => false,
                    };
                    apply(p, ev);
                    duet.handle_page_event(
                        PageMeta {
                            key: PageKey::new(FILE, PageIndex(page)),
                            block: Some(BlockNr(page)),
                            dirty: meta_dirty,
                        },
                        ev,
                        &fs,
                    );
                }
                Action::Fetch => {
                    let items = duet.fetch(sid, 64, &fs).expect("fetch");
                    let mut got: Vec<(u64, ItemFlags)> = items
                        .iter()
                        .map(|i| (i.offset / sim_core::PAGE_SIZE, i.flags))
                        .collect();
                    got.sort_by_key(|(o, _)| *o);
                    // Build the expected diffs.
                    let mut expected: Vec<(u64, ItemFlags)> = Vec::new();
                    for (pg, p) in reference.iter_mut().enumerate() {
                        let mut fl = ItemFlags::empty();
                        if p.exists != p.reported_exists {
                            fl |= if p.exists {
                                ItemFlags::EXISTS
                            } else {
                                ItemFlags::NOT_EXISTS
                            };
                        }
                        if p.modified != p.reported_modified {
                            fl |= if p.modified {
                                ItemFlags::MODIFIED
                            } else {
                                ItemFlags::NOT_MODIFIED
                            };
                        }
                        if !fl.is_empty() {
                            expected.push((pg as u64, fl));
                        }
                        p.reported_exists = p.exists;
                        p.reported_modified = p.modified;
                    }
                    assert_eq!(got, expected);
                }
            }
        }
        // Final fetch must also agree, and leave nothing allocated.
        let final_items = duet.fetch(sid, 64, &fs).expect("fetch");
        let mut owed = 0;
        for p in &reference {
            if p.exists != p.reported_exists || p.modified != p.reported_modified {
                owed += 1;
            }
        }
        assert_eq!(final_items.len(), owed);
        let empty = duet.fetch(sid, 64, &fs).expect("fetch");
        assert!(empty.is_empty());
        assert_eq!(duet.descriptor_count(), 0);
        Ok(())
    })
    .unwrap();
}

/// Event sessions: fetched flag bits are exactly the union of
/// subscribed events since the last fetch.
#[test]
fn event_session_matches_reference() {
    let cfg = CheckConfig::new("event-session-matches-reference", 0xE4E47).cases(128);
    forall(&cfg, |_case, rng| {
        let actions: Vec<Action> = (0..rng.gen_range(1, 120))
            .map(|_| action_pick(rng))
            .collect();
        let fs = FlatFs;
        let mut duet = Duet::with_defaults();
        let mask = EventMask::ADDED | EventMask::REMOVED | EventMask::DIRTIED | EventMask::FLUSHED;
        let sid = duet
            .register(
                TaskScope::File {
                    registered_dir: ROOT,
                },
                mask,
                &fs,
            )
            .expect("register");
        let mut reference = [RefPage::default(); 4];
        let mut pending: [u8; 4] = [0; 4];
        for action in actions {
            match action {
                Action::Event { page, tag } => {
                    let p = &mut reference[page as usize];
                    let ev = legal_event(p, tag);
                    let meta_dirty = match ev {
                        PageEvent::Added => false,
                        PageEvent::Removed => p.modified,
                        PageEvent::Dirtied => true,
                        PageEvent::Flushed => false,
                    };
                    apply(p, ev);
                    pending[page as usize] |= match ev {
                        PageEvent::Added => ItemFlags::ADDED.bits(),
                        PageEvent::Removed => ItemFlags::REMOVED.bits(),
                        PageEvent::Dirtied => ItemFlags::DIRTIED.bits(),
                        PageEvent::Flushed => ItemFlags::FLUSHED.bits(),
                    };
                    duet.handle_page_event(
                        PageMeta {
                            key: PageKey::new(FILE, PageIndex(page)),
                            block: Some(BlockNr(page)),
                            dirty: meta_dirty,
                        },
                        ev,
                        &fs,
                    );
                }
                Action::Fetch => {
                    let items = duet.fetch(sid, 64, &fs).expect("fetch");
                    let mut got: Vec<(u64, u8)> = items
                        .iter()
                        .map(|i| (i.offset / sim_core::PAGE_SIZE, i.flags.bits()))
                        .collect();
                    got.sort_by_key(|(o, _)| *o);
                    let mut expected: Vec<(u64, u8)> = Vec::new();
                    for (pg, bits) in pending.iter_mut().enumerate() {
                        if *bits != 0 {
                            expected.push((pg as u64, *bits));
                            *bits = 0;
                        }
                    }
                    assert_eq!(got, expected);
                }
            }
        }
        Ok(())
    })
    .unwrap();
}
