//! Duet: a framework for opportunistic storage maintenance.
//!
//! This crate is the primary contribution of *Opportunistic Storage
//! Maintenance* (Amvrosiadis, Demke Brown, Goel — SOSP 2015),
//! reimplemented against a simulated storage stack. Duet hooks into the
//! page cache and provides maintenance tasks with notifications about
//! page-level events — a page being added, removed, dirtied or flushed
//! — which tasks use as *hints* to process cached data out of order,
//! reducing the I/O they need to meet their goals.
//!
//! # The API (Table 1 of the paper)
//!
//! | Paper call | Here |
//! |---|---|
//! | `duet_register(path, mask)` | [`Duet::register`] |
//! | `duet_deregister(sid)` | [`Duet::deregister`] |
//! | `duet_fetch(sid, items, count)` | [`Duet::fetch`] |
//! | `duet_check_done(sid, item)` | [`Duet::check_done`] |
//! | `duet_set_done(sid, item)` | [`Duet::set_done`] |
//! | `duet_unset_done(sid, item)` | [`Duet::unset_done`] |
//! | `duet_get_path(sid, ino, path)` | [`Duet::get_path`] |
//!
//! Block tasks register a device and receive block-granularity items;
//! file tasks register a directory and receive (inode, offset) items
//! for everything under it. Page events from file accesses are bridged
//! to block tasks through the filesystem's FIBMAP translation (§4.2).
//!
//! # Example
//!
//! A file task that processes whatever is in memory first (the shape of
//! Algorithm 1) looks like:
//!
//! ```no_run
//! use duet::{Duet, EventMask, PrioQueue, SessionId, TaskScope};
//! use duet::FsIntrospect;
//!
//! fn drain(duet: &mut Duet, sid: SessionId, fs: &dyn FsIntrospect,
//!          pqueue: &mut PrioQueue<u64, u64>) {
//!     loop {
//!         let items = duet.fetch(sid, 256, fs).expect("fetch");
//!         if items.is_empty() {
//!             break;
//!         }
//!         for item in items {
//!             if let Some(ino) = item.id.as_inode() {
//!                 let pages = pqueue.priority_of(ino.raw()).unwrap_or(0);
//!                 pqueue.upsert(ino.raw(), pages + 1);
//!             }
//!         }
//!     }
//! }
//! ```
//!
//! The simulation wiring delivers page-cache and namespace events into
//! the framework via [`Duet::handle_page_event`], [`Duet::handle_rename`]
//! and [`Duet::handle_delete`]; see the `experiments` crate.

pub mod descriptor;
pub mod events;
pub mod framework;
pub mod hints;
pub mod prioqueue;
pub mod session;

pub use events::{EventMask, ItemFlags};
pub use framework::{Duet, DuetConfig, DuetStats};
// The trait lives in `sim_cache::introspect` (below the filesystems
// that implement it — see lint L1); the framework-facing name stays
// `duet::FsIntrospect`.
pub use hints::{Priority, ResidencyTracker};
pub use prioqueue::PrioQueue;
pub use session::{Item, ItemId, SessionId, TaskScope};
pub use sim_cache::FsIntrospect;

#[cfg(test)]
mod framework_tests;
#[cfg(test)]
mod property_tests;
