//! The Duet framework core: registration, event handling, fetch, done
//! tracking and namespace-change handling (§4 of the paper).

use crate::descriptor::Descriptor;
use crate::events::{transition, EventMask, ItemFlags};
use crate::session::{Item, ItemId, Session, SessionId, TaskScope};
use sim_cache::FsIntrospect;
use sim_cache::{PageEvent, PageKey, PageMeta};
use sim_core::fault::{FaultHandle, FaultSite};
use sim_core::trace::{TraceHandle, TraceLayer};
use sim_core::{InodeNr, SimError, SimResult, PAGE_SIZE};
use std::collections::BTreeMap;

/// Framework configuration.
#[derive(Debug, Clone, Copy)]
pub struct DuetConfig {
    /// Maximum concurrent sessions (the `N` of the merged descriptor's
    /// flag array; configured "at module load time", §4.2).
    pub max_sessions: usize,
    /// Per-session cap on queued pending descriptors; beyond it, new
    /// events for event-only sessions are dropped (DoS bound, §4.2).
    /// State sessions are never dropped — their descriptors are bounded
    /// by twice the page-cache size because opposing events cancel.
    pub descriptor_limit: usize,
}

impl Default for DuetConfig {
    fn default() -> Self {
        DuetConfig {
            max_sessions: 16,
            descriptor_limit: 1 << 20,
        }
    }
}

/// Operational statistics (used by the §6.4 overhead evaluation).
#[derive(Debug, Clone, Copy, Default)]
pub struct DuetStats {
    /// Page events processed.
    pub events_processed: u64,
    /// Events dropped by the per-session descriptor limit.
    pub events_dropped: u64,
    /// `fetch` calls served.
    pub fetch_calls: u64,
    /// Items returned across all fetches.
    pub items_fetched: u64,
    /// High-water mark of allocated descriptors.
    pub peak_descriptors: usize,
}

/// The Duet framework instance for one device's storage stack.
#[derive(Clone)]
pub struct Duet {
    cfg: DuetConfig,
    sessions: Vec<Option<Session>>,
    /// Per-slot event masks, kept in lockstep with `sessions` (a mask
    /// never changes while its session lives). Derived state — the
    /// event intake and descriptor GC consult it on every page event,
    /// and rebuilding it there dominated those paths.
    masks: Vec<Option<EventMask>>,
    /// Reusable pass-1/pass-2 buffers for [`Duet::handle_page_event`]
    /// (always empty between calls; excluded from digests).
    scratch_interested: Vec<usize>,
    scratch_pending: Vec<usize>,
    /// Merged descriptors: inode → page index → descriptor. Ordered so
    /// that iteration (e.g. [`Duet::pending_pages`]) is deterministic.
    descriptors: BTreeMap<InodeNr, BTreeMap<u64, Descriptor>>,
    ndesc: usize,
    stats: DuetStats,
    /// Fault-injection handle; `None` (or a quiet plan) behaves
    /// byte-identically to an unfaulted framework.
    faults: Option<FaultHandle>,
    /// Trace handle. The framework has no clock of its own, so its
    /// hooks are counter ticks: `duet.register` / `duet.deregister` /
    /// `duet.churn` / `duet.event` / `duet.merge` / `duet.fetch` /
    /// `duet.hint`.
    trace: Option<TraceHandle>,
}

impl sim_core::snapshot::StateDigest for Duet {
    fn digest_state(&self, d: &mut sim_core::snapshot::Digest) {
        d.write_usize(self.cfg.max_sessions);
        d.write_usize(self.cfg.descriptor_limit);
        d.write_usize(self.sessions.len());
        for slot in &self.sessions {
            d.write_bool(slot.is_some());
            if let Some(s) = slot {
                s.digest_state(d);
            }
        }
        d.write_usize(self.ndesc);
        d.write_usize(self.descriptors.len());
        for (ino, pages) in &self.descriptors {
            d.write_u64(ino.raw());
            d.write_usize(pages.len());
            for (idx, desc) in pages {
                d.write_u64(*idx);
                desc.digest_state(d);
            }
        }
        d.write_u64(self.stats.events_processed);
        d.write_u64(self.stats.events_dropped);
        d.write_u64(self.stats.fetch_calls);
        d.write_u64(self.stats.items_fetched);
        d.write_usize(self.stats.peak_descriptors);
        d.write_bool(self.faults.is_some());
        d.write_bool(self.trace.is_some());
    }
}

impl Duet {
    /// Creates a framework instance.
    pub fn new(cfg: DuetConfig) -> Self {
        assert!(cfg.max_sessions > 0, "need at least one session slot");
        Duet {
            sessions: (0..cfg.max_sessions).map(|_| None).collect(),
            masks: (0..cfg.max_sessions).map(|_| None).collect(),
            scratch_interested: Vec::new(),
            scratch_pending: Vec::new(),
            cfg,
            descriptors: BTreeMap::new(),
            ndesc: 0,
            stats: DuetStats::default(),
            faults: None,
            trace: None,
        }
    }

    /// Arms (or disarms, with `None`) fault injection: forced session
    /// exhaustion in [`Duet::register`], forced path failures in
    /// [`Duet::get_path`], and session churn on page events.
    pub fn set_faults(&mut self, faults: Option<FaultHandle>) {
        self.faults = faults;
    }

    /// Arms (or disarms, with `None`) tracing. Pure observation:
    /// sessions, descriptors and statistics are unaffected.
    pub fn set_trace(&mut self, trace: Option<TraceHandle>) {
        self.trace = trace;
    }

    /// Creates a framework with default configuration.
    pub fn with_defaults() -> Self {
        Duet::new(DuetConfig::default())
    }

    /// Current statistics.
    pub fn stats(&self) -> DuetStats {
        self.stats
    }

    /// Number of live item descriptors.
    pub fn descriptor_count(&self) -> usize {
        self.ndesc
    }

    /// Number of active sessions.
    pub fn session_count(&self) -> usize {
        self.sessions.iter().filter(|s| s.is_some()).count()
    }

    /// Memory footprint in the paper's §6.4 accounting model:
    /// descriptors (id + offset + N-byte flag array + hash node) plus
    /// the sessions' sparse bitmaps.
    pub fn memory_bytes(&self) -> u64 {
        let desc = self.ndesc as u64 * Descriptor::memory_bytes(self.cfg.max_sessions);
        let bitmaps: u64 = self
            .sessions
            .iter()
            .flatten()
            .map(|s| s.bitmap_bytes())
            .sum();
        desc + bitmaps
    }

    fn session_ref(&self, sid: SessionId) -> SimResult<&Session> {
        self.sessions
            .get(sid.0 as usize)
            .and_then(|s| s.as_ref())
            .ok_or(SimError::InvalidSession(sid.0))
    }

    fn session_mut(&mut self, sid: SessionId) -> SimResult<&mut Session> {
        self.sessions
            .get_mut(sid.0 as usize)
            .and_then(|s| s.as_mut())
            .ok_or(SimError::InvalidSession(sid.0))
    }

    // ----- registration ----------------------------------------------------

    /// `duet_register`: starts a session and scans the page cache so the
    /// task can immediately exploit already-cached data (§4.1).
    pub fn register(
        &mut self,
        scope: TaskScope,
        mask: EventMask,
        fs: &dyn FsIntrospect,
    ) -> SimResult<SessionId> {
        if mask.is_empty() {
            return Err(SimError::InvalidArgument("empty notification mask".into()));
        }
        if let TaskScope::Block { device } = scope {
            if device != fs.device() {
                return Err(SimError::InvalidArgument(format!(
                    "device mismatch: registered {device}, filesystem on {}",
                    fs.device()
                )));
            }
        }
        // Injected session-slot exhaustion: the table reports itself
        // full even though a slot may be free; a well-behaved task
        // degrades to its unassisted (baseline) path, §3.2.
        if let Some(faults) = &self.faults {
            if faults.fire(FaultSite::DuetSessionExhaustion) {
                return Err(SimError::TooManySessions);
            }
        }
        let slot = self
            .sessions
            .iter()
            .position(|s| s.is_none())
            .ok_or(SimError::TooManySessions)?;
        let sid = SessionId(slot as u32);
        self.sessions[slot] = Some(Session::new(scope, mask));
        self.masks[slot] = Some(mask);
        if let Some(trace) = &self.trace {
            trace.tick(TraceLayer::Duet, "register");
        }
        // Registration scan: initialize a descriptor for each relevant
        // cached page, flagged present (and possibly dirty).
        for meta in fs.cached_pages() {
            self.scan_page(slot, meta, fs);
        }
        Ok(sid)
    }

    /// Seeds one cached page into a session, as the registration scan
    /// and move-into-directory handling do.
    fn scan_page(&mut self, slot: usize, meta: PageMeta, fs: &dyn FsIntrospect) {
        if !self.session_accepts(slot, meta, fs) {
            return;
        }
        let Some(mask) = self.sessions[slot].as_ref().map(|s| s.mask) else {
            return;
        };
        let d = self.descriptor_entry(meta.key, true, meta.dirty, meta.block);
        let was_pending = d.pending_for(slot, mask);
        {
            let f = &mut d.sess[slot];
            if !f.state_init() {
                f.set_reported(false, false);
            }
        }
        if mask.contains(EventMask::ADDED) {
            d.sess[slot].set_evt(ItemFlags::ADDED);
        }
        if meta.dirty && mask.contains(EventMask::DIRTIED) {
            d.sess[slot].set_evt(ItemFlags::DIRTIED);
        }
        let now_pending = d.pending_for(slot, mask);
        if now_pending && !was_pending {
            self.enqueue(slot, meta.key);
        }
        self.gc_descriptor(meta.key);
    }

    /// `duet_deregister`: releases all session state (§3.2).
    pub fn deregister(&mut self, sid: SessionId) -> SimResult<()> {
        let slot = sid.0 as usize;
        self.session_ref(sid)?;
        self.sessions[slot] = None;
        self.masks[slot] = None;
        if let Some(trace) = &self.trace {
            trace.tick(TraceLayer::Duet, "deregister");
        }
        // Strip the session's flags from every descriptor; free those
        // left with nothing pending.
        let masks = &self.masks;
        let mut freed = 0usize;
        self.descriptors.retain(|_, pages| {
            pages.retain(|_, d| {
                d.sess[slot].clear_all();
                let keep = d.pending_any(masks);
                if !keep {
                    freed += 1;
                }
                keep
            });
            !pages.is_empty()
        });
        self.ndesc -= freed;
        Ok(())
    }

    /// Deregisters and immediately re-registers a session into the same
    /// slot (same id, scope and mask), re-running the registration
    /// scan. Models mid-run session churn: all framework-side state —
    /// queued events, `done` and `relevant` bitmaps, pending
    /// descriptors — is lost, exactly as if the task had called
    /// `duet_deregister` + `duet_register`; only the task's own
    /// progress survives (§3.2's crash-tolerance argument).
    pub fn churn_session(&mut self, sid: SessionId, fs: &dyn FsIntrospect) -> SimResult<()> {
        let (scope, mask) = {
            let sess = self.session_ref(sid)?;
            (sess.scope, sess.mask)
        };
        self.deregister(sid)?;
        let slot = sid.0 as usize;
        self.sessions[slot] = Some(Session::new(scope, mask));
        self.masks[slot] = Some(mask);
        if let Some(trace) = &self.trace {
            trace.tick(TraceLayer::Duet, "churn");
        }
        for meta in fs.cached_pages() {
            self.scan_page(slot, meta, fs);
        }
        Ok(())
    }

    /// Injected session churn: on a deterministic subset of page events
    /// an active session (chosen from the fault stream) is torn down
    /// and re-registered before the event is processed.
    fn maybe_churn(&mut self, fs: &dyn FsIntrospect) {
        let Some(faults) = &self.faults else {
            return;
        };
        if !faults.fire(FaultSite::DuetSessionChurn) {
            return;
        }
        let active: Vec<u32> = (0..self.cfg.max_sessions as u32)
            .filter(|&s| self.sessions[s as usize].is_some())
            .collect();
        if active.is_empty() {
            return;
        }
        let pick = faults.amplitude(FaultSite::DuetSessionChurn, 0, active.len() as u64);
        let sid = SessionId(active[pick as usize]);
        // The session exists (picked from the active set), so the only
        // failure mode is a poisoned scan; churn is best-effort.
        // lint: allow(E1): fault-driven churn must not fail the caller
        let _ = self.churn_session(sid, fs);
    }

    // ----- event intake ----------------------------------------------------

    /// Whether a session is interested in pages of this file at all
    /// (scope + relevance + done filtering, §4.1). May update the
    /// session's `relevant`/`done` bitmaps as a side effect of the
    /// first-access path walk.
    fn session_accepts(&mut self, slot: usize, meta: PageMeta, fs: &dyn FsIntrospect) -> bool {
        let sess = match self.sessions[slot].as_mut() {
            Some(s) => s,
            None => return false,
        };
        let ino = meta.key.ino;
        match sess.scope {
            TaskScope::Block { .. } => {
                // Deferred when the block is not yet allocated (§4.2).
                let Some(block) = meta.block else {
                    return false;
                };
                !sess.done.test(block.raw())
            }
            TaskScope::File { registered_dir } => {
                if sess.done.test(ino.raw()) {
                    return false;
                }
                if sess.relevant.test(ino.raw()) {
                    return true;
                }
                // First access: backwards path walk.
                if fs.is_under(ino, registered_dir) {
                    sess.relevant.set(ino.raw());
                    true
                } else {
                    // Mark irrelevant files done so future events cost
                    // one bitmap test (§4.1).
                    sess.done.set(ino.raw());
                    false
                }
            }
        }
    }

    /// Which subscription bits an event can feed.
    fn interest_of(ev: PageEvent) -> EventMask {
        match ev {
            PageEvent::Added => EventMask::ADDED | EventMask::EXISTS,
            PageEvent::Removed => EventMask::REMOVED | EventMask::EXISTS,
            PageEvent::Dirtied => EventMask::DIRTIED | EventMask::MODIFIED,
            PageEvent::Flushed => EventMask::FLUSHED | EventMask::MODIFIED,
        }
    }

    fn descriptor_entry(
        &mut self,
        key: PageKey,
        exists: bool,
        modified: bool,
        block: Option<sim_core::BlockNr>,
    ) -> &mut Descriptor {
        let pages = self.descriptors.entry(key.ino).or_default();
        let max_sessions = self.cfg.max_sessions;
        let mut created = false;
        let d = pages.entry(key.index.raw()).or_insert_with(|| {
            created = true;
            Descriptor::new(max_sessions, exists, modified, block)
        });
        if created {
            self.ndesc += 1;
            self.stats.peak_descriptors = self.stats.peak_descriptors.max(self.ndesc);
        }
        d
    }

    fn descriptor_get(&mut self, key: PageKey) -> Option<&mut Descriptor> {
        self.descriptors
            .get_mut(&key.ino)
            .and_then(|pages| pages.get_mut(&key.index.raw()))
    }

    /// Frees the descriptor if no session has anything pending on it.
    fn gc_descriptor(&mut self, key: PageKey) {
        let masks = &self.masks;
        let Some(pages) = self.descriptors.get_mut(&key.ino) else {
            return;
        };
        if let Some(d) = pages.get(&key.index.raw()) {
            if !d.pending_any(masks) {
                pages.remove(&key.index.raw());
                self.ndesc -= 1;
            }
        }
        if pages.is_empty() {
            self.descriptors.remove(&key.ino);
        }
    }

    fn enqueue(&mut self, slot: usize, key: PageKey) {
        if let Some(sess) = self.sessions[slot].as_mut() {
            sess.queue.push_back(key);
        }
    }

    /// The page-cache hook (§4.1): called for every page event, in
    /// order. `meta` is the page's state as of the event.
    pub fn handle_page_event(&mut self, meta: PageMeta, ev: PageEvent, fs: &dyn FsIntrospect) {
        // Fast path: with no registered session, no live descriptor and
        // no fault stream to advance, the full intake below can only
        // bump the event counter and tick the trace — do exactly that.
        // Baseline (non-Duet) experiment cells still pump every cache
        // event through here, so this is their per-event cost.
        if self.ndesc == 0 && self.faults.is_none() && self.sessions.iter().all(Option::is_none) {
            self.stats.events_processed += 1;
            if let Some(trace) = &self.trace {
                trace.tick(TraceLayer::Duet, "event");
            }
            return;
        }
        self.maybe_churn(fs);
        self.stats.events_processed += 1;
        if let Some(trace) = &self.trace {
            trace.tick(TraceLayer::Duet, "event");
        }
        let ((pre_e, pre_m), (post_e, post_m)) = transition(ev, meta.dirty);
        let interest = Self::interest_of(ev);
        // Pass 1: which sessions want this event?
        let mut interested = std::mem::take(&mut self.scratch_interested);
        for slot in 0..self.cfg.max_sessions {
            let Some(sess) = self.sessions[slot].as_ref() else {
                continue;
            };
            if !sess.mask.intersects(interest) {
                continue;
            }
            // DoS bound: drop events for event-only sessions over limit.
            if !sess.mask.has_state() && sess.queue.len() >= self.cfg.descriptor_limit {
                self.stats.events_dropped += 1;
                if let Some(s) = self.sessions[slot].as_mut() {
                    s.dropped += 1;
                }
                continue;
            }
            if self.session_accepts(slot, meta, fs) {
                interested.push(slot);
            }
        }
        // Pass 2: update the descriptor.
        let key = meta.key;
        let exists_already = self
            .descriptors
            .get(&key.ino)
            .is_some_and(|p| p.contains_key(&key.index.raw()));
        if !exists_already && interested.is_empty() {
            self.scratch_interested = interested;
            return;
        }
        // `descriptor_entry` needs `&mut self`, so the masks cache is
        // moved out for the scope of pass 2 and restored after (no
        // callee in between reads it).
        let masks = std::mem::take(&mut self.masks);
        let mut newly_pending = std::mem::take(&mut self.scratch_pending);
        if exists_already {
            // The event folds into an existing descriptor: the state
            // merge of §4.2 (one descriptor accumulates many events).
            if let Some(trace) = &self.trace {
                trace.tick(TraceLayer::Duet, "merge");
            }
        }
        {
            let d = self.descriptor_entry(key, post_e, post_m, meta.block);
            if exists_already {
                d.cur_exists = post_e;
                d.cur_modified = post_m;
                if meta.block.is_some() {
                    d.block = meta.block;
                }
            }
            for &slot in &interested {
                let Some(mask) = masks[slot] else {
                    continue;
                };
                let was = d.pending_for(slot, mask);
                if !d.sess[slot].state_init() {
                    d.sess[slot].set_reported(pre_e, pre_m);
                }
                let evt_bit = match ev {
                    PageEvent::Added => (EventMask::ADDED, ItemFlags::ADDED),
                    PageEvent::Removed => (EventMask::REMOVED, ItemFlags::REMOVED),
                    PageEvent::Dirtied => (EventMask::DIRTIED, ItemFlags::DIRTIED),
                    PageEvent::Flushed => (EventMask::FLUSHED, ItemFlags::FLUSHED),
                };
                if mask.contains(evt_bit.0) {
                    d.sess[slot].set_evt(evt_bit.1);
                }
                let now = d.pending_for(slot, mask);
                if now && !was {
                    newly_pending.push(slot);
                }
            }
        }
        self.masks = masks;
        for slot in newly_pending.drain(..) {
            self.enqueue(slot, key);
        }
        interested.clear();
        self.scratch_interested = interested;
        self.scratch_pending = newly_pending;
        // Cancellation: opposing events may have reverted the page to
        // its reported state for every session.
        self.gc_descriptor(key);
    }

    // ----- fetch -------------------------------------------------------------

    /// `duet_fetch`: returns up to `max` items with pending
    /// notifications, marking them up-to-date (§3.2).
    pub fn fetch(
        &mut self,
        sid: SessionId,
        max: usize,
        fs: &dyn FsIntrospect,
    ) -> SimResult<Vec<Item>> {
        let slot = sid.0 as usize;
        // Bound the walk by the current queue length so deferred items
        // (e.g. blockless pages re-queued) cannot spin the loop.
        let mut budget = self.session_ref(sid)?.queue.len();
        self.stats.fetch_calls += 1;
        let mut out = Vec::new();
        while out.len() < max && budget > 0 {
            budget -= 1;
            let (key, sess_scope, sess_mask) = {
                let Some(sess) = self.sessions[slot].as_mut() else {
                    break;
                };
                let Some(key) = sess.queue.pop_front() else {
                    break;
                };
                (key, sess.scope, sess.mask)
            };
            let Some(d) = self.descriptor_get(key) else {
                continue;
            };
            if !d.pending_for(slot, sess_mask) {
                self.gc_descriptor(key);
                continue;
            }
            // Resolve the block for block tasks (FIBMAP bridging, §4.2).
            let block = match sess_scope {
                TaskScope::Block { .. } => {
                    let b = match d.block {
                        Some(b) => Some(b),
                        None => {
                            let resolved = fs.fibmap(key.ino, key.index);
                            if let Some(b) = resolved {
                                d.block = Some(b);
                            }
                            resolved
                        }
                    };
                    match b {
                        Some(b) => Some(b),
                        None => {
                            // Still unallocated: defer to a later fetch.
                            self.enqueue(slot, key);
                            continue;
                        }
                    }
                }
                TaskScope::File { .. } => None,
            };
            // Done filtering at delivery time. File tasks need no check
            // here: `set_done` already marked their descriptors
            // up-to-date. Block tasks have no per-block descriptor
            // index, so "marked up-to-date" is applied lazily now.
            let skip = match (sess_scope, block) {
                (TaskScope::File { .. }, _) | (TaskScope::Block { .. }, None) => false,
                (TaskScope::Block { .. }, Some(b)) => self.sessions[slot]
                    .as_ref()
                    .is_some_and(|sess| sess.done.test(b.raw())),
            };
            let Some(d) = self.descriptor_get(key) else {
                continue;
            };
            if skip {
                // Mark up-to-date without delivering.
                d.sess[slot].clear_evt();
                d.sess[slot].clear_force_not_exists();
                let (e, m) = (d.cur_exists, d.cur_modified);
                d.sess[slot].set_reported(e, m);
                self.gc_descriptor(key);
                continue;
            }
            // Build the flags.
            let mut flags = ItemFlags::empty();
            let f = d.sess[slot];
            flags |= crate::events::ItemFlags::from_evt_bits(f.evt_bits());
            if f.force_not_exists() {
                flags |= ItemFlags::NOT_EXISTS;
            } else if f.state_init() {
                if sess_mask.contains(EventMask::EXISTS) && f.reported_exists() != d.cur_exists {
                    flags |= if d.cur_exists {
                        ItemFlags::EXISTS
                    } else {
                        ItemFlags::NOT_EXISTS
                    };
                }
                if sess_mask.contains(EventMask::MODIFIED)
                    && f.reported_modified() != d.cur_modified
                {
                    flags |= if d.cur_modified {
                        ItemFlags::MODIFIED
                    } else {
                        ItemFlags::NOT_MODIFIED
                    };
                }
            }
            // Mark up-to-date.
            d.sess[slot].clear_evt();
            d.sess[slot].clear_force_not_exists();
            let (e, m) = (d.cur_exists, d.cur_modified);
            d.sess[slot].set_reported(e, m);
            let item = match (sess_scope, block) {
                (TaskScope::File { .. }, _) => Item {
                    id: ItemId::Inode(key.ino),
                    offset: key.index.raw() * PAGE_SIZE,
                    flags,
                    moved_to: None,
                },
                (TaskScope::Block { .. }, Some(b)) => {
                    // Surface a post-event migration (log-structured
                    // flush) for the GC's segment counters.
                    let moved_to = fs.fibmap(key.ino, key.index).filter(|&cur| cur != b);
                    Item {
                        id: ItemId::Block(b),
                        offset: 0,
                        flags,
                        moved_to,
                    }
                }
                // Block tasks resolved (or deferred on) the block above.
                (TaskScope::Block { .. }, None) => continue,
            };
            out.push(item);
            self.gc_descriptor(key);
        }
        self.stats.items_fetched += out.len() as u64;
        if let Some(trace) = &self.trace {
            trace.tick(TraceLayer::Duet, "fetch");
            trace.tick_n(TraceLayer::Duet, "hint", out.len() as u64);
        }
        Ok(out)
    }

    // ----- done tracking -------------------------------------------------------

    /// `duet_check_done`.
    pub fn check_done(&self, sid: SessionId, item: ItemId) -> SimResult<bool> {
        let sess = self.session_ref(sid)?;
        Ok(match item {
            ItemId::Block(b) => sess.done.test(b.raw()),
            ItemId::Inode(i) => sess.done.test(i.raw()),
        })
    }

    /// `duet_set_done`: marks work complete. For file tasks, all the
    /// file's pending descriptors are marked up-to-date ("the item
    /// descriptors for all the associated pages of the file are marked
    /// up-to-date and future events on the file are no longer tracked",
    /// §4.1).
    pub fn set_done(&mut self, sid: SessionId, item: ItemId) -> SimResult<()> {
        let slot = sid.0 as usize;
        {
            let sess = self.session_mut(sid)?;
            match item {
                ItemId::Block(b) => {
                    sess.done.set(b.raw());
                }
                ItemId::Inode(i) => {
                    sess.done.set(i.raw());
                }
            }
        }
        if let ItemId::Inode(ino) = item {
            let masks = &self.masks;
            if let Some(pages) = self.descriptors.get_mut(&ino) {
                let mut freed = 0usize;
                pages.retain(|_, d| {
                    d.sess[slot].clear_evt();
                    d.sess[slot].clear_force_not_exists();
                    let (e, m) = (d.cur_exists, d.cur_modified);
                    d.sess[slot].set_reported(e, m);
                    let keep = d.pending_any(masks);
                    if !keep {
                        freed += 1;
                    }
                    keep
                });
                if pages.is_empty() {
                    self.descriptors.remove(&ino);
                }
                self.ndesc -= freed;
            }
        }
        Ok(())
    }

    /// `duet_unset_done`: reopens an item for tracking (the scrubber's
    /// re-verify path uses this when a done block is overwritten).
    pub fn unset_done(&mut self, sid: SessionId, item: ItemId) -> SimResult<()> {
        let sess = self.session_mut(sid)?;
        match item {
            ItemId::Block(b) => {
                sess.done.clear(b.raw());
            }
            ItemId::Inode(i) => {
                sess.done.clear(i.raw());
            }
        }
        Ok(())
    }

    // ----- path resolution -------------------------------------------------------

    /// `duet_get_path`: translates an inode to a path relative to the
    /// registered directory. Fails with
    /// [`SimError::PathNotAvailable`] when the file has no cached pages
    /// (the hint's truth check, §3.2) or has left the registered tree.
    pub fn get_path(
        &self,
        sid: SessionId,
        ino: InodeNr,
        fs: &dyn FsIntrospect,
    ) -> SimResult<String> {
        let sess = self.session_ref(sid)?;
        let TaskScope::File { registered_dir } = sess.scope else {
            return Err(SimError::Unsupported("get_path on a block task"));
        };
        // Injected path failure: a deterministic subset of calls fail
        // as if the pages were reclaimed between the hint and the
        // lookup; the caller must back out and re-enqueue (§3.2).
        if let Some(faults) = &self.faults {
            if faults.fire(FaultSite::DuetPathUnavailable) {
                return Err(SimError::PathNotAvailable(ino));
            }
        }
        if !fs.has_cached_pages(ino) {
            return Err(SimError::PathNotAvailable(ino));
        }
        if !fs.is_under(ino, registered_dir) {
            return Err(SimError::PathNotAvailable(ino));
        }
        let full = fs.path_of(ino).ok_or(SimError::PathNotAvailable(ino))?;
        let base = fs
            .path_of(registered_dir)
            .ok_or(SimError::PathNotAvailable(registered_dir))?;
        let rel = if base == "/" {
            full.trim_start_matches('/').to_string()
        } else {
            match full.strip_prefix(&base) {
                Some(s) => s.trim_start_matches('/').to_string(),
                None => full,
            }
        };
        Ok(rel)
    }

    // ----- namespace events -------------------------------------------------------

    /// VFS hook: a file or directory moved. Handles moves into and out
    /// of registered directories, and directory renames (§4.1).
    pub fn handle_rename(
        &mut self,
        ino: InodeNr,
        old_parent: InodeNr,
        is_dir: bool,
        fs: &dyn FsIntrospect,
    ) {
        for slot in 0..self.cfg.max_sessions {
            let Some(sess) = self.sessions[slot].as_ref() else {
                continue;
            };
            let TaskScope::File { registered_dir } = sess.scope else {
                continue;
            };
            let was_rel = fs.is_under(old_parent, registered_dir) || ino == registered_dir;
            let now_rel = fs.is_under(ino, registered_dir);
            if is_dir {
                if was_rel == now_rel {
                    continue;
                }
                // Directory rename: reset relevant and done for all
                // files except those fully processed (both bits set).
                let Some(sess) = self.sessions[slot].as_mut() else {
                    continue;
                };
                let keep: Vec<u64> = sess
                    .relevant
                    .iter()
                    .filter(|&i| sess.done.test(i))
                    .collect();
                sess.relevant.clear_all();
                sess.done.clear_all();
                for i in keep {
                    sess.relevant.set(i);
                    sess.done.set(i);
                }
            } else if !was_rel && now_rel {
                // Moved in: start tracking; seed descriptors for pages
                // already cached.
                if let Some(sess) = self.sessions[slot].as_mut() {
                    sess.done.clear(ino.raw());
                    sess.relevant.set(ino.raw());
                }
                for meta in fs.cached_pages_of(ino) {
                    self.scan_page(slot, meta, fs);
                }
            } else if was_rel && !now_rel {
                // Moved out: report the pages gone, then ignore the file.
                let Some(mask) = self.sessions[slot].as_ref().map(|s| s.mask) else {
                    continue;
                };
                for meta in fs.cached_pages_of(ino) {
                    let d = self.descriptor_entry(meta.key, true, meta.dirty, meta.block);
                    let was = d.pending_for(slot, mask);
                    if mask.contains(EventMask::REMOVED) {
                        d.sess[slot].set_evt(ItemFlags::REMOVED);
                    }
                    if mask.contains(EventMask::EXISTS) {
                        d.sess[slot].set_force_not_exists();
                    }
                    let now = d.pending_for(slot, mask);
                    if now && !was {
                        self.enqueue(slot, meta.key);
                    }
                    self.gc_descriptor(meta.key);
                }
                // Mark the file done while keeping the farewell
                // notifications pending: future events are filtered at
                // intake, but the pending `Removed`/`¬Exists` items are
                // still delivered — "after the next fetch, Duet will
                // ignore the file" (§4.1).
                if let Some(sess) = self.sessions[slot].as_mut() {
                    sess.relevant.clear(ino.raw());
                    sess.done.set(ino.raw());
                }
            }
        }
    }

    /// VFS hook: a file was deleted. The page cache already emitted
    /// `Removed` events for its pages; this only releases the
    /// relevance/done bits so bitmap memory stays bounded.
    pub fn handle_delete(&mut self, ino: InodeNr) {
        for slot in 0..self.cfg.max_sessions {
            if let Some(sess) = self.sessions[slot].as_mut() {
                if matches!(sess.scope, TaskScope::File { .. }) {
                    sess.relevant.clear(ino.raw());
                    sess.done.clear(ino.raw());
                }
            }
        }
    }

    /// Human-readable framework status — sessions, masks, descriptor
    /// and memory counters — analogous to the kernel module's debugfs
    /// interface.
    pub fn status(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "duet: {} session(s), {} descriptor(s), {} B tracked memory",
            self.session_count(),
            self.ndesc,
            self.memory_bytes()
        );
        for (slot, sess) in self.sessions.iter().enumerate() {
            let Some(s) = sess else {
                continue;
            };
            let scope = match s.scope {
                TaskScope::Block { device } => format!("block task on {device}"),
                TaskScope::File { registered_dir } => {
                    format!("file task under {registered_dir}")
                }
            };
            let _ = writeln!(
                out,
                "  sid#{slot}: {scope}, mask {}, queue {}, done bits {}, relevant bits {}, dropped {}",
                s.mask,
                s.queue.len(),
                s.done.count(),
                s.relevant.count(),
                s.dropped
            );
        }
        let _ = writeln!(
            out,
            "  totals: {} events processed, {} dropped, {} fetches, {} items, peak {} descriptors",
            self.stats.events_processed,
            self.stats.events_dropped,
            self.stats.fetch_calls,
            self.stats.items_fetched,
            self.stats.peak_descriptors
        );
        out
    }

    /// Pages with pending notifications for any session, up to `max`.
    ///
    /// Powers the *informed cache replacement* extension (named as
    /// future work in §2 of the paper): the cache can deprioritize
    /// evicting pages whose hints no task has consumed yet.
    pub fn pending_pages(&self, max: usize) -> Vec<PageKey> {
        let masks = &self.masks;
        let mut out = Vec::new();
        'outer: for (&ino, pages) in &self.descriptors {
            for (&idx, d) in pages {
                if d.pending_any(masks) {
                    out.push(PageKey::new(ino, sim_core::PageIndex(idx)));
                    if out.len() >= max {
                        break 'outer;
                    }
                }
            }
        }
        out
    }

    /// Events dropped for a session (DoS-bound accounting).
    pub fn dropped_events(&self, sid: SessionId) -> SimResult<u64> {
        Ok(self.session_ref(sid)?.dropped)
    }

    /// The session's pending-queue length (diagnostics).
    pub fn queue_len(&self, sid: SessionId) -> SimResult<usize> {
        Ok(self.session_ref(sid)?.queue.len())
    }
}

impl ItemFlags {
    /// Builds flags from raw pending-event bits (bits 0–3 map 1:1).
    pub(crate) fn from_evt_bits(bits: u8) -> ItemFlags {
        debug_assert!(bits & 0xF0 == 0);
        let mut f = ItemFlags::empty();
        if bits & ItemFlags::ADDED.bits() != 0 {
            f |= ItemFlags::ADDED;
        }
        if bits & ItemFlags::REMOVED.bits() != 0 {
            f |= ItemFlags::REMOVED;
        }
        if bits & ItemFlags::DIRTIED.bits() != 0 {
            f |= ItemFlags::DIRTIED;
        }
        if bits & ItemFlags::FLUSHED.bits() != 0 {
            f |= ItemFlags::FLUSHED;
        }
        f
    }
}
