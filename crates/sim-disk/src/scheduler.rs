//! I/O scheduling policy.
//!
//! The paper runs maintenance tasks under CFQ at Idle priority: idle
//! requests are "serviced only after the device has remained idle for
//! some time" (§6.1.3). §6.5 compares against the Deadline scheduler,
//! which has no prioritization and lets maintenance I/O slow the
//! workload down.
//!
//! In the simulation, the device itself executes requests FIFO; the
//! *policy* decides when the experiment runner is allowed to dispatch a
//! maintenance request. This mirrors where the decision is made in a
//! real system (the scheduler holds back idle-class requests; once
//! dispatched, the device just executes them).

use sim_core::{SimDuration, SimInstant};

/// When maintenance (idle-class) I/O may be dispatched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulerPolicy {
    /// CFQ-style idle class: maintenance I/O may start only if the
    /// device has been idle for at least the grace period and no
    /// foreground request is due before the maintenance request would
    /// finish being pointless to block. This is the paper's default.
    CfqIdle {
        /// How long the device must have been idle.
        grace: SimDuration,
    },
    /// Deadline-style scheduler with no prioritization: maintenance I/O
    /// dispatches whenever the device is free, competing head-on with
    /// the workload (§6.5 "I/O prioritization").
    NoPriority,
}

impl SchedulerPolicy {
    /// The default CFQ idle-class grace period used by the experiments.
    ///
    /// CFQ waits a few milliseconds of device idleness before releasing
    /// idle-class I/O. We charge the grace once per dispatched chunk, so
    /// 2 ms keeps the aggregate idle-class efficiency in the range real
    /// CFQ achieves while still holding maintenance out of short gaps.
    pub fn default_cfq() -> Self {
        SchedulerPolicy::CfqIdle {
            grace: SimDuration::from_millis(2),
        }
    }

    /// Decides whether a maintenance request may dispatch at `now`,
    /// given when the device last completed work (`device_free_since`)
    /// and when the next foreground request is expected
    /// (`next_foreground`, `None` if the workload is finished).
    ///
    /// Under [`SchedulerPolicy::CfqIdle`], dispatch requires the grace
    /// period to have elapsed since the device went idle, and the next
    /// foreground arrival must not already be due.
    pub fn may_dispatch_maintenance(
        &self,
        now: SimInstant,
        device_free_since: SimInstant,
        next_foreground: Option<SimInstant>,
    ) -> bool {
        match *self {
            SchedulerPolicy::NoPriority => true,
            SchedulerPolicy::CfqIdle { grace } => {
                if now.saturating_duration_since(device_free_since) < grace {
                    return false;
                }
                match next_foreground {
                    Some(t) => t > now,
                    None => true,
                }
            }
        }
    }

    /// The earliest time a maintenance request may dispatch, if the
    /// device went idle at `device_free_since` and no foreground request
    /// intervenes. Under [`SchedulerPolicy::NoPriority`] this is `now`.
    pub fn earliest_maintenance_dispatch(
        &self,
        now: SimInstant,
        device_free_since: SimInstant,
    ) -> SimInstant {
        match *self {
            SchedulerPolicy::NoPriority => now,
            SchedulerPolicy::CfqIdle { grace } => now.max(device_free_since + grace),
        }
    }
}

/// Bounded retry-and-backoff for transient I/O errors, in virtual time.
///
/// The real kernel retries a failed bio a bounded number of times before
/// surfacing EIO; we model that with exponential backoff — attempt `k`
/// (0-based) waits `base_backoff << k` before resubmitting.
///
/// # Attempt-count semantics
///
/// `max_attempts` counts **total submissions**, not retries: a policy of
/// N performs the initial submission plus at most N−1 retries, so at
/// most N−1 backoffs are ever charged. This is why
/// [`RetryPolicy::worst_case_backoff`] sums `0..max_attempts - 1` — it
/// is *not* an off-by-one. A budget of 0 is treated like 1: the first
/// submission is unconditional (there is no way to "try zero times"),
/// it just gets no retries. These semantics are pinned by
/// `submission_count_matches_attempt_budget` in the `sim-disk` crate
/// root, which counts actual device submissions per budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total tries, including the first submission (see the
    /// attempt-count semantics above; 0 behaves like 1).
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles each further retry.
    pub base_backoff: SimDuration,
    /// Upper clamp on any single backoff. The exponential stops
    /// growing here, so a large `base_backoff` or attempt count can
    /// never overflow the nanosecond arithmetic.
    pub max_backoff: SimDuration,
}

impl RetryPolicy {
    /// The backoff inserted after failed attempt `attempt` (0-based):
    /// `base_backoff * 2^attempt`, saturating, clamped to
    /// `max_backoff`.
    pub fn backoff_after(&self, attempt: u32) -> SimDuration {
        let factor = 1u64.checked_shl(attempt.min(63)).unwrap_or(u64::MAX);
        self.base_backoff
            .saturating_mul(factor)
            .min(self.max_backoff)
    }

    /// Total virtual time spent backing off if every attempt fails:
    /// N submissions are separated by N−1 backoffs (none after the
    /// final, failing attempt — the error surfaces immediately).
    /// Saturates at [`SimDuration::MAX`]; with the per-backoff clamp
    /// it is also bounded by `(max_attempts − 1) × max_backoff`.
    pub fn worst_case_backoff(&self) -> SimDuration {
        let mut total = SimDuration::ZERO;
        for attempt in 0..self.max_attempts.saturating_sub(1) {
            total = total.saturating_add(self.backoff_after(attempt));
        }
        total
    }
}

impl Default for RetryPolicy {
    /// Four attempts with a 500 µs initial backoff (0.5, 1, 2 ms) and
    /// a 100 ms per-backoff clamp (never reached by the defaults).
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_backoff: SimDuration::from_micros(500),
            max_backoff: SimDuration::from_millis(100),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MS: fn(u64) -> SimDuration = SimDuration::from_millis;

    #[test]
    fn no_priority_always_dispatches() {
        let p = SchedulerPolicy::NoPriority;
        let now = SimInstant::EPOCH + MS(1);
        assert!(p.may_dispatch_maintenance(now, now, Some(now)));
        assert_eq!(p.earliest_maintenance_dispatch(now, now), now);
    }

    #[test]
    fn cfq_waits_for_grace() {
        let p = SchedulerPolicy::CfqIdle { grace: MS(4) };
        let free = SimInstant::EPOCH + MS(10);
        // Too soon after the device went idle.
        assert!(!p.may_dispatch_maintenance(free + MS(2), free, None));
        // After the grace period.
        assert!(p.may_dispatch_maintenance(free + MS(4), free, None));
        assert_eq!(
            p.earliest_maintenance_dispatch(free + MS(1), free),
            free + MS(4)
        );
    }

    #[test]
    fn cfq_defers_to_due_foreground() {
        let p = SchedulerPolicy::CfqIdle { grace: MS(4) };
        let free = SimInstant::EPOCH;
        let now = free + MS(10);
        // Foreground request already due: hold maintenance back.
        assert!(!p.may_dispatch_maintenance(now, free, Some(now)));
        assert!(!p.may_dispatch_maintenance(now, free, Some(now - MS(1))));
        // Foreground strictly in the future: allowed.
        assert!(p.may_dispatch_maintenance(now, free, Some(now + MS(1))));
    }

    #[test]
    fn retry_backoff_doubles() {
        let p = RetryPolicy {
            max_attempts: 4,
            base_backoff: SimDuration::from_micros(500),
            ..RetryPolicy::default()
        };
        assert_eq!(p.backoff_after(0), SimDuration::from_micros(500));
        assert_eq!(p.backoff_after(1), SimDuration::from_millis(1));
        assert_eq!(p.backoff_after(2), SimDuration::from_millis(2));
        // 0.5 + 1 + 2 ms across the three possible retries.
        assert_eq!(p.worst_case_backoff(), SimDuration::from_micros(3_500));
    }

    #[test]
    fn retry_backoff_clamps_at_max_backoff() {
        let p = RetryPolicy {
            max_attempts: 16,
            base_backoff: SimDuration::from_micros(500),
            max_backoff: SimDuration::from_millis(2),
        };
        assert_eq!(p.backoff_after(0), SimDuration::from_micros(500));
        assert_eq!(p.backoff_after(2), SimDuration::from_millis(2));
        // The exponential stops at the clamp instead of doubling on.
        assert_eq!(p.backoff_after(3), SimDuration::from_millis(2));
        assert_eq!(p.backoff_after(60), SimDuration::from_millis(2));
        // 0.5 + 1 + 13×2 ms across the fifteen possible retries.
        assert_eq!(p.worst_case_backoff(), SimDuration::from_micros(27_500));
    }

    #[test]
    fn retry_backoff_saturates_instead_of_overflowing() {
        // base_backoff of ~5 hours: the old `base * (1 << 20)` would
        // overflow u64 nanoseconds and panic in debug builds.
        let p = RetryPolicy {
            max_attempts: 64,
            base_backoff: SimDuration::from_secs(5 * 3600),
            max_backoff: SimDuration::MAX,
        };
        assert_eq!(p.backoff_after(63), SimDuration::MAX);
        assert_eq!(p.backoff_after(u32::MAX), SimDuration::MAX);
        assert_eq!(p.worst_case_backoff(), SimDuration::MAX);
        // With a finite clamp, worst case is (N−1) × max_backoff.
        let clamped = RetryPolicy {
            max_backoff: SimDuration::from_secs(1),
            ..p
        };
        // First backoff is already 5 h before clamping, so all 63
        // retries charge exactly the 1 s clamp.
        assert_eq!(clamped.worst_case_backoff(), SimDuration::from_secs(63));
    }

    #[test]
    fn default_cfq_has_small_grace() {
        match SchedulerPolicy::default_cfq() {
            SchedulerPolicy::CfqIdle { grace } => assert_eq!(grace, MS(2)),
            other => panic!("unexpected policy {other:?}"),
        }
    }
}
