//! Simulated block devices and I/O accounting.
//!
//! The paper's experiments run on an HP ProLiant server with a 300 GB
//! 10K-RPM SAS drive, and §6.5 repeats them on a consumer SSD (Intel 510).
//! This crate models both devices in virtual time:
//!
//! - [`hdd::HddModel`] — seek + rotational latency + transfer, with a
//!   track-buffer fast path for sequential continuation;
//! - [`ssd::SsdModel`] — per-operation overhead + transfer, with random
//!   and sequential behaviour calibrated to the device the paper used;
//! - [`Disk`] — a single-queue device executing requests serially,
//!   tracking busy time and per-class (foreground vs maintenance) I/O
//!   counters. Utilization is reported the way `iostat %util` reports it
//!   (§6.1.2): fraction of elapsed time the device was busy.
//!
//! Scheduling policy (CFQ idle class vs the Deadline scheduler of §6.5)
//! is represented by [`scheduler::SchedulerPolicy`]; the experiments
//! runner consults it to decide *when* maintenance requests may be
//! dispatched, which is exactly how the idle class behaves: idle-priority
//! requests are serviced only after the device has remained idle for a
//! grace period.

pub mod hdd;
pub mod metrics;
pub mod request;
pub mod scheduler;
pub mod ssd;

pub use hdd::HddModel;
pub use metrics::{ClassMetrics, DiskMetrics};
pub use request::{IoClass, IoKind, IoRequest};
pub use scheduler::{RetryPolicy, SchedulerPolicy};
pub use ssd::SsdModel;

use sim_core::fault::{FaultHandle, FaultSite};
use sim_core::snapshot::{Digest, StateDigest};
use sim_core::trace::{TraceHandle, TraceLayer};
use sim_core::{BlockNr, SimDuration, SimError, SimInstant, SimResult, PAGE_SIZE};

/// Mechanical breakdown of one request's service time. The trace plane
/// records the three parts separately so seek-bound and transfer-bound
/// phases of a run can be told apart in the dumps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServiceParts {
    /// Arm movement (HDD) or per-operation overhead (SSD).
    pub seek: SimDuration,
    /// Rotational latency (zero on SSDs).
    pub rotation: SimDuration,
    /// Media transfer.
    pub transfer: SimDuration,
}

impl ServiceParts {
    /// The total service time, as charged to the device.
    pub fn total(&self) -> SimDuration {
        self.seek + self.rotation + self.transfer
    }
}

/// A device model computes the service time of one request, given its
/// own internal state (e.g. head position).
pub trait DeviceModel {
    /// Service time for `req`, broken into seek / rotation / transfer,
    /// updating internal state (head position, last-access block) as a
    /// side effect.
    fn service_parts(&mut self, req: &IoRequest) -> ServiceParts;

    /// Total service time for `req`; state updates as in
    /// [`DeviceModel::service_parts`].
    fn service_time(&mut self, req: &IoRequest) -> SimDuration {
        self.service_parts(req).total()
    }

    /// Device capacity in blocks.
    fn capacity_blocks(&self) -> u64;

    /// Human-readable model name for reports.
    fn name(&self) -> &'static str;

    /// Deep-copies the model, including positioning state (head, last
    /// request end) — the snapshot/fork plane clones whole devices.
    fn clone_box(&self) -> Box<dyn DeviceModel>;

    /// Feeds the model's complete deterministic state (calibration
    /// constants and positioning state) into a fork-equivalence digest.
    fn digest_model(&self, d: &mut Digest);
}

/// A single-queue simulated block device.
///
/// Requests execute serially in submission order. [`Disk::submit`]
/// returns the completion time; the caller (the experiment runner)
/// advances the simulation clock. Busy intervals and per-class I/O
/// volumes are recorded in [`DiskMetrics`].
///
/// # Examples
///
/// ```
/// use sim_core::{BlockNr, SimInstant};
/// use sim_disk::{Disk, HddModel, IoClass, IoKind, IoRequest};
///
/// let mut disk = Disk::new(Box::new(HddModel::sas_10k(1 << 20)));
/// let req = IoRequest::new(IoKind::Read, BlockNr(0), 16, IoClass::Normal);
/// let done = disk.submit(&req, SimInstant::EPOCH);
/// assert!(done > SimInstant::EPOCH);
/// ```
pub struct Disk {
    model: Box<dyn DeviceModel>,
    busy_until: SimInstant,
    metrics: DiskMetrics,
    faults: Option<FaultHandle>,
    trace: Option<TraceHandle>,
}

impl Clone for Disk {
    /// Deep-copies the device for the snapshot/fork plane. The fault and
    /// trace handles are `Rc`-shared, so a fork taken while they are
    /// armed would observe the same buffers; snapshots are captured with
    /// both disarmed and re-armed per fork.
    fn clone(&self) -> Self {
        Disk {
            model: self.model.clone_box(),
            busy_until: self.busy_until,
            metrics: self.metrics,
            faults: self.faults.clone(),
            trace: self.trace.clone(),
        }
    }
}

impl StateDigest for Disk {
    fn digest_state(&self, d: &mut Digest) {
        self.model.digest_model(d);
        d.write_u64(self.busy_until.as_nanos());
        for class in [&self.metrics.normal, &self.metrics.idle] {
            d.write_u64(class.read_ops);
            d.write_u64(class.write_ops);
            d.write_u64(class.blocks_read);
            d.write_u64(class.blocks_written);
            d.write_u64(class.busy_time.as_nanos());
        }
        d.write_bool(self.faults.is_some());
        d.write_bool(self.trace.is_some());
    }
}

impl Disk {
    /// Creates a disk with the given device model.
    pub fn new(model: Box<dyn DeviceModel>) -> Self {
        Disk {
            model,
            busy_until: SimInstant::EPOCH,
            metrics: DiskMetrics::default(),
            faults: None,
            trace: None,
        }
    }

    /// Arms (or disarms, with `None`) fault injection on this device.
    /// With no handle — or a quiet plan — behaviour is byte-identical
    /// to an unfaulted disk.
    pub fn set_faults(&mut self, faults: Option<FaultHandle>) {
        self.faults = faults;
    }

    /// Arms (or disarms, with `None`) tracing on this device. Tracing is
    /// pure observation: service times and metrics are unaffected.
    pub fn set_trace(&mut self, trace: Option<TraceHandle>) {
        self.trace = trace;
    }

    /// Device capacity in blocks.
    pub fn capacity_blocks(&self) -> u64 {
        self.model.capacity_blocks()
    }

    /// Device capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.model.capacity_blocks() * PAGE_SIZE
    }

    /// Model name for reports.
    pub fn model_name(&self) -> &'static str {
        self.model.name()
    }

    /// Submits a request at time `now` and returns its completion time.
    ///
    /// If the device is still busy with an earlier request, service
    /// starts when it frees up (FIFO). Busy time is attributed to the
    /// request's [`IoClass`].
    ///
    /// # Panics
    ///
    /// Panics if the request runs past the end of the device; filesystem
    /// layers validate ranges before submitting.
    pub fn submit(&mut self, req: &IoRequest, now: SimInstant) -> SimInstant {
        assert!(
            req.start.raw() + req.nblocks <= self.model.capacity_blocks(),
            "I/O past end of device: {:?}",
            req
        );
        self.execute(req, now)
    }

    /// Fallible variant of [`Disk::submit`]: out-of-range requests
    /// return [`SimError::BlockOutOfRange`] instead of panicking, and an
    /// armed [`FaultSite::DiskTransientIo`] fault yields
    /// [`SimError::TransientIo`] without occupying the device — the
    /// caller retries after a backoff (see [`Disk::submit_with_retry`]).
    pub fn try_submit(&mut self, req: &IoRequest, now: SimInstant) -> SimResult<SimInstant> {
        if req.start.raw() + req.nblocks > self.model.capacity_blocks() {
            return Err(SimError::BlockOutOfRange(request_end(
                req.start,
                req.nblocks,
            )));
        }
        if let Some(faults) = &self.faults {
            if faults.fire(FaultSite::DiskTransientIo) {
                return Err(SimError::TransientIo(req.start));
            }
        }
        Ok(self.execute(req, now))
    }

    /// Submits with bounded retry-and-backoff in virtual time: on a
    /// transient EIO the submission time advances by the policy's
    /// backoff and the request is retried, up to `max_attempts` total
    /// tries. Returns the completion time and the number of attempts
    /// used. Non-transient errors propagate immediately.
    pub fn submit_with_retry(
        &mut self,
        req: &IoRequest,
        now: SimInstant,
        policy: RetryPolicy,
    ) -> SimResult<(SimInstant, u32)> {
        let mut at = now;
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            match self.try_submit(req, at) {
                Ok(finish) => return Ok((finish, attempt)),
                Err(SimError::TransientIo(b)) => {
                    if attempt >= policy.max_attempts {
                        if let Some(trace) = &self.trace {
                            trace.event(TraceLayer::Disk, "retry.exhausted", at, || {
                                vec![("block", b.raw().into()), ("attempts", attempt.into())]
                            });
                        }
                        return Err(SimError::TransientIo(b));
                    }
                    let backoff = policy.backoff_after(attempt - 1);
                    if let Some(trace) = &self.trace {
                        trace.event(TraceLayer::Disk, "retry", at, || {
                            vec![
                                ("block", b.raw().into()),
                                ("attempt", attempt.into()),
                                ("backoff_ns", backoff.as_nanos().into()),
                            ]
                        });
                    }
                    at += backoff;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Executes an in-range request: FIFO queueing plus the device
    /// model's service time, with an armed latency-spike fault
    /// multiplying the service time deterministically.
    fn execute(&mut self, req: &IoRequest, now: SimInstant) -> SimInstant {
        let start = self.busy_until.max(now);
        let parts = self.model.service_parts(req);
        let mut service = parts.total();
        let mut spiked = 0u64;
        if let Some(faults) = &self.faults {
            if faults.fire(FaultSite::DiskLatencySpike) {
                spiked = faults.amplitude(FaultSite::DiskLatencySpike, 2, 17);
                service = service * spiked;
            }
        }
        let finish = start + service;
        self.busy_until = finish;
        self.metrics.record(req, service);
        if let Some(trace) = &self.trace {
            trace.span(TraceLayer::Disk, "io", start, service, || {
                let mut fields = vec![
                    ("op", req.kind.label().into()),
                    ("class", req.class.label().into()),
                    ("block", req.start.raw().into()),
                    ("nblocks", req.nblocks.into()),
                    ("seek_ns", parts.seek.as_nanos().into()),
                    ("rot_ns", parts.rotation.as_nanos().into()),
                    ("xfer_ns", parts.transfer.as_nanos().into()),
                ];
                if spiked > 0 {
                    fields.push(("spike_x", spiked.into()));
                }
                fields
            });
        }
        finish
    }

    /// The time at which the device next becomes free.
    pub fn busy_until(&self) -> SimInstant {
        self.busy_until
    }

    /// Returns true if the device is free at `t`.
    pub fn is_idle_at(&self, t: SimInstant) -> bool {
        self.busy_until <= t
    }

    /// Accumulated metrics.
    pub fn metrics(&self) -> &DiskMetrics {
        &self.metrics
    }

    /// Resets metrics (e.g. after a calibration phase) without touching
    /// device state.
    pub fn reset_metrics(&mut self) {
        self.metrics = DiskMetrics::default();
    }

    /// Foreground (`Normal`-class) device utilization over `elapsed`:
    /// the `%util` statistic of §6.1.2.
    pub fn foreground_utilization(&self, elapsed: SimDuration) -> f64 {
        if elapsed.is_zero() {
            0.0
        } else {
            self.metrics.normal.busy_time.as_secs_f64() / elapsed.as_secs_f64()
        }
    }
}

/// Convenience: total blocks needed for a byte count.
pub fn blocks_for_bytes(bytes: u64) -> u64 {
    bytes.div_ceil(PAGE_SIZE)
}

/// Convenience: block number after the last block of a request.
pub fn request_end(start: BlockNr, nblocks: u64) -> BlockNr {
    BlockNr(start.raw() + nblocks)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn read(start: u64, n: u64) -> IoRequest {
        IoRequest::new(IoKind::Read, BlockNr(start), n, IoClass::Normal)
    }

    #[test]
    fn fifo_serialization() {
        let mut disk = Disk::new(Box::new(HddModel::sas_10k(1 << 20)));
        let t0 = SimInstant::EPOCH;
        let f1 = disk.submit(&read(0, 8), t0);
        // Submitted while busy: starts after f1.
        let f2 = disk.submit(&read(100_000, 8), t0);
        assert!(f2 > f1);
        // Submitted after the device is free: starts immediately.
        let later = f2 + SimDuration::from_millis(50);
        let f3 = disk.submit(&read(200_000, 8), later);
        assert!(f3 > later);
        assert_eq!(disk.busy_until(), f3);
    }

    #[test]
    fn utilization_accounting() {
        let mut disk = Disk::new(Box::new(HddModel::sas_10k(1 << 20)));
        let t0 = SimInstant::EPOCH;
        let f1 = disk.submit(&read(0, 256), t0);
        let busy = f1.duration_since(t0);
        let elapsed = busy * 2;
        let util = disk.foreground_utilization(elapsed);
        assert!((util - 0.5).abs() < 1e-9, "util {util}");
        // Idle-class I/O does not count toward foreground utilization.
        let idle_req = IoRequest::new(IoKind::Read, BlockNr(0), 256, IoClass::Idle);
        disk.submit(&idle_req, f1);
        assert!((disk.foreground_utilization(elapsed) - 0.5).abs() < 1e-9);
        assert!(disk.metrics().idle.busy_time > SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "past end of device")]
    fn out_of_range_panics() {
        let mut disk = Disk::new(Box::new(HddModel::sas_10k(100)));
        disk.submit(&read(99, 2), SimInstant::EPOCH);
    }

    #[test]
    fn helpers() {
        assert_eq!(blocks_for_bytes(1), 1);
        assert_eq!(blocks_for_bytes(PAGE_SIZE * 3), 3);
        assert_eq!(request_end(BlockNr(10), 5), BlockNr(15));
    }

    #[cfg(feature = "trace")]
    mod trace {
        use super::*;
        use sim_core::fault::{FaultHandle, FaultPlan, FaultSite};
        use sim_core::trace::{TraceHandle, TraceLayer};

        #[test]
        fn io_span_carries_service_breakdown() {
            let mut disk = Disk::new(Box::new(HddModel::sas_10k(1 << 20)));
            let tr = TraceHandle::new(64);
            disk.set_trace(Some(tr.clone()));
            let finish = disk.submit(&read(500_000, 16), SimInstant::EPOCH);
            let evs = tr.events();
            assert_eq!(evs.len(), 1);
            let ev = &evs[0];
            assert_eq!(ev.layer, TraceLayer::Disk);
            assert_eq!(ev.kind, "io");
            assert_eq!(ev.field_str("op"), Some("read"));
            assert_eq!(ev.field_u64("block"), Some(500_000));
            assert_eq!(ev.field_u64("nblocks"), Some(16));
            // The parts sum to the span's extent, which ends at `finish`.
            let parts = ev.field_u64("seek_ns").unwrap()
                + ev.field_u64("rot_ns").unwrap()
                + ev.field_u64("xfer_ns").unwrap();
            assert_eq!(parts, ev.dur.as_nanos());
            assert_eq!(ev.at + ev.dur, finish);
            assert!(ev.field_u64("seek_ns").unwrap() > 0, "non-sequential seek");
        }

        #[test]
        fn retry_events_name_block_and_backoff() {
            let plan = FaultPlan::quiet().with_ppm(FaultSite::DiskTransientIo, 1_000_000);
            let handle = FaultHandle::new(1, plan);
            let mut disk = Disk::new(Box::new(HddModel::sas_10k(1 << 20)));
            disk.set_faults(Some(handle));
            let tr = TraceHandle::new(64);
            disk.set_trace(Some(tr.clone()));
            let policy = RetryPolicy::default();
            disk.submit_with_retry(&read(7, 8), SimInstant::EPOCH, policy)
                .unwrap_err();
            let evs = tr.events();
            // 3 retries then exhaustion under the 4-attempt default.
            assert_eq!(evs.len(), 4);
            assert_eq!(evs[0].kind, "retry");
            assert_eq!(evs[0].field_u64("block"), Some(7));
            assert_eq!(evs[0].field_u64("backoff_ns"), Some(500_000));
            assert_eq!(evs[3].kind, "retry.exhausted");
            assert_eq!(evs[3].field_u64("attempts"), Some(4));
        }

        #[test]
        fn tracing_never_perturbs_service_times() {
            let mut traced = Disk::new(Box::new(HddModel::sas_10k(1 << 20)));
            traced.set_trace(Some(TraceHandle::new(8)));
            let mut plain = Disk::new(Box::new(HddModel::sas_10k(1 << 20)));
            let mut t = SimInstant::EPOCH;
            for i in 0..64 {
                let req = read((i * 104_729_123) % ((1 << 20) - 16), 16);
                assert_eq!(traced.submit(&req, t), plain.submit(&req, t));
                t = traced.busy_until();
            }
        }
    }

    mod faults {
        use super::*;
        use sim_core::fault::{FaultHandle, FaultPlan, FaultSite};

        fn disk_with(plan: FaultPlan, seed: u64) -> (Disk, FaultHandle) {
            let handle = FaultHandle::new(seed, plan);
            let mut disk = Disk::new(Box::new(HddModel::sas_10k(1 << 20)));
            disk.set_faults(Some(handle.clone()));
            (disk, handle)
        }

        #[test]
        fn try_submit_out_of_range_is_an_error_not_a_panic() {
            let mut disk = Disk::new(Box::new(HddModel::sas_10k(100)));
            let err = disk
                .try_submit(&read(99, 2), SimInstant::EPOCH)
                .unwrap_err();
            assert_eq!(err, sim_core::SimError::BlockOutOfRange(BlockNr(101)));
        }

        #[test]
        fn certain_eio_exhausts_retries_with_pinned_attempt_count() {
            let plan = FaultPlan::quiet().with_ppm(FaultSite::DiskTransientIo, 1_000_000);
            let (mut disk, handle) = disk_with(plan, 1);
            let policy = RetryPolicy::default();
            let err = disk
                .submit_with_retry(&read(0, 8), SimInstant::EPOCH, policy)
                .unwrap_err();
            assert_eq!(err, sim_core::SimError::TransientIo(BlockNr(0)));
            // Exactly max_attempts tries hit the EIO site — no more.
            assert_eq!(handle.fired(FaultSite::DiskTransientIo), 4);
            assert_eq!(handle.trials(FaultSite::DiskTransientIo), 4);
            // The device never executed anything.
            assert_eq!(disk.busy_until(), SimInstant::EPOCH);
        }

        #[test]
        fn retry_backoff_is_charged_in_virtual_time() {
            // Find a seed whose EIO stream fails exactly the first two
            // attempts at 50% rate, then compare the completion time
            // against an unfaulted run shifted by the pinned backoff.
            let plan = FaultPlan::quiet().with_ppm(FaultSite::DiskTransientIo, 500_000);
            let policy = RetryPolicy::default();
            let mut pinned = None;
            for seed in 0..64u64 {
                let (mut disk, handle) = disk_with(plan.clone(), seed);
                let Ok((finish, attempts)) =
                    disk.submit_with_retry(&read(0, 8), SimInstant::EPOCH, policy)
                else {
                    continue; // this seed exhausted all attempts
                };
                if attempts == 3 {
                    assert_eq!(handle.fired(FaultSite::DiskTransientIo), 2);
                    pinned = Some(finish);
                    break;
                }
            }
            let finish = pinned.expect("some seed in 0..64 yields exactly 2 EIOs");
            // Unfaulted service time for the same request on a fresh model.
            let mut clean = Disk::new(Box::new(HddModel::sas_10k(1 << 20)));
            let base = clean.submit(&read(0, 8), SimInstant::EPOCH);
            // Two failed attempts back off 0.5 ms then 1 ms.
            let backoff = SimDuration::from_micros(500) + SimDuration::from_millis(1);
            assert_eq!(finish, base + backoff);
        }

        #[test]
        fn latency_spike_multiplies_service_deterministically() {
            let plan = FaultPlan::quiet().with_ppm(FaultSite::DiskLatencySpike, 1_000_000);
            let (mut spiky, _) = disk_with(plan.clone(), 7);
            let spiked = spiky.submit(&read(0, 8), SimInstant::EPOCH);
            let mut clean = Disk::new(Box::new(HddModel::sas_10k(1 << 20)));
            let base = clean.submit(&read(0, 8), SimInstant::EPOCH);
            assert!(spiked > base, "spike must slow the request down");
            // Same (seed, plan) pair replays bit-identically.
            let (mut replay, _) = disk_with(plan, 7);
            assert_eq!(replay.submit(&read(0, 8), SimInstant::EPOCH), spiked);
        }

        #[test]
        fn submission_count_matches_attempt_budget() {
            // Pins the RetryPolicy semantics: `max_attempts` counts
            // total submissions, with a budget of 0 behaving like 1
            // (the first submission is unconditional). Every submission
            // consults the EIO fault site exactly once, so the site's
            // trial count *is* the device submission count.
            for budget in [0u32, 1, 2, 4, 7] {
                let plan = FaultPlan::quiet().with_ppm(FaultSite::DiskTransientIo, 1_000_000);
                let (mut disk, handle) = disk_with(plan, 11);
                let policy = RetryPolicy {
                    max_attempts: budget,
                    base_backoff: SimDuration::from_micros(500),
                    ..RetryPolicy::default()
                };
                let err = disk
                    .submit_with_retry(&read(0, 8), SimInstant::EPOCH, policy)
                    .unwrap_err();
                assert_eq!(err, sim_core::SimError::TransientIo(BlockNr(0)));
                let expected = budget.max(1) as u64;
                assert_eq!(
                    handle.trials(FaultSite::DiskTransientIo),
                    expected,
                    "budget {budget}: wrong submission count"
                );
                // N submissions ⇒ at most N−1 backoffs charged.
                let worst = policy.worst_case_backoff();
                let mut expected_backoff = SimDuration::ZERO;
                for a in 0..expected.saturating_sub(1) as u32 {
                    expected_backoff += policy.backoff_after(a);
                }
                assert_eq!(worst, expected_backoff, "budget {budget}");
                // Pinned absolute totals: geometric sum of 500 µs
                // doublings, 0.5 × (2^(N−1) − 1) ms, none near the
                // default 100 ms per-backoff clamp.
                let pinned_us = [0u64, 0, 500, 3_500, 31_500];
                let i = [0u32, 1, 2, 4, 7]
                    .iter()
                    .position(|&b| b == budget)
                    .unwrap();
                assert_eq!(
                    worst,
                    SimDuration::from_micros(pinned_us[i]),
                    "budget {budget}: worst-case total drifted"
                );
            }
        }

        #[test]
        fn quiet_plan_is_byte_identical_to_unfaulted() {
            let (mut armed, handle) = disk_with(FaultPlan::quiet(), 3);
            let mut clean = Disk::new(Box::new(HddModel::sas_10k(1 << 20)));
            let mut t = SimInstant::EPOCH;
            for i in 0..32 {
                let req = read(i * 1000, 8);
                assert_eq!(armed.try_submit(&req, t).unwrap(), clean.submit(&req, t));
                t = armed.busy_until();
            }
            assert_eq!(handle.total_fired(), 0);
        }
    }
}
