//! Simulated block devices and I/O accounting.
//!
//! The paper's experiments run on an HP ProLiant server with a 300 GB
//! 10K-RPM SAS drive, and §6.5 repeats them on a consumer SSD (Intel 510).
//! This crate models both devices in virtual time:
//!
//! - [`hdd::HddModel`] — seek + rotational latency + transfer, with a
//!   track-buffer fast path for sequential continuation;
//! - [`ssd::SsdModel`] — per-operation overhead + transfer, with random
//!   and sequential behaviour calibrated to the device the paper used;
//! - [`Disk`] — a single-queue device executing requests serially,
//!   tracking busy time and per-class (foreground vs maintenance) I/O
//!   counters. Utilization is reported the way `iostat %util` reports it
//!   (§6.1.2): fraction of elapsed time the device was busy.
//!
//! Scheduling policy (CFQ idle class vs the Deadline scheduler of §6.5)
//! is represented by [`scheduler::SchedulerPolicy`]; the experiments
//! runner consults it to decide *when* maintenance requests may be
//! dispatched, which is exactly how the idle class behaves: idle-priority
//! requests are serviced only after the device has remained idle for a
//! grace period.

pub mod hdd;
pub mod metrics;
pub mod request;
pub mod scheduler;
pub mod ssd;

pub use hdd::HddModel;
pub use metrics::{ClassMetrics, DiskMetrics};
pub use request::{IoClass, IoKind, IoRequest};
pub use scheduler::SchedulerPolicy;
pub use ssd::SsdModel;

use sim_core::{BlockNr, SimDuration, SimInstant, PAGE_SIZE};

/// A device model computes the service time of one request, given its
/// own internal state (e.g. head position).
pub trait DeviceModel {
    /// Service time for `req`, updating internal state (head position,
    /// last-access block) as a side effect.
    fn service_time(&mut self, req: &IoRequest) -> SimDuration;

    /// Device capacity in blocks.
    fn capacity_blocks(&self) -> u64;

    /// Human-readable model name for reports.
    fn name(&self) -> &'static str;
}

/// A single-queue simulated block device.
///
/// Requests execute serially in submission order. [`Disk::submit`]
/// returns the completion time; the caller (the experiment runner)
/// advances the simulation clock. Busy intervals and per-class I/O
/// volumes are recorded in [`DiskMetrics`].
///
/// # Examples
///
/// ```
/// use sim_core::{BlockNr, SimInstant};
/// use sim_disk::{Disk, HddModel, IoClass, IoKind, IoRequest};
///
/// let mut disk = Disk::new(Box::new(HddModel::sas_10k(1 << 20)));
/// let req = IoRequest::new(IoKind::Read, BlockNr(0), 16, IoClass::Normal);
/// let done = disk.submit(&req, SimInstant::EPOCH);
/// assert!(done > SimInstant::EPOCH);
/// ```
pub struct Disk {
    model: Box<dyn DeviceModel>,
    busy_until: SimInstant,
    metrics: DiskMetrics,
}

impl Disk {
    /// Creates a disk with the given device model.
    pub fn new(model: Box<dyn DeviceModel>) -> Self {
        Disk {
            model,
            busy_until: SimInstant::EPOCH,
            metrics: DiskMetrics::default(),
        }
    }

    /// Device capacity in blocks.
    pub fn capacity_blocks(&self) -> u64 {
        self.model.capacity_blocks()
    }

    /// Device capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.model.capacity_blocks() * PAGE_SIZE
    }

    /// Model name for reports.
    pub fn model_name(&self) -> &'static str {
        self.model.name()
    }

    /// Submits a request at time `now` and returns its completion time.
    ///
    /// If the device is still busy with an earlier request, service
    /// starts when it frees up (FIFO). Busy time is attributed to the
    /// request's [`IoClass`].
    ///
    /// # Panics
    ///
    /// Panics if the request runs past the end of the device; filesystem
    /// layers validate ranges before submitting.
    pub fn submit(&mut self, req: &IoRequest, now: SimInstant) -> SimInstant {
        assert!(
            req.start.raw() + req.nblocks <= self.model.capacity_blocks(),
            "I/O past end of device: {:?}",
            req
        );
        let start = self.busy_until.max(now);
        let service = self.model.service_time(req);
        let finish = start + service;
        self.busy_until = finish;
        self.metrics.record(req, service);
        finish
    }

    /// The time at which the device next becomes free.
    pub fn busy_until(&self) -> SimInstant {
        self.busy_until
    }

    /// Returns true if the device is free at `t`.
    pub fn is_idle_at(&self, t: SimInstant) -> bool {
        self.busy_until <= t
    }

    /// Accumulated metrics.
    pub fn metrics(&self) -> &DiskMetrics {
        &self.metrics
    }

    /// Resets metrics (e.g. after a calibration phase) without touching
    /// device state.
    pub fn reset_metrics(&mut self) {
        self.metrics = DiskMetrics::default();
    }

    /// Foreground (`Normal`-class) device utilization over `elapsed`:
    /// the `%util` statistic of §6.1.2.
    pub fn foreground_utilization(&self, elapsed: SimDuration) -> f64 {
        if elapsed.is_zero() {
            0.0
        } else {
            self.metrics.normal.busy_time.as_secs_f64() / elapsed.as_secs_f64()
        }
    }
}

/// Convenience: total blocks needed for a byte count.
pub fn blocks_for_bytes(bytes: u64) -> u64 {
    bytes.div_ceil(PAGE_SIZE)
}

/// Convenience: block number after the last block of a request.
pub fn request_end(start: BlockNr, nblocks: u64) -> BlockNr {
    BlockNr(start.raw() + nblocks)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn read(start: u64, n: u64) -> IoRequest {
        IoRequest::new(IoKind::Read, BlockNr(start), n, IoClass::Normal)
    }

    #[test]
    fn fifo_serialization() {
        let mut disk = Disk::new(Box::new(HddModel::sas_10k(1 << 20)));
        let t0 = SimInstant::EPOCH;
        let f1 = disk.submit(&read(0, 8), t0);
        // Submitted while busy: starts after f1.
        let f2 = disk.submit(&read(100_000, 8), t0);
        assert!(f2 > f1);
        // Submitted after the device is free: starts immediately.
        let later = f2 + SimDuration::from_millis(50);
        let f3 = disk.submit(&read(200_000, 8), later);
        assert!(f3 > later);
        assert_eq!(disk.busy_until(), f3);
    }

    #[test]
    fn utilization_accounting() {
        let mut disk = Disk::new(Box::new(HddModel::sas_10k(1 << 20)));
        let t0 = SimInstant::EPOCH;
        let f1 = disk.submit(&read(0, 256), t0);
        let busy = f1.duration_since(t0);
        let elapsed = busy * 2;
        let util = disk.foreground_utilization(elapsed);
        assert!((util - 0.5).abs() < 1e-9, "util {util}");
        // Idle-class I/O does not count toward foreground utilization.
        let idle_req = IoRequest::new(IoKind::Read, BlockNr(0), 256, IoClass::Idle);
        disk.submit(&idle_req, f1);
        assert!((disk.foreground_utilization(elapsed) - 0.5).abs() < 1e-9);
        assert!(disk.metrics().idle.busy_time > SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "past end of device")]
    fn out_of_range_panics() {
        let mut disk = Disk::new(Box::new(HddModel::sas_10k(100)));
        disk.submit(&read(99, 2), SimInstant::EPOCH);
    }

    #[test]
    fn helpers() {
        assert_eq!(blocks_for_bytes(1), 1);
        assert_eq!(blocks_for_bytes(PAGE_SIZE * 3), 3);
        assert_eq!(request_end(BlockNr(10), 5), BlockNr(15));
    }
}
