//! Hard-disk service-time model.
//!
//! The model charges each request a seek, a rotational latency and a
//! transfer time, with two refinements that matter for the paper's
//! results:
//!
//! - **Sequential continuation is free of positioning costs.** A request
//!   that starts exactly where the previous one ended streams from the
//!   media (or the track buffer) at the sequential transfer rate. This
//!   is what makes the scrubber's sequential scan much cheaper per byte
//!   than the backup tool's random per-file reads (§6.2).
//! - **Seek time grows with the square root of distance**, the standard
//!   first-order approximation of arm acceleration, between a minimum
//!   (track-to-track) and a maximum (full-stroke) seek.
//!
//! The default parameters ([`HddModel::sas_10k`]) are calibrated to the
//! behaviour the paper reports for its enterprise 10K-RPM SAS drive:
//! roughly 21 MB/s for 64 KiB random reads (§6.5) and ~150 MB/s
//! sequential streaming. We model effective positioning costs (as seen
//! under CFQ's sorting/merging) rather than raw datasheet figures, which
//! is why the seek constants are smaller than a datasheet average seek.

use crate::request::IoRequest;
use crate::{DeviceModel, ServiceParts};
use sim_core::{BlockNr, SimDuration, PAGE_SIZE};

/// Seek + rotation + transfer hard-disk model.
#[derive(Debug, Clone)]
pub struct HddModel {
    capacity_blocks: u64,
    /// Track-to-track seek.
    seek_min: SimDuration,
    /// Additional full-stroke seek cost beyond `seek_min`.
    seek_full_extra: SimDuration,
    /// Average rotational latency charged to non-sequential requests.
    rotational: SimDuration,
    /// Sequential media transfer rate, bytes per second.
    transfer_bps: f64,
    /// Where the head is parked after the previous request.
    head: BlockNr,
    /// End of the previous request, for sequential detection.
    prev_end: Option<BlockNr>,
}

impl HddModel {
    /// An enterprise 10K-RPM SAS drive calibrated to the paper's device
    /// (see module docs).
    pub fn sas_10k(capacity_blocks: u64) -> Self {
        HddModel {
            capacity_blocks,
            seek_min: SimDuration::from_micros(300),
            seek_full_extra: SimDuration::from_micros(2400),
            rotational: SimDuration::from_micros(1000),
            transfer_bps: 150.0e6,
            head: BlockNr(0),
            prev_end: None,
        }
    }

    /// Fully parameterized constructor for sensitivity studies.
    pub fn with_params(
        capacity_blocks: u64,
        seek_min: SimDuration,
        seek_full_extra: SimDuration,
        rotational: SimDuration,
        transfer_bps: f64,
    ) -> Self {
        assert!(transfer_bps > 0.0, "transfer rate must be positive");
        HddModel {
            capacity_blocks,
            seek_min,
            seek_full_extra,
            rotational,
            transfer_bps,
            head: BlockNr(0),
            prev_end: None,
        }
    }

    fn seek_time(&self, from: BlockNr, to: BlockNr) -> SimDuration {
        let dist = from.distance(to);
        if dist == 0 {
            return SimDuration::ZERO;
        }
        let frac = (dist as f64 / self.capacity_blocks as f64).min(1.0);
        self.seek_min + self.seek_full_extra.mul_f64(frac.sqrt())
    }

    fn transfer_time(&self, nblocks: u64) -> SimDuration {
        SimDuration::from_secs_f64(nblocks as f64 * PAGE_SIZE as f64 / self.transfer_bps)
    }
}

impl DeviceModel for HddModel {
    fn service_parts(&mut self, req: &IoRequest) -> ServiceParts {
        let sequential = self.prev_end == Some(req.start);
        let (seek, rotation) = if sequential {
            (SimDuration::ZERO, SimDuration::ZERO)
        } else {
            (self.seek_time(self.head, req.start), self.rotational)
        };
        let parts = ServiceParts {
            seek,
            rotation,
            transfer: self.transfer_time(req.nblocks),
        };
        self.head = req.end();
        self.prev_end = Some(req.end());
        parts
    }

    fn capacity_blocks(&self) -> u64 {
        self.capacity_blocks
    }

    fn name(&self) -> &'static str {
        "hdd-sas-10k"
    }

    fn clone_box(&self) -> Box<dyn DeviceModel> {
        Box::new(self.clone())
    }

    fn digest_model(&self, d: &mut sim_core::snapshot::Digest) {
        d.write_str(self.name());
        d.write_u64(self.capacity_blocks);
        d.write_u64(self.seek_min.as_nanos());
        d.write_u64(self.seek_full_extra.as_nanos());
        d.write_u64(self.rotational.as_nanos());
        d.write_f64(self.transfer_bps);
        d.write_u64(self.head.raw());
        d.write_bool(self.prev_end.is_some());
        d.write_u64(self.prev_end.map_or(0, BlockNr::raw));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{IoClass, IoKind};

    const CAP: u64 = 73 << 20; // ~300 GB in 4 KiB blocks.

    fn read(start: u64, n: u64) -> IoRequest {
        IoRequest::new(IoKind::Read, BlockNr(start), n, IoClass::Normal)
    }

    /// Throughput in MB/s achieved by a request pattern.
    fn throughput(model: &mut HddModel, reqs: &[IoRequest]) -> f64 {
        let total: SimDuration = reqs.iter().map(|r| model.service_time(r)).sum();
        let bytes: u64 = reqs.iter().map(|r| r.bytes()).sum();
        bytes as f64 / total.as_secs_f64() / 1e6
    }

    #[test]
    fn sequential_streaming_near_media_rate() {
        let mut m = HddModel::sas_10k(CAP);
        let reqs: Vec<IoRequest> = (0..100).map(|i| read(i * 256, 256)).collect();
        let mbps = throughput(&mut m, &reqs);
        // First request pays a seek; the rest stream.
        assert!(mbps > 130.0, "sequential {mbps} MB/s");
    }

    #[test]
    fn random_64k_calibrated_to_paper() {
        let mut m = HddModel::sas_10k(CAP);
        // 64 KiB random reads scattered across the device.
        let reqs: Vec<IoRequest> = (0..200u64)
            .map(|i| read((i * 7_919_993) % (CAP - 16), 16))
            .collect();
        let mbps = throughput(&mut m, &reqs);
        // The paper cites ~21 MB/s (§6.5); accept a generous band.
        assert!((15.0..30.0).contains(&mbps), "64K random {mbps} MB/s");
    }

    #[test]
    fn random_much_slower_than_sequential() {
        let mut seq = HddModel::sas_10k(CAP);
        let mut rnd = HddModel::sas_10k(CAP);
        let seq_reqs: Vec<IoRequest> = (0..100).map(|i| read(i * 16, 16)).collect();
        let rnd_reqs: Vec<IoRequest> = (0..100u64)
            .map(|i| read((i * 104_729_123) % (CAP - 16), 16))
            .collect();
        let s = throughput(&mut seq, &seq_reqs);
        let r = throughput(&mut rnd, &rnd_reqs);
        assert!(s / r > 4.0, "seq {s} vs random {r}");
    }

    #[test]
    fn seek_grows_with_distance() {
        let m = HddModel::sas_10k(CAP);
        let near = m.seek_time(BlockNr(0), BlockNr(1000));
        let far = m.seek_time(BlockNr(0), BlockNr(CAP - 1));
        assert!(far > near);
        assert!(near >= m.seek_min);
        assert_eq!(m.seek_time(BlockNr(5), BlockNr(5)), SimDuration::ZERO);
    }

    #[test]
    fn with_params_overrides_apply() {
        let mut slow = HddModel::with_params(
            CAP,
            SimDuration::from_millis(5),
            SimDuration::from_millis(20),
            SimDuration::from_millis(5),
            10.0e6,
        );
        let mut fast = HddModel::sas_10k(CAP);
        let r = read(CAP / 2, 16);
        assert!(slow.service_time(&r) > fast.service_time(&r));
    }

    #[test]
    fn writes_and_reads_cost_the_same() {
        let mut a = HddModel::sas_10k(CAP);
        let mut b = HddModel::sas_10k(CAP);
        let r = read(12345, 8);
        let w = IoRequest::new(IoKind::Write, BlockNr(12345), 8, IoClass::Normal);
        assert_eq!(a.service_time(&r), b.service_time(&w));
    }
}
