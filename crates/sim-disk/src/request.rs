//! I/O request types.

use sim_core::{BlockNr, PAGE_SIZE};

/// Direction of an I/O request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IoKind {
    /// Transfer from device to memory.
    Read,
    /// Transfer from memory to device.
    Write,
}

impl IoKind {
    /// Stable lowercase name, used in trace events.
    pub fn label(self) -> &'static str {
        match self {
            IoKind::Read => "read",
            IoKind::Write => "write",
        }
    }
}

/// Scheduling class of a request.
///
/// Mirrors the two CFQ classes the paper uses (§6.1.3): foreground
/// workload I/O runs at `Normal` (best-effort) priority, while in-kernel
/// maintenance tasks issue their requests at `Idle` priority, "serviced
/// only after the device has remained idle for some time".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IoClass {
    /// Foreground / best-effort I/O.
    Normal,
    /// Background maintenance I/O (CFQ idle class).
    Idle,
}

impl IoClass {
    /// Stable lowercase name, used in trace events.
    pub fn label(self) -> &'static str {
        match self {
            IoClass::Normal => "normal",
            IoClass::Idle => "idle",
        }
    }
}

/// A contiguous block-range I/O request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IoRequest {
    /// Direction.
    pub kind: IoKind,
    /// First block.
    pub start: BlockNr,
    /// Number of blocks (must be > 0).
    pub nblocks: u64,
    /// Scheduling class.
    pub class: IoClass,
}

impl IoRequest {
    /// Creates a request.
    ///
    /// # Panics
    ///
    /// Panics if `nblocks` is zero.
    pub fn new(kind: IoKind, start: BlockNr, nblocks: u64, class: IoClass) -> Self {
        assert!(nblocks > 0, "zero-length I/O request");
        IoRequest {
            kind,
            start,
            nblocks,
            class,
        }
    }

    /// Request size in bytes.
    pub fn bytes(&self) -> u64 {
        self.nblocks * PAGE_SIZE
    }

    /// Block number one past the end of the request.
    pub fn end(&self) -> BlockNr {
        BlockNr(self.start.raw() + self.nblocks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_geometry() {
        let r = IoRequest::new(IoKind::Write, BlockNr(10), 4, IoClass::Idle);
        assert_eq!(r.bytes(), 4 * PAGE_SIZE);
        assert_eq!(r.end(), BlockNr(14));
    }

    #[test]
    #[should_panic(expected = "zero-length")]
    fn zero_length_rejected() {
        let _ = IoRequest::new(IoKind::Read, BlockNr(0), 0, IoClass::Normal);
    }
}
