//! Per-class I/O accounting.

use crate::request::{IoClass, IoKind, IoRequest};
use sim_core::SimDuration;

/// Counters for one scheduling class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClassMetrics {
    /// Completed read requests.
    pub read_ops: u64,
    /// Completed write requests.
    pub write_ops: u64,
    /// Blocks read.
    pub blocks_read: u64,
    /// Blocks written.
    pub blocks_written: u64,
    /// Total device busy time attributed to this class.
    pub busy_time: SimDuration,
}

impl ClassMetrics {
    /// Total requests.
    pub fn ops(&self) -> u64 {
        self.read_ops + self.write_ops
    }

    /// Total blocks transferred.
    pub fn blocks(&self) -> u64 {
        self.blocks_read + self.blocks_written
    }
}

/// Device-wide metrics, split by scheduling class.
///
/// The evaluation uses these to compute the paper's metrics (Table 4):
/// maintenance I/O performed (the `Idle` class) and foreground
/// utilization (busy time of the `Normal` class over elapsed time).
#[derive(Debug, Clone, Copy, Default)]
pub struct DiskMetrics {
    /// Foreground workload I/O.
    pub normal: ClassMetrics,
    /// Maintenance I/O.
    pub idle: ClassMetrics,
}

impl DiskMetrics {
    /// Records a completed request.
    pub fn record(&mut self, req: &IoRequest, service: SimDuration) {
        let class = match req.class {
            IoClass::Normal => &mut self.normal,
            IoClass::Idle => &mut self.idle,
        };
        match req.kind {
            IoKind::Read => {
                class.read_ops += 1;
                class.blocks_read += req.nblocks;
            }
            IoKind::Write => {
                class.write_ops += 1;
                class.blocks_written += req.nblocks;
            }
        }
        class.busy_time += service;
    }

    /// Total busy time across classes.
    pub fn total_busy(&self) -> SimDuration {
        self.normal.busy_time + self.idle.busy_time
    }

    /// Total blocks transferred across classes.
    pub fn total_blocks(&self) -> u64 {
        self.normal.blocks() + self.idle.blocks()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::BlockNr;

    #[test]
    fn records_by_class_and_kind() {
        let mut m = DiskMetrics::default();
        m.record(
            &IoRequest::new(IoKind::Read, BlockNr(0), 4, IoClass::Normal),
            SimDuration::from_millis(1),
        );
        m.record(
            &IoRequest::new(IoKind::Write, BlockNr(0), 2, IoClass::Idle),
            SimDuration::from_millis(2),
        );
        assert_eq!(m.normal.read_ops, 1);
        assert_eq!(m.normal.blocks_read, 4);
        assert_eq!(m.normal.write_ops, 0);
        assert_eq!(m.idle.write_ops, 1);
        assert_eq!(m.idle.blocks_written, 2);
        assert_eq!(m.total_blocks(), 6);
        assert_eq!(m.total_busy(), SimDuration::from_millis(3));
        assert_eq!(m.normal.ops(), 1);
        assert_eq!(m.idle.blocks(), 2);
    }
}
