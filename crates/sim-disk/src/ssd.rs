//! Solid-state-drive service-time model.
//!
//! §6.5 of the paper repeats the experiments on a consumer Intel 510 SSD
//! and reports two properties that drive the Figure 10 results:
//!
//! 1. Sequential streaming is about twice as fast as the 10K SAS drive,
//!    so the scrubber "completes in half the time";
//! 2. 64 KiB *random* reads run at roughly the same ~21 MB/s as the hard
//!    drive, so "the default backup time is similar on the hard drive
//!    and the SSD".
//!
//! [`SsdModel::intel_510`] is calibrated to those observed behaviours
//! (per-op overhead for non-contiguous requests + 300 MB/s streaming)
//! rather than to datasheet numbers; the substitution is recorded in
//! DESIGN.md.

use crate::request::{IoKind, IoRequest};
use crate::{DeviceModel, ServiceParts};
use sim_core::{BlockNr, SimDuration, PAGE_SIZE};

/// Per-operation-overhead SSD model.
#[derive(Debug, Clone)]
pub struct SsdModel {
    capacity_blocks: u64,
    /// Overhead charged to a read that does not continue the previous
    /// request.
    random_read_overhead: SimDuration,
    /// Overhead charged to a non-contiguous write (flash programming).
    random_write_overhead: SimDuration,
    /// Streaming transfer rate, bytes per second.
    transfer_bps: f64,
    prev_end: Option<BlockNr>,
}

impl SsdModel {
    /// The consumer SSD of §6.5, calibrated to the paper's observations
    /// (see module docs).
    pub fn intel_510(capacity_blocks: u64) -> Self {
        SsdModel {
            capacity_blocks,
            random_read_overhead: SimDuration::from_micros(2800),
            random_write_overhead: SimDuration::from_micros(900),
            transfer_bps: 300.0e6,
            prev_end: None,
        }
    }

    /// Fully parameterized constructor for sensitivity studies.
    pub fn with_params(
        capacity_blocks: u64,
        random_read_overhead: SimDuration,
        random_write_overhead: SimDuration,
        transfer_bps: f64,
    ) -> Self {
        assert!(transfer_bps > 0.0, "transfer rate must be positive");
        SsdModel {
            capacity_blocks,
            random_read_overhead,
            random_write_overhead,
            transfer_bps,
            prev_end: None,
        }
    }

    fn transfer_time(&self, nblocks: u64) -> SimDuration {
        SimDuration::from_secs_f64(nblocks as f64 * PAGE_SIZE as f64 / self.transfer_bps)
    }
}

impl DeviceModel for SsdModel {
    fn service_parts(&mut self, req: &IoRequest) -> ServiceParts {
        let sequential = self.prev_end == Some(req.start);
        // The per-op overhead occupies the "seek" slot of the breakdown;
        // an SSD has no rotational component.
        let overhead = if sequential {
            SimDuration::ZERO
        } else {
            match req.kind {
                IoKind::Read => self.random_read_overhead,
                IoKind::Write => self.random_write_overhead,
            }
        };
        self.prev_end = Some(req.end());
        ServiceParts {
            seek: overhead,
            rotation: SimDuration::ZERO,
            transfer: self.transfer_time(req.nblocks),
        }
    }

    fn capacity_blocks(&self) -> u64 {
        self.capacity_blocks
    }

    fn name(&self) -> &'static str {
        "ssd-intel-510"
    }

    fn clone_box(&self) -> Box<dyn DeviceModel> {
        Box::new(self.clone())
    }

    fn digest_model(&self, d: &mut sim_core::snapshot::Digest) {
        d.write_str(self.name());
        d.write_u64(self.capacity_blocks);
        d.write_u64(self.random_read_overhead.as_nanos());
        d.write_u64(self.random_write_overhead.as_nanos());
        d.write_f64(self.transfer_bps);
        d.write_bool(self.prev_end.is_some());
        d.write_u64(self.prev_end.map_or(0, BlockNr::raw));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::IoClass;

    const CAP: u64 = 29 << 20; // ~120 GB in 4 KiB blocks.

    fn req(kind: IoKind, start: u64, n: u64) -> IoRequest {
        IoRequest::new(kind, BlockNr(start), n, IoClass::Normal)
    }

    fn throughput(model: &mut SsdModel, reqs: &[IoRequest]) -> f64 {
        let total: SimDuration = reqs.iter().map(|r| model.service_time(r)).sum();
        let bytes: u64 = reqs.iter().map(|r| r.bytes()).sum();
        bytes as f64 / total.as_secs_f64() / 1e6
    }

    #[test]
    fn sequential_read_near_streaming_rate() {
        let mut m = SsdModel::intel_510(CAP);
        let reqs: Vec<IoRequest> = (0..100).map(|i| req(IoKind::Read, i * 256, 256)).collect();
        let mbps = throughput(&mut m, &reqs);
        assert!(mbps > 270.0, "sequential {mbps} MB/s");
    }

    #[test]
    fn random_64k_read_matches_paper_observation() {
        let mut m = SsdModel::intel_510(CAP);
        let reqs: Vec<IoRequest> = (0..200u64)
            .map(|i| req(IoKind::Read, (i * 7_919_993) % (CAP - 16), 16))
            .collect();
        let mbps = throughput(&mut m, &reqs);
        // Should sit near the ~21 MB/s the paper reports for both devices.
        assert!((15.0..30.0).contains(&mbps), "64K random {mbps} MB/s");
    }

    #[test]
    fn sequential_faster_than_hdd_by_about_2x() {
        use crate::hdd::HddModel;
        let mut ssd = SsdModel::intel_510(CAP);
        let mut hdd = HddModel::sas_10k(CAP);
        let reqs: Vec<IoRequest> = (0..100).map(|i| req(IoKind::Read, i * 256, 256)).collect();
        let s = throughput(&mut ssd, &reqs);
        let h = {
            let total: SimDuration = reqs.iter().map(|r| hdd.service_time(r)).sum();
            let bytes: u64 = reqs.iter().map(|r| r.bytes()).sum();
            bytes as f64 / total.as_secs_f64() / 1e6
        };
        let ratio = s / h;
        assert!(
            (1.6..2.6).contains(&ratio),
            "ssd/hdd sequential ratio {ratio}"
        );
    }

    #[test]
    fn with_params_overrides_apply() {
        let mut custom = SsdModel::with_params(
            CAP,
            SimDuration::from_micros(100),
            SimDuration::from_micros(50),
            500.0e6,
        );
        let mut stock = SsdModel::intel_510(CAP);
        let r = req(IoKind::Read, CAP / 2, 16);
        assert!(custom.service_time(&r) < stock.service_time(&r));
    }

    #[test]
    fn random_writes_cheaper_than_random_reads_here() {
        // The Intel 510 calibration gives writes a smaller penalty: the
        // workload's small writes stay fast while the backup's random
        // reads bottleneck, matching §6.5's account.
        let mut a = SsdModel::intel_510(CAP);
        let mut b = SsdModel::intel_510(CAP);
        let r = a.service_time(&req(IoKind::Read, 1_000_000, 16));
        let w = b.service_time(&req(IoKind::Write, 1_000_000, 16));
        assert!(r > w);
    }
}
