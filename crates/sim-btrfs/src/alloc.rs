//! Free-space management for the COW filesystem.
//!
//! A first-fit extent allocator over a map of free ranges. Copy-on-write
//! filesystems fragment because every overwrite allocates fresh space;
//! the allocator reproduces that: when no contiguous run of the
//! requested length exists, [`FreeSpace::alloc`] returns a shorter
//! extent and the caller loops, producing a multi-extent (fragmented)
//! file — exactly the condition the defragmentation task exists to fix
//! (§5.3).

use sim_core::omap::DOrdMap;
use sim_core::{BlockNr, SimError, SimResult};

/// An allocated contiguous run of blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Run {
    /// First block.
    pub start: BlockNr,
    /// Length in blocks.
    pub len: u64,
}

/// First-fit extent allocator.
///
/// The free map is ordered by physical start address: first-fit scans
/// it front to back, and `free_range` coalesces with the neighbouring
/// ranges found by predecessor/successor queries — ordered-map
/// operations, served by [`DOrdMap`] (DESIGN.md §13).
#[derive(Debug, Clone)]
pub struct FreeSpace {
    /// Free ranges: start -> len, non-adjacent (always coalesced).
    free: DOrdMap<u64, u64>,
    free_blocks: u64,
    capacity: u64,
}

impl sim_core::snapshot::StateDigest for FreeSpace {
    fn digest_state(&self, d: &mut sim_core::snapshot::Digest) {
        d.write_u64(self.capacity);
        d.write_u64(self.free_blocks);
        d.write_usize(self.free.len());
        for (&start, &len) in self.free.iter() {
            d.write_u64(start);
            d.write_u64(len);
        }
    }
}

impl FreeSpace {
    /// Creates an allocator with blocks `0..capacity` free.
    pub fn new(capacity: u64) -> Self {
        let mut free = DOrdMap::new();
        if capacity > 0 {
            free.insert(0, capacity);
        }
        FreeSpace {
            free,
            free_blocks: capacity,
            capacity,
        }
    }

    /// Total device capacity in blocks.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Free blocks remaining.
    pub fn free_blocks(&self) -> u64 {
        self.free_blocks
    }

    /// Allocated blocks.
    pub fn allocated_blocks(&self) -> u64 {
        self.capacity - self.free_blocks
    }

    /// Allocates up to `want` contiguous blocks, first-fit. Returns a
    /// run of length `min(want, largest available at the chosen spot)`.
    ///
    /// Returns [`SimError::NoSpace`] when the device is full.
    pub fn alloc(&mut self, want: u64) -> SimResult<Run> {
        assert!(want > 0, "zero-length allocation");
        // First fit: the lowest-addressed range long enough; otherwise
        // the longest range available.
        let mut best: Option<(u64, u64)> = None;
        for (&start, &len) in self.free.iter() {
            if len >= want {
                best = Some((start, len));
                break;
            }
            match best {
                Some((_, blen)) if blen >= len => {}
                _ => best = Some((start, len)),
            }
        }
        let Some((start, len)) = best else {
            return Err(SimError::NoSpace);
        };
        let take = want.min(len);
        self.free.remove(&start);
        if take < len {
            self.free.insert(start + take, len - take);
        }
        self.free_blocks -= take;
        Ok(Run {
            start: BlockNr(start),
            len: take,
        })
    }

    /// Allocates exactly `want` blocks as a list of runs (possibly
    /// several when fragmented). Fails with [`SimError::NoSpace`] if the
    /// device cannot hold them, leaving already-carved runs re-freed.
    pub fn alloc_exact(&mut self, want: u64) -> SimResult<Vec<Run>> {
        assert!(want > 0, "zero-length allocation");
        if want > self.free_blocks {
            return Err(SimError::NoSpace);
        }
        let mut runs = Vec::new();
        let mut remaining = want;
        while remaining > 0 {
            match self.alloc(remaining) {
                Ok(run) => {
                    remaining -= run.len;
                    runs.push(run);
                }
                Err(e) => {
                    for r in runs {
                        self.free_range(r.start, r.len);
                    }
                    return Err(e);
                }
            }
        }
        Ok(runs)
    }

    /// Allocates a contiguous run of exactly `want` blocks, or fails.
    /// Used by defragmentation, which needs one extent.
    pub fn alloc_contiguous(&mut self, want: u64) -> SimResult<Run> {
        assert!(want > 0, "zero-length allocation");
        let found = self
            .free
            .iter()
            .find(|(_, &len)| len >= want)
            .map(|(&s, _)| s);
        let Some(start) = found else {
            return Err(SimError::NoSpace);
        };
        let Some(len) = self.free.remove(&start) else {
            return Err(SimError::NoSpace);
        };
        if want < len {
            self.free.insert(start + want, len - want);
        }
        self.free_blocks -= want;
        Ok(Run {
            start: BlockNr(start),
            len: want,
        })
    }

    /// Returns a range to the free pool, coalescing with neighbours.
    ///
    /// # Panics
    ///
    /// Panics on double-free or out-of-range frees — those are
    /// filesystem accounting bugs.
    pub fn free_range(&mut self, start: BlockNr, len: u64) {
        assert!(len > 0, "zero-length free");
        let s = start.raw();
        assert!(s + len <= self.capacity, "free past end of device");
        // Check overlap with the previous and next free ranges.
        if let Some((&ps, &plen)) = self.free.range(..=s).next_back() {
            assert!(ps + plen <= s, "double free at {start}");
        }
        if let Some((&ns, _)) = self.free.range(s..).next() {
            assert!(s + len <= ns, "double free at {start}");
        }
        let mut new_start = s;
        let mut new_len = len;
        // Coalesce with predecessor.
        if let Some((&ps, &plen)) = self.free.range(..s).next_back() {
            if ps + plen == s {
                self.free.remove(&ps);
                new_start = ps;
                new_len += plen;
            }
        }
        // Coalesce with successor.
        if let Some((&ns, &nlen)) = self.free.range(s + len..).next() {
            if s + len == ns {
                self.free.remove(&ns);
                new_len += nlen;
            }
        }
        self.free.insert(new_start, new_len);
        self.free_blocks += len;
    }

    /// Frees a single block.
    pub fn free_block(&mut self, b: BlockNr) {
        self.free_range(b, 1);
    }

    /// Iterates over allocated ranges in ascending physical order — the
    /// scrubber's "extent key" processing order (Table 3).
    pub fn allocated_ranges(&self) -> Vec<Run> {
        let mut out = Vec::new();
        let mut cursor = 0u64;
        for (&fs, &flen) in self.free.iter() {
            if fs > cursor {
                out.push(Run {
                    start: BlockNr(cursor),
                    len: fs - cursor,
                });
            }
            cursor = fs + flen;
        }
        if cursor < self.capacity {
            out.push(Run {
                start: BlockNr(cursor),
                len: self.capacity - cursor,
            });
        }
        out
    }

    /// Largest contiguous free run, in blocks.
    pub fn largest_free_run(&self) -> u64 {
        self.free.values().copied().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_free_roundtrip() {
        let mut fs = FreeSpace::new(100);
        let r = fs.alloc(10).unwrap();
        assert_eq!(
            r,
            Run {
                start: BlockNr(0),
                len: 10
            }
        );
        assert_eq!(fs.free_blocks(), 90);
        fs.free_range(r.start, r.len);
        assert_eq!(fs.free_blocks(), 100);
        assert_eq!(fs.largest_free_run(), 100, "coalesced back to one run");
    }

    #[test]
    fn alloc_exact_spans_fragments() {
        let mut fs = FreeSpace::new(30);
        let a = fs.alloc(10).unwrap();
        let _b = fs.alloc(10).unwrap();
        let _c = fs.alloc(10).unwrap();
        fs.free_range(a.start, a.len); // free [0,10)
                                       // Free space: [0,10). Allocating 15 must fail...
        assert_eq!(fs.alloc_exact(15), Err(SimError::NoSpace));
        // ...and leave the free pool intact.
        assert_eq!(fs.free_blocks(), 10);
        // Allocating 10 succeeds in one run.
        let runs = fs.alloc_exact(10).unwrap();
        assert_eq!(runs.len(), 1);
    }

    #[test]
    fn alloc_exact_returns_multiple_runs_when_fragmented() {
        let mut fs = FreeSpace::new(30);
        let a = fs.alloc(10).unwrap(); // [0,10)
        let _hold = fs.alloc(10).unwrap(); // [10,20)
        let c = fs.alloc(10).unwrap(); // [20,30)
        fs.free_range(a.start, a.len);
        fs.free_range(c.start, c.len);
        // Free: [0,10) and [20,30): 12 blocks must span both.
        let runs = fs.alloc_exact(12).unwrap();
        assert_eq!(runs.len(), 2);
        let total: u64 = runs.iter().map(|r| r.len).sum();
        assert_eq!(total, 12);
    }

    #[test]
    fn alloc_contiguous_requires_one_run() {
        let mut fs = FreeSpace::new(30);
        let a = fs.alloc(10).unwrap();
        let _hold = fs.alloc(10).unwrap();
        let c = fs.alloc(10).unwrap();
        fs.free_range(a.start, a.len);
        fs.free_range(c.start, c.len);
        assert_eq!(fs.alloc_contiguous(12), Err(SimError::NoSpace));
        let r = fs.alloc_contiguous(10).unwrap();
        assert_eq!(r.len, 10);
    }

    #[test]
    fn allocated_ranges_reflect_holes() {
        let mut fs = FreeSpace::new(30);
        let _a = fs.alloc(10).unwrap(); // [0,10)
        let b = fs.alloc(10).unwrap(); // [10,20)
        let _c = fs.alloc(10).unwrap(); // [20,30)
        fs.free_range(b.start, b.len);
        let ranges = fs.allocated_ranges();
        assert_eq!(
            ranges,
            vec![
                Run {
                    start: BlockNr(0),
                    len: 10
                },
                Run {
                    start: BlockNr(20),
                    len: 10
                },
            ]
        );
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut fs = FreeSpace::new(10);
        let r = fs.alloc(5).unwrap();
        fs.free_range(r.start, r.len);
        fs.free_range(r.start, r.len);
    }

    #[test]
    fn exhaustion() {
        let mut fs = FreeSpace::new(5);
        let _ = fs.alloc_exact(5).unwrap();
        assert_eq!(fs.alloc(1), Err(SimError::NoSpace));
        assert_eq!(fs.allocated_blocks(), 5);
    }

    // Randomized reference test driven by the deterministic `SimRng`
    // (the workspace builds offline, with no proptest dep).
    mod properties {
        use super::*;
        use sim_core::SimRng;

        /// Alloc/free sequences conserve blocks and never produce
        /// overlapping allocations.
        #[test]
        fn conservation() {
            for case in 0..64u64 {
                let mut rng = SimRng::new(0xA110C ^ case);
                let mut fs = FreeSpace::new(256);
                let mut held: Vec<Run> = Vec::new();
                for _ in 0..rng.gen_range(0, 100) {
                    let op = rng.gen_range(0, 2);
                    let n = rng.gen_range(1, 16);
                    if op == 0 {
                        if let Ok(runs) = fs.alloc_exact(n) {
                            held.extend(runs);
                        }
                    } else if let Some(r) = held.pop() {
                        fs.free_range(r.start, r.len);
                    }
                    let held_total: u64 = held.iter().map(|r| r.len).sum();
                    assert_eq!(held_total + fs.free_blocks(), 256);
                    // No two held runs overlap.
                    let mut sorted = held.clone();
                    sorted.sort_by_key(|r| r.start.raw());
                    for w in sorted.windows(2) {
                        assert!(w[0].start.raw() + w[0].len <= w[1].start.raw());
                    }
                    // allocated_ranges is consistent with the counter.
                    let alloc_total: u64 = fs.allocated_ranges().iter().map(|r| r.len).sum();
                    assert_eq!(alloc_total, fs.allocated_blocks());
                }
            }
        }
    }
}
