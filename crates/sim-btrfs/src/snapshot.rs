//! Read-only snapshots with copy-on-write block sharing.
//!
//! "Btrfs is a copy-on-write file system that supports taking fast,
//! file-system snapshots. All data and metadata in the snapshot is
//! shared with the live file system until blocks are updated in the
//! live system." (§5.2). A snapshot here is a frozen copy of the file
//! table (extent maps + sizes + paths); sharing is expressed through the
//! per-block reference counts in
//! [`BlockTable`](crate::blocktable::BlockTable).

use crate::extent::ExtentMap;
use sim_core::InodeNr;
use std::collections::BTreeMap;
use std::fmt;

/// Identifier of a snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SnapshotId(pub u32);

impl fmt::Display for SnapshotId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "snap#{}", self.0)
    }
}

/// A file frozen in a snapshot.
#[derive(Debug, Clone)]
pub struct SnapFile {
    /// Extent map at snapshot time.
    pub extents: ExtentMap,
    /// Size at snapshot time.
    pub size_bytes: u64,
    /// Path at snapshot time (for backup naming).
    pub path: String,
}

impl SnapFile {
    /// Size in whole pages.
    pub fn size_pages(&self) -> u64 {
        sim_core::ids::pages_for_bytes(self.size_bytes)
    }
}

/// A read-only snapshot: the frozen file table.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Snapshot identifier.
    pub id: SnapshotId,
    /// Files at snapshot time, keyed by their (live) inode number.
    pub files: BTreeMap<InodeNr, SnapFile>,
}

impl Snapshot {
    /// Total data pages captured by the snapshot.
    pub fn total_pages(&self) -> u64 {
        self.files.values().map(|f| f.extents.mapped_pages()).sum()
    }
}
