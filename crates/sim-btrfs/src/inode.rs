//! Inodes and the directory tree.
//!
//! A single namespace of files and directories, addressed by inode
//! number or by slash-separated path. The tree supports the operations
//! Duet's relevance machinery depends on (§4.1): resolving an inode to
//! its path (the dcache-style backwards walk), testing whether an inode
//! lies under a registered directory, and rename/move with the
//! associated bookkeeping.

use crate::extent::ExtentMap;
use sim_core::dmap::DMap;
use sim_core::snapshot::StateDigest;
use sim_core::{InodeNr, SimError, SimResult};

/// Whether an inode is a regular file or a directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InodeKind {
    /// Regular file with data extents.
    File,
    /// Directory with named children.
    Dir,
}

/// One file or directory.
#[derive(Debug, Clone)]
pub struct Inode {
    /// Inode number.
    pub ino: InodeNr,
    /// File or directory.
    pub kind: InodeKind,
    /// File size in bytes (0 for directories).
    pub size_bytes: u64,
    /// Data layout (files only; empty for directories).
    pub extents: ExtentMap,
    /// Children by name (directories only). A deterministic hash map:
    /// point lookups are O(1); order-sensitive consumers go through
    /// [`Inode::children_sorted`], which restores the B-tree name order.
    pub children: DMap<String, InodeNr>,
    /// Parent directory (the root is its own parent).
    pub parent: InodeNr,
    /// Name within the parent (empty for the root).
    pub name: String,
}

impl Inode {
    /// File size in whole pages (rounding up).
    pub fn size_pages(&self) -> u64 {
        sim_core::ids::pages_for_bytes(self.size_bytes)
    }

    /// Returns `true` for directories.
    pub fn is_dir(&self) -> bool {
        self.kind == InodeKind::Dir
    }

    /// Name-sorted snapshot of the children — the iteration order the
    /// directory had when `children` was a `BTreeMap`, for consumers
    /// whose traversal order is observable (rsync walks in name order,
    /// Table 3). O(k log k) on the cold path; point lookups stay O(1).
    pub fn children_sorted(&self) -> Vec<(&str, InodeNr)> {
        let mut v: Vec<(&str, InodeNr)> = self
            .children
            .iter()
            .map(|(name, &ino)| (name.as_str(), ino))
            .collect();
        v.sort_unstable_by_key(|&(name, _)| name);
        v
    }
}

/// The inode table and namespace of one filesystem.
///
/// The table itself is a deterministic hash map ([`DMap`]): inode
/// lookups are the hottest namespace operation and need no order. The
/// order-sensitive views are explicit snapshots — [`files_by_inode`]
/// sorts by inode number, [`Inode::children_sorted`] by name — so the
/// migration off `BTreeMap` left every observable order unchanged.
///
/// [`files_by_inode`]: InodeTable::files_by_inode
#[derive(Debug, Clone)]
pub struct InodeTable {
    inodes: DMap<InodeNr, Inode>,
    next: u64,
    root: InodeNr,
}

impl StateDigest for InodeTable {
    fn digest_state(&self, d: &mut sim_core::snapshot::Digest) {
        d.write_u64(self.next);
        d.write_u64(self.root.raw());
        d.write_usize(self.inodes.len());
        // Inode-number order, like `files_by_inode`, so the digest is
        // independent of hash-map iteration order.
        let mut inos: Vec<InodeNr> = self.inodes.keys().copied().collect();
        inos.sort_unstable();
        for ino in inos {
            let Some(inode) = self.inodes.get(&ino) else {
                continue;
            };
            d.write_u64(inode.ino.raw());
            d.write_bool(inode.is_dir());
            d.write_u64(inode.size_bytes);
            inode.extents.digest_state(d);
            d.write_u64(inode.parent.raw());
            d.write_str(&inode.name);
            let children = inode.children_sorted();
            d.write_usize(children.len());
            for (name, child) in children {
                d.write_str(name);
                d.write_u64(child.raw());
            }
        }
    }
}

impl InodeTable {
    /// Creates a table containing only the root directory.
    pub fn new() -> Self {
        let root = InodeNr(1);
        let mut inodes = DMap::new();
        inodes.insert(
            root,
            Inode {
                ino: root,
                kind: InodeKind::Dir,
                size_bytes: 0,
                extents: ExtentMap::new(),
                children: DMap::new(),
                parent: root,
                name: String::new(),
            },
        );
        InodeTable {
            inodes,
            next: 2,
            root,
        }
    }

    /// The root directory's inode.
    pub fn root(&self) -> InodeNr {
        self.root
    }

    /// Number of inodes (including the root).
    pub fn len(&self) -> usize {
        self.inodes.len()
    }

    /// Returns `true` if only the root exists.
    pub fn is_empty(&self) -> bool {
        self.inodes.len() == 1
    }

    /// Looks up an inode.
    pub fn get(&self, ino: InodeNr) -> SimResult<&Inode> {
        self.inodes.get(&ino).ok_or(SimError::NoSuchInode(ino))
    }

    /// Looks up an inode mutably.
    pub fn get_mut(&mut self, ino: InodeNr) -> SimResult<&mut Inode> {
        self.inodes.get_mut(&ino).ok_or(SimError::NoSuchInode(ino))
    }

    /// Returns `true` if the inode exists.
    pub fn exists(&self, ino: InodeNr) -> bool {
        self.inodes.contains_key(&ino)
    }

    fn validate_name(name: &str) -> SimResult<()> {
        if name.is_empty() || name.contains('/') {
            return Err(SimError::InvalidArgument(format!("bad name: {name:?}")));
        }
        Ok(())
    }

    /// Creates a child of `parent`, returning the new inode number.
    pub fn create(&mut self, parent: InodeNr, name: &str, kind: InodeKind) -> SimResult<InodeNr> {
        Self::validate_name(name)?;
        let p = self.get(parent)?;
        if !p.is_dir() {
            return Err(SimError::NotADirectory(name.to_string()));
        }
        if p.children.contains_key(name) {
            return Err(SimError::AlreadyExists(name.to_string()));
        }
        let ino = InodeNr(self.next);
        self.next += 1;
        self.inodes.insert(
            ino,
            Inode {
                ino,
                kind,
                size_bytes: 0,
                extents: ExtentMap::new(),
                children: DMap::new(),
                parent,
                name: name.to_string(),
            },
        );
        self.get_mut(parent)?.children.insert(name.to_string(), ino);
        Ok(ino)
    }

    /// Removes an inode from the namespace. Directories must be empty.
    /// The inode's extents are returned by value so the filesystem can
    /// release its blocks.
    pub fn remove(&mut self, ino: InodeNr) -> SimResult<Inode> {
        if ino == self.root {
            return Err(SimError::InvalidArgument("cannot remove root".into()));
        }
        let node = self.get(ino)?;
        if node.is_dir() && !node.children.is_empty() {
            return Err(SimError::InvalidArgument(format!(
                "directory {ino} not empty"
            )));
        }
        let parent = node.parent;
        let name = node.name.clone();
        self.get_mut(parent)?.children.remove(&name);
        self.inodes.remove(&ino).ok_or(SimError::NoSuchInode(ino))
    }

    /// Moves `ino` under `new_parent` as `new_name`.
    pub fn rename(&mut self, ino: InodeNr, new_parent: InodeNr, new_name: &str) -> SimResult<()> {
        Self::validate_name(new_name)?;
        if ino == self.root {
            return Err(SimError::InvalidArgument("cannot rename root".into()));
        }
        let np = self.get(new_parent)?;
        if !np.is_dir() {
            return Err(SimError::NotADirectory(new_name.to_string()));
        }
        if np.children.contains_key(new_name) {
            return Err(SimError::AlreadyExists(new_name.to_string()));
        }
        // A directory must not be moved under its own subtree.
        if self.get(ino)?.is_dir() && self.is_under(new_parent, ino)? {
            return Err(SimError::InvalidArgument(
                "cannot move directory under itself".into(),
            ));
        }
        let (old_parent, old_name) = {
            let n = self.get(ino)?;
            (n.parent, n.name.clone())
        };
        self.get_mut(old_parent)?.children.remove(&old_name);
        self.get_mut(new_parent)?
            .children
            .insert(new_name.to_string(), ino);
        let n = self.get_mut(ino)?;
        n.parent = new_parent;
        n.name = new_name.to_string();
        Ok(())
    }

    /// Resolves a slash-separated absolute path to an inode.
    pub fn resolve(&self, path: &str) -> SimResult<InodeNr> {
        let mut cur = self.root;
        for comp in path.split('/').filter(|c| !c.is_empty()) {
            let node = self.get(cur)?;
            if !node.is_dir() {
                return Err(SimError::NotADirectory(path.to_string()));
            }
            cur = *node
                .children
                .get(comp)
                .ok_or_else(|| SimError::NoSuchPath(path.to_string()))?;
        }
        Ok(cur)
    }

    /// Returns the absolute path of an inode by walking parents
    /// backwards (the directory-entry-cache walk of §4.1).
    pub fn path_of(&self, ino: InodeNr) -> SimResult<String> {
        let mut parts: Vec<&str> = Vec::new();
        let mut cur = ino;
        while cur != self.root {
            let node = self.get(cur)?;
            parts.push(&node.name);
            cur = node.parent;
        }
        let mut out = String::new();
        for p in parts.iter().rev() {
            out.push('/');
            out.push_str(p);
        }
        if out.is_empty() {
            out.push('/');
        }
        Ok(out)
    }

    /// Returns `true` if `ino` equals `ancestor` or lies in its subtree.
    pub fn is_under(&self, ino: InodeNr, ancestor: InodeNr) -> SimResult<bool> {
        let mut cur = ino;
        loop {
            if cur == ancestor {
                return Ok(true);
            }
            if cur == self.root {
                return Ok(false);
            }
            cur = self.get(cur)?.parent;
        }
    }

    /// All file inodes in ascending inode order — the processing order
    /// of the Btrfs backup tool ("processes files by inode number",
    /// Table 3).
    pub fn files_by_inode(&self) -> Vec<InodeNr> {
        let mut v: Vec<InodeNr> = self
            .inodes
            .values()
            .filter(|n| n.kind == InodeKind::File)
            .map(|n| n.ino)
            .collect();
        v.sort_unstable();
        v
    }

    /// Depth-first pre-order walk of the subtree at `dir`, visiting
    /// children in name order — rsync's traversal order (Table 3).
    /// Returns (inode, is_dir) pairs, excluding `dir` itself.
    pub fn walk_depth_first(&self, dir: InodeNr) -> SimResult<Vec<(InodeNr, bool)>> {
        let node = self.get(dir)?;
        if !node.is_dir() {
            return Err(SimError::NotADirectory(format!("{dir}")));
        }
        let mut out = Vec::new();
        let push_children = |stack: &mut Vec<InodeNr>, n: &Inode| {
            stack.extend(n.children_sorted().into_iter().rev().map(|(_, i)| i));
        };
        let mut stack: Vec<InodeNr> = Vec::new();
        push_children(&mut stack, node);
        while let Some(ino) = stack.pop() {
            let n = self.get(ino)?;
            out.push((ino, n.is_dir()));
            if n.is_dir() {
                push_children(&mut stack, n);
            }
        }
        Ok(out)
    }

    /// Iterates over all inodes in unspecified (deterministic) order.
    pub fn iter(&self) -> impl Iterator<Item = &Inode> + '_ {
        self.inodes.values()
    }
}

impl Default for InodeTable {
    fn default() -> Self {
        InodeTable::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (InodeTable, InodeNr, InodeNr, InodeNr) {
        let mut t = InodeTable::new();
        let dir = t.create(t.root(), "docs", InodeKind::Dir).unwrap();
        let f1 = t.create(dir, "a.txt", InodeKind::File).unwrap();
        let f2 = t.create(t.root(), "b.txt", InodeKind::File).unwrap();
        (t, dir, f1, f2)
    }

    #[test]
    fn create_and_resolve() {
        let (t, dir, f1, _f2) = setup();
        assert_eq!(t.resolve("/docs").unwrap(), dir);
        assert_eq!(t.resolve("/docs/a.txt").unwrap(), f1);
        assert_eq!(t.resolve("/").unwrap(), t.root());
        assert!(matches!(t.resolve("/nope"), Err(SimError::NoSuchPath(_))));
    }

    #[test]
    fn path_of_walks_backwards() {
        let (t, dir, f1, _) = setup();
        assert_eq!(t.path_of(f1).unwrap(), "/docs/a.txt");
        assert_eq!(t.path_of(dir).unwrap(), "/docs");
        assert_eq!(t.path_of(t.root()).unwrap(), "/");
    }

    #[test]
    fn duplicate_names_rejected() {
        let (mut t, dir, _, _) = setup();
        assert!(matches!(
            t.create(dir, "a.txt", InodeKind::File),
            Err(SimError::AlreadyExists(_))
        ));
    }

    #[test]
    fn bad_names_rejected() {
        let (mut t, dir, _, _) = setup();
        assert!(t.create(dir, "", InodeKind::File).is_err());
        assert!(t.create(dir, "x/y", InodeKind::File).is_err());
    }

    #[test]
    fn is_under() {
        let (t, dir, f1, f2) = setup();
        assert!(t.is_under(f1, dir).unwrap());
        assert!(t.is_under(f1, t.root()).unwrap());
        assert!(!t.is_under(f2, dir).unwrap());
        assert!(t.is_under(dir, dir).unwrap());
    }

    #[test]
    fn rename_moves_subtree() {
        let (mut t, dir, f1, _) = setup();
        let other = t.create(t.root(), "other", InodeKind::Dir).unwrap();
        t.rename(dir, other, "moved").unwrap();
        assert_eq!(t.path_of(f1).unwrap(), "/other/moved/a.txt");
        assert!(t.is_under(f1, other).unwrap());
        assert!(matches!(t.resolve("/docs"), Err(SimError::NoSuchPath(_))));
    }

    #[test]
    fn rename_into_own_subtree_rejected() {
        let (mut t, dir, _, _) = setup();
        let sub = t.create(dir, "sub", InodeKind::Dir).unwrap();
        assert!(t.rename(dir, sub, "oops").is_err());
    }

    #[test]
    fn remove_file_and_nonempty_dir() {
        let (mut t, dir, f1, _) = setup();
        assert!(t.remove(dir).is_err(), "non-empty dir");
        t.remove(f1).unwrap();
        t.remove(dir).unwrap();
        assert!(!t.exists(f1));
        assert!(matches!(t.get(dir), Err(SimError::NoSuchInode(_))));
    }

    #[test]
    fn files_by_inode_sorted() {
        let (t, _, f1, f2) = setup();
        let files = t.files_by_inode();
        assert_eq!(files, vec![f1, f2]);
    }

    #[test]
    fn depth_first_walk_order() {
        let mut t = InodeTable::new();
        let a = t.create(t.root(), "a", InodeKind::Dir).unwrap();
        let a1 = t.create(a, "1.txt", InodeKind::File).unwrap();
        let a2 = t.create(a, "2.txt", InodeKind::File).unwrap();
        let b = t.create(t.root(), "b.txt", InodeKind::File).unwrap();
        let walk = t.walk_depth_first(t.root()).unwrap();
        let inos: Vec<InodeNr> = walk.iter().map(|(i, _)| *i).collect();
        assert_eq!(
            inos,
            vec![a, a1, a2, b],
            "pre-order, children before siblings"
        );
    }

    #[test]
    fn walk_on_file_is_error() {
        let (t, _, f1, _) = setup();
        assert!(t.walk_depth_first(f1).is_err());
    }

    /// `children_sorted` is the key-sorted snapshot the `DMap`
    /// migration promised: creation order and rename history must be
    /// unobservable — only the current names matter.
    #[test]
    fn children_sorted_is_name_ordered_whatever_the_history() {
        let mut t = InodeTable::new();
        let dir = t.create(t.root(), "d", InodeKind::Dir).unwrap();
        // Created deliberately out of name order.
        let z = t.create(dir, "zeta", InodeKind::File).unwrap();
        let a = t.create(dir, "alpha", InodeKind::File).unwrap();
        let m = t.create(dir, "mid", InodeKind::File).unwrap();
        let names = |t: &InodeTable| -> Vec<(String, InodeNr)> {
            t.get(dir)
                .unwrap()
                .children_sorted()
                .into_iter()
                .map(|(n, i)| (n.to_string(), i))
                .collect()
        };
        assert_eq!(
            names(&t),
            vec![
                ("alpha".to_string(), a),
                ("mid".to_string(), m),
                ("zeta".to_string(), z)
            ]
        );
        // A rename re-slots the entry under its new name.
        t.rename(z, dir, "beta").unwrap();
        assert_eq!(
            names(&t),
            vec![
                ("alpha".to_string(), a),
                ("beta".to_string(), z),
                ("mid".to_string(), m)
            ]
        );
        // And the rsync-order walk follows the new name order too.
        let walk = t.walk_depth_first(dir).unwrap();
        let inos: Vec<InodeNr> = walk.iter().map(|(i, _)| *i).collect();
        assert_eq!(inos, vec![a, z, m]);
    }

    /// Rename across directories: the entry leaves the old parent's
    /// sorted view and appears in the new parent's at its name slot.
    #[test]
    fn rename_across_dirs_updates_both_sorted_views() {
        let (mut t, dir, f1, _) = setup();
        let other = t.create(t.root(), "other", InodeKind::Dir).unwrap();
        t.rename(f1, other, "zz.txt").unwrap();
        assert!(t.get(dir).unwrap().children_sorted().is_empty());
        let got = t.get(other).unwrap().children_sorted();
        assert_eq!(got, vec![("zz.txt", f1)]);
    }
}
