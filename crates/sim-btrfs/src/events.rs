//! VFS-level namespace events.
//!
//! Duet detects files being moved into or out of a registered directory
//! "at the VFS layer" (§4.1). The filesystem records namespace changes
//! in a queue; the simulation wiring drains it into the Duet framework
//! alongside the page-cache events.

use sim_core::InodeNr;

/// A namespace change.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsEvent {
    /// A file or directory was created.
    Created {
        /// The new inode.
        ino: InodeNr,
        /// Its parent directory.
        parent: InodeNr,
        /// Whether it is a directory.
        is_dir: bool,
    },
    /// A file was deleted (directories are deleted only when empty).
    Deleted {
        /// The removed inode.
        ino: InodeNr,
        /// Its former parent.
        parent: InodeNr,
    },
    /// A file or directory was moved.
    Renamed {
        /// The moved inode.
        ino: InodeNr,
        /// Parent before the move.
        old_parent: InodeNr,
        /// Parent after the move.
        new_parent: InodeNr,
        /// Whether the moved inode is a directory.
        is_dir: bool,
    },
}
