//! A simulated copy-on-write filesystem modelled on Btrfs.
//!
//! Three of the paper's five maintenance tasks (scrubbing, snapshot
//! backup, defragmentation — §5.1–5.3) run against Btrfs. This crate
//! reproduces the Btrfs semantics they depend on, over the simulated
//! disk and page cache:
//!
//! - per-block **checksums**, verified on every device read and updated
//!   on write ([`blocktable`]);
//! - **copy-on-write** updates: every overwrite allocates fresh blocks,
//!   fragmenting files ([`alloc`], [`extent`]) and breaking snapshot
//!   sharing;
//! - **snapshots** with block-level sharing via reference counts
//!   ([`snapshot`]);
//! - **back-references** from blocks to the file pages they back,
//!   powering both the backup's sharing check and the FIBMAP-style
//!   file-page → block translation Duet uses to bridge file events to
//!   block tasks (§4.2);
//! - a **namespace** with rename events for Duet's registered-directory
//!   tracking ([`inode`], [`events`]).
//!
//! The top-level type is [`BtrfsSim`].

pub mod alloc;
pub mod blocktable;
pub mod duet_glue;
pub mod events;
pub mod extent;
pub mod fs;
pub mod inode;
pub mod snapshot;

pub use alloc::{FreeSpace, Run};
pub use blocktable::{BackRef, BlockTable};
pub use events::FsEvent;
pub use extent::{Extent, ExtentMap};
pub use fs::{BtrfsSim, DefragResult, OpStats};
pub use inode::{Inode, InodeKind, InodeTable};
pub use snapshot::{SnapFile, Snapshot, SnapshotId};

#[cfg(test)]
mod fs_tests;
