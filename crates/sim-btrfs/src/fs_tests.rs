//! Behavioural tests of the full filesystem: COW semantics, snapshot
//! sharing, verify-on-read, defragmentation and event generation.

use crate::events::FsEvent;
use crate::fs::BtrfsSim;
use sim_cache::PageEvent;
use sim_core::{BlockNr, DeviceId, InodeNr, PageIndex, SimError, SimInstant, PAGE_SIZE};
use sim_disk::{Disk, HddModel, IoClass};

const T0: SimInstant = SimInstant::EPOCH;
const NORMAL: IoClass = IoClass::Normal;
const IDLE: IoClass = IoClass::Idle;

fn make_fs(capacity_blocks: u64, cache_pages: usize) -> BtrfsSim {
    let disk = Disk::new(Box::new(HddModel::sas_10k(capacity_blocks)));
    BtrfsSim::new(DeviceId(0), disk, cache_pages)
}

fn page_bytes(n: u64) -> u64 {
    n * PAGE_SIZE
}

#[test]
fn populate_creates_on_disk_data_without_io() {
    let mut fs = make_fs(1024, 64);
    let ino = fs
        .populate_file(fs.root(), "data.bin", page_bytes(10))
        .unwrap();
    assert_eq!(fs.inodes().get(ino).unwrap().size_pages(), 10);
    assert_eq!(fs.allocated_blocks(), 10);
    assert_eq!(fs.disk().metrics().total_blocks(), 0, "population is free");
    assert_eq!(fs.cache().len(), 0, "population does not touch the cache");
    // The data is mapped and fibmap resolves it.
    assert!(fs.fibmap(ino, PageIndex(0)).unwrap().is_some());
    assert!(fs.fibmap(ino, PageIndex(10)).unwrap().is_none());
}

#[test]
fn read_miss_then_hit() {
    let mut fs = make_fs(1024, 64);
    let ino = fs.populate_file(fs.root(), "f", page_bytes(4)).unwrap();
    let s1 = fs.read(ino, 0, page_bytes(4), NORMAL, T0).unwrap();
    assert_eq!(s1.blocks_read, 4);
    assert_eq!(s1.cache_hits, 0);
    assert_eq!(
        s1.read_reqs, 1,
        "contiguous blocks coalesce into one request"
    );
    assert!(s1.finish > T0);
    // Second read: all hits, no I/O.
    let s2 = fs.read(ino, 0, page_bytes(4), NORMAL, s1.finish).unwrap();
    assert_eq!(s2.blocks_read, 0);
    assert_eq!(s2.cache_hits, 4);
    assert_eq!(s2.finish, s1.finish);
}

#[test]
fn read_generates_added_events() {
    let mut fs = make_fs(1024, 64);
    let ino = fs.populate_file(fs.root(), "f", page_bytes(3)).unwrap();
    fs.read(ino, 0, page_bytes(3), NORMAL, T0).unwrap();
    let evs = fs.cache_mut().drain_events();
    let added = evs.iter().filter(|(_, e)| *e == PageEvent::Added).count();
    assert_eq!(added, 3);
    assert!(evs.iter().all(|(m, _)| m.key.ino == ino));
    assert!(evs.iter().all(|(m, _)| m.block.is_some()));
}

#[test]
fn write_is_copy_on_write() {
    let mut fs = make_fs(1024, 64);
    let ino = fs.populate_file(fs.root(), "f", page_bytes(4)).unwrap();
    let b_before = fs.fibmap(ino, PageIndex(1)).unwrap().unwrap();
    fs.write(ino, page_bytes(1), PAGE_SIZE, NORMAL, T0).unwrap();
    let b_after = fs.fibmap(ino, PageIndex(1)).unwrap().unwrap();
    assert_ne!(b_before, b_after, "overwrite allocated a fresh block");
    // Unshared old block is freed.
    assert_eq!(fs.blocks().refcount_of(b_before).unwrap(), 0);
    assert_eq!(fs.allocated_blocks(), 4);
    // Other pages unchanged.
    assert_eq!(fs.inodes().get(ino).unwrap().extents.mapped_pages(), 4);
}

#[test]
fn cow_overwrites_fragment_files() {
    let mut fs = make_fs(4096, 256);
    let ino = fs.populate_file(fs.root(), "f", page_bytes(32)).unwrap();
    assert_eq!(fs.file_extent_count(ino).unwrap(), 1);
    // Scattered small overwrites split the extent map.
    for p in [3u64, 9, 17, 25] {
        fs.write(ino, page_bytes(p), PAGE_SIZE, NORMAL, T0).unwrap();
    }
    assert!(fs.file_extent_count(ino).unwrap() >= 5, "fragmented by COW");
}

#[test]
fn write_leaves_data_dirty_until_flush() {
    let mut fs = make_fs(1024, 64);
    let ino = fs.create_file(fs.root(), "f").unwrap();
    let s = fs.write(ino, 0, page_bytes(2), NORMAL, T0).unwrap();
    assert_eq!(s.blocks_written, 0, "write-back caching: no immediate I/O");
    assert_eq!(fs.dirty_pages(), 2);
    let f = fs.fsync(ino, NORMAL, T0).unwrap();
    assert_eq!(f.blocks_written, 2);
    assert_eq!(fs.dirty_pages(), 0);
    // fsync again is a no-op.
    let f2 = fs.fsync(ino, NORMAL, f.finish).unwrap();
    assert_eq!(f2.blocks_written, 0);
}

#[test]
fn background_writeback_flushes_oldest() {
    let mut fs = make_fs(1024, 64);
    let a = fs.create_file(fs.root(), "a").unwrap();
    let b = fs.create_file(fs.root(), "b").unwrap();
    fs.write(a, 0, page_bytes(2), NORMAL, T0).unwrap();
    fs.write(b, 0, page_bytes(2), NORMAL, T0).unwrap();
    let s = fs.background_writeback(2, IDLE, T0).unwrap();
    assert_eq!(s.blocks_written, 2);
    assert_eq!(fs.dirty_pages(), 2, "only the batch was flushed");
}

#[test]
fn eviction_of_dirty_pages_charges_writes() {
    let mut fs = make_fs(1024, 4); // tiny cache
    let ino = fs.create_file(fs.root(), "f").unwrap();
    // Write 8 pages through a 4-page cache: at least 4 dirty evictions.
    let s = fs.write(ino, 0, page_bytes(8), NORMAL, T0).unwrap();
    assert!(
        s.blocks_written >= 4,
        "dirty evictions wrote {}",
        s.blocks_written
    );
    assert_eq!(fs.cache().len(), 4);
}

#[test]
fn append_extends_file() {
    let mut fs = make_fs(1024, 64);
    let ino = fs.create_file(fs.root(), "log").unwrap();
    fs.append(ino, page_bytes(2), NORMAL, T0).unwrap();
    assert_eq!(fs.inodes().get(ino).unwrap().size_pages(), 2);
    fs.append(ino, PAGE_SIZE, NORMAL, T0).unwrap();
    assert_eq!(fs.inodes().get(ino).unwrap().size_pages(), 3);
}

#[test]
fn verify_on_read_detects_corruption() {
    let mut fs = make_fs(1024, 64);
    let ino = fs.populate_file(fs.root(), "f", page_bytes(2)).unwrap();
    let b = fs.fibmap(ino, PageIndex(0)).unwrap().unwrap();
    fs.inject_corruption(b).unwrap();
    let err = fs.read(ino, 0, PAGE_SIZE, NORMAL, T0).unwrap_err();
    assert_eq!(err, SimError::ChecksumMismatch(b));
    // Scrub-style verify-and-repair fixes it.
    assert!(fs.verify_and_repair(b).unwrap());
    assert!(!fs.verify_and_repair(b).unwrap(), "already repaired");
    fs.read(ino, 0, PAGE_SIZE, NORMAL, T0).unwrap();
}

#[test]
fn snapshot_shares_blocks_until_overwrite() {
    let mut fs = make_fs(1024, 64);
    let ino = fs.populate_file(fs.root(), "f", page_bytes(4)).unwrap();
    let b1 = fs.fibmap(ino, PageIndex(1)).unwrap().unwrap();
    let snap = fs.create_snapshot().unwrap();
    assert_eq!(fs.blocks().refcount_of(b1).unwrap(), 2, "live + snapshot");
    assert!(fs.shared_with_snapshot(snap, ino, PageIndex(1)).unwrap());
    // Overwrite breaks sharing for that page only.
    fs.write(ino, page_bytes(1), PAGE_SIZE, NORMAL, T0).unwrap();
    assert!(!fs.shared_with_snapshot(snap, ino, PageIndex(1)).unwrap());
    assert!(fs.shared_with_snapshot(snap, ino, PageIndex(0)).unwrap());
    // The old block survives (the snapshot still references it).
    assert_eq!(fs.blocks().refcount_of(b1).unwrap(), 1);
    assert_eq!(
        fs.snapshot_block(snap, ino, PageIndex(1)).unwrap(),
        Some(b1)
    );
}

#[test]
fn deleting_file_preserves_snapshot_blocks() {
    let mut fs = make_fs(1024, 64);
    let ino = fs.populate_file(fs.root(), "f", page_bytes(3)).unwrap();
    let b0 = fs.fibmap(ino, PageIndex(0)).unwrap().unwrap();
    let snap = fs.create_snapshot().unwrap();
    fs.delete_file(ino).unwrap();
    assert!(!fs.inodes().exists(ino));
    // Blocks still held by the snapshot.
    assert_eq!(fs.blocks().refcount_of(b0).unwrap(), 1);
    assert_eq!(fs.allocated_blocks(), 3);
    assert_eq!(
        fs.snapshot_block(snap, ino, PageIndex(0)).unwrap(),
        Some(b0)
    );
    // Live page no longer shared (file gone).
    assert!(!fs.shared_with_snapshot(snap, ino, PageIndex(0)).unwrap());
    // Deleting the snapshot frees everything.
    fs.delete_snapshot(snap).unwrap();
    assert_eq!(fs.allocated_blocks(), 0);
}

#[test]
fn snapshot_total_pages() {
    let mut fs = make_fs(1024, 64);
    fs.populate_file(fs.root(), "a", page_bytes(3)).unwrap();
    fs.populate_file(fs.root(), "b", page_bytes(5)).unwrap();
    let snap = fs.create_snapshot().unwrap();
    assert_eq!(fs.snapshot(snap).unwrap().total_pages(), 8);
    assert_eq!(fs.snapshot(snap).unwrap().files.len(), 2);
}

#[test]
fn defrag_merges_extents() {
    let mut fs = make_fs(4096, 256);
    let ino = fs.populate_file(fs.root(), "f", page_bytes(16)).unwrap();
    fs.fragment_file(ino, 4).unwrap();
    let before = fs.file_extent_count(ino).unwrap();
    assert!(before >= 4, "fragment_file produced {before} extents");
    let r = fs.defrag_file(ino, IDLE, T0).unwrap();
    assert_eq!(r.extents_before, before);
    assert_eq!(r.extents_after, 1);
    assert_eq!(r.pages, 16);
    // Cold cache: all pages read, all written.
    assert_eq!(r.stats.blocks_read, 16);
    assert_eq!(r.stats.blocks_written, 16);
    assert_eq!(r.cached_pages, 0);
    assert_eq!(fs.file_extent_count(ino).unwrap(), 1);
    assert_eq!(fs.allocated_blocks(), 16, "old space freed");
}

#[test]
fn defrag_uses_cached_pages() {
    let mut fs = make_fs(4096, 256);
    let ino = fs.populate_file(fs.root(), "f", page_bytes(16)).unwrap();
    fs.fragment_file(ino, 4).unwrap();
    // Warm half the file.
    fs.read(ino, 0, page_bytes(8), NORMAL, T0).unwrap();
    let r = fs.defrag_file(ino, IDLE, T0).unwrap();
    assert_eq!(r.cached_pages, 8);
    assert_eq!(r.stats.blocks_read, 8, "only the cold half was read");
    assert_eq!(r.stats.blocks_written, 16);
}

#[test]
fn defrag_skips_unfragmented() {
    let mut fs = make_fs(1024, 64);
    let ino = fs.populate_file(fs.root(), "f", page_bytes(8)).unwrap();
    let r = fs.defrag_file(ino, IDLE, T0).unwrap();
    assert_eq!(r.stats.total_blocks(), 0);
    assert_eq!(r.extents_before, 1);
}

#[test]
fn fragment_file_scatters_physically() {
    let mut fs = make_fs(4096, 64);
    let ino = fs.populate_file(fs.root(), "f", page_bytes(12)).unwrap();
    fs.fragment_file(ino, 3).unwrap();
    let node = fs.inodes().get(ino).unwrap();
    let extents: Vec<_> = node.extents.iter().copied().collect();
    assert!(extents.len() >= 3);
    // Physically non-adjacent.
    for w in extents.windows(2) {
        assert_ne!(
            w[0].physical.raw() + w[0].len,
            w[1].physical.raw(),
            "extents are physically adjacent; fragmentation failed"
        );
    }
    // All pages still mapped.
    assert_eq!(node.extents.mapped_pages(), 12);
}

#[test]
fn rename_and_fs_events() {
    let mut fs = make_fs(1024, 64);
    let dir = fs.mkdir(fs.root(), "d").unwrap();
    let ino = fs.populate_file(fs.root(), "f", page_bytes(1)).unwrap();
    fs.drain_fs_events();
    fs.rename(ino, dir, "g").unwrap();
    let evs = fs.drain_fs_events();
    assert_eq!(evs.len(), 1);
    match evs[0] {
        FsEvent::Renamed {
            ino: i,
            old_parent,
            new_parent,
            is_dir,
        } => {
            assert_eq!(i, ino);
            assert_eq!(old_parent, fs.root());
            assert_eq!(new_parent, dir);
            assert!(!is_dir);
        }
        other => panic!("unexpected event {other:?}"),
    }
    assert_eq!(fs.path_of(ino).unwrap(), "/d/g");
}

#[test]
fn create_delete_events() {
    let mut fs = make_fs(1024, 64);
    let ino = fs.populate_file(fs.root(), "f", page_bytes(1)).unwrap();
    let evs = fs.drain_fs_events();
    assert!(matches!(evs[0], FsEvent::Created { is_dir: false, .. }));
    fs.delete_file(ino).unwrap();
    let evs = fs.drain_fs_events();
    assert!(matches!(evs[0], FsEvent::Deleted { .. }));
}

#[test]
fn delete_removes_cached_pages() {
    let mut fs = make_fs(1024, 64);
    let ino = fs.populate_file(fs.root(), "f", page_bytes(4)).unwrap();
    fs.read(ino, 0, page_bytes(4), NORMAL, T0).unwrap();
    assert_eq!(fs.cache().len(), 4);
    fs.cache_mut().drain_events();
    fs.delete_file(ino).unwrap();
    assert_eq!(fs.cache().len(), 0);
    let evs = fs.cache_mut().drain_events();
    assert_eq!(
        evs.iter().filter(|(_, e)| *e == PageEvent::Removed).count(),
        4
    );
    assert_eq!(fs.allocated_blocks(), 0);
}

#[test]
fn allocated_ranges_cover_all_data() {
    let mut fs = make_fs(4096, 64);
    fs.populate_file(fs.root(), "a", page_bytes(10)).unwrap();
    fs.populate_file(fs.root(), "b", page_bytes(6)).unwrap();
    let total: u64 = fs.allocated_ranges().iter().map(|r| r.len).sum();
    assert_eq!(total, 16);
    assert_eq!(total, fs.allocated_blocks());
}

#[test]
fn backrefs_follow_cow() {
    let mut fs = make_fs(1024, 64);
    let ino = fs.populate_file(fs.root(), "f", page_bytes(2)).unwrap();
    let b0 = fs.fibmap(ino, PageIndex(0)).unwrap().unwrap();
    let br = fs.backref_of(b0).unwrap().unwrap();
    assert_eq!(br.ino, ino);
    assert_eq!(br.index, PageIndex(0));
    // After COW, the new block carries the backref; the old one none.
    fs.write(ino, 0, PAGE_SIZE, NORMAL, T0).unwrap();
    assert_eq!(fs.backref_of(b0).unwrap(), None);
    let b0_new = fs.fibmap(ino, PageIndex(0)).unwrap().unwrap();
    assert_eq!(fs.backref_of(b0_new).unwrap().unwrap().ino, ino);
}

#[test]
fn read_beyond_eof_is_clamped() {
    let mut fs = make_fs(1024, 64);
    let ino = fs.populate_file(fs.root(), "f", page_bytes(2)).unwrap();
    let s = fs.read(ino, 0, page_bytes(100), NORMAL, T0).unwrap();
    assert_eq!(s.blocks_read, 2);
    let s2 = fs.read(ino, page_bytes(50), PAGE_SIZE, NORMAL, T0).unwrap();
    assert_eq!(s2.total_blocks(), 0);
}

#[test]
fn no_space_reported() {
    let mut fs = make_fs(8, 64);
    let err = fs
        .populate_file(fs.root(), "big", page_bytes(9))
        .unwrap_err();
    assert_eq!(err, SimError::NoSpace);
}

#[test]
fn mean_extents_per_file_reflects_fragmentation() {
    let mut fs = make_fs(4096, 64);
    let a = fs.populate_file(fs.root(), "a", page_bytes(8)).unwrap();
    fs.populate_file(fs.root(), "b", page_bytes(8)).unwrap();
    assert!((fs.mean_extents_per_file() - 1.0).abs() < 1e-9);
    fs.fragment_file(a, 4).unwrap();
    assert!(fs.mean_extents_per_file() > 2.0);
}

#[test]
fn delete_nonexistent_and_dir_errors() {
    let mut fs = make_fs(1024, 64);
    assert!(matches!(
        fs.delete_file(InodeNr(99)),
        Err(SimError::NoSuchInode(_))
    ));
    let d = fs.mkdir(fs.root(), "d").unwrap();
    assert!(matches!(
        fs.delete_file(d),
        Err(SimError::InvalidArgument(_))
    ));
}

#[test]
fn write_to_missing_file_errors() {
    let mut fs = make_fs(1024, 64);
    assert!(matches!(
        fs.write(InodeNr(42), 0, 1, NORMAL, T0),
        Err(SimError::NoSuchInode(_))
    ));
}

#[test]
fn snapshot_block_absent_for_post_snapshot_files() {
    let mut fs = make_fs(1024, 64);
    let snap = fs.create_snapshot().unwrap();
    let ino = fs.populate_file(fs.root(), "new", page_bytes(2)).unwrap();
    assert_eq!(fs.snapshot_block(snap, ino, PageIndex(0)).unwrap(), None);
    assert!(!fs.shared_with_snapshot(snap, ino, PageIndex(0)).unwrap());
}

#[test]
fn fsck_passes_on_healthy_fs_and_catches_corruption() {
    let mut fs = make_fs(1024, 64);
    let ino = fs.populate_file(fs.root(), "f", page_bytes(4)).unwrap();
    fs.read(ino, 0, page_bytes(4), NORMAL, T0).unwrap();
    fs.check_consistency().unwrap();
    // Snapshots and COW keep it consistent.
    let snap = fs.create_snapshot().unwrap();
    fs.write(ino, 0, PAGE_SIZE, NORMAL, T0).unwrap();
    fs.check_consistency().unwrap();
    fs.delete_snapshot(snap).unwrap();
    fs.check_consistency().unwrap();
    // A refcount corruption is detected.
    let b = fs.fibmap(ino, PageIndex(1)).unwrap().unwrap();
    fs.corrupt_refcount_for_test(b);
    let err = fs.check_consistency().unwrap_err();
    assert!(err.to_string().contains("fsck"), "{err}");
}

// Randomized churn test driven by the deterministic `SimRng` (the
// workspace builds offline, with no proptest dep).
mod properties {
    use super::*;
    use sim_core::SimRng;

    #[derive(Debug, Clone, Copy)]
    enum Churn {
        Write { file: u8, page: u8 },
        Append { file: u8 },
        Delete { file: u8 },
        Read { file: u8 },
        Defrag { file: u8 },
        Writeback,
    }

    /// Weighted churn pick mirroring the original generator's 4:2:1:3:1:1
    /// operation mix.
    fn churn_pick(rng: &mut SimRng) -> Churn {
        let file = rng.gen_range(0, 6) as u8;
        match rng.gen_range(0, 12) {
            0..=3 => Churn::Write {
                file,
                page: rng.gen_range(0, 8) as u8,
            },
            4..=5 => Churn::Append { file },
            6 => Churn::Delete { file },
            7..=9 => Churn::Read { file },
            10 => Churn::Defrag { file },
            _ => Churn::Writeback,
        }
    }

    /// Snapshots are immutable: whatever churn the live filesystem
    /// sees — overwrites, appends, deletions, defragmentation —
    /// every (file, page) → block mapping captured at snapshot time
    /// stays intact and its blocks stay allocated, until the
    /// snapshot is deleted; then all space is reclaimed.
    #[test]
    fn snapshot_mappings_survive_arbitrary_churn() {
        for case in 0..48u64 {
            let mut rng = SimRng::new(0x5A95 ^ case);
            let ops: Vec<Churn> = (0..rng.gen_range(1, 80))
                .map(|_| churn_pick(&mut rng))
                .collect();
            {
                let mut fs = make_fs(1 << 14, 256);
                let mut files = Vec::new();
                for i in 0..6u64 {
                    files.push(
                        fs.populate_file(fs.root(), &format!("f{i}"), page_bytes(8))
                            .unwrap(),
                    );
                }
                let snap = fs.create_snapshot().unwrap();
                // Capture the ground truth.
                let mut truth = Vec::new();
                for &ino in &files {
                    for p in 0..8u64 {
                        truth.push((ino, p, fs.snapshot_block(snap, ino, PageIndex(p)).unwrap()));
                    }
                }
                let mut alive: Vec<bool> = vec![true; files.len()];
                for op in ops {
                    match op {
                        Churn::Write { file, page } => {
                            let i = file as usize;
                            if alive[i] {
                                fs.write(files[i], page as u64 * PAGE_SIZE, PAGE_SIZE, NORMAL, T0)
                                    .unwrap();
                            }
                        }
                        Churn::Append { file } => {
                            let i = file as usize;
                            if alive[i] {
                                fs.append(files[i], PAGE_SIZE, NORMAL, T0).unwrap();
                            }
                        }
                        Churn::Delete { file } => {
                            let i = file as usize;
                            if alive[i] {
                                fs.delete_file(files[i]).unwrap();
                                alive[i] = false;
                            }
                        }
                        Churn::Read { file } => {
                            let i = file as usize;
                            if alive[i] {
                                let size = fs.inodes().get(files[i]).unwrap().size_bytes;
                                fs.read(files[i], 0, size, NORMAL, T0).unwrap();
                            }
                        }
                        Churn::Defrag { file } => {
                            let i = file as usize;
                            if alive[i] {
                                fs.defrag_file(files[i], IDLE, T0).unwrap();
                            }
                        }
                        Churn::Writeback => {
                            fs.background_writeback(64, NORMAL, T0).unwrap();
                        }
                    }
                    fs.check_consistency().expect("fsck");
                    // The snapshot view never changes.
                    for &(ino, p, expected) in &truth {
                        assert_eq!(
                            fs.snapshot_block(snap, ino, PageIndex(p)).unwrap(),
                            expected
                        );
                        if let Some(b) = expected {
                            assert!(
                                fs.blocks().refcount_of(b).unwrap() >= 1,
                                "snapshot block freed under churn"
                            );
                        }
                    }
                }
                // Deleting live files and the snapshot reclaims everything.
                for (i, &ino) in files.iter().enumerate() {
                    if alive[i] {
                        fs.delete_file(ino).unwrap();
                    }
                }
                fs.delete_snapshot(snap).unwrap();
                assert_eq!(fs.allocated_blocks(), 0, "space leak");
            }
        }
    }
}

#[test]
fn raw_read_bypasses_cache() {
    let mut fs = make_fs(1024, 64);
    fs.populate_file(fs.root(), "f", page_bytes(4)).unwrap();
    let s = fs.read_raw(BlockNr(0), 4, IDLE, T0).unwrap();
    assert_eq!(s.blocks_read, 4);
    assert_eq!(fs.cache().len(), 0);
    assert_eq!(fs.cache_mut().drain_events().len(), 0);
}

#[test]
fn latent_error_corrupts_written_block_and_surfaces_on_verify() {
    use sim_core::fault::{FaultHandle, FaultPlan, FaultSite};
    let mut fs = make_fs(1024, 64);
    let ino = fs.populate_file(fs.root(), "f", page_bytes(8)).unwrap();
    // Certain latent error on every write run: the dirtied pages land
    // corrupted when written back.
    let plan = FaultPlan::quiet().with_ppm(FaultSite::DiskLatentError, 1_000_000);
    let handle = FaultHandle::new(0x1A7E, plan);
    fs.set_faults(Some(handle.clone()));
    assert_eq!(fs.blocks().corrupted_count(), 0);
    fs.write(ino, 0, page_bytes(2), NORMAL, T0).unwrap();
    fs.fsync(ino, NORMAL, T0).unwrap();
    assert!(handle.fired(FaultSite::DiskLatentError) >= 1);
    assert!(fs.blocks().corrupted_count() >= 1, "bit rot must land");
    // The corruption is silent until something verifies the block; a
    // scrub-style sweep finds and repairs it.
    fs.set_faults(None);
    let corrupted: Vec<BlockNr> = (0..1024)
        .map(BlockNr)
        .filter(|&b| {
            matches!(
                fs.blocks().verify_checksum(b),
                Err(SimError::ChecksumMismatch(_))
            )
        })
        .collect();
    assert!(!corrupted.is_empty());
    for b in corrupted {
        assert!(fs.verify_and_repair(b).unwrap());
    }
    assert_eq!(fs.blocks().corrupted_count(), 0);
}

#[test]
fn quiet_plan_leaves_write_path_byte_identical() {
    // Arming a quiet plan must not perturb anything: same ops, same
    // final state, no fault stream draws recorded as fired.
    use sim_core::fault::{FaultHandle, FaultPlan, FaultSite};
    let run = |armed: bool| {
        let mut fs = make_fs(1024, 64);
        if armed {
            fs.set_faults(Some(FaultHandle::new(7, FaultPlan::quiet())));
        }
        let ino = fs.populate_file(fs.root(), "f", page_bytes(8)).unwrap();
        fs.write(ino, 0, page_bytes(4), NORMAL, T0).unwrap();
        fs.fsync(ino, NORMAL, T0).unwrap();
        let mut state: Vec<(u64, Option<BlockNr>)> = Vec::new();
        for p in 0..8 {
            state.push((
                p,
                fs.inodes().get(ino).unwrap().extents.block_of(PageIndex(p)),
            ));
        }
        state
    };
    assert_eq!(run(false), run(true));
    let mut fs = make_fs(64, 8);
    let handle = FaultHandle::new(7, FaultPlan::quiet());
    fs.set_faults(Some(handle.clone()));
    fs.populate_file(fs.root(), "g", page_bytes(2)).unwrap();
    assert_eq!(handle.fired(FaultSite::DiskLatentError), 0);
}
