//! Per-file extent maps: logical page ranges → physical block runs.
//!
//! A file's data layout is a sorted map of extents. Copy-on-write
//! updates replace sub-ranges with newly allocated runs, splitting
//! whatever extents they overlap; the number of extents in the map is
//! the fragmentation measure the defragmentation task works against
//! (§5.3: "Btrfs allows defragmenting a file by merging small extents
//! with logically adjacent ones").

use crate::alloc::Run;
use sim_core::omap::DOrdMap;
use sim_core::{BlockNr, PageIndex};

/// One extent: `len` pages starting at logical page `logical`, stored at
/// physical blocks `physical .. physical+len`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Extent {
    /// First logical page.
    pub logical: u64,
    /// First physical block.
    pub physical: BlockNr,
    /// Length in pages/blocks.
    pub len: u64,
}

impl Extent {
    /// Physical block backing logical page `page`, if within the extent.
    fn block_of(&self, page: u64) -> Option<BlockNr> {
        if page >= self.logical && page < self.logical + self.len {
            Some(BlockNr(self.physical.raw() + (page - self.logical)))
        } else {
            None
        }
    }
}

/// Sorted extent map of one file.
///
/// Backed by [`DOrdMap`] — the FIBMAP translation is a floor query
/// (`range(..=p).next_back()`) and COW splits walk neighbours, so the
/// map must stay ordered; the chunked-sorted-vector layout keeps those
/// queries O(log n) with dense iteration (DESIGN.md §13).
#[derive(Debug, Clone, Default)]
pub struct ExtentMap {
    /// logical start -> extent.
    map: DOrdMap<u64, Extent>,
}

impl sim_core::snapshot::StateDigest for ExtentMap {
    fn digest_state(&self, d: &mut sim_core::snapshot::Digest) {
        d.write_usize(self.map.len());
        for e in self.map.values() {
            d.write_u64(e.logical);
            d.write_u64(e.physical.raw());
            d.write_u64(e.len);
        }
    }
}

impl ExtentMap {
    /// Creates an empty map.
    pub fn new() -> Self {
        ExtentMap::default()
    }

    /// Number of extents (the fragmentation measure).
    pub fn extent_count(&self) -> usize {
        self.map.len()
    }

    /// Returns `true` if no pages are mapped.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Total mapped pages.
    pub fn mapped_pages(&self) -> u64 {
        self.map.values().map(|e| e.len).sum()
    }

    /// Physical block of a logical page, if mapped. This is the FIBMAP
    /// translation of §4.2.
    pub fn block_of(&self, page: PageIndex) -> Option<BlockNr> {
        let p = page.raw();
        self.map
            .range(..=p)
            .next_back()
            .and_then(|(_, e)| e.block_of(p))
    }

    /// Iterates extents in logical order.
    pub fn iter(&self) -> impl Iterator<Item = &Extent> + '_ {
        self.map.values()
    }

    /// Removes the logical range `[start, start+len)`, returning the
    /// physical blocks that were unmapped (for refcount release).
    /// Overlapping extents are trimmed or split.
    pub fn unmap_range(&mut self, start: u64, len: u64) -> Vec<BlockNr> {
        if len == 0 {
            return Vec::new();
        }
        let end = start + len;
        let mut removed_blocks = Vec::new();
        // Collect keys of extents overlapping [start, end): their
        // logical start is < end, and their end is > start.
        let overlapping: Vec<u64> = self
            .map
            .range(..end)
            .rev()
            .take_while(|(_, e)| e.logical + e.len > start)
            .map(|(&k, _)| k)
            .collect();
        for key in overlapping {
            let Some(e) = self.map.remove(&key) else {
                continue;
            };
            let e_end = e.logical + e.len;
            // Left remainder.
            if e.logical < start {
                self.map.insert(
                    e.logical,
                    Extent {
                        logical: e.logical,
                        physical: e.physical,
                        len: start - e.logical,
                    },
                );
            }
            // Right remainder.
            if e_end > end {
                let skip = end - e.logical;
                self.map.insert(
                    end,
                    Extent {
                        logical: end,
                        physical: BlockNr(e.physical.raw() + skip),
                        len: e_end - end,
                    },
                );
            }
            // Middle: unmapped blocks.
            let cut_from = start.max(e.logical);
            let cut_to = end.min(e_end);
            for p in cut_from..cut_to {
                let off = p - e.logical;
                removed_blocks.push(BlockNr(e.physical.raw() + off));
            }
        }
        removed_blocks
    }

    /// Maps the logical range starting at `start` onto the given
    /// physical runs (their total length determines the range length).
    /// Returns the physical blocks displaced from that range.
    pub fn map_range(&mut self, start: u64, runs: &[Run]) -> Vec<BlockNr> {
        let total: u64 = runs.iter().map(|r| r.len).sum();
        let displaced = self.unmap_range(start, total);
        let mut logical = start;
        for run in runs {
            self.insert_extent(Extent {
                logical,
                physical: run.start,
                len: run.len,
            });
            logical += run.len;
        }
        displaced
    }

    /// Inserts an extent, merging with physically and logically adjacent
    /// neighbours when possible.
    fn insert_extent(&mut self, e: Extent) {
        debug_assert!(e.len > 0);
        let mut e = e;
        // Merge with predecessor if contiguous both logically and
        // physically.
        if let Some((&pk, &prev)) = self.map.range(..e.logical).next_back() {
            if prev.logical + prev.len == e.logical
                && prev.physical.raw() + prev.len == e.physical.raw()
            {
                self.map.remove(&pk);
                e = Extent {
                    logical: prev.logical,
                    physical: prev.physical,
                    len: prev.len + e.len,
                };
            }
        }
        // Merge with successor.
        if let Some((&nk, &next)) = self.map.range(e.logical + e.len..).next() {
            if e.logical + e.len == next.logical && e.physical.raw() + e.len == next.physical.raw()
            {
                self.map.remove(&nk);
                e.len += next.len;
            }
        }
        self.map.insert(e.logical, e);
    }

    /// Removes all extents, returning every mapped physical block.
    pub fn clear(&mut self) -> Vec<BlockNr> {
        let mut blocks = Vec::new();
        for e in self.map.values() {
            for i in 0..e.len {
                blocks.push(BlockNr(e.physical.raw() + i));
            }
        }
        self.map.clear();
        blocks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(start: u64, len: u64) -> Run {
        Run {
            start: BlockNr(start),
            len,
        }
    }

    #[test]
    fn map_and_lookup() {
        let mut m = ExtentMap::new();
        m.map_range(0, &[run(100, 4)]);
        assert_eq!(m.block_of(PageIndex(0)), Some(BlockNr(100)));
        assert_eq!(m.block_of(PageIndex(3)), Some(BlockNr(103)));
        assert_eq!(m.block_of(PageIndex(4)), None);
        assert_eq!(m.extent_count(), 1);
        assert_eq!(m.mapped_pages(), 4);
    }

    #[test]
    fn cow_overwrite_splits_extent() {
        let mut m = ExtentMap::new();
        m.map_range(0, &[run(100, 8)]);
        // Overwrite pages 2..4 with a new run.
        let displaced = m.map_range(2, &[run(200, 2)]);
        assert_eq!(displaced, vec![BlockNr(102), BlockNr(103)]);
        assert_eq!(m.extent_count(), 3, "split into left, new, right");
        assert_eq!(m.block_of(PageIndex(1)), Some(BlockNr(101)));
        assert_eq!(m.block_of(PageIndex(2)), Some(BlockNr(200)));
        assert_eq!(m.block_of(PageIndex(3)), Some(BlockNr(201)));
        assert_eq!(m.block_of(PageIndex(4)), Some(BlockNr(104)));
        assert_eq!(m.mapped_pages(), 8);
    }

    #[test]
    fn overwrite_spanning_multiple_extents() {
        let mut m = ExtentMap::new();
        m.map_range(0, &[run(100, 4)]);
        m.map_range(4, &[run(200, 4)]);
        assert_eq!(m.extent_count(), 2);
        let displaced = m.map_range(2, &[run(300, 4)]);
        // Displaced must be exactly blocks 102,103,200,201 in some order.
        let mut d = displaced.clone();
        d.sort_by_key(|b| b.raw());
        assert_eq!(
            d,
            vec![BlockNr(102), BlockNr(103), BlockNr(200), BlockNr(201)]
        );
        assert_eq!(m.block_of(PageIndex(2)), Some(BlockNr(300)));
        assert_eq!(m.block_of(PageIndex(5)), Some(BlockNr(303)));
        assert_eq!(m.block_of(PageIndex(6)), Some(BlockNr(202)));
    }

    #[test]
    fn adjacent_extents_merge() {
        let mut m = ExtentMap::new();
        m.map_range(0, &[run(100, 4)]);
        m.map_range(4, &[run(104, 4)]); // physically contiguous
        assert_eq!(m.extent_count(), 1, "merged");
        assert_eq!(m.mapped_pages(), 8);
        // Non-contiguous physical: no merge.
        m.map_range(8, &[run(300, 2)]);
        assert_eq!(m.extent_count(), 2);
    }

    #[test]
    fn multiple_runs_in_one_write() {
        let mut m = ExtentMap::new();
        m.map_range(0, &[run(10, 2), run(50, 3)]);
        assert_eq!(m.extent_count(), 2);
        assert_eq!(m.block_of(PageIndex(1)), Some(BlockNr(11)));
        assert_eq!(m.block_of(PageIndex(2)), Some(BlockNr(50)));
        assert_eq!(m.block_of(PageIndex(4)), Some(BlockNr(52)));
    }

    #[test]
    fn unmap_range_partial() {
        let mut m = ExtentMap::new();
        m.map_range(0, &[run(100, 10)]);
        let removed = m.unmap_range(3, 4);
        assert_eq!(removed.len(), 4);
        assert_eq!(m.block_of(PageIndex(2)), Some(BlockNr(102)));
        assert_eq!(m.block_of(PageIndex(3)), None);
        assert_eq!(m.block_of(PageIndex(6)), None);
        assert_eq!(m.block_of(PageIndex(7)), Some(BlockNr(107)));
        assert_eq!(m.mapped_pages(), 6);
    }

    #[test]
    fn clear_returns_all_blocks() {
        let mut m = ExtentMap::new();
        m.map_range(0, &[run(10, 2)]);
        m.map_range(5, &[run(20, 3)]);
        let mut blocks = m.clear();
        blocks.sort_by_key(|b| b.raw());
        assert_eq!(
            blocks,
            vec![
                BlockNr(10),
                BlockNr(11),
                BlockNr(20),
                BlockNr(21),
                BlockNr(22)
            ]
        );
        assert!(m.is_empty());
    }

    // Randomized reference test driven by the deterministic `SimRng`
    // (the workspace builds offline, with no proptest dep).
    mod properties {
        use super::*;
        use sim_core::SimRng;
        use std::collections::BTreeMap;

        /// The extent map agrees with a reference page->block map
        /// under arbitrary write sequences, and every displaced
        /// block was previously mapped in the written range.
        #[test]
        fn matches_reference_map() {
            for case in 0..64u64 {
                let mut rng = SimRng::new(0xE77E ^ case);
                let mut m = ExtentMap::new();
                let mut reference: BTreeMap<u64, u64> = BTreeMap::new();
                let mut next_phys = 0u64;
                for _ in 0..rng.gen_range(1, 60) {
                    let start = rng.gen_range(0, 64);
                    let len = rng.gen_range(1, 16);
                    let phys = next_phys;
                    next_phys += len;
                    let displaced = m.map_range(start, &[run(phys * 1000, len)]);
                    // Reference bookkeeping.
                    let mut expected_displaced: Vec<u64> = Vec::new();
                    for p in start..start + len {
                        if let Some(old) = reference.insert(p, phys * 1000 + (p - start)) {
                            expected_displaced.push(old);
                        }
                    }
                    let mut got: Vec<u64> = displaced.iter().map(|b| b.raw()).collect();
                    got.sort_unstable();
                    expected_displaced.sort_unstable();
                    assert_eq!(got, expected_displaced);
                }
                for (page, block) in &reference {
                    assert_eq!(m.block_of(PageIndex(*page)), Some(BlockNr(*block)));
                }
                assert_eq!(m.mapped_pages(), reference.len() as u64);
            }
        }
    }
}
