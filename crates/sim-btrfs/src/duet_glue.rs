//! Duet introspection hooks for the Btrfs model.
//!
//! The kernel implementation compiles its hooks into the storage stack;
//! likewise, the filesystem implements the framework's
//! [`FsIntrospect`] interface directly.

use crate::fs::BtrfsSim;
use sim_cache::FsIntrospect;
use sim_cache::PageMeta;
use sim_core::{BlockNr, DeviceId, InodeNr, PageIndex};

impl FsIntrospect for BtrfsSim {
    fn device(&self) -> DeviceId {
        BtrfsSim::device(self)
    }

    fn is_under(&self, ino: InodeNr, dir: InodeNr) -> bool {
        self.inodes().is_under(ino, dir).unwrap_or(false)
    }

    fn path_of(&self, ino: InodeNr) -> Option<String> {
        self.inodes().path_of(ino).ok()
    }

    fn fibmap(&self, ino: InodeNr, index: PageIndex) -> Option<BlockNr> {
        BtrfsSim::fibmap(self, ino, index).ok().flatten()
    }

    fn has_cached_pages(&self, ino: InodeNr) -> bool {
        self.cache().pages_of(ino) > 0
    }

    fn cached_pages(&self) -> Vec<PageMeta> {
        self.cache().iter().collect()
    }

    fn cached_pages_of(&self, ino: InodeNr) -> Vec<PageMeta> {
        self.cache().pages_of_file(ino)
    }
}
