//! Per-block device state: content versions, checksums, reference
//! counts and back-references.
//!
//! We do not store real file bytes. Each block carries a *content
//! version* — a monotonically increasing stamp assigned on write — and a
//! checksum derived from it. This is enough to model every behaviour the
//! paper's tasks rely on:
//!
//! - the scrubber verifies a block's checksum against its content
//!   (§5.1); an injected corruption makes verification fail;
//! - Btrfs "verifies data correctness during the read operation", which
//!   is why a workload read lets the opportunistic scrubber mark the
//!   block done;
//! - the backup tool compares live and snapshot blocks to decide whether
//!   copy-on-write sharing still holds (§5.2) — equal block numbers mean
//!   equal content;
//! - reference counts implement snapshot sharing: a block is freed only
//!   when neither the live tree nor any snapshot references it.
//!
//! Storage is flat `Vec`s indexed by block number, so a multi-gigabyte
//! simulated device costs a few dozen bytes per block instead of hash-map
//! nodes.

use sim_core::dmap::DSet;
use sim_core::{BlockNr, InodeNr, PageIndex, SimError, SimResult};

/// Back-reference from a block to the live file page it backs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackRef {
    /// Owning live file.
    pub ino: InodeNr,
    /// Logical page within the file.
    pub index: PageIndex,
}

const NO_BACKREF: u64 = u64::MAX;

/// Flat per-block state for one device.
#[derive(Debug, Clone)]
pub struct BlockTable {
    /// Content version of each block (0 = never written).
    version: Vec<u64>,
    /// Stored checksum of each block.
    checksum: Vec<u64>,
    /// Number of referents (live tree + snapshots).
    refcount: Vec<u32>,
    /// Live back-reference, packed as (ino, index); `NO_BACKREF` if the
    /// block is not referenced by the live tree.
    backref_ino: Vec<u64>,
    backref_idx: Vec<u64>,
    /// Blocks with injected silent corruption.
    corrupted: DSet<u64>,
    /// Monotonic content-version source.
    next_version: u64,
}

/// Checksum function over a content version (any injective-enough mix).
fn checksum_of(version: u64) -> u64 {
    let mut z = version.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z ^ (z >> 27)
}

impl BlockTable {
    /// Creates state for a device of `capacity` blocks.
    pub fn new(capacity: u64) -> Self {
        let n = capacity as usize;
        BlockTable {
            version: vec![0; n],
            checksum: vec![0; n],
            refcount: vec![0; n],
            backref_ino: vec![NO_BACKREF; n],
            backref_idx: vec![0; n],
            corrupted: DSet::new(),
            next_version: 1,
        }
    }

    /// Device capacity in blocks.
    pub fn capacity(&self) -> u64 {
        self.version.len() as u64
    }

    fn check_range(&self, b: BlockNr) -> SimResult<usize> {
        let i = b.raw() as usize;
        if i < self.version.len() {
            Ok(i)
        } else {
            Err(SimError::BlockOutOfRange(b))
        }
    }

    /// Stamps a freshly written block: assigns a new content version and
    /// matching checksum, and clears any corruption.
    pub fn write_block(&mut self, b: BlockNr) -> SimResult<u64> {
        let i = self.check_range(b)?;
        let v = self.next_version;
        self.next_version += 1;
        self.version[i] = v;
        self.checksum[i] = checksum_of(v);
        self.corrupted.remove(&b.raw());
        Ok(v)
    }

    /// Content version of a block (0 if never written).
    pub fn version_of(&self, b: BlockNr) -> SimResult<u64> {
        Ok(self.version[self.check_range(b)?])
    }

    /// Verifies the block's checksum against its content, as the Btrfs
    /// read path does. Fails for corrupted blocks.
    pub fn verify_checksum(&self, b: BlockNr) -> SimResult<()> {
        let i = self.check_range(b)?;
        if self.corrupted.contains(&b.raw()) || self.checksum[i] != checksum_of(self.version[i]) {
            Err(SimError::ChecksumMismatch(b))
        } else {
            Ok(())
        }
    }

    /// Injects a silent corruption (latent sector error) into a block.
    pub fn inject_corruption(&mut self, b: BlockNr) -> SimResult<()> {
        self.check_range(b)?;
        self.corrupted.insert(b.raw());
        Ok(())
    }

    /// Repairs a corrupted block (models Btrfs rebuilding from a good
    /// copy): restores a valid checksum without changing the version.
    pub fn repair(&mut self, b: BlockNr) -> SimResult<()> {
        let i = self.check_range(b)?;
        self.corrupted.remove(&b.raw());
        self.checksum[i] = checksum_of(self.version[i]);
        Ok(())
    }

    /// Number of corrupted blocks outstanding.
    pub fn corrupted_count(&self) -> usize {
        self.corrupted.len()
    }

    /// Increments a block's reference count.
    pub fn ref_inc(&mut self, b: BlockNr) -> SimResult<()> {
        let i = self.check_range(b)?;
        self.refcount[i] += 1;
        Ok(())
    }

    /// Decrements a block's reference count and reports whether it
    /// dropped to zero (i.e. the block is now free).
    ///
    /// # Panics
    ///
    /// Panics if the count is already zero — that is a filesystem
    /// accounting bug, not a runtime condition.
    pub fn ref_dec(&mut self, b: BlockNr) -> SimResult<bool> {
        let i = self.check_range(b)?;
        assert!(self.refcount[i] > 0, "refcount underflow at {b}");
        self.refcount[i] -= 1;
        Ok(self.refcount[i] == 0)
    }

    /// Current reference count.
    pub fn refcount_of(&self, b: BlockNr) -> SimResult<u32> {
        Ok(self.refcount[self.check_range(b)?])
    }

    /// Sets the live back-reference for a block.
    pub fn set_backref(&mut self, b: BlockNr, br: BackRef) -> SimResult<()> {
        let i = self.check_range(b)?;
        self.backref_ino[i] = br.ino.raw();
        self.backref_idx[i] = br.index.raw();
        Ok(())
    }

    /// Clears the live back-reference (the live tree no longer points at
    /// this block; a snapshot still might).
    pub fn clear_backref(&mut self, b: BlockNr) -> SimResult<()> {
        let i = self.check_range(b)?;
        self.backref_ino[i] = NO_BACKREF;
        Ok(())
    }

    /// Live back-reference of a block, if any.
    pub fn backref_of(&self, b: BlockNr) -> SimResult<Option<BackRef>> {
        let i = self.check_range(b)?;
        if self.backref_ino[i] == NO_BACKREF {
            Ok(None)
        } else {
            Ok(Some(BackRef {
                ino: InodeNr(self.backref_ino[i]),
                index: PageIndex(self.backref_idx[i]),
            }))
        }
    }
}

impl sim_core::snapshot::StateDigest for BlockTable {
    fn digest_state(&self, d: &mut sim_core::snapshot::Digest) {
        d.write_u64(self.next_version);
        d.write_usize(self.version.len());
        for i in 0..self.version.len() {
            d.write_u64(self.version[i]);
            d.write_u64(self.checksum[i]);
            d.write_u32(self.refcount[i]);
            d.write_u64(self.backref_ino[i]);
            d.write_u64(self.backref_idx[i]);
        }
        // Hash-set membership, sorted for iteration-order independence.
        let mut corrupted: Vec<u64> = self.corrupted.iter().copied().collect();
        corrupted.sort_unstable();
        d.write_usize(corrupted.len());
        for b in corrupted {
            d.write_u64(b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_verify() {
        let mut t = BlockTable::new(16);
        let b = BlockNr(3);
        assert_eq!(t.version_of(b).unwrap(), 0);
        let v1 = t.write_block(b).unwrap();
        let v2 = t.write_block(b).unwrap();
        assert!(v2 > v1, "versions increase");
        t.verify_checksum(b).unwrap();
    }

    #[test]
    fn corruption_detected_and_repaired() {
        let mut t = BlockTable::new(16);
        let b = BlockNr(5);
        t.write_block(b).unwrap();
        t.inject_corruption(b).unwrap();
        assert_eq!(t.corrupted_count(), 1);
        assert_eq!(t.verify_checksum(b), Err(SimError::ChecksumMismatch(b)));
        t.repair(b).unwrap();
        t.verify_checksum(b).unwrap();
        assert_eq!(t.corrupted_count(), 0);
    }

    #[test]
    fn rewrite_clears_corruption() {
        let mut t = BlockTable::new(16);
        let b = BlockNr(1);
        t.write_block(b).unwrap();
        t.inject_corruption(b).unwrap();
        t.write_block(b).unwrap();
        t.verify_checksum(b).unwrap();
    }

    #[test]
    fn refcounts() {
        let mut t = BlockTable::new(16);
        let b = BlockNr(2);
        t.ref_inc(b).unwrap();
        t.ref_inc(b).unwrap();
        assert_eq!(t.refcount_of(b).unwrap(), 2);
        assert!(!t.ref_dec(b).unwrap());
        assert!(t.ref_dec(b).unwrap(), "second dec frees");
    }

    #[test]
    #[should_panic(expected = "refcount underflow")]
    fn refcount_underflow_panics() {
        let mut t = BlockTable::new(16);
        let _ = t.ref_dec(BlockNr(0));
    }

    #[test]
    fn backrefs_roundtrip() {
        let mut t = BlockTable::new(16);
        let b = BlockNr(7);
        assert_eq!(t.backref_of(b).unwrap(), None);
        let br = BackRef {
            ino: InodeNr(12),
            index: PageIndex(3),
        };
        t.set_backref(b, br).unwrap();
        assert_eq!(t.backref_of(b).unwrap(), Some(br));
        t.clear_backref(b).unwrap();
        assert_eq!(t.backref_of(b).unwrap(), None);
    }

    #[test]
    fn out_of_range_errors() {
        let mut t = BlockTable::new(4);
        let b = BlockNr(4);
        assert_eq!(t.write_block(b), Err(SimError::BlockOutOfRange(b)));
        assert_eq!(t.verify_checksum(b), Err(SimError::BlockOutOfRange(b)));
        assert_eq!(t.ref_inc(b), Err(SimError::BlockOutOfRange(b)));
    }
}
