//! The copy-on-write filesystem: read/write paths, snapshots, scrub and
//! defragmentation support.
//!
//! [`BtrfsSim`] glues the substrates together: the [`Disk`] executes
//! block requests in virtual time, the [`PageCache`] holds file pages
//! and emits Duet's page events, the [`BlockTable`] carries checksums /
//! versions / refcounts, and [`FreeSpace`] + per-file
//! [`crate::extent::ExtentMap`]s
//! implement copy-on-write allocation. The semantics the paper's tasks
//! depend on:
//!
//! - **Verify-on-read** (§5.1): every block read from the device has its
//!   checksum verified, which is why the opportunistic scrubber may mark
//!   recently-read blocks as scrubbed.
//! - **COW sharing with snapshots** (§5.2): an overwrite allocates new
//!   blocks; the old ones survive while a snapshot references them.
//! - **COW fragmentation** (§5.3): overwrites append extents to the
//!   file's map; defragmentation rewrites the file into one extent.
//!
//! All data I/O flows through the page cache (generating Duet events);
//! the cache never does I/O itself, so this layer charges the device for
//! misses, writeback and dirty evictions.

use crate::alloc::{FreeSpace, Run};
use crate::blocktable::{BackRef, BlockTable};
use crate::events::FsEvent;
use crate::inode::{InodeKind, InodeTable};
use crate::snapshot::{SnapFile, Snapshot, SnapshotId};
use sim_cache::{PageCache, PageKey, PageMeta};
use sim_core::fault::{FaultHandle, FaultSite};
use sim_core::trace::{TraceHandle, TraceLayer};
use sim_core::{
    BlockNr,
    DeviceId,
    InodeNr,
    PageIndex,
    SimError,
    SimInstant,
    SimResult,
    PAGE_SIZE, //
};
use sim_disk::{Disk, IoClass, IoKind, IoRequest, RetryPolicy};
use std::collections::{BTreeMap, VecDeque};

/// I/O accounting for one filesystem operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpStats {
    /// Blocks read from the device.
    pub blocks_read: u64,
    /// Blocks written to the device.
    pub blocks_written: u64,
    /// Read requests issued.
    pub read_reqs: u64,
    /// Write requests issued.
    pub write_reqs: u64,
    /// Pages served from the cache without I/O.
    pub cache_hits: u64,
    /// Completion time of the last request (equals the submission time
    /// if no I/O was needed).
    pub finish: SimInstant,
}

impl OpStats {
    /// Stats for an operation that did no I/O, completing at `now`.
    pub fn none(now: SimInstant) -> Self {
        OpStats {
            blocks_read: 0,
            blocks_written: 0,
            read_reqs: 0,
            write_reqs: 0,
            cache_hits: 0,
            finish: now,
        }
    }

    /// Folds another operation's stats into this one.
    pub fn merge(&mut self, other: &OpStats) {
        self.blocks_read += other.blocks_read;
        self.blocks_written += other.blocks_written;
        self.read_reqs += other.read_reqs;
        self.write_reqs += other.write_reqs;
        self.cache_hits += other.cache_hits;
        self.finish = self.finish.max(other.finish);
    }

    /// Total blocks transferred.
    pub fn total_blocks(&self) -> u64 {
        self.blocks_read + self.blocks_written
    }
}

/// Result of defragmenting one file (see
/// [`BtrfsSim::defrag_file`]).
#[derive(Debug, Clone, Copy)]
pub struct DefragResult {
    /// Combined I/O of the read + rewrite phases.
    pub stats: OpStats,
    /// File size in pages.
    pub pages: u64,
    /// Pages that were already cached when the defrag read them (reads
    /// saved, in the paper's Figure accounting).
    pub cached_pages: u64,
    /// Pages that were already dirty before the defrag (writes that
    /// would have happened anyway).
    pub already_dirty: u64,
    /// Extent count before.
    pub extents_before: usize,
    /// Extent count after.
    pub extents_after: usize,
}

/// The simulated copy-on-write filesystem.
pub struct BtrfsSim {
    device: DeviceId,
    disk: Disk,
    cache: PageCache,
    blocks: BlockTable,
    alloc: FreeSpace,
    inodes: InodeTable,
    snapshots: BTreeMap<SnapshotId, Snapshot>,
    next_snap: u32,
    fs_events: VecDeque<FsEvent>,
    retry: RetryPolicy,
    faults: Option<FaultHandle>,
    trace: Option<TraceHandle>,
}

impl Clone for BtrfsSim {
    /// Deep-copies the whole filesystem image for the snapshot/fork
    /// plane. The fault and trace handles are `Rc`-shared; snapshots
    /// are captured with both disarmed and re-armed per fork.
    fn clone(&self) -> Self {
        BtrfsSim {
            device: self.device,
            disk: self.disk.clone(),
            cache: self.cache.clone(),
            blocks: self.blocks.clone(),
            alloc: self.alloc.clone(),
            inodes: self.inodes.clone(),
            snapshots: self.snapshots.clone(),
            next_snap: self.next_snap,
            fs_events: self.fs_events.clone(),
            retry: self.retry,
            faults: self.faults.clone(),
            trace: self.trace.clone(),
        }
    }
}

impl sim_core::snapshot::StateDigest for BtrfsSim {
    fn digest_state(&self, d: &mut sim_core::snapshot::Digest) {
        d.write_u32(self.device.raw());
        self.disk.digest_state(d);
        self.cache.digest_state(d);
        self.blocks.digest_state(d);
        self.alloc.digest_state(d);
        self.inodes.digest_state(d);
        d.write_u32(self.next_snap);
        d.write_usize(self.snapshots.len());
        for (id, snap) in &self.snapshots {
            d.write_u32(id.0);
            d.write_usize(snap.files.len());
            for (ino, f) in &snap.files {
                d.write_u64(ino.raw());
                f.extents.digest_state(d);
                d.write_u64(f.size_bytes);
                d.write_str(&f.path);
            }
        }
        d.write_usize(self.fs_events.len());
        for ev in &self.fs_events {
            match *ev {
                FsEvent::Created {
                    ino,
                    parent,
                    is_dir,
                } => {
                    d.write_u32(0);
                    d.write_u64(ino.raw());
                    d.write_u64(parent.raw());
                    d.write_bool(is_dir);
                }
                FsEvent::Deleted { ino, parent } => {
                    d.write_u32(1);
                    d.write_u64(ino.raw());
                    d.write_u64(parent.raw());
                }
                FsEvent::Renamed {
                    ino,
                    old_parent,
                    new_parent,
                    is_dir,
                } => {
                    d.write_u32(2);
                    d.write_u64(ino.raw());
                    d.write_u64(old_parent.raw());
                    d.write_u64(new_parent.raw());
                    d.write_bool(is_dir);
                }
            }
        }
        d.write_u32(self.retry.max_attempts);
        d.write_u64(self.retry.base_backoff.as_nanos());
        d.write_u64(self.retry.max_backoff.as_nanos());
        d.write_bool(self.faults.is_some());
        d.write_bool(self.trace.is_some());
    }
}

impl BtrfsSim {
    /// Creates a filesystem on `disk` with a page cache of
    /// `cache_pages` pages.
    pub fn new(device: DeviceId, disk: Disk, cache_pages: usize) -> Self {
        let capacity = disk.capacity_blocks();
        BtrfsSim {
            device,
            disk,
            cache: PageCache::new(cache_pages),
            blocks: BlockTable::new(capacity),
            alloc: FreeSpace::new(capacity),
            inodes: InodeTable::new(),
            snapshots: BTreeMap::new(),
            next_snap: 1,
            fs_events: VecDeque::new(),
            retry: RetryPolicy::default(),
            faults: None,
            trace: None,
        }
    }

    /// Arms (or disarms, with `None`) tracing on this filesystem, its
    /// disk and its page cache. Pure observation: completion times,
    /// stats and event streams are unaffected.
    pub fn set_trace(&mut self, trace: Option<TraceHandle>) {
        self.disk.set_trace(trace.clone());
        self.cache.set_trace(trace.clone());
        self.trace = trace;
    }

    /// The armed trace handle, if any — tasks use it to bracket their
    /// work items with provenance spans.
    pub fn trace(&self) -> Option<&TraceHandle> {
        self.trace.as_ref()
    }

    /// Arms (or disarms) fault injection on the disk and page cache.
    /// Transient I/O faults are absorbed by bounded retry-and-backoff
    /// ([`RetryPolicy`]); only an exhausted retry budget surfaces as
    /// [`SimError::TransientIo`]. Latent errors
    /// ([`FaultSite::DiskLatentError`]) silently corrupt one block of a
    /// write run as it lands, surfacing later as
    /// [`SimError::ChecksumMismatch`] when something verifies the
    /// block.
    pub fn set_faults(&mut self, faults: Option<FaultHandle>) {
        self.disk.set_faults(faults.clone());
        self.cache.set_faults(faults.clone());
        self.faults = faults;
    }

    /// Overrides the transient-I/O retry policy (the fault matrix
    /// raises the budget under aggressive fault plans).
    pub fn set_retry_policy(&mut self, policy: RetryPolicy) {
        self.retry = policy;
    }

    /// The device this filesystem is mounted on.
    pub fn device(&self) -> DeviceId {
        self.device
    }

    /// The underlying disk (metrics, capacity).
    pub fn disk(&self) -> &Disk {
        &self.disk
    }

    /// Mutable disk access (metric resets).
    pub fn disk_mut(&mut self) -> &mut Disk {
        &mut self.disk
    }

    /// The page cache.
    pub fn cache(&self) -> &PageCache {
        &self.cache
    }

    /// Mutable page cache access (event draining).
    pub fn cache_mut(&mut self) -> &mut PageCache {
        &mut self.cache
    }

    /// The inode table / namespace.
    pub fn inodes(&self) -> &InodeTable {
        &self.inodes
    }

    /// The per-block state table.
    pub fn blocks(&self) -> &BlockTable {
        &self.blocks
    }

    /// Root directory inode.
    pub fn root(&self) -> InodeNr {
        self.inodes.root()
    }

    /// Blocks currently allocated.
    pub fn allocated_blocks(&self) -> u64 {
        self.alloc.allocated_blocks()
    }

    /// Drains pending namespace events for the Duet wiring.
    pub fn drain_fs_events(&mut self) -> Vec<FsEvent> {
        self.fs_events.drain(..).collect()
    }

    // ----- namespace operations -------------------------------------

    /// Creates a directory.
    pub fn mkdir(&mut self, parent: InodeNr, name: &str) -> SimResult<InodeNr> {
        let ino = self.inodes.create(parent, name, InodeKind::Dir)?;
        self.fs_events.push_back(FsEvent::Created {
            ino,
            parent,
            is_dir: true,
        });
        Ok(ino)
    }

    /// Creates an empty file.
    pub fn create_file(&mut self, parent: InodeNr, name: &str) -> SimResult<InodeNr> {
        let ino = self.inodes.create(parent, name, InodeKind::File)?;
        self.fs_events.push_back(FsEvent::Created {
            ino,
            parent,
            is_dir: false,
        });
        Ok(ino)
    }

    /// Deletes a file: invalidates its cached pages, releases its blocks
    /// (honouring snapshot sharing) and removes it from the namespace.
    pub fn delete_file(&mut self, ino: InodeNr) -> SimResult<()> {
        let node = self.inodes.get(ino)?;
        if node.is_dir() {
            return Err(SimError::InvalidArgument(format!("{ino} is a directory")));
        }
        let parent = node.parent;
        self.cache.remove_file(ino);
        let mut node = self.inodes.remove(ino)?;
        for b in node.extents.clear() {
            self.release_block(b)?;
        }
        self.fs_events.push_back(FsEvent::Deleted { ino, parent });
        Ok(())
    }

    /// Moves `ino` under `new_parent` as `new_name` (the VFS rename
    /// hook of §4.1).
    pub fn rename(&mut self, ino: InodeNr, new_parent: InodeNr, new_name: &str) -> SimResult<()> {
        let old_parent = self.inodes.get(ino)?.parent;
        let is_dir = self.inodes.get(ino)?.is_dir();
        self.inodes.rename(ino, new_parent, new_name)?;
        self.fs_events.push_back(FsEvent::Renamed {
            ino,
            old_parent,
            new_parent,
            is_dir,
        });
        Ok(())
    }

    /// Resolves an absolute path.
    pub fn resolve(&self, path: &str) -> SimResult<InodeNr> {
        self.inodes.resolve(path)
    }

    /// Absolute path of an inode.
    pub fn path_of(&self, ino: InodeNr) -> SimResult<String> {
        self.inodes.path_of(ino)
    }

    // ----- block bookkeeping -----------------------------------------

    /// Releases one reference to a block, freeing it when the count
    /// reaches zero and always clearing the live back-reference.
    fn release_block(&mut self, b: BlockNr) -> SimResult<()> {
        self.blocks.clear_backref(b)?;
        if self.blocks.ref_dec(b)? {
            self.alloc.free_block(b);
        }
        Ok(())
    }

    /// Allocates and stamps fresh blocks for `npages` pages of file
    /// `ino` starting at logical page `page0`, and maps them.
    fn cow_allocate(&mut self, ino: InodeNr, page0: u64, npages: u64) -> SimResult<Vec<Run>> {
        let runs = self.alloc.alloc_exact(npages)?;
        if let Some(trace) = &self.trace {
            trace.tick(TraceLayer::Btrfs, "alloc");
        }
        let mut logical = page0;
        for run in &runs {
            for i in 0..run.len {
                let b = run.start.offset(i);
                self.blocks.write_block(b)?;
                self.blocks.ref_inc(b)?;
                self.blocks.set_backref(
                    b,
                    BackRef {
                        ino,
                        index: PageIndex(logical + i),
                    },
                )?;
            }
            logical += run.len;
        }
        let displaced = {
            let node = self.inodes.get_mut(ino)?;
            node.extents.map_range(page0, &runs)
        };
        for b in displaced {
            self.release_block(b)?;
        }
        Ok(runs)
    }

    // ----- I/O helpers ------------------------------------------------

    /// Coalesces block numbers into maximal contiguous ascending runs.
    fn coalesce(mut blocks: Vec<BlockNr>) -> Vec<Run> {
        blocks.sort_unstable();
        blocks.dedup();
        let mut runs: Vec<Run> = Vec::new();
        for b in blocks {
            match runs.last_mut() {
                Some(r) if r.start.raw() + r.len == b.raw() => r.len += 1,
                _ => runs.push(Run { start: b, len: 1 }),
            }
        }
        runs
    }

    fn submit_runs(
        &mut self,
        runs: &[Run],
        kind: IoKind,
        class: IoClass,
        now: SimInstant,
        stats: &mut OpStats,
    ) -> SimResult<()> {
        if let Some(trace) = &self.trace {
            trace.event(TraceLayer::Btrfs, "submit", now, || {
                vec![
                    ("op", kind.label().into()),
                    ("class", class.label().into()),
                    ("runs", runs.len().into()),
                    ("blocks", runs.iter().map(|r| r.len).sum::<u64>().into()),
                ]
            });
        }
        for run in runs {
            let req = IoRequest::new(kind, run.start, run.len, class);
            let (finish, _) = self.disk.submit_with_retry(&req, now, self.retry)?;
            stats.finish = stats.finish.max(finish);
            match kind {
                IoKind::Read => {
                    stats.blocks_read += run.len;
                    stats.read_reqs += 1;
                }
                IoKind::Write => {
                    stats.blocks_written += run.len;
                    stats.write_reqs += 1;
                    // A latent error corrupts one block of the run as
                    // it lands; nothing notices until a later read or
                    // scrub verifies the checksum.
                    let corrupt_off = self.faults.as_ref().and_then(|faults| {
                        faults
                            .fire(FaultSite::DiskLatentError)
                            .then(|| faults.amplitude(FaultSite::DiskLatentError, 0, run.len))
                    });
                    if let Some(off) = corrupt_off {
                        // lint: allow(E1): corrupting an unmapped block is a no-op by design
                        let _ = self.blocks.inject_corruption(run.start.offset(off));
                    }
                }
            }
        }
        Ok(())
    }

    /// Writes out dirty pages evicted by cache pressure.
    fn write_evicted(
        &mut self,
        evicted: Vec<PageMeta>,
        class: IoClass,
        now: SimInstant,
        stats: &mut OpStats,
    ) -> SimResult<()> {
        let blocks: Vec<BlockNr> = evicted
            .into_iter()
            .filter(|m| m.dirty)
            .filter_map(|m| m.block)
            .collect();
        if blocks.is_empty() {
            return Ok(());
        }
        let runs = Self::coalesce(blocks);
        self.submit_runs(&runs, IoKind::Write, class, now, stats)
    }

    // ----- data path ---------------------------------------------------

    /// Reads `len_bytes` at byte `offset` of file `ino` through the page
    /// cache. Device reads verify block checksums (failing with
    /// [`SimError::ChecksumMismatch`] on injected corruption).
    pub fn read(
        &mut self,
        ino: InodeNr,
        offset: u64,
        len_bytes: u64,
        class: IoClass,
        now: SimInstant,
    ) -> SimResult<OpStats> {
        let mut stats = OpStats::none(now);
        if len_bytes == 0 {
            return Ok(stats);
        }
        let size_pages = self.inodes.get(ino)?.size_pages();
        let p0 = offset / PAGE_SIZE;
        let p1 = ((offset + len_bytes).div_ceil(PAGE_SIZE)).min(size_pages);
        let mut missing: Vec<(PageIndex, BlockNr)> = Vec::new();
        for p in p0..p1 {
            let idx = PageIndex(p);
            let key = PageKey::new(ino, idx);
            if self.cache.lookup(key).is_some() {
                stats.cache_hits += 1;
            } else if let Some(b) = self.inodes.get(ino)?.extents.block_of(idx) {
                missing.push((idx, b));
            }
            // Unmapped pages (holes) read as zeroes with no I/O.
        }
        if missing.is_empty() {
            return Ok(stats);
        }
        // Verify checksums on the device read path.
        for (_, b) in &missing {
            if let Err(e) = self.blocks.verify_checksum(*b) {
                if let Some(trace) = &self.trace {
                    trace.event(TraceLayer::Btrfs, "checksum.fail", now, || {
                        vec![("block", b.raw().into()), ("ino", ino.raw().into())]
                    });
                }
                return Err(e);
            }
            if let Some(trace) = &self.trace {
                trace.tick(TraceLayer::Btrfs, "checksum.ok");
            }
        }
        let runs = Self::coalesce(missing.iter().map(|(_, b)| *b).collect());
        self.submit_runs(&runs, IoKind::Read, class, now, &mut stats)?;
        // Populate the cache; dirty evictions are charged to this op.
        let mut evicted_all = Vec::new();
        for (idx, b) in missing {
            self.cache
                .insert_into(PageKey::new(ino, idx), Some(b), false, &mut evicted_all);
        }
        self.write_evicted(evicted_all, class, now, &mut stats)?;
        Ok(stats)
    }

    /// Writes `len_bytes` at byte `offset` of file `ino`. Copy-on-write:
    /// fresh blocks are allocated for the whole page range, the old ones
    /// are released (or left to their snapshots). Data sits dirty in the
    /// cache until written back by eviction, [`BtrfsSim::fsync`] or
    /// [`BtrfsSim::background_writeback`].
    pub fn write(
        &mut self,
        ino: InodeNr,
        offset: u64,
        len_bytes: u64,
        class: IoClass,
        now: SimInstant,
    ) -> SimResult<OpStats> {
        let mut stats = OpStats::none(now);
        if len_bytes == 0 {
            return Ok(stats);
        }
        if !self.inodes.exists(ino) {
            return Err(SimError::NoSuchInode(ino));
        }
        let p0 = offset / PAGE_SIZE;
        let p1 = (offset + len_bytes).div_ceil(PAGE_SIZE);
        let npages = p1 - p0;
        let runs = self.cow_allocate(ino, p0, npages)?;
        // Update the size.
        {
            let node = self.inodes.get_mut(ino)?;
            node.size_bytes = node.size_bytes.max(offset + len_bytes);
        }
        // Dirty pages enter the cache with their new blocks.
        let mut evicted_all = Vec::new();
        let mut logical = p0;
        for run in &runs {
            for i in 0..run.len {
                let key = PageKey::new(ino, PageIndex(logical + i));
                self.cache
                    .insert_into(key, Some(run.start.offset(i)), true, &mut evicted_all);
            }
            logical += run.len;
        }
        self.write_evicted(evicted_all, class, now, &mut stats)?;
        Ok(stats)
    }

    /// Appends `len_bytes` to the end of the file.
    pub fn append(
        &mut self,
        ino: InodeNr,
        len_bytes: u64,
        class: IoClass,
        now: SimInstant,
    ) -> SimResult<OpStats> {
        let size = self.inodes.get(ino)?.size_bytes;
        // Appends start on a fresh page boundary past EOF (partial-page
        // tails are rounded up; content granularity is one page).
        let offset = size.next_multiple_of(PAGE_SIZE).max(size);
        self.write(ino, offset, len_bytes, class, now)
    }

    /// Flushes all dirty pages of a file to the device.
    pub fn fsync(&mut self, ino: InodeNr, class: IoClass, now: SimInstant) -> SimResult<OpStats> {
        let mut stats = OpStats::none(now);
        let flushed = self.cache.flush_file(ino);
        let blocks: Vec<BlockNr> = flushed.into_iter().filter_map(|m| m.block).collect();
        if !blocks.is_empty() {
            let runs = Self::coalesce(blocks);
            self.submit_runs(&runs, IoKind::Write, class, now, &mut stats)?;
        }
        Ok(stats)
    }

    /// Background writeback: flushes up to `max_pages` of the oldest
    /// dirty pages (the kernel flusher thread the defragmentation
    /// accounting in §6.2 refers to with "will be flushed soon anyway").
    pub fn background_writeback(
        &mut self,
        max_pages: usize,
        class: IoClass,
        now: SimInstant,
    ) -> SimResult<OpStats> {
        let mut stats = OpStats::none(now);
        let flushed = self.cache.writeback_batch(max_pages);
        let blocks: Vec<BlockNr> = flushed.into_iter().filter_map(|m| m.block).collect();
        if !blocks.is_empty() {
            let runs = Self::coalesce(blocks);
            self.submit_runs(&runs, IoKind::Write, class, now, &mut stats)?;
        }
        Ok(stats)
    }

    /// Number of dirty pages in the cache (O(1)).
    pub fn dirty_pages(&self) -> usize {
        self.cache.dirty_len()
    }

    /// FIBMAP: logical page of a file → physical block (§4.2).
    pub fn fibmap(&self, ino: InodeNr, index: PageIndex) -> SimResult<Option<BlockNr>> {
        Ok(self.inodes.get(ino)?.extents.block_of(index))
    }

    // ----- population (experiment setup, no I/O accounting) -----------

    /// Creates a file of `size_bytes` with data "already on disk":
    /// blocks are allocated, stamped and mapped without charging any
    /// simulated I/O. Used to build the experimental file set (§6.1.3).
    pub fn populate_file(
        &mut self,
        parent: InodeNr,
        name: &str,
        size_bytes: u64,
    ) -> SimResult<InodeNr> {
        let ino = self.create_file(parent, name)?;
        let npages = sim_core::ids::pages_for_bytes(size_bytes);
        if npages > 0 {
            self.cow_allocate(ino, 0, npages)?;
            self.inodes.get_mut(ino)?.size_bytes = size_bytes;
        }
        Ok(ino)
    }

    /// Re-lays a file out into approximately `pieces` scattered extents
    /// (experiment setup: "our experiments are performed on a 10%
    /// fragmented file system", §6.2). No I/O is charged.
    pub fn fragment_file(&mut self, ino: InodeNr, pieces: u64) -> SimResult<()> {
        let npages = self.inodes.get(ino)?.size_pages();
        if npages == 0 || pieces == 0 {
            return Ok(());
        }
        // `pieces == 1` relocates the file contiguously (used to age the
        // filesystem layout so inode order no longer matches physical
        // order).
        let pieces = pieces.min(npages);
        let per = npages.div_ceil(pieces);
        // Free the current layout.
        let old = {
            let node = self.inodes.get_mut(ino)?;
            node.extents.clear()
        };
        for b in old {
            self.release_block(b)?;
        }
        // Allocate scattered runs. Each piece is carved with a trailing
        // gap from one contiguous allocation; freeing the gaps afterward
        // leaves the pieces physically separated, so the extent map
        // cannot merge them.
        const GAP: u64 = 4;
        let mut gaps: Vec<Run> = Vec::new();
        let mut logical = 0u64;
        let mut remaining = npages;
        while remaining > 0 {
            let want = per.min(remaining);
            let (run, gap) = match self.alloc.alloc_contiguous(want + GAP) {
                Ok(r) => (
                    Run {
                        start: r.start,
                        len: want,
                    },
                    Some(Run {
                        start: r.start.offset(want),
                        len: GAP,
                    }),
                ),
                // Space too tight for gaps: take what is available.
                Err(SimError::NoSpace) => (self.alloc.alloc(want)?, None),
                Err(e) => return Err(e),
            };
            for i in 0..run.len {
                let b = run.start.offset(i);
                self.blocks.write_block(b)?;
                self.blocks.ref_inc(b)?;
                self.blocks.set_backref(
                    b,
                    BackRef {
                        ino,
                        index: PageIndex(logical + i),
                    },
                )?;
            }
            let node = self.inodes.get_mut(ino)?;
            let displaced = node.extents.map_range(logical, &[run]);
            debug_assert!(displaced.is_empty());
            logical += run.len;
            remaining -= run.len;
            if let Some(g) = gap {
                gaps.push(g);
            }
        }
        for g in gaps {
            self.alloc.free_range(g.start, g.len);
        }
        Ok(())
    }

    // ----- snapshots ----------------------------------------------------

    /// Takes a read-only snapshot of the live filesystem. All data
    /// blocks become shared (refcount +1) until the live tree overwrites
    /// them.
    pub fn create_snapshot(&mut self) -> SimResult<SnapshotId> {
        let id = SnapshotId(self.next_snap);
        self.next_snap += 1;
        let mut files = BTreeMap::new();
        let file_inos = self.inodes.files_by_inode();
        for ino in file_inos {
            let node = self.inodes.get(ino)?;
            let path = self.inodes.path_of(ino)?;
            let snap = SnapFile {
                extents: node.extents.clone(),
                size_bytes: node.size_bytes,
                path,
            };
            files.insert(ino, snap);
        }
        for f in files.values() {
            let blocks: Vec<BlockNr> = f
                .extents
                .iter()
                .flat_map(|e| (0..e.len).map(move |i| e.physical.offset(i)))
                .collect();
            for b in blocks {
                self.blocks.ref_inc(b)?;
            }
        }
        self.snapshots.insert(id, Snapshot { id, files });
        Ok(id)
    }

    /// Deletes a snapshot, releasing its block references.
    pub fn delete_snapshot(&mut self, id: SnapshotId) -> SimResult<()> {
        let snap = self
            .snapshots
            .remove(&id)
            .ok_or_else(|| SimError::InvalidArgument(format!("{id} does not exist")))?;
        for f in snap.files.values() {
            for e in f.extents.iter() {
                for i in 0..e.len {
                    let b = e.physical.offset(i);
                    if self.blocks.ref_dec(b)? {
                        self.alloc.free_block(b);
                    }
                }
            }
        }
        Ok(())
    }

    /// Accesses a snapshot.
    pub fn snapshot(&self, id: SnapshotId) -> SimResult<&Snapshot> {
        self.snapshots
            .get(&id)
            .ok_or_else(|| SimError::InvalidArgument(format!("{id} does not exist")))
    }

    /// The block backing page `index` of file `ino` *in the snapshot*.
    pub fn snapshot_block(
        &self,
        id: SnapshotId,
        ino: InodeNr,
        index: PageIndex,
    ) -> SimResult<Option<BlockNr>> {
        Ok(self
            .snapshot(id)?
            .files
            .get(&ino)
            .and_then(|f| f.extents.block_of(index)))
    }

    /// Returns `true` if page `index` of live file `ino` is still
    /// backed by the same block as in the snapshot — the back-reference
    /// check the opportunistic backup performs before copying a cached
    /// page (§5.2).
    pub fn shared_with_snapshot(
        &self,
        id: SnapshotId,
        ino: InodeNr,
        index: PageIndex,
    ) -> SimResult<bool> {
        let snap_block = self.snapshot_block(id, ino, index)?;
        let live_block = match self.inodes.get(ino) {
            Ok(node) => node.extents.block_of(index),
            Err(SimError::NoSuchInode(_)) => None,
            Err(e) => return Err(e),
        };
        Ok(snap_block.is_some() && snap_block == live_block)
    }

    // ----- scrub support -------------------------------------------------

    /// Allocated block ranges in ascending physical order — the
    /// scrubber's processing order.
    pub fn allocated_ranges(&self) -> Vec<Run> {
        self.alloc.allocated_ranges()
    }

    /// Raw device read bypassing the page cache (used for blocks with no
    /// live file, e.g. snapshot-only blocks).
    pub fn read_raw(
        &mut self,
        start: BlockNr,
        len: u64,
        class: IoClass,
        now: SimInstant,
    ) -> SimResult<OpStats> {
        let mut stats = OpStats::none(now);
        self.submit_runs(&[Run { start, len }], IoKind::Read, class, now, &mut stats)?;
        Ok(stats)
    }

    /// Verifies a block's checksum, repairing it if corrupted. Returns
    /// `true` if a corruption was found (and fixed).
    pub fn verify_and_repair(&mut self, b: BlockNr) -> SimResult<bool> {
        match self.blocks.verify_checksum(b) {
            Ok(()) => {
                if let Some(trace) = &self.trace {
                    trace.tick(TraceLayer::Btrfs, "checksum.ok");
                }
                Ok(false)
            }
            Err(SimError::ChecksumMismatch(_)) => {
                self.blocks.repair(b)?;
                if let Some(trace) = &self.trace {
                    trace.tick(TraceLayer::Btrfs, "repair");
                }
                Ok(true)
            }
            Err(e) => Err(e),
        }
    }

    /// Injects a silent corruption for scrubber tests.
    pub fn inject_corruption(&mut self, b: BlockNr) -> SimResult<()> {
        self.blocks.inject_corruption(b)
    }

    // ----- defragmentation -------------------------------------------------

    /// Extent count of a file (the fragmentation measure).
    pub fn file_extent_count(&self, ino: InodeNr) -> SimResult<usize> {
        Ok(self.inodes.get(ino)?.extents.extent_count())
    }

    /// Defragments one file: brings its pages into memory, rewrites them
    /// into (as close as possible to) one contiguous extent and flushes
    /// the result as a single transaction (§5.3).
    pub fn defrag_file(
        &mut self,
        ino: InodeNr,
        class: IoClass,
        now: SimInstant,
    ) -> SimResult<DefragResult> {
        let node = self.inodes.get(ino)?;
        let pages = node.size_pages();
        let size = node.size_bytes;
        let extents_before = node.extents.extent_count();
        if pages == 0 || extents_before <= 1 {
            return Ok(DefragResult {
                stats: OpStats::none(now),
                pages,
                cached_pages: 0,
                already_dirty: 0,
                extents_before,
                extents_after: extents_before,
            });
        }
        // Count savings *before* touching anything.
        let cached_pages = self.cache.pages_of(ino) as u64;
        let already_dirty = self
            .cache
            .iter()
            .filter(|m| m.key.ino == ino && m.dirty)
            .count() as u64;
        // Phase 1: bring the file into memory.
        let mut stats = self.read(ino, 0, size, class, now)?;
        // Phase 2: rewrite into fresh (contiguous if possible) space.
        let runs = match self.alloc.alloc_contiguous(pages) {
            Ok(run) => vec![run],
            Err(SimError::NoSpace) => self.alloc.alloc_exact(pages)?,
            Err(e) => return Err(e),
        };
        for run in &runs {
            for i in 0..run.len {
                let b = run.start.offset(i);
                self.blocks.write_block(b)?;
                self.blocks.ref_inc(b)?;
            }
        }
        let mut logical = 0u64;
        for run in &runs {
            for i in 0..run.len {
                self.blocks.set_backref(
                    run.start.offset(i),
                    BackRef {
                        ino,
                        index: PageIndex(logical + i),
                    },
                )?;
            }
            logical += run.len;
        }
        let displaced = {
            let node = self.inodes.get_mut(ino)?;
            node.extents.map_range(0, &runs)
        };
        for b in displaced {
            self.release_block(b)?;
        }
        // Refresh cached pages onto the new blocks, dirty.
        let mut evicted_all = Vec::new();
        let mut logical = 0u64;
        for run in &runs {
            for i in 0..run.len {
                let key = PageKey::new(ino, PageIndex(logical + i));
                self.cache
                    .insert_into(key, Some(run.start.offset(i)), true, &mut evicted_all);
            }
            logical += run.len;
        }
        self.write_evicted(evicted_all, class, now, &mut stats)?;
        // Phase 3: commit the transaction.
        let flush = self.fsync(ino, class, now)?;
        stats.merge(&flush);
        let extents_after = self.inodes.get(ino)?.extents.extent_count();
        Ok(DefragResult {
            stats,
            pages,
            cached_pages,
            already_dirty,
            extents_before,
            extents_after,
        })
    }

    // ----- introspection --------------------------------------------------

    /// Live back-reference of a block (which file page it backs).
    pub fn backref_of(&self, b: BlockNr) -> SimResult<Option<BackRef>> {
        self.blocks.backref_of(b)
    }

    /// Mean extent count across all files (filesystem fragmentation).
    pub fn mean_extents_per_file(&self) -> f64 {
        let files = self.inodes.files_by_inode();
        if files.is_empty() {
            return 0.0;
        }
        let total: usize = files
            .iter()
            .map(|&i| {
                self.inodes
                    .get(i)
                    .map(|n| n.extents.extent_count())
                    .unwrap_or(0)
            })
            .sum();
        total as f64 / files.len() as f64
    }

    /// Full-filesystem consistency check (fsck): verifies that
    ///
    /// - every block's reference count equals the number of live-tree
    ///   and snapshot extents pointing at it;
    /// - no two live extents claim the same block;
    /// - every live block's back-reference names the page that maps it;
    /// - the allocator's allocated-block count equals the number of
    ///   referenced blocks;
    /// - every cached page's block mapping agrees with the extent tree.
    ///
    /// Intended for tests and debugging; cost is O(data).
    pub fn check_consistency(&self) -> SimResult<()> {
        use std::collections::BTreeMap;
        let fail = |why: String| Err(SimError::InvalidArgument(format!("fsck: {why}")));
        // Expected refcounts from the live tree.
        let mut expect: BTreeMap<BlockNr, u32> = BTreeMap::new();
        for node in self.inodes.iter() {
            for e in node.extents.iter() {
                for i in 0..e.len {
                    let b = e.physical.offset(i);
                    let c = expect.entry(b).or_insert(0);
                    *c += 1;
                    if *c > 1 {
                        return fail(format!("block {b} claimed by two live extents"));
                    }
                    // Back-reference must point at this page.
                    match self.blocks.backref_of(b)? {
                        Some(br) if br.ino == node.ino && br.index.raw() == e.logical + i => {}
                        other => {
                            return fail(format!(
                                "block {b}: backref {other:?} != ({}, pg {})",
                                node.ino,
                                e.logical + i
                            ));
                        }
                    }
                }
            }
        }
        // Snapshot references.
        for snap in self.snapshots.values() {
            for f in snap.files.values() {
                for e in f.extents.iter() {
                    for i in 0..e.len {
                        *expect.entry(e.physical.offset(i)).or_insert(0) += 1;
                    }
                }
            }
        }
        // Compare against the block table and the allocator.
        for (&b, &want) in &expect {
            let got = self.blocks.refcount_of(b)?;
            if got != want {
                return fail(format!("block {b}: refcount {got}, expected {want}"));
            }
        }
        let referenced = expect.len() as u64;
        if referenced != self.alloc.allocated_blocks() {
            return fail(format!(
                "allocator says {} blocks allocated, {} are referenced",
                self.alloc.allocated_blocks(),
                referenced
            ));
        }
        // Cached pages must agree with the extent tree (pages of deleted
        // files must not linger).
        for meta in self.cache.iter() {
            let node = match self.inodes.get(meta.key.ino) {
                Ok(n) => n,
                Err(_) => {
                    return fail(format!("cache holds page of missing {}", meta.key.ino));
                }
            };
            if let Some(b) = meta.block {
                if node.extents.block_of(meta.key.index) != Some(b) {
                    return fail(format!(
                        "cached page ({}, {}) maps {b}, extent tree disagrees",
                        meta.key.ino, meta.key.index
                    ));
                }
            }
        }
        Ok(())
    }

    /// Test-only: artificially bump a block's reference count so the
    /// consistency checker's detection paths can be exercised.
    #[cfg(test)]
    pub(crate) fn corrupt_refcount_for_test(&mut self, b: BlockNr) {
        self.blocks.ref_inc(b).expect("in range");
    }
}
