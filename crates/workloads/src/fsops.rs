//! The filesystem operations a workload needs, abstracted over the two
//! simulated filesystems.
//!
//! Figures 2–8 and Table 5 run the Filebench personalities on the Btrfs
//! model; Table 6 runs the fileserver personality on the F2fs model.
//! This trait lets one workload implementation drive both.

use sim_core::{InodeNr, SimDuration, SimInstant, SimResult};
use sim_disk::IoClass;

/// Filesystem operations used by the workload generator. All data ops
/// run at `Normal` (foreground) I/O priority.
pub trait WorkloadFs {
    /// Reads `len` bytes at `offset`, returning the completion time.
    fn wl_read(
        &mut self,
        ino: InodeNr,
        offset: u64,
        len: u64,
        now: SimInstant,
    ) -> SimResult<SimInstant>;

    /// Overwrites `len` bytes at `offset`.
    fn wl_write(
        &mut self,
        ino: InodeNr,
        offset: u64,
        len: u64,
        now: SimInstant,
    ) -> SimResult<SimInstant>;

    /// Appends `len` bytes.
    fn wl_append(&mut self, ino: InodeNr, len: u64, now: SimInstant) -> SimResult<SimInstant>;

    /// Deletes a file.
    fn wl_delete(&mut self, ino: InodeNr) -> SimResult<()>;

    /// Creates an empty file with a unique `name`.
    fn wl_create(&mut self, name: &str) -> SimResult<InodeNr>;

    /// Creates a file with `size` bytes already on disk (setup only; no
    /// I/O is charged).
    fn wl_populate(&mut self, name: &str, size: u64) -> SimResult<InodeNr>;

    /// File size in bytes.
    fn wl_size(&self, ino: InodeNr) -> SimResult<u64>;

    /// Flushes up to `max_pages` dirty pages (the background flusher).
    fn wl_writeback(&mut self, max_pages: usize, now: SimInstant) -> SimResult<SimInstant>;

    /// Number of dirty pages awaiting writeback.
    fn wl_dirty_pages(&self) -> usize;

    /// Total foreground (Normal-class) device busy time so far — the
    /// numerator of the `%util` statistic (§6.1.2).
    fn foreground_busy(&self) -> SimDuration;
}

impl WorkloadFs for sim_btrfs::BtrfsSim {
    fn wl_read(
        &mut self,
        ino: InodeNr,
        offset: u64,
        len: u64,
        now: SimInstant,
    ) -> SimResult<SimInstant> {
        Ok(self.read(ino, offset, len, IoClass::Normal, now)?.finish)
    }

    fn wl_write(
        &mut self,
        ino: InodeNr,
        offset: u64,
        len: u64,
        now: SimInstant,
    ) -> SimResult<SimInstant> {
        Ok(self.write(ino, offset, len, IoClass::Normal, now)?.finish)
    }

    fn wl_append(&mut self, ino: InodeNr, len: u64, now: SimInstant) -> SimResult<SimInstant> {
        Ok(self.append(ino, len, IoClass::Normal, now)?.finish)
    }

    fn wl_delete(&mut self, ino: InodeNr) -> SimResult<()> {
        self.delete_file(ino)
    }

    fn wl_create(&mut self, name: &str) -> SimResult<InodeNr> {
        let root = self.root();
        self.create_file(root, name)
    }

    fn wl_populate(&mut self, name: &str, size: u64) -> SimResult<InodeNr> {
        let root = self.root();
        self.populate_file(root, name, size)
    }

    fn wl_size(&self, ino: InodeNr) -> SimResult<u64> {
        Ok(self.inodes().get(ino)?.size_bytes)
    }

    fn wl_writeback(&mut self, max_pages: usize, now: SimInstant) -> SimResult<SimInstant> {
        Ok(self
            .background_writeback(max_pages, IoClass::Normal, now)?
            .finish)
    }

    fn wl_dirty_pages(&self) -> usize {
        self.dirty_pages()
    }

    fn foreground_busy(&self) -> SimDuration {
        self.disk().metrics().normal.busy_time
    }
}

impl WorkloadFs for sim_f2fs::F2fsSim {
    fn wl_read(
        &mut self,
        ino: InodeNr,
        offset: u64,
        len: u64,
        now: SimInstant,
    ) -> SimResult<SimInstant> {
        Ok(self.read(ino, offset, len, IoClass::Normal, now)?.finish)
    }

    fn wl_write(
        &mut self,
        ino: InodeNr,
        offset: u64,
        len: u64,
        now: SimInstant,
    ) -> SimResult<SimInstant> {
        Ok(self.write(ino, offset, len, IoClass::Normal, now)?.finish)
    }

    fn wl_append(&mut self, ino: InodeNr, len: u64, now: SimInstant) -> SimResult<SimInstant> {
        Ok(self.append(ino, len, IoClass::Normal, now)?.finish)
    }

    fn wl_delete(&mut self, ino: InodeNr) -> SimResult<()> {
        self.delete_file(ino)
    }

    fn wl_create(&mut self, name: &str) -> SimResult<InodeNr> {
        self.create_file(name)
    }

    fn wl_populate(&mut self, name: &str, size: u64) -> SimResult<InodeNr> {
        self.populate_file(name, size)
    }

    fn wl_size(&self, ino: InodeNr) -> SimResult<u64> {
        self.size_of(ino)
    }

    fn wl_writeback(&mut self, max_pages: usize, now: SimInstant) -> SimResult<SimInstant> {
        Ok(self
            .background_writeback(max_pages, IoClass::Normal, now)?
            .finish)
    }

    fn wl_dirty_pages(&self) -> usize {
        self.dirty_pages()
    }

    fn foreground_busy(&self) -> SimDuration {
        self.disk().metrics().normal.busy_time
    }
}
