//! Workload trace recording and replay.
//!
//! §6.1 of the paper weighs trace replay against synthetic generation
//! and settles on Filebench because public traces "did not contain
//! sufficient information" (notably which files are *not* accessed) and
//! cannot be re-parameterized. This module provides the complementary
//! capability for the simulator: any generated workload can be recorded
//! as a trace — including the full file population, so untouched files
//! are represented — and replayed bit-for-bit later, against any
//! filesystem implementing [`WorkloadFs`].
//!
//! The format is a line-oriented text file:
//!
//! ```text
//! duet-trace v1
//! file <index> <size_bytes>        # population records
//! op <t_ns> <kind> <file> <len>    # operation records, kinds below
//! ```
//!
//! Kinds: `read`, `append_log`, `append`, `owrite <offset>`, `replace`.

use crate::fsops::WorkloadFs;
use sim_core::{InodeNr, SimError, SimInstant, SimResult};

/// One recorded operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceOp {
    /// Whole-file read.
    Read {
        /// File slot.
        file: usize,
    },
    /// Append to the shared log.
    AppendLog {
        /// Bytes appended.
        len: u64,
    },
    /// Append to a data file.
    Append {
        /// File slot.
        file: usize,
        /// Bytes appended.
        len: u64,
    },
    /// Overwrite a region of a file.
    Overwrite {
        /// File slot.
        file: usize,
        /// Byte offset.
        offset: u64,
        /// Bytes written.
        len: u64,
    },
    /// Delete and re-create at the same size.
    Replace {
        /// File slot.
        file: usize,
    },
}

/// A recorded workload: the file population plus the timed op stream.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    /// Initial file sizes, by slot.
    pub files: Vec<u64>,
    /// Operations with their issue times.
    pub ops: Vec<(SimInstant, TraceOp)>,
}

impl Trace {
    /// Serializes to the text format.
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("duet-trace v1\n");
        for (i, size) in self.files.iter().enumerate() {
            let _ = writeln!(out, "file {i} {size}");
        }
        for (t, op) in &self.ops {
            let t = t.as_nanos();
            let _ = match op {
                TraceOp::Read { file } => writeln!(out, "op {t} read {file} 0"),
                TraceOp::AppendLog { len } => writeln!(out, "op {t} append_log 0 {len}"),
                TraceOp::Append { file, len } => writeln!(out, "op {t} append {file} {len}"),
                TraceOp::Overwrite { file, offset, len } => {
                    writeln!(out, "op {t} owrite {file} {len} {offset}")
                }
                TraceOp::Replace { file } => writeln!(out, "op {t} replace {file} 0"),
            };
        }
        out
    }

    /// Parses the text format.
    pub fn from_text(text: &str) -> SimResult<Trace> {
        let bad = |line: &str| SimError::InvalidArgument(format!("bad trace line: {line}"));
        let mut lines = text.lines();
        match lines.next() {
            Some("duet-trace v1") => {}
            _ => return Err(SimError::InvalidArgument("missing trace header".into())),
        }
        let mut trace = Trace::default();
        for line in lines {
            // `#` starts a comment only at line start or after
            // whitespace; a mid-token `#` (`file 3 40#0`) would
            // otherwise silently truncate into a different valid
            // record, so it is a parse error instead.
            let line = match line.find('#') {
                None => line.trim(),
                Some(pos) if pos == 0 || line[..pos].ends_with(|c: char| c.is_whitespace()) => {
                    line[..pos].trim()
                }
                Some(_) => return Err(bad(line.trim())),
            };
            if line.is_empty() {
                continue;
            }
            let tok: Vec<&str> = line.split_whitespace().collect();
            match tok.as_slice() {
                ["file", idx, size] => {
                    let idx: usize = idx.parse().map_err(|_| bad(line))?;
                    if idx != trace.files.len() {
                        return Err(bad(line));
                    }
                    trace.files.push(size.parse().map_err(|_| bad(line))?);
                }
                ["op", t, kind, file, len, rest @ ..] => {
                    let t = SimInstant::from_nanos(t.parse().map_err(|_| bad(line))?);
                    let file: usize = file.parse().map_err(|_| bad(line))?;
                    let len: u64 = len.parse().map_err(|_| bad(line))?;
                    let op = match (*kind, rest) {
                        ("read", []) => TraceOp::Read { file },
                        ("append_log", []) => TraceOp::AppendLog { len },
                        ("append", []) => TraceOp::Append { file, len },
                        ("owrite", [offset]) => TraceOp::Overwrite {
                            file,
                            offset: offset.parse().map_err(|_| bad(line))?,
                            len,
                        },
                        ("replace", []) => TraceOp::Replace { file },
                        _ => return Err(bad(line)),
                    };
                    trace.ops.push((t, op));
                }
                _ => return Err(bad(line)),
            }
        }
        Ok(trace)
    }
}

/// Replays a trace against a filesystem. The player owns the file
/// handles (population happens in [`TracePlayer::setup`]) and exposes
/// the same next-op/run-op interface as the live generator.
#[derive(Debug)]
pub struct TracePlayer {
    trace: Trace,
    cursor: usize,
    handles: Vec<InodeNr>,
    log_ino: Option<InodeNr>,
    replace_counter: u64,
}

impl TracePlayer {
    /// Creates a player for `trace`.
    pub fn new(trace: Trace) -> Self {
        TracePlayer {
            trace,
            cursor: 0,
            handles: Vec::new(),
            log_ino: None,
            replace_counter: 0,
        }
    }

    /// Populates the file set on `fs` (no simulated I/O charged).
    pub fn setup(&mut self, fs: &mut dyn WorkloadFs) -> SimResult<()> {
        self.handles.clear();
        for (i, &size) in self.trace.files.iter().enumerate() {
            let ino = fs.wl_populate(&format!("tr_file_{i:06}"), size.max(1))?;
            self.handles.push(ino);
        }
        self.log_ino = Some(fs.wl_populate("tr_weblog", 16 * 1024)?);
        Ok(())
    }

    /// Scheduled time of the next operation, if any remain.
    pub fn next_op_time(&self) -> Option<SimInstant> {
        self.trace.ops.get(self.cursor).map(|(t, _)| *t)
    }

    /// Executes the next operation at `now`, returning its completion
    /// time.
    ///
    /// # Panics
    ///
    /// Fails if [`TracePlayer::setup`] was not called; panics if the
    /// trace is exhausted.
    pub fn run_op(&mut self, fs: &mut dyn WorkloadFs, now: SimInstant) -> SimResult<SimInstant> {
        let (_, op) = self.trace.ops[self.cursor];
        self.cursor += 1;
        let log = self
            .log_ino
            .ok_or(SimError::InvalidArgument("trace player not set up".into()))?;
        match op {
            TraceOp::Read { file } => {
                let ino = self.handles[file];
                let size = fs.wl_size(ino)?;
                fs.wl_read(ino, 0, size.max(1), now)
            }
            TraceOp::AppendLog { len } => fs.wl_append(log, len, now),
            TraceOp::Append { file, len } => fs.wl_append(self.handles[file], len, now),
            TraceOp::Overwrite { file, offset, len } => {
                fs.wl_write(self.handles[file], offset, len, now)
            }
            TraceOp::Replace { file } => {
                let ino = self.handles[file];
                let size = fs.wl_size(ino)?.max(1);
                fs.wl_delete(ino)?;
                self.replace_counter += 1;
                let new = fs.wl_create(&format!("tr_repl_{:06}", self.replace_counter))?;
                self.handles[file] = new;
                fs.wl_write(new, 0, size, now)
            }
        }
    }

    /// Remaining operations.
    pub fn remaining(&self) -> usize {
        self.trace.ops.len() - self.cursor
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_btrfs::BtrfsSim;
    use sim_core::{DeviceId, PAGE_SIZE};
    use sim_disk::{Disk, HddModel};

    fn sample_trace() -> Trace {
        Trace {
            files: vec![8 * PAGE_SIZE, 4 * PAGE_SIZE],
            ops: vec![
                (SimInstant::from_nanos(0), TraceOp::Read { file: 0 }),
                (
                    SimInstant::from_nanos(1_000_000),
                    TraceOp::AppendLog { len: 16384 },
                ),
                (
                    SimInstant::from_nanos(2_000_000),
                    TraceOp::Overwrite {
                        file: 1,
                        offset: 4096,
                        len: 4096,
                    },
                ),
                (
                    SimInstant::from_nanos(3_000_000),
                    TraceOp::Append { file: 0, len: 8192 },
                ),
                (
                    SimInstant::from_nanos(4_000_000),
                    TraceOp::Replace { file: 1 },
                ),
            ],
        }
    }

    #[test]
    fn text_roundtrip() {
        let t = sample_trace();
        let text = t.to_text();
        let back = Trace::from_text(&text).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Trace::from_text("not a trace").is_err());
        assert!(
            Trace::from_text("duet-trace v1\nfile 1 100").is_err(),
            "gap in indices"
        );
        assert!(Trace::from_text("duet-trace v1\nop x read 0 0").is_err());
        assert!(Trace::from_text("duet-trace v1\nop 0 frobnicate 0 0").is_err());
        // Comments and blank lines are fine.
        let ok = Trace::from_text("duet-trace v1\n# hello\n\nfile 0 4096\n").unwrap();
        assert_eq!(ok.files, vec![4096]);
    }

    #[test]
    fn comment_only_at_line_start_or_after_whitespace() {
        // Trailing comment after whitespace: stripped.
        let ok = Trace::from_text("duet-trace v1\nfile 0 4096 # size in bytes\n").unwrap();
        assert_eq!(ok.files, vec![4096]);
        // Indented comment line: stripped.
        let ok = Trace::from_text("duet-trace v1\n  # indented\nfile 0 512\n").unwrap();
        assert_eq!(ok.files, vec![512]);
        // Mid-token `#` must NOT silently truncate `file 3 40#0` into
        // `file 3 40`; it is a parse error naming the line.
        let err = Trace::from_text("duet-trace v1\nfile 0 40#0\n").unwrap_err();
        let msg = format!("{err:?}");
        assert!(msg.contains("bad trace line"), "{msg}");
        assert!(msg.contains("40#0"), "{msg}");
        // Same for op records.
        assert!(Trace::from_text("duet-trace v1\nop 0 read 0#7 0\n").is_err());
    }

    #[test]
    fn replay_executes_every_op() {
        let t = sample_trace();
        let disk = Disk::new(Box::new(HddModel::sas_10k(1 << 14)));
        let mut fs = BtrfsSim::new(DeviceId(0), disk, 256);
        let mut player = TracePlayer::new(t.clone());
        player.setup(&mut fs).unwrap();
        let mut now = SimInstant::EPOCH;
        while let Some(sched) = player.next_op_time() {
            now = now.max(sched);
            now = player.run_op(&mut fs, now).unwrap();
        }
        assert_eq!(player.remaining(), 0);
        // The replace produced a fresh file; everything still readable.
        fs.check_consistency().unwrap();
        assert!(fs.disk().metrics().normal.blocks_read > 0);
        assert!(fs.dirty_pages() > 0, "writes are buffered");
    }

    #[test]
    fn replay_is_deterministic() {
        let t = sample_trace();
        let run = || {
            let disk = Disk::new(Box::new(HddModel::sas_10k(1 << 14)));
            let mut fs = BtrfsSim::new(DeviceId(0), disk, 256);
            let mut player = TracePlayer::new(t.clone());
            player.setup(&mut fs).unwrap();
            let mut now = SimInstant::EPOCH;
            while let Some(sched) = player.next_op_time() {
                now = now.max(sched);
                now = player.run_op(&mut fs, now).unwrap();
            }
            (now, fs.disk().metrics().normal.blocks_read)
        };
        assert_eq!(run(), run());
    }
}
