//! File-access distributions (§6.1.1 and Figure 1 of the paper).
//!
//! Filebench picks files uniformly by default, "which gives it high
//! coverage of the file system". The paper contrasts this with skewed
//! distributions extracted from the Microsoft Production Build Server
//! trace for three storage devices (Figure 1), where a small fraction
//! of the files receives most accesses. The trace itself is not
//! publicly available, so we synthesize Zipf-like distributions shaped
//! to Figure 1 (see [`ms_trace_weights`]); DESIGN.md records the
//! substitution.

use sim_core::rng::{zipf_weights, CdfSampler};
use sim_core::SimRng;

/// Which file-popularity distribution drives the workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DistKind {
    /// Filebench's default: uniform over the accessible files.
    Uniform,
    /// Skewed, shaped like one of the paper's three Microsoft trace
    /// devices (0, 1 or 2).
    MsTrace(u8),
}

/// Zipf exponents for the three synthetic "Microsoft trace devices".
///
/// Figure 1 shows three devices of varying skew, all far from uniform;
/// with these exponents the top 10 % of files receive roughly 60–90 %
/// of accesses, bracketing the figure's curves.
const MS_EXPONENTS: [f64; 3] = [1.2, 0.95, 1.5];

/// Access weights for a synthetic Microsoft-trace device.
///
/// # Panics
///
/// Panics if `device > 2`.
pub fn ms_trace_weights(n_files: usize, device: u8) -> Vec<f64> {
    assert!(device <= 2, "the paper extracts three devices");
    zipf_weights(n_files, MS_EXPONENTS[device as usize])
}

/// A file selector: maps RNG draws to indices into the accessible file
/// list.
#[derive(Debug, Clone)]
pub enum FileSelector {
    /// Uniform over `n` files.
    Uniform {
        /// Number of accessible files.
        n: usize,
    },
    /// Weighted by a precomputed CDF. The weights are assigned over a
    /// *shuffled* file order, so popularity is uncorrelated with inode
    /// order.
    Weighted {
        /// CDF sampler over `order.len()` ranks.
        sampler: CdfSampler,
        /// Rank → file index.
        order: Vec<usize>,
    },
}

impl FileSelector {
    /// Builds a selector for `n` accessible files.
    pub fn new(kind: DistKind, n: usize, rng: &mut SimRng) -> Self {
        assert!(n > 0, "no accessible files");
        match kind {
            DistKind::Uniform => FileSelector::Uniform { n },
            DistKind::MsTrace(dev) => {
                let weights = ms_trace_weights(n, dev);
                let mut order: Vec<usize> = (0..n).collect();
                rng.shuffle(&mut order);
                FileSelector::Weighted {
                    sampler: CdfSampler::new(&weights),
                    order,
                }
            }
        }
    }

    /// Draws a file index in `0..n`.
    pub fn pick(&self, rng: &mut SimRng) -> usize {
        match self {
            FileSelector::Uniform { n } => rng.gen_range(0, *n as u64) as usize,
            FileSelector::Weighted { sampler, order } => order[sampler.sample(rng)],
        }
    }

    /// Number of selectable files.
    pub fn len(&self) -> usize {
        match self {
            FileSelector::Uniform { n } => *n,
            FileSelector::Weighted { order, .. } => order.len(),
        }
    }

    /// Returns `true` if no file is selectable (never for a constructed
    /// selector).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Cumulative access share of the most-popular `top_frac` of files —
/// the quantity Figure 1 plots. Weights need not be normalized.
pub fn cdf_at(weights: &[f64], top_frac: f64) -> f64 {
    let mut sorted: Vec<f64> = weights.to_vec();
    sorted.sort_by(|a, b| b.total_cmp(a));
    let total: f64 = sorted.iter().sum();
    let k = ((sorted.len() as f64 * top_frac).round() as usize).min(sorted.len());
    let top: f64 = sorted[..k].iter().sum();
    if total > 0.0 {
        top / total
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ms_devices_are_skewed_unlike_uniform() {
        let n = 10_000;
        for dev in 0..3u8 {
            let w = ms_trace_weights(n, dev);
            let share = cdf_at(&w, 0.1);
            assert!(
                share > 0.55,
                "device {dev}: top 10% of files get {share:.2} of accesses"
            );
        }
        // Uniform: top 10% gets exactly 10%.
        let u = vec![1.0; n];
        assert!((cdf_at(&u, 0.1) - 0.1).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "three devices")]
    fn bad_device_rejected() {
        let _ = ms_trace_weights(10, 3);
    }

    #[test]
    fn uniform_selector_covers_all_files() {
        let mut rng = SimRng::new(1);
        let sel = FileSelector::new(DistKind::Uniform, 50, &mut rng);
        let mut seen = [false; 50];
        for _ in 0..5_000 {
            seen[sel.pick(&mut rng)] = true;
        }
        assert!(seen.iter().all(|&s| s), "uniform covers the file set");
    }

    #[test]
    fn weighted_selector_is_skewed() {
        let mut rng = SimRng::new(2);
        let sel = FileSelector::new(DistKind::MsTrace(2), 1000, &mut rng);
        let mut counts = vec![0u32; 1000];
        let n = 50_000;
        for _ in 0..n {
            counts[sel.pick(&mut rng)] += 1;
        }
        let mut sorted = counts.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        let top100: u32 = sorted[..100].iter().sum();
        assert!(
            top100 as f64 / n as f64 > 0.6,
            "top 10% of files got {:.2}",
            top100 as f64 / n as f64
        );
        assert_eq!(sel.len(), 1000);
        assert!(!sel.is_empty());
    }

    #[test]
    fn weighted_popularity_decoupled_from_index() {
        // The shuffle must prevent the hottest file always being #0.
        let mut hottest = Vec::new();
        for seed in 0..5 {
            let mut rng = SimRng::new(seed);
            let sel = FileSelector::new(DistKind::MsTrace(0), 100, &mut rng);
            let mut counts = vec![0u32; 100];
            for _ in 0..10_000 {
                counts[sel.pick(&mut rng)] += 1;
            }
            let h = counts
                .iter()
                .enumerate()
                .max_by_key(|(_, &c)| c)
                .map(|(i, _)| i)
                .unwrap();
            hottest.push(h);
        }
        hottest.dedup();
        assert!(hottest.len() > 1, "hot file varies with seed: {hottest:?}");
    }
}
