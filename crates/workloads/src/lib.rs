//! Filebench-style foreground workload generation (§6.1 of the paper).
//!
//! The paper drives its evaluation with Filebench, varied along three
//! axes (§6.1.1):
//!
//! - **data overlap** with maintenance work — here the `coverage`
//!   fraction of the file set the workload may touch, plus the uniform
//!   vs Microsoft-trace-shaped popularity distributions of Figure 1
//!   ([`distribution`]);
//! - **read-write ratio** — the three personalities webserver (10:1),
//!   webproxy (4:1) and fileserver (1:2) ([`personality`]);
//! - **workload I/O rate** — a feedback throttle that spaces operations
//!   to hit a target device utilization, mirroring the paper's
//!   profile-then-throttle methodology (§6.1.2) ([`workload`]).
//!
//! [`fsops::WorkloadFs`] abstracts the two simulated filesystems so the
//! same personalities run on the Btrfs model (Figures 2–8, Table 5) and
//! the F2fs model (Table 6).

pub mod distribution;
pub mod fsops;
pub mod personality;
pub mod trace;
pub mod workload;

pub use distribution::{cdf_at, ms_trace_weights, DistKind, FileSelector};
pub use fsops::WorkloadFs;
pub use personality::{Personality, WorkloadOp};
pub use trace::{Trace, TraceOp, TracePlayer};
pub use workload::{
    populate_fileset, FileInfo, FileSetConfig, Workload, WorkloadConfig, WorkloadStats,
};
