//! The workload generator: file set population, operation execution and
//! utilization throttling.
//!
//! §6.1.2 of the paper: "We profiled each Filebench personality with
//! different levels of throttling (and no maintenance load) to achieve
//! a given device utilization, and report results for utilization
//! values ranging from 0-100%". Here the profiling is continuous: the
//! generator measures the device busy time each operation adds (an
//! exponential moving average) and spaces operations so that
//! `busy/elapsed` converges to the target utilization.

use crate::distribution::{DistKind, FileSelector};
use crate::fsops::WorkloadFs;
use crate::personality::{Personality, WorkloadOp};
use crate::trace::{Trace, TraceOp};
use sim_core::stats::OnlineStats;
use sim_core::{InodeNr, SimDuration, SimInstant, SimResult, SimRng, PAGE_SIZE};

/// File-set shape (§6.1.3 uses 50 GB of data; scaled-down experiments
/// shrink `num_files`).
#[derive(Debug, Clone, Copy)]
pub struct FileSetConfig {
    /// Number of data files.
    pub num_files: usize,
    /// Mean file size in bytes (log-normal-ish distribution).
    pub mean_file_bytes: u64,
    /// Log-space standard deviation of file sizes.
    pub sigma: f64,
}

impl Default for FileSetConfig {
    fn default() -> Self {
        FileSetConfig {
            num_files: 1000,
            mean_file_bytes: 128 * 1024,
            sigma: 0.5,
        }
    }
}

/// Workload parameters.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadConfig {
    /// Operation mix.
    pub personality: Personality,
    /// File-popularity distribution.
    pub dist: DistKind,
    /// Fraction of the file set the workload may touch (the paper's
    /// "data overlap" knob; 1.0 = whole filesystem).
    pub coverage: f64,
    /// Target foreground device utilization in `[0, 1]`; `>= 1.0` runs
    /// unthrottled.
    pub target_util: f64,
    /// Operations issued back to back before the throttle inserts an
    /// idle gap. Filebench worker threads run flowlets of operations
    /// and then sleep; bursty arrival is what leaves the idle windows
    /// that CFQ's idle class exploits. With per-op spacing instead, the
    /// gaps would shrink below the idle grace period at moderate
    /// utilization and maintenance would starve unrealistically.
    pub burst: u32,
    /// Append chunk size in bytes.
    pub append_bytes: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            personality: Personality::WebServer,
            dist: DistKind::Uniform,
            coverage: 1.0,
            target_util: 0.5,
            burst: 8,
            append_bytes: 16 * 1024,
            seed: 42,
        }
    }
}

/// A populated file.
#[derive(Debug, Clone, Copy)]
pub struct FileInfo {
    /// Current inode (changes when the file is replaced).
    pub ino: InodeNr,
    /// Size in bytes.
    pub size: u64,
}

/// Operation/byte counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct WorkloadStats {
    /// Operations executed.
    pub ops: u64,
    /// Bytes read.
    pub bytes_read: u64,
    /// Bytes written.
    pub bytes_written: u64,
    /// Files deleted and re-created.
    pub files_replaced: u64,
}

/// Populates the experimental file set (§6.1.3) without a workload:
/// log-normal file sizes around the configured mean, already on disk.
/// `seed` controls the sizes; using the same seed as a
/// [`WorkloadConfig`] reproduces the same layout.
pub fn populate_fileset(
    fs: &mut dyn WorkloadFs,
    fileset: FileSetConfig,
    seed: u64,
) -> SimResult<Vec<FileInfo>> {
    assert!(fileset.num_files > 0, "empty file set");
    let mut rng = SimRng::new(seed);
    let mu = (fileset.mean_file_bytes as f64).ln() - fileset.sigma * fileset.sigma / 2.0;
    let mut files = Vec::with_capacity(fileset.num_files);
    for i in 0..fileset.num_files {
        let size =
            rng.lognormal(mu, fileset.sigma)
                .clamp(PAGE_SIZE as f64, (fileset.mean_file_bytes * 16) as f64) as u64;
        let ino = fs.wl_populate(&format!("wl_file_{i:06}"), size)?;
        files.push(FileInfo { ino, size });
    }
    Ok(files)
}

/// The foreground workload driver.
#[derive(Clone)]
pub struct Workload {
    cfg: WorkloadConfig,
    /// Calibrated operation mix (byte ratios solved for this file set).
    mix: Vec<(WorkloadOp, f64)>,
    files: Vec<FileInfo>,
    /// Indices of files the workload may touch (coverage subset).
    accessible: Vec<usize>,
    selector: FileSelector,
    rng: SimRng,
    log_ino: InodeNr,
    next_issue: SimInstant,
    /// EMA of device busy nanoseconds added per operation.
    busy_per_op_ema: f64,
    /// Whether `busy_per_op_ema` was seeded from a profiling pass
    /// (§6.1.2) instead of the first operation's measurement.
    profiled: bool,
    prev_busy: SimDuration,
    /// Operations issued in the current burst.
    in_burst: u32,
    /// Issue time of the current burst's first operation (the schedule
    /// anchor: throttling is open-loop, like replaying the profiled
    /// Filebench schedule of §6.1.2, so background interference does
    /// not silently lower the achieved utilization).
    burst_start: SimInstant,
    /// Per-operation latency (issue → completion), in milliseconds —
    /// the quantity §6.1.3 reports to show maintenance has
    /// "insignificant impact on workload latency".
    latency_ms: OnlineStats,
    /// Optional trace recording (see [`crate::trace`]).
    recorder: Option<Trace>,
    name_counter: u64,
    stats: WorkloadStats,
}

impl sim_core::snapshot::StateDigest for Workload {
    fn digest_state(&self, d: &mut sim_core::snapshot::Digest) {
        d.write_u32(match self.cfg.personality {
            Personality::WebServer => 0,
            Personality::WebProxy => 1,
            Personality::FileServer => 2,
        });
        match self.cfg.dist {
            DistKind::Uniform => d.write_u32(0),
            DistKind::MsTrace(dev) => {
                d.write_u32(1);
                d.write_u32(dev as u32);
            }
        }
        d.write_f64(self.cfg.coverage);
        d.write_f64(self.cfg.target_util);
        d.write_u32(self.cfg.burst);
        d.write_u64(self.cfg.append_bytes);
        d.write_u64(self.cfg.seed);
        d.write_usize(self.mix.len());
        for &(op, w) in &self.mix {
            d.write_u32(op as u32);
            d.write_f64(w);
        }
        d.write_usize(self.files.len());
        for f in &self.files {
            d.write_u64(f.ino.raw());
            d.write_u64(f.size);
        }
        d.write_usize(self.accessible.len());
        for &i in &self.accessible {
            d.write_usize(i);
        }
        // The selector is immutable after setup; its identity is pinned
        // by the rank order (the sampler CDF is a pure function of the
        // distribution kind and file count, both digested above).
        match &self.selector {
            FileSelector::Uniform { n } => {
                d.write_u32(0);
                d.write_usize(*n);
            }
            FileSelector::Weighted { order, .. } => {
                d.write_u32(1);
                d.write_usize(order.len());
                for &r in order {
                    d.write_usize(r);
                }
            }
        }
        self.rng.digest_state(d);
        d.write_u64(self.log_ino.raw());
        d.write_u64(self.next_issue.as_nanos());
        d.write_f64(self.busy_per_op_ema);
        d.write_bool(self.profiled);
        d.write_u64(self.prev_busy.as_nanos());
        d.write_u32(self.in_burst);
        d.write_u64(self.burst_start.as_nanos());
        d.write_u64(self.latency_ms.count());
        d.write_f64(self.latency_ms.mean());
        d.write_f64(self.latency_ms.variance());
        d.write_bool(self.recorder.is_some());
        if let Some(t) = &self.recorder {
            d.write_str(&t.to_text());
        }
        d.write_u64(self.name_counter);
        d.write_u64(self.stats.ops);
        d.write_u64(self.stats.bytes_read);
        d.write_u64(self.stats.bytes_written);
        d.write_u64(self.stats.files_replaced);
    }
}

impl Workload {
    /// Populates the file set on `fs` and builds the workload. The
    /// coverage subset is chosen uniformly at random.
    pub fn setup(
        fs: &mut dyn WorkloadFs,
        cfg: WorkloadConfig,
        fileset: FileSetConfig,
    ) -> SimResult<Workload> {
        assert!(fileset.num_files > 0, "empty file set");
        assert!(
            cfg.coverage > 0.0 && cfg.coverage <= 1.0,
            "coverage must be in (0, 1]"
        );
        let files = populate_fileset(fs, fileset, cfg.seed)?;
        let mut rng = SimRng::new(cfg.seed.wrapping_add(0x5EED));
        let log_ino = fs.wl_populate("wl_weblog", cfg.append_bytes)?;
        // Coverage subset.
        let mut order: Vec<usize> = (0..files.len()).collect();
        rng.shuffle(&mut order);
        let k = ((files.len() as f64 * cfg.coverage).round() as usize).clamp(1, files.len());
        let accessible: Vec<usize> = order[..k].to_vec();
        let selector = FileSelector::new(cfg.dist, accessible.len(), &mut rng);
        let mix = cfg
            .personality
            .mix_for(fileset.mean_file_bytes as f64, cfg.append_bytes as f64);
        Ok(Workload {
            cfg,
            mix,
            files,
            accessible,
            selector,
            rng,
            log_ino,
            next_issue: SimInstant::EPOCH,
            busy_per_op_ema: 0.0,
            profiled: false,
            prev_busy: SimDuration::ZERO,
            in_burst: 0,
            burst_start: SimInstant::EPOCH,
            latency_ms: OnlineStats::new(),
            recorder: None,
            name_counter: 0,
            stats: WorkloadStats::default(),
        })
    }

    /// Seeds the throttle's busy-per-op estimate from a profiling pass
    /// (§6.1.2: personalities are profiled without maintenance load and
    /// the measured schedule is replayed). A seeded estimate replaces
    /// the first operation's raw measurement as the EMA's initial
    /// condition; later operations blend into it as usual. Non-finite
    /// or non-positive values are ignored.
    pub fn seed_busy_per_op(&mut self, ns_per_op: f64) {
        if ns_per_op.is_finite() && ns_per_op > 0.0 {
            self.busy_per_op_ema = ns_per_op;
            self.profiled = true;
        }
    }

    /// Overrides the utilization target. The target is read only by the
    /// per-operation throttle — never during [`Workload::setup`] — so a
    /// workload forked from a shared setup snapshot can be retargeted
    /// per sweep cell without perturbing the setup-time RNG streams.
    pub fn set_target_util(&mut self, target_util: f64) {
        self.cfg.target_util = target_util;
    }

    /// The populated files (for overlap bookkeeping by experiments).
    pub fn files(&self) -> &[FileInfo] {
        &self.files
    }

    /// Indices of accessible (coverage-subset) files.
    pub fn accessible(&self) -> &[usize] {
        &self.accessible
    }

    /// Counters.
    pub fn stats(&self) -> WorkloadStats {
        self.stats
    }

    /// When the next operation is due.
    pub fn next_op_time(&self) -> SimInstant {
        self.next_issue
    }

    /// Executes one operation at `now` (must be `>= next_op_time()`),
    /// returning its completion time and scheduling the next operation
    /// according to the utilization target.
    pub fn run_op(&mut self, fs: &mut dyn WorkloadFs, now: SimInstant) -> SimResult<SimInstant> {
        if self.in_burst == 0 {
            self.burst_start = now;
        }
        let op = Personality::draw_from_mix(&self.mix, &mut self.rng);
        let slot = self.accessible[self.selector.pick(&mut self.rng)];
        if let Some(trace) = self.recorder.as_mut() {
            let rec = match op {
                WorkloadOp::ReadWholeFile => TraceOp::Read { file: slot },
                WorkloadOp::AppendLog => TraceOp::AppendLog {
                    len: self.cfg.append_bytes,
                },
                WorkloadOp::AppendFile => TraceOp::Append {
                    file: slot,
                    len: self.cfg.append_bytes,
                },
                // Offsets for region overwrites are drawn inside
                // `execute`; record a whole-file overwrite of equal
                // volume (replay fidelity is at the op/byte level).
                WorkloadOp::OverwriteWholeFile | WorkloadOp::OverwriteRegion => {
                    TraceOp::Overwrite {
                        file: slot,
                        offset: 0,
                        len: self.files[slot].size.max(1),
                    }
                }
                WorkloadOp::ReplaceFile => TraceOp::Replace { file: slot },
            };
            trace.ops.push((now, rec));
        }
        let finish = self.execute(fs, op, slot, now)?;
        self.latency_ms
            .push(finish.saturating_duration_since(now).as_millis_f64());
        self.stats.ops += 1;
        // Measure the busy time this op added and update the EMA.
        let busy = fs.foreground_busy();
        let delta = busy.saturating_sub(self.prev_busy).as_nanos() as f64;
        self.prev_busy = busy;
        self.busy_per_op_ema = if self.stats.ops <= 1 && !self.profiled {
            delta
        } else {
            0.9 * self.busy_per_op_ema + 0.1 * delta
        };
        // Throttle at burst boundaries: `burst` operations run back to
        // back, then one idle gap. The next burst is anchored to this
        // burst's first *issue* time (open-loop schedule), and the gap
        // is jittered ±70 % — real inter-burst think times vary, which
        // is what leaves the occasional longer idle window that the CFQ
        // idle class can use even at high utilization.
        self.next_issue = if self.cfg.target_util >= 0.999 {
            finish
        } else {
            self.in_burst += 1;
            if self.in_burst < self.cfg.burst.max(1) {
                finish
            } else {
                self.in_burst = 0;
                let u = self.cfg.target_util.max(1e-3);
                let period_ns = self.cfg.burst.max(1) as f64 * self.busy_per_op_ema / u;
                let gap_ns = period_ns - self.cfg.burst.max(1) as f64 * self.busy_per_op_ema;
                let jitter = 0.3 + 1.4 * self.rng.gen_f64();
                let next = self.burst_start
                    + SimDuration::from_nanos(
                        (period_ns - gap_ns + gap_ns * jitter).max(0.0) as u64
                    );
                // If the schedule has slipped (overload), continue
                // immediately rather than accumulating debt.
                next.max(now)
            }
        };
        Ok(finish)
    }

    fn execute(
        &mut self,
        fs: &mut dyn WorkloadFs,
        op: WorkloadOp,
        slot: usize,
        now: SimInstant,
    ) -> SimResult<SimInstant> {
        let file = self.files[slot];
        match op {
            WorkloadOp::ReadWholeFile => {
                let f = fs.wl_read(file.ino, 0, file.size, now)?;
                self.stats.bytes_read += file.size;
                Ok(f)
            }
            WorkloadOp::AppendLog => {
                let f = fs.wl_append(self.log_ino, self.cfg.append_bytes, now)?;
                self.stats.bytes_written += self.cfg.append_bytes;
                Ok(f)
            }
            WorkloadOp::AppendFile => {
                let f = fs.wl_append(file.ino, self.cfg.append_bytes, now)?;
                self.stats.bytes_written += self.cfg.append_bytes;
                self.files[slot].size += self.cfg.append_bytes;
                Ok(f)
            }
            WorkloadOp::OverwriteWholeFile => {
                let f = fs.wl_write(file.ino, 0, file.size, now)?;
                self.stats.bytes_written += file.size;
                Ok(f)
            }
            WorkloadOp::OverwriteRegion => {
                // Half the file at a random page-aligned offset.
                let pages = sim_core::ids::pages_for_bytes(file.size).max(1);
                let region_pages = (pages / 2).max(1);
                let max_start = pages - region_pages;
                let start_page = if max_start == 0 {
                    0
                } else {
                    self.rng.gen_range(0, max_start + 1)
                };
                let len = region_pages * PAGE_SIZE;
                let f = fs.wl_write(file.ino, start_page * PAGE_SIZE, len, now)?;
                self.stats.bytes_written += len;
                Ok(f)
            }
            WorkloadOp::ReplaceFile => {
                fs.wl_delete(file.ino)?;
                self.name_counter += 1;
                let name = format!("wl_repl_{:06}", self.name_counter);
                let ino = fs.wl_create(&name)?;
                let f = fs.wl_write(ino, 0, file.size, now)?;
                self.files[slot].ino = ino;
                self.stats.bytes_written += file.size;
                self.stats.files_replaced += 1;
                Ok(f)
            }
        }
    }

    /// Per-operation latency statistics (milliseconds).
    pub fn latency_ms(&self) -> &OnlineStats {
        &self.latency_ms
    }

    /// Starts recording executed operations into a [`Trace`] (the file
    /// population is captured immediately; ops accumulate as they run).
    pub fn enable_recording(&mut self) {
        self.recorder = Some(Trace {
            files: self.files.iter().map(|f| f.size).collect(),
            ops: Vec::new(),
        });
    }

    /// Takes the recorded trace, ending recording.
    pub fn take_trace(&mut self) -> Option<Trace> {
        self.recorder.take()
    }

    /// Achieved foreground utilization since the epoch.
    pub fn achieved_util(&self, fs: &dyn WorkloadFs, now: SimInstant) -> f64 {
        let elapsed = now.saturating_duration_since(SimInstant::EPOCH);
        if elapsed.is_zero() {
            0.0
        } else {
            fs.foreground_busy().as_secs_f64() / elapsed.as_secs_f64()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_btrfs::BtrfsSim;
    use sim_core::DeviceId;
    use sim_disk::{Disk, HddModel};

    fn btrfs(cap: u64, cache: usize) -> BtrfsSim {
        BtrfsSim::new(
            DeviceId(0),
            Disk::new(Box::new(HddModel::sas_10k(cap))),
            cache,
        )
    }

    fn small_fileset() -> FileSetConfig {
        FileSetConfig {
            num_files: 50,
            mean_file_bytes: 64 * 1024,
            sigma: 0.4,
        }
    }

    #[test]
    fn setup_populates_files() {
        let mut fs = btrfs(1 << 16, 1024);
        let wl = Workload::setup(&mut fs, WorkloadConfig::default(), small_fileset()).unwrap();
        assert_eq!(wl.files().len(), 50);
        assert_eq!(wl.accessible().len(), 50, "full coverage");
        assert!(fs.allocated_blocks() > 0);
        // Sizes average near the configured mean.
        let mean: f64 =
            wl.files().iter().map(|f| f.size as f64).sum::<f64>() / wl.files().len() as f64;
        assert!((32_000.0..128_000.0).contains(&mean), "mean size {mean}");
    }

    #[test]
    fn coverage_limits_accessible_files() {
        let mut fs = btrfs(1 << 16, 1024);
        let cfg = WorkloadConfig {
            coverage: 0.25,
            ..Default::default()
        };
        let mut wl = Workload::setup(&mut fs, cfg, small_fileset()).unwrap();
        assert_eq!(wl.accessible().len(), 13); // round(50 * 0.25)
                                               // Ops only touch the accessible subset.
        let allowed: std::collections::HashSet<usize> = wl.accessible().iter().copied().collect();
        let before: Vec<InodeNr> = wl.files().iter().map(|f| f.ino).collect();
        let mut t = SimInstant::EPOCH;
        for _ in 0..200 {
            t = wl.run_op(&mut fs, t.max(wl.next_op_time())).unwrap();
        }
        for (i, f) in wl.files().iter().enumerate() {
            if !allowed.contains(&i) {
                assert_eq!(f.ino, before[i], "untouched file changed identity");
            }
        }
    }

    #[test]
    fn profiled_seed_replaces_first_op_measurement() {
        let mut fs = btrfs(1 << 16, 1024);
        let mut wl = Workload::setup(&mut fs, WorkloadConfig::default(), small_fileset()).unwrap();
        wl.seed_busy_per_op(f64::NAN);
        wl.seed_busy_per_op(-1.0);
        assert!(!wl.profiled, "invalid seeds ignored");
        let seed_ns = 1_000_000.0;
        wl.seed_busy_per_op(seed_ns);
        assert!(wl.profiled);
        assert_eq!(wl.busy_per_op_ema, seed_ns);
        wl.run_op(&mut fs, SimInstant::EPOCH).unwrap();
        // The first op blends into the seeded EMA (0.9 weight) instead
        // of overwriting it with its raw measurement.
        assert!(
            wl.busy_per_op_ema >= 0.9 * seed_ns,
            "ema {} lost the profile seed",
            wl.busy_per_op_ema
        );
    }

    #[test]
    fn throttle_converges_to_target_utilization() {
        let mut fs = btrfs(1 << 18, 512);
        let cfg = WorkloadConfig {
            target_util: 0.5,
            personality: Personality::WebServer,
            ..Default::default()
        };
        let mut wl = Workload::setup(
            &mut fs,
            cfg,
            FileSetConfig {
                num_files: 200,
                ..small_fileset()
            },
        )
        .unwrap();
        let mut now = SimInstant::EPOCH;
        for _ in 0..3000 {
            now = now.max(wl.next_op_time());
            let f = wl.run_op(&mut fs, now).unwrap();
            now = f.max(now);
            // Flush dirt so steady state includes writeback cost.
            if fs.dirty_pages() > 512 {
                fs.background_writeback(512, sim_disk::IoClass::Normal, now)
                    .unwrap();
            }
        }
        // Advance to the scheduled time of the next op to account for
        // trailing idle gap.
        now = now.max(wl.next_op_time());
        let util = wl.achieved_util(&fs, now);
        assert!(
            (0.40..0.60).contains(&util),
            "achieved utilization {util:.3} vs target 0.5"
        );
    }

    #[test]
    fn throttle_leaves_burst_gaps() {
        // Gaps must appear at burst boundaries and be long enough for a
        // CFQ grace period to elapse — the idle windows maintenance
        // lives on.
        let mut fs = btrfs(1 << 17, 1024);
        let cfg = WorkloadConfig {
            target_util: 0.5,
            burst: 8,
            ..Default::default()
        };
        let mut wl = Workload::setup(
            &mut fs,
            cfg,
            FileSetConfig {
                num_files: 100,
                mean_file_bytes: 256 * 1024,
                sigma: 0.3,
            },
        )
        .unwrap();
        let mut now = SimInstant::EPOCH;
        let mut gaps = Vec::new();
        let mut last_finish = now;
        for i in 0..400 {
            now = now.max(wl.next_op_time());
            let sched = wl.next_op_time();
            if i > 16 && sched > last_finish {
                gaps.push(sched.duration_since(last_finish));
            }
            last_finish = wl.run_op(&mut fs, now).unwrap();
        }
        assert!(!gaps.is_empty(), "no idle gaps at 50% utilization");
        let long_gaps = gaps
            .iter()
            .filter(|g| **g >= sim_core::SimDuration::from_millis(4))
            .count();
        assert!(
            long_gaps * 2 >= gaps.len(),
            "most burst gaps should exceed a CFQ grace period: {long_gaps}/{}",
            gaps.len()
        );
    }

    #[test]
    fn unthrottled_runs_back_to_back() {
        let mut fs = btrfs(1 << 16, 512);
        let cfg = WorkloadConfig {
            target_util: 1.0,
            ..Default::default()
        };
        let mut wl = Workload::setup(&mut fs, cfg, small_fileset()).unwrap();
        let mut now = SimInstant::EPOCH;
        for _ in 0..500 {
            now = now.max(wl.next_op_time());
            now = wl.run_op(&mut fs, now).unwrap();
        }
        let util = wl.achieved_util(&fs, now);
        assert!(util > 0.95, "unthrottled utilization {util:.3}");
    }

    #[test]
    fn webserver_is_read_mostly_and_appends_to_log() {
        let mut fs = btrfs(1 << 16, 1024);
        let mut wl = Workload::setup(&mut fs, WorkloadConfig::default(), small_fileset()).unwrap();
        let mut now = SimInstant::EPOCH;
        for _ in 0..2000 {
            now = now.max(wl.next_op_time());
            now = wl.run_op(&mut fs, now).unwrap();
        }
        let s = wl.stats();
        let ratio = s.bytes_read as f64 / s.bytes_written.max(1) as f64;
        assert!((5.0..20.0).contains(&ratio), "r:w byte ratio {ratio:.1}");
        assert_eq!(s.files_replaced, 0, "webserver never replaces files");
    }

    #[test]
    fn fileserver_is_write_heavy() {
        let mut fs = btrfs(1 << 17, 1024);
        let cfg = WorkloadConfig {
            personality: Personality::FileServer,
            ..Default::default()
        };
        let mut wl = Workload::setup(&mut fs, cfg, small_fileset()).unwrap();
        let mut now = SimInstant::EPOCH;
        for _ in 0..2000 {
            now = now.max(wl.next_op_time());
            now = wl.run_op(&mut fs, now).unwrap();
            if fs.dirty_pages() > 2048 {
                fs.background_writeback(2048, sim_disk::IoClass::Normal, now)
                    .unwrap();
            }
        }
        let s = wl.stats();
        let ratio = s.bytes_read as f64 / s.bytes_written.max(1) as f64;
        assert!(ratio < 1.0, "fileserver r:w byte ratio {ratio:.2}");
        assert!(s.files_replaced > 0);
    }

    #[test]
    fn webproxy_replaces_files() {
        let mut fs = btrfs(1 << 17, 1024);
        let cfg = WorkloadConfig {
            personality: Personality::WebProxy,
            ..Default::default()
        };
        let mut wl = Workload::setup(&mut fs, cfg, small_fileset()).unwrap();
        let mut now = SimInstant::EPOCH;
        for _ in 0..1000 {
            now = now.max(wl.next_op_time());
            now = wl.run_op(&mut fs, now).unwrap();
        }
        let s = wl.stats();
        assert!(s.files_replaced > 0, "webproxy deletes and re-creates");
        let ratio = s.bytes_read as f64 / s.bytes_written.max(1) as f64;
        assert!((2.0..8.0).contains(&ratio), "r:w {ratio:.2}");
    }

    #[test]
    fn record_and_replay_round_trip() {
        // Record a short run, then replay the trace on a fresh
        // filesystem: the same operations and byte volumes execute.
        let mut fs = btrfs(1 << 16, 512);
        let cfg = WorkloadConfig {
            personality: Personality::WebProxy,
            target_util: 1.0,
            ..Default::default()
        };
        let mut wl = Workload::setup(&mut fs, cfg, small_fileset()).unwrap();
        wl.enable_recording();
        let mut now = SimInstant::EPOCH;
        for _ in 0..200 {
            now = now.max(wl.next_op_time());
            now = wl.run_op(&mut fs, now).unwrap();
        }
        let trace = wl.take_trace().expect("recording enabled");
        assert_eq!(trace.ops.len(), 200);
        assert_eq!(trace.files.len(), 50);
        // Serialize + parse + replay.
        let parsed = crate::trace::Trace::from_text(&trace.to_text()).unwrap();
        let mut fs2 = btrfs(1 << 16, 512);
        let mut player = crate::trace::TracePlayer::new(parsed);
        player.setup(&mut fs2).unwrap();
        let mut t = SimInstant::EPOCH;
        let mut replayed = 0;
        while let Some(sched) = player.next_op_time() {
            t = t.max(sched);
            t = player.run_op(&mut fs2, t).unwrap();
            replayed += 1;
        }
        assert_eq!(replayed, 200);
        assert!(fs2.disk().metrics().normal.blocks_read > 0);
    }

    #[test]
    fn works_on_f2fs_too() {
        let disk = Disk::new(Box::new(HddModel::sas_10k(1 << 16)));
        let mut fs = sim_f2fs::F2fsSim::new(DeviceId(1), disk, 1024, 512);
        let cfg = WorkloadConfig {
            personality: Personality::FileServer,
            ..Default::default()
        };
        let mut wl = Workload::setup(&mut fs, cfg, small_fileset()).unwrap();
        let mut now = SimInstant::EPOCH;
        for _ in 0..500 {
            now = now.max(wl.next_op_time());
            now = wl.run_op(&mut fs, now).unwrap();
            if fs.dirty_pages() > 1024 {
                fs.background_writeback(1024, sim_disk::IoClass::Normal, now)
                    .unwrap();
            }
        }
        assert!(wl.stats().bytes_written > 0);
        assert!(wl.stats().bytes_read > 0);
    }
}
