//! Filebench workload personalities (§6.1.1 of the paper).
//!
//! Three personalities drive the evaluation:
//!
//! - **webserver** — "a read-mostly workload with a 10:1 read-write
//!   ratio, with all write operations appending data to a single log
//!   file";
//! - **webproxy** — "more read-heavy, with read-write ratio of 4:1";
//!   its writes "mainly append data to files" but it also deletes and
//!   re-creates files, which breaks snapshot sharing (§6.2);
//! - **fileserver** — "a write-heavy workload, with a read-write ratio
//!   of 1:2"; it overwrites and deletes existing blocks, which is why
//!   it is the workload used for the F2fs GC experiments (§6.2).
//!
//! Each personality is described as a categorical mix over abstract
//! operations; the probabilities are chosen so the *byte* read:write
//! ratios match the paper's figures given the default mean file size.

use sim_core::SimRng;

/// The Filebench personality.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Personality {
    /// Read-mostly, 10:1, appends to one log file.
    WebServer,
    /// Read-heavy, 4:1, appends plus file replacement.
    WebProxy,
    /// Write-heavy, 1:2, whole-file overwrites, appends and replaces.
    FileServer,
}

/// One abstract workload operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadOp {
    /// Read a whole file.
    ReadWholeFile,
    /// Append a chunk to the shared log file.
    AppendLog,
    /// Append a chunk to a data file.
    AppendFile,
    /// Overwrite a random aligned region of a file.
    OverwriteRegion,
    /// Overwrite a file completely.
    OverwriteWholeFile,
    /// Delete a file and re-create it at the same size.
    ReplaceFile,
}

impl Personality {
    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Personality::WebServer => "webserver",
            Personality::WebProxy => "webproxy",
            Personality::FileServer => "fileserver",
        }
    }

    /// The paper's nominal read:write ratio, as (reads, writes).
    pub fn read_write_ratio(self) -> (u32, u32) {
        match self {
            Personality::WebServer => (10, 1),
            Personality::WebProxy => (4, 1),
            Personality::FileServer => (1, 2),
        }
    }

    /// Operation mix calibrated so the *byte-level* read:write ratio
    /// matches [`Personality::read_write_ratio`] for the given mean
    /// file size `s` and append chunk `a` (both in bytes).
    ///
    /// The mix shapes are fixed per personality (what kinds of writes
    /// occur); only the read/write balance is solved from the byte
    /// equation.
    pub fn mix_for(self, s: f64, a: f64) -> Vec<(WorkloadOp, f64)> {
        assert!(s > 0.0 && a > 0.0, "sizes must be positive");
        match self {
            // read p_r·s vs write p_a·a, target 10:1.
            Personality::WebServer => {
                let r = 10.0;
                // p_a = p_r·s/(r·a); normalize p_r + p_a = 1.
                let pr = 1.0 / (1.0 + s / (r * a));
                vec![
                    (WorkloadOp::ReadWholeFile, pr),
                    (WorkloadOp::AppendLog, 1.0 - pr),
                ]
            }
            // Fixed 10 % small appends; solve the replace probability
            // for a 4:1 byte ratio. Replacement (delete + re-create)
            // is what breaks snapshot sharing (§6.2).
            Personality::WebProxy => {
                let r = 4.0;
                let pa = 0.10;
                let prep = ((1.0 - pa) - r * pa * a / s) / (r + 1.0);
                let prep = prep.clamp(0.02, 0.5);
                vec![
                    (WorkloadOp::ReadWholeFile, 1.0 - pa - prep),
                    (WorkloadOp::ReplaceFile, prep),
                    (WorkloadOp::AppendFile, pa),
                ]
            }
            // Write-heavy: overwrites (whole and half-file), replaces
            // and small appends; solve the read probability for 1:2.
            Personality::FileServer => {
                let target = 0.5; // read bytes / write bytes
                let pa = 0.04;
                // Write-op shares (of the non-read, non-append mass)
                // and their byte factors relative to s.
                let shares = [
                    (WorkloadOp::OverwriteWholeFile, 0.3333, 1.0),
                    (WorkloadOp::OverwriteRegion, 0.4243, 0.5),
                    (WorkloadOp::ReplaceFile, 0.2424, 1.0),
                ];
                let ebpw: f64 = shares.iter().map(|(_, sh, f)| sh * f).sum();
                // p_r·s = target·[(1-p_r-pa)·ebpw·s + pa·a]
                let pr = (target * ebpw * (1.0 - pa) + target * pa * a / s) / (1.0 + target * ebpw);
                let pw = 1.0 - pr - pa;
                let mut mix = vec![(WorkloadOp::ReadWholeFile, pr)];
                for (op, sh, _) in shares {
                    mix.push((op, pw * sh));
                }
                mix.push((WorkloadOp::AppendFile, pa));
                mix
            }
        }
    }

    /// Draws one operation from a mix produced by
    /// [`Personality::mix_for`].
    pub fn draw_from_mix(mix: &[(WorkloadOp, f64)], rng: &mut SimRng) -> WorkloadOp {
        let total: f64 = mix.iter().map(|(_, w)| w).sum();
        let mut x = rng.gen_f64() * total;
        for &(op, w) in mix {
            if x < w {
                return op;
            }
            x -= w;
        }
        match mix.last() {
            Some(&(op, _)) => op,
            None => WorkloadOp::ReadWholeFile,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn implied_ratio(p: Personality, s: f64, a: f64) -> f64 {
        let mut r = 0.0;
        let mut w = 0.0;
        for &(op, prob) in &p.mix_for(s, a) {
            match op {
                WorkloadOp::ReadWholeFile => r += prob * s,
                WorkloadOp::AppendLog | WorkloadOp::AppendFile => w += prob * a,
                WorkloadOp::OverwriteWholeFile | WorkloadOp::ReplaceFile => w += prob * s,
                WorkloadOp::OverwriteRegion => w += prob * s * 0.5,
            }
        }
        r / w
    }

    #[test]
    fn mixes_are_normalized() {
        for p in [
            Personality::WebServer,
            Personality::WebProxy,
            Personality::FileServer,
        ] {
            let total: f64 = p.mix_for(131072.0, 16384.0).iter().map(|(_, w)| w).sum();
            assert!((total - 1.0).abs() < 1e-9, "{}: {total}", p.name());
        }
    }

    #[test]
    fn draw_follows_mix() {
        let mut rng = SimRng::new(3);
        let mix = Personality::WebServer.mix_for(131072.0, 16384.0);
        let pr = mix[0].1;
        let mut reads = 0u32;
        let n = 100_000;
        for _ in 0..n {
            if Personality::draw_from_mix(&mix, &mut rng) == WorkloadOp::ReadWholeFile {
                reads += 1;
            }
        }
        let frac = reads as f64 / n as f64;
        assert!((frac - pr).abs() < 0.01, "read fraction {frac} vs {pr}");
    }

    #[test]
    fn byte_ratios_match_paper_across_file_sizes() {
        for s in [64.0 * 1024.0, 128.0 * 1024.0, 512.0 * 1024.0] {
            let a = 16.0 * 1024.0;
            let web = implied_ratio(Personality::WebServer, s, a);
            assert!((9.0..11.0).contains(&web), "webserver {web} at s={s}");
            let proxy = implied_ratio(Personality::WebProxy, s, a);
            assert!((3.4..4.6).contains(&proxy), "webproxy {proxy} at s={s}");
            let file = implied_ratio(Personality::FileServer, s, a);
            assert!((0.4..0.6).contains(&file), "fileserver {file} at s={s}");
        }
    }

    #[test]
    fn names_and_ratios() {
        assert_eq!(Personality::WebServer.name(), "webserver");
        assert_eq!(Personality::FileServer.read_write_ratio(), (1, 2));
    }
}
