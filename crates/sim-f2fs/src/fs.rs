//! The log-structured filesystem: append-only writes, block
//! invalidation, and segment cleaning.
//!
//! Semantics modelled on F2fs (§5.4 of the paper):
//!
//! - data is written out by *appending to the log*: dirty pages are
//!   assigned fresh blocks at the log head when flushed, and the old
//!   block copy is invalidated in its segment — the moment the paper's
//!   Duet garbage collector observes through `Flushed` notifications;
//! - the background cleaner picks a victim segment by a cost function,
//!   synchronously reads its valid blocks (through the page cache — a
//!   block that is already cached needs no read, which is the entire
//!   Duet saving) and marks them dirty for asynchronous writeback;
//! - when clean segments run out, the filesystem falls back to slab
//!   reuse of invalid blocks in scattered segments (SSR), degrading
//!   writes to random I/O — the latency cliff §6.2 mentions (57 %
//!   latency increase).

use crate::segment::{segment_of, segment_start, SegState, SegmentInfo};
use sim_cache::{PageCache, PageKey, PageMeta};
use sim_core::dmap::DMap;
use sim_core::fault::FaultHandle;
use sim_core::trace::{TraceHandle, TraceLayer};
use sim_core::{
    BlockNr,
    DeviceId,
    InodeNr,
    PageIndex,
    SegmentNr,
    SimError,
    SimInstant,
    SimResult,
    PAGE_SIZE, //
};
use sim_disk::{Disk, IoClass, IoKind, IoRequest, RetryPolicy};

/// I/O accounting for one operation (mirror of the Btrfs-side struct,
/// kept separate so the crates stay independent).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpStats {
    /// Blocks read from the device.
    pub blocks_read: u64,
    /// Blocks written to the device.
    pub blocks_written: u64,
    /// Pages served from cache.
    pub cache_hits: u64,
    /// Completion time of the last request.
    pub finish: SimInstant,
}

impl OpStats {
    /// No-I/O stats completing at `now`.
    pub fn none(now: SimInstant) -> Self {
        OpStats {
            blocks_read: 0,
            blocks_written: 0,
            cache_hits: 0,
            finish: now,
        }
    }

    /// Folds another operation's stats into this one.
    pub fn merge(&mut self, other: &OpStats) {
        self.blocks_read += other.blocks_read;
        self.blocks_written += other.blocks_written;
        self.cache_hits += other.cache_hits;
        self.finish = self.finish.max(other.finish);
    }
}

/// Result of cleaning one segment (Table 6's measured quantity).
#[derive(Debug, Clone, Copy)]
pub struct CleanResult {
    /// The victim segment.
    pub seg: SegmentNr,
    /// Valid blocks that had to be migrated.
    pub valid_blocks: u32,
    /// Valid blocks already in the page cache (reads saved).
    pub cached_blocks: u32,
    /// Blocks read from the device.
    pub blocks_read: u64,
    /// Wall-clock (virtual) duration of the synchronous read phase —
    /// the "segment cleaning time" of Table 6.
    pub duration: sim_core::SimDuration,
    /// When the read phase finished.
    pub finish: SimInstant,
}

#[derive(Debug, Clone)]
struct F2fsInode {
    name: String,
    size_bytes: u64,
    /// Page index → current on-disk block.
    map: Vec<Option<BlockNr>>,
}

const NO_OWNER: u64 = u64::MAX;

impl sim_core::snapshot::StateDigest for F2fsSim {
    fn digest_state(&self, d: &mut sim_core::snapshot::Digest) {
        d.write_u32(self.device.raw());
        self.disk.digest_state(d);
        self.cache.digest_state(d);
        d.write_u64(self.seg_blocks);
        d.write_u32(self.nsegs);
        for seg in &self.segs {
            d.write_u32(seg.valid);
            d.write_u64(seg.mtime);
            d.write_u32(match seg.state {
                SegState::Free => 0,
                SegState::Open => 1,
                SegState::Full => 2,
            });
        }
        d.write_usize(self.valid.len());
        for (i, &v) in self.valid.iter().enumerate() {
            d.write_bool(v);
            d.write_u64(self.owner_ino[i]);
            d.write_u64(self.owner_idx[i]);
        }
        // Inode-number order, like `files`, so the digest is
        // independent of hash-map iteration order.
        let mut inos: Vec<InodeNr> = self.inodes.keys().copied().collect();
        inos.sort_unstable();
        d.write_usize(inos.len());
        for ino in inos {
            let Some(inode) = self.inodes.get(&ino) else {
                continue;
            };
            d.write_u64(ino.raw());
            d.write_str(&inode.name);
            d.write_u64(inode.size_bytes);
            d.write_usize(inode.map.len());
            for b in &inode.map {
                d.write_bool(b.is_some());
                d.write_u64(b.map_or(0, |b| b.raw()));
            }
        }
        d.write_u64(self.next_ino);
        d.write_u32(self.head_seg.raw());
        d.write_u64(self.head_off);
        d.write_u64(self.write_clock);
        d.write_u32(self.free_segs);
        d.write_u32(self.ssr_threshold);
        d.write_u32(self.retry.max_attempts);
        d.write_u64(self.retry.base_backoff.as_nanos());
        d.write_u64(self.retry.max_backoff.as_nanos());
        d.write_bool(self.trace.is_some());
    }
}

/// The simulated log-structured filesystem.
#[derive(Clone)]
pub struct F2fsSim {
    device: DeviceId,
    disk: Disk,
    cache: PageCache,
    seg_blocks: u64,
    nsegs: u32,
    segs: Vec<SegmentInfo>,
    /// Per-block validity.
    valid: Vec<bool>,
    /// Per-block owner (ino, page), NO_OWNER if invalid.
    owner_ino: Vec<u64>,
    owner_idx: Vec<u64>,
    /// Inode table: a deterministic hash map — lookups are the hot
    /// path; the key-sorted view is the [`files`](F2fsSim::files)
    /// snapshot, which preserves the old B-tree iteration order.
    inodes: DMap<InodeNr, F2fsInode>,
    /// Name → inode, probed with borrowed `&str` keys.
    names: DMap<String, InodeNr>,
    next_ino: u64,
    /// Log head: segment and next offset within it.
    head_seg: SegmentNr,
    head_off: u64,
    /// Logical write counter (drives segment mtime/age).
    write_clock: u64,
    free_segs: u32,
    /// Threshold of free segments below which SSR engages.
    ssr_threshold: u32,
    retry: RetryPolicy,
    trace: Option<TraceHandle>,
}

impl F2fsSim {
    /// Creates a filesystem with `seg_blocks`-block segments on `disk`.
    ///
    /// # Panics
    ///
    /// Panics if the disk capacity is not a positive multiple of
    /// `seg_blocks`.
    pub fn new(device: DeviceId, disk: Disk, cache_pages: usize, seg_blocks: u64) -> Self {
        let capacity = disk.capacity_blocks();
        assert!(
            seg_blocks > 0 && capacity.is_multiple_of(seg_blocks) && capacity > 0,
            "capacity {capacity} must be a positive multiple of segment size {seg_blocks}"
        );
        let nsegs = (capacity / seg_blocks) as u32;
        let mut fs = F2fsSim {
            device,
            disk,
            cache: PageCache::new(cache_pages),
            seg_blocks,
            nsegs,
            segs: vec![SegmentInfo::free(); nsegs as usize],
            valid: vec![false; capacity as usize],
            owner_ino: vec![NO_OWNER; capacity as usize],
            owner_idx: vec![0; capacity as usize],
            inodes: DMap::new(),
            names: DMap::new(),
            next_ino: 1,
            head_seg: SegmentNr(0),
            head_off: 0,
            write_clock: 0,
            free_segs: nsegs,
            ssr_threshold: 4,
            retry: RetryPolicy::default(),
            trace: None,
        };
        fs.segs[0].state = SegState::Open;
        fs.free_segs -= 1;
        fs
    }

    /// Arms (or disarms) fault injection on the disk and page cache.
    /// Transient I/O faults are absorbed by bounded retry-and-backoff
    /// ([`RetryPolicy`]); only an exhausted retry budget surfaces as
    /// [`SimError::TransientIo`].
    pub fn set_faults(&mut self, faults: Option<FaultHandle>) {
        self.disk.set_faults(faults.clone());
        self.cache.set_faults(faults);
    }

    /// Arms (or disarms, with `None`) tracing on this filesystem, its
    /// disk and its page cache. Pure observation: completion times,
    /// stats and event streams are unaffected.
    pub fn set_trace(&mut self, trace: Option<TraceHandle>) {
        self.disk.set_trace(trace.clone());
        self.cache.set_trace(trace.clone());
        self.trace = trace;
    }

    /// The armed trace handle, if any.
    pub fn trace(&self) -> Option<&TraceHandle> {
        self.trace.as_ref()
    }

    /// Overrides the transient-I/O retry policy (the fault matrix
    /// raises the budget under aggressive fault plans).
    pub fn set_retry_policy(&mut self, policy: RetryPolicy) {
        self.retry = policy;
    }

    /// Device identifier.
    pub fn device(&self) -> DeviceId {
        self.device
    }

    /// The underlying disk.
    pub fn disk(&self) -> &Disk {
        &self.disk
    }

    /// Mutable disk access.
    pub fn disk_mut(&mut self) -> &mut Disk {
        &mut self.disk
    }

    /// The page cache.
    pub fn cache(&self) -> &PageCache {
        &self.cache
    }

    /// Mutable page cache access (event draining).
    pub fn cache_mut(&mut self) -> &mut PageCache {
        &mut self.cache
    }

    /// Blocks per segment.
    pub fn seg_blocks(&self) -> u64 {
        self.seg_blocks
    }

    /// Total segments.
    pub fn nsegs(&self) -> u32 {
        self.nsegs
    }

    /// Segment info.
    pub fn segment(&self, seg: SegmentNr) -> &SegmentInfo {
        &self.segs[seg.raw() as usize]
    }

    /// Number of free segments.
    pub fn free_segments(&self) -> u32 {
        self.free_segs
    }

    /// Logical write clock (for age-based victim policies).
    pub fn write_clock(&self) -> u64 {
        self.write_clock
    }

    /// Returns `true` when clean segments are nearly exhausted and the
    /// filesystem would resort to slack-space reuse (SSR).
    pub fn is_ssr(&self) -> bool {
        self.free_segs <= self.ssr_threshold
    }

    /// The segment a block lives in.
    pub fn segment_of_block(&self, b: BlockNr) -> SegmentNr {
        segment_of(b, self.seg_blocks)
    }

    /// Whether a block holds live data.
    pub fn is_valid(&self, b: BlockNr) -> bool {
        self.valid[b.raw() as usize]
    }

    /// The file page a valid block backs.
    pub fn owner_of(&self, b: BlockNr) -> Option<(InodeNr, PageIndex)> {
        let i = b.raw() as usize;
        if self.owner_ino[i] == NO_OWNER {
            None
        } else {
            Some((InodeNr(self.owner_ino[i]), PageIndex(self.owner_idx[i])))
        }
    }

    /// Valid blocks of a segment with their owners.
    pub fn valid_blocks_of(&self, seg: SegmentNr) -> Vec<(BlockNr, InodeNr, PageIndex)> {
        let start = segment_start(seg, self.seg_blocks).raw();
        (start..start + self.seg_blocks)
            .filter(|&b| self.valid[b as usize])
            .filter_map(|b| {
                let (ino, idx) = self.owner_of(BlockNr(b))?;
                Some((BlockNr(b), ino, idx))
            })
            .collect()
    }

    /// Counts a segment's valid blocks that are currently in the page
    /// cache (a ground-truth query; the Duet GC tracks an approximation
    /// of this from events).
    pub fn cached_valid_blocks(&self, seg: SegmentNr) -> u32 {
        self.valid_blocks_of(seg)
            .iter()
            .filter(|(_, ino, idx)| self.cache.contains(PageKey::new(*ino, *idx)))
            .count() as u32
    }

    // ----- namespace ------------------------------------------------------

    /// Creates an empty file.
    pub fn create_file(&mut self, name: &str) -> SimResult<InodeNr> {
        if self.names.contains_key(name) {
            return Err(SimError::AlreadyExists(name.to_string()));
        }
        let ino = InodeNr(self.next_ino);
        self.next_ino += 1;
        self.inodes.insert(
            ino,
            F2fsInode {
                name: name.to_string(),
                size_bytes: 0,
                map: Vec::new(),
            },
        );
        self.names.insert(name.to_string(), ino);
        Ok(ino)
    }

    /// Looks a file up by name.
    pub fn lookup(&self, name: &str) -> Option<InodeNr> {
        self.names.get(name).copied()
    }

    /// File size in bytes.
    pub fn size_of(&self, ino: InodeNr) -> SimResult<u64> {
        Ok(self.get(ino)?.size_bytes)
    }

    /// Returns `true` if the file exists.
    pub fn exists(&self, ino: InodeNr) -> bool {
        self.inodes.contains_key(&ino)
    }

    /// Current on-disk block of a file page (the F2fs node-table
    /// mapping), or `None` for holes, unflushed new pages and missing
    /// files.
    pub fn mapping_of(&self, ino: InodeNr, index: PageIndex) -> Option<BlockNr> {
        self.inodes
            .get(&ino)
            .and_then(|n| n.map.get(index.raw() as usize).copied().flatten())
    }

    /// All file inodes.
    pub fn files(&self) -> Vec<InodeNr> {
        let mut v: Vec<InodeNr> = self.inodes.keys().copied().collect();
        v.sort_unstable();
        v
    }

    fn get(&self, ino: InodeNr) -> SimResult<&F2fsInode> {
        self.inodes.get(&ino).ok_or(SimError::NoSuchInode(ino))
    }

    fn get_mut(&mut self, ino: InodeNr) -> SimResult<&mut F2fsInode> {
        self.inodes.get_mut(&ino).ok_or(SimError::NoSuchInode(ino))
    }

    /// Deletes a file: all its blocks become invalid; cached pages are
    /// dropped.
    pub fn delete_file(&mut self, ino: InodeNr) -> SimResult<()> {
        let node = self.inodes.remove(&ino).ok_or(SimError::NoSuchInode(ino))?;
        self.names.remove(&node.name);
        self.cache.remove_file(ino);
        for b in node.map.into_iter().flatten() {
            self.invalidate(b);
        }
        Ok(())
    }

    // ----- log allocation ---------------------------------------------------

    fn invalidate(&mut self, b: BlockNr) {
        let i = b.raw() as usize;
        if !self.valid[i] {
            return;
        }
        self.valid[i] = false;
        self.owner_ino[i] = NO_OWNER;
        let seg = segment_of(b, self.seg_blocks);
        let s = &mut self.segs[seg.raw() as usize];
        debug_assert!(s.valid > 0, "segment valid-count underflow");
        s.valid -= 1;
        if s.valid == 0 && s.state == SegState::Full {
            s.state = SegState::Free;
            self.free_segs += 1;
        }
    }

    fn mark_valid(&mut self, b: BlockNr, ino: InodeNr, idx: PageIndex) {
        let i = b.raw() as usize;
        debug_assert!(!self.valid[i], "double-validate at {b}");
        self.valid[i] = true;
        self.owner_ino[i] = ino.raw();
        self.owner_idx[i] = idx.raw();
        let seg = segment_of(b, self.seg_blocks);
        self.write_clock += 1;
        let s = &mut self.segs[seg.raw() as usize];
        s.valid += 1;
        s.mtime = self.write_clock;
    }

    /// Allocates the next log block, switching to a new free segment (or
    /// an SSR slot) as needed. Returns the block and whether it was an
    /// SSR (random, non-append) allocation.
    fn log_alloc(&mut self) -> SimResult<(BlockNr, bool)> {
        if self.head_off < self.seg_blocks {
            let b = segment_start(self.head_seg, self.seg_blocks).offset(self.head_off);
            // Skip still-valid blocks when the head segment was obtained
            // through SSR (partially valid).
            if !self.valid[b.raw() as usize] {
                self.head_off += 1;
                return Ok((b, false));
            }
            self.head_off += 1;
            return self.log_alloc();
        }
        // Segment exhausted.
        self.segs[self.head_seg.raw() as usize].state = SegState::Full;
        // Prefer a free segment.
        if let Some(free) = self.segs.iter().position(|s| s.state == SegState::Free) {
            self.head_seg = SegmentNr(free as u32);
            self.head_off = 0;
            self.segs[free].state = SegState::Open;
            self.free_segs -= 1;
            return self.log_alloc();
        }
        // SSR: reuse invalid slots of the fullest-but-not-full segment.
        if let Some(victim) = self
            .segs
            .iter()
            .enumerate()
            .filter(|(_, s)| s.state == SegState::Full && (s.valid as u64) < self.seg_blocks)
            .min_by_key(|(_, s)| s.valid)
            .map(|(i, _)| i)
        {
            self.segs[victim].state = SegState::Open;
            self.head_seg = SegmentNr(victim as u32);
            self.head_off = 0;
            // Find the first invalid slot from here.
            return self.log_alloc_ssr();
        }
        Err(SimError::NoSpace)
    }

    fn log_alloc_ssr(&mut self) -> SimResult<(BlockNr, bool)> {
        let start = segment_start(self.head_seg, self.seg_blocks).raw();
        while self.head_off < self.seg_blocks {
            let b = BlockNr(start + self.head_off);
            self.head_off += 1;
            if !self.valid[b.raw() as usize] {
                return Ok((b, true));
            }
        }
        // Exhausted this SSR segment; recurse to pick another.
        self.segs[self.head_seg.raw() as usize].state = SegState::Full;
        self.log_alloc()
    }

    /// Migrates a flushed page to the log: allocates a new block,
    /// invalidates the old copy, updates the mapping and returns the new
    /// block plus whether SSR was used.
    fn flush_page(&mut self, ino: InodeNr, idx: PageIndex) -> SimResult<(BlockNr, bool)> {
        let (new_block, ssr) = self.log_alloc()?;
        if let Some(trace) = &self.trace {
            trace.tick(TraceLayer::F2fs, "log_append");
            if ssr {
                trace.tick(TraceLayer::F2fs, "ssr");
            }
        }
        let old = {
            let node = self.get_mut(ino)?;
            let i = idx.raw() as usize;
            if node.map.len() <= i {
                node.map.resize(i + 1, None);
            }
            node.map[i].replace(new_block)
        };
        if let Some(old_b) = old {
            self.invalidate(old_b);
        }
        self.mark_valid(new_block, ino, idx);
        self.cache.set_block(PageKey::new(ino, idx), new_block);
        Ok((new_block, ssr))
    }

    fn write_out(
        &mut self,
        pages: Vec<PageMeta>,
        class: IoClass,
        now: SimInstant,
        stats: &mut OpStats,
    ) -> SimResult<()> {
        // Allocate log blocks for every flushed page, then issue the
        // writes coalesced (log appends are contiguous).
        let mut blocks: Vec<BlockNr> = Vec::with_capacity(pages.len());
        for m in pages {
            // Pages of deleted files may still drain from the cache.
            if !self.inodes.contains_key(&m.key.ino) {
                continue;
            }
            let (b, _ssr) = self.flush_page(m.key.ino, m.key.index)?;
            blocks.push(b);
        }
        if blocks.is_empty() {
            return Ok(());
        }
        if let Some(trace) = &self.trace {
            trace.event(TraceLayer::F2fs, "submit", now, || {
                vec![
                    ("op", "write".into()),
                    ("class", class.label().into()),
                    ("blocks", blocks.len().into()),
                ]
            });
        }
        blocks.sort_unstable();
        let mut run_start = blocks[0];
        let mut run_len = 1u64;
        let submit =
            |fs: &mut Self, start: BlockNr, len: u64, stats: &mut OpStats| -> SimResult<()> {
                let req = IoRequest::new(IoKind::Write, start, len, class);
                let (finish, _) = fs.disk.submit_with_retry(&req, now, fs.retry)?;
                stats.blocks_written += len;
                stats.finish = stats.finish.max(finish);
                Ok(())
            };
        for &b in &blocks[1..] {
            if b.raw() == run_start.raw() + run_len {
                run_len += 1;
            } else {
                submit(self, run_start, run_len, stats)?;
                run_start = b;
                run_len = 1;
            }
        }
        submit(self, run_start, run_len, stats)?;
        Ok(())
    }

    // ----- data path -----------------------------------------------------

    /// Reads through the page cache; misses are read from the device.
    pub fn read(
        &mut self,
        ino: InodeNr,
        offset: u64,
        len_bytes: u64,
        class: IoClass,
        now: SimInstant,
    ) -> SimResult<OpStats> {
        let mut stats = OpStats::none(now);
        if len_bytes == 0 {
            return Ok(stats);
        }
        let size = self.get(ino)?.size_bytes;
        let p0 = offset / PAGE_SIZE;
        let p1 = ((offset + len_bytes).div_ceil(PAGE_SIZE)).min(size.div_ceil(PAGE_SIZE));
        let mut missing: Vec<(PageIndex, BlockNr)> = Vec::new();
        for p in p0..p1 {
            let idx = PageIndex(p);
            if self.cache.lookup(PageKey::new(ino, idx)).is_some() {
                stats.cache_hits += 1;
            } else if let Some(b) = self.get(ino)?.map.get(p as usize).copied().flatten() {
                missing.push((idx, b));
            }
        }
        if missing.is_empty() {
            return Ok(stats);
        }
        if let Some(trace) = &self.trace {
            trace.event(TraceLayer::F2fs, "submit", now, || {
                vec![
                    ("op", "read".into()),
                    ("class", class.label().into()),
                    ("blocks", missing.len().into()),
                ]
            });
        }
        let mut blocks: Vec<BlockNr> = missing.iter().map(|(_, b)| *b).collect();
        blocks.sort_unstable();
        let mut i = 0;
        while i < blocks.len() {
            let start = blocks[i];
            let mut len = 1u64;
            while i + 1 < blocks.len() && blocks[i + 1].raw() == start.raw() + len {
                len += 1;
                i += 1;
            }
            let req = IoRequest::new(IoKind::Read, start, len, class);
            let (finish, _) = self.disk.submit_with_retry(&req, now, self.retry)?;
            stats.blocks_read += len;
            stats.finish = stats.finish.max(finish);
            i += 1;
        }
        let mut evicted_all = Vec::new();
        for (idx, b) in missing {
            self.cache
                .insert_into(PageKey::new(ino, idx), Some(b), false, &mut evicted_all);
        }
        let dirty: Vec<PageMeta> = evicted_all.into_iter().filter(|m| m.dirty).collect();
        self.write_out(dirty, class, now, &mut stats)?;
        Ok(stats)
    }

    /// Writes into the cache; blocks are assigned at flush time (the
    /// log-structured delayed allocation). Old on-disk copies stay valid
    /// until the new data is flushed.
    pub fn write(
        &mut self,
        ino: InodeNr,
        offset: u64,
        len_bytes: u64,
        class: IoClass,
        now: SimInstant,
    ) -> SimResult<OpStats> {
        let mut stats = OpStats::none(now);
        if len_bytes == 0 {
            return Ok(stats);
        }
        let p0 = offset / PAGE_SIZE;
        let p1 = (offset + len_bytes).div_ceil(PAGE_SIZE);
        {
            let node = self.get_mut(ino)?;
            node.size_bytes = node.size_bytes.max(offset + len_bytes);
        }
        let mut evicted_all = Vec::new();
        for p in p0..p1 {
            let idx = PageIndex(p);
            let current = self.get(ino)?.map.get(p as usize).copied().flatten();
            self.cache
                .insert_into(PageKey::new(ino, idx), current, true, &mut evicted_all);
        }
        let dirty: Vec<PageMeta> = evicted_all.into_iter().filter(|m| m.dirty).collect();
        self.write_out(dirty, class, now, &mut stats)?;
        Ok(stats)
    }

    /// Appends to the end of the file.
    pub fn append(
        &mut self,
        ino: InodeNr,
        len_bytes: u64,
        class: IoClass,
        now: SimInstant,
    ) -> SimResult<OpStats> {
        let size = self.get(ino)?.size_bytes;
        let offset = size.next_multiple_of(PAGE_SIZE).max(size);
        self.write(ino, offset, len_bytes, class, now)
    }

    /// Background writeback of up to `max_pages` dirty pages: each is
    /// appended to the log (invalidating its old block) and written out.
    pub fn background_writeback(
        &mut self,
        max_pages: usize,
        class: IoClass,
        now: SimInstant,
    ) -> SimResult<OpStats> {
        let mut stats = OpStats::none(now);
        let flushed = self.cache.writeback_batch(max_pages);
        self.write_out(flushed, class, now, &mut stats)?;
        Ok(stats)
    }

    /// Number of dirty pages in the cache (O(1)).
    pub fn dirty_pages(&self) -> usize {
        self.cache.dirty_len()
    }

    // ----- population -----------------------------------------------------

    /// Creates a file whose data is already in the log, without charging
    /// I/O (experiment setup).
    pub fn populate_file(&mut self, name: &str, size_bytes: u64) -> SimResult<InodeNr> {
        let ino = self.create_file(name)?;
        let npages = sim_core::ids::pages_for_bytes(size_bytes);
        for p in 0..npages {
            let (b, _) = self.log_alloc()?;
            let node = self.get_mut(ino)?;
            let i = p as usize;
            if node.map.len() <= i {
                node.map.resize(i + 1, None);
            }
            node.map[i] = Some(b);
            self.mark_valid(b, ino, PageIndex(p));
        }
        self.get_mut(ino)?.size_bytes = size_bytes;
        Ok(ino)
    }

    // ----- cleaning -------------------------------------------------------

    /// Cleans one segment: synchronously reads its valid blocks (cached
    /// blocks need no read — the Duet saving) and marks them dirty for
    /// asynchronous migration to the log. The segment becomes free once
    /// the dirty pages are written back.
    pub fn clean_segment(
        &mut self,
        seg: SegmentNr,
        class: IoClass,
        now: SimInstant,
    ) -> SimResult<CleanResult> {
        let victims = self.valid_blocks_of(seg);
        let valid_blocks = victims.len() as u32;
        if let Some(trace) = &self.trace {
            trace.event(TraceLayer::F2fs, "clean", now, || {
                vec![("seg", seg.raw().into()), ("valid", valid_blocks.into())]
            });
        }
        let mut cached_blocks = 0u32;
        let mut to_read: Vec<(BlockNr, InodeNr, PageIndex)> = Vec::new();
        for (b, ino, idx) in &victims {
            if self.cache.contains(PageKey::new(*ino, *idx)) {
                cached_blocks += 1;
            } else {
                to_read.push((*b, *ino, *idx));
            }
        }
        let mut stats = OpStats::none(now);
        // Synchronous read phase (coalesced: victims are block-sorted).
        let mut i = 0;
        while i < to_read.len() {
            let start = to_read[i].0;
            let mut len = 1u64;
            while i + 1 < to_read.len() && to_read[i + 1].0.raw() == start.raw() + len {
                len += 1;
                i += 1;
            }
            let req = IoRequest::new(IoKind::Read, start, len, class);
            let (finish, _) = self.disk.submit_with_retry(&req, now, self.retry)?;
            stats.blocks_read += len;
            stats.finish = stats.finish.max(finish);
            i += 1;
        }
        // Mark every valid block dirty in memory for migration.
        let mut evicted_all = Vec::new();
        for (b, ino, idx) in &victims {
            let key = PageKey::new(*ino, *idx);
            self.cache
                .insert_into(key, Some(*b), true, &mut evicted_all);
        }
        let dirty: Vec<PageMeta> = evicted_all.into_iter().filter(|m| m.dirty).collect();
        self.write_out(dirty, class, now, &mut stats)?;
        Ok(CleanResult {
            seg,
            valid_blocks,
            cached_blocks,
            blocks_read: stats.blocks_read,
            duration: stats.finish.saturating_duration_since(now),
            finish: stats.finish,
        })
    }

    /// Test-only defect hook for the equivalence oracle: silently drops
    /// one page's mapping, the way a buggy segment cleaner that loses a
    /// block during migration would. The block is invalidated and the
    /// mapping cleared, so [`F2fsSim::check_consistency`] still passes
    /// — the loss is only visible in the logical file state (an
    /// unmapped page), which is what the oracle's final-state digest
    /// compares.
    #[doc(hidden)]
    pub fn sabotage_drop_mapping(&mut self, ino: InodeNr, index: PageIndex) -> SimResult<()> {
        let node = self.get_mut(ino)?;
        let Some(slot) = node.map.get_mut(index.raw() as usize) else {
            return Ok(());
        };
        let Some(b) = slot.take() else {
            return Ok(());
        };
        // Drop the cached copy too: a pending dirty page would
        // otherwise be flushed later and re-map the page, hiding the
        // loss.
        self.cache.remove(PageKey::new(ino, index));
        self.invalidate(b);
        Ok(())
    }

    /// Full-filesystem consistency check (fsck): verifies that
    ///
    /// - every inode mapping points at a valid block owned by exactly
    ///   that (inode, page);
    /// - every valid block is owned by a live mapping (no orphans);
    /// - per-segment valid counts equal the number of valid blocks in
    ///   the segment;
    /// - the free-segment counter matches the segment states.
    ///
    /// Intended for tests and debugging; cost is O(device).
    pub fn check_consistency(&self) -> SimResult<()> {
        let fail = |why: String| Err(SimError::InvalidArgument(format!("f2fs fsck: {why}")));
        let capacity = self.valid.len() as u64;
        // Mappings → blocks, each claimed exactly once with a matching
        // owner record.
        let mut claimed = vec![false; capacity as usize];
        for (ino, node) in self.inodes.iter() {
            for (p, slot) in node.map.iter().enumerate() {
                let Some(b) = slot else { continue };
                let i = b.raw() as usize;
                if claimed[i] {
                    return fail(format!("block {b} mapped twice"));
                }
                claimed[i] = true;
                if !self.valid[i] {
                    return fail(format!("mapped block {b} is invalid"));
                }
                match self.owner_of(*b) {
                    Some((o_ino, o_idx)) if o_ino == *ino && o_idx.raw() == p as u64 => {}
                    other => {
                        return fail(format!("block {b}: owner {other:?} != ({ino}, pg {p})"));
                    }
                }
            }
        }
        // No orphan valid blocks; segment counters agree.
        let mut free_count = 0u32;
        for seg in 0..self.nsegs {
            let start = (seg as u64) * self.seg_blocks;
            let mut valid_here = 0u32;
            for b in start..start + self.seg_blocks {
                let i = b as usize;
                if self.valid[i] {
                    valid_here += 1;
                    if !claimed[i] {
                        return fail(format!("valid block blk#{b} has no mapping"));
                    }
                }
            }
            let info = &self.segs[seg as usize];
            if info.valid != valid_here {
                return fail(format!(
                    "seg#{seg}: SIT says {} valid, counted {valid_here}",
                    info.valid
                ));
            }
            if info.state == SegState::Free {
                free_count += 1;
                if valid_here != 0 {
                    return fail(format!("seg#{seg} free but holds valid blocks"));
                }
            }
        }
        if free_count != self.free_segs {
            return fail(format!(
                "free-segment counter {} vs counted {free_count}",
                self.free_segs
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segment::VictimPolicy;

    const T0: SimInstant = SimInstant::EPOCH;
    const NORMAL: IoClass = IoClass::Normal;
    const IDLE: IoClass = IoClass::Idle;

    fn make_fs(nsegs: u32, seg_blocks: u64, cache_pages: usize) -> F2fsSim {
        let disk = sim_disk::Disk::new(Box::new(sim_disk::HddModel::sas_10k(
            nsegs as u64 * seg_blocks,
        )));
        F2fsSim::new(DeviceId(1), disk, cache_pages, seg_blocks)
    }

    fn pb(n: u64) -> u64 {
        n * PAGE_SIZE
    }

    #[test]
    fn populate_appends_to_log() {
        let mut fs = make_fs(8, 16, 64);
        let ino = fs.populate_file("a", pb(10)).unwrap();
        assert_eq!(fs.size_of(ino).unwrap(), pb(10));
        assert_eq!(fs.segment(SegmentNr(0)).valid, 10);
        assert_eq!(fs.disk().metrics().total_blocks(), 0);
        // Blocks are contiguous from the log start.
        for p in 0..10 {
            let (o_ino, o_idx) = fs.owner_of(BlockNr(p)).unwrap();
            assert_eq!(o_ino, ino);
            assert_eq!(o_idx, PageIndex(p));
        }
    }

    #[test]
    fn overwrite_invalidates_only_on_flush() {
        let mut fs = make_fs(8, 16, 64);
        let ino = fs.populate_file("a", pb(4)).unwrap();
        fs.write(ino, 0, PAGE_SIZE, NORMAL, T0).unwrap();
        // Still valid: the dirty page has not been flushed.
        assert!(fs.is_valid(BlockNr(0)));
        assert_eq!(fs.dirty_pages(), 1);
        let s = fs.background_writeback(16, NORMAL, T0).unwrap();
        assert_eq!(s.blocks_written, 1);
        // Old copy invalid, new block appended at the log head.
        assert!(!fs.is_valid(BlockNr(0)));
        assert_eq!(fs.segment(SegmentNr(0)).valid, 4, "3 old + 1 new in seg 0");
        assert_eq!(fs.dirty_pages(), 0);
    }

    #[test]
    fn log_advances_across_segments() {
        let mut fs = make_fs(8, 4, 64);
        let free0 = fs.free_segments();
        fs.populate_file("a", pb(10)).unwrap();
        // 10 blocks over 4-block segments: head in third segment.
        assert_eq!(fs.segment(SegmentNr(0)).valid, 4);
        assert_eq!(fs.segment(SegmentNr(1)).valid, 4);
        assert_eq!(fs.segment(SegmentNr(2)).valid, 2);
        assert!(fs.free_segments() < free0);
    }

    #[test]
    fn delete_invalidates_and_frees_segments() {
        let mut fs = make_fs(8, 4, 64);
        let a = fs.populate_file("a", pb(8)).unwrap();
        fs.populate_file("b", pb(2)).unwrap();
        fs.delete_file(a).unwrap();
        assert_eq!(fs.segment(SegmentNr(0)).valid, 0);
        assert_eq!(fs.segment(SegmentNr(0)).state, SegState::Free);
        assert_eq!(fs.segment(SegmentNr(1)).state, SegState::Free);
        assert!(fs.lookup("a").is_none());
        assert!(fs.lookup("b").is_some());
    }

    #[test]
    fn read_hits_and_misses() {
        let mut fs = make_fs(8, 16, 64);
        let ino = fs.populate_file("a", pb(6)).unwrap();
        let s1 = fs.read(ino, 0, pb(6), NORMAL, T0).unwrap();
        assert_eq!(s1.blocks_read, 6);
        let s2 = fs.read(ino, 0, pb(6), NORMAL, s1.finish).unwrap();
        assert_eq!(s2.blocks_read, 0);
        assert_eq!(s2.cache_hits, 6);
    }

    #[test]
    fn clean_segment_reads_only_uncached() {
        let mut fs = make_fs(8, 8, 64);
        let ino = fs.populate_file("a", pb(8)).unwrap();
        // Segment 0 fully valid. Cache half of it.
        fs.read(ino, 0, pb(4), NORMAL, T0).unwrap();
        let r = fs.clean_segment(SegmentNr(0), IDLE, T0).unwrap();
        assert_eq!(r.valid_blocks, 8);
        assert_eq!(r.cached_blocks, 4);
        assert_eq!(r.blocks_read, 4, "cached blocks saved reads");
        assert!(r.duration > sim_core::SimDuration::ZERO);
        // All 8 pages are now dirty, awaiting migration.
        assert_eq!(fs.dirty_pages(), 8);
        // Migrate them: segment 0 drains and becomes free.
        fs.background_writeback(64, IDLE, T0).unwrap();
        assert_eq!(fs.segment(SegmentNr(0)).valid, 0);
        assert_eq!(fs.segment(SegmentNr(0)).state, SegState::Free);
        // Data still readable.
        let s = fs.read(ino, 0, pb(8), NORMAL, T0).unwrap();
        assert_eq!(s.blocks_read + s.cache_hits, 8);
    }

    #[test]
    fn cached_valid_blocks_ground_truth() {
        let mut fs = make_fs(8, 8, 64);
        let ino = fs.populate_file("a", pb(8)).unwrap();
        assert_eq!(fs.cached_valid_blocks(SegmentNr(0)), 0);
        fs.read(ino, 0, pb(3), NORMAL, T0).unwrap();
        assert_eq!(fs.cached_valid_blocks(SegmentNr(0)), 3);
    }

    #[test]
    fn ssr_engages_when_no_free_segments() {
        // 4 segments of 4 blocks, tiny cache to force flushes.
        let mut fs = make_fs(4, 4, 8);
        fs.ssr_threshold = 0;
        let ino = fs.populate_file("a", pb(12)).unwrap(); // 3 segments
                                                          // Overwrite single pages repeatedly, forcing flushes into the
                                                          // remaining space and then SSR reuse.
        for round in 0..6 {
            fs.write(ino, (round % 12) * PAGE_SIZE, PAGE_SIZE, NORMAL, T0)
                .unwrap();
            fs.background_writeback(16, NORMAL, T0).unwrap();
        }
        // The filesystem survived (no NoSpace): SSR reused invalid slots.
        let total_valid: u32 = (0..4).map(|s| fs.segment(SegmentNr(s)).valid).sum();
        assert_eq!(
            total_valid, 12,
            "every live page has exactly one valid block"
        );
    }

    #[test]
    fn victim_selection_prefers_invalid_heavy_segments() {
        let mut fs = make_fs(8, 8, 64);
        let a = fs.populate_file("a", pb(8)).unwrap(); // seg 0
        fs.populate_file("b", pb(8)).unwrap(); // seg 1
                                               // Invalidate most of segment 0 by overwriting file a.
        fs.write(a, 0, pb(6), NORMAL, T0).unwrap();
        fs.background_writeback(64, NORMAL, T0).unwrap();
        assert_eq!(fs.segment(SegmentNr(0)).valid, 2);
        // Greedy cost: segment 0 is the cheapest FULL segment.
        let costs: Vec<(u32, f64)> = (0..fs.nsegs())
            .filter(|&s| fs.segment(SegmentNr(s)).state == SegState::Full)
            .map(|s| {
                (
                    s,
                    crate::segment::cleaning_cost(
                        VictimPolicy::Greedy,
                        fs.segment(SegmentNr(s)),
                        fs.seg_blocks() as u32,
                        0,
                        fs.write_clock(),
                    ),
                )
            })
            .collect();
        let best = costs
            .iter()
            .min_by(|x, y| x.1.partial_cmp(&y.1).unwrap())
            .unwrap();
        assert_eq!(best.0, 0);
    }

    #[test]
    fn fsck_holds_across_log_lifecycle() {
        let mut fs = make_fs(8, 8, 32);
        fs.check_consistency().unwrap();
        let a = fs.populate_file("a", pb(8)).unwrap();
        let b = fs.populate_file("b", pb(8)).unwrap();
        fs.check_consistency().unwrap();
        // Overwrites + flush (log migration).
        fs.write(a, 0, pb(4), NORMAL, T0).unwrap();
        fs.check_consistency().unwrap();
        fs.background_writeback(64, NORMAL, T0).unwrap();
        fs.check_consistency().unwrap();
        // Cleaning.
        let victim = (0..fs.nsegs())
            .map(SegmentNr)
            .find(|&s| fs.segment(s).state == SegState::Full && fs.segment(s).valid > 0)
            .expect("a full segment exists");
        fs.clean_segment(victim, IDLE, T0).unwrap();
        fs.background_writeback(64, IDLE, T0).unwrap();
        fs.check_consistency().unwrap();
        // Deletion.
        fs.delete_file(b).unwrap();
        fs.check_consistency().unwrap();
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut fs = make_fs(4, 4, 8);
        fs.create_file("x").unwrap();
        assert!(matches!(
            fs.create_file("x"),
            Err(SimError::AlreadyExists(_))
        ));
    }

    /// Deleting a file frees its name for re-creation, and the lookup
    /// then resolves to the *new* inode — the backward-shift deletion
    /// of the `DMap` name table must leave no stale entry behind.
    #[test]
    fn name_lookup_after_delete_and_recreate() {
        let mut fs = make_fs(8, 16, 64);
        let a = fs.populate_file("a", pb(3)).unwrap();
        let b = fs.populate_file("b", pb(2)).unwrap();
        fs.delete_file(a).unwrap();
        assert_eq!(fs.lookup("a"), None, "deleted name must not resolve");
        assert_eq!(fs.lookup("b"), Some(b), "sibling survives the shift");
        let a2 = fs.create_file("a").unwrap();
        assert_ne!(a2, a, "re-creation allocates a fresh inode");
        assert_eq!(fs.lookup("a"), Some(a2));
        assert!(!fs.exists(a) && fs.exists(a2));
        fs.check_consistency().unwrap();
    }

    /// `files()` is the key-sorted snapshot over the `DMap` inode
    /// table: ascending inode order regardless of creation, deletion
    /// and re-creation history.
    #[test]
    fn files_snapshot_is_inode_sorted_after_churn() {
        let mut fs = make_fs(8, 16, 64);
        let mut live: Vec<InodeNr> = (0..6)
            .map(|i| fs.populate_file(&format!("f{i}"), pb(1)).unwrap())
            .collect();
        // Delete from the middle and the front, then add more.
        fs.delete_file(live.remove(3)).unwrap();
        fs.delete_file(live.remove(0)).unwrap();
        live.push(fs.populate_file("g0", pb(1)).unwrap());
        live.push(fs.populate_file("g1", pb(1)).unwrap());
        live.sort_unstable();
        assert_eq!(fs.files(), live);
        fs.check_consistency().unwrap();
    }

    #[test]
    fn flush_emits_events_with_old_block() {
        let mut fs = make_fs(8, 8, 64);
        let ino = fs.populate_file("a", pb(2)).unwrap();
        fs.write(ino, 0, PAGE_SIZE, NORMAL, T0).unwrap();
        fs.cache_mut().drain_events();
        fs.background_writeback(16, NORMAL, T0).unwrap();
        let evs = fs.cache_mut().drain_events();
        let flushed: Vec<_> = evs
            .iter()
            .filter(|(_, e)| *e == sim_cache::PageEvent::Flushed)
            .collect();
        assert_eq!(flushed.len(), 1);
        // The event metadata carries the block as of flush time (the old
        // location); the mapping now points at the new log block.
        assert_eq!(flushed[0].0.block, Some(BlockNr(0)));
        let node_block = {
            let key = PageKey::new(ino, PageIndex(0));
            fs.cache().peek(key).unwrap().block.unwrap()
        };
        assert_ne!(node_block, BlockNr(0));
    }
}
