//! A simulated log-structured filesystem modelled on F2fs.
//!
//! The paper's fourth maintenance task is the F2fs in-kernel garbage
//! collector (§5.4): segments with many invalid blocks are cleaned by
//! reading their remaining valid blocks and re-appending them to the
//! log. The Duet-enabled cleaner discounts blocks that are already in
//! the page cache from the victim-selection cost, because they save the
//! synchronous read half of the migration.
//!
//! This crate provides:
//!
//! - [`segment`]: per-segment state, the victim-selection cost functions
//!   (greedy and cost-benefit) with the Duet `valid − cached/2`
//!   adjustment;
//! - [`fs::F2fsSim`]: the filesystem — append-only log allocation,
//!   flush-time block assignment (delayed allocation), invalidation of
//!   overwritten blocks, SSR fallback when clean segments run out, and
//!   [`fs::F2fsSim::clean_segment`], whose synchronous read phase is the
//!   "segment cleaning time" that Table 6 measures.

pub mod duet_glue;
pub mod fs;
pub mod segment;

pub use fs::{CleanResult, F2fsSim, OpStats};
pub use segment::{cleaning_cost, segment_of, segment_start, SegState, SegmentInfo, VictimPolicy};
