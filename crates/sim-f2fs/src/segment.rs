//! Segment bookkeeping for the log-structured filesystem.
//!
//! F2fs "groups blocks in segments. When a block is updated, it is
//! appended to the log, and its previous version becomes invalid (in
//! some segment). Segments with many invalid blocks are cleaned by a
//! background garbage collector" (§5.4). This module tracks per-segment
//! valid-block counts and ages, and provides the victim-selection cost
//! functions — including the Duet-adjusted cost that discounts cached
//! blocks (`valid_blocks − cached_blocks/2`).

use sim_core::{BlockNr, SegmentNr};

/// Lifecycle state of a segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegState {
    /// No valid blocks; available for logging.
    Free,
    /// The log head currently appends here.
    Open,
    /// Fully written; contains a mix of valid and invalid blocks.
    Full,
}

/// Per-segment information (F2fs's SIT entry).
#[derive(Debug, Clone, Copy)]
pub struct SegmentInfo {
    /// Number of valid (live) blocks.
    pub valid: u32,
    /// Logical modification time: the global write counter at the last
    /// write into this segment. Younger segments have larger values.
    pub mtime: u64,
    /// Lifecycle state.
    pub state: SegState,
}

impl SegmentInfo {
    /// A fresh free segment.
    pub fn free() -> Self {
        SegmentInfo {
            valid: 0,
            mtime: 0,
            state: SegState::Free,
        }
    }
}

/// Victim-selection policy for segment cleaning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VictimPolicy {
    /// Pick the segment with the fewest valid blocks ("the most invalid
    /// blocks" — the paper's description of the baseline cleaner).
    Greedy,
    /// Classic cost-benefit: `(1 − u) · age / (2u)` maximization, where
    /// `u` is segment utilization. Used for background cleaning in
    /// F2fs; provided for the ablation benchmarks.
    CostBenefit,
}

/// Cleaning cost of a segment under a policy; lower is better.
///
/// `cached` is the number of the segment's valid blocks currently in the
/// page cache. The baseline cleaner passes 0; the Duet-enabled cleaner
/// passes its event-derived count, implementing the paper's adjusted
/// cost `valid_blocks − cached_blocks/2` (§5.4: reads and writes are
/// weighed equally, and a cached block saves the read half).
pub fn cleaning_cost(
    policy: VictimPolicy,
    info: &SegmentInfo,
    seg_blocks: u32,
    cached: u32,
    now_mtime: u64,
) -> f64 {
    let effective = info.valid as f64 - cached.min(info.valid) as f64 / 2.0;
    match policy {
        VictimPolicy::Greedy => effective,
        VictimPolicy::CostBenefit => {
            let u = effective / seg_blocks as f64;
            if u <= 0.0 {
                return f64::MIN; // Free-ish segment: infinitely attractive.
            }
            let age = (now_mtime.saturating_sub(info.mtime)) as f64;
            // Benefit/cost is maximized; we return its negation so that
            // "lower is better" holds for both policies.
            -(age * (1.0 - u) / (2.0 * u))
        }
    }
}

/// Maps a block to its segment.
pub fn segment_of(block: BlockNr, seg_blocks: u64) -> SegmentNr {
    SegmentNr((block.raw() / seg_blocks) as u32)
}

/// First block of a segment.
pub fn segment_start(seg: SegmentNr, seg_blocks: u64) -> BlockNr {
    BlockNr(seg.raw() as u64 * seg_blocks)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segment_block_mapping() {
        assert_eq!(segment_of(BlockNr(0), 512), SegmentNr(0));
        assert_eq!(segment_of(BlockNr(511), 512), SegmentNr(0));
        assert_eq!(segment_of(BlockNr(512), 512), SegmentNr(1));
        assert_eq!(segment_start(SegmentNr(2), 512), BlockNr(1024));
    }

    #[test]
    fn greedy_prefers_fewest_valid() {
        let a = SegmentInfo {
            valid: 100,
            mtime: 0,
            state: SegState::Full,
        };
        let b = SegmentInfo {
            valid: 50,
            mtime: 0,
            state: SegState::Full,
        };
        let ca = cleaning_cost(VictimPolicy::Greedy, &a, 512, 0, 10);
        let cb = cleaning_cost(VictimPolicy::Greedy, &b, 512, 0, 10);
        assert!(cb < ca);
    }

    #[test]
    fn cached_blocks_discount_cost() {
        let info = SegmentInfo {
            valid: 100,
            mtime: 0,
            state: SegState::Full,
        };
        let base = cleaning_cost(VictimPolicy::Greedy, &info, 512, 0, 10);
        let with_cache = cleaning_cost(VictimPolicy::Greedy, &info, 512, 40, 10);
        assert_eq!(base, 100.0);
        assert_eq!(with_cache, 80.0, "valid - cached/2");
        // Cached is clamped to valid.
        let all_cached = cleaning_cost(VictimPolicy::Greedy, &info, 512, 500, 10);
        assert_eq!(all_cached, 50.0);
    }

    #[test]
    fn cost_benefit_prefers_older_at_same_utilization() {
        let old = SegmentInfo {
            valid: 256,
            mtime: 10,
            state: SegState::Full,
        };
        let young = SegmentInfo {
            valid: 256,
            mtime: 90,
            state: SegState::Full,
        };
        let co = cleaning_cost(VictimPolicy::CostBenefit, &old, 512, 0, 100);
        let cy = cleaning_cost(VictimPolicy::CostBenefit, &young, 512, 0, 100);
        assert!(co < cy, "older segment is the better victim");
    }

    #[test]
    fn cost_benefit_handles_empty_segment() {
        let empty = SegmentInfo {
            valid: 0,
            mtime: 0,
            state: SegState::Full,
        };
        let c = cleaning_cost(VictimPolicy::CostBenefit, &empty, 512, 0, 100);
        assert_eq!(c, f64::MIN);
    }
}
