//! Duet introspection hooks for the F2fs model.

use crate::fs::F2fsSim;
use sim_cache::FsIntrospect;
use sim_cache::PageMeta;
use sim_core::{BlockNr, DeviceId, InodeNr, PageIndex};

impl FsIntrospect for F2fsSim {
    fn device(&self) -> DeviceId {
        F2fsSim::device(self)
    }

    fn is_under(&self, _ino: InodeNr, _dir: InodeNr) -> bool {
        // The F2fs model has a flat namespace; everything is under the
        // (implicit) root. Only block tasks run on it in the paper.
        true
    }

    fn path_of(&self, _ino: InodeNr) -> Option<String> {
        None
    }

    fn fibmap(&self, ino: InodeNr, index: PageIndex) -> Option<BlockNr> {
        // The current node-table mapping: after a flush this is the new
        // log block.
        self.mapping_of(ino, index)
    }

    fn has_cached_pages(&self, ino: InodeNr) -> bool {
        self.cache().pages_of(ino) > 0
    }

    fn cached_pages(&self) -> Vec<PageMeta> {
        self.cache().iter().collect()
    }

    fn cached_pages_of(&self, ino: InodeNr) -> Vec<PageMeta> {
        self.cache().pages_of_file(ino)
    }
}
