//! The lint's own acceptance tests: each seeded fixture must trigger
//! its rule, compliant code must not, waivers must work, and — the
//! point of the exercise — the workspace itself must be clean.

use std::path::PathBuf;
use xtask::rules::{classify, lint_source, parse_allowlist, run_lint, Rule, RuleSet, Violation};

fn fixture(name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {}: {e}", path.display()))
}

fn lint_fixture(name: &str) -> Vec<Violation> {
    lint_source(name, &fixture(name), RuleSet::FULL, &[])
}

#[test]
fn d1_flags_wall_clock() {
    let v = lint_fixture("d1_wall_clock.rs");
    assert!(!v.is_empty());
    assert!(v.iter().all(|x| x.rule == Rule::D1), "{v:?}");
    let tokens: Vec<&str> = v.iter().map(|x| x.token.as_str()).collect();
    assert!(tokens.contains(&"Instant"));
    assert!(tokens.contains(&"SystemTime"));
    assert!(tokens.contains(&"std::time"));
}

#[test]
fn d2_flags_hash_collections() {
    let v = lint_fixture("d2_hash_iteration.rs");
    assert!(v.iter().all(|x| x.rule == Rule::D2), "{v:?}");
    let maps = v.iter().filter(|x| x.token == "HashMap").count();
    let sets = v.iter().filter(|x| x.token == "HashSet").count();
    assert_eq!(maps, 2, "declaration and parameter use: {v:?}");
    assert_eq!(sets, 2, "{v:?}");
}

/// The seeded deterministic containers (`sim_core::dmap`) iterate in
/// insertion order, so D2 must leave them alone — and point at them as
/// the sanctioned alternative when it does fire on a std hash
/// collection in the same file.
#[test]
fn d2_sanctions_dmap_containers() {
    let v = lint_fixture("d2_dmap_sanctioned.rs");
    assert!(v.iter().all(|x| x.rule == Rule::D2), "{v:?}");
    let tokens: Vec<&str> = v.iter().map(|x| x.token.as_str()).collect();
    assert_eq!(tokens, vec!["HashMap", "HashMap"], "import + field: {v:?}");
    assert!(
        v.iter().all(|x| x.message.contains("dmap::DMap")),
        "the diagnostic must name the sanctioned container: {v:?}"
    );
}

/// The ordered deterministic container (`sim_core::omap::DOrdMap`)
/// iterates in key order, so D2 must sanction it the same way: never
/// flag it, name it in the `HashMap` diagnostic as the ordered
/// alternative, and still honour the `// lint: sorted` waiver.
#[test]
fn d2_sanctions_omap_ordered_container() {
    let v = lint_fixture("d2_omap_sanctioned.rs");
    assert!(v.iter().all(|x| x.rule == Rule::D2), "{v:?}");
    let tokens: Vec<&str> = v.iter().map(|x| x.token.as_str()).collect();
    assert_eq!(
        tokens,
        vec!["HashMap", "HashMap"],
        "import + unwaived field only (the `// lint: sorted` one is waived): {v:?}"
    );
    assert!(
        v.iter().all(|x| x.message.contains("omap::DOrdMap")),
        "the diagnostic must name the sanctioned ordered container: {v:?}"
    );
}

#[test]
fn d3_flags_panic_paths() {
    let v = lint_fixture("d3_panics.rs");
    assert!(v.iter().all(|x| x.rule == Rule::D3), "{v:?}");
    let tokens: Vec<&str> = v.iter().map(|x| x.token.as_str()).collect();
    assert_eq!(tokens, vec!["panic!", "unwrap", "expect", "todo!"]);
}

#[test]
fn d4_flags_ambient_state() {
    let v = lint_fixture("d4_ambient_state.rs");
    assert!(v.iter().all(|x| x.rule == Rule::D4), "{v:?}");
    let tokens: Vec<&str> = v.iter().map(|x| x.token.as_str()).collect();
    assert_eq!(tokens, vec!["static mut", "thread::spawn", "process::exit"]);
}

#[test]
fn d4_flags_scoped_threads() {
    // `thread::scope` is as ambient as `thread::spawn`; the `s.spawn`
    // inside the scope body is a method call, not `thread::spawn`, and
    // must not double-report.
    let v = lint_fixture("d4_thread_scope.rs");
    assert!(v.iter().all(|x| x.rule == Rule::D4), "{v:?}");
    let tokens: Vec<&str> = v.iter().map(|x| x.token.as_str()).collect();
    assert_eq!(tokens, vec!["thread::scope"]);
}

#[test]
fn clean_code_passes_and_waivers_apply() {
    let v = lint_fixture("clean.rs");
    assert!(v.is_empty(), "false positives: {v:?}");
}

#[test]
fn allowlist_suppresses_matching_violations() {
    let allow = parse_allowlist(
        "# comment line\n\
         D3 d3_panics.rs unwrap   # demo waiver\n\
         D3 d3_panics.rs expect   # demo waiver\n",
    )
    .expect("parse");
    let v = lint_source(
        "d3_panics.rs",
        &fixture("d3_panics.rs"),
        RuleSet::FULL,
        &allow,
    );
    let tokens: Vec<&str> = v.iter().map(|x| x.token.as_str()).collect();
    assert_eq!(tokens, vec!["panic!", "todo!"]);
    assert!(allow.iter().all(|a| a.used.get()), "both entries consumed");
}

#[test]
fn allowlist_wildcard_token() {
    let allow = parse_allowlist("D3 d3_panics.rs *  # whole-file waiver\n").expect("parse");
    let v = lint_source(
        "d3_panics.rs",
        &fixture("d3_panics.rs"),
        RuleSet::FULL,
        &allow,
    );
    assert!(v.is_empty(), "{v:?}");
}

#[test]
fn allowlist_rejects_missing_justification() {
    assert!(parse_allowlist("D3 path.rs unwrap\n").is_err());
    assert!(parse_allowlist("D3 path.rs unwrap #   \n").is_err());
    assert!(parse_allowlist("D9 path.rs unwrap # x\n").is_err());
    assert!(parse_allowlist("D3 path.rs # x\n").is_err());
}

#[test]
fn scoping_matches_policy() {
    // Full rules in simulation/framework/experiment library code.
    assert_eq!(
        classify("crates/core/src/framework.rs"),
        Some(RuleSet::FULL)
    );
    assert_eq!(classify("crates/sim-btrfs/src/fs.rs"), Some(RuleSet::FULL));
    assert_eq!(classify("src/lib.rs"), Some(RuleSet::FULL));
    // Bench harness: wall-clock and ambient-state rules (the pool's
    // `thread::scope` is waived centrally, not descoped).
    assert_eq!(
        classify("crates/bench/src/bin/fig9_cpu_overhead.rs"),
        Some(RuleSet::BENCH)
    );
    assert_eq!(classify("crates/bench/src/pool.rs"), Some(RuleSet::BENCH));
    // Out of scope: tests, benches, examples, fixtures, the linter.
    assert_eq!(classify("tests/end_to_end.rs"), None);
    assert_eq!(classify("crates/core/src/framework_tests.rs"), None);
    assert_eq!(classify("crates/bench/benches/overhead.rs"), None);
    assert_eq!(classify("examples/quickstart.rs"), None);
    assert_eq!(classify("crates/xtask/src/main.rs"), None);
    assert_eq!(classify("crates/xtask/tests/fixtures/d3_panics.rs"), None);
}

#[test]
fn rules_skip_cfg_test_items() {
    let src = r#"
        pub fn ok() -> u64 { 1 }
        #[cfg(test)]
        mod tests {
            #[test]
            fn t() {
                let mut m = std::collections::HashMap::new();
                m.insert(1, 2);
                assert_eq!(*m.get(&1).unwrap(), 2);
                panic!("fine in tests");
            }
        }
    "#;
    let v = lint_source("lib.rs", src, RuleSet::FULL, &[]);
    assert!(v.is_empty(), "{v:?}");
}

/// The acceptance criterion: the workspace itself lints clean. This
/// test is what keeps the repo honest — a reintroduced violation fails
/// `cargo test` as well as CI's explicit `xtask lint` step.
#[test]
fn workspace_is_clean() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map(PathBuf::from)
        .expect("workspace root");
    let report = run_lint(&root).expect("lint run");
    assert!(report.files_checked > 50, "walker found the workspace");
    assert!(
        report.violations.is_empty(),
        "workspace lint violations:\n{}",
        report
            .violations
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
