//! Per-family analyzer tests over the mini-workspaces in
//! `tests/fixtures/` (see the README there), plus the end-to-end
//! determinism check on the real workspace.

use std::cell::Cell;
use std::path::{Path, PathBuf};
use xtask::model::WorkspaceModel;
use xtask::output::render_json;
use xtask::rules::{analyze, run_lint_with, AllowEntry, LintReport, Rule};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn lint_fixture(name: &str, allow: &[AllowEntry]) -> LintReport {
    let model = WorkspaceModel::from_root(&fixture(name), 1).expect("fixture loads");
    analyze(&model, allow)
}

fn entry(rule: Rule, path: &str, token: &str) -> AllowEntry {
    AllowEntry {
        rule,
        path: path.into(),
        token: token.into(),
        justification: "test".into(),
        line: 1,
        used: Cell::new(false),
    }
}

/// `(rule, path, line, token)` for every violation, in report order.
fn keys(r: &LintReport) -> Vec<(Rule, String, u32, String)> {
    r.violations
        .iter()
        .map(|v| (v.rule, v.path.clone(), v.line, v.token.clone()))
        .collect()
}

#[test]
fn l1_fires_on_upward_sideways_and_xtask_edges() {
    let r = lint_fixture("layering", &[]);
    let got = keys(&r);
    let want = |rule, path: &str, line, token: &str| {
        assert!(
            got.contains(&(rule, path.into(), line, token.into())),
            "missing {rule:?} {path}:{line} `{token}` in {got:?}"
        );
    };
    // Upward manifest edge and upward `use` path: sim-btrfs → duet.
    want(Rule::L1, "crates/sim-btrfs/Cargo.toml", 6, "duet");
    want(Rule::L1, "crates/sim-btrfs/src/lib.rs", 3, "duet::");
    // Sideways manifest edge within a band: sim-cache → sim-disk.
    want(Rule::L1, "crates/sim-cache/Cargo.toml", 6, "sim-disk");
    // xtask may depend on no workspace crate at all.
    want(Rule::L1, "crates/xtask/Cargo.toml", 5, "sim-core");
    // The waived upward reference (lib.rs:7) is suppressed, its waiver
    // consumed, and nothing else fires — no W1, no D3.
    assert_eq!(r.violations.len(), 4, "{got:?}");
}

#[test]
fn l1_manifest_edge_waivable_via_allowlist() {
    let allow = [entry(Rule::L1, "crates/sim-cache/Cargo.toml", "sim-disk")];
    let r = lint_fixture("layering", &allow);
    assert!(allow[0].used.get(), "allow entry must be marked used");
    assert!(
        !keys(&r).contains(&(
            Rule::L1,
            "crates/sim-cache/Cargo.toml".into(),
            6,
            "sim-disk".into()
        )),
        "allowlisted manifest edge must be suppressed"
    );
    assert!(
        r.violations.iter().all(|v| v.rule != Rule::W1),
        "a consumed allow entry must not trip the W1 audit: {:?}",
        keys(&r)
    );
}

#[test]
fn s1_s2_fire_on_span_hygiene_fixture() {
    let r = lint_fixture("spans", &[]);
    let got = keys(&r);
    let lib = "crates/duet-tasks/src/lib.rs";
    assert!(
        got.contains(&(Rule::S1, lib.into(), 5, "ctx_begin".into())),
        "{got:?}"
    );
    assert!(
        got.contains(&(Rule::S2, lib.into(), 16, "rogue.kind".into())),
        "{got:?}"
    );
    assert!(
        got.contains(&(Rule::S2, lib.into(), 21, "TraceLayer::Task".into())),
        "{got:?}"
    );
    // Reverse drift: documented but never emitted, anchored at the row.
    assert!(
        got.contains(&(Rule::S2, "DESIGN.md".into(), 6, "never.emitted".into())),
        "{got:?}"
    );
    // The waived S1 context and the waived off-registry kind stay quiet.
    assert_eq!(r.violations.len(), 4, "{got:?}");
}

#[test]
fn s2_drift_row_waivable_via_allowlist() {
    let allow = [entry(Rule::S2, "DESIGN.md", "never.emitted")];
    let r = lint_fixture("spans", &allow);
    assert!(allow[0].used.get());
    assert!(
        r.violations.iter().all(|v| v.path != "DESIGN.md"),
        "{:?}",
        keys(&r)
    );
}

#[test]
fn f1_f2_fire_on_fault_registry_fixture() {
    let r = lint_fixture("faults", &[]);
    let reg = "crates/sim-core/src/fault.rs";
    let got = keys(&r);
    assert!(
        got.contains(&(Rule::F1, reg.into(), 7, "Unhooked".into())),
        "{got:?}"
    );
    assert!(
        got.contains(&(Rule::F1, reg.into(), 9, "Unpresetted".into())),
        "{got:?}"
    );
    assert!(
        got.contains(&(Rule::F2, reg.into(), 11, "Unmatrixed".into())),
        "{got:?}"
    );
    // The two F1 findings are distinct failure modes.
    let msg = |line: u32| {
        r.violations
            .iter()
            .find(|v| v.line == line)
            .map(|v| v.message.clone())
            .unwrap_or_default()
    };
    assert!(msg(7).contains("injection hook"));
    assert!(msg(9).contains("preset"));
    // `Hooked` is clean end to end; `WaivedSite` is fully waived inline.
    assert_eq!(r.violations.len(), 3, "{got:?}");
}

#[test]
fn e1_fires_on_discarded_simresults() {
    let r = lint_fixture("errors", &[]);
    let lib = "crates/sim-core/src/lib.rs";
    let got = keys(&r);
    assert!(
        got.contains(&(Rule::E1, lib.into(), 7, "let _ = might_fail".into())),
        "{got:?}"
    );
    assert!(
        got.contains(&(Rule::E1, lib.into(), 8, "might_fail().ok()".into())),
        "{got:?}"
    );
    // `.ok()` is transparent: `let _ = f().ok()` still discards.
    assert!(
        got.contains(&(Rule::E1, lib.into(), 13, "let _ = might_fail".into())),
        "{got:?}"
    );
    // Bound/propagated forms and the two waived discards stay quiet.
    assert_eq!(r.violations.len(), 3, "{got:?}");
}

#[test]
fn w1_flags_stale_and_malformed_inline_waivers() {
    let r = lint_fixture("waivers", &[]);
    let lib = "crates/sim-core/src/lib.rs";
    let got = keys(&r);
    assert_eq!(r.violations.len(), 2, "{got:?}");
    let at = |line: u32| r.violations.iter().find(|v| v.line == line).unwrap();
    assert_eq!(at(1).rule, Rule::W1);
    assert!(at(1).message.contains("stale"), "{}", at(1).message);
    assert_eq!(at(4).rule, Rule::W1);
    assert!(at(4).message.contains("malformed"), "{}", at(4).message);
    assert!(r.violations.iter().all(|v| v.path == lib));
    // The waiver inside the `#[cfg(test)]` module is exempt: no finding
    // on its line.
    assert!(r.violations.iter().all(|v| v.line < 9), "{got:?}");
}

#[test]
fn w1_flags_stale_allowlist_entries() {
    let allow = [entry(
        Rule::D1,
        "crates/sim-core/src/lib.rs",
        "nothing-matches",
    )];
    let r = lint_fixture("lexer", &allow);
    assert!(!allow[0].used.get());
    let stale: Vec<_> = r.violations.iter().filter(|v| v.rule == Rule::W1).collect();
    assert_eq!(stale.len(), 1, "{:?}", keys(&r));
    assert_eq!(stale[0].path, "crates/xtask/lint.allow");
    assert_eq!(stale[0].line, 1);
}

#[test]
fn lexer_keeps_rule_tokens_in_literals_and_comments_inert() {
    // Raw strings, byte strings and *nested* block comments are full of
    // rule tokens; only the real `.unwrap()` at the bottom may fire.
    let r = lint_fixture("lexer", &[]);
    let got = keys(&r);
    assert_eq!(
        got,
        vec![(
            Rule::D3,
            "crates/sim-core/src/lib.rs".into(),
            13,
            "unwrap".into()
        )],
    );
}

#[test]
fn json_report_is_byte_identical_across_runs_and_widths() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let one = render_json(&run_lint_with(&root, 1).expect("lint at width 1"));
    let four = render_json(&run_lint_with(&root, 4).expect("lint at width 4"));
    let again = render_json(&run_lint_with(&root, 4).expect("lint at width 4, rerun"));
    assert_eq!(one, four, "report must not depend on worker count");
    assert_eq!(four, again, "report must not vary between runs");
}
