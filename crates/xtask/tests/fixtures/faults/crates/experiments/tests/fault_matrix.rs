// The F2 row registry: a site counts as covered when its variant name
// or its label literal appears here.
#[test]
fn rows() {
    let _by_variant = [FaultSite::Hooked, FaultSite::Unpresetted];
    let _by_label = ["unhooked-site"];
}
