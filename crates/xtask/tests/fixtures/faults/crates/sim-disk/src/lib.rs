// Injection hooks: every `fire(FaultSite::V)` here marks V as live.
pub fn injure(h: &FaultHandle) {
    h.fire(FaultSite::Hooked);
    h.fire(FaultSite::Unpresetted);
    h.fire(FaultSite::Unmatrixed);
}
