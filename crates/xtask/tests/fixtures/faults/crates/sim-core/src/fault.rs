//! Fault-site registry fixture: one variant per F1/F2 failure mode.

pub enum FaultSite {
    /// Hook + preset + matrix row: clean.
    Hooked,
    /// No `fire(...)` hook anywhere: F1 (hook).
    Unhooked,
    /// Absent from every preset: F1 (preset).
    Unpresetted,
    /// No fault-matrix row: F2.
    Unmatrixed,
    // lint: allow(F1): fixture — site is wired up out of tree
    WaivedSite, // lint: allow(F2): fixture — matrix coverage waived
}

impl FaultSite {
    pub fn label(self) -> &'static str {
        match self {
            FaultSite::Hooked => "hooked-site",
            FaultSite::Unhooked => "unhooked-site",
            FaultSite::Unpresetted => "unpresetted-site",
            FaultSite::Unmatrixed => "unmatrixed-site",
            FaultSite::WaivedSite => "waived-site",
        }
    }
}

pub struct FaultPlan;

impl FaultPlan {
    pub fn preset(name: &str) -> Option<FaultPlan> {
        let _ = name;
        let plan = FaultPlan::quiet()
            .with_ppm(FaultSite::Hooked, 10)
            .with_ppm(FaultSite::Unhooked, 10)
            .with_ppm(FaultSite::Unmatrixed, 10);
        Some(plan)
    }
}
