// Fixture: the deterministic *ordered* container is sanctioned too —
// D2 must leave `DOrdMap` alone, flag the `HashMap` next to it (and
// point at `omap::DOrdMap` in the diagnostic), and honour the
// `// lint: sorted` waiver on the second hash map.
use sim_core::omap::DOrdMap;
use std::collections::HashMap;

pub struct FreeSpace {
    by_start: DOrdMap<u64, u64>,
    // The one violation in this file:
    legacy: HashMap<u64, u64>,
    // Collected into a Vec and sorted before anything observable:
    histogram: HashMap<u64, u64>, // lint: sorted
}

pub fn first_fit(fs: &FreeSpace, want: u64) -> Option<u64> {
    for (&start, &len) in fs.by_start.iter() {
        if len >= want {
            return Some(start);
        }
    }
    None
}

pub fn floor_query(fs: &FreeSpace, at: u64) -> Option<(u64, u64)> {
    fs.by_start.range(..=at).next_back().map(|(&s, &l)| (s, l))
}

pub fn sorted_histogram(fs: &FreeSpace) -> Vec<(u64, u64)> {
    let mut v: Vec<(u64, u64)> = fs.histogram.iter().map(|(&k, &n)| (k, n)).collect();
    v.sort_unstable();
    v.push((fs.legacy.len() as u64, 0));
    v
}
