use sim_core::trace::{TraceHandle, TraceLayer};

// S1: opens a context, never closes one.
pub fn leaky(trace: &TraceHandle) {
    let _id = trace.ctx_begin(TraceLayer::Task, "good.kind", 0, &[]);
}

// Clean: begin and end in the same function.
pub fn paired(trace: &TraceHandle) {
    let id = trace.ctx_begin(TraceLayer::Task, "good.kind", 0, &[]);
    trace.ctx_end(id, 1);
}

// S2: emitted kind missing from the registry.
pub fn undocumented(trace: &TraceHandle) {
    trace.tick(TraceLayer::Task, "rogue.kind");
}

// S2: computed kind — cannot be checked against the registry.
pub fn computed(trace: &TraceHandle, kind: &'static str) {
    trace.tick(TraceLayer::Task, kind);
}

// Waived S1: the context is deliberately left open.
pub fn leaky_waived(trace: &TraceHandle) {
    // lint: allow(S1): fixture — deliberately open context
    let _id = trace.ctx_begin(TraceLayer::Task, "good.kind", 0, &[]);
}

// Waived S2: an off-registry kind, suppressed on the same line.
pub fn undocumented_waived(trace: &TraceHandle) {
    trace.tick(TraceLayer::Task, "waived.kind"); // lint: allow(S2): fixture — off-registry kind
}
