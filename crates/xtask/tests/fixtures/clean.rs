// Fixture: fully compliant library code — zero violations expected.
// Strings, comments and test code must not trigger false positives.
use std::collections::BTreeMap;

/// Doc comments mentioning unwrap() or HashMap are fine.
pub fn total(m: &BTreeMap<u64, u64>) -> Option<u64> {
    let note = "call .unwrap() on a HashMap at Instant::now()"; // string, not code
    let _ = note;
    m.values().copied().reduce(|a, b| a.checked_add(b))?.into()
}

// An explicitly waived hash map: lookups only, never iterated.
// lint: sorted
pub type WaivedIndex = std::collections::HashMap<u64, u64>;

// A waived panic with a reason.
pub fn infallible() -> u64 {
    // lint: allow(D3): constant input, cannot fail
    "7".parse::<u64>().unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_panic_and_hash() {
        let mut m = std::collections::HashMap::new();
        m.insert(1u64, 2u64);
        assert_eq!(*m.get(&1).unwrap(), 2);
    }
}
