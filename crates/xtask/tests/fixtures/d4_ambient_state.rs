// Fixture: ambient state in simulation code (D4).
static mut COUNTER: u64 = 0;

pub fn run() {
    std::thread::spawn(|| {});
    std::process::exit(1);
}
