// Fixture: hash-ordered collections in a results-producing path (D2).
use std::collections::{HashMap, HashSet};

pub fn emit_csv(rows: &HashMap<u64, f64>, seen: &HashSet<u64>) -> String {
    let mut out = String::new();
    for (k, v) in rows {
        if seen.contains(k) {
            out.push_str(&format!("{k},{v}\n"));
        }
    }
    out
}
