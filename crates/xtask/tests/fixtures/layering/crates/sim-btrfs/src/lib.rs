// An upward `use`-path edge: a filesystem reaching into the framework
// above it. The manifest edge is flagged separately.
use duet::FsIntrospect;

// A waived upward reference on the next line.
// lint: allow(L1): fixture — waived upward edge
pub fn waived() -> duet::SessionId {
    unimplemented!() // lint: allow(D3): fixture — keep D3 quiet here
}

pub struct Fs(pub u32);

impl FsIntrospect for Fs {}
