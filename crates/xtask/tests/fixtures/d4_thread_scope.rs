// Fixture: scoped threads are still ambient state in simulation code
// (D4) — only `bench::pool` carries a sanctioned waiver.
pub fn fan_out() -> u64 {
    let mut total = 0;
    std::thread::scope(|s| {
        let h = s.spawn(|| 21);
        total = h.join().unwrap_or(0) * 2;
    });
    total
}
