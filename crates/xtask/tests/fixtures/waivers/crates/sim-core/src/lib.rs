// lint: allow(D3): stale — nothing on the next line violates D3
pub fn clean() {}

// lint: allow(Q9): malformed — no such rule
pub fn also_clean() {}

#[cfg(test)]
mod tests {
    // lint: allow(D3): waivers inside test items are exempt from the audit
    #[test]
    fn nothing() {}
}
