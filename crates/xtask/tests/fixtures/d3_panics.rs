// Fixture: panic paths in library code (D3).
pub fn lookup(v: &[u64], i: usize) -> u64 {
    if i > v.len() {
        panic!("out of range");
    }
    let first = v.first().unwrap();
    let last = v.last().expect("nonempty");
    if *first > *last {
        todo!();
    }
    v[i]
}
