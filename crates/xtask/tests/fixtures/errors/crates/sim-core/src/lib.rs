pub fn might_fail() -> SimResult<()> {
    Ok(())
}

// Two E1 shapes: `let _ =` and statement-form `.ok()`.
pub fn discards() {
    let _ = might_fail();
    might_fail().ok();
}

// `.ok()`/`.err()` are transparent: this still discards the error.
pub fn transparent() {
    let _ = might_fail().ok();
}

// Bound and propagated forms keep the value alive — not flagged.
pub fn keeps() -> SimResult<()> {
    let kept = might_fail().ok();
    drop(kept);
    might_fail()
}

pub fn waived() {
    // lint: allow(E1): fixture — deliberate best-effort discard
    let _ = might_fail();
    might_fail().ok(); // lint: allow(E1): fixture — deliberate best-effort discard
}
