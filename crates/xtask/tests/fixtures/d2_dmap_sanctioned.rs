// Fixture: the seeded deterministic containers are sanctioned (D2
// flags only the std hash collections next to them).
use sim_core::dmap::{DMap, DSet};
use std::collections::HashMap;

pub struct Index {
    by_block: DMap<u64, u64>,
    corrupted: DSet<u64>,
    // The one violation in this file:
    legacy: HashMap<u64, u64>,
}

pub fn emit(ix: &Index) -> String {
    let mut out = String::new();
    for (k, v) in ix.by_block.iter() {
        if ix.corrupted.contains(k) {
            out.push_str(&format!("{k},{v}\n"));
        }
    }
    out.push_str(&format!("legacy {}\n", ix.legacy.len()));
    out
}
