// Fixture: every line here must trip D1 (wall-clock time sources).
use std::time::Instant;

pub fn elapsed_ms() -> u128 {
    let t0 = Instant::now();
    let _ = std::time::SystemTime::now();
    t0.elapsed().as_millis()
}
