// Lexer regression fixture: rule tokens inside literals and comments
// must produce no findings. The one real violation at the bottom
// proves the file is actually scanned.

pub fn inert() -> &'static str {
    /* outer /* Instant::now() SystemTime HashMap .unwrap() */ panic!() */
    let bytes = b"std::time and thread::spawn stay inert in byte strings";
    let _ = bytes;
    r#"Instant SystemTime HashMap .unwrap() panic! thread::spawn"#
}

pub fn control(map: &BTreeMap<u32, u32>) -> u32 {
    *map.get(&0).unwrap()
}
