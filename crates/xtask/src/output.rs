//! Report renderers: human text, stable JSON, and SARIF 2.1.0.
//!
//! Both machine formats are built by deterministic string assembly
//! (no maps, violations pre-sorted by the driver), so the output is
//! byte-identical across runs and worker counts — CI diffs the JSON
//! form directly.

use crate::rules::{LintReport, Rule};
use std::fmt::Write as _;

/// JSON string escaping per RFC 8259 (the control-character subset
/// that can actually appear in messages and paths).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// The stable JSON form: one object, violations in report order.
pub fn render_json(report: &LintReport) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"files_checked\": {},", report.files_checked);
    out.push_str("  \"violations\": [");
    for (i, v) in report.violations.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{\"rule\": \"{}\", \"path\": \"{}\", \"line\": {}, \"token\": \"{}\", \
             \"message\": \"{}\"}}",
            v.rule,
            esc(&v.path),
            v.line,
            esc(&v.token),
            esc(&v.message)
        );
    }
    if report.violations.is_empty() {
        out.push_str("],\n");
    } else {
        out.push_str("\n  ],\n");
    }
    out.push_str("  \"warnings\": [");
    for (i, w) in report.warnings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\n    \"{}\"", esc(w));
    }
    if report.warnings.is_empty() {
        out.push_str("]\n");
    } else {
        out.push_str("\n  ]\n");
    }
    out.push_str("}\n");
    out
}

/// Minimal SARIF 2.1.0: one run, one rule descriptor per rule id, one
/// result per violation. Enough for CI annotation uploaders.
pub fn render_sarif(report: &LintReport) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"version\": \"2.1.0\",\n");
    out.push_str(
        "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n  \"runs\": [\n    {\n",
    );
    out.push_str("      \"tool\": {\n        \"driver\": {\n");
    out.push_str("          \"name\": \"xtask-lint\",\n");
    out.push_str("          \"informationUri\": \"DESIGN.md\",\n");
    out.push_str("          \"rules\": [");
    for (i, r) in Rule::ALL.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n            {{\"id\": \"{}\", \"shortDescription\": {{\"text\": \"{}\"}}}}",
            r,
            esc(r.summary())
        );
    }
    out.push_str("\n          ]\n        }\n      },\n");
    out.push_str("      \"results\": [");
    for (i, v) in report.violations.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n        {{\"ruleId\": \"{}\", \"level\": \"error\", \"message\": {{\"text\": \
             \"{}\"}}, \"locations\": [{{\"physicalLocation\": {{\"artifactLocation\": \
             {{\"uri\": \"{}\"}}, \"region\": {{\"startLine\": {}}}}}}}]}}",
            v.rule,
            esc(&v.message),
            esc(&v.path),
            v.line
        );
    }
    if report.violations.is_empty() {
        out.push_str("]\n");
    } else {
        out.push_str("\n      ]\n");
    }
    out.push_str("    }\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::{LintReport, Violation};

    fn report() -> LintReport {
        LintReport {
            violations: vec![Violation {
                rule: Rule::D2,
                path: "crates/a/src/lib.rs".into(),
                line: 7,
                token: "HashMap".into(),
                message: "say \"no\" to\thash order".into(),
            }],
            warnings: vec!["note".into()],
            files_checked: 3,
        }
    }

    #[test]
    fn json_escapes_and_shapes() {
        let j = render_json(&report());
        assert!(j.contains("\"files_checked\": 3"));
        assert!(j.contains("\\\"no\\\" to\\thash"));
        assert!(j.contains("\"rule\": \"D2\""));
    }

    #[test]
    fn sarif_has_rule_table_and_result() {
        let s = render_sarif(&report());
        assert!(s.contains("\"version\": \"2.1.0\""));
        assert!(s.contains("\"id\": \"W1\""));
        assert!(s.contains("\"uri\": \"crates/a/src/lib.rs\""));
        assert!(s.contains("\"startLine\": 7"));
    }

    #[test]
    fn empty_report_renders_empty_arrays() {
        let j = render_json(&LintReport::default());
        assert!(j.contains("\"violations\": [],"));
        let s = render_sarif(&LintReport::default());
        assert!(s.contains("\"results\": []"));
    }
}
