//! Index-keyed parallel execution for the analyzer's per-file work.
//!
//! Same pattern as `bench::pool` (the workspace's sanctioned design for
//! determinism-preserving parallelism): workers pull indices from a
//! shared cursor, write results into a slot keyed by the index, and the
//! caller receives them in input order — so the analyzer's output is
//! byte-identical at any worker count, including 1. `xtask` cannot
//! depend on `bench` (the linter sits outside the crate layering it
//! enforces), so the ~40 lines are restated here rather than imported.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Worker count: `DUET_JOBS` if set (minimum 1), else the machine's
/// available parallelism, else 1.
pub fn jobs() -> usize {
    if let Some(j) = std::env::var("DUET_JOBS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
    {
        return j.max(1);
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Runs `f(0..n)` on up to `jobs` workers and returns the results in
/// index order. `f` must be pure with respect to index order (lexing a
/// file is); the output is then identical at any `jobs`.
pub fn run_indexed<T, F>(n: usize, jobs: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let width = jobs.max(1).min(n);
    if width <= 1 {
        return (0..n).map(f).collect();
    }
    let cursor = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<T>>> = Mutex::new((0..n).map(|_| None).collect());
    std::thread::scope(|s| {
        for _ in 0..width {
            s.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = f(i);
                match slots.lock() {
                    Ok(mut guard) => guard[i] = Some(r),
                    // A sibling panicked while holding the lock; stop
                    // pulling work (the scope propagates the panic).
                    Err(_) => break,
                }
            });
        }
    });
    let collected = match slots.into_inner() {
        Ok(v) => v,
        Err(poisoned) => poisoned.into_inner(),
    };
    collected
        .into_iter()
        .map(|slot| slot.expect("pool worker dropped a slot"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_arrive_in_index_order_at_any_width() {
        let sequential: Vec<usize> = (0..53).map(|i| i * 7).collect();
        for jobs in [1, 2, 4, 9] {
            assert_eq!(run_indexed(53, jobs, |i| i * 7), sequential, "jobs={jobs}");
        }
    }

    #[test]
    fn empty_and_single_inputs() {
        assert_eq!(run_indexed(0, 4, |i| i), Vec::<usize>::new());
        assert_eq!(run_indexed(1, 4, |i| i + 1), vec![1]);
    }
}
