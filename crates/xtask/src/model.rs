//! The shared workspace model every analysis pass runs over.
//!
//! `xtask lint` grew from a single-pass token linter into a multi-pass
//! analyzer; the passes share one [`WorkspaceModel`] built exactly once
//! per run:
//!
//! - the **file set** — every `.rs` file in the workspace plus every
//!   `Cargo.toml` and `DESIGN.md`, lexed up front (in parallel, with
//!   index-keyed collection so the model — and therefore every report —
//!   is byte-identical at any worker count);
//! - the **crate graph** — package names and dependency edges parsed
//!   from the manifests, which the L1 layering pass checks against the
//!   sanctioned layer ranks;
//! - **symbol tables** — the names of functions returning `SimResult`
//!   (for the E1 discarded-error pass), the `FaultSite` variants with
//!   their labels and preset mentions (F1/F2), the trace-kind emissions
//!   at every `TraceHandle` call site (S2), and the kind registry rows
//!   of DESIGN.md §10.1 that those emissions are checked against.
//!
//! The model can be built from disk ([`WorkspaceModel::from_root`]) or
//! from in-memory sources ([`WorkspaceModel::from_sources`]); the
//! fixture tests use the latter to exercise every pass hermetically.

use crate::lexer::{lex, Lexed};
use crate::pool;
use crate::rules::{classify, RuleSet};
use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

/// One lexed `.rs` source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Repo-relative path, `/`-separated.
    pub rel: String,
    /// Lexed tokens + comments.
    pub lexed: Lexed,
    /// Which per-file rules apply (`None`: out of scope — tests,
    /// fixtures, tooling).
    pub rules: Option<RuleSet>,
    /// The workspace package this file belongs to, if any.
    pub crate_name: Option<String>,
}

/// One workspace package parsed from its `Cargo.toml`.
#[derive(Debug, Clone)]
pub struct CrateInfo {
    /// Package name (`[package] name`), e.g. `"sim-btrfs"` or `"duet"`.
    pub name: String,
    /// Repo-relative manifest path.
    pub manifest_rel: String,
    /// `(dep name, manifest line)` for every `[dependencies]` /
    /// `[dev-dependencies]` entry.
    pub deps: Vec<(String, u32)>,
}

/// One `TraceHandle` emission call site (`tick`/`tick_n`/`event`/
/// `span`/`ctx_begin` with a `TraceLayer::…` first argument).
#[derive(Debug, Clone)]
pub struct KindEmission {
    pub rel: String,
    pub line: u32,
    /// The `TraceLayer` variant at the call site (e.g. `"Cache"`).
    pub layer_variant: String,
    /// The kind string, when the argument is a literal the analyzer
    /// can see; `None` when it is computed (itself an S2 violation).
    pub kind: Option<String>,
}

/// One `FaultSite` enum variant with everything the F1/F2 passes need.
#[derive(Debug, Clone)]
pub struct FaultSiteInfo {
    pub variant: String,
    /// Line of the variant in the registry enum.
    pub line: u32,
    /// The textual label from `label()`, when found (e.g. `"disk-eio"`).
    pub label: Option<String>,
}

/// One row of the DESIGN.md §10.1 kind registry table.
#[derive(Debug, Clone)]
pub struct DesignKind {
    pub layer: String,
    pub kind: String,
    pub line: u32,
}

/// Everything the passes share. Built once per lint run.
#[derive(Debug, Default)]
pub struct WorkspaceModel {
    /// Lexed `.rs` files, sorted by path.
    pub files: Vec<SourceFile>,
    /// Package name → manifest info.
    pub crates: BTreeMap<String, CrateInfo>,
    /// Names of functions whose declared return type is `SimResult`.
    pub simresult_fns: BTreeSet<String>,
    /// The `FaultSite` registry parsed from `sim_core::fault`.
    pub fault_sites: Vec<FaultSiteInfo>,
    /// Repo-relative path the registry was found under (F1/F2 reports
    /// anchor there).
    pub fault_registry_rel: Option<String>,
    /// `FaultSite` variants mentioned inside `FaultPlan::preset`.
    pub preset_mentions: BTreeSet<String>,
    /// `FaultSite` variants with an injection hook (`fire(FaultSite::…)`)
    /// in non-test library code outside the registry itself.
    pub hook_mentions: BTreeSet<String>,
    /// `FaultSite` variants (or labels) mentioned in the fault-matrix
    /// test file.
    pub matrix_mentions: BTreeSet<String>,
    /// Trace-kind emissions collected from non-test library code.
    pub emissions: Vec<KindEmission>,
    /// The DESIGN.md kind registry (`(layer, kind)` rows).
    pub design_kinds: Vec<DesignKind>,
    /// Repo-relative path DESIGN.md was found under (reports anchor
    /// there), or `None` when absent.
    pub design_rel: Option<String>,
    /// Files the per-file rule passes actually cover.
    pub files_checked: usize,
}

/// Path of the fault-site registry.
pub const FAULT_REGISTRY: &str = "crates/sim-core/src/fault.rs";
/// Path of the fault-matrix test file (the F2 row registry).
pub const FAULT_MATRIX: &str = "crates/experiments/tests/fault_matrix.rs";
/// Path of the trace plane implementation — excluded from the S1/S2
/// passes: its delegating wrappers *define* `ctx_begin`/`ctx_end` and
/// forward computed kinds by design.
pub const TRACE_PLANE: &str = "crates/sim-core/src/trace.rs";

/// The sanctioned layer ranks (L1). An edge `a → b` is legal iff
/// `rank(b) < rank(a)`: strictly downward, no sideways edges within a
/// band, no upward edges ever. `xtask` is deliberately absent — the
/// analyzer sits outside the stack it checks and may depend on nothing.
pub const LAYER_RANKS: &[(&str, u32)] = &[
    ("sim-core", 0),
    ("sim-disk", 1),
    ("sim-cache", 1),
    ("sim-btrfs", 2),
    ("sim-f2fs", 2),
    ("duet", 3),
    ("duet-tasks", 4),
    ("workloads", 5),
    ("experiments", 6),
    ("bench", 7),
    ("duet-repro", 8),
];

/// The rank of a package, if it is part of the layered stack.
pub fn layer_rank(name: &str) -> Option<u32> {
    LAYER_RANKS
        .iter()
        .find(|(n, _)| *n == name)
        .map(|&(_, r)| r)
}

/// Maps a crate *identifier* as it appears in `use` paths (`sim_core`)
/// back to its package name (`sim-core`).
pub fn crate_of_ident(ident: &str) -> Option<&'static str> {
    LAYER_RANKS
        .iter()
        .map(|&(n, _)| n)
        .find(|n| n.replace('-', "_") == ident)
}

impl WorkspaceModel {
    /// Builds the model from `(repo-relative path, contents)` pairs.
    /// `.rs` entries are lexed (in parallel across `jobs` workers,
    /// index-keyed so the result is order-independent), `Cargo.toml`
    /// entries feed the crate graph, and a `DESIGN.md` entry feeds the
    /// kind registry.
    pub fn from_sources(sources: &[(String, String)], jobs: usize) -> WorkspaceModel {
        let mut model = WorkspaceModel::default();

        // Crate graph first: file → crate attribution needs it.
        let mut dir_to_crate: Vec<(String, String)> = Vec::new(); // (dir prefix, name)
        for (rel, text) in sources {
            if rel == "Cargo.toml" || rel.ends_with("/Cargo.toml") {
                if let Some(info) = parse_manifest(rel, text) {
                    let dir = rel.trim_end_matches("Cargo.toml").to_string();
                    dir_to_crate.push((dir, info.name.clone()));
                    model.crates.insert(info.name.clone(), info);
                }
            }
        }
        // Longest prefix wins: the workspace root manifest also claims
        // `""`, so `crates/<x>/…` must match `crates/<x>/` first.
        dir_to_crate.sort_by(|a, b| b.0.len().cmp(&a.0.len()).then(a.0.cmp(&b.0)));

        let mut rs: Vec<(&String, &String)> = sources
            .iter()
            .filter(|(rel, _)| rel.ends_with(".rs"))
            .map(|(rel, text)| (rel, text))
            .collect();
        rs.sort_by(|a, b| a.0.cmp(b.0));
        let lexed = pool::run_indexed(rs.len(), jobs, |i| lex(rs[i].1));
        for ((rel, _), lexed) in rs.iter().zip(lexed) {
            let rules = classify(rel);
            let crate_name = dir_to_crate
                .iter()
                .find(|(dir, _)| rel.starts_with(dir.as_str()))
                .map(|(_, name)| name.clone());
            if rules.is_some_and(|r| !r.is_empty()) {
                model.files_checked += 1;
            }
            model.files.push(SourceFile {
                rel: (*rel).clone(),
                lexed,
                rules,
                crate_name,
            });
        }

        if let Some((rel, text)) = sources
            .iter()
            .find(|(rel, _)| rel == "DESIGN.md" || rel.ends_with("/DESIGN.md"))
        {
            model.design_rel = Some(rel.clone());
            model.design_kinds = parse_design_kinds(text);
        }

        model.build_symbols();
        model
    }

    /// Builds the model from the workspace on disk.
    pub fn from_root(root: &Path, jobs: usize) -> Result<WorkspaceModel, String> {
        let mut paths: Vec<PathBuf> = Vec::new();
        collect_sources(root, &mut paths)
            .map_err(|e| format!("walking {}: {e}", root.display()))?;
        let mut sources = Vec::with_capacity(paths.len());
        for path in paths {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            let text = std::fs::read_to_string(&path).map_err(|e| format!("reading {rel}: {e}"))?;
            sources.push((rel, text));
        }
        Ok(WorkspaceModel::from_sources(&sources, jobs))
    }

    fn build_symbols(&mut self) {
        // Pre-compute per-file test ranges once; several passes and the
        // symbol sweeps below all need them.
        for file in &self.files {
            let skip = test_ranges(&file.lexed);
            let in_test = |idx: usize| skip.iter().any(|&(a, b)| idx >= a && idx <= b);
            let is_lib = file.rules.is_some();
            let t = &file.lexed.tokens;
            let tok = |i: usize| t.get(i).map(|x| x.text.as_str()).unwrap_or("");

            // Symbol table: `fn name(…) -> SimResult<…>` anywhere in the
            // workspace (tests included — a discarded error is a
            // discarded error regardless of where the callee lives).
            for i in 0..t.len() {
                if let Some(name) = simresult_fn_name(t, i) {
                    self.simresult_fns.insert(name);
                }
            }

            // Trace-kind emissions: `recv.tick(TraceLayer::X, "kind", …)`
            // and friends, in non-test library code (the trace plane's
            // own delegating wrappers are excluded).
            if is_lib && file.rel != TRACE_PLANE {
                for i in 0..t.len() {
                    if !is_emit_method(&t[i].text) || tok(i + 1) != "(" {
                        continue;
                    }
                    if tok(i + 2) != "TraceLayer" || tok(i + 3) != ":" || tok(i + 4) != ":" {
                        continue;
                    }
                    if in_test(i) {
                        continue;
                    }
                    let layer_variant = tok(i + 5).to_string();
                    // The kind argument follows the first depth-1 comma.
                    let mut j = i + 6;
                    let mut depth = 1usize;
                    let mut kind_idx = None;
                    while j < t.len() {
                        match t[j].text.as_str() {
                            "(" | "[" | "{" => depth += 1,
                            ")" | "]" | "}" => {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            "," if depth == 1 => {
                                kind_idx = Some(j + 1);
                                break;
                            }
                            _ => {}
                        }
                        j += 1;
                    }
                    let kind = kind_idx
                        .and_then(|k| t.get(k))
                        .and_then(|x| x.literal.clone());
                    self.emissions.push(KindEmission {
                        rel: file.rel.clone(),
                        line: t[i].line,
                        layer_variant,
                        kind,
                    });
                }
            }

            // Fault registry: the `FaultSite` enum and its `label()` /
            // `preset()` tables.
            if file.rel == FAULT_REGISTRY || file.rel.ends_with("/fault.rs") {
                if self.fault_sites.is_empty() {
                    self.fault_sites = parse_fault_sites(&file.lexed);
                    if !self.fault_sites.is_empty() {
                        self.fault_registry_rel = Some(file.rel.clone());
                    }
                }
                for idx in fn_bodies(t, "preset") {
                    if let Some(v) = faultsite_variant(t, idx) {
                        self.preset_mentions.insert(v);
                    }
                }
            }

            // Injection hooks: `fire(FaultSite::V)` in non-test library
            // code outside the registry.
            if is_lib && !file.rel.ends_with("/fault.rs") {
                for i in 0..t.len() {
                    if t[i].text == "fire" && tok(i + 1) == "(" && !in_test(i) {
                        if let Some(v) = faultsite_variant(t, i + 2) {
                            self.hook_mentions.insert(v);
                        }
                    }
                }
            }

            // Fault-matrix rows: any `FaultSite::V` token or site-label
            // string literal in the matrix test file.
            if file.rel == FAULT_MATRIX || file.rel.ends_with("/fault_matrix.rs") {
                for i in 0..t.len() {
                    if let Some(v) = faultsite_variant(t, i) {
                        self.matrix_mentions.insert(v);
                    }
                    if let Some(lit) = &t[i].literal {
                        self.matrix_mentions.insert(lit.clone());
                    }
                }
            }
        }
    }

    /// The lexed file at `rel`, if present.
    pub fn file(&self, rel: &str) -> Option<&SourceFile> {
        self.files.iter().find(|f| f.rel == rel)
    }
}

fn is_ident(s: &str) -> bool {
    !s.is_empty()
        && s.chars().all(|c| c.is_alphanumeric() || c == '_')
        && !s.chars().next().is_some_and(|c| c.is_ascii_digit())
}

fn is_emit_method(s: &str) -> bool {
    matches!(s, "tick" | "tick_n" | "event" | "span" | "ctx_begin")
}

/// If token `i` opens a `fn` item declaring a `SimResult` return type,
/// the function's name.
pub fn simresult_fn_name(t: &[crate::lexer::Token], i: usize) -> Option<String> {
    if t.get(i)?.text != "fn" {
        return None;
    }
    let name = t.get(i + 1)?.text.clone();
    if !is_ident(&name) {
        return None;
    }
    // Scan past the parameter list: first `(` after the name, to its
    // matching `)` (generics like `<F: Fn(usize) -> T>` sit between —
    // depth counting over all bracket kinds handles them).
    let mut j = i + 2;
    while j < t.len() && t[j].text != "(" {
        if matches!(t[j].text.as_str(), "{" | ";") {
            return None; // no parameter list: not a function after all
        }
        j += 1;
    }
    let mut depth = 0usize;
    while j < t.len() {
        match t[j].text.as_str() {
            "(" => depth += 1,
            ")" => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            _ => {}
        }
        j += 1;
    }
    // `-> …SimResult…` before the body/semicolon?
    if t.get(j + 1).map(|x| x.text.as_str()) != Some("-")
        || t.get(j + 2).map(|x| x.text.as_str()) != Some(">")
    {
        return None;
    }
    let mut k = j + 3;
    while k < t.len() && !matches!(t[k].text.as_str(), "{" | ";" | "where") {
        if t[k].text == "SimResult" {
            return Some(name);
        }
        k += 1;
    }
    None
}

/// Token indices of `FaultSite :: Variant` starting at `i`, returning
/// the variant name.
fn faultsite_variant(t: &[crate::lexer::Token], i: usize) -> Option<String> {
    if t.get(i)?.text != "FaultSite" || t.get(i + 1)?.text != ":" || t.get(i + 2)?.text != ":" {
        return None;
    }
    let v = &t.get(i + 3)?.text;
    is_ident(v).then(|| v.clone())
}

/// Token indices inside the bodies of functions named `name`.
fn fn_bodies(t: &[crate::lexer::Token], name: &str) -> Vec<usize> {
    let mut out = Vec::new();
    for (start, end) in fn_items(t) {
        if t.get(start + 1).map(|x| x.text.as_str()) == Some(name) {
            out.extend(start..=end);
        }
    }
    out
}

/// `(fn_token_idx, body_end_idx)` for every function item with a body.
/// The extent runs from the `fn` keyword through the matching `}` of
/// the body; bodyless declarations (trait methods) are skipped, as are
/// `fn`-pointer types (`fn` not followed by an identifier).
pub fn fn_items(t: &[crate::lexer::Token]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < t.len() {
        if t[i].text != "fn" || !t.get(i + 1).is_some_and(|x| is_ident(&x.text)) {
            i += 1;
            continue;
        }
        let start = i;
        // Find the body's opening brace; a `;` first means no body.
        let mut j = i + 2;
        let mut found = None;
        while j < t.len() {
            match t[j].text.as_str() {
                "{" => {
                    found = Some(j);
                    break;
                }
                ";" => break,
                _ => {}
            }
            j += 1;
        }
        let Some(open) = found else {
            i = j + 1;
            continue;
        };
        let mut depth = 0usize;
        let mut end = open;
        while end < t.len() {
            match t[end].text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            end += 1;
        }
        out.push((start, end));
        i = end + 1;
    }
    out
}

/// Parses the `FaultSite` enum: variant names with their lines, plus
/// labels from the `label()` match arms.
fn parse_fault_sites(lx: &Lexed) -> Vec<FaultSiteInfo> {
    let t = &lx.tokens;
    let mut out: Vec<FaultSiteInfo> = Vec::new();
    // Variants: idents at brace depth 1 inside `enum FaultSite { … }`,
    // each terminated by `,` or `}`.
    let mut i = 0;
    while i + 2 < t.len() {
        if t[i].text == "enum" && t[i + 1].text == "FaultSite" && t[i + 2].text == "{" {
            let mut depth = 1usize;
            let mut j = i + 3;
            while j < t.len() && depth > 0 {
                match t[j].text.as_str() {
                    "{" | "(" => depth += 1,
                    "}" | ")" => depth -= 1,
                    s if depth == 1 && is_ident(s) => {
                        let next = t.get(j + 1).map(|x| x.text.as_str());
                        if matches!(next, Some(",") | Some("}")) {
                            out.push(FaultSiteInfo {
                                variant: s.to_string(),
                                line: t[j].line,
                                label: None,
                            });
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            break;
        }
        i += 1;
    }
    // Labels: `FaultSite::V => "label"` arms anywhere in the file.
    for i in 0..t.len() {
        if let Some(v) = faultsite_variant(t, i) {
            if t.get(i + 4).map(|x| x.text.as_str()) == Some("=")
                && t.get(i + 5).map(|x| x.text.as_str()) == Some(">")
            {
                if let Some(lit) = t.get(i + 6).and_then(|x| x.literal.clone()) {
                    if let Some(info) = out.iter_mut().find(|s| s.variant == v) {
                        info.label.get_or_insert(lit);
                    }
                }
            }
        }
    }
    out
}

/// Parses the §10.1 kind-registry rows out of DESIGN.md: markdown table
/// rows whose first cell is a backticked `TraceLayer` label and whose
/// second cell is the backticked kind. The backticks are mandatory —
/// they distinguish registry rows from prose tables that happen to
/// start with a layer word.
fn parse_design_kinds(text: &str) -> Vec<DesignKind> {
    const LAYERS: [&str; 6] = ["disk", "cache", "btrfs", "f2fs", "duet", "task"];
    let mut out = Vec::new();
    for (nr, line) in text.lines().enumerate() {
        let line = line.trim();
        if !line.starts_with('|') {
            continue;
        }
        let cells: Vec<&str> = line.trim_matches('|').split('|').map(str::trim).collect();
        if cells.len() < 2 {
            continue;
        }
        let backticked = |c: &str| c.len() > 2 && c.starts_with('`') && c.ends_with('`');
        if !backticked(cells[0]) || !backticked(cells[1]) {
            continue;
        }
        let layer = cells[0].trim_matches('`');
        let kind = cells[1].trim_matches('`');
        if LAYERS.contains(&layer) {
            out.push(DesignKind {
                layer: layer.to_string(),
                kind: kind.to_string(),
                line: nr as u32 + 1,
            });
        }
    }
    out
}

/// Minimal manifest parse: package name plus `[dependencies]` /
/// `[dev-dependencies]` keys with their line numbers.
fn parse_manifest(rel: &str, text: &str) -> Option<CrateInfo> {
    let mut name = None;
    let mut deps = Vec::new();
    let mut section = String::new();
    for (nr, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line.starts_with('[') {
            section = line.trim_matches(['[', ']']).to_string();
            continue;
        }
        match section.as_str() {
            "package" => {
                if let Some(rest) = line.strip_prefix("name") {
                    if let Some(v) = rest.trim_start().strip_prefix('=') {
                        name = Some(v.trim().trim_matches('"').to_string());
                    }
                }
            }
            "dependencies" | "dev-dependencies" => {
                let key: String = line
                    .chars()
                    .take_while(|c| c.is_alphanumeric() || *c == '-' || *c == '_')
                    .collect();
                if !key.is_empty() {
                    deps.push((key, nr as u32 + 1));
                }
            }
            _ => {}
        }
    }
    Some(CrateInfo {
        name: name?,
        manifest_rel: rel.to_string(),
        deps,
    })
}

/// Index ranges of tokens that belong to `#[cfg(test)]` / `#[test]`
/// items (attribute through end of the item body).
pub fn test_ranges(lx: &Lexed) -> Vec<(usize, usize)> {
    let t = &lx.tokens;
    let mut out = Vec::new();
    let mut i = 0;
    while i < t.len() {
        if t[i].text != "#" || i + 1 >= t.len() || t[i + 1].text != "[" {
            i += 1;
            continue;
        }
        // Collect the attribute's tokens up to the matching `]`.
        let attr_start = i;
        let mut depth = 0usize;
        let mut j = i + 1;
        let mut attr: Vec<&str> = Vec::new();
        while j < t.len() {
            match t[j].text.as_str() {
                "[" => depth += 1,
                "]" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                s => attr.push(s),
            }
            j += 1;
        }
        let is_test_attr = matches!(attr.first().copied(), Some("test"))
            || (attr.first() == Some(&"cfg") && attr.contains(&"test"));
        if !is_test_attr {
            i = j + 1;
            continue;
        }
        // Skip any further attributes, then the item itself: through the
        // first top-level `;` (no body) or the matching `}` of its body.
        let mut k = j + 1;
        while k + 1 < t.len() && t[k].text == "#" && t[k + 1].text == "[" {
            let mut d = 0usize;
            k += 1;
            while k < t.len() {
                match t[k].text.as_str() {
                    "[" => d += 1,
                    "]" => {
                        d -= 1;
                        if d == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                k += 1;
            }
            k += 1;
        }
        let mut brace = 0usize;
        let mut end = k;
        while end < t.len() {
            match t[end].text.as_str() {
                ";" if brace == 0 => break,
                "{" => brace += 1,
                "}" => {
                    brace -= 1;
                    if brace == 0 {
                        break;
                    }
                }
                _ => {}
            }
            end += 1;
        }
        out.push((attr_start, end));
        i = end + 1;
    }
    out
}

/// Recursively collects `.rs`, `Cargo.toml` and `DESIGN.md` files under
/// `dir` (sorted for stable output), skipping VCS/build artefacts.
fn collect_sources(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<_> = std::fs::read_dir(dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            // `fixtures` holds mini-workspaces for the analyzer's own
            // tests; picking up their manifests would corrupt the real
            // crate graph (fixture crates reuse real package names).
            if matches!(name, "target" | ".git" | "results" | "fixtures") {
                continue;
            }
            collect_sources(&path, out)?;
        } else if name.ends_with(".rs") || name == "Cargo.toml" || name == "DESIGN.md" {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn src(pairs: &[(&str, &str)]) -> Vec<(String, String)> {
        pairs
            .iter()
            .map(|(a, b)| (a.to_string(), b.to_string()))
            .collect()
    }

    #[test]
    fn manifest_and_crate_attribution() {
        let m = WorkspaceModel::from_sources(
            &src(&[
                ("Cargo.toml", "[package]\nname = \"root\"\n"),
                (
                    "crates/a/Cargo.toml",
                    "[package]\nname = \"a\"\n[dependencies]\nsim-core = { workspace = true }\n",
                ),
                ("crates/a/src/lib.rs", "pub fn f() {}"),
                ("src/lib.rs", "pub fn g() {}"),
            ]),
            1,
        );
        assert_eq!(m.crates["a"].deps, vec![("sim-core".to_string(), 4)]);
        assert_eq!(
            m.file("crates/a/src/lib.rs").unwrap().crate_name.as_deref(),
            Some("a")
        );
        assert_eq!(
            m.file("src/lib.rs").unwrap().crate_name.as_deref(),
            Some("root")
        );
    }

    #[test]
    fn simresult_symbols_found() {
        let m = WorkspaceModel::from_sources(
            &src(&[(
                "crates/a/src/lib.rs",
                "pub fn ok(x: u32) -> SimResult<()> { Ok(()) }\n\
                 pub fn plain() -> u32 { 0 }\n\
                 pub fn qualified() -> sim_core::SimResult<bool> { Ok(true) }\n\
                 pub fn generic<F: Fn(usize) -> T, T>(f: F) -> SimResult<T> { Err(()) }",
            )]),
            1,
        );
        assert!(m.simresult_fns.contains("ok"));
        assert!(m.simresult_fns.contains("qualified"));
        assert!(m.simresult_fns.contains("generic"));
        assert!(!m.simresult_fns.contains("plain"));
    }

    #[test]
    fn fault_registry_parse() {
        let m = WorkspaceModel::from_sources(
            &src(&[(
                "crates/sim-core/src/fault.rs",
                "pub enum FaultSite {\n    /// doc\n    DiskBoom,\n    CacheFizzle,\n}\n\
                 impl FaultSite {\n    pub fn label(self) -> &'static str {\n        match self {\n\
                 FaultSite::DiskBoom => \"disk-boom\",\nFaultSite::CacheFizzle => \"cache-fizzle\",\n}\n}\n}\n\
                 impl FaultPlan {\n  pub fn preset(name: &str) -> Option<FaultPlan> {\n\
                 let p = q().with_ppm(FaultSite::DiskBoom, 10);\n Some(p)\n}\n}",
            )]),
            1,
        );
        let variants: Vec<&str> = m.fault_sites.iter().map(|s| s.variant.as_str()).collect();
        assert_eq!(variants, vec!["DiskBoom", "CacheFizzle"]);
        assert_eq!(m.fault_sites[0].label.as_deref(), Some("disk-boom"));
        assert!(m.preset_mentions.contains("DiskBoom"));
        assert!(!m.preset_mentions.contains("CacheFizzle"));
    }

    #[test]
    fn design_kind_rows_parse() {
        let rows = parse_design_kinds(
            "# Doc\n\n| layer | kind | meaning |\n|---|---|---|\n\
             | `disk` | `io` | service span |\n| `task` | `scrub.verify` | one block |\n\
             | other | x | not a layer row |\n",
        );
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].layer, "disk");
        assert_eq!(rows[1].kind, "scrub.verify");
    }

    #[test]
    fn model_identical_at_any_worker_count() {
        let sources = src(&[
            ("crates/a/src/lib.rs", "pub fn f() -> SimResult<()> {}"),
            ("crates/a/src/x.rs", "pub fn g() {}"),
            ("crates/b/src/lib.rs", "pub fn h() {}"),
        ]);
        let a = WorkspaceModel::from_sources(&sources, 1);
        let b = WorkspaceModel::from_sources(&sources, 4);
        let paths = |m: &WorkspaceModel| -> Vec<String> {
            m.files.iter().map(|f| f.rel.clone()).collect::<Vec<_>>()
        };
        assert_eq!(paths(&a), paths(&b));
        assert_eq!(a.simresult_fns, b.simresult_fns);
    }
}
