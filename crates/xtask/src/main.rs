//! `cargo run -p xtask -- lint`: the determinism & panic-safety lint.

use std::path::PathBuf;
use std::process::ExitCode;
use xtask::rules::run_lint;

fn workspace_root() -> PathBuf {
    // crates/xtask → workspace root. CARGO_MANIFEST_DIR is compiled in,
    // so the lint works from any working directory.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => {}
        _ => {
            eprintln!("usage: cargo run -p xtask -- lint");
            eprintln!();
            eprintln!("Checks the workspace against the determinism rules:");
            eprintln!("  D1  no wall clock (Instant/SystemTime) — virtual clock only");
            eprintln!(
                "  D2  no HashMap/HashSet iteration-order leaks — BTree* or `// lint: sorted`"
            );
            eprintln!("  D3  no unwrap/expect/panic!/todo! in library code");
            eprintln!("  D4  no ambient state (static mut, thread::spawn, process::exit)");
            eprintln!();
            eprintln!("Waivers: inline `// lint: allow(Dn): reason`, or crates/xtask/lint.allow.");
            return ExitCode::from(2);
        }
    }
    let root = workspace_root();
    match run_lint(&root) {
        Ok(report) => {
            for w in &report.warnings {
                eprintln!("warning: {w}");
            }
            if report.violations.is_empty() {
                println!(
                    "xtask lint: OK ({} files checked, {} warnings)",
                    report.files_checked,
                    report.warnings.len()
                );
                ExitCode::SUCCESS
            } else {
                for v in &report.violations {
                    println!("{v}");
                }
                println!(
                    "xtask lint: {} violation(s) in {} files checked",
                    report.violations.len(),
                    report.files_checked
                );
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("xtask lint: error: {e}");
            ExitCode::from(2)
        }
    }
}
