//! `cargo run -p xtask -- lint`: the workspace static analyzer.
//!
//! ```text
//! xtask lint [--format=text|json|sarif] [--jobs=N]
//! xtask lint --explain <RULE|all>
//! ```

use std::path::PathBuf;
use std::process::ExitCode;
use xtask::output::{render_json, render_sarif};
use xtask::rules::{run_lint_with, Rule};

fn workspace_root() -> PathBuf {
    // crates/xtask → workspace root. CARGO_MANIFEST_DIR is compiled in,
    // so the lint works from any working directory.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."))
}

fn usage() -> ExitCode {
    eprintln!("usage: cargo run -p xtask -- lint [--format=text|json|sarif] [--jobs=N]");
    eprintln!("       cargo run -p xtask -- lint --explain <RULE|all>");
    eprintln!();
    eprintln!("Rule families:");
    for r in Rule::ALL {
        eprintln!("  {r}  {}", r.summary());
    }
    eprintln!();
    eprintln!("Waivers: inline `// lint: allow(XN): reason` (or `// lint: sorted` for D2),");
    eprintln!("or crates/xtask/lint.allow. Stale waivers are W1 errors.");
    ExitCode::from(2)
}

fn explain(rule: &str) -> ExitCode {
    let rules: Vec<Rule> = if rule == "all" {
        Rule::ALL.to_vec()
    } else {
        match Rule::parse(rule) {
            Some(r) => vec![r],
            None => {
                eprintln!("xtask lint: unknown rule `{rule}` (try one of: D1 D2 D3 D4 L1 S1 S2 F1 F2 E1 W1, or `all`)");
                return ExitCode::from(2);
            }
        }
    };
    for (i, r) in rules.iter().enumerate() {
        if i > 0 {
            println!();
        }
        println!("{r} — {}", r.summary());
        println!();
        println!("  {}", r.explain());
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) != Some("lint") {
        return usage();
    }
    let mut format = "text".to_string();
    let mut jobs = xtask::pool::jobs();
    let mut rest = args[1..].iter();
    while let Some(arg) = rest.next() {
        if let Some(f) = arg.strip_prefix("--format=") {
            format = f.to_string();
        } else if arg == "--format" {
            format = rest.next().cloned().unwrap_or_default();
        } else if let Some(j) = arg.strip_prefix("--jobs=") {
            match j.parse::<usize>() {
                Ok(n) if n >= 1 => jobs = n,
                _ => return usage(),
            }
        } else if let Some(r) = arg.strip_prefix("--explain=") {
            return explain(r);
        } else if arg == "--explain" {
            let Some(r) = rest.next() else {
                return usage();
            };
            return explain(r);
        } else {
            return usage();
        }
    }
    if !matches!(format.as_str(), "text" | "json" | "sarif") {
        eprintln!("xtask lint: unknown format `{format}` (text, json or sarif)");
        return ExitCode::from(2);
    }

    let root = workspace_root();
    match run_lint_with(&root, jobs) {
        Ok(report) => {
            match format.as_str() {
                "json" => print!("{}", render_json(&report)),
                "sarif" => print!("{}", render_sarif(&report)),
                _ => {
                    for w in &report.warnings {
                        eprintln!("warning: {w}");
                    }
                    if report.violations.is_empty() {
                        println!(
                            "xtask lint: OK ({} files checked, {} warnings)",
                            report.files_checked,
                            report.warnings.len()
                        );
                    } else {
                        for v in &report.violations {
                            println!("{v}");
                        }
                        println!(
                            "xtask lint: {} violation(s) in {} files checked \
                             (`--explain <RULE>` for rationale)",
                            report.violations.len(),
                            report.files_checked
                        );
                    }
                }
            }
            if report.violations.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("xtask lint: error: {e}");
            ExitCode::from(2)
        }
    }
}
