//! A minimal Rust lexer: just enough to separate identifiers,
//! punctuation and comments from string/char literal noise, with line
//! numbers.
//!
//! The lint pass only needs to answer questions like "does the token
//! `unwrap` followed by `(` appear outside test code?" — so the lexer
//! does not classify keywords, numbers or operators precisely. It does
//! handle the parts that would otherwise produce false positives:
//! line and (nested) block comments, string literals, raw strings,
//! byte strings, char literals vs. lifetimes, and raw identifiers.
//!
//! String-literal tokens additionally carry their inner content in
//! [`Token::literal`]: the span/fault passes need to read kind strings
//! (`"scrub.verify"`) and site labels out of otherwise-opaque literals
//! without ever letting that content match token-level rule patterns.

/// One significant token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Token text. Identifiers keep their name; every punctuation
    /// character is its own one-char token; literals collapse to `"&str"`
    /// / `'c'` placeholders so rule patterns can never match inside them.
    pub text: String,
    /// 1-based source line the token *starts* on (multi-line strings
    /// are stamped with their opening quote's line).
    pub line: u32,
    /// For string-literal tokens only: the literal's inner content,
    /// with the common escapes (`\"`, `\\`, `\n`, `\r`, `\t`, `\0`)
    /// resolved; raw strings are carried verbatim. `None` for every
    /// other token.
    pub literal: Option<String>,
}

impl Token {
    fn plain(text: impl Into<String>, line: u32) -> Token {
        Token {
            text: text.into(),
            line,
            literal: None,
        }
    }
}

/// A comment, kept separately for waiver detection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// Comment text without the `//` / `/*` markers, trimmed.
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
}

/// Lexer output: significant tokens plus the comments.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

/// Tokenizes `src`. Never fails: unterminated constructs simply consume
/// the rest of the input (the compiler is the authority on syntax — the
/// linter only runs on code that already builds).
pub fn lex(src: &str) -> Lexed {
    let b: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;
    let n = b.len();
    while i < n {
        let c = b[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => {
                i += 1;
            }
            '/' if i + 1 < n && b[i + 1] == '/' => {
                let start = i + 2;
                let mut j = start;
                while j < n && b[j] != '\n' {
                    j += 1;
                }
                let text: String = b[start..j].iter().collect();
                out.comments.push(Comment {
                    text: text.trim_start_matches(['/', '!']).trim().to_string(),
                    line,
                });
                i = j;
            }
            '/' if i + 1 < n && b[i + 1] == '*' => {
                let start_line = line;
                let start = i + 2;
                let mut depth = 1;
                let mut j = start;
                while j < n && depth > 0 {
                    if b[j] == '\n' {
                        line += 1;
                        j += 1;
                    } else if b[j] == '/' && j + 1 < n && b[j + 1] == '*' {
                        depth += 1;
                        j += 2;
                    } else if b[j] == '*' && j + 1 < n && b[j + 1] == '/' {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                let end = j.saturating_sub(2).max(start);
                let text: String = b[start..end].iter().collect();
                out.comments.push(Comment {
                    text: text.trim_start_matches(['*', '!']).trim().to_string(),
                    line: start_line,
                });
                i = j;
            }
            '"' => {
                let tok_line = line;
                let (end, content) = scan_plain_string(&b, i, &mut line);
                i = end;
                out.tokens.push(Token {
                    text: "\"&str\"".into(),
                    line: tok_line,
                    literal: Some(content),
                });
            }
            'r' | 'b' if is_raw_or_byte_string(&b, i) => {
                let tok_line = line;
                match scan_raw_or_byte(&b, i, &mut line) {
                    RawScan::Str { end, content } => {
                        i = end;
                        out.tokens.push(Token {
                            text: "\"&str\"".into(),
                            line: tok_line,
                            literal: Some(content),
                        });
                    }
                    RawScan::ByteChar { end } => {
                        i = end;
                        out.tokens.push(Token::plain("'c'", tok_line));
                    }
                }
            }
            '\'' => {
                // Lifetime (`'a`) or char literal (`'a'`, `'\n'`)?
                if is_lifetime(&b, i) {
                    let mut j = i + 1;
                    while j < n && (b[j].is_alphanumeric() || b[j] == '_') {
                        j += 1;
                    }
                    out.tokens
                        .push(Token::plain(b[i..j].iter().collect::<String>(), line));
                    i = j;
                } else {
                    i = skip_char_literal(&b, i);
                    out.tokens.push(Token::plain("'c'", line));
                }
            }
            c if c.is_alphanumeric() || c == '_' => {
                let mut j = i;
                while j < n && (b[j].is_alphanumeric() || b[j] == '_') {
                    j += 1;
                }
                let mut text: String = b[i..j].iter().collect();
                // Raw identifiers: `r#match` lexes as `r` `#` `match`
                // otherwise; fold the prefix in.
                if text == "r"
                    && j + 1 < n
                    && b[j] == '#'
                    && (b[j + 1].is_alphabetic() || b[j + 1] == '_')
                {
                    let mut k = j + 1;
                    while k < n && (b[k].is_alphanumeric() || b[k] == '_') {
                        k += 1;
                    }
                    text = b[j + 1..k].iter().collect();
                    j = k;
                }
                out.tokens.push(Token::plain(text, line));
                i = j;
            }
            _ => {
                out.tokens.push(Token::plain(c.to_string(), line));
                i += 1;
            }
        }
    }
    out
}

/// Scans the `"..."` string starting at `i`; returns the past-the-end
/// index and the content with common escapes resolved.
fn scan_plain_string(b: &[char], i: usize, line: &mut u32) -> (usize, String) {
    let mut content = String::new();
    let mut j = i + 1;
    while j < b.len() {
        match b[j] {
            '\\' => {
                if j + 1 < b.len() {
                    content.push(unescape(b[j + 1]));
                    if b[j + 1] == '\n' {
                        *line += 1;
                    }
                }
                j += 2;
            }
            '\n' => {
                *line += 1;
                content.push('\n');
                j += 1;
            }
            '"' => return (j + 1, content),
            c => {
                content.push(c);
                j += 1;
            }
        }
    }
    (j, content)
}

fn unescape(c: char) -> char {
    match c {
        'n' => '\n',
        'r' => '\r',
        't' => '\t',
        '0' => '\0',
        other => other, // `\"`, `\\`, `\'` and anything exotic: keep as-is
    }
}

/// Is the `r`/`b` at `i` the start of a raw/byte string (`r"`, `r#"`,
/// `b"`, `br"` variants) or a byte char (`b'x'`)?
fn is_raw_or_byte_string(b: &[char], i: usize) -> bool {
    let mut j = i;
    // Up to two prefix letters out of {r, b}.
    let mut letters = 0;
    while j < b.len() && (b[j] == 'r' || b[j] == 'b') && letters < 2 {
        j += 1;
        letters += 1;
    }
    // Then optional hashes (raw only) and a quote.
    let hashed = j < b.len() && b[j] == '#';
    while j < b.len() && b[j] == '#' {
        j += 1;
    }
    let quote = j < b.len() && b[j] == '"';
    // `b'x'` byte char also counts as a literal to skip.
    let byte_char = letters == 1 && b[i] == 'b' && j < b.len() && b[j] == '\'';
    quote && (hashed || letters > 0) || byte_char
}

/// Outcome of scanning a raw/byte string or byte char at `i`.
enum RawScan {
    /// A (raw/byte) string literal with its inner content.
    Str { end: usize, content: String },
    /// A `b'x'` byte char (reported as a char token, not a string).
    ByteChar { end: usize },
}

/// Scans the raw/byte string (or byte char) at `i`.
fn scan_raw_or_byte(b: &[char], i: usize, line: &mut u32) -> RawScan {
    let mut j = i;
    while j < b.len() && (b[j] == 'r' || b[j] == 'b') {
        j += 1;
    }
    let mut hashes = 0;
    while j < b.len() && b[j] == '#' {
        hashes += 1;
        j += 1;
    }
    if j < b.len() && b[j] == '\'' {
        return RawScan::ByteChar {
            end: skip_char_literal(b, j),
        };
    }
    if j >= b.len() || b[j] != '"' {
        return RawScan::Str {
            end: j,
            content: String::new(),
        };
    }
    j += 1; // opening quote
            // Raw strings (`r...`, any hashed form) take no escapes; a plain
            // `b"..."` byte string does.
    let raw = hashes > 0 || b[i] == 'r' || (i + 1 < b.len() && b[i] == 'b' && b[i + 1] == 'r');
    let mut content = String::new();
    while j < b.len() {
        match b[j] {
            '\n' => {
                *line += 1;
                content.push('\n');
                j += 1;
            }
            '\\' if !raw => {
                if j + 1 < b.len() {
                    content.push(unescape(b[j + 1]));
                    if b[j + 1] == '\n' {
                        *line += 1;
                    }
                }
                j += 2;
            }
            '"' => {
                let mut k = j + 1;
                let mut seen = 0;
                while k < b.len() && b[k] == '#' && seen < hashes {
                    k += 1;
                    seen += 1;
                }
                if seen == hashes {
                    return RawScan::Str { end: k, content };
                }
                content.push('"');
                j += 1;
            }
            c => {
                content.push(c);
                j += 1;
            }
        }
    }
    RawScan::Str { end: j, content }
}

/// Is the `'` at `i` a lifetime rather than a char literal?
fn is_lifetime(b: &[char], i: usize) -> bool {
    let Some(&c1) = b.get(i + 1) else {
        return false;
    };
    if !(c1.is_alphabetic() || c1 == '_') {
        return false; // `'\n'`, `'('` etc. are char literals
    }
    // `'a'` is a char literal; `'a,`/`'a>`/`'a ` are lifetimes.
    // Multi-char like `'static` is always a lifetime.
    b.get(i + 2) != Some(&'\'')
}

/// Past-the-end index of the char literal at `i`.
fn skip_char_literal(b: &[char], i: usize) -> usize {
    let mut j = i + 1;
    if j < b.len() && b[j] == '\'' {
        // `b''`? malformed; step past.
        return j + 1;
    }
    while j < b.len() {
        match b[j] {
            '\\' => j += 2,
            '\'' => return j + 1,
            '\n' => return j, // malformed; bail at line end
            _ => j += 1,
        }
    }
    j
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        lex(src).tokens.into_iter().map(|t| t.text).collect()
    }

    fn literals(src: &str) -> Vec<Option<String>> {
        lex(src).tokens.into_iter().map(|t| t.literal).collect()
    }

    #[test]
    fn idents_and_punct() {
        assert_eq!(
            texts("foo.unwrap();"),
            vec!["foo", ".", "unwrap", "(", ")", ";"]
        );
    }

    #[test]
    fn strings_do_not_leak_tokens() {
        assert_eq!(
            texts(r#"let s = "HashMap.unwrap()";"#),
            vec!["let", "s", "=", "\"&str\"", ";"]
        );
        assert_eq!(
            texts(r###"let s = r#"panic!("x")"#;"###),
            vec!["let", "s", "=", "\"&str\"", ";"]
        );
        assert_eq!(
            texts(r#"let b = b"unwrap";"#),
            vec!["let", "b", "=", "\"&str\"", ";"]
        );
    }

    #[test]
    fn string_tokens_carry_content() {
        let lits = literals(r#"t.tick(TraceLayer::Cache, "writeback.fail");"#);
        assert!(lits.contains(&Some("writeback.fail".to_string())));
        // Raw strings carry their content verbatim, escapes untouched.
        let lits = literals(r##"let s = r#"a\n"b""#;"##);
        assert_eq!(lits.last().cloned().flatten(), None); // `;` is last
        assert!(lits.contains(&Some("a\\n\"b\"".to_string())));
        // Plain strings resolve the common escapes.
        let lits = literals(r#"let s = "a\n\"b\"";"#);
        assert!(lits.contains(&Some("a\n\"b\"".to_string())));
    }

    #[test]
    fn chars_and_lifetimes() {
        assert_eq!(
            texts("fn f<'a>(x: &'a str) { let c = 'x'; let e = '\\n'; }"),
            vec![
                "fn", "f", "<", "'a", ">", "(", "x", ":", "&", "'a", "str", ")", "{", "let", "c",
                "=", "'c'", ";", "let", "e", "=", "'c'", ";", "}"
            ]
        );
    }

    #[test]
    fn byte_char_is_a_char_not_a_string() {
        // Regression: `b'"'` used to lex as a string placeholder; the
        // quote inside must not open a string either.
        assert_eq!(
            texts("let x = b'\"'; let y = foo();"),
            vec!["let", "x", "=", "'c'", ";", "let", "y", "=", "foo", "(", ")", ";"]
        );
    }

    #[test]
    fn comments_are_captured_not_tokenized() {
        let l = lex("let x = 1; // lint: sorted\n/* unwrap() */ let y = 2;");
        let toks: Vec<&str> = l.tokens.iter().map(|t| t.text.as_str()).collect();
        assert!(!toks.contains(&"unwrap"));
        assert_eq!(l.comments.len(), 2);
        assert_eq!(l.comments[0].text, "lint: sorted");
        assert_eq!(l.comments[0].line, 1);
        assert_eq!(l.comments[1].text, "unwrap()");
        assert_eq!(l.comments[1].line, 2);
    }

    #[test]
    fn nested_block_comments() {
        let l = lex("/* a /* b */ c */ token");
        assert_eq!(l.tokens.len(), 1);
        assert_eq!(l.tokens[0].text, "token");
    }

    #[test]
    fn deeply_nested_comment_hides_rule_tokens() {
        assert_eq!(
            texts("/* outer /* HashMap unwrap() /* deeper */ */ Instant::now() */ let x = 1;"),
            vec!["let", "x", "=", "1", ";"]
        );
    }

    #[test]
    fn line_numbers_track_newlines() {
        let l = lex("a\nb\n\"multi\nline\"\nc");
        let lines: Vec<(String, u32)> = l.tokens.into_iter().map(|t| (t.text, t.line)).collect();
        assert_eq!(lines[0], ("a".into(), 1));
        assert_eq!(lines[1], ("b".into(), 2));
        // Regression: the string token is stamped with its *opening*
        // line (it used to get the closing line).
        assert_eq!(lines[2], ("\"&str\"".into(), 3));
        assert_eq!(lines[3], ("c".into(), 5));
    }

    #[test]
    fn raw_string_line_numbers_track_newlines() {
        let l = lex("a\nr#\"x\ny\"#\nb");
        let lines: Vec<(String, u32)> = l.tokens.into_iter().map(|t| (t.text, t.line)).collect();
        assert_eq!(lines[1], ("\"&str\"".into(), 2));
        assert_eq!(lines[2], ("b".into(), 4));
    }

    #[test]
    fn raw_string_hash_imbalance_does_not_bleed() {
        // `"#` inside an r##-string must not close it; the tail after
        // the real terminator lexes normally.
        assert_eq!(
            texts("let s = r##\"a \"# b unwrap()\"##; done();"),
            vec!["let", "s", "=", "\"&str\"", ";", "done", "(", ")", ";"]
        );
    }

    #[test]
    fn raw_identifiers_fold() {
        assert_eq!(texts("let r#type = 1;"), vec!["let", "type", "=", "1", ";"]);
    }
}
