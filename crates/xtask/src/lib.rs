//! Workspace tooling for the Duet reproduction.
//!
//! The only subcommand today is `lint`, a zero-dependency static
//! analysis pass enforcing the project's determinism and panic-safety
//! rules (D1–D4). See `rules` for the rule table and DESIGN.md's
//! "Determinism & lint policy" section for the rationale.

pub mod lexer;
pub mod rules;
