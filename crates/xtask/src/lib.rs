//! Workspace tooling for the Duet reproduction.
//!
//! The only subcommand today is `lint`, a zero-dependency multi-pass
//! static analyzer enforcing the project's determinism, panic-safety,
//! layering and instrumentation-hygiene rules (D1–D4, L1, S1/S2,
//! F1/F2, E1, W1). See `rules` for the rule table and DESIGN.md §11
//! ("Static analysis") for the rationale.
//!
//! Structure: `lexer` turns source into tokens; `model` builds the
//! shared [`model::WorkspaceModel`] (file set, crate graph, symbol
//! tables) once per run, lexing files in parallel via `pool`; the
//! `passes` run over the model; `rules` owns rule identity, waivers
//! and the driver; `output` renders text/JSON/SARIF.

pub mod lexer;
pub mod model;
pub mod output;
pub mod passes;
pub mod pool;
pub mod rules;
