//! The determinism & panic-safety rules (D1–D4) and the workspace
//! walker that applies them.
//!
//! | id | rule | scope |
//! |----|------|-------|
//! | D1 | no wall clock (`Instant::now`, `SystemTime`, `std::time`) — virtual `sim_core::clock` only | every crate except `xtask` |
//! | D2 | no `HashMap`/`HashSet` where iteration order can leak into event delivery or results — `BTreeMap`/`BTreeSet`, or waive with `// lint: sorted` | sim/framework/experiment crates |
//! | D3 | no `unwrap`/`expect`/`panic!`/`todo!`/`unimplemented!` in library code — route through `sim_core::error` | sim/framework/experiment crates |
//! | D4 | no ambient state: `static mut`, `thread::spawn`, `thread::scope`, `process::exit` | sim/framework/experiment crates, plus the bench harness (its one sanctioned `thread::scope` use, `bench::pool`, is waived in `lint.allow`) |
//!
//! Test code is exempt everywhere: `#[cfg(test)]` / `#[test]` items,
//! `*_tests.rs` files, and anything under `tests/`, `benches/` or
//! `examples/`. Individual violations can be waived inline
//! (`// lint: sorted` for D2, `// lint: allow(Dn): reason` for any
//! rule, on the same or preceding line) or centrally in
//! `crates/xtask/lint.allow`.

use crate::lexer::{lex, Comment, Lexed};
use std::fmt;
use std::path::{Path, PathBuf};

/// Rule identifiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rule {
    /// No wall-clock time sources.
    D1,
    /// Deterministic iteration: no hash-ordered collections.
    D2,
    /// No panics in library code.
    D3,
    /// No ambient state (mutable statics, threads, process exit).
    D4,
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rule::D1 => write!(f, "D1"),
            Rule::D2 => write!(f, "D2"),
            Rule::D3 => write!(f, "D3"),
            Rule::D4 => write!(f, "D4"),
        }
    }
}

impl Rule {
    fn parse(s: &str) -> Option<Rule> {
        match s {
            "D1" => Some(Rule::D1),
            "D2" => Some(Rule::D2),
            "D3" => Some(Rule::D3),
            "D4" => Some(Rule::D4),
            _ => None,
        }
    }
}

/// One finding.
#[derive(Debug, Clone)]
pub struct Violation {
    pub rule: Rule,
    /// Repo-relative path.
    pub path: String,
    pub line: u32,
    /// The offending token or token sequence.
    pub token: String,
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// Which rules apply to a file.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RuleSet {
    pub d1: bool,
    pub d2: bool,
    pub d3: bool,
    pub d4: bool,
}

impl RuleSet {
    /// All four rules (the sim/framework/experiment crates).
    pub const FULL: RuleSet = RuleSet {
        d1: true,
        d2: true,
        d3: true,
        d4: true,
    };
    /// Wall-clock and ambient-state rules (the bench harness): harness
    /// code may panic freely, but must not smuggle wall-clock time into
    /// simulated results, and any thread use outside the sanctioned
    /// `bench::pool` waiver is a violation.
    pub const BENCH: RuleSet = RuleSet {
        d1: true,
        d2: false,
        d3: false,
        d4: true,
    };
    pub fn is_empty(&self) -> bool {
        !(self.d1 || self.d2 || self.d3 || self.d4)
    }
}

/// Crates whose library code is fully in scope: the simulation
/// substrate, the framework, the tasks and the evaluation harness.
const FULL_SCOPE_PREFIXES: &[&str] = &[
    "crates/sim-core/src/",
    "crates/sim-disk/src/",
    "crates/sim-cache/src/",
    "crates/sim-btrfs/src/",
    "crates/sim-f2fs/src/",
    "crates/core/src/",
    "crates/duet-tasks/src/",
    "crates/workloads/src/",
    "crates/experiments/src/",
    "src/",
];

/// Classifies a repo-relative path. `None` means the file is out of
/// scope (tooling, tests, benches, examples, fixtures).
pub fn classify(rel: &str) -> Option<RuleSet> {
    let rel = rel.replace('\\', "/");
    // Test-only code is exempt from every rule.
    if rel.starts_with("tests/")
        || rel.contains("/tests/")
        || rel.contains("/benches/")
        || rel.starts_with("examples/")
        || rel.contains("/examples/")
        || rel.contains("/fixtures/")
        || rel.ends_with("_tests.rs")
    {
        return None;
    }
    // The linter itself (and its fixtures) are out of scope.
    if rel.starts_with("crates/xtask/") {
        return None;
    }
    if FULL_SCOPE_PREFIXES.iter().any(|p| rel.starts_with(p)) {
        return Some(RuleSet::FULL);
    }
    // The bench harness runs real experiments and may panic freely, but
    // must not smuggle wall-clock time into simulated results, and its
    // only threads must be the sanctioned `bench::pool` workers.
    if rel.starts_with("crates/bench/src/") {
        return Some(RuleSet::BENCH);
    }
    None
}

/// One entry of `crates/xtask/lint.allow`:
/// `RULE PATH TOKEN  # justification` (TOKEN may be `*`).
#[derive(Debug, Clone)]
pub struct AllowEntry {
    pub rule: Rule,
    pub path: String,
    pub token: String,
    pub justification: String,
    pub used: std::cell::Cell<bool>,
}

/// Parses the allowlist. Returns `Err` with a message on malformed
/// lines (missing fields or missing justification).
pub fn parse_allowlist(text: &str) -> Result<Vec<AllowEntry>, String> {
    let mut out = Vec::new();
    for (nr, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (spec, justification) = line
            .split_once('#')
            .ok_or(format!("lint.allow:{}: missing `# justification`", nr + 1))?;
        let justification = justification.trim();
        if justification.is_empty() {
            return Err(format!("lint.allow:{}: empty justification", nr + 1));
        }
        let fields: Vec<&str> = spec.split_whitespace().collect();
        let [rule, path, token] = fields[..] else {
            return Err(format!(
                "lint.allow:{}: expected `RULE PATH TOKEN # justification`",
                nr + 1
            ));
        };
        let rule =
            Rule::parse(rule).ok_or(format!("lint.allow:{}: unknown rule `{rule}`", nr + 1))?;
        out.push(AllowEntry {
            rule,
            path: path.to_string(),
            token: token.to_string(),
            justification: justification.to_string(),
            used: std::cell::Cell::new(false),
        });
    }
    Ok(out)
}

/// Index ranges of tokens that belong to `#[cfg(test)]` / `#[test]`
/// items (attribute through end of the item body).
fn test_ranges(lx: &Lexed) -> Vec<(usize, usize)> {
    let t = &lx.tokens;
    let mut out = Vec::new();
    let mut i = 0;
    while i < t.len() {
        if t[i].text != "#" || i + 1 >= t.len() || t[i + 1].text != "[" {
            i += 1;
            continue;
        }
        // Collect the attribute's tokens up to the matching `]`.
        let attr_start = i;
        let mut depth = 0usize;
        let mut j = i + 1;
        let mut attr: Vec<&str> = Vec::new();
        while j < t.len() {
            match t[j].text.as_str() {
                "[" => depth += 1,
                "]" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                s => attr.push(s),
            }
            j += 1;
        }
        let is_test_attr = matches!(attr.first().copied(), Some("test"))
            || (attr.first() == Some(&"cfg") && attr.contains(&"test"));
        if !is_test_attr {
            i = j + 1;
            continue;
        }
        // Skip any further attributes, then the item itself: through the
        // first top-level `;` (no body) or the matching `}` of its body.
        let mut k = j + 1;
        while k + 1 < t.len() && t[k].text == "#" && t[k + 1].text == "[" {
            let mut d = 0usize;
            k += 1;
            while k < t.len() {
                match t[k].text.as_str() {
                    "[" => d += 1,
                    "]" => {
                        d -= 1;
                        if d == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                k += 1;
            }
            k += 1;
        }
        let mut brace = 0usize;
        let mut end = k;
        while end < t.len() {
            match t[end].text.as_str() {
                ";" if brace == 0 => break,
                "{" => brace += 1,
                "}" => {
                    brace -= 1;
                    if brace == 0 {
                        break;
                    }
                }
                _ => {}
            }
            end += 1;
        }
        out.push((attr_start, end));
        i = end + 1;
    }
    out
}

/// Does any waiver comment cover `line` for `rule`? Waivers sit on the
/// violation's line or the line directly above.
fn waived(comments: &[Comment], rule: Rule, line: u32) -> bool {
    comments.iter().any(|c| {
        (c.line == line || c.line + 1 == line)
            && (c.text.contains(&format!("lint: allow({rule})"))
                || (rule == Rule::D2 && c.text.contains("lint: sorted")))
    })
}

/// Lints one file's source text. `rel` is the repo-relative path used
/// in reports and allowlist matching.
pub fn lint_source(rel: &str, src: &str, rules: RuleSet, allow: &[AllowEntry]) -> Vec<Violation> {
    let lx = lex(src);
    let skip = test_ranges(&lx);
    let in_test = |idx: usize| skip.iter().any(|&(a, b)| idx >= a && idx <= b);
    let t = &lx.tokens;
    let mut raw: Vec<(usize, Rule, String, String)> = Vec::new();

    let tok = |i: usize| t.get(i).map(|x| x.text.as_str()).unwrap_or("");
    for (i, token) in t.iter().enumerate() {
        let s = token.text.as_str();
        if rules.d1 {
            match s {
                "SystemTime" | "UNIX_EPOCH" => raw.push((
                    i,
                    Rule::D1,
                    s.into(),
                    format!("wall-clock `{s}` — use the virtual clock (`sim_core::clock`)"),
                )),
                "Instant" => raw.push((
                    i,
                    Rule::D1,
                    s.into(),
                    "wall-clock `std::time::Instant` — use `sim_core::SimInstant`".into(),
                )),
                "std" if tok(i + 1) == ":" && tok(i + 3) == "time" => raw.push((
                    i,
                    Rule::D1,
                    "std::time".into(),
                    "wall-clock `std::time` import — use the virtual clock (`sim_core::clock`)"
                        .into(),
                )),
                _ => {}
            }
        }
        if rules.d2 && (s == "HashMap" || s == "HashSet") {
            raw.push((
                i,
                Rule::D2,
                s.into(),
                format!(
                    "hash-ordered `{s}` can leak iteration order into events/results — use \
                     `BTree{}` or waive with `// lint: sorted`",
                    &s[4..]
                ),
            ));
        }
        if rules.d3 {
            match s {
                "unwrap" | "expect" if tok(i.wrapping_sub(1)) == "." && tok(i + 1) == "(" => {
                    raw.push((
                        i,
                        Rule::D3,
                        s.into(),
                        format!("`.{s}()` in library code — return `sim_core::SimResult` instead"),
                    ));
                }
                "panic" | "todo" | "unimplemented" if tok(i + 1) == "!" => {
                    raw.push((
                        i,
                        Rule::D3,
                        format!("{s}!"),
                        format!("`{s}!` in library code — return `sim_core::SimResult` instead"),
                    ));
                }
                _ => {}
            }
        }
        if rules.d4 {
            match s {
                "static" if tok(i + 1) == "mut" => raw.push((
                    i,
                    Rule::D4,
                    "static mut".into(),
                    "`static mut` is ambient state — thread configuration through constructors"
                        .into(),
                )),
                "thread" if tok(i + 1) == ":" && tok(i + 3) == "spawn" => raw.push((
                    i,
                    Rule::D4,
                    "thread::spawn".into(),
                    "`thread::spawn` in simulation code breaks determinism".into(),
                )),
                "thread" if tok(i + 1) == ":" && tok(i + 3) == "scope" => raw.push((
                    i,
                    Rule::D4,
                    "thread::scope".into(),
                    "`thread::scope` outside the sanctioned `bench::pool` breaks determinism"
                        .into(),
                )),
                "process" if tok(i + 1) == ":" && tok(i + 3) == "exit" => raw.push((
                    i,
                    Rule::D4,
                    "process::exit".into(),
                    "`process::exit` bypasses unwinding — return an error instead".into(),
                )),
                _ => {}
            }
        }
    }

    raw.into_iter()
        .filter(|(idx, _, _, _)| !in_test(*idx))
        .filter(|(idx, rule, token, _)| {
            let line = t[*idx].line;
            if waived(&lx.comments, *rule, line) {
                return false;
            }
            let allowed = allow
                .iter()
                .any(|a| a.rule == *rule && a.path == rel && (a.token == "*" || &a.token == token));
            if allowed {
                for a in allow {
                    if a.rule == *rule && a.path == rel && (a.token == "*" || &a.token == token) {
                        a.used.set(true);
                    }
                }
            }
            !allowed
        })
        .map(|(idx, rule, token, message)| Violation {
            rule,
            path: rel.to_string(),
            line: t[idx].line,
            token,
            message,
        })
        .collect()
}

/// Recursively collects `.rs` files under `dir` (sorted for stable
/// output), skipping VCS/build artefacts.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<_> = std::fs::read_dir(dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if matches!(name, "target" | ".git" | "results") {
                continue;
            }
            collect_rs(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Outcome of a full lint run.
#[derive(Debug, Default)]
pub struct LintReport {
    pub violations: Vec<Violation>,
    /// Non-fatal notes (stale allowlist entries).
    pub warnings: Vec<String>,
    /// Files actually linted.
    pub files_checked: usize,
}

/// Lints the whole workspace rooted at `root`.
pub fn run_lint(root: &Path) -> Result<LintReport, String> {
    let allow_path = root.join("crates/xtask/lint.allow");
    let allow = match std::fs::read_to_string(&allow_path) {
        Ok(text) => parse_allowlist(&text)?,
        Err(_) => Vec::new(),
    };
    let mut files = Vec::new();
    collect_rs(root, &mut files).map_err(|e| format!("walking {}: {e}", root.display()))?;
    let mut report = LintReport::default();
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let Some(rules) = classify(&rel) else {
            continue;
        };
        if rules.is_empty() {
            continue;
        }
        let src = std::fs::read_to_string(&path).map_err(|e| format!("reading {rel}: {e}"))?;
        report.files_checked += 1;
        report
            .violations
            .extend(lint_source(&rel, &src, rules, &allow));
    }
    for a in &allow {
        if !a.used.get() {
            report.warnings.push(format!(
                "lint.allow: stale entry `{} {} {}` (no longer matches anything)",
                a.rule, a.path, a.token
            ));
        }
    }
    Ok(report)
}
