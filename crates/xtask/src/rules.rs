//! Rule definitions, waiver machinery, and the analysis driver.
//!
//! ## Rule families
//!
//! | id | family | rule |
//! |----|--------|------|
//! | D1 | determinism | no wall clock (`Instant::now`, `SystemTime`, `std::time`) — virtual `sim_core::clock` only |
//! | D2 | determinism | no `HashMap`/`HashSet` where iteration order can leak — `BTreeMap`/`BTreeSet`, or waive with `// lint: sorted` |
//! | D3 | panic safety | no `unwrap`/`expect`/`panic!`/`todo!`/`unimplemented!` in library code |
//! | D4 | determinism | no ambient state: `static mut`, `thread::spawn`, `thread::scope`, `process::exit` |
//! | L1 | layering | crate dependencies point strictly down the layer stack (manifest edges and `use` paths) |
//! | S1 | trace hygiene | every `ctx_begin` is paired with a `ctx_end` in the same function |
//! | S2 | trace hygiene | every emitted trace kind is a string literal and appears in the DESIGN.md §10.1 kind registry (both directions) |
//! | F1 | fault registry | every `FaultSite` variant has an injection hook and a preset-plan mention |
//! | F2 | fault registry | every `FaultSite` variant has a `fault_matrix.rs` row |
//! | E1 | error hygiene | no `let _ =` / statement-`.ok()` discard of a `SimResult` |
//! | W1 | waiver audit | no stale waivers: every `lint.allow` entry and inline waiver must suppress something |
//!
//! Test code is exempt from the per-file rules everywhere:
//! `#[cfg(test)]` / `#[test]` items, `*_tests.rs` files, and anything
//! under `tests/`, `benches/`, `examples/` or `fixtures/`. Individual
//! violations can be waived inline (`// lint: sorted` for D2,
//! `// lint: allow(XN): reason` for any rule, on the same or preceding
//! line) or centrally in `crates/xtask/lint.allow`. W1 itself is not
//! waivable — a waiver for the waiver audit would be circular.

use crate::lexer::{lex, Comment, Lexed};
use crate::model::{self, WorkspaceModel};
use crate::passes;
use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;

/// Rule identifiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Rule {
    /// No wall-clock time sources.
    D1,
    /// Deterministic iteration: no hash-ordered collections.
    D2,
    /// No panics in library code.
    D3,
    /// No ambient state (mutable statics, threads, process exit).
    D4,
    /// Crate layering: dependency edges point strictly downward.
    L1,
    /// Trace-context pairing: `ctx_begin` closed in the same function.
    S1,
    /// Trace-kind registry: emissions match the DESIGN.md schema table.
    S2,
    /// Fault sites are live: hook + preset mention for every variant.
    F1,
    /// Fault sites are tested: a fault-matrix row for every variant.
    F2,
    /// No silent discard of `SimResult` values.
    E1,
    /// No stale waivers.
    W1,
}

impl Rule {
    /// Every rule, in report order.
    pub const ALL: [Rule; 11] = [
        Rule::D1,
        Rule::D2,
        Rule::D3,
        Rule::D4,
        Rule::L1,
        Rule::S1,
        Rule::S2,
        Rule::F1,
        Rule::F2,
        Rule::E1,
        Rule::W1,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Rule::D1 => "D1",
            Rule::D2 => "D2",
            Rule::D3 => "D3",
            Rule::D4 => "D4",
            Rule::L1 => "L1",
            Rule::S1 => "S1",
            Rule::S2 => "S2",
            Rule::F1 => "F1",
            Rule::F2 => "F2",
            Rule::E1 => "E1",
            Rule::W1 => "W1",
        }
    }

    pub fn parse(s: &str) -> Option<Rule> {
        Rule::ALL.into_iter().find(|r| r.name() == s)
    }

    /// One-line summary (SARIF `shortDescription`, `--explain` header).
    pub fn summary(self) -> &'static str {
        match self {
            Rule::D1 => "no wall-clock time sources — virtual clock only",
            Rule::D2 => "no hash-ordered collections where iteration order can leak",
            Rule::D3 => "no panics in library code",
            Rule::D4 => "no ambient state (static mut, threads, process exit)",
            Rule::L1 => "crate dependencies point strictly down the layer stack",
            Rule::S1 => "every ctx_begin pairs with a ctx_end in the same function",
            Rule::S2 => "emitted trace kinds are literals listed in the DESIGN.md registry",
            Rule::F1 => "every FaultSite variant has an injection hook and a preset mention",
            Rule::F2 => "every FaultSite variant has a fault_matrix.rs row",
            Rule::E1 => "no silent discard of SimResult values",
            Rule::W1 => "no stale waivers: every waiver must suppress a real violation",
        }
    }

    /// The rationale printed by `lint --explain <RULE>`.
    pub fn explain(self) -> &'static str {
        match self {
            Rule::D1 => {
                "The reproduction's headline claim is bit-stable replay: the same seed \
                 and plan must produce the same digest on every machine, forever. Any \
                 wall-clock read (`Instant::now`, `SystemTime`, `std::time`) smuggles \
                 host timing into simulated results. Use the virtual clock \
                 (`sim_core::clock`, `SimInstant`) instead."
            }
            Rule::D2 => {
                "`HashMap`/`HashSet` iterate in randomized order, so any loop over one \
                 can leak nondeterminism into event delivery, trace streams or result \
                 files. Use `BTreeMap`/`BTreeSet`, or — when the iteration order \
                 provably cannot escape (e.g. the result is re-sorted) — waive the \
                 site with `// lint: sorted`."
            }
            Rule::D3 => {
                "Duet hints are advisory (paper §3.2): a task that panics on a bad \
                 hint violates degrade-to-baseline. Library code must route failures \
                 through `sim_core::SimResult` so the framework can fall back; \
                 `unwrap`/`expect`/`panic!`/`todo!`/`unimplemented!` are reserved for \
                 tests and the bench harness."
            }
            Rule::D4 => {
                "`static mut`, `thread::spawn`/`thread::scope` and `process::exit` \
                 are ambient state: they bypass the simulation's single-threaded \
                 deterministic event loop. The one sanctioned exception is the \
                 index-keyed worker pool in `bench::pool`, waived in lint.allow."
            }
            Rule::L1 => {
                "The stack is layered: sim-core < sim-disk/sim-cache < \
                 sim-btrfs/sim-f2fs < duet < duet-tasks < workloads < experiments < \
                 bench < duet-repro, and xtask depends on nothing. Dependency edges \
                 (both `Cargo.toml` entries and `use` paths in library code) must \
                 point strictly downward — an upward or sideways edge lets framework \
                 behaviour leak into the substrate it is supposed to observe, which \
                 is exactly the coupling the paper's hint design avoids."
            }
            Rule::S1 => {
                "First-divergence localization replays context spans; a `ctx_begin` \
                 whose function never calls `ctx_end` leaks an open context into \
                 every later event's causality chain, silently corrupting blame \
                 assignment. Open and close the context in the same function (the \
                 close may sit on an early-return path)."
            }
            Rule::S2 => {
                "The trace schema (DESIGN.md §10.1) is the contract between \
                 emitters and the divergence localizer. A kind string that is \
                 computed at runtime cannot be audited; a kind that is emitted but \
                 undocumented (or documented but never emitted) is schema drift — \
                 the dominant failure mode of simulation instrumentation. Emit \
                 literal kinds and keep the registry table in sync (the check runs \
                 in both directions)."
            }
            Rule::F1 => {
                "A `FaultSite` variant with no `fire(...)` hook in library code is \
                 dead injection surface; one absent from every `FaultPlan::preset` \
                 is never exercised by the fault grid. Either wire the site up or \
                 delete it — a registry entry that cannot fire gives false \
                 confidence in fault coverage."
            }
            Rule::F2 => {
                "Every fault site must appear in \
                 `crates/experiments/tests/fault_matrix.rs` (by variant name or \
                 site label) so the Duet-vs-baseline equivalence oracle provably \
                 runs against it. A site the matrix never mentions is untested by \
                 construction."
            }
            Rule::E1 => {
                "Degrade-to-baseline (paper §3.2) means every `SimResult` is a \
                 decision point: handle it, propagate it, or explicitly document \
                 why dropping it is safe. `let _ = fallible()` and statement-form \
                 `fallible().ok();` silently discard the error path. Waive \
                 intentional best-effort sites with `// lint: allow(E1): reason`."
            }
            Rule::W1 => {
                "Waivers are precision instruments: a `lint.allow` entry or inline \
                 `// lint: allow(..)` that no longer suppresses anything is rot — \
                 it documents an exemption that does not exist and will silently \
                 mask a future regression at the same site. Stale waivers are \
                 errors; delete them. W1 itself cannot be waived."
            }
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One finding.
#[derive(Debug, Clone)]
pub struct Violation {
    pub rule: Rule,
    /// Repo-relative path.
    pub path: String,
    pub line: u32,
    /// The offending token or token sequence.
    pub token: String,
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// Which per-file rules apply to a file. The model-level passes (L1,
/// S2 registry drift, F1, F2, W1) run once per workspace, not per file.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RuleSet {
    pub d1: bool,
    pub d2: bool,
    pub d3: bool,
    pub d4: bool,
    /// Trace-context pairing (S1).
    pub s1: bool,
    /// Trace-kind literal check at emission sites (S2).
    pub s2: bool,
    /// Discarded-`SimResult` detection (E1).
    pub e1: bool,
}

impl RuleSet {
    /// Every per-file rule (the sim/framework/experiment crates).
    pub const FULL: RuleSet = RuleSet {
        d1: true,
        d2: true,
        d3: true,
        d4: true,
        s1: true,
        s2: true,
        e1: true,
    };
    /// Wall-clock and ambient-state rules (the bench harness): harness
    /// code may panic and discard errors freely, but must not smuggle
    /// wall-clock time into simulated results, and any thread use
    /// outside the sanctioned `bench::pool` waiver is a violation.
    pub const BENCH: RuleSet = RuleSet {
        d1: true,
        d2: false,
        d3: false,
        d4: true,
        s1: false,
        s2: false,
        e1: false,
    };
    pub fn is_empty(&self) -> bool {
        !(self.d1 || self.d2 || self.d3 || self.d4 || self.s1 || self.s2 || self.e1)
    }
}

/// Crates whose library code is fully in scope: the simulation
/// substrate, the framework, the tasks and the evaluation harness.
const FULL_SCOPE_PREFIXES: &[&str] = &[
    "crates/sim-core/src/",
    "crates/sim-disk/src/",
    "crates/sim-cache/src/",
    "crates/sim-btrfs/src/",
    "crates/sim-f2fs/src/",
    "crates/core/src/",
    "crates/duet-tasks/src/",
    "crates/workloads/src/",
    "crates/experiments/src/",
    "src/",
];

/// Classifies a repo-relative path. `None` means the file is out of
/// scope (tooling, tests, benches, examples, fixtures).
pub fn classify(rel: &str) -> Option<RuleSet> {
    let rel = rel.replace('\\', "/");
    // Test-only code is exempt from every rule.
    if rel.starts_with("tests/")
        || rel.contains("/tests/")
        || rel.contains("/benches/")
        || rel.starts_with("examples/")
        || rel.contains("/examples/")
        || rel.contains("/fixtures/")
        || rel.ends_with("_tests.rs")
    {
        return None;
    }
    // The linter itself (and its fixtures) are out of scope.
    if rel.starts_with("crates/xtask/") {
        return None;
    }
    if FULL_SCOPE_PREFIXES.iter().any(|p| rel.starts_with(p)) {
        return Some(RuleSet::FULL);
    }
    // The bench harness runs real experiments and may panic freely, but
    // must not smuggle wall-clock time into simulated results, and its
    // only threads must be the sanctioned `bench::pool` workers.
    if rel.starts_with("crates/bench/src/") {
        return Some(RuleSet::BENCH);
    }
    None
}

/// One entry of `crates/xtask/lint.allow`:
/// `RULE PATH TOKEN  # justification` (TOKEN may be `*`).
#[derive(Debug, Clone)]
pub struct AllowEntry {
    pub rule: Rule,
    pub path: String,
    pub token: String,
    pub justification: String,
    /// 1-based line in lint.allow (anchors W1 stale-entry reports).
    pub line: u32,
    pub used: std::cell::Cell<bool>,
}

/// Parses the allowlist. Returns `Err` with a message on malformed
/// lines (missing fields or missing justification).
pub fn parse_allowlist(text: &str) -> Result<Vec<AllowEntry>, String> {
    let mut out = Vec::new();
    for (nr, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (spec, justification) = line
            .split_once('#')
            .ok_or(format!("lint.allow:{}: missing `# justification`", nr + 1))?;
        let justification = justification.trim();
        if justification.is_empty() {
            return Err(format!("lint.allow:{}: empty justification", nr + 1));
        }
        let fields: Vec<&str> = spec.split_whitespace().collect();
        let [rule, path, token] = fields[..] else {
            return Err(format!(
                "lint.allow:{}: expected `RULE PATH TOKEN # justification`",
                nr + 1
            ));
        };
        let rule =
            Rule::parse(rule).ok_or(format!("lint.allow:{}: unknown rule `{rule}`", nr + 1))?;
        if rule == Rule::W1 {
            return Err(format!(
                "lint.allow:{}: W1 (the waiver audit) cannot itself be waived",
                nr + 1
            ));
        }
        out.push(AllowEntry {
            rule,
            path: path.to_string(),
            token: token.to_string(),
            justification: justification.to_string(),
            line: nr as u32 + 1,
            used: std::cell::Cell::new(false),
        });
    }
    Ok(out)
}

/// A pre-waiver finding. Per-file passes report the offending token's
/// index so the driver can drop findings inside test items; model-level
/// passes report `tok_idx: None`.
#[derive(Debug, Clone)]
pub struct Finding {
    pub rule: Rule,
    pub rel: String,
    pub line: u32,
    pub token: String,
    pub message: String,
}

/// One inline waiver comment found in a scoped file.
struct InlineWaiver {
    line: u32,
    /// `None`: malformed (unknown rule name inside `lint: allow(..)`).
    rule: Option<Rule>,
    /// `true` for the D2-specific `// lint: sorted` form.
    sorted_form: bool,
    text: String,
    consumed: std::cell::Cell<bool>,
    /// Waivers inside test items are exempt from the staleness audit
    /// (the code they annotate is exempt from the rules).
    in_test: bool,
}

fn parse_inline_waivers(lx: &Lexed) -> Vec<InlineWaiver> {
    let test_lines: Vec<(u32, u32)> = model::test_ranges(lx)
        .iter()
        .map(|&(a, b)| (lx.tokens[a].line, lx.tokens[b].line))
        .collect();
    let mut out = Vec::new();
    for c in &lx.comments {
        let (rule, sorted_form) = if let Some(rest) = c.text.split("lint: allow(").nth(1) {
            let name = rest.split(')').next().unwrap_or("");
            (Rule::parse(name), false)
        } else if c.text.contains("lint: sorted") {
            (Some(Rule::D2), true)
        } else {
            continue;
        };
        out.push(InlineWaiver {
            line: c.line,
            rule,
            sorted_form,
            text: c.text.trim().to_string(),
            consumed: std::cell::Cell::new(false),
            in_test: test_lines.iter().any(|&(a, b)| c.line >= a && c.line <= b),
        });
    }
    out
}

/// Does any waiver comment cover `line` for `rule`? Waivers sit on the
/// violation's line or the line directly above. (Single-file entry
/// point; the workspace driver tracks consumption as well.)
fn waived(comments: &[Comment], rule: Rule, line: u32) -> bool {
    comments.iter().any(|c| {
        (c.line == line || c.line + 1 == line)
            && (c.text.contains(&format!("lint: allow({rule})"))
                || (rule == Rule::D2 && c.text.contains("lint: sorted")))
    })
}

/// Lints one file's source text in isolation: the token rules plus the
/// single-file slices of S1/E1 (E1 resolves callees against the file's
/// own `fn` signatures — the workspace driver uses the global symbol
/// table instead). `rel` is the repo-relative path used in reports and
/// allowlist matching.
pub fn lint_source(rel: &str, src: &str, rules: RuleSet, allow: &[AllowEntry]) -> Vec<Violation> {
    let lx = lex(src);
    let skip = model::test_ranges(&lx);
    let in_test = |idx: usize| skip.iter().any(|&(a, b)| idx >= a && idx <= b);
    let t = &lx.tokens;

    let mut simresult_fns = std::collections::BTreeSet::new();
    if rules.e1 {
        for i in 0..t.len() {
            if let Some(name) = model::simresult_fn_name(t, i) {
                simresult_fns.insert(name);
            }
        }
    }
    let raw = per_file_findings(t, rules, &simresult_fns);

    raw.into_iter()
        .filter(|(idx, _, _, _)| !in_test(*idx))
        .filter(|(idx, rule, token, _)| {
            let line = t[*idx].line;
            if waived(&lx.comments, *rule, line) {
                return false;
            }
            let allowed = allow
                .iter()
                .any(|a| a.rule == *rule && a.path == rel && (a.token == "*" || &a.token == token));
            if allowed {
                for a in allow {
                    if a.rule == *rule && a.path == rel && (a.token == "*" || &a.token == token) {
                        a.used.set(true);
                    }
                }
            }
            !allowed
        })
        .map(|(idx, rule, token, message)| Violation {
            rule,
            path: rel.to_string(),
            line: t[idx].line,
            token,
            message,
        })
        .collect()
}

/// Every per-file pass over one token stream, pre-waiver:
/// `(token index, rule, token, message)`.
fn per_file_findings(
    t: &[crate::lexer::Token],
    rules: RuleSet,
    simresult_fns: &std::collections::BTreeSet<String>,
) -> Vec<(usize, Rule, String, String)> {
    let mut raw = passes::tokens::find(t, rules);
    if rules.s1 {
        raw.extend(passes::spans::unpaired_contexts(t));
    }
    if rules.e1 {
        raw.extend(passes::errors::find(t, simresult_fns));
    }
    raw
}

/// Outcome of a full lint run.
#[derive(Debug, Default)]
pub struct LintReport {
    pub violations: Vec<Violation>,
    /// Non-fatal notes (e.g. a missing DESIGN.md limits the S2 check).
    pub warnings: Vec<String>,
    /// Files actually linted.
    pub files_checked: usize,
}

/// Runs every pass over an already-built model. This is the whole
/// analysis, minus I/O — the fixture tests call it directly.
pub fn analyze(model: &WorkspaceModel, allow: &[AllowEntry]) -> LintReport {
    let mut raw: Vec<Finding> = Vec::new();

    // Per-file passes (token rules, S1, S2 emission-site slice, E1),
    // with test items dropped before waiver matching.
    for file in &model.files {
        let Some(rules) = file.rules else {
            continue;
        };
        if rules.is_empty() {
            continue;
        }
        let mut rules = rules;
        if file.rel == model::TRACE_PLANE {
            // The trace plane defines the ctx/kind API; its delegating
            // wrappers are not emission or pairing sites.
            rules.s1 = false;
        }
        let t = &file.lexed.tokens;
        let skip = model::test_ranges(&file.lexed);
        let in_test = |idx: usize| skip.iter().any(|&(a, b)| idx >= a && idx <= b);
        for (idx, rule, token, message) in per_file_findings(t, rules, &model.simresult_fns) {
            if !in_test(idx) {
                raw.push(Finding {
                    rule,
                    rel: file.rel.clone(),
                    line: t[idx].line,
                    token,
                    message,
                });
            }
        }
    }

    // Model-level passes.
    raw.extend(passes::layering::find(model));
    raw.extend(passes::spans::kind_registry(model));
    raw.extend(passes::faults::find(model));

    // Waiver application, with consumption tracking for the W1 audit.
    let mut inline: BTreeMap<String, Vec<InlineWaiver>> = BTreeMap::new();
    for file in &model.files {
        if file.rules.is_some_and(|r| !r.is_empty()) {
            let ws = parse_inline_waivers(&file.lexed);
            if !ws.is_empty() {
                inline.insert(file.rel.clone(), ws);
            }
        }
    }

    let mut report = LintReport {
        files_checked: model.files_checked,
        ..LintReport::default()
    };
    if model.design_rel.is_none() {
        report
            .warnings
            .push("DESIGN.md not found: the S2 kind-registry check is limited".into());
    }

    for f in raw {
        let covered_inline = inline.get(&f.rel).is_some_and(|ws| {
            let hit = ws.iter().find(|w| {
                (w.line == f.line || w.line + 1 == f.line)
                    && w.rule == Some(f.rule)
                    && (!w.sorted_form || f.rule == Rule::D2)
            });
            if let Some(w) = hit {
                w.consumed.set(true);
            }
            hit.is_some()
        });
        if covered_inline {
            continue;
        }
        let mut covered_allow = false;
        for a in allow {
            if a.rule == f.rule && a.path == f.rel && (a.token == "*" || a.token == f.token) {
                a.used.set(true);
                covered_allow = true;
            }
        }
        if covered_allow {
            continue;
        }
        report.violations.push(Violation {
            rule: f.rule,
            path: f.rel,
            line: f.line,
            token: f.token,
            message: f.message,
        });
    }

    // W1: stale or malformed waivers are errors.
    for (rel, ws) in &inline {
        for w in ws {
            if w.in_test {
                continue;
            }
            if w.rule.is_none() {
                report.violations.push(Violation {
                    rule: Rule::W1,
                    path: rel.clone(),
                    line: w.line,
                    token: w.text.clone(),
                    message: format!("malformed waiver `{}`: unknown rule name", w.text),
                });
            } else if !w.consumed.get() {
                report.violations.push(Violation {
                    rule: Rule::W1,
                    path: rel.clone(),
                    line: w.line,
                    token: w.text.clone(),
                    message: format!(
                        "stale inline waiver `{}`: it no longer suppresses any violation — \
                         delete it",
                        w.text
                    ),
                });
            }
        }
    }
    for a in allow {
        if !a.used.get() {
            report.violations.push(Violation {
                rule: Rule::W1,
                path: "crates/xtask/lint.allow".into(),
                line: a.line,
                token: a.token.clone(),
                message: format!(
                    "stale allowlist entry `{} {} {}`: it no longer suppresses any violation — \
                     delete it",
                    a.rule, a.path, a.token
                ),
            });
        }
    }

    report.violations.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.rule, a.token.as_str()).cmp(&(
            b.path.as_str(),
            b.line,
            b.rule,
            b.token.as_str(),
        ))
    });
    report
}

/// Lints the whole workspace rooted at `root` with an explicit worker
/// count (`jobs`). The report is byte-identical at any width.
pub fn run_lint_with(root: &Path, jobs: usize) -> Result<LintReport, String> {
    let allow_path = root.join("crates/xtask/lint.allow");
    let allow = match std::fs::read_to_string(&allow_path) {
        Ok(text) => parse_allowlist(&text)?,
        Err(_) => Vec::new(),
    };
    let model = WorkspaceModel::from_root(root, jobs)?;
    Ok(analyze(&model, &allow))
}

/// Lints the whole workspace rooted at `root` (worker count from
/// `DUET_JOBS` / available parallelism).
pub fn run_lint(root: &Path) -> Result<LintReport, String> {
    run_lint_with(root, crate::pool::jobs())
}
