//! E1 — discarded-`SimResult` detection.
//!
//! Two discard shapes are flagged, both resolved against the symbol
//! table of functions whose declared return type mentions `SimResult`:
//!
//! - `let _ = …fallible(…);` — the *last* top-level call in the
//!   initializer decides the expression's type, so that is the call
//!   checked (`a.f().g()` checks `g`).
//! - statement-form `…fallible(…).ok();` — `.ok()` maps the error to
//!   `None` and the statement drops it. Bound forms
//!   (`let r = f().ok();`) and value forms (`return f().ok();`) keep
//!   the `Option` alive and are not flagged.
//!
//! Macro calls (`writeln!(…)`) are never flagged: the ident is followed
//! by `!`, not `(`. Both checks are name-based, so a local `fn frob()`
//! returning `SimResult` anywhere in the workspace makes every
//! discarded `frob()` call a finding — a deliberately conservative
//! over-approximation for a codebase with one shared error type.

use crate::lexer::Token;
use crate::rules::Rule;
use std::collections::BTreeSet;

/// Raw findings over one token stream: `(index, rule, token, message)`.
pub fn find(t: &[Token], simresult_fns: &BTreeSet<String>) -> Vec<(usize, Rule, String, String)> {
    let mut raw = Vec::new();
    let tok = |i: usize| t.get(i).map(|x| x.text.as_str()).unwrap_or("");

    for i in 0..t.len() {
        // `let _ = <expr> ;`
        if t[i].text == "let" && tok(i + 1) == "_" && tok(i + 2) == "=" {
            let mut depth = 0usize;
            let mut j = i + 3;
            let mut calls: Vec<usize> = Vec::new();
            while j < t.len() {
                match t[j].text.as_str() {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => depth = depth.saturating_sub(1),
                    ";" if depth == 0 => break,
                    s if depth == 0 && tok(j + 1) == "(" && is_ident(s) => calls.push(j),
                    _ => {}
                }
                j += 1;
            }
            // The last top-level call decides the type; `.ok()`/`.err()`
            // are transparent — they still discard the error.
            let last_call = calls
                .into_iter()
                .rev()
                .find(|&c| !matches!(t[c].text.as_str(), "ok" | "err"));
            if let Some(c) = last_call {
                let name = &t[c].text;
                if simresult_fns.contains(name.as_str()) {
                    raw.push((
                        i,
                        Rule::E1,
                        format!("let _ = {name}"),
                        format!(
                            "`let _ =` discards the `SimResult` from `{name}` — handle or \
                             propagate it, or waive with `// lint: allow(E1): reason`"
                        ),
                    ));
                }
            }
        }

        // statement-form `….ok();` — the receiver must be a call whose
        // callee returns SimResult, and the statement must not bind or
        // return the resulting Option.
        if t[i].text == "."
            && tok(i + 1) == "ok"
            && tok(i + 2) == "("
            && tok(i + 3) == ")"
            && tok(i + 4) == ";"
            && i > 0
            && t[i - 1].text == ")"
        {
            let Some(callee) = call_ident_before(t, i - 1) else {
                continue;
            };
            let name = &t[callee].text;
            if !simresult_fns.contains(name.as_str()) {
                continue;
            }
            if statement_binds_value(t, i) {
                continue;
            }
            raw.push((
                i + 1,
                Rule::E1,
                format!("{name}().ok()"),
                format!(
                    "statement-form `.ok()` discards the `SimResult` from `{name}` — handle \
                     or propagate it, or waive with `// lint: allow(E1): reason`"
                ),
            ));
        }
    }
    raw
}

fn is_ident(s: &str) -> bool {
    !s.is_empty()
        && s.chars().all(|c| c.is_alphanumeric() || c == '_')
        && !s.chars().next().is_some_and(|c| c.is_ascii_digit())
}

/// `close` indexes a `)`; walks back across the matching `(` and
/// returns the index of the call ident just before it, if any.
fn call_ident_before(t: &[Token], close: usize) -> Option<usize> {
    let mut depth = 0usize;
    let mut k = close;
    loop {
        match t[k].text.as_str() {
            ")" | "]" | "}" => depth += 1,
            "(" | "[" | "{" => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            _ => {}
        }
        k = k.checked_sub(1)?;
    }
    let ident = k.checked_sub(1)?;
    is_ident(&t[ident].text).then_some(ident)
}

/// Walks back from token `at` to the start of its statement and
/// reports whether the statement binds or returns the value
/// (`let r = …` / `return …`), in which case the `.ok()` result is not
/// discarded.
fn statement_binds_value(t: &[Token], at: usize) -> bool {
    let mut depth = 0usize;
    let mut k = at;
    let start = loop {
        if k == 0 {
            break 0;
        }
        k -= 1;
        match t[k].text.as_str() {
            ")" | "]" | "}" => depth += 1,
            "(" | "[" => depth = depth.saturating_sub(1),
            "{" => {
                if depth == 0 {
                    break k + 1;
                }
                depth -= 1;
            }
            ";" if depth == 0 => break k + 1,
            _ => {}
        }
    };
    matches!(
        t.get(start).map(|x| x.text.as_str()),
        Some("let") | Some("return")
    )
}
