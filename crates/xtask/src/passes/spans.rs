//! S1/S2 — trace-span hygiene.
//!
//! S1 (per file): a function that opens a trace context (`ctx_begin`)
//! must also close one (`ctx_end`) somewhere in the same function body
//! — an unclosed context leaks into every later event's causality
//! chain. Close-only functions are fine (the trace plane tolerates
//! stray ends); the asymmetry is deliberate.
//!
//! S2 (workspace): every emission call site with a literal
//! `TraceLayer::…` first argument must pass the kind as a *string
//! literal*, and the `(layer, kind)` pair must appear in the DESIGN.md
//! §10.1 kind registry. The check runs in reverse too: a documented
//! kind no library code emits is schema drift and is flagged at the
//! registry row. `crates/sim-core/src/trace.rs` is exempt — it defines
//! the API and forwards computed kinds by design.

use crate::lexer::Token;
use crate::model::{fn_items, WorkspaceModel};
use crate::rules::{Finding, Rule};

/// Raw S1 findings over one token stream.
pub fn unpaired_contexts(t: &[Token]) -> Vec<(usize, Rule, String, String)> {
    let mut raw = Vec::new();
    let tok = |i: usize| t.get(i).map(|x| x.text.as_str()).unwrap_or("");
    for (start, end) in fn_items(t) {
        let fn_name = tok(start + 1).to_string();
        let mut first_begin = None;
        let mut ends = 0usize;
        let stop = end.min(t.len().saturating_sub(1));
        for (i, token) in t.iter().enumerate().take(stop + 1).skip(start) {
            // A call site, not the definition: `fn ctx_begin(` is the
            // trace plane's own API surface.
            if tok(i.wrapping_sub(1)) == "fn" {
                continue;
            }
            match token.text.as_str() {
                "ctx_begin" if tok(i + 1) == "(" => {
                    first_begin.get_or_insert(i);
                }
                "ctx_end" if tok(i + 1) == "(" => ends += 1,
                _ => {}
            }
        }
        if let Some(b) = first_begin {
            if ends == 0 {
                raw.push((
                    b,
                    Rule::S1,
                    "ctx_begin".into(),
                    format!(
                        "`ctx_begin` in `fn {fn_name}` with no `ctx_end` in the same function \
                         — an unclosed context corrupts causality for every later event"
                    ),
                ));
            }
        }
    }
    raw
}

/// S2 over the whole model: literal-kind discipline at emission sites
/// plus two-way drift against the DESIGN.md kind registry.
pub fn kind_registry(model: &WorkspaceModel) -> Vec<Finding> {
    let mut out = Vec::new();
    for e in &model.emissions {
        let layer = e.layer_variant.to_lowercase();
        match &e.kind {
            None => out.push(Finding {
                rule: Rule::S2,
                rel: e.rel.clone(),
                line: e.line,
                token: format!("TraceLayer::{}", e.layer_variant),
                message: format!(
                    "trace kind for `TraceLayer::{}` is not a string literal — computed kinds \
                     cannot be checked against the DESIGN.md §10.1 registry",
                    e.layer_variant
                ),
            }),
            Some(kind) => {
                let documented = model
                    .design_kinds
                    .iter()
                    .any(|d| d.layer == layer && &d.kind == kind);
                // Without a DESIGN.md there is no registry to check
                // against (the driver surfaces that as a warning).
                if !documented && model.design_rel.is_some() {
                    out.push(Finding {
                        rule: Rule::S2,
                        rel: e.rel.clone(),
                        line: e.line,
                        token: kind.clone(),
                        message: format!(
                            "emitted trace kind `{layer}/{kind}` is missing from the DESIGN.md \
                             §10.1 kind registry — add a row or fix the emission"
                        ),
                    });
                }
            }
        }
    }
    if let Some(design_rel) = &model.design_rel {
        for d in &model.design_kinds {
            let emitted = model.emissions.iter().any(|e| {
                e.layer_variant.to_lowercase() == d.layer && e.kind.as_deref() == Some(&d.kind)
            });
            if !emitted {
                out.push(Finding {
                    rule: Rule::S2,
                    rel: design_rel.clone(),
                    line: d.line,
                    token: d.kind.clone(),
                    message: format!(
                        "documented trace kind `{}/{}` is never emitted by library code — \
                         schema drift; remove the row or restore the emission",
                        d.layer, d.kind
                    ),
                });
            }
        }
    }
    out
}
