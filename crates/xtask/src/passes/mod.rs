//! The analysis passes. Each pass is a pure function over the lexed
//! token stream of one file (token rules, S1, E1) or over the shared
//! [`crate::model::WorkspaceModel`] (L1, S2 registry drift, F1/F2);
//! the driver in [`crate::rules`] owns test-code exemption, waiver
//! application and the W1 staleness audit.

pub mod errors;
pub mod faults;
pub mod layering;
pub mod spans;
pub mod tokens;
