//! The original single-token rules: D1 (wall clock), D2 (hash-ordered
//! collections), D3 (panics), D4 (ambient state).

use crate::lexer::Token;
use crate::rules::{Rule, RuleSet};

/// Raw findings over one token stream: `(index, rule, token, message)`.
pub fn find(t: &[Token], rules: RuleSet) -> Vec<(usize, Rule, String, String)> {
    let mut raw: Vec<(usize, Rule, String, String)> = Vec::new();
    let tok = |i: usize| t.get(i).map(|x| x.text.as_str()).unwrap_or("");
    for (i, token) in t.iter().enumerate() {
        let s = token.text.as_str();
        if rules.d1 {
            match s {
                "SystemTime" | "UNIX_EPOCH" => raw.push((
                    i,
                    Rule::D1,
                    s.into(),
                    format!("wall-clock `{s}` — use the virtual clock (`sim_core::clock`)"),
                )),
                "Instant" => raw.push((
                    i,
                    Rule::D1,
                    s.into(),
                    "wall-clock `std::time::Instant` — use `sim_core::SimInstant`".into(),
                )),
                "std" if tok(i + 1) == ":" && tok(i + 3) == "time" => raw.push((
                    i,
                    Rule::D1,
                    "std::time".into(),
                    "wall-clock `std::time` import — use the virtual clock (`sim_core::clock`)"
                        .into(),
                )),
                _ => {}
            }
        }
        if rules.d2 && (s == "HashMap" || s == "HashSet") {
            raw.push((
                i,
                Rule::D2,
                s.into(),
                format!(
                    "hash-ordered `{s}` can leak iteration order into events/results — use \
                     `BTree{0}`, the seeded `sim_core::dmap::{1}` (deterministic iteration){2}, \
                     or waive with `// lint: sorted`",
                    &s[4..],
                    if s == "HashMap" { "DMap" } else { "DSet" },
                    if s == "HashMap" {
                        " or the ordered `sim_core::omap::DOrdMap` (sorted iteration, \
                         range/neighbour queries)"
                    } else {
                        ""
                    }
                ),
            ));
        }
        if rules.d3 {
            match s {
                "unwrap" | "expect" if tok(i.wrapping_sub(1)) == "." && tok(i + 1) == "(" => {
                    raw.push((
                        i,
                        Rule::D3,
                        s.into(),
                        format!("`.{s}()` in library code — return `sim_core::SimResult` instead"),
                    ));
                }
                "panic" | "todo" | "unimplemented" if tok(i + 1) == "!" => {
                    raw.push((
                        i,
                        Rule::D3,
                        format!("{s}!"),
                        format!("`{s}!` in library code — return `sim_core::SimResult` instead"),
                    ));
                }
                _ => {}
            }
        }
        if rules.d4 {
            match s {
                "static" if tok(i + 1) == "mut" => raw.push((
                    i,
                    Rule::D4,
                    "static mut".into(),
                    "`static mut` is ambient state — thread configuration through constructors"
                        .into(),
                )),
                "thread" if tok(i + 1) == ":" && tok(i + 3) == "spawn" => raw.push((
                    i,
                    Rule::D4,
                    "thread::spawn".into(),
                    "`thread::spawn` in simulation code breaks determinism".into(),
                )),
                "thread" if tok(i + 1) == ":" && tok(i + 3) == "scope" => raw.push((
                    i,
                    Rule::D4,
                    "thread::scope".into(),
                    "`thread::scope` outside the sanctioned `bench::pool` breaks determinism"
                        .into(),
                )),
                "process" if tok(i + 1) == ":" && tok(i + 3) == "exit" => raw.push((
                    i,
                    Rule::D4,
                    "process::exit".into(),
                    "`process::exit` bypasses unwinding — return an error instead".into(),
                )),
                _ => {}
            }
        }
    }
    raw
}
