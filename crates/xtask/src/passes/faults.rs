//! F1/F2 — fault-site registry consistency.
//!
//! Every `FaultSite` variant must be *live* end to end:
//!
//! - **F1 (hook)**: ≥1 `fire(FaultSite::V)` injection call site in
//!   non-test library code outside the registry itself — a variant no
//!   hook fires is dead injection surface;
//! - **F1 (preset)**: ≥1 mention inside `FaultPlan::preset` — a
//!   variant absent from every preset never runs in the fault grid;
//! - **F2 (matrix)**: ≥1 mention (variant name or site label) in
//!   `crates/experiments/tests/fault_matrix.rs` — a site the matrix
//!   never names is untested by construction.
//!
//! All findings anchor at the variant's line in the registry enum, so
//! a single inline waiver (or `lint.allow` entry keyed by the variant
//! name) covers a deliberate exception.

use crate::model::WorkspaceModel;
use crate::rules::{Finding, Rule};

pub fn find(model: &WorkspaceModel) -> Vec<Finding> {
    let Some(rel) = &model.fault_registry_rel else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for site in &model.fault_sites {
        let v = &site.variant;
        let at = |rule, message| Finding {
            rule,
            rel: rel.clone(),
            line: site.line,
            token: v.clone(),
            message,
        };
        if !model.hook_mentions.contains(v) {
            out.push(at(
                Rule::F1,
                format!(
                    "fault site `{v}` has no `fire(FaultSite::{v})` injection hook in library \
                     code — dead injection surface"
                ),
            ));
        }
        if !model.preset_mentions.contains(v) {
            out.push(at(
                Rule::F1,
                format!("fault site `{v}` appears in no `FaultPlan::preset` plan"),
            ));
        }
        let in_matrix = model.matrix_mentions.contains(v)
            || site
                .label
                .as_ref()
                .is_some_and(|l| model.matrix_mentions.contains(l));
        if !in_matrix {
            out.push(at(
                Rule::F2,
                format!(
                    "fault site `{v}` has no row in the fault matrix \
                     (crates/experiments/tests/fault_matrix.rs)"
                ),
            ));
        }
    }
    out
}
