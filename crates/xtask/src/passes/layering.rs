//! L1 — cross-crate layering.
//!
//! The stack is ranked (see [`crate::model::LAYER_RANKS`]); an edge
//! from crate *a* to crate *b* is legal iff `rank(b) < rank(a)`. Both
//! kinds of edges are checked:
//!
//! - **manifest edges**: every `[dependencies]` entry in every member
//!   `Cargo.toml` (anchored at the entry's line);
//! - **`use`-path edges**: any `pkg_ident::` path in non-test library
//!   code (anchored at the path token) — this catches an upward
//!   reference even before it becomes a manifest edge, and sideways
//!   references through re-exports.
//!
//! `xtask` is held to a stricter rule: it may depend on no workspace
//! crate at all — the analyzer must sit outside the stack it checks.

use crate::model::{crate_of_ident, layer_rank, test_ranges, WorkspaceModel};
use crate::rules::{Finding, Rule};

pub fn find(model: &WorkspaceModel) -> Vec<Finding> {
    let mut out = Vec::new();

    for (name, info) in &model.crates {
        if name == "xtask" {
            for (dep, line) in &info.deps {
                if model.crates.contains_key(dep) || layer_rank(dep).is_some() {
                    out.push(Finding {
                        rule: Rule::L1,
                        rel: info.manifest_rel.clone(),
                        line: *line,
                        token: dep.clone(),
                        message: format!(
                            "`xtask` must not depend on workspace crate `{dep}` — the analyzer \
                             sits outside the layering it enforces"
                        ),
                    });
                }
            }
            continue;
        }
        let Some(rank) = layer_rank(name) else {
            continue;
        };
        for (dep, line) in &info.deps {
            let Some(dep_rank) = layer_rank(dep) else {
                continue;
            };
            if dep_rank >= rank {
                let direction = if dep_rank == rank {
                    "sideways"
                } else {
                    "upward"
                };
                out.push(Finding {
                    rule: Rule::L1,
                    rel: info.manifest_rel.clone(),
                    line: *line,
                    token: dep.clone(),
                    message: format!(
                        "{direction} dependency edge `{name}` (layer {rank}) → `{dep}` (layer \
                         {dep_rank}) — edges must point strictly down the stack"
                    ),
                });
            }
        }
    }

    for file in &model.files {
        if file.rules.is_none() {
            continue;
        }
        let Some(crate_name) = &file.crate_name else {
            continue;
        };
        let Some(rank) = layer_rank(crate_name) else {
            continue;
        };
        let t = &file.lexed.tokens;
        let skip = test_ranges(&file.lexed);
        let in_test = |idx: usize| skip.iter().any(|&(a, b)| idx >= a && idx <= b);
        let tok = |i: usize| t.get(i).map(|x| x.text.as_str()).unwrap_or("");
        for (i, token) in t.iter().enumerate() {
            let Some(pkg) = crate_of_ident(&token.text) else {
                continue;
            };
            if pkg == crate_name || tok(i + 1) != ":" || tok(i + 2) != ":" || in_test(i) {
                continue;
            }
            let Some(pkg_rank) = layer_rank(pkg) else {
                continue;
            };
            if pkg_rank >= rank {
                let direction = if pkg_rank == rank {
                    "sideways"
                } else {
                    "upward"
                };
                out.push(Finding {
                    rule: Rule::L1,
                    rel: file.rel.clone(),
                    line: t[i].line,
                    token: format!("{}::", t[i].text),
                    message: format!(
                        "{direction} `use`-path reference from `{crate_name}` (layer {rank}) to \
                         `{pkg}` (layer {pkg_rank}) — edges must point strictly down the stack"
                    ),
                });
            }
        }
    }

    out
}
