//! Golden tests for the tentpole claim: sweeps produce *byte-identical*
//! results at any worker count. Each cell is a self-contained seeded
//! simulation, results are collected by cell index, so `DUET_JOBS=1`
//! and `DUET_JOBS=4` (here: explicit `jobs` arguments 1 and 4, which is
//! what the env var feeds) must agree to the last bit — both in the raw
//! `f64`s (compared via `to_bits`, not approximate equality) and in the
//! formatted report rows that become the CSVs.

use bench::sweeps::{completed_cells, saved_cells, saved_cells_traced};
use bench::{f2, pool};
use experiments::{paper_scaled, run_experiment_traced, DeviceKind, TaskKind};
use sim_core::trace::TraceHandle;
use workloads::{DistKind, Personality};

/// Tiny scale: the paper setup shrunk 512× keeps each cell to a few
/// milliseconds while still exercising the full runner.
const SCALE: u64 = 512;

fn bits(grid: &[Vec<f64>]) -> Vec<Vec<u64>> {
    grid.iter()
        .map(|row| row.iter().map(|v| v.to_bits()).collect())
        .collect()
}

/// Renders a grid in the committed fixture format: one row per line,
/// cells as hex `f64` bit patterns (the `dump_golden` serialization).
fn grid_lines(grid: &[Vec<f64>]) -> String {
    grid.iter()
        .map(|row| {
            row.iter()
                .map(|v| format!("{:016x}", v.to_bits()))
                .collect::<Vec<_>>()
                .join(" ")
        })
        .collect::<Vec<_>>()
        .join("\n")
        + "\n"
}

fn render(grid: &[Vec<f64>], utils: &[f64]) -> Vec<String> {
    utils
        .iter()
        .zip(grid)
        .map(|(u, row)| {
            let mut cols = vec![f2(*u)];
            cols.extend(row.iter().map(|&v| f2(v)));
            cols.join("\t")
        })
        .collect()
}

#[test]
fn saved_sweep_is_byte_identical_at_any_width() {
    let utils = [0.2, 0.6];
    let overlaps = [0.5, 1.0];
    let run = |jobs: usize| {
        saved_cells(
            SCALE,
            DeviceKind::Hdd,
            Personality::WebServer,
            DistKind::Uniform,
            &utils,
            &overlaps,
            &[TaskKind::Scrub],
            None,
            jobs,
        )
        .expect("sweep")
    };
    let sequential = run(1);
    let parallel = run(4);
    assert_eq!(
        bits(&sequential),
        bits(&parallel),
        "raw f64 bits differ between jobs=1 and jobs=4"
    );
    assert_eq!(
        render(&sequential, &utils),
        render(&parallel, &utils),
        "formatted report rows differ between jobs=1 and jobs=4"
    );
    // And the grid is not degenerate: some cell saved some I/O.
    assert!(sequential.iter().flatten().any(|&v| v > 0.0));
    // Both widths must also reproduce the committed fixture, so the
    // grid is pinned across builds, not merely self-consistent.
    let fixture = include_str!("fixtures/golden_saved_grid.txt");
    assert_eq!(grid_lines(&sequential), fixture, "jobs=1 grid vs fixture");
    assert_eq!(grid_lines(&parallel), fixture, "jobs=4 grid vs fixture");
}

#[test]
fn completed_sweep_is_byte_identical_at_any_width() {
    let utils = [0.0, 0.3, 0.6];
    let run = |jobs: usize| {
        completed_cells(
            SCALE,
            Personality::WebServer,
            &utils,
            &[TaskKind::Scrub, TaskKind::Backup],
            None,
            jobs,
        )
        .expect("sweep")
    };
    let sequential = run(1);
    let parallel = run(4);
    assert_eq!(bits(&sequential), bits(&parallel));
    assert_eq!(render(&sequential, &utils), render(&parallel, &utils));
    assert!(sequential.iter().flatten().any(|&v| v > 0.0));
    let fixture = include_str!("fixtures/golden_completed_grid.txt");
    assert_eq!(grid_lines(&sequential), fixture, "jobs=1 grid vs fixture");
    assert_eq!(grid_lines(&parallel), fixture, "jobs=4 grid vs fixture");
}

/// The aggregated trace counters of a traced sweep must also be
/// byte-identical at any worker count: each cell owns a private
/// (non-`Send`) handle, and the merge folds in cell-index order.
#[test]
fn traced_sweep_counters_are_byte_identical_at_any_width() {
    let utils = [0.2, 0.6];
    let overlaps = [1.0];
    let run = |jobs: usize| {
        let (grid, ops, agg) = saved_cells_traced(
            SCALE,
            DeviceKind::Hdd,
            Personality::WebServer,
            DistKind::Uniform,
            &utils,
            &overlaps,
            &[TaskKind::Scrub],
            None,
            jobs,
            true,
        )
        .expect("sweep");
        let rows: Vec<(String, u64)> = agg.rows().map(|(k, n)| (k.to_string(), n)).collect();
        (bits(&grid), ops, rows)
    };
    let sequential = run(1);
    let parallel = run(4);
    assert_eq!(sequential, parallel, "trace aggregate differs by width");
    if TraceHandle::compiled_in() {
        assert!(
            !sequential.2.is_empty(),
            "a traced sweep must produce counters"
        );
    }
}

/// The per-cell JSONL traces of a pinned scenario grid, collected in
/// cell order, are byte-identical across `jobs = 1` and `jobs = 4` —
/// the `DUET_JOBS` guarantee extended to the event stream itself.
#[test]
fn traced_cell_jsonl_is_byte_identical_at_any_width() {
    let cells = [0.2, 0.6];
    let run = |jobs: usize| -> Vec<String> {
        pool::try_run_indexed(cells.len(), jobs, |i| {
            let mut cfg = paper_scaled(
                SCALE,
                Personality::WebServer,
                DistKind::Uniform,
                1.0,
                cells[i],
                vec![TaskKind::Scrub],
                true,
            );
            cfg.seed = 7;
            let t = TraceHandle::with_default_capacity();
            run_experiment_traced(&cfg, Some(&t))?;
            sim_core::SimResult::Ok(t.dump_jsonl())
        })
        .expect("sweep")
    };
    let sequential = run(1);
    let parallel = run(4);
    assert_eq!(sequential, parallel, "JSONL traces differ by width");
    if TraceHandle::compiled_in() {
        assert!(sequential.iter().all(|j| !j.is_empty()));
    }
}
