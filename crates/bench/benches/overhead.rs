//! Microbenchmarks of the Duet framework's hot paths — the quantities
//! behind Figure 9's CPU-overhead measurement. Runs on the hand-rolled
//! harness in `bench::harness` (the workspace builds offline, with no
//! criterion dep).

use bench::harness::bench_batched;
use bench::synthfs::{SynthFs, SYNTH_ROOT};
use duet::{Duet, DuetConfig, EventMask, TaskScope};
use sim_cache::{PageEvent, PageKey, PageMeta};
use sim_core::{BlockNr, InodeNr, PageIndex};

fn meta(ino: u64, idx: u64) -> PageMeta {
    PageMeta {
        key: PageKey::new(InodeNr(ino), PageIndex(idx)),
        block: Some(BlockNr((ino << 20) + idx)),
        dirty: false,
    }
}

fn duet_with_session(mask: EventMask) -> Duet {
    let fs = SynthFs;
    let mut duet = Duet::new(DuetConfig::default());
    duet.register(
        TaskScope::File {
            registered_dir: SYNTH_ROOT,
        },
        mask,
        &fs,
    )
    .expect("register");
    duet
}

fn bench_event_intake() {
    let fs = SynthFs;
    for (label, mask) in [
        (
            "duet_event_intake/event_mask",
            EventMask::ADDED | EventMask::DIRTIED,
        ),
        (
            "duet_event_intake/state_mask",
            EventMask::EXISTS | EventMask::MODIFIED,
        ),
    ] {
        bench_batched(
            label,
            1024,
            || duet_with_session(mask),
            |mut duet| {
                for i in 0..1024u64 {
                    duet.handle_page_event(meta(2 + i % 64, i % 16), PageEvent::Added, &fs);
                }
                duet
            },
        );
    }
}

fn bench_state_cancellation() {
    // Added immediately followed by Removed: the descriptor must be
    // freed by cancellation, so memory stays flat.
    let fs = SynthFs;
    bench_batched(
        "duet_state_cancellation",
        1024,
        || duet_with_session(EventMask::EXISTS),
        |mut duet| {
            for i in 0..512u64 {
                duet.handle_page_event(meta(2, i), PageEvent::Added, &fs);
                duet.handle_page_event(meta(2, i), PageEvent::Removed, &fs);
            }
            assert_eq!(duet.descriptor_count(), 0);
            duet
        },
    );
}

fn bench_fetch() {
    let fs = SynthFs;
    bench_batched(
        "duet_fetch/fetch_1024_items",
        1024,
        || {
            let mut duet = duet_with_session(EventMask::EXISTS);
            for i in 0..1024u64 {
                duet.handle_page_event(meta(2 + i % 64, i / 64), PageEvent::Added, &fs);
            }
            duet
        },
        |mut duet| {
            let sid = duet::SessionId(0);
            let mut total = 0;
            loop {
                let items = duet.fetch(sid, 256, &fs).expect("fetch");
                if items.is_empty() {
                    break;
                }
                total += items.len();
            }
            assert_eq!(total, 1024);
            duet
        },
    );
}

fn bench_done_filtering() {
    // Events on done files must be rejected with a single bitmap test.
    let fs = SynthFs;
    bench_batched(
        "duet_done_filtered_event",
        1024,
        || {
            let mut duet = duet_with_session(EventMask::EXISTS);
            for ino in 2..66u64 {
                duet.set_done(duet::SessionId(0), duet::ItemId::Inode(InodeNr(ino)))
                    .expect("set_done");
            }
            duet
        },
        |mut duet| {
            for i in 0..1024u64 {
                duet.handle_page_event(meta(2 + i % 64, i), PageEvent::Added, &fs);
            }
            assert_eq!(duet.descriptor_count(), 0);
            duet
        },
    );
}

fn main() {
    bench_event_intake();
    bench_state_cancellation();
    bench_fetch();
    bench_done_filtering();
}
