//! Criterion microbenchmarks of the Duet framework's hot paths — the
//! quantities behind Figure 9's CPU-overhead measurement.

use bench::synthfs::{SynthFs, SYNTH_ROOT};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use duet::{Duet, DuetConfig, EventMask, TaskScope};
use sim_cache::{PageEvent, PageKey, PageMeta};
use sim_core::{BlockNr, InodeNr, PageIndex};

fn meta(ino: u64, idx: u64) -> PageMeta {
    PageMeta {
        key: PageKey::new(InodeNr(ino), PageIndex(idx)),
        block: Some(BlockNr((ino << 20) + idx)),
        dirty: false,
    }
}

fn duet_with_session(mask: EventMask) -> Duet {
    let fs = SynthFs;
    let mut duet = Duet::new(DuetConfig::default());
    duet.register(
        TaskScope::File {
            registered_dir: SYNTH_ROOT,
        },
        mask,
        &fs,
    )
    .expect("register");
    duet
}

fn bench_event_intake(c: &mut Criterion) {
    let fs = SynthFs;
    let mut g = c.benchmark_group("duet_event_intake");
    g.throughput(Throughput::Elements(1024));
    for (label, mask) in [
        ("event_mask", EventMask::ADDED | EventMask::DIRTIED),
        ("state_mask", EventMask::EXISTS | EventMask::MODIFIED),
    ] {
        g.bench_function(label, |b| {
            b.iter_batched(
                || duet_with_session(mask),
                |mut duet| {
                    for i in 0..1024u64 {
                        duet.handle_page_event(meta(2 + i % 64, i % 16), PageEvent::Added, &fs);
                    }
                    duet
                },
                BatchSize::SmallInput,
            );
        });
    }
    g.finish();
}

fn bench_state_cancellation(c: &mut Criterion) {
    // Added immediately followed by Removed: the descriptor must be
    // freed by cancellation, so memory stays flat.
    let fs = SynthFs;
    c.bench_function("duet_state_cancellation", |b| {
        b.iter_batched(
            || duet_with_session(EventMask::EXISTS),
            |mut duet| {
                for i in 0..512u64 {
                    duet.handle_page_event(meta(2, i), PageEvent::Added, &fs);
                    duet.handle_page_event(meta(2, i), PageEvent::Removed, &fs);
                }
                assert_eq!(duet.descriptor_count(), 0);
                duet
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_fetch(c: &mut Criterion) {
    let fs = SynthFs;
    let mut g = c.benchmark_group("duet_fetch");
    g.throughput(Throughput::Elements(1024));
    g.bench_function("fetch_1024_items", |b| {
        b.iter_batched(
            || {
                let mut duet = duet_with_session(EventMask::EXISTS);
                for i in 0..1024u64 {
                    duet.handle_page_event(meta(2 + i % 64, i / 64), PageEvent::Added, &fs);
                }
                duet
            },
            |mut duet| {
                let sid = duet::SessionId(0);
                let mut total = 0;
                loop {
                    let items = duet.fetch(sid, 256, &fs).expect("fetch");
                    if items.is_empty() {
                        break;
                    }
                    total += items.len();
                }
                assert_eq!(total, 1024);
                duet
            },
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

fn bench_done_filtering(c: &mut Criterion) {
    // Events on done files must be rejected with a single bitmap test.
    let fs = SynthFs;
    c.bench_function("duet_done_filtered_event", |b| {
        b.iter_batched(
            || {
                let mut duet = duet_with_session(EventMask::EXISTS);
                for ino in 2..66u64 {
                    duet.set_done(duet::SessionId(0), duet::ItemId::Inode(InodeNr(ino)))
                        .expect("set_done");
                }
                duet
            },
            |mut duet| {
                for i in 0..1024u64 {
                    duet.handle_page_event(meta(2 + i % 64, i), PageEvent::Added, &fs);
                }
                assert_eq!(duet.descriptor_count(), 0);
                duet
            },
            BatchSize::SmallInput,
        );
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_event_intake, bench_state_cancellation, bench_fetch, bench_done_filtering
);
criterion_main!(benches);
