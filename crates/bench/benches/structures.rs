//! Microbenchmarks of the supporting data structures: the sparse
//! bitmap (the done/relevant bitmaps of §4.2), the task library's
//! priority queue, and the page cache hot paths. Runs on the
//! hand-rolled harness in `bench::harness` (the workspace builds
//! offline, with no criterion dep).

use bench::harness::{bench_batched, bench_loop};
use duet::PrioQueue;
use sim_cache::{PageCache, PageKey};
use sim_core::{BlockNr, InodeNr, PageIndex, SparseBitmap};

fn bench_bitmap() {
    bench_batched(
        "sparse_bitmap/set_sequential",
        4096,
        SparseBitmap::new,
        |mut bm| {
            for i in 0..4096u64 {
                bm.set(i);
            }
            bm
        },
    );
    bench_batched(
        "sparse_bitmap/set_scattered",
        4096,
        SparseBitmap::new,
        |mut bm| {
            for i in 0..4096u64 {
                bm.set(i * 131_071);
            }
            bm
        },
    );
    let mut bm = SparseBitmap::new();
    for i in 0..4096u64 {
        bm.set(i * 2);
    }
    bench_loop("sparse_bitmap/test_hit_and_miss", 4096, || {
        let mut hits = 0u64;
        for i in 0..4096u64 {
            if bm.test(i) {
                hits += 1;
            }
        }
        hits
    });
}

fn bench_prioqueue() {
    bench_batched(
        "prio_queue/upsert_and_drain",
        1024,
        PrioQueue::<u64, u64>::new,
        |mut q| {
            for i in 0..1024u64 {
                q.upsert(i % 256, i);
            }
            while q.pop_max().is_some() {}
            q
        },
    );
}

fn bench_page_cache() {
    bench_batched(
        "page_cache/insert_with_eviction",
        4096,
        || PageCache::new(1024),
        |mut cache| {
            for i in 0..4096u64 {
                cache.insert(
                    PageKey::new(InodeNr(i % 64), PageIndex(i / 64)),
                    Some(BlockNr(i)),
                    i % 8 == 0,
                );
            }
            cache.drain_events();
            cache
        },
    );
    let mut cache = PageCache::new(8192);
    for i in 0..4096u64 {
        cache.insert(
            PageKey::new(InodeNr(1), PageIndex(i)),
            Some(BlockNr(i)),
            false,
        );
    }
    cache.drain_events();
    bench_loop("page_cache/lookup_hit", 4096, || {
        let mut found = 0u64;
        for i in 0..4096u64 {
            if cache
                .lookup(PageKey::new(InodeNr(1), PageIndex(i)))
                .is_some()
            {
                found += 1;
            }
        }
        found
    });
}

fn main() {
    bench_bitmap();
    bench_prioqueue();
    bench_page_cache();
}
