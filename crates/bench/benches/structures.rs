//! Criterion microbenchmarks of the supporting data structures: the
//! sparse bitmap (the done/relevant bitmaps of §4.2), the task
//! library's priority queue, and the page cache hot paths.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use duet::PrioQueue;
use sim_cache::{PageCache, PageKey};
use sim_core::{BlockNr, InodeNr, PageIndex, SparseBitmap};

fn bench_bitmap(c: &mut Criterion) {
    let mut g = c.benchmark_group("sparse_bitmap");
    g.throughput(Throughput::Elements(4096));
    g.bench_function("set_sequential", |b| {
        b.iter_batched(
            SparseBitmap::new,
            |mut bm| {
                for i in 0..4096u64 {
                    bm.set(i);
                }
                bm
            },
            BatchSize::SmallInput,
        );
    });
    g.bench_function("set_scattered", |b| {
        b.iter_batched(
            SparseBitmap::new,
            |mut bm| {
                for i in 0..4096u64 {
                    bm.set(i * 131_071);
                }
                bm
            },
            BatchSize::SmallInput,
        );
    });
    g.bench_function("test_hit_and_miss", |b| {
        let mut bm = SparseBitmap::new();
        for i in 0..4096u64 {
            bm.set(i * 2);
        }
        b.iter(|| {
            let mut hits = 0u64;
            for i in 0..4096u64 {
                if bm.test(i) {
                    hits += 1;
                }
            }
            hits
        });
    });
    g.finish();
}

fn bench_prioqueue(c: &mut Criterion) {
    let mut g = c.benchmark_group("prio_queue");
    g.throughput(Throughput::Elements(1024));
    g.bench_function("upsert_and_drain", |b| {
        b.iter_batched(
            PrioQueue::<u64, u64>::new,
            |mut q| {
                for i in 0..1024u64 {
                    q.upsert(i % 256, i);
                }
                while q.pop_max().is_some() {}
                q
            },
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

fn bench_page_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("page_cache");
    g.throughput(Throughput::Elements(4096));
    g.bench_function("insert_with_eviction", |b| {
        b.iter_batched(
            || PageCache::new(1024),
            |mut cache| {
                for i in 0..4096u64 {
                    cache.insert(
                        PageKey::new(InodeNr(i % 64), PageIndex(i / 64)),
                        Some(BlockNr(i)),
                        i % 8 == 0,
                    );
                }
                cache.drain_events();
                cache
            },
            BatchSize::SmallInput,
        );
    });
    g.bench_function("lookup_hit", |b| {
        let mut cache = PageCache::new(8192);
        for i in 0..4096u64 {
            cache.insert(
                PageKey::new(InodeNr(1), PageIndex(i)),
                Some(BlockNr(i)),
                false,
            );
        }
        cache.drain_events();
        b.iter(|| {
            let mut found = 0u64;
            for i in 0..4096u64 {
                if cache
                    .lookup(PageKey::new(InodeNr(1), PageIndex(i)))
                    .is_some()
                {
                    found += 1;
                }
            }
            found
        });
    });
    g.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_bitmap, bench_prioqueue, bench_page_cache
);
criterion_main!(benches);
