//! Opt-in trace aggregation for the figure harnesses.
//!
//! Setting `DUET_TRACE=1` makes every experiment-running harness arm a
//! fresh [`TraceHandle`] per sweep cell and merge the per-layer/
//! per-kind counters into a `results/<name>_trace.csv` next to the
//! figure's CSV. Handles are `Rc`-based and deliberately not `Send`, so
//! each pool worker constructs its own inside the cell closure; the
//! merge happens afterwards in cell-index order, which keeps the
//! aggregate byte-identical at any `DUET_JOBS` width (the same argument
//! as for the result grids, see DESIGN.md §8).
//!
//! With the `trace` feature compiled out, or `DUET_TRACE` unset, the
//! harnesses behave — and their CSVs read — exactly as before.

use crate::Sink;
use sim_core::trace::TraceHandle;
use std::collections::BTreeMap;
use std::fs;
use std::io::Write;
use std::path::PathBuf;

/// Whether trace aggregation was requested (`DUET_TRACE` set to
/// anything but empty or `0`).
pub fn enabled() -> bool {
    std::env::var("DUET_TRACE").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// A fresh per-cell handle when `traced` asks for one. Constructed
/// inside the worker closure: the handle is not `Send` by design.
pub fn cell(traced: bool) -> Option<TraceHandle> {
    traced.then(TraceHandle::with_default_capacity)
}

/// The counters of a finished cell, ready to travel back to the
/// aggregator (plain data, `Send`).
pub fn harvest(handle: Option<TraceHandle>) -> Vec<(String, u64)> {
    handle.map(|h| h.counters()).unwrap_or_default()
}

/// Deterministic union of per-cell counters, keyed `layer.kind`.
#[derive(Debug, Default)]
pub struct TraceAgg {
    active: bool,
    counters: BTreeMap<String, u64>,
}

impl TraceAgg {
    /// An aggregator; inert (never saves) unless `active`.
    pub fn new(active: bool) -> Self {
        TraceAgg {
            active,
            counters: BTreeMap::new(),
        }
    }

    /// Whether this aggregator collects and saves anything.
    pub fn active(&self) -> bool {
        self.active
    }

    /// Folds one cell's counters in. Call in cell-index order.
    pub fn merge(&mut self, counters: Vec<(String, u64)>) {
        for (k, n) in counters {
            *self.counters.entry(k).or_insert(0) += n;
        }
    }

    /// The merged rows, in key order.
    pub fn rows(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &n)| (k.as_str(), n))
    }

    /// Writes `results/<name>_trace.csv` (when active), announcing the
    /// path on the sink like [`crate::Report::save`] does.
    pub fn save(&self, name: &str, sink: &mut Sink) -> std::io::Result<Option<PathBuf>> {
        if !self.active {
            return Ok(None);
        }
        let dir = PathBuf::from("results");
        fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{name}_trace.csv"));
        let mut f = fs::File::create(&path)?;
        writeln!(f, "counter,count")?;
        for (k, n) in self.rows() {
            writeln!(f, "{k},{n}")?;
        }
        sink.line(format!("[saved {}]", path.display()));
        Ok(Some(path))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_is_a_keyed_sum() {
        let mut agg = TraceAgg::new(true);
        agg.merge(vec![("disk/read".into(), 2), ("cache/hit".into(), 5)]);
        agg.merge(vec![("disk/read".into(), 3)]);
        let rows: Vec<(String, u64)> = agg.rows().map(|(k, n)| (k.to_string(), n)).collect();
        assert_eq!(
            rows,
            vec![
                ("cache/hit".to_string(), 5),
                ("disk/read".to_string(), 3 + 2)
            ]
        );
    }

    #[test]
    fn inactive_aggregator_never_saves() {
        let agg = TraceAgg::new(false);
        let mut sink = Sink::buffer();
        let saved = agg.save("unit_test_trace", &mut sink).expect("io");
        assert!(saved.is_none());
        assert!(sink.lines().is_empty());
    }

    #[test]
    fn cell_handles_follow_the_request() {
        assert!(cell(false).is_none());
        assert!(cell(true).is_some());
        assert!(harvest(None).is_empty());
    }
}
