//! Thin wrapper: the harness body lives in `bench::figs::fig6_scrub_backup_completed`.

use std::process::ExitCode;

fn main() -> ExitCode {
    bench::run_main(32, bench::figs::fig6_scrub_backup_completed::run)
}
