//! Figure 6: maintenance work completed when scrubbing and backup run
//! together with the webserver workload, baseline vs Duet.
//!
//! Expected shape (§6.3): the baseline pair stops completing beyond
//! ~30 % utilization; Duet sustains completion to 70–90 %.

use bench::{scale_from_env, sweeps::completed_sweep};
use experiments::TaskKind;
use workloads::Personality;

fn main() {
    let scale = scale_from_env(32);
    println!("fig6: work completed, scrub + backup + webserver, scale 1/{scale}");
    let report = completed_sweep(
        "fig6_scrub_backup_completed",
        scale,
        Personality::WebServer,
        &[TaskKind::Scrub, TaskKind::Backup],
        None,
    );
    report.save().expect("write results");
}
