//! Figure 10: I/O saved on a solid-state drive (§6.5).
//!
//! Expected shape: scrubbing saves about the same as on the hard drive
//! (it finishes in half the time, but the workload also runs faster, so
//! the overlap exploited is similar); backup saves *more* on the SSD
//! because the workload's higher throughput creates more overlap while
//! the backup's 64 KiB random reads run no faster.

use bench::{f2, scale_from_env, sweeps::util_grid, Report};
use experiments::{paper_scaled, run_experiment, DeviceKind, TaskKind};
use workloads::{DistKind, Personality};

fn main() {
    let scale = scale_from_env(32);
    println!("fig10: scrub and backup on HDD vs SSD, webserver, scale 1/{scale}");
    let mut report = Report::new(
        "fig10_ssd",
        &[
            "utilization",
            "scrub_saved_hdd",
            "scrub_saved_ssd",
            "backup_saved_hdd",
            "backup_saved_ssd",
        ],
    );
    report.print_header();
    for util in util_grid() {
        let mut row = vec![f2(util)];
        for task in [TaskKind::Scrub, TaskKind::Backup] {
            for device in [DeviceKind::Hdd, DeviceKind::Ssd] {
                let mut cfg = paper_scaled(
                    scale,
                    Personality::WebServer,
                    DistKind::Uniform,
                    1.0,
                    util,
                    vec![task],
                    true,
                );
                cfg.device = device;
                let r = run_experiment(&cfg).expect("run");
                row.push(f2(r.io_saved()));
            }
        }
        report.row(&row);
    }
    report.save().expect("write results");
}
