//! Thin wrapper: the harness body lives in `bench::figs::fig10_ssd`.

use std::process::ExitCode;

fn main() -> ExitCode {
    bench::run_main(32, bench::figs::fig10_ssd::run)
}
