//! Thin wrapper: the harness body lives in `bench::figs::fig1_distributions`.

use std::process::ExitCode;

fn main() -> ExitCode {
    bench::run_main(32, bench::figs::fig1_distributions::run)
}
