//! Figure 7: I/O saved when scrubbing, backup and defragmentation run
//! together with the webserver workload.
//!
//! Expected shape (§6.3): ~55 % saved with no workload (one shared pass
//! over the data; defragmentation writes cannot be saved), rising to
//! ~80 % with the read-mostly webserver.

use bench::{scale_from_env, sweeps::saved_sweep};
use experiments::{DeviceKind, TaskKind};
use workloads::{DistKind, Personality};

fn main() {
    let scale = scale_from_env(32);
    println!("fig7: scrub + backup + defrag + webserver, scale 1/{scale}");
    let report = saved_sweep(
        "fig7_three_tasks_saved",
        scale,
        DeviceKind::Hdd,
        Personality::WebServer,
        DistKind::Uniform,
        &[0.25, 0.5, 0.75, 1.0],
        &[TaskKind::Scrub, TaskKind::Backup, TaskKind::Defrag],
        Some((0.1, 5)),
    );
    report.save().expect("write results");
}
