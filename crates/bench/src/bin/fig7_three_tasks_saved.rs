//! Thin wrapper: the harness body lives in `bench::figs::fig7_three_tasks_saved`.

use std::process::ExitCode;

fn main() -> ExitCode {
    bench::run_main(32, bench::figs::fig7_three_tasks_saved::run)
}
