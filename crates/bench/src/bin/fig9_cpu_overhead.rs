//! Thin wrapper: the harness body lives in `bench::figs::fig9_cpu_overhead`.

use std::process::ExitCode;

fn main() -> ExitCode {
    bench::run_main(32, bench::figs::fig9_cpu_overhead::run)
}
