//! Thin wrapper: the harness body lives in `bench::figs::mem_overhead`.

use std::process::ExitCode;

fn main() -> ExitCode {
    bench::run_main(32, bench::figs::mem_overhead::run)
}
