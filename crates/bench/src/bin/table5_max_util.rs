//! Thin wrapper: the harness body lives in `bench::figs::table5_max_util`.

use std::process::ExitCode;

fn main() -> ExitCode {
    bench::run_main(64, bench::figs::table5_max_util::run)
}
