//! Table 5: maximum utilization at which each Btrfs maintenance task
//! still completes within the window, baseline vs Duet, across the
//! paper's workload grid.
//!
//! Rows: webserver at 25/50/75/100 % overlap (uniform) and 100 % with
//! the MS-trace distribution; webproxy and fileserver at 100 % overlap,
//! uniform and MS-trace. Columns: scrubbing, backup, defragmentation —
//! baseline and Duet.

use bench::{pct, scale_from_env, Report};
use experiments::{max_utilization, paper_scaled, run_experiment, TaskKind};
use workloads::{DistKind, Personality};

fn cell(
    scale: u64,
    personality: Personality,
    dist: DistKind,
    overlap: f64,
    task: TaskKind,
    duet: bool,
) -> String {
    let completes = |util: f64| -> bool {
        let mut cfg = paper_scaled(scale, personality, dist, overlap, util, vec![task], duet);
        if task == TaskKind::Defrag {
            cfg.fragmentation = Some((0.1, 5));
        }
        run_experiment(&cfg).expect("run").all_completed()
    };
    match max_utilization(completes) {
        Some(u) => pct(u),
        None => "never".into(),
    }
}

fn main() {
    let scale = scale_from_env(64);
    println!("table5: maximum utilization, scale 1/{scale} (this sweep runs many experiments)");
    let rows: Vec<(&str, Personality, f64, DistKind)> = vec![
        (
            "webserver 25% uniform",
            Personality::WebServer,
            0.25,
            DistKind::Uniform,
        ),
        (
            "webserver 50% uniform",
            Personality::WebServer,
            0.50,
            DistKind::Uniform,
        ),
        (
            "webserver 75% uniform",
            Personality::WebServer,
            0.75,
            DistKind::Uniform,
        ),
        (
            "webserver 100% uniform",
            Personality::WebServer,
            1.0,
            DistKind::Uniform,
        ),
        (
            "webserver 100% mstrace",
            Personality::WebServer,
            1.0,
            DistKind::MsTrace(0),
        ),
        (
            "webproxy 100% uniform",
            Personality::WebProxy,
            1.0,
            DistKind::Uniform,
        ),
        (
            "webproxy 100% mstrace",
            Personality::WebProxy,
            1.0,
            DistKind::MsTrace(0),
        ),
        (
            "fileserver 100% uniform",
            Personality::FileServer,
            1.0,
            DistKind::Uniform,
        ),
        (
            "fileserver 100% mstrace",
            Personality::FileServer,
            1.0,
            DistKind::MsTrace(0),
        ),
    ];
    let mut report = Report::new(
        "table5_max_util",
        &[
            "workload",
            "scrub_base",
            "scrub_duet",
            "backup_base",
            "backup_duet",
            "defrag_base",
            "defrag_duet",
        ],
    );
    report.print_header();
    for (label, personality, overlap, dist) in rows {
        let mut row = vec![label.to_string()];
        for task in [TaskKind::Scrub, TaskKind::Backup, TaskKind::Defrag] {
            for duet in [false, true] {
                row.push(cell(scale, personality, dist, overlap, task, duet));
            }
        }
        report.row(&row);
    }
    report.save().expect("write results");
}
