//! Thin wrapper: the harness body lives in `bench::figs::fig2b_personalities`.

use std::process::ExitCode;

fn main() -> ExitCode {
    bench::run_main(64, bench::figs::fig2b_personalities::run)
}
