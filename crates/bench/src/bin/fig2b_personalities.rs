//! §6.2 text claims: how the read-write ratio and access skew change
//! the I/O saved by scrubbing and backup.
//!
//! The paper (webserver = 10:1, webproxy = 4:1, fileserver = 1:2, all
//! at 100 % overlap):
//!
//! - scrubbing: "the webproxy performs similarly to the webserver ...
//!   the write-intensive fileserver workload has 40 % of the IO savings
//!   compared to the other two";
//! - backup: webproxy "yields 80 % of the I/O savings of webserver,
//!   while fileserver ... yields up to 40 %";
//! - both: "using the skewed file access distribution reduces the I/O
//!   saved by 15-30 %".

use bench::{f2, scale_from_env, Report};
use experiments::{paper_scaled, run_experiment, TaskKind};
use workloads::{DistKind, Personality};

fn saved(scale: u64, task: TaskKind, personality: Personality, dist: DistKind, util: f64) -> f64 {
    let cfg = paper_scaled(scale, personality, dist, 1.0, util, vec![task], true);
    run_experiment(&cfg).expect("run").io_saved()
}

fn main() {
    let scale = scale_from_env(64);
    let util = 0.6;
    println!(
        "fig2b: I/O saved by personality and distribution at {:.0}% utilization, scale 1/{scale}",
        util * 100.0
    );
    let mut report = Report::new(
        "fig2b_personalities",
        &[
            "task",
            "webserver",
            "webproxy",
            "fileserver",
            "webserver_mstrace",
            "fileserver_rel_to_webserver",
            "mstrace_reduction",
        ],
    );
    report.print_header();
    for task in [TaskKind::Scrub, TaskKind::Backup] {
        let web = saved(scale, task, Personality::WebServer, DistKind::Uniform, util);
        let proxy = saved(scale, task, Personality::WebProxy, DistKind::Uniform, util);
        let file = saved(
            scale,
            task,
            Personality::FileServer,
            DistKind::Uniform,
            util,
        );
        let web_ms = saved(
            scale,
            task,
            Personality::WebServer,
            DistKind::MsTrace(0),
            util,
        );
        report.row(&[
            format!("{task:?}"),
            f2(web),
            f2(proxy),
            f2(file),
            f2(web_ms),
            f2(file / web.max(1e-9)),
            f2(1.0 - web_ms / web.max(1e-9)),
        ]);
    }
    report.save().expect("write results");
    println!(
        "\nPaper shape: webproxy ≈ webserver; fileserver well below both \
         (~40%); the skewed distribution costs 15-30% of the savings."
    );
}
