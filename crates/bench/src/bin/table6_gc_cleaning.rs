//! Thin wrapper: the harness body lives in `bench::figs::table6_gc_cleaning`.

use std::process::ExitCode;

fn main() -> ExitCode {
    bench::run_main(32, bench::figs::table6_gc_cleaning::run)
}
