//! Thin wrapper: the harness body lives in `bench::figs::fig2_scrub_saved`.

use std::process::ExitCode;

fn main() -> ExitCode {
    bench::run_main(32, bench::figs::fig2_scrub_saved::run)
}
