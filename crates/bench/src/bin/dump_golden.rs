//! Regenerates the committed golden-determinism fixtures.
//!
//! The fixtures pin every output the dmap-era container migration must
//! keep byte-identical: experiment golden CSVs, the rsync line, the
//! trace JSONL digest, the parallel sweep grids (bit patterns), and
//! the scripted cache/prioqueue op-mix logs. Run from the repo root:
//!
//! ```text
//! cargo run --release -p bench --bin dump_golden
//! ```
//!
//! Only do this deliberately (see DESIGN.md §12): rewriting the
//! fixtures re-baselines the golden contract, and the diff must be
//! reviewed as a behaviour change, not as noise.

use bench::sweeps::{completed_cells, saved_cells};
use experiments::golden::{
    cache_event_log, extent_oplog, fnv128_hex, golden_csv, golden_rsync_line, prioqueue_pop_log,
};
use experiments::{
    paper_scaled, run_experiment, run_experiment_traced, run_rsync_experiment, DeviceKind, TaskKind,
};
use sim_core::trace::TraceHandle;
use std::process::ExitCode;
use workloads::{DistKind, Personality};

const SCALE: u64 = 512;

fn experiment_cfg() -> experiments::ExperimentConfig {
    let mut c = paper_scaled(
        SCALE,
        Personality::WebServer,
        DistKind::MsTrace(0),
        1.0,
        0.4,
        vec![TaskKind::Scrub, TaskKind::Backup],
        true,
    );
    c.seed = 7;
    c
}

fn baseline_cfg() -> experiments::ExperimentConfig {
    let mut c = paper_scaled(
        SCALE,
        Personality::FileServer,
        DistKind::Uniform,
        1.0,
        0.6,
        vec![TaskKind::Scrub],
        false,
    );
    c.seed = 21;
    c
}

fn traced_cfg() -> experiments::ExperimentConfig {
    let mut c = paper_scaled(
        SCALE,
        Personality::WebServer,
        DistKind::Uniform,
        1.0,
        0.4,
        vec![TaskKind::Scrub, TaskKind::Backup],
        true,
    );
    c.seed = 7;
    c
}

fn grid_lines(grid: &[Vec<f64>]) -> String {
    grid.iter()
        .map(|row| {
            row.iter()
                .map(|v| format!("{:016x}", v.to_bits()))
                .collect::<Vec<_>>()
                .join(" ")
        })
        .collect::<Vec<_>>()
        .join("\n")
        + "\n"
}

fn main() -> ExitCode {
    let root_fixtures = std::path::Path::new("tests/fixtures");
    let bench_fixtures = std::path::Path::new("crates/bench/tests/fixtures");
    for d in [root_fixtures, bench_fixtures] {
        if let Err(e) = std::fs::create_dir_all(d) {
            eprintln!("error: creating {}: {e}", d.display());
            return ExitCode::FAILURE;
        }
    }
    let write = |path: &std::path::Path, name: &str, contents: &str| {
        let p = path.join(name);
        std::fs::write(&p, contents).expect("write fixture");
        println!("wrote {}", p.display());
    };

    // 1. Golden experiment CSVs (the determinism.rs presets).
    let exp = run_experiment(&experiment_cfg()).expect("experiment preset");
    write(
        root_fixtures,
        "golden_experiment_seed7.csv",
        &golden_csv(&exp),
    );
    let base = run_experiment(&baseline_cfg()).expect("baseline preset");
    write(
        root_fixtures,
        "golden_baseline_seed21.csv",
        &golden_csv(&base),
    );

    // 2. Rsync golden line.
    let rsync_cfg = paper_scaled(
        SCALE,
        Personality::WebServer,
        DistKind::Uniform,
        1.0,
        1.0,
        vec![],
        true,
    );
    let rs = run_rsync_experiment(&rsync_cfg, true).expect("rsync preset");
    write(
        root_fixtures,
        "golden_rsync.txt",
        &(golden_rsync_line(&rs) + "\n"),
    );

    // 3. Trace JSONL digest + counters (only meaningful when the trace
    // feature is compiled in; the fixture records which).
    let mut trace_out = String::new();
    if TraceHandle::compiled_in() {
        let t = TraceHandle::with_default_capacity();
        let r = run_experiment_traced(&traced_cfg(), Some(&t)).expect("traced preset");
        let jsonl = t.dump_jsonl();
        trace_out.push_str(&format!(
            "golden_csv_digest {}\n",
            fnv128_hex(golden_csv(&r).as_bytes())
        ));
        trace_out.push_str(&format!("jsonl_lines {}\n", jsonl.lines().count()));
        trace_out.push_str(&format!("jsonl_digest {}\n", fnv128_hex(jsonl.as_bytes())));
        trace_out.push_str(&format!(
            "counters_digest {}\n",
            fnv128_hex(format!("{:?}", t.counters()).as_bytes())
        ));
    } else {
        trace_out.push_str("trace_compiled_out\n");
    }
    write(root_fixtures, "golden_trace_seed7.txt", &trace_out);

    // 4. Parallel sweep grids (the parallel_determinism.rs scenarios),
    // dumped at jobs=1 — the tests assert jobs=1 and jobs=4 both match.
    let saved = saved_cells(
        SCALE,
        DeviceKind::Hdd,
        Personality::WebServer,
        DistKind::Uniform,
        &[0.2, 0.6],
        &[0.5, 1.0],
        &[TaskKind::Scrub],
        None,
        1,
    )
    .expect("saved sweep");
    write(bench_fixtures, "golden_saved_grid.txt", &grid_lines(&saved));
    let completed = completed_cells(
        SCALE,
        Personality::WebServer,
        &[0.0, 0.3, 0.6],
        &[TaskKind::Scrub, TaskKind::Backup],
        None,
        1,
    )
    .expect("completed sweep");
    write(
        bench_fixtures,
        "golden_completed_grid.txt",
        &grid_lines(&completed),
    );

    // 5. Structure-level op-mix logs: the exact event/pop sequences the
    // hot-path containers produce under a scripted deterministic mix.
    write(
        root_fixtures,
        "golden_cache_events.txt",
        &cache_event_log(0xCAFE, 4000),
    );
    write(
        root_fixtures,
        "golden_prioqueue_pops.txt",
        &prioqueue_pop_log(0x9A11, 4000),
    );
    write(
        root_fixtures,
        "golden_extent_oplog.txt",
        &extent_oplog(0xE47E, 4000),
    );

    println!("all fixtures written");
    ExitCode::SUCCESS
}
