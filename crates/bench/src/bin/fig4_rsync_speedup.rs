//! Figure 4: runtime speedup of opportunistic rsync as data overlap
//! with the (unthrottled) webserver workload varies.
//!
//! Expected shape (§6.2): speedup grows with overlap, reaching about
//! 2× at 100 % (all source reads saved; destination writes remain).

use bench::{f2, scale_from_env, Report};
use experiments::{paper_scaled, run_rsync_experiment, speedup};
use workloads::{DistKind, Personality};

fn main() {
    let scale = scale_from_env(64);
    println!("fig4: rsync speedup vs overlap, webserver unthrottled, scale 1/{scale}");
    let mut report = Report::new(
        "fig4_rsync_speedup",
        &[
            "overlap",
            "baseline_secs",
            "duet_secs",
            "speedup",
            "duet_reads_saved",
        ],
    );
    report.print_header();
    for overlap in [0.25, 0.5, 0.75, 1.0] {
        let cfg = paper_scaled(
            scale,
            Personality::WebServer,
            DistKind::Uniform,
            overlap,
            1.0, // Unthrottled: rsync runs at normal priority (§6.2).
            vec![],
            true,
        );
        let base = run_rsync_experiment(&cfg, false).expect("baseline rsync");
        let duet = run_rsync_experiment(&cfg, true).expect("duet rsync");
        report.row(&[
            f2(overlap),
            f2(base.completion.as_secs_f64()),
            f2(duet.completion.as_secs_f64()),
            f2(speedup(base.completion, duet.completion)),
            f2(duet.metrics.io_saved_fraction()),
        ]);
    }
    report.save().expect("write results");
}
