//! Thin wrapper: the harness body lives in `bench::figs::fig4_rsync_speedup`.

use std::process::ExitCode;

fn main() -> ExitCode {
    bench::run_main(64, bench::figs::fig4_rsync_speedup::run)
}
