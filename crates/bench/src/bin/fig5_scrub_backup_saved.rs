//! Figure 5: I/O saved when scrubbing and backup run *together* with
//! the webserver workload.
//!
//! Expected shape (§6.3): even at 0 % utilization the two tasks share
//! one pass over the data, saving ≥ 50 % of total maintenance I/O;
//! higher utilization and overlap push savings further.

use bench::{scale_from_env, sweeps::saved_sweep};
use experiments::{DeviceKind, TaskKind};
use workloads::{DistKind, Personality};

fn main() {
    let scale = scale_from_env(32);
    println!("fig5: scrub + backup + webserver, scale 1/{scale}");
    let report = saved_sweep(
        "fig5_scrub_backup_saved",
        scale,
        DeviceKind::Hdd,
        Personality::WebServer,
        DistKind::Uniform,
        &[0.25, 0.5, 0.75, 1.0],
        &[TaskKind::Scrub, TaskKind::Backup],
        None,
    );
    report.save().expect("write results");
}
