//! Thin wrapper: the harness body lives in `bench::figs::fig5_scrub_backup_saved`.

use std::process::ExitCode;

fn main() -> ExitCode {
    bench::run_main(32, bench::figs::fig5_scrub_backup_saved::run)
}
