//! Thin wrapper: the harness body lives in `bench::figs::extras_ablations`.

use std::process::ExitCode;

fn main() -> ExitCode {
    bench::run_main(64, bench::figs::extras_ablations::run)
}
