//! Runs every table/figure harness in sequence, writing all CSVs under
//! `results/`. Equivalent to invoking each `fig*`/`table*` binary.
//!
//! Control fidelity with `DUET_SCALE` (default here: 64 for the sweeps,
//! which keeps the full reproduction to a few minutes).

use std::process::Command;

fn main() {
    let bins = [
        "fig1_distributions",
        "fig2_scrub_saved",
        "fig2b_personalities",
        "fig3_backup_saved",
        "fig4_rsync_speedup",
        "fig5_scrub_backup_saved",
        "fig6_scrub_backup_completed",
        "fig7_three_tasks_saved",
        "fig8_three_tasks_completed",
        "fig9_cpu_overhead",
        "fig10_ssd",
        "table5_max_util",
        "table6_gc_cleaning",
        "mem_overhead",
        "extras_sensitivity",
        "extras_ablations",
        "extras_f2fs_ssr",
    ];
    let scale = std::env::var("DUET_SCALE").unwrap_or_else(|_| "64".into());
    let exe_dir = std::env::current_exe()
        .expect("current exe")
        .parent()
        .expect("exe dir")
        .to_path_buf();
    for bin in bins {
        println!("\n===== {bin} (DUET_SCALE={scale}) =====");
        let status = Command::new(exe_dir.join(bin))
            .env("DUET_SCALE", &scale)
            .status();
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => eprintln!("{bin} exited with {s}"),
            Err(e) => eprintln!(
                "{bin} failed to launch ({e}); build all binaries first: \
                 cargo build --release -p bench --bins"
            ),
        }
    }
    println!("\nAll harnesses done; CSVs in ./results/");
}
