//! Runs every table/figure harness **in-process**, writing all CSVs
//! under `results/` plus a machine-readable timing summary in
//! `results/BENCH_sweeps.json`.
//!
//! Harnesses fan out across cores (bounded by `DUET_JOBS`); each runs
//! against a buffered sink and the captured output is printed in
//! registry order afterwards, so the console transcript and every CSV
//! are byte-identical at any job count. The one wall-clock harness
//! (fig9) runs alone after the parallel batch so concurrent load
//! cannot skew its measurement; its CSV is excluded from byte-identity
//! claims (it reports hardware timings).
//!
//! Usage: `repro_all [harness...]` — with arguments, runs only the
//! named harnesses. Control fidelity with `DUET_SCALE` (default here:
//! 64, which keeps the full reproduction to a few minutes).

use bench::figs::{self, HarnessSpec};
use bench::harness::Stopwatch;
use bench::{pool, scale_from_env, BenchError, Sink};
use std::process::ExitCode;

struct Outcome {
    spec: &'static HarnessSpec,
    lines: Vec<String>,
    err: Option<String>,
    wall_ms: f64,
    /// Simulated operations the harness credited to its sink (0 for
    /// harnesses that do not run sweep cells).
    ops: u64,
}

fn run_buffered(spec: &'static HarnessSpec, scale: u64) -> Outcome {
    let mut sink = Sink::buffer();
    let sw = Stopwatch::start();
    let err = (spec.run)(scale, &mut sink).err().map(|e| e.to_string());
    let wall_ms = sw.elapsed_ns() as f64 / 1e6;
    Outcome {
        spec,
        err,
        wall_ms,
        ops: sink.ops(),
        lines: sink.into_lines(),
    }
}

fn write_summary(
    scale: u64,
    jobs: usize,
    outcomes: &[Outcome],
    total_ms: f64,
) -> std::io::Result<()> {
    // Hand-rolled JSON: names are static identifiers, nothing needs
    // escaping.
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema_version\": 2,\n");
    s.push_str(&format!("  \"scale\": {scale},\n"));
    s.push_str(&format!("  \"jobs\": {jobs},\n"));
    s.push_str("  \"harnesses\": [\n");
    for (i, o) in outcomes.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"wall_ms\": {:.3}, \"ops\": {}, \"ok\": {}, \
             \"wall_clock\": {}}}{}\n",
            o.spec.name,
            o.wall_ms,
            o.ops,
            o.err.is_none(),
            o.spec.wall_clock,
            if i + 1 < outcomes.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n");
    s.push_str(&format!("  \"total_wall_ms\": {total_ms:.3}\n"));
    s.push_str("}\n");
    std::fs::create_dir_all("results")?;
    std::fs::write("results/BENCH_sweeps.json", s)
}

fn main() -> ExitCode {
    let scale = scale_from_env(64);
    let jobs = pool::jobs();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let selected: Vec<&'static HarnessSpec> = if args.is_empty() {
        figs::ALL.iter().collect()
    } else {
        let mut v = Vec::new();
        for a in &args {
            match figs::find(a) {
                Some(h) => v.push(h),
                None => {
                    eprintln!("error: {}", BenchError::UnknownHarness(a.clone()));
                    let known: Vec<&str> = figs::ALL.iter().map(|h| h.name).collect();
                    eprintln!("known harnesses: {}", known.join(" "));
                    return ExitCode::FAILURE;
                }
            }
        }
        v
    };
    println!(
        "repro_all: {} harnesses in-process, DUET_SCALE={scale}, DUET_JOBS={jobs}",
        selected.len()
    );
    let total = Stopwatch::start();
    let parallel: Vec<&'static HarnessSpec> =
        selected.iter().copied().filter(|h| !h.wall_clock).collect();
    let serial: Vec<&'static HarnessSpec> =
        selected.iter().copied().filter(|h| h.wall_clock).collect();
    let mut outcomes =
        pool::run_indexed(parallel.len(), jobs, |i| run_buffered(parallel[i], scale));
    for o in &outcomes {
        println!("\n===== {} (DUET_SCALE={scale}) =====", o.spec.name);
        for line in &o.lines {
            println!("{line}");
        }
        if let Some(e) = &o.err {
            eprintln!("{} failed: {e}", o.spec.name);
        }
    }
    // Wall-clock harnesses run alone, after the parallel load drains.
    for spec in serial {
        println!(
            "\n===== {} (DUET_SCALE={scale}, wall-clock, runs alone) =====",
            spec.name
        );
        let mut sink = Sink::live();
        let sw = Stopwatch::start();
        let err = (spec.run)(scale, &mut sink).err().map(|e| e.to_string());
        if let Some(e) = &err {
            eprintln!("{} failed: {e}", spec.name);
        }
        outcomes.push(Outcome {
            spec,
            lines: Vec::new(),
            err,
            wall_ms: sw.elapsed_ns() as f64 / 1e6,
            ops: sink.ops(),
        });
    }
    // Report in registry order regardless of execution order.
    outcomes.sort_by_key(|o| figs::ALL.iter().position(|h| h.name == o.spec.name));
    let total_ms = total.elapsed_ns() as f64 / 1e6;
    if let Err(e) = write_summary(scale, jobs, &outcomes, total_ms) {
        eprintln!("error: writing results/BENCH_sweeps.json failed: {e}");
        return ExitCode::FAILURE;
    }
    let failed: Vec<&str> = outcomes
        .iter()
        .filter(|o| o.err.is_some())
        .map(|o| o.spec.name)
        .collect();
    println!(
        "\nAll harnesses done in {:.1}s; CSVs in ./results/, timings in \
         ./results/BENCH_sweeps.json",
        total_ms / 1e3
    );
    if failed.is_empty() {
        ExitCode::SUCCESS
    } else {
        eprintln!("failed harnesses: {}", failed.join(" "));
        ExitCode::FAILURE
    }
}
