//! Thin wrapper: the harness body lives in `bench::figs::extras_sensitivity`.

use std::process::ExitCode;

fn main() -> ExitCode {
    bench::run_main(32, bench::figs::extras_sensitivity::run)
}
