//! §6.5 sensitivity checks and the §6.1.3 latency-impact measurement:
//!
//! 1. **Workload latency impact**: webserver mean op latency at 50 %
//!    utilization without maintenance vs with scrubbing or backup at
//!    idle priority (the paper: 11.67 ms vs 11.60/11.82 — insignificant).
//! 2. **I/O prioritization**: CFQ idle class vs a no-priority Deadline
//!    scheduler — without prioritization the workload slows and I/O
//!    saved drops.
//! 3. **Page cache size**: varying the cache : data ratio has only a
//!    marginal effect on savings (out-of-order processing, not cache
//!    locality, provides most of the benefit).

use bench::{f2, pct, scale_from_env, Report};
use experiments::{paper_scaled, run_experiment, TaskKind};
use sim_disk::SchedulerPolicy;
use workloads::{DistKind, Personality};

fn main() {
    let scale = scale_from_env(32);
    println!("extras: §6.5 sensitivity, scale 1/{scale}");

    // 1. Workload latency impact at 50 % utilization: the paper reports
    //    11.67 ± 0.12 ms without maintenance, 11.60 ± 0.25 ms with
    //    scrubbing, 11.82 ± 0.16 ms with backup — i.e. insignificant.
    let mut lat = Report::new(
        "extras_latency_impact",
        &[
            "setup",
            "latency_ms",
            "ci95_ms",
            "workload_ops",
            "achieved_util",
        ],
    );
    lat.print_header();
    for (label, tasks) in [
        ("no maintenance", vec![]),
        ("with scrub", vec![TaskKind::Scrub]),
        ("with backup", vec![TaskKind::Backup]),
    ] {
        let cfg = paper_scaled(
            scale,
            Personality::WebServer,
            DistKind::Uniform,
            1.0,
            0.5,
            tasks,
            true,
        );
        let r = run_experiment(&cfg).expect("run");
        lat.row(&[
            label.into(),
            f2(r.workload_latency_ms.0),
            f2(r.workload_latency_ms.1),
            r.workload_ops.to_string(),
            f2(r.achieved_util),
        ]);
    }
    lat.save().expect("write");

    // 2. Prioritization ablation.
    let mut prio = Report::new(
        "extras_prioritization",
        &["scheduler", "io_saved", "work_completed", "workload_ops"],
    );
    prio.print_header();
    for (label, policy) in [
        ("cfq-idle", SchedulerPolicy::default_cfq()),
        ("deadline (no priority)", SchedulerPolicy::NoPriority),
    ] {
        let mut cfg = paper_scaled(
            scale,
            Personality::WebServer,
            DistKind::Uniform,
            1.0,
            0.6,
            vec![TaskKind::Scrub],
            true,
        );
        cfg.policy = policy;
        let r = run_experiment(&cfg).expect("run");
        prio.row(&[
            label.into(),
            pct(r.io_saved()),
            pct(r.work_completed()),
            r.workload_ops.to_string(),
        ]);
    }
    prio.save().expect("write");

    // 3. Page-cache size sweep.
    let mut cache = Report::new(
        "extras_cache_size",
        &["cache_fraction_of_data", "io_saved", "work_completed"],
    );
    cache.print_header();
    for frac in [0.01, 0.02, 0.04, 0.08, 0.16] {
        let mut cfg = paper_scaled(
            scale,
            Personality::WebServer,
            DistKind::Uniform,
            1.0,
            0.5,
            vec![TaskKind::Scrub, TaskKind::Backup],
            true,
        );
        let data_bytes = cfg.fileset.num_files as u64 * cfg.fileset.mean_file_bytes;
        cfg.cache_pages =
            ((data_bytes as f64 * frac) as u64 / sim_core::PAGE_SIZE).max(256) as usize;
        let r = run_experiment(&cfg).expect("run");
        cache.row(&[f2(frac), pct(r.io_saved()), pct(r.work_completed())]);
    }
    cache.save().expect("write");
    println!(
        "\nPaper shape: latency/throughput impact of idle-priority \
         maintenance is small; removing prioritization hurts savings; \
         cache size has a marginal effect."
    );
}
