//! Thin wrapper: the harness body lives in `bench::figs::fig8_three_tasks_completed`.

use std::process::ExitCode;

fn main() -> ExitCode {
    bench::run_main(32, bench::figs::fig8_three_tasks_completed::run)
}
