//! Ad-hoc probe harness for calibration work: runs one task/workload
//! combination across utilizations and prints detailed counters.
//! Arguments: `probe <task> <scale> [overlap]` (task: scrub|backup|defrag).

use bench::scale_from_env;
use experiments::{paper_scaled, run_experiment, TaskKind};
use std::process::ExitCode;
use workloads::{DistKind, Personality};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let task = match args.get(1).map(|s| s.as_str()) {
        Some("backup") => TaskKind::Backup,
        Some("defrag") => TaskKind::Defrag,
        _ => TaskKind::Scrub,
    };
    let scale = args
        .get(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| scale_from_env(128));
    let overlap: f64 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(1.0);
    println!("probe: {task:?} scale 1/{scale} overlap {overlap}");
    println!("util  mode      done    saved   task_rd   task_wr  achieved  wl_ops");
    for util in [0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9] {
        for duet in [false, true] {
            let mut cfg = paper_scaled(
                scale,
                Personality::WebServer,
                DistKind::Uniform,
                overlap,
                util,
                vec![task],
                duet,
            );
            if task == TaskKind::Defrag {
                cfg.fragmentation = Some((0.1, 5));
            }
            let r = match run_experiment(&cfg) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("error: experiment failed: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let t = &r.tasks[0];
            println!(
                "{:>4.1}  {:<8} {:>6.1}% {:>6.1}% {:>9} {:>9} {:>8.2}  {:>6}  mbusy={:.2}s",
                util,
                if duet { "duet" } else { "baseline" },
                t.metrics.work_fraction() * 100.0,
                t.metrics.io_saved_fraction() * 100.0,
                t.metrics.blocks_read,
                t.metrics.blocks_written,
                r.achieved_util,
                r.workload_ops,
                r.maintenance_busy.as_secs_f64(),
            );
        }
    }
    ExitCode::SUCCESS
}
