//! The `bench` CLI: zero-dependency microbenchmarks and the
//! perf-regression gate.
//!
//! - `bench micro` runs deterministic op mixes against the hot-path
//!   containers (dmap, slab, page cache, priority queue, block table,
//!   sparse bitmap) and writes `results/BENCH_micro.json`.
//! - `bench gate` compares `results/BENCH_sweeps.json` and
//!   `results/BENCH_micro.json` against the committed
//!   `results/BENCH_baseline.json` and exits nonzero on a regression
//!   beyond the tolerance band (`DUET_GATE_TOL`, default 10 %; micro
//!   rows use `DUET_GATE_TOL_MICRO`, default 35 % — single-shot
//!   nanosecond medians are noisier than end-to-end walls). Simulated
//!   op counts are compared *exactly*: they are deterministic, so any
//!   drift is a behaviour change, not noise.
//! - `bench baseline` rewrites `results/BENCH_baseline.json` from the
//!   current sweeps + micro results (re-baselining is a reviewed,
//!   deliberate act — see DESIGN.md §12).
//!
//! Everything here measures through [`bench::harness::Stopwatch`], the
//! workspace's single sanctioned wall-clock gateway (lint rule D1).

use bench::harness::Stopwatch;
use duet::PrioQueue;
use sim_btrfs::BlockTable;
use sim_cache::{PageCache, PageKey};
use sim_core::{BlockNr, DMap, DOrdMap, DSet, InodeNr, PageIndex, SimRng, Slab, SparseBitmap};
use std::process::ExitCode;

/// Timed samples per microbenchmark (median reported).
const SAMPLES: usize = 15;
/// Warmup iterations before sampling.
const WARMUP: usize = 2;

struct MicroResult {
    name: &'static str,
    /// Operations per sample iteration.
    ops: u64,
    /// Median wall time of one sample, in nanoseconds.
    median_ns: u128,
}

impl MicroResult {
    fn ns_per_op(&self) -> f64 {
        self.median_ns as f64 / self.ops.max(1) as f64
    }
}

/// Runs `routine` WARMUP + SAMPLES times and records the median wall
/// time. The routine's return value is black-boxed so the work cannot
/// be optimized away.
fn measure<O>(name: &'static str, ops: u64, mut routine: impl FnMut() -> O) -> MicroResult {
    for _ in 0..WARMUP {
        std::hint::black_box(routine());
    }
    let mut samples: Vec<u128> = Vec::with_capacity(SAMPLES);
    for _ in 0..SAMPLES {
        let sw = Stopwatch::start();
        let out = routine();
        samples.push(sw.elapsed_ns());
        std::hint::black_box(out);
    }
    samples.sort_unstable();
    MicroResult {
        name,
        ops,
        median_ns: samples[samples.len() / 2],
    }
}

/// Mixed insert/get/remove churn on the deterministic hash map.
fn micro_dmap() -> MicroResult {
    const OPS: u64 = 200_000;
    measure("dmap/churn", OPS, || {
        let mut rng = SimRng::new(0xD0A7);
        let mut m: DMap<u64, u64> = DMap::new();
        let mut acc = 0u64;
        for i in 0..OPS {
            let k = rng.gen_range(0, 4096);
            match i % 4 {
                0..=1 => {
                    m.insert(k, i);
                }
                2 => {
                    if let Some(&v) = m.get(&k) {
                        acc = acc.wrapping_add(v);
                    }
                }
                _ => {
                    m.remove(&k);
                }
            }
        }
        acc.wrapping_add(m.len() as u64)
    })
}

/// Membership churn on the deterministic hash set.
fn micro_dset() -> MicroResult {
    const OPS: u64 = 200_000;
    measure("dset/churn", OPS, || {
        let mut rng = SimRng::new(0x5E70);
        let mut s: DSet<u64> = DSet::new();
        let mut hits = 0u64;
        for i in 0..OPS {
            let k = rng.gen_range(0, 4096);
            match i % 4 {
                0..=1 => {
                    s.insert(k);
                }
                2 => {
                    if s.contains(&k) {
                        hits += 1;
                    }
                }
                _ => {
                    s.remove(&k);
                }
            }
        }
        hits + s.len() as u64
    })
}

/// Allocation churn on the slab arena (LIFO free-list reuse).
fn micro_slab() -> MicroResult {
    const OPS: u64 = 200_000;
    measure("slab/churn", OPS, || {
        let mut rng = SimRng::new(0x51AB);
        let mut slab: Slab<u64> = Slab::new();
        let mut live: Vec<u32> = Vec::new();
        let mut acc = 0u64;
        for i in 0..OPS {
            if live.len() < 512 || rng.gen_range(0, 2) == 0 {
                live.push(slab.insert(i));
            } else {
                let at = rng.gen_range(0, live.len() as u64) as usize;
                let h = live.swap_remove(at);
                acc = acc.wrapping_add(slab.remove(h).unwrap_or(0));
            }
        }
        acc.wrapping_add(slab.len() as u64)
    })
}

/// Ordered-map churn on the deterministic chunked sorted vector: the
/// extent-map mix of inserts, floor queries (`range(..=k).next_back()`,
/// the FIBMAP translation), short forward ranges and removals.
fn micro_omap() -> MicroResult {
    const OPS: u64 = 200_000;
    measure("omap/churn_floor_range", OPS, || {
        let mut rng = SimRng::new(0x0DD1);
        let mut m: DOrdMap<u64, u64> = DOrdMap::new();
        let mut acc = 0u64;
        for i in 0..OPS {
            let k = rng.gen_range(0, 4096);
            match i % 8 {
                0..=2 => {
                    m.insert(k, i);
                }
                3..=4 => {
                    if let Some((&fk, &fv)) = m.range(..=k).next_back() {
                        acc = acc.wrapping_add(fk ^ fv);
                    }
                }
                5 => {
                    for (&rk, _) in m.range(k..k + 64) {
                        acc = acc.wrapping_add(rk);
                    }
                }
                _ => {
                    m.remove(&k);
                }
            }
        }
        acc.wrapping_add(m.len() as u64)
    })
}

/// Page-cache insert pressure against a small capacity: every insert
/// past warm-up evicts through the intrusive LRU.
fn micro_cache_evict() -> MicroResult {
    const OPS: u64 = 50_000;
    measure("pagecache/insert_evict", OPS, || {
        let mut c = PageCache::new(1024);
        for i in 0..OPS {
            let k = PageKey::new(InodeNr(i % 64), PageIndex(i / 64));
            c.insert(k, Some(BlockNr(i)), i % 16 == 0);
            if i % 64 == 0 {
                c.writeback_batch(8);
            }
            if i % 256 == 0 {
                c.drain_events();
            }
        }
        c.drain_events().len() + c.stats().evictions as usize
    })
}

/// The cache's full hot-path mix: lookups, dirtying, writeback batches
/// and per-file flushes over a resident working set.
fn micro_cache_mixed() -> MicroResult {
    const OPS: u64 = 50_000;
    measure("pagecache/mixed", OPS, || {
        let mut rng = SimRng::new(0xCA8E);
        let mut c = PageCache::new(2048);
        let mut acc = 0usize;
        for i in 0..OPS {
            let ino = InodeNr(rng.gen_range(0, 32));
            let k = PageKey::new(ino, PageIndex(rng.gen_range(0, 128)));
            match i % 8 {
                0..=2 => {
                    c.insert(k, Some(BlockNr(i)), false);
                }
                3..=4 => {
                    if c.lookup(k).is_some() {
                        acc += 1;
                    }
                }
                5 => {
                    c.mark_dirty(k);
                }
                6 => {
                    acc += c.writeback_batch(8).len();
                }
                _ => {
                    acc += c.flush_file(ino).len();
                }
            }
            if i % 256 == 0 {
                c.drain_events();
            }
        }
        acc
    })
}

/// Upsert/pop churn with frequent priority ties on the binary heap.
fn micro_prioqueue() -> MicroResult {
    const OPS: u64 = 200_000;
    measure("prioqueue/upsert_pop", OPS, || {
        let mut rng = SimRng::new(0x9A11);
        let mut q: PrioQueue<u64, u64> = PrioQueue::new();
        let mut acc = 0u64;
        for i in 0..OPS {
            let k = rng.gen_range(0, 1024);
            match i % 4 {
                0..=1 => {
                    q.upsert(k, rng.gen_range(0, 16));
                }
                2 => {
                    if let Some((pk, pp)) = q.pop_max() {
                        acc = acc.wrapping_add(pk ^ pp);
                    }
                }
                _ => {
                    q.remove(k);
                }
            }
        }
        acc.wrapping_add(q.len() as u64)
    })
}

/// Corruption-set churn on the block table (inject, verify, repair).
fn micro_blocktable() -> MicroResult {
    const OPS: u64 = 100_000;
    measure("blocktable/corruption", OPS, || {
        let mut rng = SimRng::new(0xB10C);
        let mut t = BlockTable::new(8192);
        let mut bad = 0u64;
        for i in 0..OPS {
            let b = BlockNr(rng.gen_range(0, 8192));
            match i % 4 {
                0 => {
                    let _ = t.write_block(b);
                }
                1 => {
                    let _ = t.inject_corruption(b);
                }
                2 => {
                    if t.verify_checksum(b).is_err() {
                        bad += 1;
                    }
                }
                _ => {
                    let _ = t.repair(b);
                }
            }
        }
        bad + t.corrupted_count() as u64
    })
}

/// Word-at-a-time range operations on the sparse bitmap.
fn micro_bitmap() -> MicroResult {
    const OPS: u64 = 4_000;
    measure("bitmap/set_clear_range", OPS, || {
        let mut rng = SimRng::new(0xB17A);
        let mut bm = SparseBitmap::new();
        let mut total = 0u64;
        for _ in 0..OPS {
            let start = rng.gen_range(0, 1 << 20);
            let len = rng.gen_range(1, 4096);
            bm.set_range(start, len);
            if rng.gen_range(0, 2) == 0 {
                bm.clear_range(start + len / 4, len / 2);
            }
            total = total.wrapping_add(bm.count());
        }
        total
    })
}

fn run_micro() -> std::io::Result<Vec<MicroResult>> {
    let results = vec![
        micro_dmap(),
        micro_dset(),
        micro_slab(),
        micro_omap(),
        micro_cache_evict(),
        micro_cache_mixed(),
        micro_prioqueue(),
        micro_blocktable(),
        micro_bitmap(),
    ];
    let mut s = String::new();
    s.push_str("{\n  \"schema_version\": 1,\n  \"benches\": [\n");
    for (i, r) in results.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"ops\": {}, \"median_ns\": {}, \"ns_per_op\": {:.3}}}{}\n",
            r.name,
            r.ops,
            r.median_ns,
            r.ns_per_op(),
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    std::fs::create_dir_all("results")?;
    std::fs::write("results/BENCH_micro.json", s)?;
    for r in &results {
        println!(
            "{:<28} {:>12} ops  median {:>10.1} us  {:>8.1} ns/op",
            r.name,
            r.ops,
            r.median_ns as f64 / 1e3,
            r.ns_per_op()
        );
    }
    println!("[saved results/BENCH_micro.json]");
    Ok(results)
}

// --- Minimal extraction of the JSON this workspace writes itself. ---
// The files are machine-written with known shapes (`repro_all`,
// `run_micro`, `write_baseline`), so targeted scanning is sufficient
// and keeps the gate dependency-free.

/// The first number following `"key":` at any nesting level.
fn json_num(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = json.find(&needle)? + needle.len();
    let rest = json[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// All `{"name": "...", ...}` objects in `json`, as (name, object-body)
/// pairs. Objects are single-line in every file this tool reads.
fn json_objects(json: &str) -> Vec<(String, String)> {
    let mut out = Vec::new();
    for line in json.lines() {
        let line = line.trim();
        if !line.starts_with('{') {
            continue;
        }
        if let Some(at) = line.find("\"name\": \"") {
            let rest = &line[at + 9..];
            if let Some(end) = rest.find('"') {
                out.push((rest[..end].to_string(), line.to_string()));
            }
        }
    }
    out
}

fn read(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))
}

/// Parses a gate tolerance from an env value. A malformed or
/// non-finite value is a hard error, not a silent fallback: `0,2`
/// would otherwise quietly loosen to the default, and `inf` would
/// make the gate unfailable.
fn parse_tolerance(var: &str, value: Option<&str>, default: f64) -> Result<f64, String> {
    let Some(raw) = value else {
        return Ok(default);
    };
    let t: f64 = raw
        .trim()
        .parse()
        .map_err(|_| format!("{var}={raw:?} is not a number (e.g. 0.10 for 10%)"))?;
    if !t.is_finite() {
        return Err(format!(
            "{var}={raw:?} must be finite (an infinite tolerance disables the gate)"
        ));
    }
    if t < 0.0 {
        return Err(format!("{var}={raw:?} must be >= 0"));
    }
    Ok(t)
}

fn tolerance(var: &str, default: f64) -> Result<f64, String> {
    let value = std::env::var(var).ok();
    parse_tolerance(var, value.as_deref(), default)
}

fn write_baseline() -> Result<(), String> {
    let sweeps = read("results/BENCH_sweeps.json")?;
    let micro = read("results/BENCH_micro.json")?;
    let scale = json_num(&sweeps, "scale").ok_or("sweeps: missing scale")?;
    let jobs = json_num(&sweeps, "jobs").ok_or("sweeps: missing jobs")?;
    let total = json_num(&sweeps, "total_wall_ms").ok_or("sweeps: missing total_wall_ms")?;
    let mut s = String::new();
    s.push_str("{\n  \"schema_version\": 1,\n");
    s.push_str(&format!("  \"scale\": {scale},\n  \"jobs\": {jobs},\n"));
    s.push_str(&format!("  \"sweeps_total_wall_ms\": {total:.3},\n"));
    s.push_str("  \"harnesses\": [\n");
    let harnesses = json_objects(&sweeps);
    for (i, (name, obj)) in harnesses.iter().enumerate() {
        let wall = json_num(obj, "wall_ms").unwrap_or(0.0);
        let ops = json_num(obj, "ops").unwrap_or(0.0) as u64;
        let wall_clock = obj.contains("\"wall_clock\": true");
        s.push_str(&format!(
            "    {{\"name\": \"{name}\", \"wall_ms\": {wall:.3}, \"ops\": {ops}, \
             \"wall_clock\": {wall_clock}}}{}\n",
            if i + 1 < harnesses.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n  \"micro\": [\n");
    let benches = json_objects(&micro);
    for (i, (name, obj)) in benches.iter().enumerate() {
        let ns = json_num(obj, "ns_per_op").unwrap_or(0.0);
        s.push_str(&format!(
            "    {{\"name\": \"{name}\", \"ns_per_op\": {ns:.3}}}{}\n",
            if i + 1 < benches.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    std::fs::write("results/BENCH_baseline.json", s)
        .map_err(|e| format!("writing baseline: {e}"))?;
    println!("[saved results/BENCH_baseline.json]");
    Ok(())
}

fn run_gate() -> Result<(), String> {
    let sweeps = read("results/BENCH_sweeps.json")?;
    let micro = read("results/BENCH_micro.json")?;
    let baseline = read("results/BENCH_baseline.json")?;
    let tol = tolerance("DUET_GATE_TOL", 0.10)?;
    let tol_micro = tolerance("DUET_GATE_TOL_MICRO", 0.35)?;
    let mut failures: Vec<String> = Vec::new();
    let mut checked = 0usize;

    // The baseline is only comparable at the same scale and job count.
    for key in ["scale", "jobs"] {
        let cur = json_num(&sweeps, key);
        let base = json_num(&baseline, key);
        if cur != base {
            return Err(format!(
                "gate: {key} mismatch (current {cur:?}, baseline {base:?}); \
                 run the baseline settings or re-baseline deliberately"
            ));
        }
    }

    let base_total =
        json_num(&baseline, "sweeps_total_wall_ms").ok_or("baseline: missing total")?;
    let cur_total = json_num(&sweeps, "total_wall_ms").ok_or("sweeps: missing total")?;
    checked += 1;
    if cur_total > base_total * (1.0 + tol) {
        failures.push(format!(
            "total_wall_ms regressed: {cur_total:.1} ms vs baseline {base_total:.1} ms \
             (+{:.1}%, tolerance {:.0}%)",
            100.0 * (cur_total / base_total - 1.0),
            tol * 100.0
        ));
    }

    // Simulated ops are deterministic: exact equality, no band.
    let base_harnesses = json_objects(&baseline);
    for (name, obj) in json_objects(&sweeps) {
        let Some((_, base_obj)) = base_harnesses.iter().find(|(n, _)| *n == name) else {
            continue;
        };
        let cur_ops = json_num(&obj, "ops").unwrap_or(0.0) as u64;
        let base_ops = json_num(base_obj, "ops").unwrap_or(0.0) as u64;
        checked += 1;
        if cur_ops != base_ops {
            failures.push(format!(
                "{name}: simulated ops changed ({cur_ops} vs baseline {base_ops}) — \
                 behaviour drift, not a perf regression"
            ));
        }
    }

    for (name, obj) in json_objects(&micro) {
        let Some((_, base_obj)) = base_harnesses.iter().find(|(n, _)| *n == name) else {
            continue;
        };
        let cur_ns = json_num(&obj, "ns_per_op").unwrap_or(0.0);
        let base_ns = json_num(base_obj, "ns_per_op").unwrap_or(0.0);
        if base_ns <= 0.0 {
            continue;
        }
        checked += 1;
        if cur_ns > base_ns * (1.0 + tol_micro) {
            failures.push(format!(
                "{name}: {cur_ns:.1} ns/op vs baseline {base_ns:.1} ns/op (+{:.1}%, \
                 tolerance {:.0}%)",
                100.0 * (cur_ns / base_ns - 1.0),
                tol_micro * 100.0
            ));
        }
    }

    if failures.is_empty() {
        println!(
            "gate: OK — {checked} comparisons within tolerance \
             (total {cur_total:.1} ms vs baseline {base_total:.1} ms)"
        );
        Ok(())
    } else {
        for f in &failures {
            eprintln!("gate: FAIL {f}");
        }
        Err(format!("{} regression(s) beyond tolerance", failures.len()))
    }
}

fn main() -> ExitCode {
    let cmd = std::env::args().nth(1).unwrap_or_default();
    let outcome = match cmd.as_str() {
        "micro" => run_micro().map(|_| ()).map_err(|e| e.to_string()),
        "gate" => run_gate(),
        "baseline" => write_baseline(),
        _ => {
            eprintln!(
                "usage: bench <micro|gate|baseline>\n\
                 \n\
                 micro     run container microbenchmarks, write results/BENCH_micro.json\n\
                 gate      compare sweeps+micro results against results/BENCH_baseline.json\n\
                 baseline  rewrite results/BENCH_baseline.json from current results"
            );
            return ExitCode::FAILURE;
        }
    };
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::parse_tolerance;

    #[test]
    fn tolerance_unset_uses_default() {
        assert_eq!(parse_tolerance("DUET_GATE_TOL", None, 0.10), Ok(0.10));
    }

    #[test]
    fn tolerance_parses_valid_values() {
        assert_eq!(
            parse_tolerance("DUET_GATE_TOL", Some("0.25"), 0.10),
            Ok(0.25)
        );
        assert_eq!(parse_tolerance("DUET_GATE_TOL", Some("0"), 0.10), Ok(0.0));
        // Surrounding whitespace is harmless.
        assert_eq!(
            parse_tolerance("DUET_GATE_TOL", Some(" 0.5 "), 0.10),
            Ok(0.5)
        );
    }

    #[test]
    fn tolerance_rejects_malformed_values() {
        // A locale-style decimal comma must not silently fall back.
        let err = parse_tolerance("DUET_GATE_TOL", Some("0,2"), 0.10).unwrap_err();
        assert!(err.contains("DUET_GATE_TOL"), "{err}");
        assert!(err.contains("not a number"), "{err}");
        assert!(parse_tolerance("DUET_GATE_TOL", Some(""), 0.10).is_err());
        assert!(parse_tolerance("DUET_GATE_TOL", Some("ten"), 0.10).is_err());
    }

    #[test]
    fn tolerance_rejects_non_finite_and_negative() {
        // `inf` parses as f64 but would make the gate unfailable.
        let err = parse_tolerance("DUET_GATE_TOL_MICRO", Some("inf"), 0.35).unwrap_err();
        assert!(err.contains("finite"), "{err}");
        assert!(parse_tolerance("DUET_GATE_TOL", Some("NaN"), 0.10).is_err());
        assert!(parse_tolerance("DUET_GATE_TOL", Some("-0.1"), 0.10).is_err());
    }
}
