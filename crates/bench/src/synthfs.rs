//! A minimal synthetic filesystem view for overhead microbenchmarks.
//!
//! The §6.4 CPU-overhead experiment only needs Duet's bookkeeping paths
//! (descriptor updates, relevance bitmap tests, fetch); the stub keeps
//! everything trivially relevant and maps page *n* of file *i* to block
//! `i · 2^20 + n`.

use duet::FsIntrospect;
use sim_cache::PageMeta;
use sim_core::{BlockNr, DeviceId, InodeNr, PageIndex};

/// Stub filesystem: flat namespace, identity-ish fibmap.
pub struct SynthFs;

impl FsIntrospect for SynthFs {
    fn device(&self) -> DeviceId {
        DeviceId(0)
    }

    fn is_under(&self, _ino: InodeNr, _dir: InodeNr) -> bool {
        true
    }

    fn path_of(&self, ino: InodeNr) -> Option<String> {
        Some(format!("/f{}", ino.raw()))
    }

    fn fibmap(&self, ino: InodeNr, index: PageIndex) -> Option<BlockNr> {
        Some(BlockNr((ino.raw() << 20) + index.raw()))
    }

    fn has_cached_pages(&self, _ino: InodeNr) -> bool {
        true
    }

    fn cached_pages(&self) -> Vec<PageMeta> {
        Vec::new()
    }

    fn cached_pages_of(&self, _ino: InodeNr) -> Vec<PageMeta> {
        Vec::new()
    }
}

/// Root directory used by synthetic sessions.
pub const SYNTH_ROOT: InodeNr = InodeNr(1);
