//! Figure 10: I/O saved on a solid-state drive (§6.5).
//!
//! Expected shape: scrubbing saves about the same as on the hard drive
//! (it finishes in half the time, but the workload also runs faster, so
//! the overlap exploited is similar); backup saves *more* on the SSD
//! because the workload's higher throughput creates more overlap while
//! the backup's 64 KiB random reads run no faster.

use crate::sweeps::util_grid;
use crate::trace::{self, TraceAgg};
use crate::{f2, pool, BenchResult, Report, Sink};
use experiments::{paper_scaled, run_experiment_cached_traced, DeviceKind, ProfileCache, TaskKind};
use workloads::{DistKind, Personality};

/// Per-cell outcome: metric value, simulated ops, harvested counters.
type CellOutcome = sim_core::SimResult<(f64, u64, Vec<(String, u64)>)>;

/// Runs the harness at 1/`scale` of the paper setup.
pub fn run(scale: u64, sink: &mut Sink) -> BenchResult<()> {
    sink.line(format!(
        "fig10: scrub and backup on HDD vs SSD, webserver, scale 1/{scale}"
    ));
    let mut report = Report::new(
        "fig10_ssd",
        &[
            "utilization",
            "scrub_saved_hdd",
            "scrub_saved_ssd",
            "backup_saved_hdd",
            "backup_saved_ssd",
        ],
    );
    report.print_header(sink);
    let utils = util_grid();
    let variants = [
        (TaskKind::Scrub, DeviceKind::Hdd),
        (TaskKind::Scrub, DeviceKind::Ssd),
        (TaskKind::Backup, DeviceKind::Hdd),
        (TaskKind::Backup, DeviceKind::Ssd),
    ];
    let cells: Vec<(f64, TaskKind, DeviceKind)> = utils
        .iter()
        .flat_map(|&u| variants.iter().map(move |&(t, d)| (u, t, d)))
        .collect();
    let profiles = ProfileCache::global();
    let traced = trace::enabled();
    let ran = pool::try_run_indexed(cells.len(), pool::jobs(), |i| -> CellOutcome {
        let (util, task, device) = cells[i];
        let mut cfg = paper_scaled(
            scale,
            Personality::WebServer,
            DistKind::Uniform,
            1.0,
            util,
            vec![task],
            true,
        );
        cfg.device = device;
        let handle = trace::cell(traced);
        let result = run_experiment_cached_traced(&cfg, profiles, handle.as_ref())?;
        Ok((
            result.io_saved(),
            result.workload_ops,
            trace::harvest(handle),
        ))
    })?;
    let mut traces = TraceAgg::new(traced);
    let saved: Vec<f64> = ran
        .into_iter()
        .map(|(v, ops, counters)| {
            sink.add_ops(ops);
            traces.merge(counters);
            v
        })
        .collect();
    for (util, vals) in utils.iter().zip(saved.chunks(variants.len())) {
        let mut row = vec![f2(*util)];
        row.extend(vals.iter().map(|&v| f2(v)));
        report.row(sink, &row);
    }
    report.save(sink)?;
    traces.save("fig10_ssd", sink)?;
    Ok(())
}
