//! Figure 5: I/O saved when scrubbing and backup run *together* with
//! the webserver workload.
//!
//! Expected shape (§6.3): even at 0 % utilization the two tasks share
//! one pass over the data, saving ≥ 50 % of total maintenance I/O;
//! higher utilization and overlap push savings further.

use crate::sweeps::saved_sweep;
use crate::{BenchResult, Sink};
use experiments::{DeviceKind, TaskKind};
use workloads::{DistKind, Personality};

/// Runs the harness at 1/`scale` of the paper setup.
pub fn run(scale: u64, sink: &mut Sink) -> BenchResult<()> {
    sink.line(format!("fig5: scrub + backup + webserver, scale 1/{scale}"));
    let report = saved_sweep(
        "fig5_scrub_backup_saved",
        scale,
        DeviceKind::Hdd,
        Personality::WebServer,
        DistKind::Uniform,
        &[0.25, 0.5, 0.75, 1.0],
        &[TaskKind::Scrub, TaskKind::Backup],
        None,
        sink,
    )?;
    report.save(sink)?;
    Ok(())
}
