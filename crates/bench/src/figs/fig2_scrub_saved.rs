//! Figure 2: I/O saved when the scrubbing task runs together with the
//! webserver workload, across device utilization (0–100 %) and data
//! overlap (25/50/75/100 %).
//!
//! Expected shape (§6.2): savings rise with utilization until they
//! plateau at the overlap fraction — the workload reads all shared data
//! before the sequential scan gets to it.

use crate::sweeps::saved_sweep;
use crate::{BenchResult, Sink};
use experiments::{DeviceKind, TaskKind};
use workloads::{DistKind, Personality};

/// Runs the harness at 1/`scale` of the paper setup.
pub fn run(scale: u64, sink: &mut Sink) -> BenchResult<()> {
    sink.line(format!(
        "fig2: scrub + webserver, scale 1/{scale} of the paper setup"
    ));
    let report = saved_sweep(
        "fig2_scrub_saved",
        scale,
        DeviceKind::Hdd,
        Personality::WebServer,
        DistKind::Uniform,
        &[0.25, 0.5, 0.75, 1.0],
        &[TaskKind::Scrub],
        None,
        sink,
    )?;
    report.save(sink)?;
    Ok(())
}
