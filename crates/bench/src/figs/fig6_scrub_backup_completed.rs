//! Figure 6: maintenance work completed when scrubbing and backup run
//! together with the webserver workload, baseline vs Duet.
//!
//! Expected shape (§6.3): the baseline pair stops completing beyond
//! ~30 % utilization; Duet sustains completion to 70–90 %.

use crate::sweeps::completed_sweep;
use crate::{BenchResult, Sink};
use experiments::TaskKind;
use workloads::Personality;

/// Runs the harness at 1/`scale` of the paper setup.
pub fn run(scale: u64, sink: &mut Sink) -> BenchResult<()> {
    sink.line(format!(
        "fig6: work completed, scrub + backup + webserver, scale 1/{scale}"
    ));
    let report = completed_sweep(
        "fig6_scrub_backup_completed",
        scale,
        Personality::WebServer,
        &[TaskKind::Scrub, TaskKind::Backup],
        None,
        sink,
    )?;
    report.save(sink)?;
    Ok(())
}
