//! §6.2 text claims: how the read-write ratio and access skew change
//! the I/O saved by scrubbing and backup.
//!
//! The paper (webserver = 10:1, webproxy = 4:1, fileserver = 1:2, all
//! at 100 % overlap):
//!
//! - scrubbing: "the webproxy performs similarly to the webserver ...
//!   the write-intensive fileserver workload has 40 % of the IO savings
//!   compared to the other two";
//! - backup: webproxy "yields 80 % of the I/O savings of webserver,
//!   while fileserver ... yields up to 40 %";
//! - both: "using the skewed file access distribution reduces the I/O
//!   saved by 15-30 %".

use crate::trace::{self, TraceAgg};
use crate::{f2, pool, BenchResult, Report, Sink};
use experiments::{paper_scaled, run_experiment_cached_traced, ProfileCache, TaskKind};
use workloads::{DistKind, Personality};

/// Per-cell outcome: metric value, simulated ops, harvested counters.
type CellOutcome = sim_core::SimResult<(f64, u64, Vec<(String, u64)>)>;

/// Runs the harness at 1/`scale` of the paper setup.
pub fn run(scale: u64, sink: &mut Sink) -> BenchResult<()> {
    let util = 0.6;
    sink.line(format!(
        "fig2b: I/O saved by personality and distribution at {:.0}% utilization, scale 1/{scale}",
        util * 100.0
    ));
    let mut report = Report::new(
        "fig2b_personalities",
        &[
            "task",
            "webserver",
            "webproxy",
            "fileserver",
            "webserver_mstrace",
            "fileserver_rel_to_webserver",
            "mstrace_reduction",
        ],
    );
    report.print_header(sink);
    let combos = [
        (Personality::WebServer, DistKind::Uniform),
        (Personality::WebProxy, DistKind::Uniform),
        (Personality::FileServer, DistKind::Uniform),
        (Personality::WebServer, DistKind::MsTrace(0)),
    ];
    let tasks = [TaskKind::Scrub, TaskKind::Backup];
    let cells: Vec<(TaskKind, Personality, DistKind)> = tasks
        .iter()
        .flat_map(|&t| combos.iter().map(move |&(p, d)| (t, p, d)))
        .collect();
    let profiles = ProfileCache::global();
    let traced = trace::enabled();
    let ran = pool::try_run_indexed(cells.len(), pool::jobs(), |i| -> CellOutcome {
        let (task, personality, dist) = cells[i];
        let cfg = paper_scaled(scale, personality, dist, 1.0, util, vec![task], true);
        let handle = trace::cell(traced);
        let result = run_experiment_cached_traced(&cfg, profiles, handle.as_ref())?;
        Ok((
            result.io_saved(),
            result.workload_ops,
            trace::harvest(handle),
        ))
    })?;
    let mut traces = TraceAgg::new(traced);
    let saved: Vec<f64> = ran
        .into_iter()
        .map(|(v, ops, counters)| {
            sink.add_ops(ops);
            traces.merge(counters);
            v
        })
        .collect();
    for (task, s) in tasks.iter().zip(saved.chunks(combos.len())) {
        let (web, proxy, file, web_ms) = (s[0], s[1], s[2], s[3]);
        report.row(
            sink,
            &[
                format!("{task:?}"),
                f2(web),
                f2(proxy),
                f2(file),
                f2(web_ms),
                f2(file / web.max(1e-9)),
                f2(1.0 - web_ms / web.max(1e-9)),
            ],
        );
    }
    report.save(sink)?;
    traces.save("fig2b_personalities", sink)?;
    sink.line(
        "\nPaper shape: webproxy ≈ webserver; fileserver well below both \
         (~40%); the skewed distribution costs 15-30% of the savings.",
    );
    Ok(())
}
