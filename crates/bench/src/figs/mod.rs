//! Harness bodies for every table and figure, callable in-process.
//!
//! Each submodule exposes `run(scale, sink) -> BenchResult<()>` with
//! the exact behaviour of the corresponding `src/bin/` binary (which is
//! now a thin wrapper around it). The [`ALL`] registry lets `repro_all`
//! fan the harnesses out across cores instead of spawning subprocesses.

use crate::{BenchResult, Sink};

pub mod extras_ablations;
pub mod extras_f2fs_ssr;
pub mod extras_sensitivity;
pub mod fig10_ssd;
pub mod fig1_distributions;
pub mod fig2_scrub_saved;
pub mod fig2b_personalities;
pub mod fig3_backup_saved;
pub mod fig4_rsync_speedup;
pub mod fig5_scrub_backup_saved;
pub mod fig6_scrub_backup_completed;
pub mod fig7_three_tasks_saved;
pub mod fig8_three_tasks_completed;
pub mod fig9_cpu_overhead;
pub mod mem_overhead;
pub mod table5_max_util;
pub mod table6_gc_cleaning;

/// A harness entry point.
pub type Harness = fn(u64, &mut Sink) -> BenchResult<()>;

/// One registered harness.
#[derive(Debug, Clone, Copy)]
pub struct HarnessSpec {
    /// Binary/CSV name.
    pub name: &'static str,
    /// The harness body.
    pub run: Harness,
    /// Whether the harness *measures wall-clock time* (fig9): its CSV
    /// is a hardware measurement, inherently non-reproducible byte for
    /// byte, and it must run alone — concurrent load would skew it.
    pub wall_clock: bool,
}

/// Every harness, in the canonical `repro_all` order.
pub const ALL: &[HarnessSpec] = &[
    HarnessSpec {
        name: "fig1_distributions",
        run: fig1_distributions::run,
        wall_clock: false,
    },
    HarnessSpec {
        name: "fig2_scrub_saved",
        run: fig2_scrub_saved::run,
        wall_clock: false,
    },
    HarnessSpec {
        name: "fig2b_personalities",
        run: fig2b_personalities::run,
        wall_clock: false,
    },
    HarnessSpec {
        name: "fig3_backup_saved",
        run: fig3_backup_saved::run,
        wall_clock: false,
    },
    HarnessSpec {
        name: "fig4_rsync_speedup",
        run: fig4_rsync_speedup::run,
        wall_clock: false,
    },
    HarnessSpec {
        name: "fig5_scrub_backup_saved",
        run: fig5_scrub_backup_saved::run,
        wall_clock: false,
    },
    HarnessSpec {
        name: "fig6_scrub_backup_completed",
        run: fig6_scrub_backup_completed::run,
        wall_clock: false,
    },
    HarnessSpec {
        name: "fig7_three_tasks_saved",
        run: fig7_three_tasks_saved::run,
        wall_clock: false,
    },
    HarnessSpec {
        name: "fig8_three_tasks_completed",
        run: fig8_three_tasks_completed::run,
        wall_clock: false,
    },
    HarnessSpec {
        name: "fig9_cpu_overhead",
        run: fig9_cpu_overhead::run,
        wall_clock: true,
    },
    HarnessSpec {
        name: "fig10_ssd",
        run: fig10_ssd::run,
        wall_clock: false,
    },
    HarnessSpec {
        name: "table5_max_util",
        run: table5_max_util::run,
        wall_clock: false,
    },
    HarnessSpec {
        name: "table6_gc_cleaning",
        run: table6_gc_cleaning::run,
        wall_clock: false,
    },
    HarnessSpec {
        name: "mem_overhead",
        run: mem_overhead::run,
        wall_clock: false,
    },
    HarnessSpec {
        name: "extras_sensitivity",
        run: extras_sensitivity::run,
        wall_clock: false,
    },
    HarnessSpec {
        name: "extras_ablations",
        run: extras_ablations::run,
        wall_clock: false,
    },
    HarnessSpec {
        name: "extras_f2fs_ssr",
        run: extras_f2fs_ssr::run,
        wall_clock: false,
    },
];

/// Looks a harness up by name.
pub fn find(name: &str) -> Option<&'static HarnessSpec> {
    ALL.iter().find(|h| h.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_complete_and_unique() {
        assert_eq!(ALL.len(), 17);
        let mut names: Vec<&str> = ALL.iter().map(|h| h.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 17, "duplicate harness names");
        assert!(find("fig9_cpu_overhead").is_some_and(|h| h.wall_clock));
        assert!(find("fig2_scrub_saved").is_some_and(|h| !h.wall_clock));
        assert!(find("nope").is_none());
    }
}
