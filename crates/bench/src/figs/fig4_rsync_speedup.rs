//! Figure 4: runtime speedup of opportunistic rsync as data overlap
//! with the (unthrottled) webserver workload varies.
//!
//! Expected shape (§6.2): speedup grows with overlap, reaching about
//! 2× at 100 % (all source reads saved; destination writes remain).

use crate::trace::{self, TraceAgg};
use crate::{f2, pool, BenchResult, Report, Sink};
use experiments::{paper_scaled, run_rsync_experiment_traced, speedup};
use workloads::{DistKind, Personality};

/// Runs the harness at 1/`scale` of the paper setup.
pub fn run(scale: u64, sink: &mut Sink) -> BenchResult<()> {
    sink.line(format!(
        "fig4: rsync speedup vs overlap, webserver unthrottled, scale 1/{scale}"
    ));
    let mut report = Report::new(
        "fig4_rsync_speedup",
        &[
            "overlap",
            "baseline_secs",
            "duet_secs",
            "speedup",
            "duet_reads_saved",
        ],
    );
    report.print_header(sink);
    let overlaps = [0.25, 0.5, 0.75, 1.0];
    let cells: Vec<(f64, bool)> = overlaps
        .iter()
        .flat_map(|&o| [false, true].into_iter().map(move |d| (o, d)))
        .collect();
    let traced = trace::enabled();
    let ran = pool::try_run_indexed(cells.len(), pool::jobs(), |i| {
        let (overlap, duet) = cells[i];
        let cfg = paper_scaled(
            scale,
            Personality::WebServer,
            DistKind::Uniform,
            overlap,
            1.0, // Unthrottled: rsync runs at normal priority (§6.2).
            vec![],
            true,
        );
        let handle = trace::cell(traced);
        let r = run_rsync_experiment_traced(&cfg, duet, handle.as_ref())?;
        sim_core::SimResult::Ok((r, trace::harvest(handle)))
    })?;
    let mut traces = TraceAgg::new(traced);
    let runs: Vec<_> = ran
        .into_iter()
        .map(|(r, counters)| {
            traces.merge(counters);
            r
        })
        .collect();
    for (&overlap, pair) in overlaps.iter().zip(runs.chunks(2)) {
        let (base, duet) = (&pair[0], &pair[1]);
        report.row(
            sink,
            &[
                f2(overlap),
                f2(base.completion.as_secs_f64()),
                f2(duet.completion.as_secs_f64()),
                f2(speedup(base.completion, duet.completion)),
                f2(duet.metrics.io_saved_fraction()),
            ],
        );
    }
    report.save(sink)?;
    traces.save("fig4_rsync_speedup", sink)?;
    Ok(())
}
