//! Figure 9: CPU overhead of Duet (§6.4).
//!
//! The paper registers a file task on the filesystem root, generates
//! roughly 12 page events/ms with an unthrottled webserver, and
//! measures the CPU lost to Duet bookkeeping while the task either
//! stays idle or fetches every 10/20/40 ms. Reported overhead is
//! 0.5–1.5 %, with state-based notifications slightly cheaper (events
//! merge) and fetch frequency mostly irrelevant.
//!
//! We measure the same code paths directly: wall-clock nanoseconds per
//! event through `handle_page_event` + periodic `fetch`, then express
//! them as the CPU share a 12 events/ms stream would consume.
//!
//! This is the one *wall-clock* harness (`HarnessSpec::wall_clock`):
//! its CSV is a hardware measurement, so `repro_all` runs it alone,
//! after the parallel batch, and excludes it from byte-identity claims.

use crate::harness::Stopwatch;
use crate::synthfs::{SynthFs, SYNTH_ROOT};
use crate::{f2, BenchResult, Report, Sink};
use duet::{Duet, DuetConfig, EventMask, TaskScope};
use sim_cache::{PageEvent, PageKey, PageMeta};
use sim_core::{BlockNr, InodeNr, PageIndex, SimResult};

const EVENTS_PER_MS: u64 = 12;
const SIM_MS: u64 = 20_000;

/// Replays `SIM_MS` virtual milliseconds of events; returns wall ns per
/// event.
fn run_case(mask: EventMask, fetch_every_ms: Option<u64>) -> SimResult<f64> {
    let fs = SynthFs;
    let mut duet = Duet::new(DuetConfig {
        max_sessions: 16,
        descriptor_limit: 1 << 20,
    });
    let sid = duet.register(
        TaskScope::File {
            registered_dir: SYNTH_ROOT,
        },
        mask,
        &fs,
    )?;
    let files = 512u64;
    let pages = 64u64;
    let total_events = SIM_MS * EVENTS_PER_MS;
    let t0 = Stopwatch::start();
    let mut cursor = 0u64;
    for ms in 0..SIM_MS {
        for _ in 0..EVENTS_PER_MS {
            cursor = cursor
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let ino = InodeNr(2 + (cursor >> 33) % files);
            let idx = PageIndex((cursor >> 20) % pages);
            let meta = PageMeta {
                key: PageKey::new(ino, idx),
                block: Some(BlockNr((ino.raw() << 20) + idx.raw())),
                dirty: false,
            };
            // Mix of adds, removes and dirties (removes let state
            // notifications cancel).
            let ev = match cursor % 4 {
                0 | 1 => PageEvent::Added,
                2 => PageEvent::Dirtied,
                _ => PageEvent::Removed,
            };
            duet.handle_page_event(meta, ev, &fs);
        }
        if let Some(every) = fetch_every_ms {
            if ms % every == 0 {
                loop {
                    let items = duet.fetch(sid, 256, &fs)?;
                    if items.len() < 256 {
                        break;
                    }
                }
            }
        }
    }
    Ok(t0.elapsed_ns() as f64 / total_events as f64)
}

/// Runs the harness. `scale` is unused: the measurement replays a fixed
/// event stream.
pub fn run(_scale: u64, sink: &mut Sink) -> BenchResult<()> {
    sink.line(format!(
        "fig9: Duet bookkeeping cost, {EVENTS_PER_MS} events/ms stream"
    ));
    let mut report = Report::new(
        "fig9_cpu_overhead",
        &[
            "fetch_interval",
            "mask",
            "ns_per_event",
            "cpu_overhead_at_12ev_ms",
        ],
    );
    report.print_header(sink);
    let event_mask = EventMask::ADDED | EventMask::REMOVED | EventMask::DIRTIED;
    let state_mask = EventMask::EXISTS | EventMask::MODIFIED;
    for (label, interval) in [
        ("idle", None),
        ("10ms", Some(10)),
        ("20ms", Some(20)),
        ("40ms", Some(40)),
    ] {
        for (mask_label, mask) in [("events", event_mask), ("state", state_mask)] {
            let ns = run_case(mask, interval)?;
            // A 12 events/ms stream costs ns × 12_000 per second of
            // workload; overhead is that over one CPU-second.
            let overhead = ns * (EVENTS_PER_MS as f64 * 1000.0) / 1e9;
            report.row(
                sink,
                &[
                    label.to_string(),
                    mask_label.to_string(),
                    f2(ns),
                    format!("{:.3}%", overhead * 100.0),
                ],
            );
        }
    }
    report.save(sink)?;
    sink.line(
        "\nPaper shape: overhead in the low single-digit percent range; \
         state notifications slightly cheaper (events merge/cancel); \
         fetch frequency has little effect.",
    );
    Ok(())
}
