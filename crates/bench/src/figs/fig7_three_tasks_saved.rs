//! Figure 7: I/O saved when scrubbing, backup and defragmentation run
//! together with the webserver workload.
//!
//! Expected shape (§6.3): ~55 % saved with no workload (one shared pass
//! over the data; defragmentation writes cannot be saved), rising to
//! ~80 % with the read-mostly webserver.

use crate::sweeps::saved_sweep;
use crate::{BenchResult, Sink};
use experiments::{DeviceKind, TaskKind};
use workloads::{DistKind, Personality};

/// Runs the harness at 1/`scale` of the paper setup.
pub fn run(scale: u64, sink: &mut Sink) -> BenchResult<()> {
    sink.line(format!(
        "fig7: scrub + backup + defrag + webserver, scale 1/{scale}"
    ));
    let report = saved_sweep(
        "fig7_three_tasks_saved",
        scale,
        DeviceKind::Hdd,
        Personality::WebServer,
        DistKind::Uniform,
        &[0.25, 0.5, 0.75, 1.0],
        &[TaskKind::Scrub, TaskKind::Backup, TaskKind::Defrag],
        Some((0.1, 5)),
        sink,
    )?;
    report.save(sink)?;
    Ok(())
}
