//! Figure 8: maintenance work completed when scrubbing, backup and
//! defragmentation run together with the webserver workload.
//!
//! Expected shape (§6.3): "Without Duet, maintenance work fails to
//! complete even when the device is idle" (the three baselines contend
//! for the window); Duet completes everything up to ~50 % utilization.

use crate::sweeps::completed_sweep;
use crate::{BenchResult, Sink};
use experiments::TaskKind;
use workloads::Personality;

/// Runs the harness at 1/`scale` of the paper setup.
pub fn run(scale: u64, sink: &mut Sink) -> BenchResult<()> {
    sink.line(format!(
        "fig8: work completed, three tasks + webserver, scale 1/{scale}"
    ));
    let report = completed_sweep(
        "fig8_three_tasks_completed",
        scale,
        Personality::WebServer,
        &[TaskKind::Scrub, TaskKind::Backup, TaskKind::Defrag],
        Some((0.1, 5)),
        sink,
    )?;
    report.save(sink)?;
    Ok(())
}
