//! Figure 1: file access distributions for the (synthetic) Microsoft
//! traces vs Filebench's uniform policy.
//!
//! Prints the cumulative fraction of accesses going to the top-X % of
//! files, for the three trace devices and the uniform distribution.

use crate::{f2, BenchResult, Report, Sink};
use workloads::{cdf_at, ms_trace_weights};

/// Runs the harness. `scale` is unused: the figure is a property of the
/// access distributions, not of the simulated device.
pub fn run(_scale: u64, sink: &mut Sink) -> BenchResult<()> {
    let n = 50_000;
    let fractions = [0.01, 0.02, 0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 1.0];
    let mut report = Report::new(
        "fig1_distributions",
        &[
            "top_frac_of_files",
            "dev0",
            "dev1",
            "dev2",
            "filebench_uniform",
        ],
    );
    report.print_header(sink);
    let devs: Vec<Vec<f64>> = (0..3).map(|d| ms_trace_weights(n, d)).collect();
    let uniform = vec![1.0; n];
    for &f in &fractions {
        report.row(
            sink,
            &[
                f2(f),
                f2(cdf_at(&devs[0], f)),
                f2(cdf_at(&devs[1], f)),
                f2(cdf_at(&devs[2], f)),
                f2(cdf_at(&uniform, f)),
            ],
        );
    }
    report.save(sink)?;
    sink.line(
        "\nPaper shape: the trace devices are highly skewed (most accesses \
         hit a small fraction of files); Filebench's uniform policy is the \
         diagonal.",
    );
    Ok(())
}
