//! §6.4 memory overhead: item descriptor and bitmap footprint.
//!
//! The paper reports, for N = 16 sessions: 32-byte descriptors, a
//! worst-case descriptor bound of 2 × the page-cache size (state
//! sessions never drop events because opposites cancel), and bitmaps of
//! 1.47 MB measured vs 1.56 MB worst-case when scrubbing a fully
//! utilized disk with 100 % workload overlap.
//!
//! This harness runs exactly that scrub experiment and reports the
//! measured Duet memory against the worst-case estimates.

use crate::{f2, BenchResult, Report, Sink};
use experiments::{paper_scaled, run_experiment_cached, ProfileCache, TaskKind};
use sim_core::{SimError, PAGE_SIZE};
use workloads::{DistKind, Personality};

/// Runs the harness at 1/`scale` of the paper setup.
pub fn run(scale: u64, sink: &mut Sink) -> BenchResult<()> {
    sink.line(format!(
        "mem_overhead: Duet memory accounting, scale 1/{scale}"
    ));
    let cfg = paper_scaled(
        scale,
        Personality::WebServer,
        DistKind::Uniform,
        1.0,
        0.6,
        vec![TaskKind::Scrub],
        true,
    );
    let data_bytes = cfg.fileset.num_files as u64 * cfg.fileset.mean_file_bytes;
    let r = run_experiment_cached(&cfg, ProfileCache::global())?;
    // Worst-case block-task bitmap: 1 bit per device block.
    let bitmap_worst = cfg.capacity_blocks / 8;
    // Worst-case descriptors: 2 × cache pages × descriptor size (N=16).
    let desc_worst = 2 * cfg.cache_pages as u64 * 40;
    let mut report = Report::new("mem_overhead", &["quantity", "bytes", "relative"]);
    report.print_header(sink);
    report.row(
        sink,
        &[
            "data set".into(),
            data_bytes.to_string(),
            "1.0 of data".into(),
        ],
    );
    report.row(
        sink,
        &[
            "duet peak (measured)".into(),
            r.duet_peak_memory.to_string(),
            format!(
                "{:.4}% of data",
                100.0 * r.duet_peak_memory as f64 / data_bytes as f64
            ),
        ],
    );
    report.row(
        sink,
        &[
            "bitmap worst case (1 bit/block)".into(),
            bitmap_worst.to_string(),
            f2(bitmap_worst as f64 / data_bytes as f64 * 100.0) + "% of data",
        ],
    );
    report.row(
        sink,
        &[
            "descriptor worst case (2x cache)".into(),
            desc_worst.to_string(),
            format!(
                "{:.2}% of cache",
                100.0 * desc_worst as f64 / (cfg.cache_pages as u64 * PAGE_SIZE) as f64
            ),
        ],
    );
    let stats = r
        .duet_stats
        .ok_or(SimError::Unsupported("duet stats missing"))?;
    report.row(
        sink,
        &[
            "peak descriptors (count)".into(),
            stats.peak_descriptors.to_string(),
            format!(
                "{:.2}% of cache pages",
                100.0 * stats.peak_descriptors as f64 / cfg.cache_pages as f64
            ),
        ],
    );
    report.row(
        sink,
        &[
            "events processed".into(),
            stats.events_processed.to_string(),
            String::new(),
        ],
    );
    report.row(
        sink,
        &[
            "events dropped".into(),
            stats.events_dropped.to_string(),
            String::new(),
        ],
    );
    report.save(sink)?;
    sink.line(
        "\nPaper comparison: measured bitmap+descriptor memory stays well \
         below the worst case, and descriptors stay bounded by the cache.",
    );
    Ok(())
}
