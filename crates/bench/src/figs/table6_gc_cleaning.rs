//! Table 6: F2fs segment cleaning time with and without Duet, under
//! the fileserver workload at 40–70 % device utilization.
//!
//! Expected shape (§6.2): baseline cleaning time is roughly flat
//! (~17 ms in the paper); Duet cleaning gets *faster* as utilization
//! grows, because more of the victim segments' valid blocks are cached
//! and need no synchronous read.

use crate::trace::{self, TraceAgg};
use crate::{f2, pool, BenchResult, Report, Sink};
use experiments::{run_gc_experiment_traced, GcExperimentConfig};
use sim_core::SimDuration;
use sim_disk::SchedulerPolicy;
use sim_f2fs::VictimPolicy;
use workloads::{DistKind, FileSetConfig, Personality, WorkloadConfig};

fn gc_cfg(scale: u64, util: f64, duet: bool) -> GcExperimentConfig {
    // Paper setup scaled: 2 MiB segments (512 blocks); data ≈ 60 % of
    // the device so cleaning pressure is real.
    let seg_blocks = 512u64;
    let nsegs = ((48u64 << 30) / scale / (seg_blocks * sim_core::PAGE_SIZE)).max(64) as u32;
    let data_bytes = (24u64 << 30) / scale;
    let num_files = (data_bytes / (256 * 1024)).max(16) as usize;
    GcExperimentConfig {
        nsegs,
        seg_blocks,
        cache_pages: (((2u64 << 30) / scale) / sim_core::PAGE_SIZE).max(512) as usize,
        fileset: FileSetConfig {
            num_files,
            mean_file_bytes: 256 * 1024,
            sigma: 0.4,
        },
        workload: WorkloadConfig {
            personality: Personality::FileServer,
            dist: DistKind::Uniform,
            coverage: 1.0,
            target_util: util,
            burst: 8,
            append_bytes: 16 * 1024,
            seed: 11,
        },
        duet,
        victim_policy: VictimPolicy::Greedy,
        gc_window: 4096.min(nsegs),
        gc_interval: SimDuration::from_millis(200),
        policy: SchedulerPolicy::default_cfq(),
        duration: SimDuration::from_secs((30 * 60) / scale),
        seed: 11,
    }
}

/// Runs the harness at 1/`scale` of the paper setup.
pub fn run(scale: u64, sink: &mut Sink) -> BenchResult<()> {
    sink.line(format!(
        "table6: F2fs segment cleaning time, fileserver, scale 1/{scale}"
    ));
    let mut report = Report::new(
        "table6_gc_cleaning",
        &[
            "utilization",
            "baseline_ms",
            "baseline_cleanings",
            "duet_ms",
            "duet_cleanings",
            "duet_mean_cached",
        ],
    );
    report.print_header(sink);
    let utils = [0.4, 0.5, 0.6, 0.7];
    let cells: Vec<(f64, bool)> = utils
        .iter()
        .flat_map(|&u| [false, true].into_iter().map(move |d| (u, d)))
        .collect();
    let traced = trace::enabled();
    let ran = pool::try_run_indexed(cells.len(), pool::jobs(), |i| {
        let (util, duet) = cells[i];
        let handle = trace::cell(traced);
        let r = run_gc_experiment_traced(&gc_cfg(scale, util, duet), handle.as_ref())?;
        sim_core::SimResult::Ok((r, trace::harvest(handle)))
    })?;
    let mut traces = TraceAgg::new(traced);
    let runs: Vec<_> = ran
        .into_iter()
        .map(|(r, counters)| {
            traces.merge(counters);
            r
        })
        .collect();
    for (&util, pair) in utils.iter().zip(runs.chunks(2)) {
        let (base, duet) = (&pair[0], &pair[1]);
        report.row(
            sink,
            &[
                f2(util),
                f2(base.mean_cleaning_ms),
                base.cleanings.to_string(),
                f2(duet.mean_cleaning_ms),
                duet.cleanings.to_string(),
                f2(duet.mean_cached),
            ],
        );
    }
    report.save(sink)?;
    traces.save("table6_gc_cleaning", sink)?;
    Ok(())
}
