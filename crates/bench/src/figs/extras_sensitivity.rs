//! §6.5 sensitivity checks and the §6.1.3 latency-impact measurement:
//!
//! 1. **Workload latency impact**: webserver mean op latency at 50 %
//!    utilization without maintenance vs with scrubbing or backup at
//!    idle priority (the paper: 11.67 ms vs 11.60/11.82 — insignificant).
//! 2. **I/O prioritization**: CFQ idle class vs a no-priority Deadline
//!    scheduler — without prioritization the workload slows and I/O
//!    saved drops.
//! 3. **Page cache size**: varying the cache : data ratio has only a
//!    marginal effect on savings (out-of-order processing, not cache
//!    locality, provides most of the benefit).

use crate::{f2, pct, pool, BenchResult, Report, Sink};
use experiments::{paper_scaled, run_experiment_cached, ProfileCache, TaskKind};
use sim_disk::SchedulerPolicy;
use workloads::{DistKind, Personality};

/// Runs the harness at 1/`scale` of the paper setup.
pub fn run(scale: u64, sink: &mut Sink) -> BenchResult<()> {
    sink.line(format!("extras: §6.5 sensitivity, scale 1/{scale}"));
    let profiles = ProfileCache::global();

    // 1. Workload latency impact at 50 % utilization: the paper reports
    //    11.67 ± 0.12 ms without maintenance, 11.60 ± 0.25 ms with
    //    scrubbing, 11.82 ± 0.16 ms with backup — i.e. insignificant.
    let mut lat = Report::new(
        "extras_latency_impact",
        &[
            "setup",
            "latency_ms",
            "ci95_ms",
            "workload_ops",
            "achieved_util",
        ],
    );
    lat.print_header(sink);
    let setups: [(&str, &[TaskKind]); 3] = [
        ("no maintenance", &[]),
        ("with scrub", &[TaskKind::Scrub]),
        ("with backup", &[TaskKind::Backup]),
    ];
    let lat_runs = pool::try_run_indexed(setups.len(), pool::jobs(), |i| {
        let cfg = paper_scaled(
            scale,
            Personality::WebServer,
            DistKind::Uniform,
            1.0,
            0.5,
            setups[i].1.to_vec(),
            true,
        );
        run_experiment_cached(&cfg, profiles)
    })?;
    for ((label, _), r) in setups.iter().zip(&lat_runs) {
        lat.row(
            sink,
            &[
                (*label).into(),
                f2(r.workload_latency_ms.0),
                f2(r.workload_latency_ms.1),
                r.workload_ops.to_string(),
                f2(r.achieved_util),
            ],
        );
    }
    lat.save(sink)?;

    // 2. Prioritization ablation.
    let mut prio = Report::new(
        "extras_prioritization",
        &["scheduler", "io_saved", "work_completed", "workload_ops"],
    );
    prio.print_header(sink);
    let policies = [
        ("cfq-idle", SchedulerPolicy::default_cfq()),
        ("deadline (no priority)", SchedulerPolicy::NoPriority),
    ];
    let prio_runs = pool::try_run_indexed(policies.len(), pool::jobs(), |i| {
        let mut cfg = paper_scaled(
            scale,
            Personality::WebServer,
            DistKind::Uniform,
            1.0,
            0.6,
            vec![TaskKind::Scrub],
            true,
        );
        cfg.policy = policies[i].1;
        run_experiment_cached(&cfg, profiles)
    })?;
    for ((label, _), r) in policies.iter().zip(&prio_runs) {
        prio.row(
            sink,
            &[
                (*label).into(),
                pct(r.io_saved()),
                pct(r.work_completed()),
                r.workload_ops.to_string(),
            ],
        );
    }
    prio.save(sink)?;

    // 3. Page-cache size sweep.
    let mut cache = Report::new(
        "extras_cache_size",
        &["cache_fraction_of_data", "io_saved", "work_completed"],
    );
    cache.print_header(sink);
    let fracs = [0.01, 0.02, 0.04, 0.08, 0.16];
    let cache_runs = pool::try_run_indexed(fracs.len(), pool::jobs(), |i| {
        let mut cfg = paper_scaled(
            scale,
            Personality::WebServer,
            DistKind::Uniform,
            1.0,
            0.5,
            vec![TaskKind::Scrub, TaskKind::Backup],
            true,
        );
        let data_bytes = cfg.fileset.num_files as u64 * cfg.fileset.mean_file_bytes;
        cfg.cache_pages =
            ((data_bytes as f64 * fracs[i]) as u64 / sim_core::PAGE_SIZE).max(256) as usize;
        run_experiment_cached(&cfg, profiles)
    })?;
    for (&frac, r) in fracs.iter().zip(&cache_runs) {
        cache.row(
            sink,
            &[f2(frac), pct(r.io_saved()), pct(r.work_completed())],
        );
    }
    cache.save(sink)?;
    sink.line(
        "\nPaper shape: latency/throughput impact of idle-priority \
         maintenance is small; removing prioritization hurts savings; \
         cache size has a marginal effect.",
    );
    Ok(())
}
