//! §6.2's segment-pressure claim: "Reducing the segment cleaning time
//! is crucial when the file system is running out of clean segments. In
//! that case, F2fs transitions to overwriting invalid blocks in
//! scattered segments [SSR]. When that happens, we have measured a 57 %
//! increase in filebench latency, and 29 % increase in device
//! utilization."
//!
//! We run the fileserver workload on two filesystems at the same
//! operation rate: one with plenty of clean segments, and one sized so
//! tightly that logging exhausts the free segments and writes fall back
//! to SSR (no cleaner runs in either case). SSR turns the sequential
//! log into scattered writes, inflating latency and device busy time.

use crate::{f2, pool, BenchResult, Report, Sink};
use experiments::{run_gc_experiment, GcExperimentConfig};
use sim_core::SimDuration;
use sim_disk::SchedulerPolicy;
use sim_f2fs::VictimPolicy;
use workloads::{DistKind, FileSetConfig, Personality, WorkloadConfig};

fn cfg(nsegs: u32, data_files: usize) -> GcExperimentConfig {
    GcExperimentConfig {
        nsegs,
        seg_blocks: 512,
        cache_pages: 4096,
        fileset: FileSetConfig {
            num_files: data_files,
            mean_file_bytes: 256 * 1024,
            sigma: 0.3,
        },
        workload: WorkloadConfig {
            personality: Personality::FileServer,
            dist: DistKind::Uniform,
            coverage: 1.0,
            target_util: 0.5,
            burst: 8,
            append_bytes: 16 * 1024,
            seed: 21,
        },
        duet: false,
        victim_policy: VictimPolicy::Greedy,
        gc_window: 1,
        // Effectively disable cleaning so SSR pressure builds.
        gc_interval: SimDuration::from_secs(10_000),
        policy: SchedulerPolicy::default_cfq(),
        duration: SimDuration::from_secs(30),
        seed: 21,
    }
}

/// Runs the harness. `scale` is unused: the segment counts are absolute
/// (the tight/roomy contrast is the experiment).
pub fn run(_scale: u64, sink: &mut Sink) -> BenchResult<()> {
    sink.line("extras_f2fs_ssr: fileserver latency with and without clean segments");
    let mut report = Report::new(
        "extras_f2fs_ssr",
        &[
            "setup",
            "latency_ms",
            "ci95_ms",
            "achieved_util",
            "workload_ops",
            "ended_in_ssr",
        ],
    );
    report.print_header(sink);
    // Roomy: data fills ~25 % of the device. Tight: data fills ~85 %;
    // COW logging exhausts the free segments within the window.
    let setups = [(1024u32, 512usize), (160, 512)];
    let runs = pool::try_run_indexed(setups.len(), pool::jobs(), |i| {
        let (nsegs, files) = setups[i];
        run_gc_experiment(&cfg(nsegs, files))
    })?;
    let (roomy, tight) = (&runs[0], &runs[1]);
    for (label, r) in [("roomy (log appends)", roomy), ("tight (SSR)", tight)] {
        report.row(
            sink,
            &[
                label.into(),
                f2(r.workload_latency_ms.0),
                f2(r.workload_latency_ms.1),
                f2(r.achieved_util),
                r.workload_ops.to_string(),
                r.ended_in_ssr.to_string(),
            ],
        );
    }
    report.save(sink)?;
    let inc = 100.0 * (tight.workload_latency_ms.0 / roomy.workload_latency_ms.0 - 1.0);
    let ops_drop = 100.0 * (1.0 - tight.workload_ops as f64 / roomy.workload_ops as f64);
    sink.line(format!(
        "\nlatency increase under SSR: {inc:.0}%  (paper: 57%).\n\
         The paper also reports +29% device utilization at a fixed op\n\
         rate; our throttle instead holds utilization fixed, so the same\n\
         cost appears as {ops_drop:.0}% fewer operations in the window."
    ));
    Ok(())
}
