//! Ablations of design choices called out in DESIGN.md:
//!
//! 1. **GC victim policy**: greedy vs cost-benefit, baseline vs Duet —
//!    does the `valid − cached/2` adjustment help both policies?
//! 2. **CFQ idle grace period**: maintenance throughput vs workload
//!    interference as the grace window grows.
//! 3. **Opportunistic processing vs cache locality** (§6.5's closing
//!    observation): Duet with a tiny cache still saves most of its I/O,
//!    showing the benefit comes from reordering, not from caching.

use crate::{f2, pct, pool, BenchResult, Report, Sink};
use experiments::{
    paper_scaled, run_experiment_cached, run_gc_experiment, GcExperimentConfig, ProfileCache,
    TaskKind,
};
use sim_core::{SimDuration, SimResult};
use sim_disk::SchedulerPolicy;
use sim_f2fs::VictimPolicy;
use workloads::{DistKind, FileSetConfig, Personality, WorkloadConfig};

/// Runs the harness at 1/`scale` of the paper setup.
pub fn run(scale: u64, sink: &mut Sink) -> BenchResult<()> {
    let profiles = ProfileCache::global();

    // 1. Victim policy ablation.
    let mut gc = Report::new(
        "ablation_gc_policy",
        &["policy", "mode", "mean_cleaning_ms", "cleanings"],
    );
    gc.print_header(sink);
    let gc_cells: Vec<(VictimPolicy, bool)> = [VictimPolicy::Greedy, VictimPolicy::CostBenefit]
        .into_iter()
        .flat_map(|p| [false, true].into_iter().map(move |d| (p, d)))
        .collect();
    let gc_runs = pool::try_run_indexed(gc_cells.len(), pool::jobs(), |i| {
        let (policy, duet) = gc_cells[i];
        let cfg = GcExperimentConfig {
            nsegs: 512,
            seg_blocks: 512,
            cache_pages: 8192,
            fileset: FileSetConfig {
                num_files: 512,
                mean_file_bytes: 256 * 1024,
                sigma: 0.4,
            },
            workload: WorkloadConfig {
                personality: Personality::FileServer,
                dist: DistKind::Uniform,
                coverage: 1.0,
                target_util: 0.6,
                burst: 8,
                append_bytes: 16 * 1024,
                seed: 11,
            },
            duet,
            victim_policy: policy,
            gc_window: 512,
            gc_interval: SimDuration::from_millis(200),
            policy: SchedulerPolicy::default_cfq(),
            duration: SimDuration::from_secs(30),
            seed: 11,
        };
        run_gc_experiment(&cfg)
    })?;
    for (&(policy, duet), r) in gc_cells.iter().zip(&gc_runs) {
        gc.row(
            sink,
            &[
                format!("{policy:?}"),
                if duet { "duet" } else { "baseline" }.into(),
                f2(r.mean_cleaning_ms),
                r.cleanings.to_string(),
            ],
        );
    }
    gc.save(sink)?;

    // 2. Grace-period sensitivity.
    let mut grace = Report::new(
        "ablation_grace_period",
        &["grace_ms", "work_completed", "io_saved", "workload_ops"],
    );
    grace.print_header(sink);
    let graces = [1u64, 4, 8, 16, 32];
    let grace_runs = pool::try_run_indexed(graces.len(), pool::jobs(), |i| {
        let mut cfg = paper_scaled(
            scale,
            Personality::WebServer,
            DistKind::Uniform,
            1.0,
            0.5,
            vec![TaskKind::Scrub, TaskKind::Backup],
            true,
        );
        cfg.policy = SchedulerPolicy::CfqIdle {
            grace: SimDuration::from_millis(graces[i]),
        };
        run_experiment_cached(&cfg, profiles)
    })?;
    for (&grace_ms, r) in graces.iter().zip(&grace_runs) {
        grace.row(
            sink,
            &[
                grace_ms.to_string(),
                pct(r.work_completed()),
                pct(r.io_saved()),
                r.workload_ops.to_string(),
            ],
        );
    }
    grace.save(sink)?;

    // 3. Reordering vs cache locality: shrink the cache drastically.
    let mut cache = Report::new(
        "ablation_tiny_cache",
        &["cache_pages", "io_saved", "work_completed"],
    );
    cache.print_header(sink);
    let divisors = [1u64, 4, 16, 64];
    let cache_runs = pool::try_run_indexed(divisors.len(), pool::jobs(), |i| -> SimResult<_> {
        let mut cfg = paper_scaled(
            scale,
            Personality::WebServer,
            DistKind::Uniform,
            1.0,
            0.5,
            vec![TaskKind::Scrub],
            true,
        );
        cfg.cache_pages = (cfg.cache_pages as u64 / divisors[i]).max(128) as usize;
        Ok((cfg.cache_pages, run_experiment_cached(&cfg, profiles)?))
    })?;
    for (cache_pages, r) in &cache_runs {
        cache.row(
            sink,
            &[
                cache_pages.to_string(),
                pct(r.io_saved()),
                pct(r.work_completed()),
            ],
        );
    }
    cache.save(sink)?;

    // 4. Informed cache replacement (the paper's §2 future-work note,
    //    implemented here as an extension): protect pages with
    //    unconsumed hints from eviction. With the default 20 ms fetch
    //    cadence hints are consumed long before eviction and protection
    //    is moot; the effect appears when tasks poll rarely, so the
    //    ablation sweeps the poll period.
    let mut informed = Report::new(
        "ablation_informed_replacement",
        &["poll_period_ms", "io_saved_plain", "io_saved_informed"],
    );
    informed.print_header(sink);
    let polls = [20u64, 200, 1000];
    let informed_cells: Vec<(u64, bool)> = polls
        .iter()
        .flat_map(|&p| [false, true].into_iter().map(move |inf| (p, inf)))
        .collect();
    let informed_runs =
        pool::try_run_indexed(informed_cells.len(), pool::jobs(), |i| -> SimResult<f64> {
            let (poll_ms, inf) = informed_cells[i];
            let mut cfg = paper_scaled(
                scale,
                Personality::WebServer,
                DistKind::Uniform,
                1.0,
                0.6,
                vec![TaskKind::Backup],
                true,
            );
            cfg.poll_period = SimDuration::from_millis(poll_ms);
            cfg.informed_replacement = inf;
            Ok(run_experiment_cached(&cfg, profiles)?.io_saved())
        })?;
    for (&poll_ms, pair) in polls.iter().zip(informed_runs.chunks(2)) {
        informed.row(sink, &[poll_ms.to_string(), pct(pair[0]), pct(pair[1])]);
    }
    informed.save(sink)?;

    // 5. Hint granularity: page-level hints (Duet) vs degraded
    //    file-level hints (what an inotify-based task could build,
    //    §3.3). Page granularity enables prioritizing by resident
    //    fraction.
    let mut gran = Report::new(
        "ablation_hint_granularity",
        &["utilization", "saved_page_hints", "saved_file_hints"],
    );
    gran.print_header(sink);
    // A fully fragmented filesystem at high utilization: the defrag
    // cannot finish, so the *order* in which queued files are taken
    // decides how much resident data it exploits.
    let utils = [0.7, 0.8, 0.9];
    let gran_cells: Vec<(f64, bool)> = utils
        .iter()
        .flat_map(|&u| [false, true].into_iter().map(move |g| (u, g)))
        .collect();
    let gran_runs = pool::try_run_indexed(gran_cells.len(), pool::jobs(), |i| -> SimResult<f64> {
        let (util, file_gran) = gran_cells[i];
        let mut cfg = paper_scaled(
            scale,
            Personality::WebServer,
            DistKind::Uniform,
            1.0,
            util,
            vec![TaskKind::Defrag],
            true,
        );
        cfg.fragmentation = Some((1.0, 8));
        cfg.defrag_file_granularity = file_gran;
        Ok(run_experiment_cached(&cfg, profiles)?.io_saved())
    })?;
    for (&util, pair) in utils.iter().zip(gran_runs.chunks(2)) {
        gran.row(sink, &[f2(util), pct(pair[0]), pct(pair[1])]);
    }
    gran.save(sink)?;
    sink.line(
        "\nExpected: the cached-block cost adjustment helps under both victim\n\
         policies; larger grace periods trade maintenance throughput for\n\
         workload isolation; savings survive even tiny caches (reordering,\n\
         not locality, is what pays — §6.5); page-level hints beat\n\
         file-level hints once the task cannot process everything.\n\
         Informed replacement (bounded to a quarter of the cache so it\n\
         cannot degenerate into pinning) shows no measurable gain — the\n\
         pending-hint population outnumbers any safe protection budget,\n\
         which is consistent with the paper's reliance on prompt polling\n\
         instead of pinning (§3.1).",
    );
    Ok(())
}
