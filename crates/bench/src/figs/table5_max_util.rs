//! Table 5: maximum utilization at which each Btrfs maintenance task
//! still completes within the window, baseline vs Duet, across the
//! paper's workload grid.
//!
//! Rows: webserver at 25/50/75/100 % overlap (uniform) and 100 % with
//! the MS-trace distribution; webproxy and fileserver at 100 % overlap,
//! uniform and MS-trace. Columns: scrubbing, backup, defragmentation —
//! baseline and Duet.
//!
//! Each of the 54 cells is an independent bisection (a dozen or so
//! experiment runs), so the cells — not the inner runs — are the unit
//! of parallelism. All cells share one [`ProfileCache`]: the workload
//! profile depends only on the (personality, distribution) shape, so 5
//! calibration runs serve the whole table.

use crate::trace::{self, TraceAgg};
use crate::{pct, pool, BenchResult, Report, Sink};
use experiments::{
    max_utilization, paper_scaled, run_completion_probe_cached, ProfileCache, TaskKind,
};
use sim_core::SimResult;
use workloads::{DistKind, Personality};

type CellSpec = (Personality, DistKind, f64, TaskKind, bool);

fn cell(
    scale: u64,
    spec: CellSpec,
    profiles: &ProfileCache,
    traced: bool,
) -> SimResult<(String, Vec<(String, u64)>)> {
    let (personality, dist, overlap, task, duet) = spec;
    // One handle per cell: the bisection's inner runs accumulate into
    // the same counters.
    let handle = trace::cell(traced);
    let completes = |util: f64| -> SimResult<bool> {
        let mut cfg = paper_scaled(scale, personality, dist, overlap, util, vec![task], duet);
        if task == TaskKind::Defrag {
            cfg.fragmentation = Some((0.1, 5));
        }
        // The completion probe stops simulating the moment the last
        // task finishes — the bit it returns is exactly what the full
        // run's `all_completed()` would be, for a fraction of the wall
        // time. Forked setup prefixes (experiments::snapshot) make the
        // bisection's repeat builds nearly free on top of that.
        run_completion_probe_cached(&cfg, profiles, handle.as_ref())
    };
    let label = match max_utilization(completes)? {
        Some(u) => pct(u),
        None => "never".into(),
    };
    Ok((label, trace::harvest(handle)))
}

/// Runs the harness at 1/`scale` of the paper setup.
pub fn run(scale: u64, sink: &mut Sink) -> BenchResult<()> {
    sink.line(format!(
        "table5: maximum utilization, scale 1/{scale} (this sweep runs many experiments)"
    ));
    let rows: Vec<(&str, Personality, f64, DistKind)> = vec![
        (
            "webserver 25% uniform",
            Personality::WebServer,
            0.25,
            DistKind::Uniform,
        ),
        (
            "webserver 50% uniform",
            Personality::WebServer,
            0.50,
            DistKind::Uniform,
        ),
        (
            "webserver 75% uniform",
            Personality::WebServer,
            0.75,
            DistKind::Uniform,
        ),
        (
            "webserver 100% uniform",
            Personality::WebServer,
            1.0,
            DistKind::Uniform,
        ),
        (
            "webserver 100% mstrace",
            Personality::WebServer,
            1.0,
            DistKind::MsTrace(0),
        ),
        (
            "webproxy 100% uniform",
            Personality::WebProxy,
            1.0,
            DistKind::Uniform,
        ),
        (
            "webproxy 100% mstrace",
            Personality::WebProxy,
            1.0,
            DistKind::MsTrace(0),
        ),
        (
            "fileserver 100% uniform",
            Personality::FileServer,
            1.0,
            DistKind::Uniform,
        ),
        (
            "fileserver 100% mstrace",
            Personality::FileServer,
            1.0,
            DistKind::MsTrace(0),
        ),
    ];
    let mut report = Report::new(
        "table5_max_util",
        &[
            "workload",
            "scrub_base",
            "scrub_duet",
            "backup_base",
            "backup_duet",
            "defrag_base",
            "defrag_duet",
        ],
    );
    report.print_header(sink);
    let tasks = [TaskKind::Scrub, TaskKind::Backup, TaskKind::Defrag];
    let cells: Vec<CellSpec> = rows
        .iter()
        .flat_map(|&(_, personality, overlap, dist)| {
            tasks.iter().flat_map(move |&task| {
                [false, true]
                    .into_iter()
                    .map(move |duet| (personality, dist, overlap, task, duet))
            })
        })
        .collect();
    let profiles = ProfileCache::global();
    let traced = trace::enabled();
    let ran = pool::try_run_indexed(cells.len(), pool::jobs(), |i| {
        cell(scale, cells[i], profiles, traced)
    })?;
    let mut traces = TraceAgg::new(traced);
    let values: Vec<String> = ran
        .into_iter()
        .map(|(label, counters)| {
            traces.merge(counters);
            label
        })
        .collect();
    let per_row = tasks.len() * 2;
    for ((label, ..), vals) in rows.iter().zip(values.chunks(per_row)) {
        let mut row = vec![label.to_string()];
        row.extend(vals.iter().cloned());
        report.row(sink, &row);
    }
    report.save(sink)?;
    traces.save("table5_max_util", sink)?;
    Ok(())
}
