//! Figure 3: I/O saved when the backup task runs together with the
//! webserver workload, across utilization and overlap.
//!
//! Expected shape (§6.2): like Figure 2, but the plateau is reached at
//! *lower* utilization — backup is random-I/O bound and takes longer,
//! giving the workload more time to touch shared data.

use crate::sweeps::saved_sweep;
use crate::{BenchResult, Sink};
use experiments::{DeviceKind, TaskKind};
use workloads::{DistKind, Personality};

/// Runs the harness at 1/`scale` of the paper setup.
pub fn run(scale: u64, sink: &mut Sink) -> BenchResult<()> {
    sink.line(format!(
        "fig3: backup + webserver, scale 1/{scale} of the paper setup"
    ));
    let report = saved_sweep(
        "fig3_backup_saved",
        scale,
        DeviceKind::Hdd,
        Personality::WebServer,
        DistKind::Uniform,
        &[0.25, 0.5, 0.75, 1.0],
        &[TaskKind::Backup],
        None,
        sink,
    )?;
    report.save(sink)?;
    Ok(())
}
