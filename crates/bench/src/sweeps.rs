//! Reusable sweep drivers for the figure harnesses.
//!
//! A sweep is a grid of independent experiment cells. The `*_cells`
//! functions run the grid through [`pool::try_run_indexed`] — cells
//! execute on up to `jobs` workers, results come back in grid order, so
//! the rendered report is byte-identical to a sequential run. Each
//! sweep shares one [`ProfileCache`], so the §6.1.2 calibration pass
//! runs once per workload shape instead of once per cell. When
//! `DUET_TRACE` is set, each cell additionally runs with a private
//! trace handle and the sweep saves the merged per-layer counters as
//! `results/<name>_trace.csv` (see [`crate::trace`]).

use crate::pool;
use crate::trace::{self, TraceAgg};
use crate::{f2, BenchResult, Report, Sink};
use experiments::{paper_scaled, run_experiment_cached_traced, DeviceKind, ProfileCache, TaskKind};
use sim_core::SimResult;
use workloads::{DistKind, Personality};

/// Utilization grid of the paper's figures: 0–100 % in 10 % steps.
pub fn util_grid() -> Vec<f64> {
    (0..=10).map(|i| i as f64 / 10.0).collect()
}

/// Runs the `utilization × overlap` grid of a saved-style sweep on up
/// to `jobs` workers, returning `io_saved` per cell as
/// `rows[util][overlap]` — in grid order regardless of worker count.
#[allow(clippy::too_many_arguments)]
pub fn saved_cells(
    scale: u64,
    device: DeviceKind,
    personality: Personality,
    dist: DistKind,
    utils: &[f64],
    overlaps: &[f64],
    tasks: &[TaskKind],
    fragmentation: Option<(f64, u64)>,
    jobs: usize,
) -> SimResult<Vec<Vec<f64>>> {
    Ok(saved_cells_traced(
        scale,
        device,
        personality,
        dist,
        utils,
        overlaps,
        tasks,
        fragmentation,
        jobs,
        false,
    )?
    .0)
}

/// [`saved_cells`] plus the summed `workload_ops` of every cell and the
/// merged trace counters (empty unless `traced`). Both aggregates are
/// folded in cell-index order, so they are byte-identical at any worker
/// count.
#[allow(clippy::too_many_arguments)]
pub fn saved_cells_traced(
    scale: u64,
    device: DeviceKind,
    personality: Personality,
    dist: DistKind,
    utils: &[f64],
    overlaps: &[f64],
    tasks: &[TaskKind],
    fragmentation: Option<(f64, u64)>,
    jobs: usize,
    traced: bool,
) -> SimResult<(Vec<Vec<f64>>, u64, TraceAgg)> {
    let cells: Vec<(f64, f64)> = utils
        .iter()
        .flat_map(|&u| overlaps.iter().map(move |&o| (u, o)))
        .collect();
    let profiles = ProfileCache::global();
    let ran = pool::try_run_indexed(cells.len(), jobs, |i| {
        let (util, overlap) = cells[i];
        let mut cfg = paper_scaled(
            scale,
            personality,
            dist,
            overlap,
            util,
            tasks.to_vec(),
            true,
        );
        cfg.device = device;
        cfg.fragmentation = fragmentation;
        let handle = trace::cell(traced);
        let result = run_experiment_cached_traced(&cfg, profiles, handle.as_ref())?;
        Ok((
            result.io_saved(),
            result.workload_ops,
            trace::harvest(handle),
        ))
    })?;
    let mut agg = TraceAgg::new(traced);
    let mut ops = 0u64;
    let mut saved = Vec::with_capacity(ran.len());
    for (v, cell_ops, counters) in ran {
        saved.push(v);
        ops += cell_ops;
        agg.merge(counters);
    }
    Ok((
        saved
            .chunks(overlaps.len().max(1))
            .map(<[f64]>::to_vec)
            .collect(),
        ops,
        agg,
    ))
}

/// Sweeps `utilization × overlap` and reports the I/O-saved fraction of
/// Duet-enabled `tasks` (the Figure 2/3/5/7/10 shape).
#[allow(clippy::too_many_arguments)]
pub fn saved_sweep(
    name: &'static str,
    scale: u64,
    device: DeviceKind,
    personality: Personality,
    dist: DistKind,
    overlaps: &[f64],
    tasks: &[TaskKind],
    fragmentation: Option<(f64, u64)>,
    sink: &mut Sink,
) -> BenchResult<Report> {
    let mut header: Vec<String> = vec!["utilization".into()];
    for &o in overlaps {
        header.push(format!("saved_overlap_{:.0}%", o * 100.0));
    }
    let hdr_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut report = Report::new(name, &hdr_refs);
    report.print_header(sink);
    let utils = util_grid();
    let (grid, ops, traces) = saved_cells_traced(
        scale,
        device,
        personality,
        dist,
        &utils,
        overlaps,
        tasks,
        fragmentation,
        pool::jobs(),
        trace::enabled(),
    )?;
    sink.add_ops(ops);
    for (util, saved) in utils.iter().zip(grid) {
        let mut row = vec![f2(*util)];
        row.extend(saved.iter().map(|&v| f2(v)));
        report.row(sink, &row);
    }
    traces.save(name, sink)?;
    Ok(report)
}

/// Runs the `utilization × {baseline, duet}` grid of a completed-style
/// sweep on up to `jobs` workers, returning `work_completed` per cell
/// as `rows[util] = [baseline, duet]`.
pub fn completed_cells(
    scale: u64,
    personality: Personality,
    utils: &[f64],
    tasks: &[TaskKind],
    fragmentation: Option<(f64, u64)>,
    jobs: usize,
) -> SimResult<Vec<Vec<f64>>> {
    Ok(completed_cells_traced(scale, personality, utils, tasks, fragmentation, jobs, false)?.0)
}

/// [`completed_cells`] plus the summed `workload_ops` of every cell and
/// the merged trace counters (empty unless `traced`).
pub fn completed_cells_traced(
    scale: u64,
    personality: Personality,
    utils: &[f64],
    tasks: &[TaskKind],
    fragmentation: Option<(f64, u64)>,
    jobs: usize,
    traced: bool,
) -> SimResult<(Vec<Vec<f64>>, u64, TraceAgg)> {
    let cells: Vec<(f64, bool)> = utils
        .iter()
        .flat_map(|&u| [false, true].into_iter().map(move |d| (u, d)))
        .collect();
    let profiles = ProfileCache::global();
    let ran = pool::try_run_indexed(cells.len(), jobs, |i| {
        let (util, duet) = cells[i];
        let mut cfg = paper_scaled(
            scale,
            personality,
            DistKind::Uniform,
            1.0,
            util,
            tasks.to_vec(),
            duet,
        );
        cfg.fragmentation = fragmentation;
        let handle = trace::cell(traced);
        let result = run_experiment_cached_traced(&cfg, profiles, handle.as_ref())?;
        Ok((
            result.work_completed(),
            result.workload_ops,
            trace::harvest(handle),
        ))
    })?;
    let mut agg = TraceAgg::new(traced);
    let mut ops = 0u64;
    let mut completed = Vec::with_capacity(ran.len());
    for (v, cell_ops, counters) in ran {
        completed.push(v);
        ops += cell_ops;
        agg.merge(counters);
    }
    Ok((completed.chunks(2).map(<[f64]>::to_vec).collect(), ops, agg))
}

/// Sweeps utilization and reports the work-completed fraction for
/// baseline and Duet modes (the Figure 6/8 shape).
pub fn completed_sweep(
    name: &'static str,
    scale: u64,
    personality: Personality,
    tasks: &[TaskKind],
    fragmentation: Option<(f64, u64)>,
    sink: &mut Sink,
) -> BenchResult<Report> {
    let mut report = Report::new(
        name,
        &["utilization", "baseline_completed", "duet_completed"],
    );
    report.print_header(sink);
    let utils = util_grid();
    let (grid, ops, traces) = completed_cells_traced(
        scale,
        personality,
        &utils,
        tasks,
        fragmentation,
        pool::jobs(),
        trace::enabled(),
    )?;
    sink.add_ops(ops);
    for (util, done) in utils.iter().zip(grid) {
        let mut row = vec![f2(*util)];
        row.extend(done.iter().map(|&v| f2(v)));
        report.row(sink, &row);
    }
    traces.save(name, sink)?;
    Ok(report)
}
