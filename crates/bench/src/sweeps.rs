//! Reusable sweep drivers for the figure harnesses.
//!
//! A sweep is a grid of independent experiment cells. The `*_cells`
//! functions run the grid through [`pool::try_run_indexed`] — cells
//! execute on up to `jobs` workers, results come back in grid order, so
//! the rendered report is byte-identical to a sequential run. Each
//! sweep shares one [`ProfileCache`], so the §6.1.2 calibration pass
//! runs once per workload shape instead of once per cell.

use crate::pool;
use crate::{f2, BenchResult, Report, Sink};
use experiments::{paper_scaled, run_experiment_cached, DeviceKind, ProfileCache, TaskKind};
use sim_core::SimResult;
use workloads::{DistKind, Personality};

/// Utilization grid of the paper's figures: 0–100 % in 10 % steps.
pub fn util_grid() -> Vec<f64> {
    (0..=10).map(|i| i as f64 / 10.0).collect()
}

/// Runs the `utilization × overlap` grid of a saved-style sweep on up
/// to `jobs` workers, returning `io_saved` per cell as
/// `rows[util][overlap]` — in grid order regardless of worker count.
#[allow(clippy::too_many_arguments)]
pub fn saved_cells(
    scale: u64,
    device: DeviceKind,
    personality: Personality,
    dist: DistKind,
    utils: &[f64],
    overlaps: &[f64],
    tasks: &[TaskKind],
    fragmentation: Option<(f64, u64)>,
    jobs: usize,
) -> SimResult<Vec<Vec<f64>>> {
    let cells: Vec<(f64, f64)> = utils
        .iter()
        .flat_map(|&u| overlaps.iter().map(move |&o| (u, o)))
        .collect();
    let profiles = ProfileCache::new();
    let saved = pool::try_run_indexed(cells.len(), jobs, |i| {
        let (util, overlap) = cells[i];
        let mut cfg = paper_scaled(
            scale,
            personality,
            dist,
            overlap,
            util,
            tasks.to_vec(),
            true,
        );
        cfg.device = device;
        cfg.fragmentation = fragmentation;
        Ok(run_experiment_cached(&cfg, &profiles)?.io_saved())
    })?;
    Ok(saved
        .chunks(overlaps.len().max(1))
        .map(<[f64]>::to_vec)
        .collect())
}

/// Sweeps `utilization × overlap` and reports the I/O-saved fraction of
/// Duet-enabled `tasks` (the Figure 2/3/5/7/10 shape).
#[allow(clippy::too_many_arguments)]
pub fn saved_sweep(
    name: &'static str,
    scale: u64,
    device: DeviceKind,
    personality: Personality,
    dist: DistKind,
    overlaps: &[f64],
    tasks: &[TaskKind],
    fragmentation: Option<(f64, u64)>,
    sink: &mut Sink,
) -> BenchResult<Report> {
    let mut header: Vec<String> = vec!["utilization".into()];
    for &o in overlaps {
        header.push(format!("saved_overlap_{:.0}%", o * 100.0));
    }
    let hdr_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut report = Report::new(name, &hdr_refs);
    report.print_header(sink);
    let utils = util_grid();
    let grid = saved_cells(
        scale,
        device,
        personality,
        dist,
        &utils,
        overlaps,
        tasks,
        fragmentation,
        pool::jobs(),
    )?;
    for (util, saved) in utils.iter().zip(grid) {
        let mut row = vec![f2(*util)];
        row.extend(saved.iter().map(|&v| f2(v)));
        report.row(sink, &row);
    }
    Ok(report)
}

/// Runs the `utilization × {baseline, duet}` grid of a completed-style
/// sweep on up to `jobs` workers, returning `work_completed` per cell
/// as `rows[util] = [baseline, duet]`.
pub fn completed_cells(
    scale: u64,
    personality: Personality,
    utils: &[f64],
    tasks: &[TaskKind],
    fragmentation: Option<(f64, u64)>,
    jobs: usize,
) -> SimResult<Vec<Vec<f64>>> {
    let cells: Vec<(f64, bool)> = utils
        .iter()
        .flat_map(|&u| [false, true].into_iter().map(move |d| (u, d)))
        .collect();
    let profiles = ProfileCache::new();
    let completed = pool::try_run_indexed(cells.len(), jobs, |i| {
        let (util, duet) = cells[i];
        let mut cfg = paper_scaled(
            scale,
            personality,
            DistKind::Uniform,
            1.0,
            util,
            tasks.to_vec(),
            duet,
        );
        cfg.fragmentation = fragmentation;
        Ok(run_experiment_cached(&cfg, &profiles)?.work_completed())
    })?;
    Ok(completed.chunks(2).map(<[f64]>::to_vec).collect())
}

/// Sweeps utilization and reports the work-completed fraction for
/// baseline and Duet modes (the Figure 6/8 shape).
pub fn completed_sweep(
    name: &'static str,
    scale: u64,
    personality: Personality,
    tasks: &[TaskKind],
    fragmentation: Option<(f64, u64)>,
    sink: &mut Sink,
) -> BenchResult<Report> {
    let mut report = Report::new(
        name,
        &["utilization", "baseline_completed", "duet_completed"],
    );
    report.print_header(sink);
    let utils = util_grid();
    let grid = completed_cells(
        scale,
        personality,
        &utils,
        tasks,
        fragmentation,
        pool::jobs(),
    )?;
    for (util, done) in utils.iter().zip(grid) {
        let mut row = vec![f2(*util)];
        row.extend(done.iter().map(|&v| f2(v)));
        report.row(sink, &row);
    }
    Ok(report)
}
