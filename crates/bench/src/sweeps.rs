//! Reusable sweep drivers for the figure harnesses.

use crate::{f2, Report};
use experiments::{paper_scaled, run_experiment, DeviceKind, TaskKind};
use workloads::{DistKind, Personality};

/// Utilization grid of the paper's figures: 0–100 % in 10 % steps.
pub fn util_grid() -> Vec<f64> {
    (0..=10).map(|i| i as f64 / 10.0).collect()
}

/// Sweeps `utilization × overlap` and reports the I/O-saved fraction of
/// Duet-enabled `tasks` (the Figure 2/3/5/7/10 shape).
#[allow(clippy::too_many_arguments)]
pub fn saved_sweep(
    name: &'static str,
    scale: u64,
    device: DeviceKind,
    personality: Personality,
    dist: DistKind,
    overlaps: &[f64],
    tasks: &[TaskKind],
    fragmentation: Option<(f64, u64)>,
) -> Report {
    let mut header: Vec<String> = vec!["utilization".into()];
    for &o in overlaps {
        header.push(format!("saved_overlap_{:.0}%", o * 100.0));
    }
    let hdr_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut report = Report::new(name, &hdr_refs);
    report.print_header();
    for util in util_grid() {
        let mut row = vec![f2(util)];
        for &overlap in overlaps {
            let mut cfg = paper_scaled(
                scale,
                personality,
                dist,
                overlap,
                util,
                tasks.to_vec(),
                true,
            );
            cfg.device = device;
            cfg.fragmentation = fragmentation;
            let r = run_experiment(&cfg).expect("experiment run");
            row.push(f2(r.io_saved()));
        }
        report.row(&row);
    }
    report
}

/// Sweeps utilization and reports the work-completed fraction for
/// baseline and Duet modes (the Figure 6/8 shape).
pub fn completed_sweep(
    name: &'static str,
    scale: u64,
    personality: Personality,
    tasks: &[TaskKind],
    fragmentation: Option<(f64, u64)>,
) -> Report {
    let mut report = Report::new(
        name,
        &["utilization", "baseline_completed", "duet_completed"],
    );
    report.print_header();
    for util in util_grid() {
        let mut row = vec![f2(util)];
        for duet in [false, true] {
            let mut cfg = paper_scaled(
                scale,
                personality,
                DistKind::Uniform,
                1.0,
                util,
                tasks.to_vec(),
                duet,
            );
            cfg.fragmentation = fragmentation;
            let r = run_experiment(&cfg).expect("experiment run");
            row.push(f2(r.work_completed()));
        }
        report.row(&row);
    }
    report
}
