//! A minimal wall-clock benchmark harness.
//!
//! The workspace builds fully offline, so the microbenchmarks cannot
//! depend on criterion. This module provides the small subset the
//! benches need: warmup, repeated timed samples, and a median /
//! throughput report. Wall-clock time is fine here — the harness runs
//! only under `cargo bench`, never inside the simulation (see the D1
//! lint rule).

use std::time::Instant;

/// Number of timed samples per benchmark.
const SAMPLES: usize = 20;
/// Warmup iterations before sampling.
const WARMUP: usize = 3;

/// A wall-clock stopwatch. The single sanctioned gateway to real time:
/// every bench binary measures through this type, so `xtask lint`'s D1
/// waiver for this file covers all wall-clock access in the workspace.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    t0: Instant,
}

impl Stopwatch {
    /// Starts timing now.
    pub fn start() -> Self {
        Stopwatch { t0: Instant::now() }
    }

    /// Nanoseconds since [`Stopwatch::start`].
    pub fn elapsed_ns(&self) -> u128 {
        self.t0.elapsed().as_nanos()
    }
}

/// Times `routine` on a fresh `setup()` value per iteration and prints
/// the per-element cost, criterion-style. `elements` is the work count
/// per iteration (for ns/element and Melem/s reporting).
pub fn bench_batched<S, T, R>(name: &str, elements: u64, mut setup: S, mut routine: R)
where
    S: FnMut() -> T,
    R: FnMut(T) -> T,
{
    for _ in 0..WARMUP {
        let input = setup();
        std::hint::black_box(routine(input));
    }
    let mut samples_ns: Vec<u128> = Vec::with_capacity(SAMPLES);
    for _ in 0..SAMPLES {
        let input = setup();
        let t0 = Stopwatch::start();
        let out = routine(input);
        samples_ns.push(t0.elapsed_ns());
        std::hint::black_box(out);
    }
    report(name, elements, &mut samples_ns);
}

/// Times `routine` alone (no per-iteration setup).
pub fn bench_loop<R, O>(name: &str, elements: u64, mut routine: R)
where
    R: FnMut() -> O,
{
    bench_batched(
        name,
        elements,
        || (),
        |()| {
            std::hint::black_box(routine());
        },
    );
}

fn report(name: &str, elements: u64, samples_ns: &mut [u128]) {
    samples_ns.sort_unstable();
    let median = samples_ns[samples_ns.len() / 2];
    let min = samples_ns[0];
    let max = samples_ns[samples_ns.len() - 1];
    let per_elem = median as f64 / elements.max(1) as f64;
    let melem_s = if median > 0 {
        elements as f64 * 1e3 / median as f64
    } else {
        f64::INFINITY
    };
    println!(
        "{name:<40} median {:>10.1} us  [{:>8.1} .. {:>8.1}]  {per_elem:>8.1} ns/elem  {melem_s:>8.2} Melem/s",
        median as f64 / 1e3,
        min as f64 / 1e3,
        max as f64 / 1e3,
    );
}
