//! A zero-dependency work pool for fanning independent, deterministic
//! experiment cells out across cores.
//!
//! Every sweep cell is a self-contained, single-threaded discrete-event
//! run: it shares no mutable state with its neighbours, takes its
//! entire input from an `ExperimentConfig`, and is bit-reproducible
//! (seeded RNG, virtual time — enforced by the xtask determinism lint
//! and the golden tests). Cell results therefore cannot depend on
//! execution order, and the pool exploits that: workers pull cell
//! indices from a shared cursor, write results into a slot keyed by the
//! index, and the caller receives them in input order. Output is
//! byte-identical at any worker count, including 1 (`try_run_indexed`
//! and `run_indexed` short-circuit to a plain loop when `jobs <= 1`).
//!
//! This is the single sanctioned use of OS threads in the workspace
//! (`lint.allow` carries the D4 waiver for this file only); simulation
//! crates stay thread-free.
//!
//! Nesting note: `repro_all` fans out whole harnesses while each
//! harness fans out its own cells, so up to `jobs²` threads can briefly
//! coexist. Worker threads only pull work and block on the slot mutex,
//! so oversubscription costs scheduling overhead, not correctness; with
//! the default width capped at the core count the OS time-slices them
//! fairly and the wall-clock cost is negligible next to cell runtime.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Worker count: `DUET_JOBS` if set (minimum 1), else the machine's
/// available parallelism, else 1.
pub fn jobs() -> usize {
    if let Some(j) = std::env::var("DUET_JOBS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
    {
        return j.max(1);
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Runs `f(0..n)` on up to `jobs` workers and returns the results in
/// index order. `f` must be pure with respect to index order (every
/// sweep cell is); the output is then identical at any `jobs`.
pub fn run_indexed<T, F>(n: usize, jobs: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let out = try_run_indexed(n, jobs, |i| Ok::<T, Never>(f(i)));
    match out {
        Ok(v) => v,
    }
}

/// An empty error type so `run_indexed` can share the fallible
/// machinery without inventing error values.
enum Never {}

/// Like [`run_indexed`], but `f` is fallible: returns the first error
/// by *index* (not completion) order, after all in-flight work drains —
/// so error reporting is as deterministic as the results.
pub fn try_run_indexed<T, E, F>(n: usize, jobs: usize, f: F) -> Result<Vec<T>, E>
where
    T: Send,
    E: Send,
    F: Fn(usize) -> Result<T, E> + Sync,
{
    let width = jobs.max(1).min(n);
    if width <= 1 {
        return (0..n).map(&f).collect();
    }
    let cursor = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<Result<T, E>>>> = Mutex::new((0..n).map(|_| None).collect());
    std::thread::scope(|s| {
        for _ in 0..width {
            s.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = f(i);
                match slots.lock() {
                    Ok(mut guard) => guard[i] = Some(r),
                    // A sibling panicked while holding the lock; stop
                    // pulling work (the scope will propagate the
                    // original panic).
                    Err(_) => break,
                }
            });
        }
    });
    let collected = match slots.into_inner() {
        Ok(v) => v,
        Err(poisoned) => poisoned.into_inner(),
    };
    let mut out = Vec::with_capacity(n);
    for slot in collected {
        match slot {
            Some(Ok(v)) => out.push(v),
            Some(Err(e)) => return Err(e),
            // Unreachable unless a worker died; treated as missing
            // output, surfaced as a panic by the scope above.
            None => unreachable!("pool worker dropped a slot"),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_arrive_in_index_order_at_any_width() {
        let sequential: Vec<usize> = (0..97).map(|i| i * i).collect();
        for jobs in [1, 2, 4, 9] {
            let parallel = run_indexed(97, jobs, |i| i * i);
            assert_eq!(parallel, sequential, "jobs={jobs}");
        }
    }

    #[test]
    fn empty_and_single_inputs_work() {
        assert_eq!(run_indexed(0, 4, |i| i), Vec::<usize>::new());
        assert_eq!(run_indexed(1, 4, |i| i + 10), vec![10]);
    }

    #[test]
    fn first_error_by_index_order_wins() {
        // Both index 3 and index 7 fail; the reported error must be
        // index 3's regardless of completion order.
        let r: Result<Vec<usize>, String> = try_run_indexed(10, 4, |i| {
            if i == 3 || i == 7 {
                Err(format!("cell {i}"))
            } else {
                Ok(i)
            }
        });
        assert_eq!(r, Err("cell 3".to_string()));
    }

    #[test]
    fn fallible_success_collects_everything() {
        let r: Result<Vec<usize>, String> = try_run_indexed(31, 3, Ok);
        assert_eq!(r, Ok((0..31).collect()));
    }

    #[test]
    fn jobs_env_overrides() {
        // `jobs()` reads the environment; only assert the invariant
        // that holds regardless of the test environment.
        assert!(jobs() >= 1);
    }
}
