//! Shared plumbing for the experiment harness binaries.
//!
//! Every table and figure of the paper's evaluation has a binary in
//! `src/bin/` that regenerates it (see DESIGN.md's experiment index);
//! the body of each harness lives in [`figs`] so `repro_all` can run
//! them all in-process. Binaries print the series/rows to stdout and
//! write a CSV under `results/`. The experiment scale (relative to the
//! paper's 50 GB / 30 min setup) is controlled by the `DUET_SCALE`
//! environment variable; larger values run faster at lower fidelity.
//! `DUET_JOBS` bounds the worker threads used by [`pool`] to fan
//! independent sweep cells out across cores (results are byte-identical
//! at any width; see DESIGN.md §8).

use std::fmt;
use std::fs;
use std::io::Write;
use std::path::PathBuf;
use std::process::ExitCode;

/// Reads the scale factor from `DUET_SCALE`, with a per-harness default.
pub fn scale_from_env(default: u64) -> u64 {
    std::env::var("DUET_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&s| s >= 1)
        .unwrap_or(default)
}

/// Errors a harness can produce.
#[derive(Debug)]
pub enum BenchError {
    /// A simulation/experiment error.
    Sim(sim_core::SimError),
    /// Writing results failed.
    Io(std::io::Error),
    /// `repro_all` was asked for a harness that does not exist.
    UnknownHarness(String),
}

impl fmt::Display for BenchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BenchError::Sim(e) => write!(f, "experiment failed: {e}"),
            BenchError::Io(e) => write!(f, "writing results failed: {e}"),
            BenchError::UnknownHarness(name) => write!(f, "unknown harness: {name}"),
        }
    }
}

impl std::error::Error for BenchError {}

impl From<sim_core::SimError> for BenchError {
    fn from(e: sim_core::SimError) -> Self {
        BenchError::Sim(e)
    }
}

impl From<std::io::Error> for BenchError {
    fn from(e: std::io::Error) -> Self {
        BenchError::Io(e)
    }
}

/// Result alias for harness code.
pub type BenchResult<T> = Result<T, BenchError>;

/// Entry point shared by the harness binaries: reads `DUET_SCALE`
/// (with the harness's default), runs the body against a live console
/// sink, and maps errors to a message on stderr plus a nonzero exit —
/// a failed sweep cell must not abort mid-CSV with a panic.
pub fn run_main(default_scale: u64, run: fn(u64, &mut Sink) -> BenchResult<()>) -> ExitCode {
    let mut sink = Sink::live();
    match run(scale_from_env(default_scale), &mut sink) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Console output sink. Harness binaries write straight to stdout
/// (live); the in-process `repro_all` gives each harness a buffered
/// sink and prints the captured lines in a fixed order afterwards, so
/// parallel harnesses cannot interleave output.
///
/// The sink also carries a simulated-operation counter: sweep drivers
/// call [`Sink::add_ops`] with each cell's `workload_ops`, and
/// `repro_all` reads the per-harness total into
/// `results/BENCH_sweeps.json`. Ops are simulated work — deterministic
/// at every job count — so they give the perf gate a wall-clock-free
/// denominator.
#[derive(Debug)]
pub struct Sink {
    out: SinkOut,
    ops: u64,
}

#[derive(Debug)]
enum SinkOut {
    /// Print lines to stdout immediately.
    Live,
    /// Collect lines for later, ordered printing.
    Buffer(Vec<String>),
}

impl Sink {
    /// A sink that prints immediately.
    pub fn live() -> Sink {
        Sink {
            out: SinkOut::Live,
            ops: 0,
        }
    }

    /// A sink that collects lines.
    pub fn buffer() -> Sink {
        Sink {
            out: SinkOut::Buffer(Vec::new()),
            ops: 0,
        }
    }

    /// Emits one line.
    pub fn line<S: Into<String>>(&mut self, s: S) {
        match &mut self.out {
            SinkOut::Live => println!("{}", s.into()),
            SinkOut::Buffer(lines) => lines.push(s.into()),
        }
    }

    /// The collected lines (empty for a live sink).
    pub fn lines(&self) -> &[String] {
        match &self.out {
            SinkOut::Live => &[],
            SinkOut::Buffer(lines) => lines,
        }
    }

    /// Consumes the sink, returning collected lines.
    pub fn into_lines(self) -> Vec<String> {
        match self.out {
            SinkOut::Live => Vec::new(),
            SinkOut::Buffer(lines) => lines,
        }
    }

    /// Credits `n` simulated operations to this sink's harness.
    pub fn add_ops(&mut self, n: u64) {
        self.ops += n;
    }

    /// Total simulated operations credited so far.
    pub fn ops(&self) -> u64 {
        self.ops
    }
}

/// A simple CSV/console sink for experiment output.
pub struct Report {
    name: &'static str,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Report {
    /// Creates a report with the given column names.
    pub fn new(name: &'static str, header: &[&str]) -> Self {
        Report {
            name,
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Adds a row (and echoes it to the sink).
    ///
    /// # Panics
    ///
    /// Panics if the value count does not match the header.
    pub fn row(&mut self, sink: &mut Sink, values: &[String]) {
        assert_eq!(values.len(), self.header.len(), "column count mismatch");
        sink.line(format!("  {}", values.join("\t")));
        self.rows.push(values.to_vec());
    }

    /// Emits the header line.
    pub fn print_header(&self, sink: &mut Sink) {
        sink.line(format!("== {} ==", self.name));
        sink.line(format!("  {}", self.header.join("\t")));
    }

    /// The collected rows.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Writes the collected rows to `results/<name>.csv`.
    pub fn save(&self, sink: &mut Sink) -> std::io::Result<PathBuf> {
        let dir = PathBuf::from("results");
        fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{}.csv", self.name));
        let mut f = fs::File::create(&path)?;
        writeln!(f, "{}", self.header.join(","))?;
        for r in &self.rows {
            writeln!(f, "{}", r.join(","))?;
        }
        sink.line(format!("[saved {}]", path.display()));
        Ok(path)
    }
}

/// Formats a fraction as a percentage string.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Formats a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_default_applies() {
        // The env var is not set under `cargo test`.
        if std::env::var("DUET_SCALE").is_err() {
            assert_eq!(scale_from_env(32), 32);
        }
    }

    #[test]
    fn report_roundtrip() {
        let mut sink = Sink::buffer();
        let mut r = Report::new("unit_test_report", &["a", "b"]);
        r.print_header(&mut sink);
        r.row(&mut sink, &["1".into(), "2".into()]);
        assert_eq!(r.rows().len(), 1);
        assert_eq!(
            sink.lines(),
            [
                "== unit_test_report ==".to_string(),
                "  a\tb".to_string(),
                "  1\t2".to_string(),
            ]
        );
        assert_eq!(pct(0.5), "50.0%");
        assert_eq!(f2(1.234), "1.23");
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn report_checks_columns() {
        let mut r = Report::new("bad", &["a", "b"]);
        r.row(&mut Sink::buffer(), &["only one".into()]);
    }

    #[test]
    fn bench_error_formats() {
        let e = BenchError::from(sim_core::SimError::NoSpace);
        assert!(e.to_string().contains("no space"));
        let u = BenchError::UnknownHarness("nope".into());
        assert!(u.to_string().contains("nope"));
    }
}

pub mod figs;
pub mod harness;
pub mod pool;
pub mod sweeps;
pub mod synthfs;
pub mod trace;
