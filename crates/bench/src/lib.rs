//! Shared plumbing for the experiment harness binaries.
//!
//! Every table and figure of the paper's evaluation has a binary in
//! `src/bin/` that regenerates it (see DESIGN.md's experiment index).
//! Binaries print the series/rows to stdout and write a CSV under
//! `results/`. The experiment scale (relative to the paper's 50 GB /
//! 30 min setup) is controlled by the `DUET_SCALE` environment
//! variable; larger values run faster at lower fidelity.

use std::fs;
use std::io::Write;
use std::path::PathBuf;

/// Reads the scale factor from `DUET_SCALE`, with a per-harness default.
pub fn scale_from_env(default: u64) -> u64 {
    std::env::var("DUET_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&s| s >= 1)
        .unwrap_or(default)
}

/// A simple CSV/console sink for experiment output.
pub struct Report {
    name: &'static str,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Report {
    /// Creates a report with the given column names.
    pub fn new(name: &'static str, header: &[&str]) -> Self {
        Report {
            name,
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Adds a row (and echoes it to stdout).
    pub fn row(&mut self, values: &[String]) {
        assert_eq!(values.len(), self.header.len(), "column count mismatch");
        println!("  {}", values.join("\t"));
        self.rows.push(values.to_vec());
    }

    /// Prints the header line.
    pub fn print_header(&self) {
        println!("== {} ==", self.name);
        println!("  {}", self.header.join("\t"));
    }

    /// Writes the collected rows to `results/<name>.csv`.
    pub fn save(&self) -> std::io::Result<PathBuf> {
        let dir = PathBuf::from("results");
        fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{}.csv", self.name));
        let mut f = fs::File::create(&path)?;
        writeln!(f, "{}", self.header.join(","))?;
        for r in &self.rows {
            writeln!(f, "{}", r.join(","))?;
        }
        println!("[saved {}]", path.display());
        Ok(path)
    }
}

/// Formats a fraction as a percentage string.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Formats a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_default_applies() {
        // The env var is not set under `cargo test`.
        if std::env::var("DUET_SCALE").is_err() {
            assert_eq!(scale_from_env(32), 32);
        }
    }

    #[test]
    fn report_roundtrip() {
        let mut r = Report::new("unit_test_report", &["a", "b"]);
        r.print_header();
        r.row(&["1".into(), "2".into()]);
        assert_eq!(r.rows.len(), 1);
        assert_eq!(pct(0.5), "50.0%");
        assert_eq!(f2(1.234), "1.23");
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn report_checks_columns() {
        let mut r = Report::new("bad", &["a", "b"]);
        r.row(&["only one".into()]);
    }
}

pub mod harness;
pub mod sweeps;
pub mod synthfs;
