//! The fault matrix: every maintenance task × every fault-plan preset,
//! checked by the Duet-vs-Baseline equivalence oracle.
//!
//! Each cell runs the task twice under the same workload and the same
//! `(seed, plan)` fault stream — opportunistic and baseline — and
//! asserts the final logical states match. No cell may panic; injected
//! faults must either be absorbed (retry/backoff, re-enqueue, graceful
//! degradation) or propagate as clean `SimResult` errors, which the
//! oracle reports with a replay line.
//!
//! The seed honours `DUET_FAULT_SEED` (hex `0x…` or decimal) so a
//! failure seen in CI's rotating-seed job can be replayed locally:
//!
//! ```text
//! DUET_FAULT_SEED=0x1bad5eed cargo test -p experiments --test fault_matrix
//! ```

use experiments::oracle::{check_pair, check_pair_with, exercise_error_vocabulary, OracleTask};
use sim_core::fault::{seed_from_env, FaultHandle, FaultPlan, FaultSite};
use sim_core::SimError;

const DEFAULT_SEED: u64 = 0xD0E7_F457;

fn seed() -> u64 {
    seed_from_env("DUET_FAULT_SEED", DEFAULT_SEED)
}

/// The full grid: 5 tasks × 5 preset plans (1 quiet + 4 adversarial).
#[test]
fn every_task_matches_baseline_under_every_preset_plan() {
    let seed = seed();
    let mut failures = Vec::new();
    for name in FaultPlan::PRESETS {
        let plan = FaultPlan::preset(name).unwrap_or_else(|| panic!("unknown preset {name}"));
        let mut fired = 0u64;
        for task in OracleTask::ALL {
            match check_pair(task, seed, &plan) {
                Ok(report) => fired += report.faults_fired,
                Err(e) => failures.push(format!("[{name} × {}]\n{e}", task.name())),
            }
        }
        // Adversarial plans must actually inject faults somewhere in
        // the row — an all-pass with zero fired faults would mean the
        // hooks are disconnected and the matrix is vacuous. (Checked
        // per plan, not per cell: a single cache-friendly task can
        // legitimately dodge every low-rate coin flip.)
        if !plan.is_quiet() && fired == 0 {
            failures.push(format!("[{name}] whole row passed but injected no faults"));
        }
    }
    assert!(
        failures.is_empty(),
        "{} matrix cell(s) failed:\n{}",
        failures.len(),
        failures.join("\n")
    );
}

/// Plans parsed from replay-line specs run the same as built ones, so
/// the printed `(seed, plan)` pair really reproduces a failure.
#[test]
fn parsed_plan_spec_reproduces_preset_digest() {
    let seed = seed();
    let plan = FaultPlan::preset("disk-grief").unwrap_or_else(|| unreachable!());
    let reparsed = FaultPlan::parse(&plan.spec()).expect("spec must round-trip");
    assert_eq!(plan, reparsed);
    let a = check_pair(OracleTask::Scrub, seed, &plan).expect("scrub under disk-grief");
    let b = check_pair(OracleTask::Scrub, seed, &reparsed).expect("scrub under reparsed plan");
    assert_eq!(a.digest, b.digest, "replayed plan must be bit-identical");
}

/// The oracle discriminates: a deliberately-broken scrubber (silently
/// skips part of the scan) is caught, and the failure message carries
/// the replay line.
#[test]
fn sabotaged_task_is_caught_with_replay_line() {
    let seed = seed();
    for name in ["quiet", "disk-grief"] {
        let plan = FaultPlan::preset(name).unwrap_or_else(|| panic!("unknown preset {name}"));
        let err = check_pair_with(OracleTask::Scrub, seed, &plan, true)
            .expect_err("broken scrubber must diverge from baseline");
        assert!(
            err.contains("replay: DUET_FAULT_SEED="),
            "failure must embed the replay contract, got:\n{err}"
        );
        assert!(err.contains("DUET_FAULT_PLAN="), "{err}");
    }
}

/// Solo rows: every plan-driven fault site is exercised in isolation
/// at an aggressive rate and must (a) actually fire and (b) keep Duet
/// equivalent to baseline. The preset grid mixes sites, so a silently
/// disconnected hook could hide behind a noisy plan; a solo plan
/// cannot. These are also the per-site registry rows the F2 lint pass
/// checks for.
#[test]
fn every_fault_site_fires_and_matches_in_isolation() {
    let seed = seed();
    // `ApiChaos` is deliberately absent: it drives the API-misuse
    // exerciser rather than the task path (its row is
    // `api_chaos_drives_the_error_vocabulary` below).
    let solo: &[(FaultSite, u32)] = &[
        (FaultSite::DiskTransientIo, 150_000),
        (FaultSite::DiskLatencySpike, 250_000),
        // Latent corruption only triggers on write-path runs and
        // exhaustion only on the single `register` call per run, so
        // both need (near-)certain rates to fire their few draws.
        (FaultSite::DiskLatentError, 1_000_000),
        (FaultSite::CacheEvictionStorm, 200_000),
        (FaultSite::CacheWritebackFail, 200_000),
        (FaultSite::DuetSessionExhaustion, 1_000_000),
        (FaultSite::DuetPathUnavailable, 500_000),
        (FaultSite::DuetSessionChurn, 250_000),
    ];
    let mut failures = Vec::new();
    for &(site, ppm) in solo {
        let plan = FaultPlan::quiet().with_ppm(site, ppm);
        let mut fired = 0u64;
        for task in OracleTask::ALL {
            match check_pair(task, seed, &plan) {
                Ok(report) => fired += report.faults_fired,
                Err(e) => failures.push(format!("[{} × {}]\n{e}", site.label(), task.name())),
            }
            // One matching, firing cell is a sufficient row; the preset
            // grid already crosses every task with mixed plans.
            if fired > 0 {
                break;
            }
        }
        if fired == 0 {
            failures.push(format!(
                "[{}] solo plan fired no faults in any task — hook disconnected?",
                site.label()
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "{} solo row(s) failed:\n{}",
        failures.len(),
        failures.join("\n")
    );
}

/// `ApiChaos`'s solo row: the site sits on the API-misuse exerciser
/// rather than the task path, so its check is that a full-rate chaos
/// stream is connected and productive (`error_vocabulary_is_complete`
/// asserts the full error coverage).
#[test]
fn api_chaos_drives_the_error_vocabulary() {
    let plan = FaultPlan::quiet().with_ppm(FaultSite::ApiChaos, 1_000_000);
    let chaos = FaultHandle::new(seed(), plan);
    assert!(
        chaos.fire(FaultSite::ApiChaos),
        "full-rate ApiChaos must fire"
    );
    assert!(!exercise_error_vocabulary(seed()).is_empty());
}

/// Every error variant in the vocabulary is constructible via an
/// injected fault or API misuse, and observable through a clean
/// `SimResult` — no panics anywhere in the exerciser.
#[test]
fn error_vocabulary_is_complete() {
    let seen = exercise_error_vocabulary(seed());
    let missing: Vec<&str> = SimError::ALL_LABELS
        .iter()
        .filter(|l| !seen.contains(*l))
        .copied()
        .collect();
    assert!(
        missing.is_empty(),
        "error variants never observed: {missing:?}"
    );
}

/// A second, independent seed for the grid's most aggressive plan:
/// guards against the default seed happening to dodge a fault path.
#[test]
fn kitchen_sink_matches_under_shifted_seed() {
    let seed = seed() ^ 0x5EED_0001;
    let plan = FaultPlan::preset("kitchen-sink").unwrap_or_else(|| unreachable!());
    for task in OracleTask::ALL {
        if let Err(e) = check_pair(task, seed, &plan) {
            panic!("[kitchen-sink × {}] {e}", task.name());
        }
    }
}

/// Custom plan outside the presets: maximal stale-hint pressure. Tasks
/// must degrade (back out + re-enqueue per §3.2) and still converge.
#[test]
fn full_stale_hint_pressure_still_converges() {
    let seed = seed();
    let plan = FaultPlan::quiet()
        .with_ppm(FaultSite::DuetPathUnavailable, 900_000)
        .with_ppm(FaultSite::DuetSessionChurn, 100_000);
    for task in OracleTask::ALL {
        if let Err(e) = check_pair(task, seed, &plan) {
            panic!("[stale-hints × {}] {e}", task.name());
        }
    }
}
