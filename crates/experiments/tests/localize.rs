//! Sabotage-localization smoke for the trace-armed oracle.
//!
//! [`localize_pair`] must not merely *detect* each task's silent defect
//! (the digest comparison already does that) — it must name the first
//! divergent effect, the entity it concerns, and the originating site
//! with its causal work-item chain. One pinned seed keeps the whole
//! suite bit-replayable; a failure here prints the replay line through
//! the oracle's error path.

use experiments::{localize_pair, OracleTask};
use sim_core::fault::FaultPlan;
use sim_core::trace::TraceHandle;

const QUIET_SEED: u64 = 0x0DDB411;
const SABOTAGE_SEED: u64 = 0xBAD5EED;

#[test]
fn quiet_pairs_localize_to_nothing() {
    let plan = FaultPlan::quiet();
    for task in OracleTask::ALL {
        let d = localize_pair(task, QUIET_SEED, &plan, false)
            .unwrap_or_else(|e| panic!("{}: localize run failed:\n{e}", task.name()));
        assert!(
            d.is_none(),
            "{}: spurious divergence: {}",
            task.name(),
            d.unwrap().render()
        );
    }
}

#[test]
fn sabotage_is_localized_to_the_defective_site_for_every_task() {
    let plan = FaultPlan::quiet();
    for task in OracleTask::ALL {
        let d = localize_pair(task, SABOTAGE_SEED, &plan, true)
            .unwrap_or_else(|e| panic!("{}: localize run failed:\n{e}", task.name()))
            .unwrap_or_else(|| panic!("{}: sabotage went undetected", task.name()));
        if !TraceHandle::compiled_in() {
            // Tracing compiled out: the localizer degrades to the
            // digest comparison but must still catch the defect.
            assert_eq!(d.kind, "digest", "{}", d.render());
            continue;
        }
        let expected_kind = match task {
            OracleTask::Scrub => "scrub.verify",
            OracleTask::Backup => "backup.ship",
            OracleTask::Defrag => "defrag.reloc",
            OracleTask::Rsync => "rsync.send",
            OracleTask::Gc => "gc.final",
        };
        assert_eq!(d.kind, expected_kind, "{}: {}", task.name(), d.render());
        assert_ne!(d.duet, d.baseline, "{}: {}", task.name(), d.render());
        assert!(
            d.site.starts_with("task/"),
            "{}: site must name the task layer: {}",
            task.name(),
            d.render()
        );
        // GC's final-state events are synthetic (emitted at run end,
        // outside any work item); every other task's effect must be
        // chained to the work item that produced it.
        if task != OracleTask::Gc {
            assert!(
                !d.chain.is_empty(),
                "{}: no causal chain: {}",
                task.name(),
                d.render()
            );
        }
    }
}
