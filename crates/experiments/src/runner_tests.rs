//! End-to-end tests of the experiment runner at small scale.

use crate::config::{DeviceKind, ExperimentConfig, TaskKind};
use crate::metrics::max_utilization;
use crate::runner::{run_experiment, run_gc_experiment, run_rsync_experiment, GcExperimentConfig};
use sim_core::SimDuration;
use sim_disk::SchedulerPolicy;
use sim_f2fs::VictimPolicy;
use workloads::{DistKind, FileSetConfig, Personality, WorkloadConfig};

/// A small configuration: ~32 MB of data, 2 MB cache, 20 s window.
fn small_cfg(tasks: Vec<TaskKind>, duet: bool, util: f64) -> ExperimentConfig {
    ExperimentConfig {
        device: DeviceKind::Hdd,
        capacity_blocks: 1 << 16, // 256 MiB
        cache_pages: 512,         // 2 MiB
        fileset: FileSetConfig {
            num_files: 256,
            mean_file_bytes: 128 * 1024,
            sigma: 0.4,
        },
        workload: (util > 0.0).then_some(WorkloadConfig {
            personality: Personality::WebServer,
            dist: DistKind::Uniform,
            coverage: 1.0,
            target_util: util,
            burst: 8,
            append_bytes: 16 * 1024,
            seed: 7,
        }),
        tasks,
        duet,
        policy: SchedulerPolicy::default_cfq(),
        duration: SimDuration::from_secs(20),
        fragmentation: None,
        poll_period: SimDuration::from_millis(20),
        defrag_file_granularity: false,
        informed_replacement: false,
        scatter_layout: true,
        seed: 7,
    }
}

#[test]
fn idle_device_scrub_completes_with_no_savings() {
    let r = run_experiment(&small_cfg(vec![TaskKind::Scrub], false, 0.0)).unwrap();
    assert!(r.all_completed(), "scrub on an idle device must finish");
    assert_eq!(r.io_saved(), 0.0, "baseline saves nothing");
    assert_eq!(r.work_completed(), 1.0);
    assert!(r.maintenance_blocks > 0);
    assert_eq!(r.foreground_blocks, 0);
    assert_eq!(r.workload_ops, 0);
}

#[test]
fn duet_scrub_under_workload_saves_io() {
    let base = run_experiment(&small_cfg(vec![TaskKind::Scrub], false, 0.4)).unwrap();
    let duet = run_experiment(&small_cfg(vec![TaskKind::Scrub], true, 0.4)).unwrap();
    assert!(duet.io_saved() > 0.05, "duet saved {:.3}", duet.io_saved());
    assert!(base.io_saved() == 0.0);
    // Duet performs less maintenance I/O for the same work.
    if base.all_completed() && duet.all_completed() {
        assert!(
            duet.maintenance_blocks < base.maintenance_blocks,
            "duet {} vs base {}",
            duet.maintenance_blocks,
            base.maintenance_blocks
        );
    }
    // Utilization throttle roughly hit its target.
    assert!(
        (0.25..0.55).contains(&duet.achieved_util),
        "util {:.3}",
        duet.achieved_util
    );
}

#[test]
fn scrub_and_backup_collaborate_without_workload() {
    // §6.3: "even when Filebench is not run (0% utilization), Duet
    // reduces the total I/O needed to complete maintenance work by at
    // least 50%" — one pass over the data serves both tasks.
    let r = run_experiment(&small_cfg(
        vec![TaskKind::Scrub, TaskKind::Backup],
        true,
        0.0,
    ))
    .unwrap();
    assert!(r.all_completed());
    assert!(
        r.io_saved() > 0.40,
        "cross-task synergy saved only {:.3}",
        r.io_saved()
    );
    let base = run_experiment(&small_cfg(
        vec![TaskKind::Scrub, TaskKind::Backup],
        false,
        0.0,
    ))
    .unwrap();
    assert!(base.all_completed());
    assert!(
        r.maintenance_blocks < base.maintenance_blocks * 3 / 4,
        "duet {} vs base {}",
        r.maintenance_blocks,
        base.maintenance_blocks
    );
}

#[test]
fn defrag_runs_on_fragmented_fs() {
    let mut cfg = small_cfg(vec![TaskKind::Defrag], true, 0.0);
    cfg.fragmentation = Some((0.1, 5));
    let r = run_experiment(&cfg).unwrap();
    assert!(r.all_completed());
    assert!(
        r.tasks[0].metrics.total_units > 0,
        "some files were fragmented"
    );
    assert!(r.maintenance_blocks > 0);
}

#[test]
fn higher_utilization_slows_maintenance() {
    let lo = run_experiment(&small_cfg(vec![TaskKind::Backup], false, 0.2)).unwrap();
    let hi = run_experiment(&small_cfg(vec![TaskKind::Backup], false, 0.8)).unwrap();
    assert!(
        hi.work_completed() <= lo.work_completed() + 1e-9,
        "hi {:.3} vs lo {:.3}",
        hi.work_completed(),
        lo.work_completed()
    );
}

#[test]
fn max_utilization_improves_with_duet() {
    let run_mode = |duet: bool, util: f64| -> bool {
        run_experiment(&small_cfg(vec![TaskKind::Backup], duet, util))
            .unwrap()
            .all_completed()
    };
    let base = max_utilization(|u| Ok(run_mode(false, u))).unwrap();
    let duet = max_utilization(|u| Ok(run_mode(true, u))).unwrap();
    let b = base.expect("baseline completes on an idle device");
    let d = duet.expect("duet completes on an idle device");
    assert!(d >= b, "duet max util {d} < baseline {b}");
}

#[test]
fn rsync_duet_speeds_up_transfer() {
    let mut cfg = small_cfg(vec![], false, 1.0);
    cfg.duration = SimDuration::from_secs(60);
    let base = run_rsync_experiment(&cfg, false).unwrap();
    let duet = run_rsync_experiment(&cfg, true).unwrap();
    assert_eq!(base.metrics.done_units, base.metrics.total_units);
    assert_eq!(duet.metrics.done_units, duet.metrics.total_units);
    let s = crate::metrics::speedup(base.completion, duet.completion);
    assert!(s >= 1.0, "speedup {s:.2}");
    assert!(duet.metrics.saved_units >= base.metrics.saved_units);
}

#[test]
fn ssd_experiment_runs() {
    let mut cfg = small_cfg(vec![TaskKind::Scrub], true, 0.4);
    cfg.device = DeviceKind::Ssd;
    let r = run_experiment(&cfg).unwrap();
    assert!(r.work_completed() > 0.9);
}

#[test]
fn gc_experiment_duet_cleans_faster_or_equal() {
    let gc_cfg = |duet: bool| GcExperimentConfig {
        nsegs: 256,
        seg_blocks: 256, // 1 MiB segments
        cache_pages: 2048,
        fileset: FileSetConfig {
            num_files: 128,
            mean_file_bytes: 256 * 1024,
            sigma: 0.3,
        },
        workload: WorkloadConfig {
            personality: Personality::FileServer,
            dist: DistKind::Uniform,
            coverage: 1.0,
            target_util: 0.5,
            burst: 8,
            append_bytes: 16 * 1024,
            seed: 3,
        },
        duet,
        victim_policy: VictimPolicy::Greedy,
        gc_window: 256,
        gc_interval: SimDuration::from_millis(100),
        policy: SchedulerPolicy::default_cfq(),
        duration: SimDuration::from_secs(30),
        seed: 3,
    };
    let base = run_gc_experiment(&gc_cfg(false)).unwrap();
    let duet = run_gc_experiment(&gc_cfg(true)).unwrap();
    assert!(base.cleanings > 0, "baseline cleaned nothing");
    assert!(duet.cleanings > 0, "duet cleaned nothing");
    assert!(
        duet.mean_cleaning_ms <= base.mean_cleaning_ms * 1.25,
        "duet {:.2}ms vs base {:.2}ms",
        duet.mean_cleaning_ms,
        base.mean_cleaning_ms
    );
    assert!(duet.mean_cached >= 0.0);
}

#[test]
fn informed_replacement_never_hurts_savings() {
    // The future-work extension must at minimum not reduce savings.
    let mut plain = small_cfg(vec![TaskKind::Backup], true, 0.5);
    plain.informed_replacement = false;
    let mut informed = plain.clone();
    informed.informed_replacement = true;
    let a = run_experiment(&plain).unwrap();
    let b = run_experiment(&informed).unwrap();
    assert!(
        b.io_saved() + 0.05 >= a.io_saved(),
        "informed {:.3} vs plain {:.3}",
        b.io_saved(),
        a.io_saved()
    );
}

#[test]
fn skewed_distribution_reduces_savings() {
    // §6.2: "when the skewed file access distribution is used ...
    // savings are decreased" — most accesses hit few files, so fewer
    // distinct blocks get verified for free.
    let mut uni = small_cfg(vec![TaskKind::Scrub], true, 0.6);
    uni.scatter_layout = true;
    let mut skew = uni.clone();
    skew.workload.as_mut().unwrap().dist = DistKind::MsTrace(2);
    let a = run_experiment(&uni).unwrap();
    let b = run_experiment(&skew).unwrap();
    assert!(
        b.io_saved() <= a.io_saved() + 0.02,
        "skewed {:.3} should not beat uniform {:.3}",
        b.io_saved(),
        a.io_saved()
    );
}

#[test]
fn no_priority_policy_reduces_savings() {
    // §6.5: without I/O prioritization maintenance finishes faster but
    // the workload issues fewer requests, reducing I/O saved.
    let mut cfq = small_cfg(vec![TaskKind::Scrub], true, 0.6);
    cfq.policy = SchedulerPolicy::default_cfq();
    let mut noprio = cfq.clone();
    noprio.policy = SchedulerPolicy::NoPriority;
    let a = run_experiment(&cfq).unwrap();
    let b = run_experiment(&noprio).unwrap();
    // Deadline-style scheduling lets maintenance complete at least
    // about as fast (usually faster); small timing jitter is allowed.
    if a.all_completed() && b.all_completed() {
        let ma = a.makespan().unwrap();
        let mb = b.makespan().unwrap();
        assert!(
            mb.as_secs_f64() <= ma.as_secs_f64() * 1.10,
            "noprio {mb} much slower than cfq {ma}"
        );
    }
    // The workload must not get *more* device time without priorities.
    assert!(
        b.workload_ops as f64 <= a.workload_ops as f64 * 1.05,
        "noprio wl ops {} vs cfq {}",
        b.workload_ops,
        a.workload_ops
    );
}
