//! The §6.1.2 profiling pass and its memo.
//!
//! The paper "profiled each Filebench personality with different levels
//! of throttling (and no maintenance load) to achieve a given device
//! utilization". This module reproduces that methodology explicitly: a
//! short, unthrottled, maintenance-free calibration run measures the
//! device busy time one workload operation costs, and the measurement
//! seeds the throttle's busy-per-op estimate before the real experiment
//! starts (see `Workload::seed_busy_per_op`).
//!
//! The profile depends only on the workload shape and the device — not
//! on the target utilization, the maintenance tasks, or Duet mode — so
//! every cell of a `utilization × overlap` sweep shares one profile.
//! [`ProfileCache`] memoizes it per [`ProfileKey`]; the pass itself is
//! deterministic (seeded RNG, virtual time), so a cache hit is
//! bit-identical to a fresh computation and concurrent sweep workers
//! may race to fill an entry without affecting results.

use crate::config::{DeviceKind, ExperimentConfig};
use crate::metrics::ExperimentResult;
use crate::runner::{build_disk, run_experiment_seeded};
use sim_btrfs::BtrfsSim;
use sim_core::{SimError, SimInstant, SimResult};
use sim_disk::IoClass;
use std::collections::BTreeMap;
use std::sync::{Mutex, MutexGuard, OnceLock};
use workloads::{DistKind, Personality, Workload, WorkloadFs};

/// Operations executed by the calibration run. Enough for the op mix
/// and cache behaviour to reach steady state; small enough that one
/// profile costs a fraction of one sweep cell.
const PROFILE_OPS: u64 = 384;
/// File-set cap for the calibration filesystem. The cache and device
/// are scaled down by the same factor so the paper's data : cache :
/// device ratios — which determine hit rates and seek distances —
/// carry over.
const PROFILE_MAX_FILES: usize = 96;

/// Memo key: every configuration dimension the calibration run reads.
/// Deliberately excludes `target_util`, `coverage`, tasks, and Duet
/// mode — the profile measures unthrottled whole-set cost, which those
/// knobs do not affect.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct ProfileKey {
    personality: u8,
    dist: (u8, u8),
    device: u8,
    num_files: u64,
    mean_file_bytes: u64,
    sigma_bits: u64,
    append_bytes: u64,
    burst: u32,
    cache_pages: u64,
    capacity_blocks: u64,
    seed: u64,
}

pub(crate) fn personality_tag(p: Personality) -> u8 {
    match p {
        Personality::WebServer => 0,
        Personality::WebProxy => 1,
        Personality::FileServer => 2,
    }
}

pub(crate) fn dist_tag(d: DistKind) -> (u8, u8) {
    match d {
        DistKind::Uniform => (0, 0),
        DistKind::MsTrace(dev) => (1, dev),
    }
}

fn device_tag(d: DeviceKind) -> u8 {
    match d {
        DeviceKind::Hdd => 0,
        DeviceKind::Ssd => 1,
    }
}

/// Calibration dimensions: the file set capped at [`PROFILE_MAX_FILES`]
/// with cache and device capacity shrunk by the same factor.
fn profile_dimensions(cfg: &ExperimentConfig) -> (usize, usize, u64) {
    let files = cfg.fileset.num_files.clamp(1, PROFILE_MAX_FILES);
    let shrink = |n: u64| n * files as u64 / cfg.fileset.num_files.max(1) as u64;
    let cache_pages = (shrink(cfg.cache_pages as u64) as usize).max(256);
    let capacity = shrink(cfg.capacity_blocks).max(1 << 14);
    (files, cache_pages, capacity)
}

/// The memo key for a configuration, or `None` when the run needs no
/// profile: no foreground workload, or an unthrottled one (a
/// `target_util` of 0.999 or more issues operations back to back
/// without consulting the busy-per-op estimate).
pub fn profile_key(cfg: &ExperimentConfig) -> Option<ProfileKey> {
    let w = cfg.workload?;
    if w.target_util >= 0.999 {
        return None;
    }
    let (files, cache_pages, capacity) = profile_dimensions(cfg);
    Some(ProfileKey {
        personality: personality_tag(w.personality),
        dist: dist_tag(w.dist),
        device: device_tag(cfg.device),
        num_files: files as u64,
        mean_file_bytes: cfg.fileset.mean_file_bytes,
        sigma_bits: cfg.fileset.sigma.to_bits(),
        append_bytes: w.append_bytes,
        burst: w.burst,
        cache_pages: cache_pages as u64,
        capacity_blocks: capacity,
        seed: w.seed,
    })
}

/// Runs the unthrottled calibration pass and returns the mean device
/// busy time per operation in nanoseconds. Deterministic: same
/// configuration, same result, bit for bit.
///
/// # Errors
///
/// Returns [`SimError::Unsupported`] if the configuration has no
/// foreground workload, and propagates simulation errors.
pub fn profile_unthrottled(cfg: &ExperimentConfig) -> SimResult<f64> {
    let Some(wcfg) = cfg.workload else {
        return Err(SimError::Unsupported("profiling requires a workload"));
    };
    let (files, cache_pages, capacity) = profile_dimensions(cfg);
    let disk = build_disk(cfg.device, capacity);
    let mut fs = BtrfsSim::new(sim_core::DeviceId(0), disk, cache_pages);
    // Unthrottled, whole file set, no maintenance load (§6.1.2).
    let pcfg = workloads::WorkloadConfig {
        coverage: 1.0,
        target_util: 1.0,
        ..wcfg
    };
    let fileset = workloads::FileSetConfig {
        num_files: files,
        ..cfg.fileset
    };
    let mut wl = Workload::setup(&mut fs, pcfg, fileset)?;
    fs.disk_mut().reset_metrics();
    let mut now = SimInstant::EPOCH;
    for _ in 0..PROFILE_OPS {
        now = now.max(wl.next_op_time());
        now = wl.run_op(&mut fs, now)?;
        // Periodic writeback, as in the real run: its cost is part of
        // what the throttle must account for.
        if fs.dirty_pages() > cache_pages / 8 {
            fs.background_writeback(1024, IoClass::Normal, now)?;
        }
    }
    Ok(fs.foreground_busy().as_nanos() as f64 / PROFILE_OPS as f64)
}

/// Memoized profiles, shared by reference across sweep workers.
///
/// The value is stored as raw `f64` bits so lookups reproduce the
/// computed value exactly. Workers may race to fill the same key; both
/// compute the same (deterministic) value, so whichever insert wins is
/// irrelevant to results.
#[derive(Debug, Default)]
pub struct ProfileCache {
    memo: Mutex<BTreeMap<ProfileKey, u64>>,
}

impl ProfileCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        ProfileCache::default()
    }

    /// The process-wide cache, shared across harnesses. A profile
    /// depends only on its [`ProfileKey`] and is bit-identical however
    /// many times it is computed, so sharing entries across sweeps
    /// (e.g. every `table5_max_util` cell, or a figure harness re-run
    /// in the same process) is byte-safe and saves re-calibration.
    /// Tests that assert on `len` should use [`ProfileCache::new`] for
    /// an isolated instance instead.
    pub fn global() -> &'static ProfileCache {
        static GLOBAL: OnceLock<ProfileCache> = OnceLock::new();
        GLOBAL.get_or_init(ProfileCache::new)
    }

    fn guard(&self) -> MutexGuard<'_, BTreeMap<ProfileKey, u64>> {
        match self.memo.lock() {
            Ok(g) => g,
            // A worker can only poison the lock by panicking between
            // lock and unlock; the map holds plain data, so continue.
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Number of memoized profiles.
    pub fn len(&self) -> usize {
        self.guard().len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.guard().is_empty()
    }

    /// The busy-per-op profile for `cfg`: memoized if present, computed
    /// and stored otherwise. `Ok(None)` when the configuration needs no
    /// profile (no workload, or unthrottled).
    pub fn get_or_profile(&self, cfg: &ExperimentConfig) -> SimResult<Option<f64>> {
        let Some(key) = profile_key(cfg) else {
            return Ok(None);
        };
        if let Some(&bits) = self.guard().get(&key) {
            return Ok(Some(f64::from_bits(bits)));
        }
        // Computed outside the lock: a long calibration must not
        // serialize other sweep workers.
        let value = profile_unthrottled(cfg)?;
        self.guard().insert(key, value.to_bits());
        Ok(Some(value))
    }
}

/// [`crate::run_experiment`] with the §6.1.2 profile-then-throttle
/// methodology: the workload's throttle is seeded from a (memoized)
/// calibration pass instead of bootstrapping from its first operation.
pub fn run_experiment_cached(
    cfg: &ExperimentConfig,
    profiles: &ProfileCache,
) -> SimResult<ExperimentResult> {
    run_experiment_cached_traced(cfg, profiles, None)
}

/// [`run_experiment_cached`] with structured tracing armed on the whole
/// stack (see [`crate::runner::run_experiment_traced`]). The profile
/// pass itself is never traced: it is calibration, not the measured
/// window.
pub fn run_experiment_cached_traced(
    cfg: &ExperimentConfig,
    profiles: &ProfileCache,
    trace: Option<&sim_core::trace::TraceHandle>,
) -> SimResult<ExperimentResult> {
    let seed = profiles.get_or_profile(cfg)?;
    run_experiment_seeded(cfg, seed, trace)
}

/// [`run_experiment_cached_traced`] truncated to the completion
/// question: runs the identical simulation but stops as soon as the
/// last maintenance task completes, returning what `all_completed()`
/// of the full run would be (see
/// [`crate::runner::run_completion_probe_seeded`]). The fast path for
/// bisection sweeps like `table5_max_util`, whose cells only consume
/// the completion bit.
pub fn run_completion_probe_cached(
    cfg: &ExperimentConfig,
    profiles: &ProfileCache,
    trace: Option<&sim_core::trace::TraceHandle>,
) -> SimResult<bool> {
    let seed = profiles.get_or_profile(cfg)?;
    crate::runner::run_completion_probe_seeded(cfg, seed, trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TaskKind;
    use crate::presets::paper_scaled;

    fn cfg(util: f64) -> ExperimentConfig {
        paper_scaled(
            1024,
            Personality::WebServer,
            DistKind::Uniform,
            1.0,
            util,
            vec![TaskKind::Scrub],
            true,
        )
    }

    #[test]
    fn memo_is_bit_identical_to_fresh_profile() {
        let cache = ProfileCache::new();
        let first = cache
            .get_or_profile(&cfg(0.5))
            .expect("profile")
            .expect("throttled workload profiles");
        let fresh = profile_unthrottled(&cfg(0.5)).expect("fresh profile");
        let memoized = cache
            .get_or_profile(&cfg(0.5))
            .expect("memo hit")
            .expect("present");
        assert_eq!(first.to_bits(), fresh.to_bits());
        assert_eq!(first.to_bits(), memoized.to_bits());
        assert_eq!(cache.len(), 1);
        assert!(first > 0.0, "busy per op {first}");
    }

    #[test]
    fn utilization_cells_share_one_profile() {
        let a = profile_key(&cfg(0.1)).expect("key");
        let b = profile_key(&cfg(0.9)).expect("key");
        assert_eq!(a, b, "profile is utilization-independent");
        let cache = ProfileCache::new();
        cache.get_or_profile(&cfg(0.1)).expect("profile");
        cache.get_or_profile(&cfg(0.9)).expect("profile");
        assert_eq!(cache.len(), 1, "one calibration for the whole sweep");
    }

    #[test]
    fn unthrottled_and_workload_free_runs_need_no_profile() {
        assert!(profile_key(&cfg(1.0)).is_none(), "unthrottled");
        assert!(profile_key(&cfg(0.0)).is_none(), "no workload");
        let cache = ProfileCache::new();
        assert_eq!(cache.get_or_profile(&cfg(0.0)), Ok(None));
        assert!(cache.is_empty());
    }

    #[test]
    fn global_cache_is_one_instance() {
        let a: *const ProfileCache = ProfileCache::global();
        let b: *const ProfileCache = ProfileCache::global();
        assert_eq!(a, b, "process-wide singleton");
    }

    #[test]
    fn personalities_profile_differently() {
        let web = profile_key(&cfg(0.5));
        let mut fsv = cfg(0.5);
        if let Some(w) = fsv.workload.as_mut() {
            w.personality = Personality::FileServer;
        }
        assert_ne!(web, profile_key(&fsv));
    }
}
