//! Duet-vs-Baseline equivalence oracle under fault injection.
//!
//! The paper's framework is only allowed to change *when* maintenance
//! work happens, never *what* it produces (§3.2: hints are best-effort,
//! every action is validated against ground truth). This module turns
//! that contract into an executable check: each task runs twice —
//! opportunistic (Duet) and baseline — under the **same** workload
//! operation list and the **same** fault plan, and the final logical
//! states must be identical:
//!
//! - **scrub**: the set of verified blocks;
//! - **backup**: the set of blocks shipped to the backup stream and the
//!   bytes sent;
//! - **defragmentation**: per-file extent counts (layout invariant);
//! - **rsync**: the destination tree (path → size);
//! - **GC**: logical file state (name → size, every page mapped to a
//!   valid block) plus the filesystem's own consistency check.
//!
//! Both runs of a pair construct a fresh [`FaultInjector`] from the
//! same `(seed, plan)` pair, so each run is bit-replayable on its own;
//! every failure message embeds [`replay_line`] so a CI hit can be
//! reproduced locally with `DUET_FAULT_SEED`.
//!
//! [`FaultInjector`]: sim_core::fault::FaultInjector

use duet::{Duet, EventMask, SessionId, TaskScope};
use duet_tasks::{
    pump_btrfs, pump_f2fs, Backup, BtrfsCtx, BtrfsTask, Defrag, GarbageCollector, GcCtx, Rsync,
    RsyncCtx, Scrubber, TaskMode,
};
use sim_btrfs::BtrfsSim;
use sim_core::fault::{replay_line, FaultHandle, FaultPlan, FaultSite};
use sim_core::trace::{TraceEvent, TraceHandle, TraceLayer};
use sim_core::{BlockNr, DeviceId, InodeNr, SimError, SimInstant, SimRng, PAGE_SIZE};
use sim_disk::{Disk, HddModel, IoClass, IoKind, IoRequest, RetryPolicy};
use sim_f2fs::{F2fsSim, VictimPolicy};
use std::collections::{BTreeMap, BTreeSet};

const T0: SimInstant = SimInstant::EPOCH;
/// Workload operations interleaved with each run.
const WORKLOAD_OPS: usize = 48;
/// Hard step bound so a wedged run fails loudly instead of spinning.
const MAX_STEPS: u32 = 20_000;
/// Retry budget for the oracle runs: aggressive plans (8 % transient
/// EIO) would exhaust the default 4 attempts once in a few hundred
/// requests; 6 doublings make exhaustion astronomically unlikely while
/// still exercising the backoff path constantly.
fn oracle_retry() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 6,
        ..RetryPolicy::default()
    }
}

/// The five maintenance tasks the oracle covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OracleTask {
    /// Checksum scrubber (§5.1).
    Scrub,
    /// Snapshot backup (§5.2).
    Backup,
    /// File defragmentation (§5.3).
    Defrag,
    /// Directory synchronization (§5.5).
    Rsync,
    /// F2fs segment cleaning (§5.4).
    Gc,
}

impl OracleTask {
    /// Every task, in a fixed order.
    pub const ALL: [OracleTask; 5] = [
        OracleTask::Scrub,
        OracleTask::Backup,
        OracleTask::Defrag,
        OracleTask::Rsync,
        OracleTask::Gc,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            OracleTask::Scrub => "scrub",
            OracleTask::Backup => "backup",
            OracleTask::Defrag => "defrag",
            OracleTask::Rsync => "rsync",
            OracleTask::Gc => "gc",
        }
    }
}

/// Outcome of one passing equivalence check.
#[derive(Debug)]
pub struct OracleReport {
    /// The task that was checked.
    pub task: OracleTask,
    /// The (identical) final-state digest of both runs.
    pub digest: String,
    /// Faults injected across both runs — lets callers assert that an
    /// adversarial plan actually exercised its fault paths rather than
    /// passing vacuously.
    pub faults_fired: u64,
}

/// Runs `task` twice — Duet then Baseline — under the same workload and
/// fault plan, and compares final-state digests. `Err` carries a
/// human-readable diagnosis ending in the replay line.
pub fn check_pair(task: OracleTask, seed: u64, plan: &FaultPlan) -> Result<OracleReport, String> {
    check_pair_with(task, seed, plan, false)
}

/// [`check_pair`] with an optional deliberate defect injected into the
/// Duet run — every task has a silent-failure switch (skipped repairs,
/// dropped backup blocks, un-rewritten files, unsent files, a lost GC
/// migration). Used to prove the oracle actually discriminates: a
/// sabotaged pair must come back `Err`.
pub fn check_pair_with(
    task: OracleTask,
    seed: u64,
    plan: &FaultPlan,
    sabotage_duet: bool,
) -> Result<OracleReport, String> {
    let fail = |phase: &str, msg: String| {
        format!(
            "oracle[{}/{phase}]: {msg}\n  {}",
            task.name(),
            replay_line(seed, plan)
        )
    };
    let (duet, duet_fired) = run_digest(task, TaskMode::Duet, seed, plan, sabotage_duet, None)
        .map_err(|e| fail("duet", e))?;
    let (base, base_fired) = run_digest(task, TaskMode::Baseline, seed, plan, false, None)
        .map_err(|e| fail("baseline", e))?;
    if duet != base {
        return Err(fail(
            "compare",
            format!("final states diverge\n  duet:     {duet}\n  baseline: {base}"),
        ));
    }
    Ok(OracleReport {
        task,
        digest: duet,
        faults_fired: duet_fired + base_fired,
    })
}

// ----- first-divergence localizer -------------------------------------

/// Ring capacity for localizer runs: big enough that no oracle
/// scenario rotates its earliest effect events out of the buffer.
const LOCALIZE_TRACE_CAPACITY: usize = 1 << 20;

/// The earliest point where the Duet run's observable effects differ
/// from the baseline's, with the causal context that produced it.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// The task under check.
    pub task: OracleTask,
    /// Effect kind that diverged (e.g. `"scrub.verify"`), or
    /// `"digest"` when only the digest comparison caught it (tracing
    /// compiled out, or a divergence outside the effect vocabulary).
    pub kind: String,
    /// Diverging entity: a block number for scrub/backup, an inode
    /// number for defrag/rsync/GC, 0 for a digest-only divergence.
    pub entity: u64,
    /// Final effect payload on the Duet side (`None`: effect absent).
    pub duet: Option<String>,
    /// Final effect payload on the baseline side (`None`: absent).
    pub baseline: Option<String>,
    /// Originating site of the differing event, `layer/kind`.
    pub site: String,
    /// Causal span chain of that event, innermost first (the task
    /// work item it happened under, then its enclosing spans).
    pub chain: Vec<String>,
}

impl Divergence {
    /// One-line rendering for logs and CI output.
    pub fn render(&self) -> String {
        let fmt_side = |s: &Option<String>| s.clone().unwrap_or_else(|| "<absent>".into());
        let chain = if self.chain.is_empty() {
            "<none>".to_string()
        } else {
            self.chain.join(" <- ")
        };
        format!(
            "first divergence[{}]: {} entity={} duet={} baseline={} site={} chain={}",
            self.task.name(),
            self.kind,
            self.entity,
            fmt_side(&self.duet),
            fmt_side(&self.baseline),
            self.site,
            chain,
        )
    }
}

/// Runs `task` twice like [`check_pair_with`], but with the trace plane
/// armed, and localizes the earliest divergent effect instead of just
/// comparing digests. Returns `Ok(None)` when the runs are equivalent.
///
/// Each side's event stream is projected onto the task's effect
/// vocabulary (per-entity final effects: blocks verified, blocks
/// shipped, files rewritten, files sent, final GC file state); the
/// streams are then replayed in lockstep over the ordered entity space
/// and the first differing entity is reported together with the causal
/// span chain of the event that produced (or should have produced) it.
/// With the `trace` feature compiled out both projections are empty and
/// the check degrades to the digest comparison (`kind == "digest"`).
pub fn localize_pair(
    task: OracleTask,
    seed: u64,
    plan: &FaultPlan,
    sabotage_duet: bool,
) -> Result<Option<Divergence>, String> {
    let fail = |phase: &str, msg: String| {
        format!(
            "oracle[{}/{phase}]: {msg}\n  {}",
            task.name(),
            replay_line(seed, plan)
        )
    };
    let duet_trace = TraceHandle::new(LOCALIZE_TRACE_CAPACITY);
    let base_trace = TraceHandle::new(LOCALIZE_TRACE_CAPACITY);
    let (duet_digest, _) = run_digest(
        task,
        TaskMode::Duet,
        seed,
        plan,
        sabotage_duet,
        Some(&duet_trace),
    )
    .map_err(|e| fail("duet", e))?;
    let (base_digest, _) = run_digest(
        task,
        TaskMode::Baseline,
        seed,
        plan,
        false,
        Some(&base_trace),
    )
    .map_err(|e| fail("baseline", e))?;
    let duet_events = duet_trace.events();
    let base_events = base_trace.events();
    let duet_proj = project_effects(task, &duet_events);
    let base_proj = project_effects(task, &base_events);
    // Lockstep replay over the ordered union of effect keys: the first
    // key where the two sides disagree is the divergence.
    let keys: BTreeSet<&(&'static str, u64)> = duet_proj.keys().chain(base_proj.keys()).collect();
    for &&(kind, entity) in &keys {
        let d = duet_proj.get(&(kind, entity));
        let b = base_proj.get(&(kind, entity));
        if d == b {
            continue;
        }
        // The side that *has* the event carries the causal context; a
        // missing event on the other side is the defect.
        let field = entity_field(kind);
        let ev = last_effect(&base_events, kind, field, entity)
            .or_else(|| last_effect(&duet_events, kind, field, entity));
        let (site, chain) = match ev {
            Some((events, e)) => (format!("{}/{}", e.layer, e.kind), span_chain(events, e)),
            None => (format!("task/{kind}"), Vec::new()),
        };
        return Ok(Some(Divergence {
            task,
            kind: kind.to_string(),
            entity,
            duet: d.cloned(),
            baseline: b.cloned(),
            site,
            chain,
        }));
    }
    if duet_digest != base_digest {
        // Outside the effect vocabulary (or tracing compiled out):
        // still report the divergence, just without localization.
        return Ok(Some(Divergence {
            task,
            kind: "digest".into(),
            entity: 0,
            duet: Some(duet_digest),
            baseline: Some(base_digest),
            site: "oracle/digest".into(),
            chain: Vec::new(),
        }));
    }
    Ok(None)
}

/// The entity field name of an effect kind.
fn entity_field(kind: &str) -> &'static str {
    match kind {
        "scrub.verify" | "backup.ship" => "block",
        _ => "ino",
    }
}

/// Projects a run's event stream onto the task's per-entity effect
/// vocabulary. The result maps `(effect kind, entity)` to the entity's
/// final effect payload.
fn project_effects(
    task: OracleTask,
    events: &[TraceEvent],
) -> BTreeMap<(&'static str, u64), String> {
    let mut m = BTreeMap::new();
    for ev in events {
        if ev.layer != TraceLayer::Task {
            continue;
        }
        match (task, ev.kind) {
            (OracleTask::Scrub, "scrub.verify") => {
                if let Some(b) = ev.field_u64("block") {
                    m.insert(("scrub.verify", b), "verified".to_string());
                }
            }
            // A dirtied block's earlier verification is withdrawn: the
            // projection tracks the *final* verified set.
            (OracleTask::Scrub, "scrub.unverify") => {
                if let Some(b) = ev.field_u64("block") {
                    m.remove(&("scrub.verify", b));
                }
            }
            (OracleTask::Backup, "backup.ship") => {
                if let Some(b) = ev.field_u64("block") {
                    m.insert(("backup.ship", b), "shipped".to_string());
                }
            }
            (OracleTask::Defrag, "defrag.reloc") => {
                if let Some(ino) = ev.field_u64("ino") {
                    m.insert(("defrag.reloc", ino), "rewritten".to_string());
                }
            }
            (OracleTask::Rsync, "rsync.send") => {
                if let Some(ino) = ev.field_u64("ino") {
                    m.insert(("rsync.send", ino), "sent".to_string());
                }
            }
            (OracleTask::Gc, "gc.final") => {
                if let (Some(ino), Some(size), Some(mapped)) = (
                    ev.field_u64("ino"),
                    ev.field_u64("size"),
                    ev.field_u64("mapped"),
                ) {
                    m.insert(("gc.final", ino), format!("size={size} mapped={mapped}"));
                }
            }
            _ => {}
        }
    }
    m
}

/// The last effect event for `(kind, entity)` in a stream, paired with
/// the stream it came from (for span-chain resolution).
fn last_effect<'a>(
    events: &'a [TraceEvent],
    kind: &str,
    field: &str,
    entity: u64,
) -> Option<(&'a [TraceEvent], &'a TraceEvent)> {
    events
        .iter()
        .rev()
        .find(|e| {
            e.layer == TraceLayer::Task && e.kind == kind && e.field_u64(field) == Some(entity)
        })
        .map(|e| (events, e))
}

/// Walks an event's enclosing context spans, innermost first.
fn span_chain(events: &[TraceEvent], ev: &TraceEvent) -> Vec<String> {
    let by_span: BTreeMap<u64, &TraceEvent> = events
        .iter()
        .filter_map(|e| e.span.map(|s| (s.0, e)))
        .collect();
    let mut chain = Vec::new();
    let mut cur = ev.parent;
    while let Some(p) = cur {
        let Some(pe) = by_span.get(&p.0) else {
            break;
        };
        chain.push(format!("{}/{}", pe.layer, pe.kind));
        cur = pe.parent;
        if chain.len() >= 16 {
            break; // Defensive bound; context nesting is shallow.
        }
    }
    chain
}

// ----- workload -------------------------------------------------------

/// One deterministic foreground operation. The op list is generated
/// once per `(seed, task)` and applied identically to both runs of a
/// pair, so any state divergence is the task's fault, not the
/// workload's.
#[derive(Debug, Clone, Copy)]
enum WlOp {
    /// Read `pages` pages of file `file` starting at `page`.
    Read { file: usize, page: u64, pages: u64 },
    /// Overwrite `pages` pages of file `file` starting at `page`.
    Write { file: usize, page: u64, pages: u64 },
    /// Flush a batch of dirty pages.
    Writeback,
}

fn gen_ops(rng: &mut SimRng, nfiles: usize, pages_each: u64, writes: bool) -> Vec<WlOp> {
    (0..WORKLOAD_OPS)
        .map(|_| {
            let file = rng.gen_range(0, nfiles as u64) as usize;
            let pages = rng.gen_range(1, 5).min(pages_each);
            let page = rng.gen_range(0, pages_each - pages + 1);
            if writes && rng.gen_range(0, 4) == 0 {
                if rng.gen_range(0, 8) == 0 {
                    WlOp::Writeback
                } else {
                    WlOp::Write { file, page, pages }
                }
            } else {
                WlOp::Read { file, page, pages }
            }
        })
        .collect()
}

/// Applies one workload op to a Btrfs filesystem, recovering from the
/// two injectable failures a foreground application would survive:
/// checksum mismatches (repair-and-retry, as Btrfs does from a good
/// mirror) and exhausted transient-EIO retries (give up on the op).
fn apply_btrfs_op(fs: &mut BtrfsSim, files: &[InodeNr], op: WlOp) -> Result<(), String> {
    let mut attempts = 0;
    loop {
        let r = match op {
            WlOp::Read { file, page, pages } => fs
                .read(
                    files[file],
                    page * PAGE_SIZE,
                    pages * PAGE_SIZE,
                    IoClass::Normal,
                    T0,
                )
                .map(|_| ()),
            WlOp::Write { file, page, pages } => fs
                .write(
                    files[file],
                    page * PAGE_SIZE,
                    pages * PAGE_SIZE,
                    IoClass::Normal,
                    T0,
                )
                .map(|_| ()),
            WlOp::Writeback => fs.background_writeback(32, IoClass::Normal, T0).map(|_| ()),
        };
        match r {
            Ok(()) => return Ok(()),
            Err(SimError::ChecksumMismatch(b)) if attempts < 16 => {
                attempts += 1;
                fs.verify_and_repair(b).map_err(|e| e.to_string())?;
            }
            Err(SimError::TransientIo(_)) => return Ok(()),
            Err(e) => return Err(format!("workload op {op:?} failed: {e}")),
        }
    }
}

// ----- per-task runs --------------------------------------------------

fn hdd(capacity: u64) -> Disk {
    Disk::new(Box::new(HddModel::sas_10k(capacity)))
}

fn run_digest(
    task: OracleTask,
    mode: TaskMode,
    seed: u64,
    plan: &FaultPlan,
    sabotage: bool,
    trace: Option<&TraceHandle>,
) -> Result<(String, u64), String> {
    match task {
        OracleTask::Scrub => run_scrub(mode, seed, plan, sabotage, trace),
        OracleTask::Backup => run_backup(mode, seed, plan, sabotage, trace),
        OracleTask::Defrag => run_defrag(mode, seed, plan, sabotage, trace),
        OracleTask::Rsync => run_rsync(mode, seed, plan, sabotage, trace),
        OracleTask::Gc => run_gc(mode, seed, plan, sabotage, trace),
    }
}

/// Drives a Btrfs task to completion, interleaving workload ops and
/// retrying steps that die on exhausted transient-I/O budgets.
fn drive_btrfs(
    task: &mut dyn BtrfsTask,
    fs: &mut BtrfsSim,
    duet: &mut Duet,
    files: &[InodeNr],
    ops: &[WlOp],
) -> Result<(), String> {
    let mut steps = 0u32;
    let mut op_idx = 0usize;
    let mut retries = 0u32;
    loop {
        if op_idx < ops.len() {
            apply_btrfs_op(fs, files, ops[op_idx])?;
            op_idx += 1;
            pump_btrfs(fs, duet);
        }
        match task.step(BtrfsCtx { fs, duet, now: T0 }) {
            Ok(r) => {
                retries = 0;
                pump_btrfs(fs, duet);
                if r.complete && op_idx >= ops.len() {
                    return Ok(());
                }
            }
            Err(SimError::TransientIo(_)) if retries < 16 => retries += 1,
            Err(SimError::ChecksumMismatch(b)) if retries < 16 => {
                retries += 1;
                fs.verify_and_repair(b).map_err(|e| e.to_string())?;
            }
            Err(e) => return Err(format!("task step failed: {e}")),
        }
        steps += 1;
        if steps > MAX_STEPS {
            return Err("task did not terminate".into());
        }
    }
}

fn run_scrub(
    mode: TaskMode,
    seed: u64,
    plan: &FaultPlan,
    sabotage: bool,
    trace: Option<&TraceHandle>,
) -> Result<(String, u64), String> {
    let mut fs = BtrfsSim::new(DeviceId(0), hdd(1 << 14), 128);
    let mut duet = Duet::with_defaults();
    if let Some(t) = trace {
        fs.set_trace(Some(t.clone()));
        duet.set_trace(Some(t.clone()));
    }
    let mut files = Vec::new();
    for i in 0..4u64 {
        files.push(
            fs.populate_file(fs.root(), &format!("f{i}"), 64 * PAGE_SIZE)
                .map_err(|e| e.to_string())?,
        );
    }
    // Latent corruption for the scrubber to find (and the workload to
    // trip over — its repair-and-retry path is part of the check).
    for b in [BlockNr(3), BlockNr(70), BlockNr(155)] {
        fs.inject_corruption(b).map_err(|e| e.to_string())?;
    }
    let ops = gen_ops(&mut SimRng::new(seed ^ 0x5C0B), 4, 64, true);
    let mut task = Scrubber::new(mode);
    if sabotage {
        task.sabotage_skip_repair();
    }
    let handle = FaultHandle::new(seed, plan.clone());
    fs.set_faults(Some(handle.clone()));
    fs.set_retry_policy(oracle_retry());
    duet.set_faults(Some(handle.clone()));
    task.start(BtrfsCtx {
        fs: &mut fs,
        duet: &mut duet,
        now: T0,
    })
    .map_err(|e| e.to_string())?;
    pump_btrfs(&mut fs, &mut duet);
    drive_btrfs(&mut task, &mut fs, &mut duet, &files, &ops)?;
    task.stop(BtrfsCtx {
        fs: &mut fs,
        duet: &mut duet,
        now: T0,
    })
    .map_err(|e| e.to_string())?;
    // The digest is the verified-block set alone: latent-error faults
    // can corrupt freshly-written blocks at times that differ between
    // the two runs, so the residual corruption count is not part of
    // the task's contract — full scrub coverage is.
    Ok((
        format!("verified={:?}", task.verified_blocks()),
        handle.total_fired(),
    ))
}

fn run_backup(
    mode: TaskMode,
    seed: u64,
    plan: &FaultPlan,
    sabotage: bool,
    trace: Option<&TraceHandle>,
) -> Result<(String, u64), String> {
    let mut fs = BtrfsSim::new(DeviceId(0), hdd(1 << 14), 128);
    let mut duet = Duet::with_defaults();
    if let Some(t) = trace {
        fs.set_trace(Some(t.clone()));
        duet.set_trace(Some(t.clone()));
    }
    let mut files = Vec::new();
    for i in 0..4u64 {
        files.push(
            fs.populate_file(fs.root(), &format!("f{i}"), 32 * PAGE_SIZE)
                .map_err(|e| e.to_string())?,
        );
    }
    let ops = gen_ops(&mut SimRng::new(seed ^ 0xBAC0), 4, 32, true);
    let mut task = Backup::new(mode);
    if sabotage {
        task.sabotage_skip_ship();
    }
    let handle = FaultHandle::new(seed, plan.clone());
    fs.set_faults(Some(handle.clone()));
    fs.set_retry_policy(oracle_retry());
    duet.set_faults(Some(handle.clone()));
    task.start(BtrfsCtx {
        fs: &mut fs,
        duet: &mut duet,
        now: T0,
    })
    .map_err(|e| e.to_string())?;
    pump_btrfs(&mut fs, &mut duet);
    drive_btrfs(&mut task, &mut fs, &mut duet, &files, &ops)?;
    task.stop(BtrfsCtx {
        fs: &mut fs,
        duet: &mut duet,
        now: T0,
    })
    .map_err(|e| e.to_string())?;
    Ok((
        format!("backed={:?} sent={}", task.backed_blocks(), task.sent_bytes),
        handle.total_fired(),
    ))
}

fn run_defrag(
    mode: TaskMode,
    seed: u64,
    plan: &FaultPlan,
    sabotage: bool,
    trace: Option<&TraceHandle>,
) -> Result<(String, u64), String> {
    let mut fs = BtrfsSim::new(DeviceId(0), hdd(1 << 14), 128);
    let mut duet = Duet::with_defaults();
    if let Some(t) = trace {
        fs.set_trace(Some(t.clone()));
        duet.set_trace(Some(t.clone()));
    }
    let mut files = Vec::new();
    for i in 0..4u64 {
        let ino = fs
            .populate_file(fs.root(), &format!("f{i}"), 32 * PAGE_SIZE)
            .map_err(|e| e.to_string())?;
        files.push(ino);
    }
    for &ino in &files[..3] {
        fs.fragment_file(ino, 4).map_err(|e| e.to_string())?;
    }
    // Read-only workload: writes would re-fragment files concurrently
    // with the rewrite, making the final layout timing-dependent.
    let ops = gen_ops(&mut SimRng::new(seed ^ 0xDEF4), 4, 32, false);
    let mut task = Defrag::new(mode);
    if sabotage {
        task.sabotage_skip_files();
    }
    let handle = FaultHandle::new(seed, plan.clone());
    fs.set_faults(Some(handle.clone()));
    fs.set_retry_policy(oracle_retry());
    duet.set_faults(Some(handle.clone()));
    task.start(BtrfsCtx {
        fs: &mut fs,
        duet: &mut duet,
        now: T0,
    })
    .map_err(|e| e.to_string())?;
    pump_btrfs(&mut fs, &mut duet);
    drive_btrfs(&mut task, &mut fs, &mut duet, &files, &ops)?;
    task.stop(BtrfsCtx {
        fs: &mut fs,
        duet: &mut duet,
        now: T0,
    })
    .map_err(|e| e.to_string())?;
    fs.check_consistency()
        .map_err(|e| format!("consistency check failed: {e}"))?;
    let mut layout = Vec::new();
    for &ino in &files {
        layout.push((
            ino.raw(),
            fs.file_extent_count(ino).map_err(|e| e.to_string())?,
        ));
    }
    Ok((
        format!("extents={layout:?} defragged={}", task.files_defragged),
        handle.total_fired(),
    ))
}

fn run_rsync(
    mode: TaskMode,
    seed: u64,
    plan: &FaultPlan,
    sabotage: bool,
    trace: Option<&TraceHandle>,
) -> Result<(String, u64), String> {
    let mut src = BtrfsSim::new(DeviceId(0), hdd(1 << 14), 128);
    let mut dst = BtrfsSim::new(DeviceId(1), hdd(1 << 14), 128);
    let mut duet = Duet::with_defaults();
    if let Some(t) = trace {
        src.set_trace(Some(t.clone()));
        duet.set_trace(Some(t.clone()));
    }
    let docs = src.mkdir(src.root(), "docs").map_err(|e| e.to_string())?;
    let mut files = Vec::new();
    for (i, (parent, pages)) in [(docs, 8u64), (docs, 8), (src.root(), 16), (src.root(), 8)]
        .into_iter()
        .enumerate()
    {
        files.push(
            src.populate_file(parent, &format!("f{i}"), pages * PAGE_SIZE)
                .map_err(|e| e.to_string())?,
        );
    }
    // Read-only workload: concurrent writes would race the sender and
    // make the captured image size timing-dependent.
    let ops = gen_ops(&mut SimRng::new(seed ^ 0x55C1), 4, 8, false);
    let mut task = Rsync::new(mode, src.root());
    if sabotage {
        task.sabotage_skip_files();
    }
    let handle = FaultHandle::new(seed, plan.clone());
    src.set_faults(Some(handle.clone()));
    src.set_retry_policy(oracle_retry());
    dst.set_retry_policy(oracle_retry());
    duet.set_faults(Some(handle.clone()));
    task.start(RsyncCtx {
        src: &mut src,
        dst: &mut dst,
        duet: &mut duet,
        now: T0,
    })
    .map_err(|e| e.to_string())?;
    pump_btrfs(&mut src, &mut duet);
    let mut steps = 0u32;
    let mut op_idx = 0usize;
    let mut retries = 0u32;
    loop {
        if op_idx < ops.len() {
            apply_btrfs_op(&mut src, &files, ops[op_idx])?;
            op_idx += 1;
            pump_btrfs(&mut src, &mut duet);
        }
        match task.step(RsyncCtx {
            src: &mut src,
            dst: &mut dst,
            duet: &mut duet,
            now: T0,
        }) {
            Ok(r) => {
                retries = 0;
                pump_btrfs(&mut src, &mut duet);
                if r.complete && op_idx >= ops.len() {
                    break;
                }
            }
            Err(SimError::TransientIo(_)) if retries < 16 => retries += 1,
            Err(SimError::ChecksumMismatch(b)) if retries < 16 => {
                retries += 1;
                src.verify_and_repair(b).map_err(|e| e.to_string())?;
            }
            Err(e) => return Err(format!("task step failed: {e}")),
        }
        steps += 1;
        if steps > MAX_STEPS {
            return Err("task did not terminate".into());
        }
    }
    dst.check_consistency()
        .map_err(|e| format!("dst consistency check failed: {e}"))?;
    let mut image = Vec::new();
    for ino in dst.inodes().files_by_inode() {
        let path = dst.path_of(ino).map_err(|e| e.to_string())?;
        let pages = dst
            .inodes()
            .get(ino)
            .map_err(|e| e.to_string())?
            .size_pages();
        image.push((path, pages));
    }
    image.sort();
    Ok((format!("image={image:?}"), handle.total_fired()))
}

fn run_gc(
    mode: TaskMode,
    seed: u64,
    plan: &FaultPlan,
    sabotage: bool,
    trace: Option<&TraceHandle>,
) -> Result<(String, u64), String> {
    let mut fs = F2fsSim::new(DeviceId(1), hdd(256), 64, 8);
    let mut duet = Duet::with_defaults();
    if let Some(t) = trace {
        fs.set_trace(Some(t.clone()));
        duet.set_trace(Some(t.clone()));
    }
    let mut files = Vec::new();
    for i in 0..4u64 {
        files.push(
            fs.populate_file(&format!("f{i}"), 8 * PAGE_SIZE)
                .map_err(|e| e.to_string())?,
        );
    }
    let mut rng = SimRng::new(seed ^ 0x6C6C);
    let ops = gen_ops(&mut rng, 4, 8, true);
    let mut task = GarbageCollector::new(mode, VictimPolicy::Greedy).with_window(32);
    if sabotage {
        task.sabotage_lose_block();
    }
    let handle = FaultHandle::new(seed, plan.clone());
    fs.set_faults(Some(handle.clone()));
    fs.set_retry_policy(oracle_retry());
    duet.set_faults(Some(handle.clone()));
    task.start(GcCtx {
        fs: &mut fs,
        duet: &mut duet,
        now: T0,
    })
    .map_err(|e| e.to_string())?;
    pump_f2fs(&mut fs, &mut duet);
    for &op in &ops {
        // The F2fs workload: writes invalidate log blocks, periodic
        // writeback retires dirty pages, cleaning runs every few ops.
        let mut attempts = 0;
        loop {
            let r = match op {
                WlOp::Read { file, page, pages } => fs
                    .read(
                        files[file],
                        page * PAGE_SIZE,
                        pages * PAGE_SIZE,
                        IoClass::Normal,
                        T0,
                    )
                    .map(|_| ()),
                WlOp::Write { file, page, pages } => fs
                    .write(
                        files[file],
                        page * PAGE_SIZE,
                        pages * PAGE_SIZE,
                        IoClass::Normal,
                        T0,
                    )
                    .map(|_| ()),
                WlOp::Writeback => fs.background_writeback(16, IoClass::Normal, T0).map(|_| ()),
            };
            match r {
                Ok(()) => break,
                Err(SimError::TransientIo(_)) if attempts < 16 => attempts += 1,
                Err(e) => return Err(format!("workload op {op:?} failed: {e}")),
            }
        }
        pump_f2fs(&mut fs, &mut duet);
        let mut retries = 0;
        loop {
            match task.step(GcCtx {
                fs: &mut fs,
                duet: &mut duet,
                now: T0,
            }) {
                Ok(_) => break,
                Err(SimError::TransientIo(_)) if retries < 16 => retries += 1,
                Err(e) => return Err(format!("gc step failed: {e}")),
            }
        }
        pump_f2fs(&mut fs, &mut duet);
    }
    fs.check_consistency()
        .map_err(|e| format!("consistency check failed: {e}"))?;
    let mut state = Vec::new();
    for ino in fs.files() {
        let size = fs.size_of(ino).map_err(|e| e.to_string())?;
        let pages = size.div_ceil(PAGE_SIZE);
        let mapped = (0..pages).all(|p| {
            fs.mapping_of(ino, sim_core::PageIndex(p))
                .map(|b| fs.is_valid(b))
                .unwrap_or(false)
        });
        state.push((ino.raw(), size, mapped));
    }
    // "The notion of completed work does not apply to the garbage
    // collector" (§5.4): there is no per-item effect to trace during
    // the run, so the localizer's effect vocabulary for GC is the
    // final logical file state, emitted here as synthetic events.
    if let Some(t) = fs.trace() {
        for &(ino, size, mapped) in &state {
            t.event(TraceLayer::Task, "gc.final", T0, || {
                vec![
                    ("ino", ino.into()),
                    ("size", size.into()),
                    ("mapped", u64::from(mapped).into()),
                ]
            });
        }
    }
    Ok((format!("files={state:?}"), handle.total_fired()))
}

// ----- error-vocabulary exerciser ------------------------------------

/// Drives deliberate API misuse and forced faults against small
/// fixtures, returning the set of [`SimError`] labels observed. The
/// choice and order of probes is itself fault-driven (the
/// [`FaultSite::ApiChaos`] stream), and the fault matrix asserts the
/// result covers [`SimError::ALL_LABELS`] — i.e. every error variant in
/// the vocabulary is constructible and observable.
pub fn exercise_error_vocabulary(seed: u64) -> BTreeSet<&'static str> {
    let chaos = FaultHandle::new(
        seed,
        FaultPlan::quiet().with_ppm(FaultSite::ApiChaos, 1_000_000),
    );
    let nprobes = 13u64;
    let mut seen: BTreeSet<&'static str> = BTreeSet::new();
    // Each round the chaos stream picks one probe; a few extra rounds
    // guarantee coverage regardless of the draw order.
    let mut remaining: BTreeSet<u64> = (0..nprobes).collect();
    let mut rounds = 0;
    while !remaining.is_empty() && rounds < 1024 {
        rounds += 1;
        if !chaos.fire(FaultSite::ApiChaos) {
            continue;
        }
        let pick = chaos.amplitude(FaultSite::ApiChaos, 0, nprobes);
        let probe = if remaining.contains(&pick) {
            remaining.take(&pick).unwrap_or(pick)
        } else {
            match remaining.iter().next().copied() {
                Some(p) => {
                    remaining.remove(&p);
                    p
                }
                None => break,
            }
        };
        if let Some(err) = run_probe(probe, seed) {
            seen.insert(err.label());
        }
    }
    seen
}

/// Runs one misuse probe and returns the error it produced.
fn run_probe(probe: u64, seed: u64) -> Option<SimError> {
    match probe {
        0 => {
            // NoSuchInode: read a file that was never created.
            let mut fs = BtrfsSim::new(DeviceId(0), hdd(64), 16);
            fs.read(InodeNr(4242), 0, PAGE_SIZE, IoClass::Normal, T0)
                .err()
        }
        1 => {
            // NoSuchPath: resolve a missing path.
            let fs = BtrfsSim::new(DeviceId(0), hdd(64), 16);
            fs.resolve("/missing").err()
        }
        2 => {
            // NotADirectory: create a child under a regular file.
            let mut fs = BtrfsSim::new(DeviceId(0), hdd(64), 16);
            let f = fs.create_file(fs.root(), "plain").ok()?;
            fs.create_file(f, "child").err()
        }
        3 => {
            // AlreadyExists: duplicate name in one directory.
            let mut fs = BtrfsSim::new(DeviceId(0), hdd(64), 16);
            fs.create_file(fs.root(), "dup").ok()?;
            fs.create_file(fs.root(), "dup").err()
        }
        4 => {
            // BlockOutOfRange: submit I/O past the end of the device.
            let mut disk = hdd(64);
            let req = IoRequest::new(IoKind::Read, BlockNr(60), 8, IoClass::Normal);
            disk.try_submit(&req, T0).err()
        }
        5 => {
            // NoSpace: populate more data than the device holds.
            let mut fs = BtrfsSim::new(DeviceId(0), hdd(16), 16);
            fs.populate_file(fs.root(), "big", 32 * PAGE_SIZE).err()
        }
        6 => {
            // ChecksumMismatch: verify an injected corruption.
            let mut fs = BtrfsSim::new(DeviceId(0), hdd(64), 16);
            fs.populate_file(fs.root(), "f", 4 * PAGE_SIZE).ok()?;
            fs.inject_corruption(BlockNr(1)).ok()?;
            fs.blocks().verify_checksum(BlockNr(1)).err()
        }
        7 => {
            // TransientIo: certain EIO with a single-attempt budget.
            let mut disk = hdd(64);
            disk.set_faults(Some(FaultHandle::new(
                seed,
                FaultPlan::quiet().with_ppm(FaultSite::DiskTransientIo, 1_000_000),
            )));
            let req = IoRequest::new(IoKind::Read, BlockNr(0), 1, IoClass::Normal);
            disk.try_submit(&req, T0).err()
        }
        8 => {
            // InvalidSession: fetch on a never-registered session.
            let mut duet = Duet::with_defaults();
            let fs = BtrfsSim::new(DeviceId(0), hdd(64), 16);
            duet.fetch(SessionId(13), 8, &fs).err()
        }
        9 => {
            // TooManySessions: forced slot exhaustion on register.
            let mut duet = Duet::with_defaults();
            duet.set_faults(Some(FaultHandle::new(
                seed,
                FaultPlan::quiet().with_ppm(FaultSite::DuetSessionExhaustion, 1_000_000),
            )));
            let fs = BtrfsSim::new(DeviceId(0), hdd(64), 16);
            duet.register(
                TaskScope::Block {
                    device: fs.device(),
                },
                EventMask::ADDED,
                &fs,
            )
            .err()
        }
        10 => {
            // PathNotAvailable: forced stale-hint failure on get_path.
            let mut duet = Duet::with_defaults();
            let mut fs = BtrfsSim::new(DeviceId(0), hdd(64), 16);
            let f = fs.create_file(fs.root(), "f").ok()?;
            let sid = duet
                .register(
                    TaskScope::File {
                        registered_dir: fs.root(),
                    },
                    EventMask::EXISTS,
                    &fs,
                )
                .ok()?;
            duet.set_faults(Some(FaultHandle::new(
                seed,
                FaultPlan::quiet().with_ppm(FaultSite::DuetPathUnavailable, 1_000_000),
            )));
            duet.get_path(sid, f, &fs).err()
        }
        11 => {
            // Unsupported: get_path on a block-scope session.
            let mut duet = Duet::with_defaults();
            let mut fs = BtrfsSim::new(DeviceId(0), hdd(64), 16);
            let f = fs.create_file(fs.root(), "f").ok()?;
            let sid = duet
                .register(
                    TaskScope::Block {
                        device: fs.device(),
                    },
                    EventMask::ADDED,
                    &fs,
                )
                .ok()?;
            duet.get_path(sid, f, &fs).err()
        }
        12 => {
            // InvalidArgument: malformed fault-plan spec.
            FaultPlan::parse("definitely-not-a-site=1").err()
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_pair_matches_for_every_task() {
        let plan = FaultPlan::quiet();
        for task in OracleTask::ALL {
            let report = check_pair(task, 0x0DDB411, &plan)
                .unwrap_or_else(|e| panic!("{} diverged under quiet plan:\n{e}", task.name()));
            assert!(!report.digest.is_empty());
        }
    }

    #[test]
    fn sabotaged_scrubber_is_caught() {
        let err = check_pair_with(OracleTask::Scrub, 0xBAD5EED, &FaultPlan::quiet(), true)
            .expect_err("skip-repair defect must diverge");
        assert!(err.contains("replay:"), "failure must be replayable: {err}");
        assert!(err.contains("DUET_FAULT_SEED=0xbad5eed"), "{err}");
    }

    #[test]
    fn error_vocabulary_is_fully_observable() {
        let seen = exercise_error_vocabulary(0xE44);
        for label in SimError::ALL_LABELS {
            assert!(seen.contains(label), "no probe produced {label}");
        }
    }
}
