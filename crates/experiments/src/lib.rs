//! The evaluation harness: wires the simulated storage stack, the Duet
//! framework, the maintenance tasks and the foreground workload into
//! complete experiment runs, and computes the paper's metrics.
//!
//! - [`config`]: what to run (device, file set, workload, tasks,
//!   scheduling policy, window);
//! - [`runner`]: the virtual-time execution loops —
//!   [`runner::run_experiment`] for the Btrfs tasks (Figures 2, 3, 5–8,
//!   10 and Table 5), [`runner::run_rsync_experiment`] for Figure 4,
//!   [`runner::run_gc_experiment`] for Table 6;
//! - [`metrics`]: the Table 4 metrics — *I/O saved*, *maximum
//!   utilization* and *speedup*;
//! - [`presets`]: scaled-down versions of the paper's 50 GB / 300 GB /
//!   2 GB / 30-minute setup that keep its ratios;
//! - [`profile`]: the §6.1.2 unthrottled profiling pass and its memo
//!   ([`profile::ProfileCache`]), used by the sweep drivers to seed the
//!   workload throttle once per workload shape instead of
//!   re-calibrating in every cell.

pub mod config;
pub mod golden;
pub mod metrics;
pub mod oracle;
pub mod presets;
pub mod profile;
pub mod runner;
pub mod snapshot;

pub use config::{DeviceKind, ExperimentConfig, TaskKind};
pub use metrics::{max_utilization, speedup, ExperimentResult, TaskOutcome};
pub use oracle::{
    check_pair, check_pair_with, exercise_error_vocabulary, localize_pair, Divergence,
    OracleReport, OracleTask,
};
pub use presets::paper_scaled;
pub use profile::{
    profile_unthrottled, run_completion_probe_cached, run_experiment_cached,
    run_experiment_cached_traced, ProfileCache, ProfileKey,
};
pub use runner::{
    run_experiment,
    run_experiment_traced,
    run_gc_experiment,
    run_gc_experiment_traced,
    run_rsync_experiment,
    run_rsync_experiment_traced,
    GcExperimentConfig,
    GcResult,
    RsyncResult, //
};
pub use snapshot::PreparedStack;

#[cfg(test)]
mod runner_tests;
