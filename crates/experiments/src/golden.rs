//! Golden serialization of experiment results.
//!
//! The determinism tests pin these strings against committed fixtures
//! (`tests/fixtures/`), so the serialization itself is part of the
//! golden contract: floats are rendered from their bit patterns, never
//! through display rounding, and every observable field is included.
//! The `dump_golden` bench binary regenerates the fixtures with the
//! exact same code path (see DESIGN.md §12 for the re-baselining
//! procedure).

use crate::metrics::ExperimentResult;
use crate::runner::RsyncResult;

/// Serializes every observable field of a result, exactly. Floats are
/// rendered from their bit patterns so the comparison cannot be fooled
/// by display rounding.
pub fn golden_csv(r: &ExperimentResult) -> String {
    let mut out = String::new();
    out.push_str("field,value\n");
    out.push_str(&format!("duration,{:?}\n", r.duration));
    out.push_str(&format!(
        "achieved_util,{:016x}\n",
        r.achieved_util.to_bits()
    ));
    out.push_str(&format!("workload_ops,{}\n", r.workload_ops));
    out.push_str(&format!("maintenance_blocks,{}\n", r.maintenance_blocks));
    out.push_str(&format!("maintenance_busy,{:?}\n", r.maintenance_busy));
    out.push_str(&format!("foreground_blocks,{}\n", r.foreground_blocks));
    out.push_str(&format!(
        "workload_latency_ms,{:016x},{:016x}\n",
        r.workload_latency_ms.0.to_bits(),
        r.workload_latency_ms.1.to_bits()
    ));
    out.push_str(&format!("duet_peak_memory,{}\n", r.duet_peak_memory));
    if let Some(s) = &r.duet_stats {
        out.push_str(&format!(
            "duet_stats,{},{},{},{},{}\n",
            s.events_processed,
            s.events_dropped,
            s.fetch_calls,
            s.items_fetched,
            s.peak_descriptors
        ));
    }
    for t in &r.tasks {
        out.push_str(&format!(
            "task,{},{},{},{},{},{},{},{:?}\n",
            t.name,
            t.metrics.total_units,
            t.metrics.done_units,
            t.metrics.saved_units,
            t.metrics.blocks_read,
            t.metrics.blocks_written,
            t.completed,
            t.completion_time
        ));
    }
    out
}

/// One-line golden serialization of an rsync run.
pub fn golden_rsync_line(r: &RsyncResult) -> String {
    format!(
        "{:?},{},{},{},{},{}",
        r.completion,
        r.metrics.total_units,
        r.metrics.done_units,
        r.metrics.saved_units,
        r.metrics.blocks_read,
        r.metrics.blocks_written
    )
}

/// 128-bit FNV-1a digest, hex-rendered. Used to pin large byte streams
/// (the trace JSONL) in a small fixture file without committing
/// megabytes of events.
pub fn fnv128_hex(bytes: &[u8]) -> String {
    // Two independent 64-bit FNV-1a passes (distinct offset bases)
    // rendered side by side: collisions would need to defeat both.
    let mut a: u64 = 0xcbf29ce484222325;
    let mut b: u64 = 0x811c9dc5a54c2a3d;
    for &x in bytes {
        a = (a ^ x as u64).wrapping_mul(0x100000001b3);
        b = (b ^ (x as u64).rotate_left(17)).wrapping_mul(0x100000001b3);
    }
    format!("{a:016x}{b:016x}")
}

/// Scripted page-cache op mix, serialized event by event. Every
/// observable of the cache — returned evictions, emitted events,
/// statistics, residency counters — is rendered in order, so the log
/// pins the exact hook sequence Duet would see. Used to prove the
/// O(1) container migration byte-identical to the B-tree cache.
pub fn cache_event_log(seed: u64, ops: u64) -> String {
    use sim_cache::{PageCache, PageKey};
    use sim_core::{BlockNr, InodeNr, PageIndex, SimRng};
    let mut rng = SimRng::new(seed);
    let mut c = PageCache::new(64);
    let mut out = String::new();
    let meta_str = |m: &sim_cache::PageMeta| {
        format!(
            "{}:{}:{}:{}",
            m.key.ino.raw(),
            m.key.index.raw(),
            m.block.map(|b| b.raw() as i64).unwrap_or(-1),
            m.dirty
        )
    };
    for op in 0..ops {
        let ino = InodeNr(rng.gen_range(0, 12));
        let idx = PageIndex(rng.gen_range(0, 16));
        let k = PageKey::new(ino, idx);
        match rng.gen_range(0, 10) {
            0..=2 => {
                let dirty = rng.gen_range(0, 3) == 0;
                let block = if rng.gen_range(0, 2) == 0 {
                    Some(BlockNr(rng.gen_range(0, 4096)))
                } else {
                    None
                };
                let ev = c.insert(k, block, dirty);
                out.push_str(&format!("insert {}", ev.len()));
                for m in &ev {
                    out.push_str(&format!(" {}", meta_str(m)));
                }
                out.push('\n');
            }
            3..=4 => {
                out.push_str(&format!(
                    "lookup {}\n",
                    c.lookup(k).as_ref().map(meta_str).unwrap_or("-".into())
                ));
            }
            5 => {
                out.push_str(&format!("dirty {}\n", c.mark_dirty(k)));
            }
            6 => {
                let batch = c.writeback_batch(rng.gen_range(1, 8) as usize);
                out.push_str(&format!("writeback {}", batch.len()));
                for m in &batch {
                    out.push_str(&format!(" {}", meta_str(m)));
                }
                out.push('\n');
            }
            7 => {
                let fl = c.flush_file(ino);
                out.push_str(&format!("flush_file {}", fl.len()));
                for m in &fl {
                    out.push_str(&format!(" {}", meta_str(m)));
                }
                out.push('\n');
            }
            8 => {
                if rng.gen_range(0, 4) == 0 {
                    let rm = c.remove_file(ino);
                    out.push_str(&format!("remove_file {}\n", rm.len()));
                } else {
                    out.push_str(&format!(
                        "remove {}\n",
                        c.remove(k).as_ref().map(meta_str).unwrap_or("-".into())
                    ));
                }
            }
            _ => {
                // Advisory protection over a pseudo-random slice, then
                // an insert that may have to respect it.
                let base = rng.gen_range(0, 12);
                c.set_protected(
                    (0..8).map(|i| PageKey::new(InodeNr(base), PageIndex(i))),
                    16,
                );
                out.push_str(&format!("protect {}\n", c.protected_len()));
            }
        }
        if op % 16 == 0 {
            let evs = c.drain_events();
            out.push_str(&format!("drain {}", evs.len()));
            for (m, e) in &evs {
                out.push_str(&format!(" {}={:?}", meta_str(m), e));
            }
            out.push('\n');
            let resident: Vec<String> = c.iter().map(|m| meta_str(&m)).collect();
            out.push_str(&format!("iter {}\n", resident.join(" ")));
        }
    }
    let s = c.stats();
    out.push_str(&format!(
        "stats {} {} {} {} {}\n",
        s.hits, s.misses, s.insertions, s.evictions, s.writebacks
    ));
    out
}

/// Scripted priority-queue op mix: upserts, removes and pops with
/// plenty of priority ties, serialized pop by pop. Pins the documented
/// tie-break order (max priority, ties by largest key) across the
/// B-tree → binary-heap migration.
pub fn prioqueue_pop_log(seed: u64, ops: u64) -> String {
    use duet::PrioQueue;
    use sim_core::SimRng;
    let mut rng = SimRng::new(seed);
    let mut q: PrioQueue<u64, u64> = PrioQueue::new();
    let mut out = String::new();
    for _ in 0..ops {
        let k = rng.gen_range(0, 48);
        match rng.gen_range(0, 5) {
            0..=2 => {
                // Few distinct priorities → frequent ties.
                let p = rng.gen_range(0, 6);
                out.push_str(&format!("upsert {k} {p} {:?}\n", q.upsert(k, p)));
            }
            3 => {
                out.push_str(&format!("remove {k} {:?}\n", q.remove(k)));
            }
            _ => {
                out.push_str(&format!("pop {:?} peek {:?}\n", q.pop_max(), q.peek_max()));
            }
        }
    }
    let rest: Vec<String> = q.iter_desc().map(|(k, p)| format!("{k}:{p}")).collect();
    out.push_str(&format!("iter_desc {}\n", rest.join(" ")));
    while let Some((k, p)) = q.pop_max() {
        out.push_str(&format!("drain {k} {p}\n"));
    }
    out
}

/// Scripted extent-map op mix: overlapping `map_range` COW updates,
/// `unmap_range` holes, FIBMAP translations and full clears, serialized
/// op by op with every observable — displaced/unmapped physical blocks,
/// extent count, mapped pages and the full in-order extent list. Pins
/// the split/trim/merge behaviour of the `BTreeMap` → `DOrdMap`
/// migration byte for byte.
pub fn extent_oplog(seed: u64, ops: u64) -> String {
    use sim_btrfs::{ExtentMap, Run};
    use sim_core::{BlockNr, PageIndex, SimRng};
    let mut rng = SimRng::new(seed);
    let mut m = ExtentMap::new();
    let mut next_block: u64 = 0;
    let mut out = String::new();
    let blocks_str = |blocks: &[BlockNr]| {
        blocks
            .iter()
            .map(|b| b.raw().to_string())
            .collect::<Vec<_>>()
            .join(",")
    };
    for op in 0..ops {
        // Small logical space so updates overlap constantly, exercising
        // splits and trims on both edges.
        let start = rng.gen_range(0, 96);
        match rng.gen_range(0, 10) {
            0..=4 => {
                // COW write: one to three fresh runs of 1..8 pages.
                let nruns = rng.gen_range(1, 4);
                let mut runs = Vec::new();
                for _ in 0..nruns {
                    let len = rng.gen_range(1, 8);
                    runs.push(Run {
                        start: BlockNr(next_block),
                        len,
                    });
                    next_block += len;
                }
                let total: u64 = runs.iter().map(|r| r.len).sum();
                let displaced = m.map_range(start, &runs);
                out.push_str(&format!(
                    "map {start}+{total} displaced {}\n",
                    blocks_str(&displaced)
                ));
            }
            5..=6 => {
                let len = rng.gen_range(1, 16);
                let unmapped = m.unmap_range(start, len);
                out.push_str(&format!(
                    "unmap {start}+{len} freed {}\n",
                    blocks_str(&unmapped)
                ));
            }
            7..=8 => {
                let got = m
                    .block_of(PageIndex(start))
                    .map(|b| b.raw().to_string())
                    .unwrap_or("-".into());
                out.push_str(&format!("fibmap {start} {got}\n"));
            }
            _ => {
                if rng.gen_range(0, 24) == 0 {
                    let cleared = m.clear();
                    out.push_str(&format!("clear freed {}\n", blocks_str(&cleared)));
                } else {
                    out.push_str(&format!(
                        "count {} pages {}\n",
                        m.extent_count(),
                        m.mapped_pages()
                    ));
                }
            }
        }
        if op % 32 == 0 {
            let exts: Vec<String> = m
                .iter()
                .map(|e| format!("{}@{}+{}", e.logical, e.physical.raw(), e.len))
                .collect();
            out.push_str(&format!("iter {}\n", exts.join(" ")));
        }
    }
    out.push_str(&format!(
        "final count {} pages {}\n",
        m.extent_count(),
        m.mapped_pages()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extent_oplog_is_seed_deterministic() {
        let a = extent_oplog(7, 256);
        let b = extent_oplog(7, 256);
        let c = extent_oplog(8, 256);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.contains("map "), "op mix reaches map_range");
        assert!(a.contains("unmap "), "op mix reaches unmap_range");
    }

    #[test]
    fn digest_is_stable_and_input_sensitive() {
        let d1 = fnv128_hex(b"hello");
        let d2 = fnv128_hex(b"hello");
        let d3 = fnv128_hex(b"hellp");
        assert_eq!(d1, d2);
        assert_ne!(d1, d3);
        assert_eq!(d1.len(), 32);
    }
}
