//! The experiment runner: interleaves the foreground workload with
//! maintenance task steps in virtual time.
//!
//! The runner reproduces the paper's execution regime (§6.1.3): the
//! workload issues foreground operations on its throttle schedule, and
//! maintenance tasks run "at Idle priority... serviced only after the
//! device has remained idle for some time" — i.e. a task step is
//! dispatched only when the scheduling policy allows it, in the gaps
//! the workload leaves. Rsync is the exception (§6.2): it runs at
//! normal priority, head-to-head with an unthrottled workload.

use crate::config::{DeviceKind, ExperimentConfig, TaskKind};
use crate::metrics::{since_epoch, ExperimentResult, TaskOutcome};
use duet::Duet;
use duet_tasks::{
    pump_btrfs,
    pump_f2fs,
    Backup,
    BtrfsCtx,
    BtrfsTask,
    Defrag,
    GarbageCollector,
    GcCtx,
    Rsync,
    RsyncCtx,
    Scrubber,
    TaskMode, //
};
use sim_btrfs::BtrfsSim;
use sim_core::trace::TraceHandle;
use sim_core::{SimDuration, SimInstant, SimResult};
use sim_disk::{Disk, HddModel, IoClass, SchedulerPolicy, SsdModel};
use sim_f2fs::{F2fsSim, VictimPolicy};
use workloads::{populate_fileset, Workload, WorkloadFs};

/// Dirty pages beyond this fraction of the cache force writeback.
const WB_HIGH_FRACTION: usize = 8; // 1/8 of the cache
/// Background flusher period.
const WB_PERIOD: SimDuration = SimDuration::from_secs(1);
/// Pages per writeback batch.
const WB_BATCH: usize = 1024;

pub(crate) fn build_disk(kind: DeviceKind, capacity: u64) -> Disk {
    match kind {
        DeviceKind::Hdd => Disk::new(Box::new(HddModel::sas_10k(capacity))),
        DeviceKind::Ssd => Disk::new(Box::new(SsdModel::intel_510(capacity))),
    }
}

fn build_task(kind: TaskKind, mode: TaskMode, cfg: &ExperimentConfig) -> Box<dyn BtrfsTask> {
    match kind {
        TaskKind::Scrub => Box::new(Scrubber::new(mode)),
        TaskKind::Backup => Box::new(Backup::new(mode)),
        TaskKind::Defrag => {
            // On an aged (scattered) filesystem every file carries a few
            // extents from relocation; "fragmented" means worse than
            // that baseline, so only the explicitly fragmented files
            // (the paper's 10 %) count as defragmentation work.
            let threshold = if cfg.scatter_layout { 4 } else { 1 };
            let mut d = Defrag::new(mode).with_threshold(threshold);
            if cfg.defrag_file_granularity {
                d = d.with_file_granularity();
            }
            Box::new(d)
        }
    }
}

/// Flushes dirty pages when due; returns the updated last-writeback
/// time.
fn maybe_writeback(
    fs: &mut BtrfsSim,
    duet: &mut Duet,
    now: SimInstant,
    last_wb: SimInstant,
) -> SimResult<SimInstant> {
    let due = fs.dirty_pages() > fs.cache().capacity() / WB_HIGH_FRACTION
        || (now.saturating_duration_since(last_wb) >= WB_PERIOD && fs.dirty_pages() > 0);
    if due {
        fs.background_writeback(WB_BATCH, IoClass::Normal, now)?;
        pump_btrfs(fs, duet);
        Ok(now)
    } else {
        Ok(last_wb)
    }
}

/// Runs one Btrfs-model experiment to completion of the window (or of
/// all maintenance work, when there is no foreground workload).
pub fn run_experiment(cfg: &ExperimentConfig) -> SimResult<ExperimentResult> {
    run_experiment_seeded(cfg, None, None)
}

/// [`run_experiment`] with structured tracing armed on the whole stack
/// (disk, cache, filesystem, Duet, tasks) for the duration of the
/// measurement window. The caller owns the handle: read
/// [`TraceHandle::counters`] or dump JSONL/Chrome after the run. With
/// `None` this is exactly [`run_experiment`] — the results are
/// byte-identical either way (tracing never touches simulated state).
pub fn run_experiment_traced(
    cfg: &ExperimentConfig,
    trace: Option<&TraceHandle>,
) -> SimResult<ExperimentResult> {
    run_experiment_seeded(cfg, None, trace)
}

/// [`run_experiment`] with an optional profiled busy-per-op seed for
/// the workload throttle (see [`crate::profile`]). `None` preserves the
/// legacy bootstrap-from-first-op behaviour exactly.
pub(crate) fn run_experiment_seeded(
    cfg: &ExperimentConfig,
    profiled_busy_per_op: Option<f64>,
    trace: Option<&TraceHandle>,
) -> SimResult<ExperimentResult> {
    run_experiment_inner(cfg, profiled_busy_per_op, trace, false)
}

/// Answers "does every maintenance task complete within the window?"
/// without simulating past the answer: the virtual-time loop stops the
/// moment the last task completes (or at the window end, whichever is
/// first). Up to that instant the simulation is step-for-step identical
/// to [`run_experiment_seeded`] — completion times are decided by then,
/// so the returned bit is exactly `all_completed()` of the full run.
/// Only the completion bit is valid; utilization/latency metrics cover
/// a truncated window, which is why this returns `bool` and not an
/// [`ExperimentResult`]. Bisection drivers ([`crate::max_utilization`])
/// probe with this and skip the dead tail of every completing run.
pub(crate) fn run_completion_probe_seeded(
    cfg: &ExperimentConfig,
    profiled_busy_per_op: Option<f64>,
    trace: Option<&TraceHandle>,
) -> SimResult<bool> {
    Ok(run_experiment_inner(cfg, profiled_busy_per_op, trace, true)?.all_completed())
}

fn run_experiment_inner(
    cfg: &ExperimentConfig,
    profiled_busy_per_op: Option<f64>,
    trace: Option<&TraceHandle>,
    stop_when_tasks_done: bool,
) -> SimResult<ExperimentResult> {
    // Setup prefix (population, layout aging, event drain, metric
    // reset): forked from a warm per-thread snapshot when an identical
    // prefix was already built, rebuilt from scratch otherwise — the
    // two are byte-identical (see [`crate::snapshot`]).
    let crate::snapshot::PreparedStack {
        mut fs,
        mut duet,
        mut workload,
    } = crate::snapshot::obtain(cfg)?;
    // Per-cell throttle knobs the shared prefix deliberately excludes;
    // neither is read during setup, so applying them after the fork is
    // indistinguishable from applying them before it.
    if let Some(w) = workload.as_mut() {
        if let Some(wcfg) = cfg.workload {
            w.set_target_util(wcfg.target_util);
        }
        if let Some(ns) = profiled_busy_per_op {
            w.seed_busy_per_op(ns);
        }
    }
    // Arm tracing only now: population and aging are setup, not the
    // measured window (mirroring the metric reset in the prefix).
    if trace.is_some() {
        fs.set_trace(trace.cloned());
        duet.set_trace(trace.cloned());
    }

    // Task setup (Duet registration scans run here).
    let mode = if cfg.duet {
        TaskMode::Duet
    } else {
        TaskMode::Baseline
    };
    let mut tasks: Vec<Box<dyn BtrfsTask>> = cfg
        .tasks
        .iter()
        .map(|&k| build_task(k, mode, cfg))
        .collect();
    for t in tasks.iter_mut() {
        t.start(BtrfsCtx {
            fs: &mut fs,
            duet: &mut duet,
            now: SimInstant::EPOCH,
        })?;
        pump_btrfs(&mut fs, &mut duet);
    }

    // Main loop.
    let end = cfg.end();
    let mut now = SimInstant::EPOCH;
    let mut last_wb = now;
    let mut last_poll = now;
    let mut last_protect = now;
    let mut completion: Vec<Option<SimInstant>> = vec![None; tasks.len()];
    let mut rr = 0usize; // Round-robin cursor over incomplete tasks.
    let mut peak_memory = 0u64;
    let mut iter = 0u64;
    while now < end {
        iter += 1;
        if iter.is_multiple_of(256) && cfg.duet {
            peak_memory = peak_memory.max(duet.memory_bytes());
        }
        last_wb = maybe_writeback(&mut fs, &mut duet, now, last_wb)?;
        // Periodic hint polling (CPU-only, independent of disk state);
        // the paper's tasks fetch every 10–40 ms (§6.4).
        if now.saturating_duration_since(last_poll) >= cfg.poll_period {
            for (i, t) in tasks.iter_mut().enumerate() {
                if completion[i].is_none() {
                    t.poll(BtrfsCtx {
                        fs: &mut fs,
                        duet: &mut duet,
                        now,
                    })?;
                }
            }
            last_poll = now;
        }
        // Informed replacement: the *framework* (not the tasks) refreshes
        // the advisory protection set from still-pending notifications on
        // its own fast cadence — in the kernel this would happen in the
        // event hooks themselves.
        if cfg.informed_replacement
            && now.saturating_duration_since(last_protect) >= SimDuration::from_millis(10)
        {
            let max = cfg.cache_pages / 4;
            let pending = duet.pending_pages(max);
            fs.cache_mut().set_protected(pending, max);
            last_protect = now;
        }
        // Foreground operation due?
        let next_wl = workload.as_ref().map(|w| w.next_op_time());
        if next_wl.is_some_and(|t| t <= now) {
            if let Some(w) = workload.as_mut() {
                w.run_op(&mut fs, now)?;
                pump_btrfs(&mut fs, &mut duet);
            }
            continue;
        }
        // Maintenance dispatch in the idle gap. Incomplete tasks are
        // counted (and the round-robin pick indexed) in place — this
        // runs every non-workload iteration, so no per-iteration
        // allocation.
        let n_incomplete = completion.iter().filter(|c| c.is_none()).count();
        let device_free = fs.disk().busy_until();
        if n_incomplete > 0
            && fs.disk().is_idle_at(now)
            && cfg
                .policy
                .may_dispatch_maintenance(now, device_free, next_wl)
        {
            let mut nth = rr % n_incomplete;
            let mut i = 0;
            for (t, c) in completion.iter().enumerate() {
                if c.is_none() {
                    i = t;
                    if nth == 0 {
                        break;
                    }
                    nth -= 1;
                }
            }
            rr += 1;
            let r = tasks[i].step(BtrfsCtx {
                fs: &mut fs,
                duet: &mut duet,
                now,
            })?;
            pump_btrfs(&mut fs, &mut duet);
            if r.complete {
                completion[i] = Some(r.finish);
                // Work done: release the Duet session (§3.2), so the
                // framework stops tracking events for this task.
                tasks[i].stop(BtrfsCtx {
                    fs: &mut fs,
                    duet: &mut duet,
                    now,
                })?;
                // Completion probes have their answer the moment the
                // last task finishes; the rest of the window cannot
                // change it.
                if stop_when_tasks_done && completion.iter().all(Option::is_some) {
                    break;
                }
            }
            continue;
        }
        // Nothing runnable at `now`: advance virtual time.
        if n_incomplete == 0 && next_wl.is_none() {
            break; // All work done, no workload: the run is over.
        }
        let mut next = end;
        if let Some(t) = next_wl {
            next = next.min(t);
        }
        if n_incomplete > 0 {
            let dispatch_at = cfg
                .policy
                .earliest_maintenance_dispatch(now, device_free)
                .max(device_free);
            next = next.min(dispatch_at);
            // Wake for the next hint poll even while I/O is blocked.
            next = next.min(last_poll + cfg.poll_period);
        }
        // Guarantee progress.
        now = next.max(now + SimDuration::from_nanos(1));
    }
    if cfg.duet {
        peak_memory = peak_memory.max(duet.memory_bytes());
    }
    // Final bookkeeping drain: opportunistic work completed by the last
    // burst of foreground activity must show up in the metrics.
    for t in tasks.iter_mut() {
        t.finalize(BtrfsCtx {
            fs: &mut fs,
            duet: &mut duet,
            now,
        })?;
    }

    // Collect outcomes.
    let outcomes: Vec<TaskOutcome> = tasks
        .iter()
        .zip(&completion)
        .map(|(t, c)| TaskOutcome {
            name: t.name(),
            metrics: t.metrics(),
            completed: c.is_some(),
            completion_time: c.map(since_epoch),
        })
        .collect();
    let m = fs.disk().metrics();
    let lat = workload
        .as_ref()
        .map(|w| (w.latency_ms().mean(), w.latency_ms().ci95()))
        .unwrap_or((0.0, 0.0));
    Ok(ExperimentResult {
        duration: cfg.duration,
        achieved_util: fs.disk().foreground_utilization(cfg.duration),
        tasks: outcomes,
        workload_ops: workload.as_ref().map(|w| w.stats().ops).unwrap_or(0),
        maintenance_blocks: m.idle.blocks(),
        maintenance_busy: m.idle.busy_time,
        foreground_blocks: m.normal.blocks(),
        workload_latency_ms: lat,
        duet_stats: cfg.duet.then(|| duet.stats()),
        duet_peak_memory: peak_memory,
    })
}

/// Result of an rsync run (Figure 4).
#[derive(Debug, Clone)]
pub struct RsyncResult {
    /// Time to synchronize everything.
    pub completion: SimDuration,
    /// Task counters.
    pub metrics: duet_tasks::TaskMetrics,
    /// Foreground operations executed during the transfer.
    pub workload_ops: u64,
    /// Foreground bytes read+written during the transfer (for the
    /// workload-impact measurement).
    pub workload_bytes: u64,
}

/// Runs rsync (normal I/O priority) against an unthrottled foreground
/// workload on the source device, as in §6.2: one workload operation
/// and one rsync chunk alternate until the transfer completes.
pub fn run_rsync_experiment(cfg: &ExperimentConfig, duet_mode: bool) -> SimResult<RsyncResult> {
    run_rsync_experiment_traced(cfg, duet_mode, None)
}

/// [`run_rsync_experiment`] with structured tracing armed on the source
/// stack and the Duet framework (the destination device is write-only
/// mirroring; tracing it would double-count every shipped block).
pub fn run_rsync_experiment_traced(
    cfg: &ExperimentConfig,
    duet_mode: bool,
    trace: Option<&TraceHandle>,
) -> SimResult<RsyncResult> {
    let src_disk = build_disk(cfg.device, cfg.capacity_blocks);
    let dst_disk = build_disk(cfg.device, cfg.capacity_blocks);
    let mut src = BtrfsSim::new(sim_core::DeviceId(0), src_disk, cfg.cache_pages);
    let mut dst = BtrfsSim::new(sim_core::DeviceId(1), dst_disk, cfg.cache_pages);
    let mut duet = Duet::with_defaults();
    let mut workload = match cfg.workload {
        Some(wcfg) => Some(Workload::setup(&mut src, wcfg, cfg.fileset)?),
        None => {
            populate_fileset(&mut src, cfg.fileset, cfg.seed)?;
            None
        }
    };
    src.cache_mut().drain_events();
    src.drain_fs_events();
    src.disk_mut().reset_metrics();
    if trace.is_some() {
        src.set_trace(trace.cloned());
        duet.set_trace(trace.cloned());
    }
    let mode = if duet_mode {
        TaskMode::Duet
    } else {
        TaskMode::Baseline
    };
    let mut rsync = Rsync::new(mode, src.root());
    rsync.start(RsyncCtx {
        src: &mut src,
        dst: &mut dst,
        duet: &mut duet,
        now: SimInstant::EPOCH,
    })?;
    pump_btrfs(&mut src, &mut duet);

    let mut now = SimInstant::EPOCH;
    let mut last_wb = now;
    let hard_end = SimInstant::EPOCH + cfg.duration * 20; // Safety cap.
    let completion;
    loop {
        last_wb = maybe_writeback(&mut src, &mut duet, now, last_wb)?;
        // One foreground op (unthrottled workloads go back to back).
        if let Some(w) = workload.as_mut() {
            let t = w.next_op_time().max(now);
            w.run_op(&mut src, t)?;
            pump_btrfs(&mut src, &mut duet);
        }
        // One rsync chunk, competing at normal priority.
        let r = rsync.step(RsyncCtx {
            src: &mut src,
            dst: &mut dst,
            duet: &mut duet,
            now,
        })?;
        pump_btrfs(&mut src, &mut duet);
        now = now
            .max(r.finish)
            .max(workload.as_ref().map(|w| w.next_op_time()).unwrap_or(now));
        if r.complete {
            completion = r.finish;
            break;
        }
        if now >= hard_end {
            completion = now;
            break;
        }
    }
    let wl_stats = workload.as_ref().map(|w| w.stats());
    Ok(RsyncResult {
        completion: since_epoch(completion),
        metrics: rsync.metrics(),
        workload_ops: wl_stats.map(|s| s.ops).unwrap_or(0),
        workload_bytes: wl_stats
            .map(|s| s.bytes_read + s.bytes_written)
            .unwrap_or(0),
    })
}

/// Configuration of an F2fs garbage-collection run (Table 6).
#[derive(Debug, Clone)]
pub struct GcExperimentConfig {
    /// Number of segments on the device.
    pub nsegs: u32,
    /// Blocks per segment.
    pub seg_blocks: u64,
    /// Page-cache pages.
    pub cache_pages: usize,
    /// File set (populated before the run).
    pub fileset: workloads::FileSetConfig,
    /// Foreground workload (the paper uses fileserver, §6.2).
    pub workload: workloads::WorkloadConfig,
    /// Duet-enabled cleaner?
    pub duet: bool,
    /// Victim-selection policy.
    pub victim_policy: VictimPolicy,
    /// Victim-selection window (the paper's 4096; smaller when scaled
    /// down).
    pub gc_window: u32,
    /// Minimum virtual time between cleaner invocations.
    pub gc_interval: SimDuration,
    /// Scheduling policy for cleaner I/O.
    pub policy: SchedulerPolicy,
    /// Window length.
    pub duration: SimDuration,
    /// RNG seed.
    pub seed: u64,
}

/// Result of a GC run.
#[derive(Debug, Clone)]
pub struct GcResult {
    /// Mean segment-cleaning time in milliseconds (Table 6's statistic).
    pub mean_cleaning_ms: f64,
    /// Mean foreground op latency in ms with its 95 % CI half-width —
    /// used by the §6.2 SSR-pressure measurement.
    pub workload_latency_ms: (f64, f64),
    /// Whether the filesystem ended the run in SSR mode (out of clean
    /// segments).
    pub ended_in_ssr: bool,
    /// Foreground operations executed.
    pub workload_ops: u64,
    /// Number of segments cleaned.
    pub cleanings: usize,
    /// Mean cached valid blocks per cleaned segment.
    pub mean_cached: f64,
    /// Mean valid blocks per cleaned segment.
    pub mean_valid: f64,
    /// Achieved foreground utilization.
    pub achieved_util: f64,
}

/// Runs the F2fs cleaner under a foreground workload (Table 6).
pub fn run_gc_experiment(cfg: &GcExperimentConfig) -> SimResult<GcResult> {
    run_gc_experiment_traced(cfg, None)
}

/// [`run_gc_experiment`] with structured tracing armed on the F2fs
/// stack and the Duet framework.
pub fn run_gc_experiment_traced(
    cfg: &GcExperimentConfig,
    trace: Option<&TraceHandle>,
) -> SimResult<GcResult> {
    let capacity = cfg.nsegs as u64 * cfg.seg_blocks;
    let disk = Disk::new(Box::new(HddModel::sas_10k(capacity)));
    let mut fs = F2fsSim::new(sim_core::DeviceId(1), disk, cfg.cache_pages, cfg.seg_blocks);
    let mut duet = Duet::with_defaults();
    let mut workload = Workload::setup(&mut fs, cfg.workload, cfg.fileset)?;
    fs.cache_mut().drain_events();
    fs.disk_mut().reset_metrics();
    if trace.is_some() {
        fs.set_trace(trace.cloned());
        duet.set_trace(trace.cloned());
    }
    let mode = if cfg.duet {
        TaskMode::Duet
    } else {
        TaskMode::Baseline
    };
    let mut gc = GarbageCollector::new(mode, cfg.victim_policy).with_window(cfg.gc_window);
    gc.start(GcCtx {
        fs: &mut fs,
        duet: &mut duet,
        now: SimInstant::EPOCH,
    })?;
    pump_f2fs(&mut fs, &mut duet);

    let end = SimInstant::EPOCH + cfg.duration;
    let mut now = SimInstant::EPOCH;
    let mut last_wb = now;
    let mut last_gc = SimInstant::EPOCH;
    let mut first_gc_done = false;
    while now < end {
        // Writeback.
        let wb_due = fs.dirty_pages() > fs.cache().capacity() / WB_HIGH_FRACTION
            || (now.saturating_duration_since(last_wb) >= WB_PERIOD && fs.dirty_pages() > 0);
        if wb_due {
            fs.background_writeback(WB_BATCH, IoClass::Normal, now)?;
            pump_f2fs(&mut fs, &mut duet);
            last_wb = now;
        }
        let next_wl = workload.next_op_time();
        if next_wl <= now {
            workload.run_op(&mut fs, now)?;
            pump_f2fs(&mut fs, &mut duet);
            continue;
        }
        let device_free = fs.disk().busy_until();
        let gc_due = !first_gc_done || now.saturating_duration_since(last_gc) >= cfg.gc_interval;
        if gc_due
            && fs.disk().is_idle_at(now)
            && cfg
                .policy
                .may_dispatch_maintenance(now, device_free, Some(next_wl))
        {
            gc.step(GcCtx {
                fs: &mut fs,
                duet: &mut duet,
                now,
            })?;
            pump_f2fs(&mut fs, &mut duet);
            last_gc = now;
            first_gc_done = true;
            continue;
        }
        let mut next = next_wl.min(end);
        let dispatch_at = cfg
            .policy
            .earliest_maintenance_dispatch(now, device_free)
            .max(device_free)
            .max(last_gc + cfg.gc_interval);
        next = next.min(dispatch_at);
        now = next.max(now + SimDuration::from_nanos(1));
    }
    let n = gc.results.len();
    let mean_cached = if n == 0 {
        0.0
    } else {
        gc.results
            .iter()
            .map(|r| r.cached_blocks as f64)
            .sum::<f64>()
            / n as f64
    };
    let mean_valid = if n == 0 {
        0.0
    } else {
        gc.results
            .iter()
            .map(|r| r.valid_blocks as f64)
            .sum::<f64>()
            / n as f64
    };
    Ok(GcResult {
        mean_cleaning_ms: gc.mean_cleaning_ms(),
        workload_latency_ms: (workload.latency_ms().mean(), workload.latency_ms().ci95()),
        ended_in_ssr: fs.is_ssr(),
        workload_ops: workload.stats().ops,
        cleanings: n,
        mean_cached,
        mean_valid,
        achieved_util: {
            let elapsed = cfg.duration;
            fs.foreground_busy().as_secs_f64() / elapsed.as_secs_f64()
        },
    })
}
