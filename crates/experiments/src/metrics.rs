//! Experiment results and the paper's evaluation metrics (Table 4).

use duet_tasks::TaskMetrics;
use sim_core::{SimDuration, SimInstant, SimResult};

/// Outcome of one maintenance task in a run.
#[derive(Debug, Clone)]
pub struct TaskOutcome {
    /// Task display name (e.g. `"scrub(duet)"`).
    pub name: String,
    /// Work/I-O counters.
    pub metrics: TaskMetrics,
    /// Whether the task finished within the window.
    pub completed: bool,
    /// Virtual time of completion, if it completed.
    pub completion_time: Option<SimDuration>,
}

/// Result of one experiment run.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// Configured window length.
    pub duration: SimDuration,
    /// Foreground device utilization actually achieved (the `%util` of
    /// §6.1.2, measured over the whole window).
    pub achieved_util: f64,
    /// Per-task outcomes.
    pub tasks: Vec<TaskOutcome>,
    /// Workload operations executed (0 without a workload).
    pub workload_ops: u64,
    /// Maintenance blocks read + written at the device.
    pub maintenance_blocks: u64,
    /// Device busy time consumed by maintenance I/O.
    pub maintenance_busy: sim_core::SimDuration,
    /// Foreground blocks read + written at the device.
    pub foreground_blocks: u64,
    /// Mean foreground operation latency in milliseconds (issue to
    /// completion), with its 95 % confidence half-width — §6.1.3's
    /// workload-latency measurement. Zero without a workload.
    pub workload_latency_ms: (f64, f64),
    /// Duet bookkeeping statistics, if Duet mode ran.
    pub duet_stats: Option<duet::DuetStats>,
    /// Peak Duet memory in bytes (descriptors + bitmaps), if Duet ran.
    pub duet_peak_memory: u64,
}

impl ExperimentResult {
    /// Table 4's **I/O saved**: maintenance I/O avoided, relative to
    /// the I/O the baseline tasks would have performed, aggregated over
    /// all tasks in the run.
    pub fn io_saved(&self) -> f64 {
        let total: u64 = self.tasks.iter().map(|t| t.metrics.total_units).sum();
        let saved: u64 = self.tasks.iter().map(|t| t.metrics.saved_units).sum();
        if total == 0 {
            0.0
        } else {
            saved as f64 / total as f64
        }
    }

    /// Fraction of maintenance work completed, aggregated over tasks
    /// (Figures 6 and 8).
    pub fn work_completed(&self) -> f64 {
        let total: u64 = self.tasks.iter().map(|t| t.metrics.total_units).sum();
        let done: u64 = self.tasks.iter().map(|t| t.metrics.done_units).sum();
        if total == 0 {
            1.0
        } else {
            (done as f64 / total as f64).min(1.0)
        }
    }

    /// Whether every task completed within the window (the Table 5
    /// criterion).
    pub fn all_completed(&self) -> bool {
        self.tasks.iter().all(|t| t.completed)
    }

    /// Completion time of the slowest task, if all completed.
    pub fn makespan(&self) -> Option<SimDuration> {
        self.tasks
            .iter()
            .map(|t| t.completion_time)
            .collect::<Option<Vec<_>>>()
            .map(|v| v.into_iter().max().unwrap_or(SimDuration::ZERO))
    }
}

/// Finds the **maximum utilization** (Table 4): the highest target
/// utilization, stepped in 10 % intervals, at which `run` reports all
/// maintenance work completed. Returns the utilization as a fraction
/// (e.g. 0.7), or `Ok(None)` if even an idle device fails. A `run`
/// error aborts the search and propagates (so a failed cell surfaces
/// instead of silently truncating the table).
///
/// # Contract: the predicate must be monotone
///
/// The search requires `run` to be **monotone** in the utilization:
/// once maintenance fails to complete at some target, it must also
/// fail at every higher target (more foreground load never creates
/// idle time). Under that contract the bisection below probes
/// O(log n) of the 11 steps and returns exactly what a full linear
/// scan would. For a *non-monotone* predicate the result is still
/// deterministic — the probe sequence is fixed, and the returned step
/// answered `true` while its bisection successor answered `false` —
/// but it is one of possibly several such steps, not a guaranteed
/// global maximum. (The previous linear scan was worse: it silently
/// returned a stale low `best`, never probing past the first failure
/// — "completes at 0.3, fails at 0.4, completes at 0.5" reported
/// 0.3. See the `non_monotone_predicate_is_pinned` test for the
/// behaviour this version pins.)
pub fn max_utilization<F>(mut run: F) -> SimResult<Option<f64>>
where
    F: FnMut(f64) -> SimResult<bool>,
{
    // Bisection over steps 0..=10. Invariant: every probed step
    // <= `lo` completed (`lo == -1`: none yet), every probed step
    // >= `hi` failed (`hi == 11`: none yet).
    let mut lo: i32 = -1;
    let mut hi: i32 = 11;
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if run(mid as f64 / 10.0)? {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Ok((lo >= 0).then(|| lo as f64 / 10.0))
}

/// The **speedup** metric (Table 4): baseline time over Duet time.
pub fn speedup(baseline: SimDuration, duet: SimDuration) -> f64 {
    if duet.is_zero() {
        return f64::INFINITY;
    }
    baseline.as_secs_f64() / duet.as_secs_f64()
}

/// Helper: duration from the epoch to `t`.
pub fn since_epoch(t: SimInstant) -> SimDuration {
    t.saturating_duration_since(SimInstant::EPOCH)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(total: u64, done: u64, saved: u64, completed: bool) -> TaskOutcome {
        TaskOutcome {
            name: "t".into(),
            metrics: TaskMetrics {
                total_units: total,
                done_units: done,
                saved_units: saved,
                blocks_read: 0,
                blocks_written: 0,
            },
            completed,
            completion_time: completed.then(|| SimDuration::from_secs(10)),
        }
    }

    fn result(tasks: Vec<TaskOutcome>) -> ExperimentResult {
        ExperimentResult {
            duration: SimDuration::from_mins(5),
            achieved_util: 0.5,
            tasks,
            workload_ops: 0,
            maintenance_blocks: 0,
            maintenance_busy: sim_core::SimDuration::ZERO,
            foreground_blocks: 0,
            workload_latency_ms: (0.0, 0.0),
            duet_stats: None,
            duet_peak_memory: 0,
        }
    }

    #[test]
    fn aggregate_metrics() {
        let r = result(vec![
            outcome(100, 100, 30, true),
            outcome(100, 50, 10, false),
        ]);
        assert!((r.io_saved() - 0.2).abs() < 1e-12);
        assert!((r.work_completed() - 0.75).abs() < 1e-12);
        assert!(!r.all_completed());
        assert_eq!(r.makespan(), None);
        let done = result(vec![outcome(10, 10, 0, true)]);
        assert!(done.all_completed());
        assert_eq!(done.makespan(), Some(SimDuration::from_secs(10)));
    }

    #[test]
    fn empty_run_is_trivially_complete() {
        let r = result(vec![]);
        assert_eq!(r.io_saved(), 0.0);
        assert_eq!(r.work_completed(), 1.0);
        assert!(r.all_completed());
    }

    #[test]
    fn max_utilization_search() {
        // Completes up to 70 %.
        let got = max_utilization(|u| Ok(u <= 0.7 + 1e-9));
        assert_eq!(got, Ok(Some(0.7)));
        // Never completes.
        assert_eq!(max_utilization(|_| Ok(false)), Ok(None));
        // Always completes.
        assert_eq!(max_utilization(|_| Ok(true)), Ok(Some(1.0)));
        // Errors propagate instead of truncating the search.
        let err = max_utilization(|u| {
            if u > 0.2 {
                Err(sim_core::SimError::Unsupported("boom"))
            } else {
                Ok(true)
            }
        });
        assert!(err.is_err());
    }

    /// The bisection matches a full linear scan on every monotone
    /// predicate, while probing O(log n) of the 11 steps.
    #[test]
    fn bisection_matches_linear_scan_on_all_monotone_predicates() {
        // Thresholds from "fails even idle" (-1) to "always completes".
        for threshold in -1..=10i32 {
            let mut probes = 0u32;
            let got = max_utilization(|u| {
                probes += 1;
                Ok(u <= threshold as f64 / 10.0 + 1e-9)
            })
            .unwrap();
            let want = (threshold >= 0).then(|| threshold as f64 / 10.0);
            assert_eq!(got, want, "threshold step {threshold}");
            assert!(probes <= 4, "threshold step {threshold}: {probes} probes");
        }
    }

    /// Pin: non-monotone predicates violate the documented contract,
    /// but the result stays deterministic. "Completes at ≤ 0.3, fails
    /// at 0.4, completes again at exactly 0.5": the old linear scan
    /// stopped at the 0.4 failure and reported a stale 0.3; the
    /// bisection's fixed probe sequence (0.5 → 0.8 → 0.6) lands on
    /// 0.5. Neither is a "right" answer — the contract requires
    /// monotonicity — this pins the behaviour so a future search
    /// change shows up as a diff here, not as silent label drift.
    #[test]
    fn non_monotone_predicate_is_pinned() {
        let mut probed = Vec::new();
        let got = max_utilization(|u| {
            probed.push((u * 10.0).round() as i32);
            Ok(u <= 0.3 + 1e-9 || (u - 0.5).abs() < 1e-9)
        })
        .unwrap();
        assert_eq!(got, Some(0.5));
        assert_eq!(probed, vec![5, 8, 6]);
    }

    #[test]
    fn speedup_ratio() {
        let s = speedup(SimDuration::from_secs(20), SimDuration::from_secs(10));
        assert!((s - 2.0).abs() < 1e-12);
        assert!(speedup(SimDuration::from_secs(1), SimDuration::ZERO).is_infinite());
    }
}
