//! Warm-start snapshots of the experiment setup prefix.
//!
//! Every Btrfs-model experiment starts the same way: build the disk and
//! filesystem, populate (or set up the workload over) the file set, age
//! the layout, optionally pre-fragment, then drain events and reset
//! device metrics. Sweeps like `table5_max_util` run dozens of cells
//! whose configurations differ only in knobs the prefix never reads —
//! target utilization, task list, Duet mode, scheduling policy — so the
//! prefix used to be rebuilt per cell for no reason, and dominated the
//! sweep's wall time.
//!
//! This module captures the prefix **once** per distinct [`SetupKey`]
//! (the setup-relevant slice of [`ExperimentConfig`]) in a per-thread
//! [`SnapshotStore`] and hands every subsequent cell a deep fork.
//! Equivalence is not assumed, it is checked: [`PreparedStack`]
//! implements [`StateDigest`] over the whole stack (disk model, cache,
//! filesystem trees, Duet, workload RNG streams), and the tests in this
//! module plus the `DUET_SNAPSHOT=0` escape hatch (see
//! [`sim_core::snapshot::enabled`]) pin fork ≡ fresh, byte for byte.
//!
//! Two per-cell knobs are deliberately excluded from the prefix and
//! applied *after* the fork by the runner:
//!
//! - the throttle target (`WorkloadConfig::target_util`) — read only by
//!   the per-operation throttle, never during `Workload::setup`;
//! - the profiled busy-per-op seed (`Workload::seed_busy_per_op`) —
//!   writes only the throttle's estimate, which nothing in the prefix
//!   reads.

use crate::config::ExperimentConfig;
use crate::profile::{dist_tag, personality_tag};
use crate::runner::build_disk;
use duet::Duet;
use sim_btrfs::BtrfsSim;
use sim_core::snapshot::{Digest, SnapshotStore, StateDigest};
use sim_core::{SimResult, SimRng};
use std::cell::RefCell;
use workloads::{populate_fileset, Workload};

/// Pristine prefixes kept per thread. A sweep visits its distinct
/// prefixes in row-major order, so a handful of slots gives
/// near-perfect reuse while bounding resident filesystem images.
const STORE_CAP: usize = 4;

/// The setup-relevant slice of an [`ExperimentConfig`]: every field the
/// prefix reads, with the workload's `target_util` excluded (applied
/// post-fork). Floats are keyed by bit pattern so equality is exact.
/// Two configurations with equal keys build byte-identical prefixes.
#[derive(Debug, Clone, PartialEq, Eq)]
struct SetupKey {
    device: crate::config::DeviceKind,
    capacity_blocks: u64,
    cache_pages: usize,
    num_files: usize,
    mean_file_bytes: u64,
    sigma_bits: u64,
    workload: Option<WorkloadShape>,
    scatter_layout: bool,
    fragmentation: Option<(u64, u64)>,
    seed: u64,
}

/// Workload shape minus `target_util` (see [`SetupKey`]).
#[derive(Debug, Clone, PartialEq, Eq)]
struct WorkloadShape {
    personality: u8,
    dist: (u8, u8),
    coverage_bits: u64,
    burst: u32,
    append_bytes: u64,
    seed: u64,
}

fn setup_key(cfg: &ExperimentConfig) -> SetupKey {
    SetupKey {
        device: cfg.device,
        capacity_blocks: cfg.capacity_blocks,
        cache_pages: cfg.cache_pages,
        num_files: cfg.fileset.num_files,
        mean_file_bytes: cfg.fileset.mean_file_bytes,
        sigma_bits: cfg.fileset.sigma.to_bits(),
        workload: cfg.workload.map(|w| WorkloadShape {
            personality: personality_tag(w.personality),
            dist: dist_tag(w.dist),
            coverage_bits: w.coverage.to_bits(),
            burst: w.burst,
            append_bytes: w.append_bytes,
            seed: w.seed,
        }),
        scatter_layout: cfg.scatter_layout,
        fragmentation: cfg.fragmentation.map(|(f, p)| (f.to_bits(), p)),
        seed: cfg.seed,
    }
}

/// The fully prepared stack at the snapshot point: populated and aged
/// filesystem, fresh framework, workload with its setup-time RNG
/// streams advanced. Tracing and fault handles are deliberately
/// disarmed here (the runner arms them per cell, after the fork), so a
/// clone shares no live `Rc` buffers with other forks.
#[derive(Clone)]
pub struct PreparedStack {
    /// The populated, aged filesystem (metrics freshly reset).
    pub fs: BtrfsSim,
    /// A pristine framework instance (registration runs per cell).
    pub duet: Duet,
    /// The foreground workload, when the configuration has one.
    pub workload: Option<Workload>,
}

impl StateDigest for PreparedStack {
    fn digest_state(&self, d: &mut Digest) {
        self.fs.digest_state(d);
        self.duet.digest_state(d);
        d.write_bool(self.workload.is_some());
        if let Some(w) = &self.workload {
            w.digest_state(d);
        }
    }
}

/// Builds the setup prefix from scratch: population (free of simulated
/// I/O), layout aging, pre-fragmentation, event drain, metric reset.
/// This is the single source of truth for the prefix — the runner
/// always goes through it, forked or fresh.
pub fn prepare(cfg: &ExperimentConfig) -> SimResult<PreparedStack> {
    let disk = build_disk(cfg.device, cfg.capacity_blocks);
    let mut fs = BtrfsSim::new(sim_core::DeviceId(0), disk, cfg.cache_pages);
    let duet = Duet::with_defaults();

    // Population (free of simulated I/O).
    let workload = match cfg.workload {
        Some(wcfg) => Some(Workload::setup(&mut fs, wcfg, cfg.fileset)?),
        None => {
            populate_fileset(&mut fs, cfg.fileset, cfg.seed)?;
            None
        }
    };
    // Layout aging: relocate files in random order and split them into
    // ~256 KiB extents. Inode order no longer matches physical order,
    // and a logical (per-file) pass seeks every few extents — which is
    // why the paper's backup is about half as fast as the physically
    // sequential scrubber (§6.2). Scrubbing is unaffected: its scan
    // follows physical order regardless of extent ownership.
    if cfg.scatter_layout {
        let mut files = fs.inodes().files_by_inode();
        let mut rng = SimRng::new(cfg.seed.wrapping_add(0x5CA7));
        rng.shuffle(&mut files);
        for ino in files {
            let pages = fs.inodes().get(ino)?.size_pages();
            let pieces = (pages / 64).clamp(1, 4);
            fs.fragment_file(ino, pieces)?;
        }
    }
    // Pre-fragmentation for the defragmentation experiments.
    if let Some((fraction, pieces)) = cfg.fragmentation {
        let files = fs.inodes().files_by_inode();
        let mut rng = SimRng::new(cfg.seed.wrapping_add(0xF7A6));
        let k = ((files.len() as f64 * fraction).round() as usize).min(files.len());
        let mut order: Vec<_> = files.clone();
        rng.shuffle(&mut order);
        for &ino in &order[..k] {
            fs.fragment_file(ino, pieces)?;
        }
    }
    fs.cache_mut().drain_events();
    fs.drain_fs_events();
    fs.disk_mut().reset_metrics();
    Ok(PreparedStack { fs, duet, workload })
}

thread_local! {
    /// One memo per sweep worker: the stack holds non-`Send` handles,
    /// and per-thread stores need no locking.
    static STORE: RefCell<SnapshotStore<SetupKey, PreparedStack>> =
        RefCell::new(SnapshotStore::with_capacity(STORE_CAP));
}

/// The prepared stack for `cfg`: a fork of this thread's pristine
/// snapshot when an identical prefix was already built, a fresh (and
/// memoized) build otherwise. With `DUET_SNAPSHOT=0` every call builds
/// from scratch and nothing is memoized.
pub fn obtain(cfg: &ExperimentConfig) -> SimResult<PreparedStack> {
    if !sim_core::snapshot::enabled() {
        return prepare(cfg);
    }
    STORE.with(|s| {
        s.borrow_mut()
            .fork_or_build(setup_key(cfg), || prepare(cfg))
    })
}

/// `(hits, misses)` of this thread's snapshot store — forks served warm
/// vs prefixes built from scratch. For logging and tests.
pub fn warm_stats() -> (u64, u64) {
    STORE.with(|s| {
        let s = s.borrow();
        (s.hits(), s.misses())
    })
}

/// Drops this thread's resident snapshots (for memory-sensitive
/// callers and test isolation; counters are kept).
pub fn clear_store() {
    STORE.with(|s| s.borrow_mut().clear());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TaskKind;
    use crate::presets::paper_scaled;
    use workloads::{DistKind, Personality};

    fn cfg(util: f64) -> ExperimentConfig {
        paper_scaled(
            1024,
            Personality::WebServer,
            DistKind::Uniform,
            1.0,
            util,
            vec![TaskKind::Scrub],
            true,
        )
    }

    #[test]
    fn setup_key_ignores_target_util_tasks_and_duet() {
        let a = cfg(0.1);
        let mut b = cfg(0.9);
        b.tasks = vec![TaskKind::Backup, TaskKind::Defrag];
        b.duet = false;
        b.informed_replacement = true;
        assert_eq!(setup_key(&a), setup_key(&b), "same prefix, one build");
        let mut c = cfg(0.1);
        c.seed += 1;
        assert_ne!(setup_key(&a), setup_key(&c), "seed changes the prefix");
    }

    #[test]
    fn fork_digest_equals_fresh_build() {
        clear_store();
        // Pristine built at target 0.3, forked for a 0.6 cell.
        let warm = obtain(&cfg(0.3)).expect("build");
        let mut fork = obtain(&cfg(0.6)).expect("fork");
        if let Some(w) = fork.workload.as_mut() {
            w.set_target_util(0.6);
        }
        let fresh = prepare(&cfg(0.6)).expect("fresh");
        assert_eq!(
            fork.state_digest_hex(),
            fresh.state_digest_hex(),
            "fork + retarget must be indistinguishable from a fresh build"
        );
        // And the pristine state was not tainted by handing out forks.
        let again = obtain(&cfg(0.3)).expect("fork again");
        assert_eq!(warm.state_digest_hex(), again.state_digest_hex());
        // Counters only move when warm-start is on; the digest
        // equalities above must hold either way (that is the point of
        // the `DUET_SNAPSHOT=0` escape hatch).
        if sim_core::snapshot::enabled() {
            let (hits, misses) = warm_stats();
            assert!(hits >= 2, "hits {hits}");
            assert!(misses >= 1, "misses {misses}");
        }
    }

    #[test]
    fn workload_free_prefix_forks_too() {
        clear_store();
        let mut c = cfg(0.5);
        c.workload = None;
        let a = obtain(&c).expect("build");
        let b = obtain(&c).expect("fork");
        assert!(a.workload.is_none());
        assert_eq!(a.state_digest_hex(), b.state_digest_hex());
        assert_eq!(
            a.state_digest_hex(),
            prepare(&c).expect("fresh").state_digest_hex()
        );
    }
}
