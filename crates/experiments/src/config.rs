//! Experiment configuration.

use sim_core::{SimDuration, SimInstant};
use sim_disk::SchedulerPolicy;
use workloads::{FileSetConfig, WorkloadConfig};

/// Which device model backs the filesystem (§6.1.3 vs §6.5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceKind {
    /// The 10K-RPM SAS drive of the main evaluation.
    Hdd,
    /// The consumer SSD of §6.5.
    Ssd,
}

/// Which maintenance tasks run, in registration order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskKind {
    /// Btrfs scrubbing (§5.1).
    Scrub,
    /// Snapshot backup (§5.2).
    Backup,
    /// File defragmentation (§5.3).
    Defrag,
}

/// Full configuration of one Btrfs-model experiment run.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Device model.
    pub device: DeviceKind,
    /// Device capacity in blocks.
    pub capacity_blocks: u64,
    /// Page-cache size in pages. The paper boots with 2 GB of RAM
    /// against 50 GB of data (§6.1.3) — roughly 2–4 % of the data set.
    pub cache_pages: usize,
    /// File-set shape.
    pub fileset: FileSetConfig,
    /// Foreground workload; `None` runs maintenance alone (the 0 %
    /// utilization points).
    pub workload: Option<WorkloadConfig>,
    /// Maintenance tasks to run concurrently.
    pub tasks: Vec<TaskKind>,
    /// Run tasks with Duet (`true`) or as baselines.
    pub duet: bool,
    /// I/O scheduling policy for maintenance.
    pub policy: SchedulerPolicy,
    /// Virtual experiment length (the paper uses 30 minutes).
    pub duration: SimDuration,
    /// Fraction of files to pre-fragment, and into how many pieces
    /// (the defragmentation experiments use a "10 % fragmented file
    /// system", §6.2).
    pub fragmentation: Option<(f64, u64)>,
    /// How often tasks poll Duet for hints (CPU work; §6.4's fetch
    /// cadence). Longer periods let cached pages evict before their
    /// hints are consumed.
    pub poll_period: SimDuration,
    /// Degrade the defragmenter's hints to file granularity
    /// (inotify-style, §3.3): files are queued on any access, but
    /// without residency counts there is nothing to prioritize by.
    /// For the hint-granularity ablation.
    pub defrag_file_granularity: bool,
    /// Informed cache replacement (an extension beyond the paper, named
    /// as future work in its §2): eviction deprioritizes pages whose
    /// Duet notifications have not been consumed yet. Advisory only —
    /// never pins pages.
    pub informed_replacement: bool,
    /// Age the layout: relocate files in random order so that inode
    /// order no longer matches physical order. On an aged filesystem
    /// the scrubber's physical-order scan stays sequential while the
    /// backup's inode-order pass becomes random I/O — the paper's
    /// premise for why "the backup requires almost twice the amount of
    /// time needed for scrubbing" (§6.2).
    pub scatter_layout: bool,
    /// RNG seed (population, fragmentation choice).
    pub seed: u64,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            device: DeviceKind::Hdd,
            capacity_blocks: 1 << 19, // 2 GiB device
            cache_pages: 4096,        // 16 MiB cache
            fileset: FileSetConfig {
                num_files: 2000,
                mean_file_bytes: 128 * 1024,
                sigma: 0.5,
            },
            workload: None,
            tasks: vec![TaskKind::Scrub],
            duet: true,
            policy: SchedulerPolicy::default_cfq(),
            duration: SimDuration::from_mins(5),
            fragmentation: None,
            poll_period: SimDuration::from_millis(20),
            defrag_file_granularity: false,
            informed_replacement: false,
            scatter_layout: false,
            seed: 42,
        }
    }
}

impl ExperimentConfig {
    /// End instant of the run.
    pub fn end(&self) -> SimInstant {
        SimInstant::EPOCH + self.duration
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_coherent() {
        let cfg = ExperimentConfig::default();
        // The file set must fit the device with room for COW churn.
        let data_blocks =
            cfg.fileset.num_files as u64 * cfg.fileset.mean_file_bytes / sim_core::PAGE_SIZE;
        assert!(data_blocks * 2 < cfg.capacity_blocks);
        assert_eq!(cfg.end(), SimInstant::EPOCH + cfg.duration);
    }
}
