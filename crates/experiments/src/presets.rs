//! Scaled presets of the paper's experimental setup (§6.1.3).
//!
//! The paper populates 50 GB of data on a 300 GB drive, boots with 2 GB
//! of RAM and runs each experiment for 30 minutes. A faithful
//! reproduction keeps the *ratios* (data : device : cache : window)
//! while shrinking absolute sizes so a full parameter sweep runs in
//! seconds. [`paper_scaled`] produces a configuration at `1/scale` of
//! the paper's magnitudes; the bench harness uses `scale = 32` by
//! default (≈1.6 GB of data, ≈56 s window), and tests use larger
//! scale-downs.

use crate::config::{DeviceKind, ExperimentConfig, TaskKind};
use sim_core::{SimDuration, PAGE_SIZE};
use sim_disk::SchedulerPolicy;
use workloads::{DistKind, FileSetConfig, Personality, WorkloadConfig};

/// Paper magnitudes.
const PAPER_DATA_BYTES: u64 = 50 << 30; // 50 GB file set
const PAPER_DEVICE_BYTES: u64 = 300 << 30; // 300 GB drive
const PAPER_CACHE_BYTES: u64 = 2 << 30; // 2 GB RAM
const PAPER_WINDOW_SECS: u64 = 30 * 60; // 30 minutes

/// Builds an [`ExperimentConfig`] at `1/scale` of the paper's setup.
///
/// `utilization` is the foreground target (0 disables the workload);
/// `coverage` is the data-overlap knob.
pub fn paper_scaled(
    scale: u64,
    personality: Personality,
    dist: DistKind,
    coverage: f64,
    utilization: f64,
    tasks: Vec<TaskKind>,
    duet: bool,
) -> ExperimentConfig {
    assert!(scale >= 1);
    let data_bytes = PAPER_DATA_BYTES / scale;
    // 1 MiB mean files give the foreground throughput regime the paper's
    // evaluation operates in (whole-file reads stream at near-media
    // rates, so a busy workload covers the data set several times per
    // window).
    let mean_file = 1024 * 1024u64;
    let num_files = (data_bytes / mean_file).max(16) as usize;
    let capacity_blocks = (PAPER_DEVICE_BYTES / scale) / PAGE_SIZE;
    let cache_pages = ((PAPER_CACHE_BYTES / scale) / PAGE_SIZE).max(256) as usize;
    let workload = (utilization > 0.0).then_some(WorkloadConfig {
        personality,
        dist,
        coverage,
        target_util: utilization,
        burst: 16,
        append_bytes: 16 * 1024,
        seed: 42,
    });
    ExperimentConfig {
        device: DeviceKind::Hdd,
        capacity_blocks,
        cache_pages,
        fileset: FileSetConfig {
            num_files,
            mean_file_bytes: mean_file,
            sigma: 0.5,
        },
        workload,
        tasks,
        duet,
        policy: SchedulerPolicy::default_cfq(),
        duration: SimDuration::from_secs(PAPER_WINDOW_SECS / scale),
        fragmentation: None,
        poll_period: SimDuration::from_millis(20),
        defrag_file_granularity: false,
        informed_replacement: false,
        scatter_layout: true,
        seed: 42,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_are_preserved() {
        let cfg = paper_scaled(
            64,
            Personality::WebServer,
            DistKind::Uniform,
            1.0,
            0.5,
            vec![TaskKind::Scrub],
            true,
        );
        let data = cfg.fileset.num_files as u64 * cfg.fileset.mean_file_bytes;
        let device = cfg.capacity_blocks * PAGE_SIZE;
        let cache = cfg.cache_pages as u64 * PAGE_SIZE;
        // device : data ≈ 6, data : cache ≈ 25 (paper: 300/50 and 50/2).
        let dd = device as f64 / data as f64;
        let dc = data as f64 / cache as f64;
        assert!((4.0..8.0).contains(&dd), "device/data {dd}");
        assert!((15.0..35.0).contains(&dc), "data/cache {dc}");
        assert_eq!(cfg.duration, SimDuration::from_secs(28));
        assert!(cfg.workload.is_some());
    }

    #[test]
    fn zero_utilization_has_no_workload() {
        let cfg = paper_scaled(
            64,
            Personality::WebServer,
            DistKind::Uniform,
            1.0,
            0.0,
            vec![TaskKind::Scrub, TaskKind::Backup],
            true,
        );
        assert!(cfg.workload.is_none());
        assert_eq!(cfg.tasks.len(), 2);
    }
}
