//! The filesystem introspection interface Duet relies on.
//!
//! The kernel implementation reaches into the dentry cache for relevance
//! walks, the page cache for the registration scan, and the FIBMAP ioctl
//! for file-page → block translation (§4). The framework is
//! filesystem-agnostic, so those touchpoints are expressed as a trait
//! that each simulated filesystem implements.
//!
//! The trait lives here — in the page-cache layer, below the
//! filesystems — rather than in the `duet` framework crate, because the
//! implementors (`sim-btrfs`, `sim-f2fs`) sit *below* `duet` in the
//! crate stack: the orphan rule requires trait or type to be local, and
//! a filesystem crate importing `duet` would invert the layering (lint
//! L1). Everything the trait mentions is already at this layer:
//! [`PageMeta`] plus `sim-core` identifiers. The framework re-exports
//! it as `duet::FsIntrospect`.

use crate::PageMeta;
use sim_core::{BlockNr, DeviceId, InodeNr, PageIndex};

/// Read-only filesystem facilities the Duet framework consumes.
pub trait FsIntrospect {
    /// The device the filesystem is mounted on.
    fn device(&self) -> DeviceId;

    /// Returns `true` if `ino` equals `dir` or lies in its subtree —
    /// the backwards path walk of §4.1 ("we traverse its path backwards
    /// to detect whether the file lies within the registered
    /// directory"). Returns `false` for inodes that no longer exist.
    fn is_under(&self, ino: InodeNr, dir: InodeNr) -> bool;

    /// Absolute path of an inode, or `None` if it no longer exists.
    fn path_of(&self, ino: InodeNr) -> Option<String>;

    /// FIBMAP: the physical block backing a file page, if allocated.
    /// `None` models delayed allocation (§4.2): the event is deferred
    /// "to be returned by a later fetch operation".
    fn fibmap(&self, ino: InodeNr, index: PageIndex) -> Option<BlockNr>;

    /// Returns `true` if the file currently has at least one page in
    /// the page cache. `duet_get_path` uses this as the *truth* for the
    /// page-cache hints (§3.2): when it fails, tasks back out of
    /// opportunistic processing.
    fn has_cached_pages(&self, ino: InodeNr) -> bool;

    /// All pages currently in the page cache (the registration scan of
    /// §4.1).
    fn cached_pages(&self) -> Vec<PageMeta>;

    /// Cached pages of one file (used when a file moves into the
    /// registered directory, §4.1).
    fn cached_pages_of(&self, ino: InodeNr) -> Vec<PageMeta>;
}
