//! A simulated Linux-style page cache with Duet event hooks.
//!
//! Duet "hooks into the page cache modification routines and gets
//! control when a page is added or removed from the page cache, or when
//! a page is marked dirty or flushed" (§4.1 of the paper). This crate is
//! that page cache: an LRU cache of 4 KiB file pages with dirty
//! tracking, whose every mutation emits a [`PageEvent`] into a queue the
//! simulation drains into the Duet framework.
//!
//! Division of labour with the filesystem layer:
//!
//! - the cache tracks residency, dirtiness and LRU order;
//! - the *filesystem* performs all device I/O. Cache operations that
//!   imply writes (dirty eviction, writeback batches) return the pages
//!   involved so the filesystem can charge the corresponding requests.

pub mod cache;
pub mod introspect;
pub mod page;

pub use cache::{CacheStats, PageCache};
pub use introspect::FsIntrospect;
pub use page::{PageEvent, PageKey, PageMeta};
