//! The page cache: LRU-managed, dirty-tracking, event-emitting.
//!
//! This is the component Duet hooks into. Every mutation (add, remove,
//! dirty, flush) appends a [`PageEvent`] to an internal queue; the
//! simulation wiring drains the queue into the Duet framework after each
//! filesystem operation, mirroring the kernel implementation's "hooks in
//! the Linux page cache" (§4.2) while keeping ownership single-threaded.
//!
//! The cache never performs I/O itself. Operations that imply device
//! writes (evicting a dirty page, a writeback batch) *return* the pages
//! involved so the filesystem layer can charge the corresponding disk
//! requests, then record the flush here.

use crate::page::{PageEvent, PageKey, PageMeta};
use sim_core::dmap::{DMap, DSet, Slab, NIL};
use sim_core::fault::{FaultHandle, FaultSite};
use sim_core::trace::{TraceHandle, TraceLayer};
use sim_core::{BlockNr, InodeNr, PageIndex};
use std::collections::VecDeque;

/// Cache hit/miss and traffic statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found the page.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Pages inserted.
    pub insertions: u64,
    /// Pages evicted by capacity pressure.
    pub evictions: u64,
    /// Pages cleaned by writeback (including flush-on-evict).
    pub writebacks: u64,
}

/// A resident page: cache state plus intrusive list links.
///
/// `prev`/`next` chain the global LRU list (head = least recently
/// used); `dprev`/`dnext` chain the dirty sublist in the same recency
/// order, replacing the old tick-keyed `BTreeMap` mirrors with O(1)
/// splices. `ino_pos` is the page's position in its file's dense
/// handle vector, kept current so removal is an O(1) swap-remove.
#[derive(Debug, Clone, Copy)]
struct Node {
    key: PageKey,
    block: Option<BlockNr>,
    dirty: bool,
    prev: u32,
    next: u32,
    in_dirty: bool,
    dprev: u32,
    dnext: u32,
    ino_pos: u32,
}

/// An LRU page cache with dirty tracking and an event queue.
///
/// # Examples
///
/// ```
/// use sim_cache::{PageCache, PageEvent, PageKey};
/// use sim_core::{BlockNr, InodeNr, PageIndex};
///
/// let mut cache = PageCache::new(2);
/// let key = PageKey::new(InodeNr(1), PageIndex(0));
/// cache.insert(key, Some(BlockNr(100)), false);
/// assert!(cache.contains(key));
/// let events = cache.drain_events();
/// assert_eq!(events[0].1, PageEvent::Added);
/// ```
#[derive(Debug, Clone)]
pub struct PageCache {
    capacity: usize,
    /// Backing store for resident pages; handles stay stable while a
    /// page is resident, so the intrusive lists can link by `u32`.
    slab: Slab<Node>,
    /// O(1) page lookup: key → slab handle. Scans whose order reaches
    /// the event queue (`iter`, `flush_file`, `remove_file`) sort a
    /// snapshot instead, keeping the visiting order the B-tree cache
    /// had.
    index: DMap<PageKey, u32>,
    /// Intrusive LRU list: head = least recently used. Touch is now an
    /// O(1) splice instead of a B-tree remove + insert.
    lru_head: u32,
    lru_tail: u32,
    /// Dirty sublist in the same recency order. Keeps `writeback_batch`
    /// proportional to the batch size instead of the cache size, and
    /// makes the dirty-page count O(1); must mirror every dirty-bit
    /// and recency transition of the nodes.
    dirty_head: u32,
    dirty_tail: u32,
    dirty_count: usize,
    events: VecDeque<(PageMeta, PageEvent)>,
    stats: CacheStats,
    /// Cached-page handles per file, dense, for O(1) residency queries
    /// and per-file scans proportional to the file, not the cache.
    per_ino: DMap<InodeNr, Vec<u32>>,
    /// Pages deprioritized for eviction (informed replacement): pages
    /// whose Duet notifications have not been consumed yet. An
    /// *extension* beyond the paper, which names informed cache
    /// replacement as future work (§2). Protection is advisory — a
    /// protected page is still evicted when nothing else is available,
    /// so this never degenerates into pinning (which §3.1 avoids).
    protected: DSet<PageKey>,
    /// Fault-injection handle; `None` (or a quiet plan) behaves
    /// byte-identically to an unfaulted cache.
    faults: Option<FaultHandle>,
    /// Trace handle. The cache has no clock, so its hooks are pure
    /// counter ticks (`cache.add` / `cache.remove` / `cache.dirty` /
    /// `cache.flush` / `cache.evict`); timestamped ring events for
    /// cache-driven I/O come from the filesystem layers above.
    trace: Option<TraceHandle>,
}

impl PageCache {
    /// Creates a cache holding at most `capacity` pages.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "page cache capacity must be positive");
        PageCache {
            capacity,
            slab: Slab::new(),
            index: DMap::new(),
            lru_head: NIL,
            lru_tail: NIL,
            dirty_head: NIL,
            dirty_tail: NIL,
            dirty_count: 0,
            events: VecDeque::new(),
            stats: CacheStats::default(),
            per_ino: DMap::new(),
            protected: DSet::new(),
            faults: None,
            trace: None,
        }
    }

    /// Arms (or disarms, with `None`) fault injection: eviction storms
    /// on insert and dirty-page writeback failures.
    pub fn set_faults(&mut self, faults: Option<FaultHandle>) {
        self.faults = faults;
    }

    /// Arms (or disarms, with `None`) tracing. Pure observation: cache
    /// contents, events and statistics are unaffected.
    pub fn set_trace(&mut self, trace: Option<TraceHandle>) {
        self.trace = trace;
    }

    /// Replaces the advisory protection set (informed replacement).
    /// Keys beyond `max` are ignored so protection can never cover the
    /// whole cache.
    pub fn set_protected<I: IntoIterator<Item = PageKey>>(&mut self, keys: I, max: usize) {
        self.protected.clear();
        for k in keys.into_iter().take(max) {
            self.protected.insert(k);
        }
    }

    /// Number of currently protected keys.
    pub fn protected_len(&self) -> usize {
        self.protected.len()
    }

    fn ino_track(&mut self, ino: InodeNr, h: u32) {
        let v = self.per_ino.get_or_insert_with(ino, Vec::new);
        let pos = v.len() as u32;
        v.push(h);
        self.slab[h].ino_pos = pos;
    }

    fn ino_untrack(&mut self, ino: InodeNr, h: u32) {
        let pos = self.slab[h].ino_pos as usize;
        let mut moved = None;
        let mut empty = false;
        match self.per_ino.get_mut(&ino) {
            Some(v) => {
                v.swap_remove(pos);
                if pos < v.len() {
                    moved = Some(v[pos]);
                }
                empty = v.is_empty();
            }
            None => debug_assert!(false, "per-inode index underflow"),
        }
        if let Some(m) = moved {
            self.slab[m].ino_pos = pos as u32;
        }
        if empty {
            self.per_ino.remove(&ino);
        }
    }

    fn lru_unlink(&mut self, h: u32) {
        let (p, n) = {
            let node = &self.slab[h];
            (node.prev, node.next)
        };
        if p == NIL {
            self.lru_head = n;
        } else {
            self.slab[p].next = n;
        }
        if n == NIL {
            self.lru_tail = p;
        } else {
            self.slab[n].prev = p;
        }
    }

    fn lru_push_tail(&mut self, h: u32) {
        let t = self.lru_tail;
        {
            let node = &mut self.slab[h];
            node.prev = t;
            node.next = NIL;
        }
        if t == NIL {
            self.lru_head = h;
        } else {
            self.slab[t].next = h;
        }
        self.lru_tail = h;
    }

    fn dirty_unlink(&mut self, h: u32) {
        let (p, n) = {
            let node = &mut self.slab[h];
            let pn = (node.dprev, node.dnext);
            node.in_dirty = false;
            node.dprev = NIL;
            node.dnext = NIL;
            pn
        };
        if p == NIL {
            self.dirty_head = n;
        } else {
            self.slab[p].dnext = n;
        }
        if n == NIL {
            self.dirty_tail = p;
        } else {
            self.slab[n].dprev = p;
        }
        self.dirty_count -= 1;
    }

    fn dirty_push_tail(&mut self, h: u32) {
        let t = self.dirty_tail;
        {
            let node = &mut self.slab[h];
            node.in_dirty = true;
            node.dprev = t;
            node.dnext = NIL;
        }
        if t == NIL {
            self.dirty_head = h;
        } else {
            self.slab[t].dnext = h;
        }
        self.dirty_tail = h;
        self.dirty_count += 1;
    }

    /// Maximum number of pages.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of cached pages.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Returns `true` if the cache holds no pages.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Hit/miss statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    fn node_meta(n: &Node) -> PageMeta {
        PageMeta {
            key: n.key,
            block: n.block,
            dirty: n.dirty,
        }
    }

    /// Refreshes a page's recency: moves it to the LRU tail, and — as
    /// the tick-keyed maps did — to the dirty tail if dirty.
    fn touch_handle(&mut self, h: u32) {
        self.lru_unlink(h);
        self.lru_push_tail(h);
        if self.slab[h].dirty {
            if self.slab[h].in_dirty {
                self.dirty_unlink(h);
            }
            self.dirty_push_tail(h);
        }
    }

    fn push_event(&mut self, meta: PageMeta, ev: PageEvent) {
        if let Some(trace) = &self.trace {
            // One literal tick per arm: the kind registry (lint S2)
            // audits emission sites against DESIGN.md §10.1, which a
            // computed kind string would defeat.
            match ev {
                PageEvent::Added => trace.tick(TraceLayer::Cache, "add"),
                PageEvent::Removed => trace.tick(TraceLayer::Cache, "remove"),
                PageEvent::Dirtied => trace.tick(TraceLayer::Cache, "dirty"),
                PageEvent::Flushed => trace.tick(TraceLayer::Cache, "flush"),
            }
        }
        self.events.push_back((meta, ev));
    }

    /// Looks up a page, counting a hit or miss and refreshing LRU
    /// position on a hit.
    pub fn lookup(&mut self, key: PageKey) -> Option<PageMeta> {
        if let Some(&h) = self.index.get(&key) {
            let m = Self::node_meta(&self.slab[h]);
            self.stats.hits += 1;
            self.touch_handle(h);
            Some(m)
        } else {
            self.stats.misses += 1;
            None
        }
    }

    /// Looks up a page without touching LRU order or statistics.
    pub fn peek(&self, key: PageKey) -> Option<PageMeta> {
        self.index
            .get(&key)
            .map(|&h| Self::node_meta(&self.slab[h]))
    }

    /// Returns `true` if the page is cached (no LRU side effects).
    pub fn contains(&self, key: PageKey) -> bool {
        self.index.contains_key(&key)
    }

    /// Inserts (or refreshes) a page and returns any pages evicted to
    /// make room. Evicted entries carry their pre-eviction dirty flag;
    /// the caller must charge a device write for each dirty one (the
    /// cache emits `Flushed` followed by `Removed` for them).
    ///
    /// Inserting an already-cached page refreshes its LRU position,
    /// updates the block mapping if `block` is `Some`, and dirties it if
    /// `dirty` is set.
    pub fn insert(&mut self, key: PageKey, block: Option<BlockNr>, dirty: bool) -> Vec<PageMeta> {
        let mut evicted = Vec::new();
        self.insert_into(key, block, dirty, &mut evicted);
        evicted
    }

    /// [`PageCache::insert`] with the evicted pages appended to a
    /// caller-owned buffer instead of a fresh allocation. Multi-page
    /// operations reuse one buffer across the whole run of inserts —
    /// at steady state every insert evicts, so the per-call `Vec` of
    /// the plain variant is a measurable share of sweep wall time.
    pub fn insert_into(
        &mut self,
        key: PageKey,
        block: Option<BlockNr>,
        dirty: bool,
        evicted: &mut Vec<PageMeta>,
    ) {
        if let Some(&h) = self.index.get(&key) {
            if let Some(b) = block {
                self.slab[h].block = Some(b);
            }
            if dirty {
                self.mark_dirty(key);
            }
            self.touch_handle(h);
            return;
        }
        let h = self.slab.insert(Node {
            key,
            block,
            dirty,
            prev: NIL,
            next: NIL,
            in_dirty: false,
            dprev: NIL,
            dnext: NIL,
            ino_pos: 0,
        });
        self.index.insert(key, h);
        self.lru_push_tail(h);
        if dirty {
            self.dirty_push_tail(h);
        }
        self.ino_track(key.ino, h);
        self.stats.insertions += 1;
        let meta = Self::node_meta(&self.slab[h]);
        self.push_event(meta, PageEvent::Added);
        if dirty {
            self.push_event(meta, PageEvent::Dirtied);
        }
        // A forced eviction storm models transient memory pressure: the
        // cache sheds extra pages on this insert, emitting exactly the
        // event sequences a real shrinker pass would (Flushed + Removed
        // for dirty victims, Removed for clean ones).
        let mut target = self.capacity;
        if let Some(faults) = &self.faults {
            if self.index.len() > 1 && faults.fire(FaultSite::CacheEvictionStorm) {
                let max_shed = ((self.capacity / 4).max(1)) as u64;
                let shed = faults.amplitude(FaultSite::CacheEvictionStorm, 1, max_shed + 1);
                target = self.capacity.saturating_sub(shed as usize).max(1);
            }
        }
        self.evict_into(target, evicted);
    }

    /// How far down the LRU list eviction searches for a clean victim
    /// before falling back to flushing the oldest (dirty) page. Page
    /// reclaim prefers clean pages — dirty ones are left for the
    /// batched background flusher — but the search must stay bounded.
    const CLEAN_SCAN: usize = 1024;

    fn evict_into(&mut self, target: usize, evicted: &mut Vec<PageMeta>) {
        while self.index.len() > target {
            // Prefer the least-recently-used *clean, unprotected* page;
            // then clean protected; every entry except the most recent
            // (the page being inserted) is a candidate, up to a bounded
            // scan depth. Dirty LRU fallback last.
            let scan = Self::CLEAN_SCAN
                .min(self.index.len().saturating_sub(1))
                .max(1);
            let mut clean_protected = NIL;
            let mut chosen = NIL;
            let mut h = self.lru_head;
            let mut seen = 0usize;
            while h != NIL && seen < scan {
                let node = &self.slab[h];
                if !node.dirty {
                    // `is_empty` first: without informed replacement the
                    // protected set never fills, and hashing every
                    // scanned key would be pure overhead on this path.
                    if !self.protected.is_empty() && self.protected.contains(&node.key) {
                        if clean_protected == NIL {
                            clean_protected = h;
                        }
                    } else {
                        chosen = h;
                        break;
                    }
                }
                h = node.next;
                seen += 1;
            }
            let victim = if chosen != NIL {
                chosen
            } else if clean_protected != NIL {
                clean_protected
            } else {
                // Fall back to the oldest page outright (all dirty).
                self.lru_head
            };
            if victim == NIL {
                break;
            }
            let node = self.detach(victim);
            let before = Self::node_meta(&node);
            if node.dirty {
                self.stats.writebacks += 1;
                let clean = PageMeta {
                    dirty: false,
                    ..before
                };
                self.push_event(clean, PageEvent::Flushed);
                self.push_event(clean, PageEvent::Removed);
            } else {
                self.push_event(before, PageEvent::Removed);
            }
            self.stats.evictions += 1;
            if let Some(trace) = &self.trace {
                trace.tick(TraceLayer::Cache, "evict");
            }
            evicted.push(before);
        }
    }

    /// Fully removes a resident page: unlinks both intrusive lists,
    /// drops the key index and per-file entry, frees the slab slot.
    /// Returns the node's final state.
    fn detach(&mut self, h: u32) -> Node {
        self.lru_unlink(h);
        if self.slab[h].in_dirty {
            self.dirty_unlink(h);
        }
        let node = self.slab[h];
        self.index.remove(&node.key);
        self.ino_untrack(node.key.ino, h);
        self.slab.remove(h);
        node
    }

    /// Sets the dirty bit. Returns `true` if the page was present and
    /// transitioned from clean to dirty (emitting `Dirtied`).
    pub fn mark_dirty(&mut self, key: PageKey) -> bool {
        let Some(&h) = self.index.get(&key) else {
            return false;
        };
        if self.slab[h].dirty {
            self.touch_handle(h);
            return false;
        }
        self.slab[h].dirty = true;
        let meta = Self::node_meta(&self.slab[h]);
        self.push_event(meta, PageEvent::Dirtied);
        self.touch_handle(h);
        true
    }

    /// Resolves a delayed allocation: records the physical block backing
    /// the page. No event is emitted; the block will ride along on the
    /// next event's metadata (the paper defers such pages "to be
    /// returned by a later fetch operation", §4.2).
    pub fn set_block(&mut self, key: PageKey, block: BlockNr) {
        if let Some(&h) = self.index.get(&key) {
            self.slab[h].block = Some(block);
        }
    }

    /// Takes up to `max` dirty pages for background writeback, oldest
    /// first. The pages are marked clean and `Flushed` events are
    /// emitted; the caller must issue the corresponding device writes.
    pub fn writeback_batch(&mut self, max: usize) -> Vec<PageMeta> {
        // The dirty list is recency-ordered, so its prefix *is* the
        // oldest-first dirty scan — no pass over clean entries.
        let mut victims = Vec::with_capacity(max.min(self.dirty_count));
        let mut h = self.dirty_head;
        while h != NIL && victims.len() < max {
            victims.push(h);
            h = self.slab[h].dnext;
        }
        let mut out = Vec::with_capacity(victims.len());
        for h in victims {
            // An injected writeback failure leaves the page dirty (no
            // Flushed event, no writeback charged); the recency-ordered
            // dirty list is untouched, so the next batch retries it.
            if let Some(faults) = &self.faults {
                if faults.fire(FaultSite::CacheWritebackFail) {
                    if let Some(trace) = &self.trace {
                        trace.tick(TraceLayer::Cache, "writeback.fail");
                    }
                    continue;
                }
            }
            self.dirty_unlink(h);
            self.slab[h].dirty = false;
            self.stats.writebacks += 1;
            let meta = Self::node_meta(&self.slab[h]);
            self.push_event(meta, PageEvent::Flushed);
            out.push(meta);
        }
        out
    }

    /// Flushes all dirty pages of one file (fsync-style). Marks them
    /// clean, emits `Flushed`, and returns them for the caller to write.
    pub fn flush_file(&mut self, ino: InodeNr) -> Vec<PageMeta> {
        // The per-file index is in handle order; sort by page index so
        // the events keep the key order the B-tree range scan had.
        let mut victims: Vec<(PageIndex, u32)> = match self.per_ino.get(&ino) {
            Some(v) => v
                .iter()
                .filter(|&&h| self.slab[h].dirty)
                .map(|&h| (self.slab[h].key.index, h))
                .collect(),
            None => return Vec::new(),
        };
        victims.sort_unstable_by_key(|&(idx, _)| idx);
        let mut out = Vec::with_capacity(victims.len());
        for (_, h) in victims {
            self.dirty_unlink(h);
            self.slab[h].dirty = false;
            self.stats.writebacks += 1;
            let meta = Self::node_meta(&self.slab[h]);
            self.push_event(meta, PageEvent::Flushed);
            out.push(meta);
        }
        out
    }

    /// Invalidates every page of a file (delete/truncate): emits
    /// `Removed` for each and discards dirty data (the file is going
    /// away). Returns the removed pages.
    pub fn remove_file(&mut self, ino: InodeNr) -> Vec<PageMeta> {
        let mut victims: Vec<PageKey> = match self.per_ino.get(&ino) {
            Some(v) => v.iter().map(|&h| self.slab[h].key).collect(),
            None => return Vec::new(),
        };
        victims.sort_unstable();
        let mut out = Vec::with_capacity(victims.len());
        for key in victims {
            if let Some(m) = self.remove(key) {
                out.push(m);
            }
        }
        out
    }

    /// Invalidates a single page, emitting `Removed`. Returns its
    /// pre-removal metadata if it was present.
    pub fn remove(&mut self, key: PageKey) -> Option<PageMeta> {
        let &h = self.index.get(&key)?;
        let node = self.detach(h);
        let meta = Self::node_meta(&node);
        self.push_event(meta, PageEvent::Removed);
        Some(meta)
    }

    /// Iterates over all cached pages in key order (used by the
    /// Duet registration scan, §4.1). The resident set lives in hash
    /// order now, so this sorts a snapshot — O(n log n) on this cold
    /// path bought O(1) on every hot-path touch.
    pub fn iter(&self) -> impl Iterator<Item = PageMeta> + '_ {
        let mut metas: Vec<PageMeta> = self
            .index
            .values()
            .map(|&h| Self::node_meta(&self.slab[h]))
            .collect();
        metas.sort_unstable_by_key(|m| m.key);
        metas.into_iter()
    }

    /// Number of cached pages belonging to `ino` (O(1)).
    pub fn pages_of(&self, ino: InodeNr) -> usize {
        self.per_ino.get(&ino).map(|v| v.len()).unwrap_or(0)
    }

    /// Cached pages of one file, in key order.
    pub fn pages_of_file(&self, ino: InodeNr) -> Vec<PageMeta> {
        let Some(v) = self.per_ino.get(&ino) else {
            return Vec::new();
        };
        let mut out: Vec<PageMeta> = v.iter().map(|&h| Self::node_meta(&self.slab[h])).collect();
        out.sort_unstable_by_key(|m| m.key);
        out
    }

    /// Number of dirty pages (O(1); the writeback high-water check runs
    /// every simulation step).
    pub fn dirty_len(&self) -> usize {
        self.dirty_count
    }

    /// Drains and returns all pending page events in occurrence order.
    pub fn drain_events(&mut self) -> Vec<(PageMeta, PageEvent)> {
        self.events.drain(..).collect()
    }

    /// Moves the queued events out wholesale, leaving the queue empty.
    /// Pair with [`PageCache::put_back_events`] to recycle the buffer —
    /// the event pump runs after every filesystem operation, and
    /// [`PageCache::drain_events`]'s fresh `Vec` per call was measurable
    /// across a sweep.
    pub fn take_events(&mut self) -> VecDeque<(PageMeta, PageEvent)> {
        std::mem::take(&mut self.events)
    }

    /// Returns a buffer obtained from [`PageCache::take_events`] so its
    /// capacity is reused. Contents are discarded; events queued since
    /// the take (there are none in the pump's take → consume → put-back
    /// window, but the API does not rely on that) are preserved.
    pub fn put_back_events(&mut self, mut buf: VecDeque<(PageMeta, PageEvent)>) {
        buf.clear();
        if self.events.is_empty() {
            self.events = buf;
        }
    }

    /// Number of undrained events (for overhead accounting).
    pub fn pending_events(&self) -> usize {
        self.events.len()
    }
}

impl sim_core::snapshot::StateDigest for PageCache {
    fn digest_state(&self, d: &mut sim_core::snapshot::Digest) {
        // Logical state only, traversed in the orders that drive future
        // behaviour (LRU eviction order, dirty writeback order): two
        // caches that digest equal are behaviourally indistinguishable
        // even if their slab handle numbering were to differ.
        d.write_usize(self.capacity);
        d.write_usize(self.index.len());
        let walk = |mut h: u32, next: fn(&Node) -> u32, d: &mut sim_core::snapshot::Digest| {
            while h != NIL {
                let n = &self.slab[h];
                d.write_u64(n.key.ino.raw());
                d.write_u64(n.key.index.raw());
                d.write_bool(n.block.is_some());
                d.write_u64(n.block.map_or(0, |b| b.raw()));
                d.write_bool(n.dirty);
                h = next(n);
            }
        };
        walk(self.lru_head, |n| n.next, d);
        d.write_usize(self.dirty_count);
        walk(self.dirty_head, |n| n.dnext, d);
        d.write_usize(self.events.len());
        for (meta, ev) in &self.events {
            d.write_u64(meta.key.ino.raw());
            d.write_u64(meta.key.index.raw());
            d.write_bool(meta.dirty);
            d.write_u32(match ev {
                PageEvent::Added => 0,
                PageEvent::Removed => 1,
                PageEvent::Dirtied => 2,
                PageEvent::Flushed => 3,
            });
        }
        d.write_u64(self.stats.hits);
        d.write_u64(self.stats.misses);
        d.write_u64(self.stats.insertions);
        d.write_u64(self.stats.evictions);
        d.write_u64(self.stats.writebacks);
        // Protection is advisory and replaced wholesale per scan; its
        // membership (sorted for handle-independence) still matters.
        let mut prot: Vec<PageKey> = self.protected.iter().copied().collect();
        prot.sort_unstable();
        d.write_usize(prot.len());
        for k in prot {
            d.write_u64(k.ino.raw());
            d.write_u64(k.index.raw());
        }
        d.write_bool(self.faults.is_some());
        d.write_bool(self.trace.is_some());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::PageIndex;

    fn key(ino: u64, idx: u64) -> PageKey {
        PageKey::new(InodeNr(ino), PageIndex(idx))
    }

    #[test]
    fn insert_lookup_hit_miss() {
        let mut c = PageCache::new(4);
        let k = key(1, 0);
        assert!(c.lookup(k).is_none());
        c.insert(k, Some(BlockNr(7)), false);
        let m = c.lookup(k).expect("hit");
        assert_eq!(m.block, Some(BlockNr(7)));
        assert!(!m.dirty);
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = PageCache::new(2);
        c.insert(key(1, 0), None, false);
        c.insert(key(1, 1), None, false);
        c.lookup(key(1, 0)); // 1,1 becomes LRU
        let evicted = c.insert(key(1, 2), None, false);
        assert_eq!(evicted.len(), 1);
        assert_eq!(evicted[0].key, key(1, 1));
        assert!(c.contains(key(1, 0)));
        assert!(!c.contains(key(1, 1)));
    }

    #[test]
    fn eviction_prefers_clean_pages() {
        let mut c = PageCache::new(4);
        // Two old dirty pages, two old clean pages.
        c.insert(key(1, 0), Some(BlockNr(10)), true);
        c.insert(key(1, 1), Some(BlockNr(11)), true);
        c.insert(key(2, 0), Some(BlockNr(20)), false);
        c.insert(key(2, 1), Some(BlockNr(21)), false);
        c.drain_events();
        // Inserting one more evicts the oldest *clean* page, not the
        // older dirty ones (those wait for the background flusher).
        let evicted = c.insert(key(3, 0), None, false);
        assert_eq!(evicted.len(), 1);
        assert_eq!(evicted[0].key, key(2, 0), "clean page chosen");
        assert!(!evicted[0].dirty);
        assert!(c.contains(key(1, 0)), "dirty page survived");
        assert!(c.contains(key(1, 1)));
    }

    #[test]
    fn eviction_never_steals_the_inserted_page() {
        let mut c = PageCache::new(1);
        c.insert(key(1, 0), None, true);
        c.drain_events();
        // The only other entry is the incoming page; the dirty LRU page
        // must be flush-evicted instead of the insertion being undone.
        let evicted = c.insert(key(2, 0), None, false);
        assert_eq!(evicted[0].key, key(1, 0));
        assert!(evicted[0].dirty, "fallback flush-evicts the LRU page");
        assert!(c.contains(key(2, 0)), "incoming page survives");
    }

    #[test]
    fn protected_pages_evicted_last() {
        let mut c = PageCache::new(4);
        for i in 0..4 {
            c.insert(key(1, i), None, false);
        }
        c.drain_events();
        // Protect the two oldest pages.
        c.set_protected([key(1, 0), key(1, 1)], 16);
        assert_eq!(c.protected_len(), 2);
        let evicted = c.insert(key(2, 0), None, false);
        assert_eq!(evicted[0].key, key(1, 2), "oldest unprotected chosen");
        // With everything protected, protection is advisory: the LRU
        // clean page still goes (no pinning).
        c.set_protected((0..4).map(|i| key(1, i)).chain([key(2, 0)]), 16);
        let evicted = c.insert(key(2, 1), None, false);
        assert_eq!(evicted[0].key, key(1, 0));
    }

    #[test]
    fn protection_cap_enforced() {
        let mut c = PageCache::new(4);
        c.set_protected((0..100).map(|i| key(9, i)), 10);
        assert_eq!(c.protected_len(), 10);
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = PageCache::new(1);
        c.insert(key(1, 0), Some(BlockNr(5)), true);
        c.drain_events();
        let evicted = c.insert(key(2, 0), None, false);
        assert_eq!(evicted.len(), 1);
        assert!(evicted[0].dirty, "caller must charge a write");
        let evs = c.drain_events();
        // Added (new page), then Flushed + Removed for the victim.
        let kinds: Vec<PageEvent> = evs.iter().map(|(_, e)| *e).collect();
        assert!(kinds.contains(&PageEvent::Flushed));
        assert!(kinds.contains(&PageEvent::Removed));
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn event_sequence_for_dirty_insert() {
        let mut c = PageCache::new(4);
        c.insert(key(1, 0), None, true);
        let evs = c.drain_events();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].1, PageEvent::Added);
        assert_eq!(evs[1].1, PageEvent::Dirtied);
        assert!(evs[1].0.dirty);
    }

    #[test]
    fn mark_dirty_transitions_once() {
        let mut c = PageCache::new(4);
        c.insert(key(1, 0), None, false);
        c.drain_events();
        assert!(c.mark_dirty(key(1, 0)));
        assert!(!c.mark_dirty(key(1, 0)), "already dirty");
        assert!(!c.mark_dirty(key(9, 9)), "absent page");
        let evs = c.drain_events();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].1, PageEvent::Dirtied);
    }

    #[test]
    fn writeback_batch_cleans_oldest_first() {
        let mut c = PageCache::new(8);
        for i in 0..4 {
            c.insert(key(1, i), Some(BlockNr(i)), true);
        }
        c.drain_events();
        let batch = c.writeback_batch(2);
        assert_eq!(batch.len(), 2);
        assert_eq!(batch[0].key, key(1, 0));
        assert_eq!(batch[1].key, key(1, 1));
        assert!(!c.peek(key(1, 0)).unwrap().dirty);
        assert!(c.peek(key(1, 3)).unwrap().dirty);
        let evs = c.drain_events();
        assert!(evs.iter().all(|(_, e)| *e == PageEvent::Flushed));
        assert_eq!(evs.len(), 2);
    }

    #[test]
    fn flush_file_cleans_only_that_file() {
        let mut c = PageCache::new(8);
        c.insert(key(1, 0), None, true);
        c.insert(key(2, 0), None, true);
        c.drain_events();
        let flushed = c.flush_file(InodeNr(1));
        assert_eq!(flushed.len(), 1);
        assert!(!c.peek(key(1, 0)).unwrap().dirty);
        assert!(c.peek(key(2, 0)).unwrap().dirty);
    }

    #[test]
    fn remove_file_invalidates_all_pages() {
        let mut c = PageCache::new(8);
        c.insert(key(1, 0), None, false);
        c.insert(key(1, 1), None, true);
        c.insert(key(2, 0), None, false);
        c.drain_events();
        let removed = c.remove_file(InodeNr(1));
        assert_eq!(removed.len(), 2);
        assert_eq!(c.len(), 1);
        assert_eq!(c.pages_of(InodeNr(1)), 0);
        let evs = c.drain_events();
        assert!(evs.iter().all(|(_, e)| *e == PageEvent::Removed));
    }

    #[test]
    fn set_block_resolves_delayed_allocation() {
        let mut c = PageCache::new(4);
        c.insert(key(1, 0), None, true);
        assert_eq!(c.peek(key(1, 0)).unwrap().block, None);
        c.set_block(key(1, 0), BlockNr(42));
        assert_eq!(c.peek(key(1, 0)).unwrap().block, Some(BlockNr(42)));
        // No event from block resolution.
        let evs = c.drain_events();
        assert!(evs.iter().all(|(_, e)| *e != PageEvent::Flushed));
    }

    #[test]
    fn reinsert_refreshes_instead_of_duplicating() {
        let mut c = PageCache::new(4);
        c.insert(key(1, 0), Some(BlockNr(1)), false);
        c.drain_events();
        let evicted = c.insert(key(1, 0), Some(BlockNr(2)), true);
        assert!(evicted.is_empty());
        assert_eq!(c.len(), 1);
        let m = c.peek(key(1, 0)).unwrap();
        assert_eq!(m.block, Some(BlockNr(2)));
        assert!(m.dirty);
        let evs = c.drain_events();
        assert_eq!(evs.len(), 1, "only the Dirtied transition");
        assert_eq!(evs[0].1, PageEvent::Dirtied);
    }

    #[test]
    fn iter_covers_all_entries() {
        let mut c = PageCache::new(8);
        for i in 0..5 {
            c.insert(key(i, 0), None, i % 2 == 0);
        }
        assert_eq!(c.iter().count(), 5);
        assert_eq!(c.iter().filter(|m| m.dirty).count(), 3);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = PageCache::new(0);
    }

    // Randomized reference tests driven by the deterministic
    // `sim_core::check` helper (the workspace builds offline, with no
    // proptest dep). Failures report the reproducing per-case seed.
    mod properties {
        use super::*;
        use sim_core::check::{forall, CheckConfig};

        /// The cache never exceeds capacity, and LRU bookkeeping
        /// stays consistent under arbitrary operation sequences.
        #[test]
        fn capacity_and_consistency() {
            let cfg = CheckConfig::new("cache-capacity-and-consistency", 0xCAC4E).cases(64);
            forall(&cfg, |_case, rng| {
                let cap = rng.gen_range(1, 8) as usize;
                let mut c = PageCache::new(cap);
                for _ in 0..rng.gen_range(0, 200) {
                    let op = rng.gen_range(0, 8);
                    let ino = rng.gen_range(0, 6);
                    let idx = rng.gen_range(0, 4);
                    let k = key(ino, idx);
                    match op {
                        0 => {
                            c.insert(k, None, false);
                        }
                        1 => {
                            c.insert(k, Some(BlockNr(ino * 10 + idx)), true);
                        }
                        2 => {
                            c.lookup(k);
                        }
                        3 => {
                            c.mark_dirty(k);
                        }
                        4 => {
                            c.remove(k);
                        }
                        5 => {
                            c.writeback_batch(idx as usize + 1);
                        }
                        6 => {
                            c.flush_file(InodeNr(ino));
                        }
                        _ => {
                            c.remove_file(InodeNr(ino));
                        }
                    }
                    assert!(c.len() <= cap);
                    assert_eq!(c.iter().count(), c.len());
                    // The O(1) per-inode counter agrees with a scan.
                    let scan = c.iter().filter(|m| m.key.ino == InodeNr(ino)).count();
                    assert_eq!(c.pages_of(InodeNr(ino)), scan);
                    assert_eq!(c.pages_of_file(InodeNr(ino)).len(), scan);
                    // The O(1) dirty counter agrees with a scan.
                    let dirty_scan = c.iter().filter(|m| m.dirty).count();
                    assert_eq!(c.dirty_len(), dirty_scan);
                }
                Ok(())
            })
            .unwrap();
        }

        /// Every Added event is eventually balanced by a Removed
        /// event or a still-resident page.
        #[test]
        fn added_minus_removed_equals_resident() {
            let cfg = CheckConfig::new("cache-added-removed-balance", 0xADD).cases(64);
            forall(&cfg, |_case, rng| {
                let mut c = PageCache::new(3);
                for _ in 0..rng.gen_range(0, 100) {
                    let op = rng.gen_range(0, 2);
                    let ino = rng.gen_range(0, 4);
                    let idx = rng.gen_range(0, 4);
                    match op {
                        0 => {
                            c.insert(key(ino, idx), None, false);
                        }
                        _ => {
                            c.remove(key(ino, idx));
                        }
                    }
                }
                let evs = c.drain_events();
                let added = evs.iter().filter(|(_, e)| *e == PageEvent::Added).count();
                let removed = evs.iter().filter(|(_, e)| *e == PageEvent::Removed).count();
                assert_eq!(added - removed, c.len());
                Ok(())
            })
            .unwrap();
        }
    }

    mod faults {
        use super::*;
        use sim_core::fault::{FaultHandle, FaultPlan, FaultSite};

        fn storm_plan() -> FaultPlan {
            FaultPlan::quiet().with_ppm(FaultSite::CacheEvictionStorm, 1_000_000)
        }

        /// Learn the shed amplitude a given seed will draw, from a
        /// replica injector with the same `(seed, plan)` pair.
        fn predicted_shed(seed: u64, capacity: usize) -> u64 {
            let replica = FaultHandle::new(seed, storm_plan());
            assert!(replica.fire(FaultSite::CacheEvictionStorm));
            let max_shed = ((capacity / 4).max(1)) as u64;
            replica.amplitude(FaultSite::CacheEvictionStorm, 1, max_shed + 1)
        }

        #[test]
        fn eviction_storm_fires_exact_clean_event_sequence() {
            let seed = 11;
            let mut c = PageCache::new(8);
            for i in 0..7 {
                c.insert(key(1, i), Some(BlockNr(100 + i)), false);
            }
            c.drain_events();
            let handle = FaultHandle::new(seed, storm_plan());
            c.set_faults(Some(handle.clone()));
            let shed = predicted_shed(seed, 8);
            let evicted = c.insert(key(2, 0), None, false);
            assert_eq!(handle.fired(FaultSite::CacheEvictionStorm), 1);
            assert_eq!(evicted.len(), shed as usize, "storm sheds the drawn amount");
            assert_eq!(c.len(), 8 - shed as usize);
            // Exact hook sequence Duet sees: Added for the insert, then
            // one Removed per clean victim, oldest first.
            let evs = c.drain_events();
            assert_eq!(evs.len(), 1 + shed as usize);
            assert_eq!(evs[0].1, PageEvent::Added);
            assert_eq!(evs[0].0.key, key(2, 0));
            for (i, (meta, ev)) in evs.iter().skip(1).enumerate() {
                assert_eq!(*ev, PageEvent::Removed);
                assert_eq!(meta.key, key(1, i as u64), "oldest clean pages go first");
                assert!(!meta.dirty);
            }
        }

        #[test]
        fn eviction_storm_flushes_dirty_victims() {
            let seed = 11;
            let mut c = PageCache::new(8);
            for i in 0..7 {
                c.insert(key(1, i), Some(BlockNr(100 + i)), true);
            }
            c.drain_events();
            c.set_faults(Some(FaultHandle::new(seed, storm_plan())));
            let shed = predicted_shed(seed, 8);
            let evicted = c.insert(key(2, 0), None, false);
            // All victims were dirty: caller must charge their writes.
            assert_eq!(evicted.len(), shed as usize);
            assert!(evicted.iter().all(|m| m.dirty));
            // Exact sequence: Added, then Flushed + Removed per victim.
            let evs = c.drain_events();
            assert_eq!(evs.len(), 1 + 2 * shed as usize);
            assert_eq!(evs[0].1, PageEvent::Added);
            for v in 0..shed as usize {
                let (fm, fe) = &evs[1 + 2 * v];
                let (rm, re) = &evs[2 + 2 * v];
                assert_eq!(*fe, PageEvent::Flushed);
                assert!(!fm.dirty, "Flushed reports the page clean");
                assert_eq!(*re, PageEvent::Removed);
                assert_eq!(fm.key, rm.key);
                assert_eq!(fm.key, key(1, v as u64), "oldest dirty pages go first");
            }
        }

        #[test]
        fn writeback_failure_leaves_pages_dirty_for_retry() {
            let plan = FaultPlan::quiet().with_ppm(FaultSite::CacheWritebackFail, 1_000_000);
            let handle = FaultHandle::new(5, plan);
            let mut c = PageCache::new(8);
            for i in 0..3 {
                c.insert(key(1, i), Some(BlockNr(i)), true);
            }
            c.drain_events();
            c.set_faults(Some(handle.clone()));
            // Every writeback fails: nothing flushed, nothing cleaned.
            let batch = c.writeback_batch(8);
            assert!(batch.is_empty());
            assert_eq!(c.dirty_len(), 3);
            assert!(
                c.drain_events().is_empty(),
                "failed writeback emits no events"
            );
            assert_eq!(handle.fired(FaultSite::CacheWritebackFail), 3);
            // The fault clears: the retry flushes the same pages,
            // oldest first, as if the failure never happened.
            c.set_faults(None);
            let batch = c.writeback_batch(8);
            assert_eq!(batch.len(), 3);
            assert_eq!(batch[0].key, key(1, 0));
            assert_eq!(c.dirty_len(), 0);
            let evs = c.drain_events();
            assert!(evs.iter().all(|(_, e)| *e == PageEvent::Flushed));
        }

        #[test]
        fn quiet_plan_is_byte_identical_to_unfaulted() {
            let mut armed = PageCache::new(4);
            armed.set_faults(Some(FaultHandle::new(9, FaultPlan::quiet())));
            let mut clean = PageCache::new(4);
            for i in 0..32u64 {
                let k = key(i % 5, i % 3);
                assert_eq!(
                    armed.insert(k, None, i % 2 == 0),
                    clean.insert(k, None, i % 2 == 0)
                );
                assert_eq!(armed.writeback_batch(2), clean.writeback_batch(2));
            }
            assert_eq!(armed.drain_events(), clean.drain_events());
            assert_eq!(armed.stats(), clean.stats());
        }
    }
}
