//! Page identity, metadata and page-cache events.

use sim_core::{BlockNr, InodeNr, PageIndex};

/// Identity of a page in the cache: one page of one file.
///
/// Directory pages are represented the same way (the paper notes Duet
/// "provides both file and directory pages to file tasks", §4.2);
/// anonymous pages are never inserted because they are "not backed by
/// files" and Duet ignores them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageKey {
    /// Owning file or directory.
    pub ino: InodeNr,
    /// Logical page offset within the file.
    pub index: PageIndex,
}

impl PageKey {
    /// Creates a page key.
    pub fn new(ino: InodeNr, index: PageIndex) -> Self {
        PageKey { ino, index }
    }
}

impl sim_core::DetHash for PageKey {
    #[inline]
    fn det_hash(&self, seed: u64) -> u64 {
        (self.ino, self.index).det_hash(seed)
    }
}

/// Snapshot of a page's cache state, passed along with events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageMeta {
    /// Page identity.
    pub key: PageKey,
    /// Physical block backing the page, if already allocated. `None`
    /// models delayed allocation (§4.2): the block is assigned at
    /// writeback time.
    pub block: Option<BlockNr>,
    /// Whether the page is dirty.
    pub dirty: bool,
}

/// Page-cache events, exactly the four of Table 2.
///
/// The corresponding *state* notifications (`Exists`, `Modified`) are
/// derived by the Duet framework from these events; the cache itself
/// only reports what happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PageEvent {
    /// Page added to the cache.
    Added,
    /// Page removed from the cache.
    Removed,
    /// Dirty bit set.
    Dirtied,
    /// Dirty bit cleared (written back to storage).
    Flushed,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_are_ordered_by_inode_then_index() {
        let a = PageKey::new(InodeNr(1), PageIndex(9));
        let b = PageKey::new(InodeNr(2), PageIndex(0));
        let c = PageKey::new(InodeNr(2), PageIndex(1));
        assert!(a < b && b < c);
    }
}
