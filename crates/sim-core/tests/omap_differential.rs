//! Differential fuzz: `DOrdMap` vs a `BTreeMap` oracle.
//!
//! Driven by `sim_core::check::differential` — seeded op logs replayed
//! against both maps, with shrink-on-failure. The base seed comes from
//! `DUET_CHECK_SEED` (decimal or `0x`-hex): `scripts/check.sh` pins it,
//! CI rotates it per run and logs the value, mirroring the fault-matrix
//! split. Each test runs ≥ 10 independently seeded cases.

use sim_core::check::{differential, DiffConfig};
use sim_core::fault::seed_from_env;
use sim_core::omap::DOrdMap;
use sim_core::SimRng;
use std::collections::BTreeMap;

/// One operation of the differential log. Mutations and queries both
/// carry their operands so a shrunk log replays standalone.
#[derive(Clone, Debug)]
enum Op {
    Insert(u64, u64),
    Remove(u64),
    Get(u64),
    Floor(u64),
    Ceil(u64),
    Pred(u64),
    Succ(u64),
    /// Forward-collect `range(lo..hi)`.
    Range(u64, u64),
    /// The extent-map floor idiom: `range(..=k).next_back()`.
    RangeBack(u64),
    /// `range` under arbitrary (possibly inverted) bound kinds:
    /// `(start_kind, start_key, end_kind, end_key)` with kinds 0 =
    /// `Included`, 1 = `Excluded`, 2 = `Unbounded`. Ranges the
    /// `BTreeMap` oracle would panic on must yield an empty iterator.
    RangeBounds(u8, u64, u8, u64),
    /// `range(lo..=hi)` consumed from both ends, one end per bit of
    /// the pattern, with the exact size hint checked at every step.
    RangeMixed(u64, u64, u32),
    /// Full ordered iteration, forward and reverse.
    IterCheck,
    Clear,
}

fn gen_op(rng: &mut SimRng, _i: u64) -> Op {
    let k = rng.gen_range(0, 128);
    match rng.gen_range(0, 14) {
        0..=3 => Op::Insert(k, rng.gen_range(0, 1 << 20)),
        4..=5 => Op::Remove(k),
        6 => Op::Get(k),
        7 => Op::Floor(k),
        8 => match rng.gen_range(0, 3) {
            0 => Op::Ceil(k),
            1 => Op::Pred(k),
            _ => Op::Succ(k),
        },
        9 => {
            let l = rng.gen_range(0, 128);
            Op::Range(l.min(k), l.max(k))
        }
        10 => Op::RangeBack(k),
        11 => Op::RangeBounds(
            rng.gen_range(0, 3) as u8,
            k,
            rng.gen_range(0, 3) as u8,
            rng.gen_range(0, 130),
        ),
        12 => {
            let l = rng.gen_range(0, 128);
            Op::RangeMixed(l.min(k), l.max(k), rng.gen_range(0, 1 << 16) as u32)
        }
        _ => {
            if rng.gen_range(0, 40) == 0 {
                Op::Clear
            } else {
                Op::IterCheck
            }
        }
    }
}

fn bound(kind: u8, k: u64) -> std::ops::Bound<u64> {
    match kind {
        0 => std::ops::Bound::Included(k),
        1 => std::ops::Bound::Excluded(k),
        _ => std::ops::Bound::Unbounded,
    }
}

/// Applies a log to a fresh `DOrdMap` (deliberately small chunks so the
/// log crosses many chunk splits/merges) and a fresh `BTreeMap`,
/// comparing every observable.
fn replay(log: &[Op]) -> Result<(), String> {
    let mut m: DOrdMap<u64, u64> = DOrdMap::with_chunk_max(8);
    let mut oracle: BTreeMap<u64, u64> = BTreeMap::new();
    let kv = |e: (&u64, &u64)| (*e.0, *e.1);
    for (i, op) in log.iter().enumerate() {
        let fail = |what: &str| format!("op {i} {op:?}: {what} diverged");
        match *op {
            Op::Insert(k, v) => {
                if m.insert(k, v) != oracle.insert(k, v) {
                    return Err(fail("insert"));
                }
            }
            Op::Remove(k) => {
                if m.remove(&k) != oracle.remove(&k) {
                    return Err(fail("remove"));
                }
            }
            Op::Get(k) => {
                if m.get(&k) != oracle.get(&k) {
                    return Err(fail("get"));
                }
            }
            Op::Floor(k) => {
                if m.floor(&k).map(kv) != oracle.range(..=k).next_back().map(kv) {
                    return Err(fail("floor"));
                }
            }
            Op::Ceil(k) => {
                if m.ceil(&k).map(kv) != oracle.range(k..).next().map(kv) {
                    return Err(fail("ceil"));
                }
            }
            Op::Pred(k) => {
                if m.pred(&k).map(kv) != oracle.range(..k).next_back().map(kv) {
                    return Err(fail("pred"));
                }
            }
            Op::Succ(k) => {
                let excl = (std::ops::Bound::Excluded(k), std::ops::Bound::Unbounded);
                if m.succ(&k).map(kv) != oracle.range(excl).next().map(kv) {
                    return Err(fail("succ"));
                }
            }
            Op::Range(lo, hi) => {
                let got: Vec<(u64, u64)> = m.range(lo..hi).map(kv).collect();
                let want: Vec<(u64, u64)> = oracle.range(lo..hi).map(kv).collect();
                if got != want {
                    return Err(fail("range"));
                }
                let got_rev: Vec<(u64, u64)> = m.range(lo..hi).rev().map(kv).collect();
                let want_rev: Vec<(u64, u64)> = oracle.range(lo..hi).rev().map(kv).collect();
                if got_rev != want_rev {
                    return Err(fail("range.rev"));
                }
            }
            Op::RangeBack(k) => {
                if m.range(..=k).next_back().map(kv) != oracle.range(..=k).next_back().map(kv) {
                    return Err(fail("range(..=k).next_back"));
                }
            }
            Op::RangeBounds(lk, lo, hk, hi) => {
                let range = (bound(lk, lo), bound(hk, hi));
                let n = m.range(range).len();
                if m.range(range).size_hint() != (n, Some(n)) {
                    return Err(fail("range bounds size_hint"));
                }
                let got: Vec<(u64, u64)> = m.range(range).map(kv).collect();
                // BTreeMap::range panics on start > end, and on start
                // == end with both bounds excluded; DOrdMap documents
                // those as empty instead.
                let oracle_ok =
                    lk == 2 || hk == 2 || lo < hi || (lo == hi && !(lk == 1 && hk == 1));
                if oracle_ok {
                    let want: Vec<(u64, u64)> = oracle.range(range).map(kv).collect();
                    if got != want {
                        return Err(fail("range bounds"));
                    }
                    let got_rev: Vec<(u64, u64)> = m.range(range).rev().map(kv).collect();
                    let want_rev: Vec<(u64, u64)> = oracle.range(range).rev().map(kv).collect();
                    if got_rev != want_rev {
                        return Err(fail("range bounds rev"));
                    }
                } else if !got.is_empty() || n != 0 {
                    return Err(fail("inverted range not empty"));
                }
            }
            Op::RangeMixed(lo, hi, pattern) => {
                let mut it = m.range(lo..=hi);
                let mut want: std::collections::VecDeque<(u64, u64)> =
                    oracle.range(lo..=hi).map(kv).collect();
                for bit in 0..u32::BITS {
                    let n = want.len();
                    if it.len() != n || it.size_hint() != (n, Some(n)) {
                        return Err(fail("mixed size_hint"));
                    }
                    let (got, expect) = if (pattern >> bit) & 1 == 1 {
                        (it.next_back().map(kv), want.pop_back())
                    } else {
                        (it.next().map(kv), want.pop_front())
                    };
                    if got != expect {
                        return Err(fail("mixed consumption"));
                    }
                    if got.is_none() {
                        break;
                    }
                }
            }
            Op::IterCheck => {
                let got: Vec<(u64, u64)> = m.iter().map(kv).collect();
                let want: Vec<(u64, u64)> = oracle.iter().map(kv).collect();
                if got != want {
                    return Err(fail("iter"));
                }
                let got_rev: Vec<(u64, u64)> = m.iter().rev().map(kv).collect();
                if got_rev.iter().rev().cloned().collect::<Vec<_>>() != want {
                    return Err(fail("iter.rev"));
                }
                if m.first_key_value().map(kv) != oracle.first_key_value().map(kv)
                    || m.last_key_value().map(kv) != oracle.last_key_value().map(kv)
                {
                    return Err(fail("first/last"));
                }
            }
            Op::Clear => {
                m.clear();
                oracle.clear();
            }
        }
        if m.len() != oracle.len() {
            return Err(fail("len"));
        }
    }
    Ok(())
}

/// ≥ 10 independently seeded op logs, every ordered-map observable —
/// point ops, neighbour queries, ranges in both directions — compared
/// against the `BTreeMap` oracle op by op.
#[test]
fn dordmap_matches_btreemap_oracle() {
    let seed = seed_from_env("DUET_CHECK_SEED", 0xD1FF_BA5E);
    let cfg = DiffConfig::new("dordmap-vs-btreemap", seed)
        .cases(12)
        .ops(3000);
    differential(&cfg, gen_op, replay).unwrap();
}

/// The same differential harness must actually detect a broken ordered
/// map — sabotage check so a vacuously green fuzz cannot ship. A map
/// that silently drops odd-key inserts must be caught and the failing
/// log shrunk to the single triggering insert.
#[test]
fn differential_harness_detects_sabotage() {
    let seed = seed_from_env("DUET_CHECK_SEED", 0xD1FF_BA5E);
    let cfg = DiffConfig::new("sabotage", seed).cases(4).ops(500);
    let failure = differential(&cfg, gen_op, |log: &[Op]| {
        let mut m: DOrdMap<u64, u64> = DOrdMap::with_chunk_max(8);
        let mut oracle: BTreeMap<u64, u64> = BTreeMap::new();
        for (i, op) in log.iter().enumerate() {
            match *op {
                Op::Insert(k, v) => {
                    if k % 2 == 0 {
                        m.insert(k, v); // sabotage: odd keys vanish
                    }
                    oracle.insert(k, v);
                }
                Op::Remove(k) => {
                    m.remove(&k);
                    oracle.remove(&k);
                }
                _ => {}
            }
            if m.len() != oracle.len() {
                return Err(format!("op {i} {op:?}: len diverged"));
            }
        }
        Ok(())
    })
    .unwrap_err();
    assert_eq!(failure.ops.len(), 1, "shrinks to one insert: {failure}");
    assert!(failure.ops[0].starts_with("Insert("), "{failure}");
    assert!(failure.message.contains("len diverged"));
}
